(* Regenerate the paper's tables and figures.

   Examples:
     dune exec bin/experiment.exe -- table1
     dune exec bin/experiment.exe -- fig2 --csv out.csv
     dune exec bin/experiment.exe -- table2 --scale quick --datasets iris,seeds
     dune exec bin/experiment.exe -- table3 --scale committed
*)

open Cmdliner

let setup_logs verbose =
  Fmt_tty.setup_std_outputs ();
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some (if verbose then Logs.Info else Logs.Warning))

let progress msg = Printf.eprintf "[table2] %s\n%!" msg

(* Install the process-wide default cache from the CLI flags so library
   entry points that consult {!Cache.get_default} (surrogate pipeline,
   ablation cells) agree with what the command was given. *)
let setup_cache ~cache_dir ~no_cache =
  let cache =
    if no_cache then Cache.disabled () else Cache.create ~dir:cache_dir
  in
  Cache.set_default cache;
  cache

let report_cache cache =
  if Cache.enabled cache then Printf.printf "%s\n" (Cache.summary cache)

(* Select the tensor kernel backend before any tensor (dataset, surrogate,
   network) is built, so the whole computation stays on one backend. *)
let setup_backend name =
  match Tensor.backend_of_string name with
  | Some b -> Tensor.set_backend b
  | None ->
      Printf.eprintf "experiment: unknown backend %S (use %s)\n%!" name
        Tensor.backend_choices;
      exit 2

let report_backend () =
  Printf.printf "backend: %s (cache schema %s)\n"
    (Tensor.backend_name (Tensor.backend ()))
    (Pnn.Serialize.cache_schema ())

let load_datasets = function
  | None -> Datasets.Bench13.load_all ()
  | Some names ->
      List.map Datasets.Bench13.load (String.split_on_char ',' names)

let run_table2 scale_name datasets_opt csv ~cache ~resume =
  let scale = Experiments.Setup.of_name scale_name in
  let surrogate = Experiments.Setup.surrogate_of_scale scale in
  let datasets = load_datasets datasets_opt in
  let t0 = Unix.gettimeofday () in
  let table =
    Experiments.Table2.run ~cache ~checkpoints:resume ~progress ~datasets scale
      surrogate
  in
  Printf.printf "%s" (Experiments.Table2.render table);
  Printf.printf "(%.1fs)\n" (Unix.gettimeofday () -. t0);
  (match csv with
  | Some path ->
      let header, rows = Experiments.Table2.to_csv_rows table in
      Experiments.Report.write_csv ~path ~header ~rows;
      Printf.printf "wrote %s\n" path
  | None -> ());
  table

let cmd_table2 backend scale_name datasets_opt csv verbose cache_dir no_cache
    resume =
  setup_logs verbose;
  setup_backend backend;
  let cache = setup_cache ~cache_dir ~no_cache in
  ignore (run_table2 scale_name datasets_opt csv ~cache ~resume);
  report_backend ();
  report_cache cache

let cmd_table3 backend scale_name datasets_opt csv verbose cache_dir no_cache
    resume =
  setup_logs verbose;
  setup_backend backend;
  let cache = setup_cache ~cache_dir ~no_cache in
  let scale = Experiments.Setup.of_name scale_name in
  let table2 = run_table2 scale_name datasets_opt csv ~cache ~resume in
  let table3 = Experiments.Table3.of_table2 scale table2 in
  print_newline ();
  print_string (Experiments.Table3.render table3);
  report_backend ();
  report_cache cache

let cmd_fig2 csv verbose =
  setup_logs verbose;
  let curves = Experiments.Figures.fig2_curves () in
  print_string (Experiments.Figures.render_fig2 curves);
  match csv with
  | Some path ->
      let ptanh_curves, _ = curves in
      (match ptanh_curves with
      | [] -> ()
      | first :: _ ->
          let header = "vin" :: List.map (fun c -> c.Experiments.Figures.label) ptanh_curves in
          let rows =
            Array.to_list
              (Array.mapi
                 (fun i v ->
                   Printf.sprintf "%.4f" v
                   :: List.map
                        (fun c -> Printf.sprintf "%.5f" c.Experiments.Figures.vout.(i))
                        ptanh_curves)
                 first.Experiments.Figures.vin)
          in
          Experiments.Report.write_csv ~path ~header ~rows;
          Printf.printf "wrote %s\n" path)
  | None -> ()

let cmd_fig4 seed verbose =
  setup_logs verbose;
  print_string (Experiments.Figures.render_fig4_left (Experiments.Figures.fig4_left ()));
  print_newline ();
  print_string
    (Experiments.Figures.render_fig4_right (Experiments.Figures.fig4_right ~seed ()))

let cmd_table1 () = print_string (Experiments.Figures.render_table1 ())

let cmd_ablations backend which verbose cache_dir no_cache =
  setup_logs verbose;
  setup_backend backend;
  let cache = setup_cache ~cache_dir ~no_cache in
  let all =
    [
      ("sampler", fun () -> Experiments.Ablations.sampler_ablation ());
      ("architecture", fun () -> Experiments.Ablations.architecture_ablation ());
      ("init", fun () -> Experiments.Ablations.initialization_ablation ());
      ("temperature", fun () -> Experiments.Ablations.temperature_ablation ());
      ("depth", fun () -> Experiments.Ablations.depth_ablation ());
    ]
  in
  let selected =
    match which with
    | None -> all
    | Some names ->
        let wanted = String.split_on_char ',' names in
        List.filter (fun (n, _) -> List.mem n wanted) all
  in
  List.iter
    (fun (_, run) ->
      print_string (run ());
      print_newline ())
    selected;
  report_backend ();
  report_cache cache

let scale_arg =
  Arg.(value & opt string "quick" & info [ "scale" ] ~doc:"quick | committed | paper")

let backend_arg =
  (* default to whatever PNN_BACKEND selected at startup, so the flag and
     the environment knob compose (flag wins when given) *)
  Arg.(
    value
    & opt string (Tensor.backend_name (Tensor.backend ()))
    & info [ "backend" ]
        ~doc:
          (Printf.sprintf
             "tensor kernel backend (%s): $(b,reference) is the bit-identity \
              oracle, $(b,bigarray) the Bigarray.Float64 fast path, $(b,c) \
              the vectorized C-stub path; cached results are keyed per \
              backend"
             Tensor.backend_choices))

let datasets_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "datasets" ] ~doc:"comma-separated dataset names (default: all 13)")

let csv_arg = Arg.(value & opt (some string) None & info [ "csv" ] ~doc:"write CSV here")
let verbose_arg = Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"log progress")
let seed_arg = Arg.(value & opt int 7 & info [ "seed" ] ~doc:"pipeline seed")

let cache_dir_arg =
  Arg.(
    value
    & opt string "_cache"
    & info [ "cache-dir" ] ~doc:"content-addressed artifact cache directory")

let no_cache_arg =
  Arg.(value & flag & info [ "no-cache" ] ~doc:"disable the artifact cache")

let resume_arg =
  Arg.(
    value
    & flag
    & info [ "resume" ]
        ~doc:
          "checkpoint training cells periodically and resume interrupted runs \
           bit-identically (requires the cache)")

let table1_cmd =
  Cmd.v (Cmd.info "table1" ~doc:"print the enforced design space")
    Term.(const cmd_table1 $ const ())

let table2_cmd =
  Cmd.v (Cmd.info "table2" ~doc:"run the main benchmark table")
    Term.(
      const cmd_table2 $ backend_arg $ scale_arg $ datasets_arg $ csv_arg
      $ verbose_arg $ cache_dir_arg $ no_cache_arg $ resume_arg)

let table3_cmd =
  Cmd.v (Cmd.info "table3" ~doc:"run the ablation summary (includes table2)")
    Term.(
      const cmd_table3 $ backend_arg $ scale_arg $ datasets_arg $ csv_arg
      $ verbose_arg $ cache_dir_arg $ no_cache_arg $ resume_arg)

let fig2_cmd =
  Cmd.v (Cmd.info "fig2" ~doc:"characteristic curves of the nonlinear circuits")
    Term.(const cmd_fig2 $ csv_arg $ verbose_arg)

let fig4_cmd =
  Cmd.v (Cmd.info "fig4" ~doc:"fit example and surrogate parity")
    Term.(const cmd_fig4 $ seed_arg $ verbose_arg)

let cmd_lifetime backend scale_name dataset verbose =
  setup_logs verbose;
  setup_backend backend;
  let scale = Experiments.Setup.of_name scale_name in
  let surrogate = Experiments.Setup.surrogate_of_scale scale in
  let result =
    Experiments.Lifetime.run ?dataset Pnn.Aging.default_model scale surrogate
  in
  print_string (Experiments.Lifetime.render result);
  report_backend ()

let dataset_arg =
  Arg.(value & opt (some string) None & info [ "dataset" ] ~doc:"benchmark dataset name")

let lifetime_cmd =
  Cmd.v
    (Cmd.info "lifetime" ~doc:"extension: aging-aware vs aging-unaware training")
    Term.(const cmd_lifetime $ backend_arg $ scale_arg $ dataset_arg $ verbose_arg)

let cmd_faults backend scale_name dataset epsilon csv verbose cache_dir no_cache
    resume =
  setup_logs verbose;
  setup_backend backend;
  let cache = setup_cache ~cache_dir ~no_cache in
  let scale = Experiments.Setup.of_name scale_name in
  let surrogate = Experiments.Setup.surrogate_of_scale scale in
  let progress msg = Printf.eprintf "[faults] %s\n%!" msg in
  let t0 = Unix.gettimeofday () in
  let result =
    Experiments.Faults.run ~cache ~checkpoints:resume ~progress ?dataset
      ~epsilon scale surrogate
  in
  print_string (Experiments.Faults.render result);
  Printf.printf "(%.1fs)\n" (Unix.gettimeofday () -. t0);
  (match csv with
  | Some path ->
      let header, rows = Experiments.Faults.to_csv_rows result in
      Experiments.Report.write_csv ~path ~header ~rows;
      Printf.printf "wrote %s\n" path
  | None -> ());
  report_backend ();
  report_cache cache

let epsilon_arg =
  Arg.(value & opt float 0.10 & info [ "epsilon" ] ~doc:"family severity anchor")

let faults_cmd =
  Cmd.v
    (Cmd.info "faults"
       ~doc:"extension: fault-injection grid and severity sweeps (Variation models)")
    Term.(
      const cmd_faults $ backend_arg $ scale_arg $ dataset_arg $ epsilon_arg
      $ csv_arg $ verbose_arg $ cache_dir_arg $ no_cache_arg $ resume_arg)

let which_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "only" ] ~doc:"comma-separated subset: sampler,architecture,init,temperature,depth")

let ablations_cmd =
  Cmd.v
    (Cmd.info "ablations" ~doc:"design-choice ablation benches (DESIGN.md §5)")
    Term.(
      const cmd_ablations $ backend_arg $ which_arg $ verbose_arg
      $ cache_dir_arg $ no_cache_arg)

let main =
  Cmd.group
    (Cmd.info "experiment" ~doc:"reproduce the paper's tables and figures")
    [
      table1_cmd; table2_cmd; table3_cmd; fig2_cmd; fig4_cmd; ablations_cmd;
      lifetime_cmd; faults_cmd;
    ]

let () = exit (Cmd.eval main)
