(* The pNN inference server CLI.

   Examples:
     dune exec bin/serve.exe -- run --model net.pnn --socket /tmp/pnn.sock
     dune exec bin/serve.exe -- run --model net.pnn --socket /tmp/pnn.sock \
       --backend bigarray --max-batch 64 --linger-us 1000
     dune exec bin/serve.exe -- smoke
*)

open Cmdliner

let setup_backend name =
  match Tensor.backend_of_string name with
  | Some b -> Tensor.set_backend b
  | None ->
      Printf.eprintf "serve: unknown backend %S (use %s)\n%!" name
        Tensor.backend_choices;
      exit 2

let backend_arg =
  Arg.(
    value
    & opt string (Tensor.backend_name (Tensor.backend ()))
    & info [ "backend" ]
        ~doc:
          (Printf.sprintf "tensor kernel backend on the serving hot path (%s)"
             Tensor.backend_choices))

let mc_model_of ~family ~param =
  match family with
  | "uniform" -> Pnn.Variation.Uniform param
  | "gaussian" -> Pnn.Variation.Gaussian param
  | "correlated" -> Pnn.Variation.Correlated { global = param; local = param }
  | other ->
      Printf.eprintf "serve: unknown mc model %S (use uniform | gaussian | correlated)\n%!"
        other;
      exit 2

(* {1 run} *)

let cmd_run backend model_path sock_path digest max_batch linger_us mc_family
    mc_param surrogate_n surrogate_epochs =
  setup_backend backend;
  let surrogate =
    Surrogate.Pipeline.ensure ~n:surrogate_n ~max_epochs:surrogate_epochs ~seed:42 ()
  in
  let model =
    try Serving.Serve_model.load ?expect_digest:digest surrogate model_path
    with Failure msg ->
      (* the satellite contract: refuse to start on a corrupt model *)
      Printf.eprintf "serve: refusing to start: %s\n%!" msg;
      exit 1
  in
  let config =
    {
      Serving.Server.max_batch;
      linger = float_of_int linger_us *. 1e-6;
      mc_model = mc_model_of ~family:mc_family ~param:mc_param;
    }
  in
  let server =
    Serving.Server.create ~config model (Unix.ADDR_UNIX sock_path)
  in
  Printf.printf
    "serve: model %s (digest %s, %d -> %d), backend %s, batch <= %d, linger %d us\n\
     serve: listening on %s\n\
     %!"
    model_path
    (Serving.Serve_model.digest model)
    (Serving.Serve_model.inputs model)
    (Serving.Serve_model.outputs model)
    (Tensor.backend_name (Tensor.backend ()))
    max_batch linger_us sock_path;
  Serving.Server.run server;
  let s = Serving.Server.stats server in
  Printf.printf "serve: stopped after %Ld answers (%Ld batches, %Ld mc, %Ld errors)\n%!"
    s.Serving.Protocol.served s.Serving.Protocol.batches s.Serving.Protocol.mc_served
    s.Serving.Protocol.errors

(* {1 smoke}

   End-to-end liveness check used by the @serve alias: build a tiny model,
   save/load it through Serialize (digest-verified), start the server on a
   temp socket, round-trip one predict / one MC / one stats request, shut
   down cleanly, and verify the corrupt-model refusal on the way out. *)

let cmd_smoke backend =
  setup_backend backend;
  let dataset = Surrogate.Pipeline.generate_dataset ~n:250 () in
  let surrogate, _ =
    Surrogate.Pipeline.train_surrogate ~arch:[ 10; 8; 6; 4 ] ~max_epochs:300
      (Rng.create 42) dataset
  in
  let net =
    Pnn.Network.create (Rng.create 7) Pnn.Config.default surrogate ~inputs:4
      ~outputs:3
  in
  let dir = Filename.temp_file "pnn_smoke" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let model_path = Filename.concat dir "model.pnn" in
  Pnn.Serialize.save_file net model_path;
  let expect_digest = Pnn.Serialize.digest net in
  let model = Serving.Serve_model.load ~expect_digest surrogate model_path in
  let sock = Filename.concat dir "serve.sock" in
  let server = Serving.Server.create model (Unix.ADDR_UNIX sock) in
  let server_domain = Domain.spawn (fun () -> Serving.Server.run server) in
  let client = Serving.Client.connect (Unix.ADDR_UNIX sock) in
  let features = [| 0.1; 0.7; 0.3; 0.9 |] in
  let cls = Serving.Client.predict client ~id:1l features in
  let direct = (Serving.Serve_model.predict_batch model [| features |]).(0) in
  if cls <> direct then failwith "smoke: served class differs from direct predict";
  let mc_cls, mean_p, q05, q95 =
    Serving.Client.predict_mc client ~id:2l ~draws:16 ~seed:5l features
  in
  if mean_p < 0.0 || mean_p > 1.0 || q05 > q95 then
    failwith "smoke: malformed mc summary";
  let stats = Serving.Client.stats client in
  if stats.Serving.Protocol.served <> 1L then failwith "smoke: served counter wrong";
  Serving.Client.shutdown client;
  Serving.Client.close client;
  Domain.join server_domain;
  (* corrupt-model refusal: truncate the save and expect a clean failure *)
  let full = In_channel.with_open_text model_path In_channel.input_all in
  Out_channel.with_open_text model_path (fun oc ->
      Out_channel.output_string oc (String.sub full 0 (String.length full / 2)));
  (match Serving.Serve_model.load surrogate model_path with
  | _ -> failwith "smoke: corrupt model was not refused"
  | exception Failure _ -> ());
  Sys.remove model_path;
  (try Unix.unlink sock with Unix.Unix_error _ -> ());
  (try Unix.rmdir dir with Unix.Unix_error _ -> ());
  Printf.printf "smoke ok: class %d, mc class %d p=%.3f [%.3f, %.3f], clean shutdown\n%!"
    cls mc_cls mean_p q05 q95

(* {1 Command line} *)

let model_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "model" ] ~docv:"PATH" ~doc:"saved network (Serialize v2 format)")

let socket_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH" ~doc:"unix-domain socket path to listen on")

let digest_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "digest" ] ~docv:"HEX"
        ~doc:"expected model digest; refuse to start on mismatch")

let max_batch_arg =
  Arg.(
    value & opt int 64
    & info [ "max-batch" ] ~doc:"coalesce at most this many requests per forward pass")

let linger_arg =
  Arg.(
    value & opt int 1000
    & info [ "linger-us" ]
        ~doc:"microseconds the oldest queued request may wait for company")

let mc_family_arg =
  Arg.(
    value & opt string "uniform"
    & info [ "mc-model" ]
        ~doc:"variation family for MC requests: uniform | gaussian | correlated")

let mc_param_arg =
  Arg.(
    value & opt float 0.1
    & info [ "mc-param" ] ~doc:"magnitude parameter of the MC variation family")

let surrogate_n_arg =
  Arg.(
    value & opt int 2000
    & info [ "surrogate-n" ] ~doc:"surrogate dataset size (must match training)")

let surrogate_epochs_arg =
  Arg.(
    value & opt int 1500
    & info [ "surrogate-epochs" ]
        ~doc:"surrogate training epochs (must match training)")

let run_cmd =
  Cmd.v
    (Cmd.info "run" ~doc:"serve a trained pNN over a unix socket")
    Term.(
      const cmd_run $ backend_arg $ model_arg $ socket_arg $ digest_arg
      $ max_batch_arg $ linger_arg $ mc_family_arg $ mc_param_arg
      $ surrogate_n_arg $ surrogate_epochs_arg)

let smoke_cmd =
  Cmd.v
    (Cmd.info "smoke"
       ~doc:"start a throwaway server, round-trip one request, shut down")
    Term.(const cmd_smoke $ backend_arg)

let main =
  Cmd.group
    (Cmd.info "serve" ~doc:"batched concurrent pNN inference service")
    [ run_cmd; smoke_cmd ]

let () = exit (Cmd.eval main)
