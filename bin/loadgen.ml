(* Load generator for the pNN inference service.

   Replays synthetic classification requests against a server — an external
   one over its socket (`run`), or in-process server domains spun up per
   configuration (`bench5`, which writes the committed BENCH_5.json).

   The driver is a single domain multiplexing C connections with
   [Unix.select]:
   - closed loop: one outstanding request per connection; a response
     immediately triggers the next request.  Offered concurrency = C.
   - open loop: requests are released on a fixed schedule (target offered
     rate), pipelined onto the connections round-robin regardless of
     outstanding responses; latency is measured from the *scheduled* send
     time, so queueing delay counts (the standard open-loop correction).

   Latency numbers here are observability, never inputs to any result —
   the pnnlint R2 suppressions below mark exactly those clock reads.

   Examples:
     dune exec bin/loadgen.exe -- run --socket /tmp/pnn.sock -n 100000 --clients 32
     dune exec bin/loadgen.exe -- run --socket /tmp/pnn.sock -n 1000000 \
       --clients 64 --rate 50000
     dune exec bin/loadgen.exe -- bench5
*)

open Cmdliner
module P = Serving.Protocol

(* pnnlint:allow R2 latency measurement only: loadgen timestamps requests to
   report p50/p99 — the timings are printed, never fed into any result *)
let now () = Unix.gettimeofday ()

(* {1 Latency bookkeeping} *)

let quantile_sorted sorted q =
  let n = Array.length sorted in
  if n = 0 then nan
  else
    let pos = q *. float_of_int (n - 1) in
    let lo = min (max (int_of_float pos) 0) (n - 1) in
    let hi = min (lo + 1) (n - 1) in
    let frac = pos -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)

type summary = {
  requests : int;
  elapsed_s : float;
  throughput_rps : float;
  p50_us : float;
  p99_us : float;
  p999_us : float;
  max_us : float;
  occupancy : int64 array; (* from the server's own counters *)
  batches : int64;
}

let summarize ~elapsed_s ~latencies ~stats_before ~stats_after =
  let sorted = Array.copy latencies in
  Array.sort Float.compare sorted;
  let us q = quantile_sorted sorted q *. 1e6 in
  let n = Array.length latencies in
  let occupancy =
    Array.mapi
      (fun i after -> Int64.sub after stats_before.P.occupancy.(i))
      stats_after.P.occupancy
  in
  {
    requests = n;
    elapsed_s;
    throughput_rps = float_of_int n /. elapsed_s;
    p50_us = us 0.5;
    p99_us = us 0.99;
    p999_us = us 0.999;
    max_us = (if n = 0 then nan else sorted.(n - 1) *. 1e6);
    occupancy;
    batches = Int64.sub stats_after.P.batches stats_before.P.batches;
  }

let mean_occupancy s =
  let total = ref 0L and weighted = ref 0.0 in
  Array.iteri
    (fun i count ->
      total := Int64.add !total count;
      weighted := !weighted +. (float_of_int (i + 1) *. Int64.to_float count))
    s.occupancy;
  if !total = 0L then nan else !weighted /. Int64.to_float !total

let print_summary label s =
  Printf.printf
    "%s: %d requests in %.2f s = %.0f req/s | p50 %.0f us  p99 %.0f us  p999 %.0f \
     us  max %.0f us | %Ld batches, mean occupancy %.1f\n\
     %!"
    label s.requests s.elapsed_s s.throughput_rps s.p50_us s.p99_us s.p999_us
    s.max_us s.batches (mean_occupancy s)

(* {1 The multiplexed driver} *)

type workload = {
  total : int;
  clients : int;
  depth : int; (* closed-loop outstanding requests per connection *)
  rate : float option; (* requests/s over all clients; None = closed loop *)
  mc_every : int; (* every k-th request asks for MC uncertainty *)
  mc_draws : int;
  features_of : int -> float array; (* request index -> features *)
}

(* Deterministic synthetic request stream: a fixed table of 1024 feature
   vectors drawn up front from a seeded stream, cycled by request index.
   Every run (and every server under test) sees the same vectors in the
   same order, and the hot loop does no RNG work. *)
let synthetic_features ~seed ~inputs =
  let table =
    Array.init 1024 (fun i ->
        let rng = Rng.create (seed + i) in
        Array.init inputs (fun _ -> Rng.float rng))
  in
  fun idx -> table.(idx land 1023)

let request_of w idx =
  let id = Int32.of_int (idx land 0x7fffffff) in
  let features = w.features_of idx in
  if w.mc_every > 0 && idx mod w.mc_every = w.mc_every - 1 then
    P.Predict_mc { id; features; draws = w.mc_draws; seed = id }
  else P.Predict { id; features }

(* The client type is abstract; the driver needs the raw fd for select, so
   it speaks sockets directly instead of going through [Serving.Client]. *)
let connect_fd addr =
  let domain =
    match addr with Unix.ADDR_UNIX _ -> Unix.PF_UNIX | Unix.ADDR_INET _ -> Unix.PF_INET
  in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  Unix.connect fd addr;
  fd

type raw_conn = {
  fd : Unix.file_descr;
  rd : P.reader;
  (* pnnlint:allow R7 each raw_conn is built and driven by exactly one
     load-generator domain; inflight never crosses domains *)
  mutable inflight : (int32 * float) list;
}

let send_all fd frame =
  let len = Bytes.length frame in
  let sent = ref 0 in
  while !sent < len do
    sent := !sent + Unix.write fd frame !sent (len - !sent)
  done

let run_load addr w =
  let conns =
    Array.init w.clients (fun _ ->
        { fd = connect_fd addr; rd = P.reader (); inflight = [] })
  in
  let latencies = Array.make w.total 0.0 in
  let completed = ref 0 in
  let next_idx = ref 0 in
  let t_start = now () in
  (* Predict frames for a given feature vector differ only in the 4-byte id
     at offset 6 (len u32 | ver u8 | kind u8 | id u32 | ...), so cache one
     encoded frame per distinct vector and patch the id in place — the hot
     loop then skips the float re-encode entirely.  [Buffer.add_bytes]
     copies, so reusing the patched template is safe. *)
  let frame_cache : (float array, Bytes.t) Hashtbl.t = Hashtbl.create 2053 in
  let predict_frame id features =
    match Hashtbl.find_opt frame_cache features with
    | Some tpl ->
        Bytes.set_int32_be tpl 6 id;
        tpl
    | None ->
        let f = P.encode_request (P.Predict { id; features }) in
        Hashtbl.add frame_cache features f;
        f
  in
  (* [send_many conn k] issues up to [k] fresh requests on [conn] as ONE
     write: pipelined replacements coalesce into a single segment, so the
     per-request syscall cost on both sides is amortized over the batch. *)
  let send_many conn k =
    let frames = Buffer.create 1024 in
    let issued = ref 0 in
    (* all requests of one send_many leave in the same write: stamp once *)
    let sent_at = if w.rate = None then now () else 0.0 in
    while !issued < k && !next_idx < w.total do
      let idx = !next_idx in
      incr next_idx;
      incr issued;
      let req = request_of w idx in
      let stamp =
        match w.rate with
        | None -> sent_at
        | Some r ->
            (* open loop: latency counts from the scheduled release time *)
            t_start +. (float_of_int idx /. r)
      in
      conn.inflight <- (P.request_id req, stamp) :: conn.inflight;
      (match req with
      | P.Predict { id; features } ->
          Buffer.add_bytes frames (predict_frame id features)
      | req -> Buffer.add_bytes frames (P.encode_request req))
    done;
    if Buffer.length frames > 0 then send_all conn.fd (Buffer.to_bytes frames)
  in
  let send_on conn = send_many conn 1 in
  let complete conn id =
    match List.assoc_opt id conn.inflight with
    | None -> ()
    | Some stamp ->
        conn.inflight <- List.filter (fun (i, _) -> i <> id) conn.inflight;
        if !completed < w.total then begin
          latencies.(!completed) <- now () -. stamp;
          incr completed
        end
  in
  let chunk = Bytes.create 65536 in
  let drain_conn conn =
    match Unix.read conn.fd chunk 0 (Bytes.length chunk) with
    | 0 -> failwith "loadgen: server closed connection"
    | n ->
        P.feed conn.rd chunk ~pos:0 ~len:n;
        let finished = ref 0 in
        let rec frames () =
          match P.next_frame conn.rd with
          | Ok None -> ()
          | Ok (Some payload) ->
              (match P.decode_response payload with
              | Ok (P.Class { id; _ })
              | Ok (P.Mc_class { id; _ }) ->
                  complete conn id;
                  incr finished
              | Ok (P.Error { id; message }) ->
                  failwith
                    (Printf.sprintf "loadgen: server error on %ld: %s" id message)
              | Ok _ -> ()
              | Error msg -> failwith ("loadgen: bad response: " ^ msg));
              frames ()
          | Error msg -> failwith ("loadgen: framing error: " ^ msg)
        in
        frames ();
        (* closed loop: finished requests offer replacements — all of this
           read's replacements leave in one write *)
        if w.rate = None then send_many conn !finished
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
        ()
  in
  (* prime: closed loop = [depth] per connection; open loop sends on
     schedule.  Depth > 1 pipelines requests so frames coalesce per segment
     and both sides spend one syscall on many frames. *)
  (match w.rate with
  | None ->
      for _ = 1 to w.depth do
        Array.iter send_on conns
      done
  | Some _ -> ());
  let fds = Array.to_list (Array.map (fun c -> c.fd) conns) in
  let conn_of_fd fd = Array.to_list conns |> List.find (fun c -> c.fd == fd) in
  while !completed < w.total do
    (match w.rate with
    | Some r ->
        (* release every request whose scheduled time has passed *)
        let due = int_of_float ((now () -. t_start) *. r) in
        let cap = min (due + 1) w.total in
        while !next_idx < cap do
          let conn = conns.(!next_idx mod w.clients) in
          send_on conn
        done
    | None -> ());
    let timeout =
      match w.rate with
      | None -> 1.0
      | Some r ->
          if !next_idx >= w.total then 0.05
          else
            let next_due = t_start +. (float_of_int !next_idx /. r) in
            Float.max 0.0 (Float.min 0.05 (next_due -. now ()))
    in
    match Unix.select fds [] [] timeout with
    | readable, _, _ -> List.iter (fun fd -> drain_conn (conn_of_fd fd)) readable
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  let elapsed_s = now () -. t_start in
  let stats =
    let fd = conns.(0).fd in
    send_all fd (P.encode_request (P.Stats { id = 0l }));
    let rec await () =
      match P.next_frame conns.(0).rd with
      | Ok (Some payload) -> (
          match P.decode_response payload with
          | Ok (P.Stats_reply { stats; _ }) -> stats
          | Ok _ -> await ()
          | Error msg -> failwith ("loadgen: bad stats response: " ^ msg))
      | Ok None ->
          let chunk = Bytes.create 4096 in
          let n = Unix.read fd chunk 0 (Bytes.length chunk) in
          if n = 0 then failwith "loadgen: server closed during stats";
          P.feed conns.(0).rd chunk ~pos:0 ~len:n;
          await ()
      | Error msg -> failwith ("loadgen: framing error: " ^ msg)
    in
    await ()
  in
  Array.iter (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) conns;
  (latencies, elapsed_s, stats)

let zero_stats max_batch =
  {
    P.served = 0L;
    mc_served = 0L;
    batches = 0L;
    errors = 0L;
    occupancy = Array.make max_batch 0L;
  }

(* {1 run: drive an external server} *)

let cmd_run sock_path total clients depth rate mc_every mc_draws seed =
  let addr = Unix.ADDR_UNIX sock_path in
  (* one probe request discovers the model's input width *)
  let probe = Serving.Client.connect addr in
  let inputs =
    match Serving.Client.rpc probe (P.Predict { id = 0l; features = [||] }) with
    | P.Error { message; _ } -> (
        (* "expected N features, got 0" *)
        match String.split_on_char ' ' message with
        | "expected" :: n :: _ -> int_of_string n
        | _ -> failwith ("loadgen: cannot discover feature width: " ^ message))
    | P.Class _ -> 0
    | _ -> failwith "loadgen: unexpected probe response"
  in
  Serving.Client.close probe;
  let w =
    {
      total;
      clients;
      depth;
      rate;
      mc_every;
      mc_draws;
      features_of = synthetic_features ~seed ~inputs;
    }
  in
  let latencies, elapsed_s, stats_after = run_load addr w in
  let s =
    summarize ~elapsed_s ~latencies
      ~stats_before:(zero_stats (Array.length stats_after.P.occupancy))
      ~stats_after
  in
  print_summary
    (Printf.sprintf "%s loop, %d clients"
       (match rate with None -> "closed" | Some r -> Printf.sprintf "open @ %.0f/s" r)
       clients)
    s;
  Printf.printf "occupancy histogram (batch size: batches):";
  Array.iteri
    (fun i c -> if c > 0L then Printf.printf " %d:%Ld" (i + 1) c)
    s.occupancy;
  print_newline ()

(* {1 bench5: the committed serving benchmark} *)

let time_ns ~runs f =
  f ();
  f ();
  let t0 = now () in
  for _ = 1 to runs do
    f ()
  done;
  (now () -. t0) /. float_of_int runs *. 1e9

(* The PR 7 satellite: re-measure the elementwise gap after the Kernels_ba
   unroll (BENCH_4 had tensor_add_128x64 at 0.69x).  [fast] is the fast-path
   backend under test (bigarray or c), always compared against reference. *)
let elementwise_row fast =
  let measure backend =
    Tensor.set_backend backend;
    let rng = Rng.create 5 in
    let a = Tensor.uniform rng 128 64 ~lo:(-1.0) ~hi:1.0 in
    let b = Tensor.uniform rng 128 64 ~lo:(-1.0) ~hi:1.0 in
    let dst = Tensor.zeros 128 64 in
    (* best of five trials: the minimum mean is the least-perturbed one *)
    let best = ref infinity in
    for _ = 1 to 5 do
      best :=
        Float.min !best (time_ns ~runs:20000 (fun () -> Tensor.add_into a b ~dst))
    done;
    !best
  in
  let ref_ns = measure Tensor.Reference in
  let fast_ns = measure fast in
  (ref_ns, fast_ns)

let wide_model surrogate =
  Serving.Serve_model.of_network
    (Pnn.Network.create_deep (Rng.create 11) Pnn.Config.default surrogate
       ~sizes:[ 64; 48; 16 ])

type bench_row = {
  row_name : string;
  backend : string;
  max_batch : int;
  s : summary;
}

let bench_config ~surrogate ~backend ~max_batch ~total ~clients ~depth ~mc_every
    ~mc_draws =
  (match Tensor.backend_of_string backend with
  | Some b -> Tensor.set_backend b
  | None -> assert false);
  let model = wide_model surrogate in
  let dir = Filename.temp_file "pnn_bench5" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let sock = Filename.concat dir "serve.sock" in
  let config =
    { Serving.Server.default_config with max_batch; linger = 0.001 }
  in
  let server = Serving.Server.create ~config model (Unix.ADDR_UNIX sock) in
  let server_domain = Domain.spawn (fun () -> Serving.Server.run server) in
  let w =
    {
      total;
      clients;
      depth;
      rate = None;
      mc_every;
      mc_draws;
      features_of = synthetic_features ~seed:1234 ~inputs:64;
    }
  in
  let latencies, elapsed_s, stats_after = run_load (Unix.ADDR_UNIX sock) w in
  (* shut the server down over the wire — exercises the graceful path *)
  let c = Serving.Client.connect (Unix.ADDR_UNIX sock) in
  Serving.Client.shutdown c;
  Serving.Client.close c;
  Domain.join server_domain;
  (try Unix.unlink sock with Unix.Unix_error _ -> ());
  (try Unix.rmdir dir with Unix.Unix_error _ -> ());
  summarize ~elapsed_s ~latencies ~stats_before:(zero_stats max_batch) ~stats_after

let json_of_row r =
  Printf.sprintf
    "    { \"name\": %S, \"backend\": %S, \"max_batch\": %d, \"requests\": %d, \
     \"throughput_rps\": %.1f, \"p50_us\": %.1f, \"p99_us\": %.1f, \"p999_us\": \
     %.1f, \"batches\": %Ld, \"mean_occupancy\": %.2f }"
    r.row_name r.backend r.max_batch r.s.requests r.s.throughput_rps r.s.p50_us
    r.s.p99_us r.s.p999_us r.s.batches (mean_occupancy r.s)

let cmd_bench5 backend total clients depth json_path =
  (* The fast-path backend compared against reference throughout the rows. *)
  let fast, fast_name =
    match Tensor.backend_of_string backend with
    | Some Tensor.Reference | None ->
        Printf.eprintf "loadgen: bench5 needs a fast-path backend (use %s)\n%!"
          Tensor.backend_choices;
        exit 2
    | Some b -> (b, Tensor.backend_name b)
  in
  (* Elementwise first, on a quiet compacted heap — the serving runs below
     leave a large major heap behind that would skew a kernel microbench. *)
  Gc.compact ();
  let ref_ns, fast_ns = elementwise_row fast in
  Printf.printf "bench5: tensor_add_128x64 ref %.0f ns vs %s %.0f ns (%.2fx)\n%!"
    ref_ns fast_name fast_ns (ref_ns /. fast_ns);
  Printf.printf "bench5: training throwaway surrogate...\n%!";
  let dataset = Surrogate.Pipeline.generate_dataset ~n:250 () in
  let surrogate, _ =
    Surrogate.Pipeline.train_surrogate ~arch:[ 10; 8; 6; 4 ] ~max_epochs:300
      (Rng.create 42) dataset
  in
  let rows = ref [] in
  let add_row row_name backend max_batch ~mc_every ~mc_draws =
    Printf.printf "bench5: %s (backend %s, max_batch %d)...\n%!" row_name backend
      max_batch;
    let s =
      bench_config ~surrogate ~backend ~max_batch ~total ~clients ~depth
        ~mc_every ~mc_draws
    in
    print_summary (Printf.sprintf "  %s" row_name) s;
    rows := { row_name; backend; max_batch; s } :: !rows
  in
  (* {batch=1, batch=64} x {reference, fast backend}, plus one MC row *)
  let named batch = Printf.sprintf "serve_wide_batch%d_%s" batch in
  add_row (named 1 "reference") "reference" 1 ~mc_every:0 ~mc_draws:0;
  add_row (named 64 "reference") "reference" 64 ~mc_every:0 ~mc_draws:0;
  add_row (named 1 fast_name) fast_name 1 ~mc_every:0 ~mc_draws:0;
  add_row (named 64 fast_name) fast_name 64 ~mc_every:0 ~mc_draws:0;
  add_row
    (Printf.sprintf "serve_wide_mc32_%s" fast_name)
    fast_name 64 ~mc_every:8 ~mc_draws:32;
  let rows = List.rev !rows in
  let find name = List.find (fun r -> r.row_name = name) rows in
  let speedup be = (find (named 64 be)).s.throughput_rps /. (find (named 1 be)).s.throughput_rps in
  Printf.printf "bench5: batching speedup reference %.1fx, %s %.1fx\n%!"
    (speedup "reference") fast_name (speedup fast_name);
  let oc = open_out json_path in
  Printf.fprintf oc "{\n  \"bench\": \"BENCH_5\",\n  \"results\": [\n%s\n  ],\n"
    (String.concat ",\n" (List.map json_of_row rows));
  Printf.fprintf oc
    "  \"batching_speedup\": { \"reference\": %.2f, %S: %.2f },\n"
    (speedup "reference") fast_name (speedup fast_name);
  Printf.fprintf oc
    "  \"elementwise\": { \"name\": \"tensor_add_128x64\", \"ref_ns\": %.1f, \
     \"fast_backend\": %S, \"fast_ns\": %.1f, \"speedup\": %.2f }\n}\n"
    ref_ns fast_name fast_ns (ref_ns /. fast_ns);
  close_out oc;
  Printf.printf "bench5: wrote %s\n%!" json_path

(* {1 Command line} *)

let socket_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH" ~doc:"unix-domain socket of the server")

let total_arg =
  Arg.(value & opt int 100_000 & info [ "n"; "requests" ] ~doc:"total requests")

let clients_arg =
  Arg.(value & opt int 32 & info [ "clients" ] ~doc:"concurrent connections")

let depth_arg =
  Arg.(
    value & opt int 1
    & info [ "depth" ]
        ~doc:"closed-loop pipelining: outstanding requests per connection")

let bench_clients_arg =
  Arg.(value & opt int 16 & info [ "clients" ] ~doc:"concurrent connections")

let bench_depth_arg =
  Arg.(
    value & opt int 8
    & info [ "depth" ] ~doc:"outstanding requests per connection")

let rate_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "rate" ]
        ~doc:"open-loop offered rate (req/s over all clients); omit for closed loop")

let mc_every_arg =
  Arg.(
    value & opt int 0
    & info [ "mc-every" ] ~doc:"every k-th request asks for MC uncertainty (0 = never)")

let mc_draws_arg =
  Arg.(value & opt int 32 & info [ "mc-draws" ] ~doc:"draws per MC request")

let seed_arg =
  Arg.(value & opt int 1234 & info [ "seed" ] ~doc:"synthetic feature stream seed")

let json_arg =
  Arg.(
    value & opt string "BENCH_5.json"
    & info [ "json" ] ~doc:"output path for the benchmark results")

let run_cmd =
  Cmd.v
    (Cmd.info "run" ~doc:"replay synthetic requests against a running server")
    Term.(
      const cmd_run $ socket_arg $ total_arg $ clients_arg $ depth_arg
      $ rate_arg $ mc_every_arg $ mc_draws_arg $ seed_arg)

let backend_arg =
  Arg.(
    value & opt string "bigarray"
    & info [ "backend" ]
        ~doc:
          (Printf.sprintf
             "fast-path tensor backend compared against reference (%s)"
             Tensor.backend_choices))

let bench5_cmd =
  Cmd.v
    (Cmd.info "bench5"
       ~doc:
         "measure serving throughput/latency across {batch 1, batch 64} x \
          {reference, fast backend} and write BENCH_5.json")
    Term.(
      const cmd_bench5 $ backend_arg $ total_arg $ bench_clients_arg
      $ bench_depth_arg $ json_arg)

let main =
  Cmd.group
    (Cmd.info "loadgen" ~doc:"load-test driver for the pNN inference service")
    [ run_cmd; bench5_cmd ]

let () = exit (Cmd.eval main)
