(* One-shot capture of a deterministic small training run, printed as %h
   (bit-exact) floats.  The output seeds the golden-trajectory regression
   test guarding the in-place/allocation-free training rewrite. *)

let () =
  let dataset = Surrogate.Pipeline.generate_dataset ~n:250 () in
  let surrogate, _ =
    Surrogate.Pipeline.train_surrogate ~arch:[ 10; 8; 6; 4 ] ~max_epochs:150
      (Rng.create 42) dataset
  in
  let blob =
    Datasets.Synth.generate
      {
        Datasets.Synth.name = "golden-blobs";
        features = 3;
        classes = 2;
        samples = 70;
        modes_per_class = 1;
        class_sep = 0.32;
        spread = 0.06;
        label_noise = 0.0;
        priors = None;
        seed = 19;
      }
  in
  let split = Datasets.Synth.split (Rng.create 8) blob in
  let config =
    {
      Pnn.Config.default with
      Pnn.Config.epsilon = 0.1;
      n_mc_train = 4;
      n_mc_val = 3;
      max_epochs = 25;
      patience = 50;
    }
  in
  let net = Pnn.Network.create (Rng.create 23) config surrogate ~inputs:3 ~outputs:2 in
  let data = Pnn.Training.of_split ~n_classes:2 split in
  let res = Pnn.Training.fit (Rng.create 77) net data in
  Array.iter
    (fun l -> Printf.printf "T %h\n" l)
    res.Pnn.Training.history.Nn.Train.train_losses;
  Array.iter
    (fun l -> Printf.printf "V %h\n" l)
    res.Pnn.Training.history.Nn.Train.val_losses;
  List.iter
    (fun p ->
      Array.iter (fun v -> Printf.printf "P %h\n" v) (Tensor.to_array (Autodiff.value p)))
    (Pnn.Network.params_theta net @ Pnn.Network.params_omega net)
