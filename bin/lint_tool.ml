(* pnnlint: repo-invariant static analyzer.

   Examples:
     dune exec bin/lint_tool.exe -- check
     dune exec bin/lint_tool.exe -- check --json
     dune exec bin/lint_tool.exe -- check --root . --r2-root Cache
     dune exec bin/lint_tool.exe -- stats --json
     dune exec bin/lint_tool.exe -- list-rules
     dune exec bin/lint_tool.exe -- allow-report

   `check` exits 1 when any unsuppressed finding remains — `dune build @lint`
   wires it into the default test gate.  `--json` output is byte-stable so
   CI can diff lint posture across commits. *)

open Cmdliner

let config root_override r2_roots =
  let base = Pnnlint.Engine.default_config in
  let base =
    match r2_roots with
    | [] -> base
    | roots -> { base with Pnnlint.Engine.r2_roots = roots }
  in
  (root_override, base)

let cmd_check (root, config) verbose json =
  let report = Pnnlint.Engine.run ~config ~root () in
  if json then print_string (Pnnlint.Engine.render_json report)
  else begin
    print_string (Pnnlint.Engine.render_report report);
    if verbose && report.Pnnlint.Engine.suppressed <> [] then begin
      print_string "-- suppressed --\n";
      List.iter
        (fun (f, _) ->
          Printf.printf "%s (suppressed)\n" (Pnnlint.Engine.render_finding f))
        report.Pnnlint.Engine.suppressed
    end
  end;
  if report.Pnnlint.Engine.findings <> [] then exit 1

let cmd_stats (root, config) json =
  let report = Pnnlint.Engine.run ~config ~root () in
  if json then print_string (Pnnlint.Engine.render_stats_json report)
  else print_string (Pnnlint.Engine.render_stats report)

let cmd_list_rules () = print_string (Pnnlint.Engine.render_rules ())

let cmd_allow_report (root, config) =
  let report = Pnnlint.Engine.run ~config ~root () in
  print_string (Pnnlint.Engine.render_allow_report report)

let root_arg =
  Arg.(
    value
    & opt string "."
    & info [ "root" ] ~doc:"repository root to scan (default: cwd)")

let r2_roots_arg =
  Arg.(
    value
    & opt_all string []
    & info [ "r2-root" ]
        ~doc:
          "override the R2 reachability roots (repeatable; default: the \
           cache/result units)")

let verbose_arg =
  Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"also print suppressed findings")

let json_arg =
  Arg.(
    value & flag
    & info [ "json" ] ~doc:"machine-readable JSON output (byte-stable)")

let config_term = Term.(const config $ root_arg $ r2_roots_arg)

let check_cmd =
  Cmd.v
    (Cmd.info "check" ~doc:"scan the tree and fail on any unsuppressed finding")
    Term.(const cmd_check $ config_term $ verbose_arg $ json_arg)

let stats_cmd =
  Cmd.v
    (Cmd.info "stats"
       ~doc:"per-rule posture: findings, suppressed findings and allow \
             comments for every rule")
    Term.(const cmd_stats $ config_term $ json_arg)

let list_rules_cmd =
  Cmd.v
    (Cmd.info "list-rules" ~doc:"describe every rule id")
    Term.(const cmd_list_rules $ const ())

let allow_report_cmd =
  Cmd.v
    (Cmd.info "allow-report"
       ~doc:"show every suppression in force and every SAFETY justification")
    Term.(const cmd_allow_report $ config_term)

let () =
  let info =
    Cmd.info "lint_tool" ~doc:"pnnlint — repo-invariant static analyzer"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ check_cmd; stats_cmd; list_rules_cmd; allow_report_cmd ]))
