(* Runs the paper's Fig. 3 modelling pipeline: QMC-sample the design space,
   simulate each circuit, fit ptanh parameters, train the surrogate MLP, and
   cache the artifact for the experiment harnesses. *)

open Cmdliner

let setup_logs () =
  Fmt_tty.setup_std_outputs ();
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some Logs.Info)

let run n seed max_epochs arch_small force dir =
  setup_logs ();
  let arch =
    if arch_small then [ 10; 8; 6; 4 ] else Surrogate.Model.paper_arch
  in
  let arch_tag = String.concat "-" (List.map string_of_int arch) in
  let path = Printf.sprintf "%s/surrogate_n%d_%s_seed%d.txt" dir n arch_tag seed in
  if force && Sys.file_exists path then Sys.remove path;
  let t0 = Unix.gettimeofday () in
  let dataset = Surrogate.Pipeline.generate_dataset ~n () in
  let t1 = Unix.gettimeofday () in
  Printf.printf "dataset: kept %d / %d samples (%d rejected) in %.1fs\n%!"
    (Array.length dataset.Surrogate.Pipeline.omegas)
    n dataset.Surrogate.Pipeline.rejected (t1 -. t0);
  Printf.printf "mean fit RMSE: %.5f V\n%!"
    (Stats.mean dataset.Surrogate.Pipeline.fit_rmses);
  let rng = Rng.create seed in
  let model, report = Surrogate.Pipeline.train_surrogate ~arch ~max_epochs rng dataset in
  let t2 = Unix.gettimeofday () in
  Printf.printf
    "surrogate (%s): train MSE %.5f R2 %.4f | val MSE %.5f R2 %.4f | test MSE %.5f R2 %.4f\n"
    arch_tag report.Surrogate.Pipeline.train_mse report.Surrogate.Pipeline.train_r2
    report.Surrogate.Pipeline.val_mse report.Surrogate.Pipeline.val_r2
    report.Surrogate.Pipeline.test_mse report.Surrogate.Pipeline.test_r2;
  Printf.printf "epochs: %d, training time %.1fs\n" report.Surrogate.Pipeline.epochs_run
    (t2 -. t1);
  Cache.mkdir_p dir;
  Surrogate.Model.save_file model path;
  Printf.printf "saved %s\n" path

let n_arg =
  Arg.(value & opt int 10_000 & info [ "n" ] ~doc:"QMC samples (paper: 10000)")

let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"RNG seed")

let epochs_arg =
  Arg.(value & opt int 3000 & info [ "epochs" ] ~doc:"max surrogate training epochs")

let arch_small_arg =
  Arg.(value & flag & info [ "small" ] ~doc:"use a small 10-8-6-4 architecture")

let force_arg = Arg.(value & flag & info [ "force" ] ~doc:"regenerate even if cached")

let dir_arg =
  Arg.(value & opt string "_artifacts" & info [ "dir" ] ~doc:"artifact directory")

let cmd =
  Cmd.v
    (Cmd.info "gen_surrogate" ~doc:"build the surrogate nonlinear-circuit model")
    Term.(const run $ n_arg $ seed_arg $ epochs_arg $ arch_small_arg $ force_arg $ dir_arg)

let () = exit (Cmd.eval cmd)
