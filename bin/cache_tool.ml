(* Inspect and maintain the content-addressed experiment cache.

   Examples:
     dune exec bin/cache_tool.exe -- ls
     dune exec bin/cache_tool.exe -- verify --dir _cache
     dune exec bin/cache_tool.exe -- gc --max-age-days 30
     dune exec bin/cache_tool.exe -- gc --all
*)

open Cmdliner

let human_bytes n =
  let f = float_of_int n in
  if f >= 1048576.0 then Printf.sprintf "%.1f MiB" (f /. 1048576.0)
  else if f >= 1024.0 then Printf.sprintf "%.1f KiB" (f /. 1024.0)
  else Printf.sprintf "%d B" n

let cmd_ls dir =
  let entries = Cache.entries ~dir () in
  if entries = [] then Printf.printf "%s: empty\n" dir
  else begin
    List.iter
      (fun (e : Cache.entry) ->
        Printf.printf "%-10s %s  %10s\n" e.Cache.kind e.Cache.key
          (human_bytes e.Cache.bytes))
      entries;
    let total = List.fold_left (fun acc e -> acc + e.Cache.bytes) 0 entries in
    Printf.printf "%d entries, %s\n" (List.length entries) (human_bytes total)
  end

let cmd_verify dir =
  let entries = Cache.entries ~check:true ~dir () in
  let bad = List.filter (fun e -> not e.Cache.valid) entries in
  List.iter
    (fun (e : Cache.entry) -> Printf.printf "corrupt: %s\n" e.Cache.path)
    bad;
  Printf.printf "%d entries, %d corrupt\n" (List.length entries)
    (List.length bad);
  if bad <> [] then exit 1

let cmd_gc dir max_age_days all =
  let removed, kept = Cache.gc ?max_age_days ~all ~dir () in
  Printf.printf "removed %d, kept %d\n" removed kept

let dir_arg =
  Arg.(
    value
    & opt string "_cache"
    & info [ "dir" ] ~doc:"cache directory (matches experiment --cache-dir)")

let max_age_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "max-age-days" ] ~doc:"also remove entries older than this")

let all_arg =
  Arg.(value & flag & info [ "all" ] ~doc:"remove every entry")

let ls_cmd =
  Cmd.v (Cmd.info "ls" ~doc:"list cache entries") Term.(const cmd_ls $ dir_arg)

let verify_cmd =
  Cmd.v
    (Cmd.info "verify" ~doc:"checksum every entry; exit 1 if any is corrupt")
    Term.(const cmd_verify $ dir_arg)

let gc_cmd =
  Cmd.v
    (Cmd.info "gc"
       ~doc:"remove corrupt entries and stale temp files (and more on request)")
    Term.(const cmd_gc $ dir_arg $ max_age_arg $ all_arg)

let main =
  Cmd.group
    (Cmd.info "cache_tool" ~doc:"inspect the content-addressed experiment cache")
    [ ls_cmd; verify_cmd; gc_cmd ]

let () = exit (Cmd.eval main)
