(* Sharded multi-process experiment orchestration.

   `run` expands the scenario matrix (datasets × arms × training ε × seeds,
   plus an optional fault-table block) into content-addressed work units,
   drives a pool of forked worker processes through the directory queue, and
   assembles Table II / Table III / the fault tables from the shared cache —
   byte-identical to a single-process run at any worker count.

   `smoke` is the fast end-to-end check wired into `dune runtest`: a tiny
   matrix run at 1 worker and at 2 forked workers with a crash injected into
   one of them, asserting the recovered 2-worker table is byte-identical.

   `bench6` measures worker-count scaling on a cold cache and writes the
   committed BENCH_6.json.

   Examples:
     dune exec bin/orchestrate.exe -- run --scale quick --workers 4
     dune exec bin/orchestrate.exe -- run --scale paper --datasets all \
       --faults seeds --cache _cache --queue _cache/queue
     dune exec bin/orchestrate.exe -- smoke
     dune exec bin/orchestrate.exe -- bench6
*)

open Cmdliner
module O = Orchestration

let setup_logs () =
  Fmt_tty.setup_std_outputs ();
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some Logs.Info)

(* pnnlint:allow R2 wall clock times phases for progress/bench reporting
   only; every result below comes out of the content-addressed cache *)
let now () = Unix.gettimeofday ()

let fresh_dir prefix =
  let path = Filename.temp_file prefix "" in
  Sys.remove path;
  Cache.mkdir_p path;
  path

(* {1 run} *)

let setup_backend name =
  match Tensor.backend_of_string name with
  | Some b -> Tensor.set_backend b
  | None ->
      Printf.eprintf "orchestrate: unknown backend %S (use %s)\n%!" name
        Tensor.backend_choices;
      exit 2

let cmd_run backend scale_name datasets_arg workers lease cache_dir queue_dir
    faults fault_eps checkpoint_every =
  setup_logs ();
  (* before any tensor work AND before the pool forks: workers inherit the
     selection, so every shard computes (and cache-keys) on one backend *)
  setup_backend backend;
  (* fork-safety: pin the pool to sequential before any pool work (the
     surrogate pipeline below would otherwise spawn domains and permanently
     disable Unix.fork); parallelism comes from the worker processes *)
  if workers > 1 && not (Parallel.require_sequential ()) then
    failwith "orchestrate: domains already spawned; cannot fork workers";
  let scale = Experiments.Setup.of_name scale_name in
  let cache = Cache.create ~dir:cache_dir in
  Cache.set_default cache;
  let surrogate = Experiments.Setup.surrogate_of_scale scale in
  let datasets =
    match datasets_arg with
    | "all" -> Datasets.Bench13.load_all ()
    | names ->
        List.map Datasets.Bench13.load
          (List.filter (fun s -> s <> "") (String.split_on_char ',' names))
  in
  let faults = match faults with "" -> None | d -> Some (d, fault_eps) in
  let ctx =
    O.Plan.create ~datasets ?faults ~checkpoint_every ~cache scale surrogate
  in
  let queue_root =
    match queue_dir with
    | "" -> Filename.concat cache_dir "queue"
    | d -> d
  in
  let t0 = now () in
  let report = O.Coordinator.run ~workers ~lease ~queue_root ctx in
  Printf.printf
    "orchestrate: %d units done with %d worker(s), %d respawn(s) in %.1fs\n%!"
    report.O.Coordinator.units report.O.Coordinator.workers
    report.O.Coordinator.respawns (now () -. t0);
  let t2 = O.Coordinator.table2 ctx in
  print_string (Experiments.Table2.render t2);
  print_newline ();
  print_string (Experiments.Table3.render (Experiments.Table3.of_table2 scale t2));
  (match O.Coordinator.fault_table ctx with
  | None -> ()
  | Some f ->
      print_newline ();
      print_string (Experiments.Faults.render f));
  print_newline ();
  Printf.printf "%s\n" (Cache.summary cache)

(* {1 Shared tiny fixture (smoke, bench6)} *)

let tiny_scale ~seeds =
  {
    Experiments.Setup.seeds;
    test_epsilons = [ 0.05 ];
    n_mc_test = 4;
    config =
      {
        Pnn.Config.default with
        Pnn.Config.max_epochs = 20;
        patience = 20;
        n_mc_train = 2;
        n_mc_val = 2;
      };
    init = `Centered;
    surrogate_samples = 250;
    surrogate_epochs = 150;
  }

let tiny_surrogate () =
  let dataset = Surrogate.Pipeline.generate_dataset ~n:250 () in
  fst
    (Surrogate.Pipeline.train_surrogate ~arch:[ 10; 8; 6; 4 ] ~max_epochs:150
       (Rng.create 42) dataset)

let blob_data name seed =
  Datasets.Synth.generate
    {
      Datasets.Synth.name;
      features = 3;
      classes = 2;
      samples = 70;
      modes_per_class = 1;
      class_sep = 0.32;
      spread = 0.06;
      label_noise = 0.0;
      priors = None;
      seed;
    }

let orchestrated_table ~root ~tag ~workers ~lease ?chaos scale surrogate
    datasets =
  let cache = Cache.create ~dir:(Filename.concat root (tag ^ ".cache")) in
  let ctx =
    O.Plan.create ~datasets ~checkpoint_every:5 ~cache scale surrogate
  in
  let report =
    match chaos with
    | None ->
        O.Coordinator.run ~workers ~lease
          ~queue_root:(Filename.concat root (tag ^ ".queue"))
          ctx
    | Some c ->
        O.Coordinator.run ~workers ~lease ~chaos:c
          ~queue_root:(Filename.concat root (tag ^ ".queue"))
          ctx
  in
  (report, Experiments.Table2.render (O.Coordinator.table2 ctx))

(* {1 smoke} *)

let cmd_smoke () =
  if not (Parallel.require_sequential ()) then
    failwith "smoke: domains already spawned; cannot fork workers";
  let root = fresh_dir "pnn_orch_smoke" in
  Printf.printf "smoke: training throwaway surrogate...\n%!";
  let scale = tiny_scale ~seeds:[ 1; 2 ] in
  let surrogate = tiny_surrogate () in
  let datasets = [ blob_data "orch-blobs" 19 ] in
  let t0 = now () in
  let _, table1 =
    orchestrated_table ~root ~tag:"w1" ~workers:1 ~lease:30.0 scale surrogate
      datasets
  in
  Printf.printf "smoke: 1-worker run done in %.1fs\n%!" (now () -. t0);
  (* two forked workers; worker 0 crashes mid-unit (Interrupted after epoch
     8, past the epoch-5 checkpoint); the respawn must steal the expired
     claim, resume from the checkpoint, and the table must not notice *)
  let chaos = function
    | 0 -> Some { O.Worker.interrupt_after = Some 8 }
    | _ -> None
  in
  let t1 = now () in
  let report, table2 =
    orchestrated_table ~root ~tag:"w2" ~workers:2 ~lease:0.5 ~chaos scale
      surrogate datasets
  in
  Printf.printf "smoke: 2-worker crash-recovery run done in %.1fs (%d respawns)\n%!"
    (now () -. t1) report.O.Coordinator.respawns;
  let ok_identical = String.equal table1 table2 in
  let ok_respawned = report.O.Coordinator.respawns >= 1 in
  if not ok_respawned then
    print_endline "smoke: FAIL (chaos worker was never respawned)";
  if not ok_identical then begin
    print_endline "smoke: FAIL (tables differ)";
    print_string table1;
    print_string table2
  end;
  if ok_identical && ok_respawned then begin
    print_endline "smoke: PASS (2-worker crash-recovery table byte-identical)";
    exit 0
  end
  else exit 1

(* {1 bench6} *)

let json_of_row (workers, units, seconds, speedup) =
  Printf.sprintf
    "    { \"workers\": %d, \"units\": %d, \"seconds\": %.1f, \
     \"units_per_s\": %.2f, \"speedup_vs_1\": %.2f }"
    workers units seconds
    (float_of_int units /. seconds)
    speedup

let cmd_bench6 json_path =
  if not (Parallel.require_sequential ()) then
    failwith "bench6: domains already spawned; cannot fork workers";
  let root = fresh_dir "pnn_orch_bench6" in
  let cores = Domain.recommended_domain_count () in
  Printf.printf "bench6: %d core(s); training throwaway surrogate...\n%!" cores;
  (* heavier units than the smoke fixture: long enough that per-unit work
     dominates the claim/renew/steal protocol overhead, so the scaling row
     measures the orchestration, not the filesystem *)
  let scale =
    let t = tiny_scale ~seeds:[ 1; 2; 3; 4 ] in
    {
      t with
      Experiments.Setup.config =
        { t.Experiments.Setup.config with Pnn.Config.max_epochs = 400; patience = 400 };
    }
  in
  let surrogate = tiny_surrogate () in
  let datasets = [ blob_data "bench-blobs-a" 19; blob_data "bench-blobs-b" 23 ] in
  let baseline = ref nan in
  let rows =
    List.map
      (fun workers ->
        Printf.printf "bench6: cold-cache run with %d worker(s)...\n%!" workers;
        let t0 = now () in
        let report, _ =
          orchestrated_table ~root
            ~tag:(Printf.sprintf "w%d" workers)
            ~workers ~lease:30.0 scale surrogate datasets
        in
        let dt = now () -. t0 in
        if workers = 1 then baseline := dt;
        Printf.printf "bench6: %d worker(s): %d units in %.1fs\n%!" workers
          report.O.Coordinator.units dt;
        (workers, report.O.Coordinator.units, dt, !baseline /. dt))
      [ 1; 2; 4 ]
  in
  (* warm-cache assembly: the coordinator path a finished run replays *)
  let cache = Cache.create ~dir:(Filename.concat root "w1.cache") in
  let ctx = O.Plan.create ~datasets ~checkpoint_every:5 ~cache scale surrogate in
  let t0 = now () in
  ignore (O.Coordinator.table2 ctx);
  let warm = now () -. t0 in
  Printf.printf "bench6: warm-cache assembly %.2fs\n%!" warm;
  let oc = open_out json_path in
  Printf.fprintf oc
    "{\n\
    \  \"bench\": \"BENCH_6\",\n\
    \  \"cores\": %d,\n\
    \  \"workers_scaling\": [\n\
     %s\n\
    \  ],\n\
    \  \"warm_assembly_s\": %.2f,\n\
    \  \"note\": \"cold-cache tiny matrix over 2 datasets; forked workers \
     share the content-addressed cache through the directory queue; \
     speedup is bounded by the host's core count reported above\"\n\
     }\n"
    cores
    (String.concat ",\n" (List.map json_of_row rows))
    warm;
  close_out oc;
  Printf.printf "bench6: wrote %s\n%!" json_path

(* {1 CLI} *)

let scale_arg =
  Arg.(
    value & opt string "quick"
    & info [ "scale" ] ~doc:"experiment scale: quick|committed|paper|fragile")

let backend_arg =
  Arg.(
    value
    & opt string (Tensor.backend_name (Tensor.backend ()))
    & info [ "backend" ]
        ~doc:
          (Printf.sprintf
             "tensor kernel backend for the coordinator and all workers (%s)"
             Tensor.backend_choices))

let datasets_arg =
  Arg.(
    value & opt string "all"
    & info [ "datasets" ] ~doc:"comma-separated benchmark names, or 'all'")

let workers_arg =
  Arg.(
    value & opt int 1
    & info [ "workers" ] ~doc:"worker processes (1 = in-process, no fork)")

let lease_arg =
  Arg.(
    value & opt float 30.0
    & info [ "lease" ]
        ~doc:"claim lease seconds; bounds crash-recovery latency")

let cache_arg =
  Arg.(value & opt string "_cache" & info [ "cache" ] ~doc:"cache directory")

let queue_arg =
  Arg.(
    value & opt string ""
    & info [ "queue" ] ~doc:"queue root (default: <cache>/queue)")

let faults_arg =
  Arg.(
    value & opt string ""
    & info [ "faults" ]
        ~doc:"also run the fault-table block on this dataset (e.g. seeds)")

let fault_eps_arg =
  Arg.(
    value & opt float 0.10
    & info [ "fault-eps" ] ~doc:"fault-table severity anchor")

let ckpt_every_arg =
  Arg.(
    value & opt int 50
    & info [ "checkpoint-every" ]
        ~doc:"epochs between training checkpoints (crash-recovery grain)")

let run_cmd =
  Cmd.v
    (Cmd.info "run" ~doc:"orchestrate the experiment matrix across workers")
    Term.(
      const cmd_run $ backend_arg $ scale_arg $ datasets_arg $ workers_arg
      $ lease_arg $ cache_arg $ queue_arg $ faults_arg $ fault_eps_arg
      $ ckpt_every_arg)

let smoke_cmd =
  Cmd.v
    (Cmd.info "smoke"
       ~doc:
         "fast end-to-end check: 2 forked workers + injected crash must \
          reproduce the 1-worker table byte-identically")
    Term.(const cmd_smoke $ const ())

let json_arg =
  Arg.(
    value & opt string "BENCH_6.json"
    & info [ "json" ] ~doc:"output path for the benchmark results")

let bench6_cmd =
  Cmd.v
    (Cmd.info "bench6"
       ~doc:"measure worker-count scaling and write BENCH_6.json")
    Term.(const cmd_bench6 $ json_arg)

let main =
  Cmd.group
    (Cmd.info "orchestrate"
       ~doc:"sharded multi-process experiment orchestration")
    [ run_cmd; smoke_cmd; bench6_cmd ]

let () = exit (Cmd.eval main)
