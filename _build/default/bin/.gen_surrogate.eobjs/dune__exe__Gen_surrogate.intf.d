bin/gen_surrogate.mli:
