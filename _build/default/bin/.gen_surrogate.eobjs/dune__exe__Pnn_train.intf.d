bin/pnn_train.mli:
