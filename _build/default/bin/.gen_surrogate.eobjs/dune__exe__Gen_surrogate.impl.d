bin/gen_surrogate.ml: Arg Array Cmd Cmdliner Fmt_tty List Logs Logs_fmt Printf Rng Stats String Surrogate Sys Term Unix
