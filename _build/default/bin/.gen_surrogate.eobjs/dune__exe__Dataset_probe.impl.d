bin/dataset_probe.ml: Array Datasets List Printf Rng Tensor
