bin/experiment.mli:
