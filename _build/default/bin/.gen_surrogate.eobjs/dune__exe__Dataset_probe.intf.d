bin/dataset_probe.mli:
