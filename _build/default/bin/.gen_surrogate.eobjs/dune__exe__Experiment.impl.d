bin/experiment.ml: Arg Array Cmd Cmdliner Datasets Experiments Fmt_tty List Logs Logs_fmt Pnn Printf String Term Unix
