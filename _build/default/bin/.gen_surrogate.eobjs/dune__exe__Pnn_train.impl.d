bin/pnn_train.ml: Arg Array Cmd Cmdliner Datasets Fit Fmt_tty List Logs Logs_fmt Nn Pnn Printf Rng Surrogate Term Unix
