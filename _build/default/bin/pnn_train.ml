(* Train one pNN on one benchmark dataset from the command line.

   Examples:
     dune exec bin/pnn_train.exe -- --dataset iris
     dune exec bin/pnn_train.exe -- --dataset seeds --epsilon 0.1 --no-learnable
*)

open Cmdliner

let setup_logs verbose =
  Fmt_tty.setup_std_outputs ();
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some (if verbose then Logs.Info else Logs.Warning))

let run dataset_name epsilon learnable seed epochs patience n_mc n_test verbose =
  setup_logs verbose;
  let surrogate = Surrogate.Pipeline.ensure ~n:2000 ~max_epochs:1500 ~seed:42 () in
  let dataset = Datasets.Bench13.load dataset_name in
  let spec = dataset.Datasets.Synth.spec in
  let rng = Rng.create seed in
  let split = Datasets.Synth.split rng dataset in
  let config =
    {
      Pnn.Config.default with
      epsilon;
      max_epochs = epochs;
      patience;
      n_mc_train = n_mc;
      lr_omega = (if learnable then Pnn.Config.default.Pnn.Config.lr_omega else 0.0);
    }
  in
  Printf.printf "dataset %s: %d features, %d classes, %d samples (majority %.3f)\n%!"
    spec.Datasets.Synth.name spec.Datasets.Synth.features spec.Datasets.Synth.classes
    (Array.length dataset.Datasets.Synth.y)
    (Datasets.Synth.majority_fraction dataset);
  let t0 = Unix.gettimeofday () in
  let result =
    Pnn.Training.train_fresh rng config surrogate
      ~n_classes:spec.Datasets.Synth.classes split
  in
  let t1 = Unix.gettimeofday () in
  let net = result.Pnn.Training.network in
  let history = result.Pnn.Training.history in
  Printf.printf "trained %d epochs in %.1fs; best val loss %.4f @ epoch %d\n"
    (Array.length history.Nn.Train.train_losses)
    (t1 -. t0) history.Nn.Train.best_val_loss history.Nn.Train.best_epoch;
  let nominal_train =
    Pnn.Evaluation.nominal_accuracy net ~x:split.Datasets.Synth.x_train
      ~y:split.Datasets.Synth.y_train
  in
  let nominal_test =
    Pnn.Evaluation.nominal_accuracy net ~x:split.Datasets.Synth.x_test
      ~y:split.Datasets.Synth.y_test
  in
  Printf.printf "nominal accuracy: train %.3f, test %.3f\n" nominal_train nominal_test;
  List.iter
    (fun eps ->
      let eval =
        Pnn.Evaluation.mc_accuracy (Rng.create (seed + 1000)) net ~epsilon:eps
          ~n:n_test ~x:split.Datasets.Synth.x_test ~y:split.Datasets.Synth.y_test
      in
      Printf.printf "test @ %.0f%% variation: %.3f +/- %.3f (%d draws)\n" (eps *. 100.0)
        eval.Pnn.Evaluation.mean_accuracy eval.Pnn.Evaluation.std_accuracy n_test)
    [ 0.05; 0.10 ];
  List.iteri
    (fun i layer ->
      let eta = Pnn.Nonlinear.eta_values layer.Pnn.Layer.act in
      Printf.printf "layer %d activation eta: [%.3f; %.3f; %.3f; %.3f]\n" (i + 1)
        eta.Fit.Ptanh.eta1 eta.Fit.Ptanh.eta2 eta.Fit.Ptanh.eta3 eta.Fit.Ptanh.eta4)
    (Pnn.Network.layers net)

let dataset_arg =
  Arg.(value & opt string "iris" & info [ "dataset" ] ~doc:"benchmark dataset name")

let epsilon_arg =
  Arg.(value & opt float 0.05 & info [ "epsilon" ] ~doc:"training variation (0 = nominal)")

let learnable_arg =
  Arg.(value & opt bool true & info [ "learnable" ] ~doc:"learn the nonlinear circuits")

let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"RNG seed")
let epochs_arg = Arg.(value & opt int 800 & info [ "epochs" ] ~doc:"max epochs")
let patience_arg = Arg.(value & opt int 150 & info [ "patience" ] ~doc:"early-stop patience")
let n_mc_arg = Arg.(value & opt int 5 & info [ "mc" ] ~doc:"MC samples per training step")
let n_test_arg = Arg.(value & opt int 100 & info [ "mc-test" ] ~doc:"MC draws at test time")
let verbose_arg = Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"log progress")

let cmd =
  Cmd.v
    (Cmd.info "pnn_train" ~doc:"train a printed neural network on a benchmark task")
    Term.(
      const run $ dataset_arg $ epsilon_arg $ learnable_arg $ seed_arg $ epochs_arg
      $ patience_arg $ n_mc_arg $ n_test_arg $ verbose_arg)

let () = exit (Cmd.eval cmd)
