(* Scratch: difficulty probes for the synthetic benchmark tasks.
   Prints majority fraction, nearest-centroid accuracy and 1-NN accuracy
   (train -> test) per dataset — cheap ceilings used to calibrate specs. *)

let nearest_centroid (split : Datasets.Synth.split) n_classes =
  let d = Tensor.cols split.Datasets.Synth.x_train in
  let centroids = Array.make_matrix n_classes d 0.0 in
  let counts = Array.make n_classes 0 in
  Array.iteri
    (fun i cls ->
      counts.(cls) <- counts.(cls) + 1;
      for j = 0 to d - 1 do
        centroids.(cls).(j) <-
          centroids.(cls).(j) +. Tensor.get split.Datasets.Synth.x_train i j
      done)
    split.Datasets.Synth.y_train;
  Array.iteri
    (fun cls row ->
      if counts.(cls) > 0 then
        Array.iteri (fun j v -> row.(j) <- v /. float_of_int counts.(cls)) row)
    centroids;
  let hits = ref 0 in
  Array.iteri
    (fun i cls ->
      let best = ref 0 and best_d = ref infinity in
      for c = 0 to n_classes - 1 do
        let acc = ref 0.0 in
        for j = 0 to d - 1 do
          let diff = Tensor.get split.Datasets.Synth.x_test i j -. centroids.(c).(j) in
          acc := !acc +. (diff *. diff)
        done;
        if !acc < !best_d then begin
          best_d := !acc;
          best := c
        end
      done;
      if !best = cls then incr hits)
    split.Datasets.Synth.y_test;
  float_of_int !hits /. float_of_int (Array.length split.Datasets.Synth.y_test)

let one_nn (split : Datasets.Synth.split) =
  let d = Tensor.cols split.Datasets.Synth.x_train in
  let n_train = Array.length split.Datasets.Synth.y_train in
  let hits = ref 0 in
  Array.iteri
    (fun i cls ->
      let best = ref 0 and best_d = ref infinity in
      for t = 0 to n_train - 1 do
        let acc = ref 0.0 in
        for j = 0 to d - 1 do
          let diff =
            Tensor.get split.Datasets.Synth.x_test i j
            -. Tensor.get split.Datasets.Synth.x_train t j
          in
          acc := !acc +. (diff *. diff)
        done;
        if !acc < !best_d then begin
          best_d := !acc;
          best := t
        end
      done;
      if split.Datasets.Synth.y_train.(!best) = cls then incr hits)
    split.Datasets.Synth.y_test;
  float_of_int !hits /. float_of_int (Array.length split.Datasets.Synth.y_test)

let () =
  Printf.printf "%-26s %8s %8s %8s\n" "dataset" "majority" "NC-acc" "1NN-acc";
  List.iter
    (fun data ->
      let spec = data.Datasets.Synth.spec in
      let split = Datasets.Synth.split (Rng.create 5) data in
      Printf.printf "%-26s %8.3f %8.3f %8.3f\n" spec.Datasets.Synth.name
        (Datasets.Synth.majority_fraction data)
        (nearest_centroid split spec.Datasets.Synth.classes)
        (one_nn split))
    (Datasets.Bench13.load_all ())
