(** The 13 benchmark classification tasks of the paper's Table II.

    Each synthetic task matches its UCI counterpart in dimensionality, class
    count and (sub-sampled) size; difficulty parameters are calibrated so the
    baseline pNN accuracy lands near the paper's first result column.  The two
    largest datasets (Cardiotocography, Pendigits) are sub-sampled to keep the
    full table tractable in this environment — noted in EXPERIMENTS.md. *)

val specs : Synth.spec list
(** In the paper's Table II row order. *)

val names : string list
val find : string -> Synth.spec
(** Lookup by name. Raises [Not_found]. *)

val load : string -> Synth.t
(** Generate one dataset by name.  ["balance-scale"] and ["tic-tac-toe"] are
    exact UCI reconstructions ({!Exact}); the others are calibrated synthetic
    stand-ins. *)

val load_all : unit -> Synth.t list
