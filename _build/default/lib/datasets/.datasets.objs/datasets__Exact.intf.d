lib/datasets/exact.mli: Synth
