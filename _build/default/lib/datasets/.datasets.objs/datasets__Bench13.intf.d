lib/datasets/bench13.mli: Synth
