lib/datasets/exact.ml: Array Hashtbl List Synth Tensor
