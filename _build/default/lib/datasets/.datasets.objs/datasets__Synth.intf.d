lib/datasets/synth.mli: Rng Tensor
