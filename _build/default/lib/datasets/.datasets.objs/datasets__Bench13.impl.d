lib/datasets/bench13.ml: Exact List Synth
