lib/datasets/synth.ml: Array Rng Stdlib Tensor
