(** Exact reconstructions of the rule-defined UCI benchmark datasets.

    Two of the paper's 13 datasets are not empirical collections but complete
    enumerations of a rule, so they can be reproduced {e exactly} without any
    data download:

    - {b Balance Scale} (625 instances): every combination of left/right
      weight and distance in {1..5}; the class is the side with the larger
      torque (weight × distance), or balanced.
    - {b Tic-Tac-Toe Endgame} (958 instances): every board reachable at the
      end of a game (win or draw, X moves first), labelled "X wins".

    Feature encodings are scaled to the pNN's [0, 1] voltage domain. *)

val balance_scale : unit -> Synth.t
(** 4 features (LW, LD, RW, RD scaled from {1..5}), 3 classes in the UCI
    order [L; B; R]; deterministic row order. *)

val tic_tac_toe : unit -> Synth.t
(** 9 features (x → 1, o → 0, blank → 0.5), 2 classes (positive = X wins);
    board enumeration by exhaustive game play, deduplicated, sorted. *)
