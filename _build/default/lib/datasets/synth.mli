(** Synthetic classification-task generator.

    The sealed evaluation container has no access to the 13 UCI benchmark
    datasets the paper uses, so each is replaced by a deterministic synthetic
    task matched in feature count, class count, sample count and difficulty
    (see DESIGN.md §2).  Difficulty is controlled by class-prototype
    separation, within-class spread, the number of Gaussian modes per class
    (multi-modal classes are not linearly separable) and label noise. *)

type spec = {
  name : string;
  features : int;
  classes : int;
  samples : int;
  modes_per_class : int;  (** Gaussian modes per class (≥ 1). *)
  class_sep : float;  (** prototype separation scale (≈ 0.2 easy … 0.05 hard) *)
  spread : float;  (** within-mode standard deviation *)
  label_noise : float;  (** fraction of labels replaced uniformly at random *)
  priors : float array option;  (** class priors; uniform when [None] *)
  seed : int;
}

type t = {
  spec : spec;
  x : Tensor.t;  (** [samples × features], scaled to [\[0,1]] per feature *)
  y : int array;  (** class index per row *)
}

val generate : spec -> t
(** Deterministic in [spec.seed]. Raises [Invalid_argument] on nonsensical
    specs (no classes, more priors than classes, ...). *)

val one_hot : n_classes:int -> int array -> Tensor.t
val class_counts : t -> int array
val majority_fraction : t -> float

type split = {
  x_train : Tensor.t;
  y_train : int array;
  x_val : Tensor.t;
  y_val : int array;
  x_test : Tensor.t;
  y_test : int array;
}

val split : Rng.t -> ?fractions:float * float -> t -> split
(** Random split; [fractions] is [(train, validation)] and defaults to the
    paper's (0.6, 0.2), leaving 20 % for test. *)
