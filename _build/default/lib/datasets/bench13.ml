(* Difficulty calibration targets the paper's baseline column (non-learnable,
   nominal training, tested at 5 % variation): e.g. Acute Inflammation 0.82,
   Pendigits 0.31, Tic-Tac-Toe 0.63 (= its majority-class fraction, which the
   priors below reproduce).  class_sep/spread/modes were tuned against the
   baseline pNN, not against any classifier stronger than the paper's
   #input-3-#output topology. *)

let spec name features classes samples ?(modes = 1) ?(sep = 0.15) ?(spread = 0.08)
    ?(label_noise = 0.0) ?priors seed =
  {
    Synth.name;
    features;
    classes;
    samples;
    modes_per_class = modes;
    class_sep = sep;
    spread;
    label_noise;
    priors;
    seed;
  }

let specs =
  [
    (* name                      feat cls  n *)
    spec "acute-inflammation" 6 2 120 ~sep:0.26 ~spread:0.12 ~label_noise:0.02 1001;
    spec "balance-scale" 4 3 625 ~modes:2 ~sep:0.17 ~spread:0.12 ~label_noise:0.03 1002;
    spec "breast-cancer-wisconsin" 9 2 699 ~sep:0.28 ~spread:0.12 ~label_noise:0.02 1003;
    spec "cardiotocography" 21 3 1200 ~modes:3 ~sep:0.12 ~spread:0.13 ~label_noise:0.05
      ~priors:[| 0.55; 0.30; 0.15 |] 1004;
    spec "energy-efficiency-y1" 8 3 768 ~modes:2 ~sep:0.18 ~spread:0.12 ~label_noise:0.02 1005;
    spec "energy-efficiency-y2" 8 3 768 ~modes:3 ~sep:0.15 ~spread:0.14 ~label_noise:0.06 1006;
    spec "iris" 4 3 150 ~modes:2 ~sep:0.17 ~spread:0.14 ~label_noise:0.05 1007;
    spec "mammographic-mass" 5 2 961 ~modes:2 ~sep:0.11 ~spread:0.15 ~label_noise:0.14 1008;
    spec "pendigits" 16 10 1200 ~sep:0.25 ~spread:0.08 ~label_noise:0.02 1009;
    spec "seeds" 7 3 210 ~modes:2 ~sep:0.15 ~spread:0.13 ~label_noise:0.03 1010;
    spec "tic-tac-toe" 9 2 958 ~modes:4 ~sep:0.08 ~spread:0.12 ~label_noise:0.08
      ~priors:[| 0.35; 0.65 |] 1011;
    spec "vertebral-2c" 6 2 310 ~modes:2 ~sep:0.08 ~spread:0.14 ~label_noise:0.10 1012;
    spec "vertebral-3c" 6 3 310 ~modes:2 ~sep:0.10 ~spread:0.14 ~label_noise:0.12 1013;
  ]

let names = List.map (fun s -> s.Synth.name) specs

let find name =
  match List.find_opt (fun s -> s.Synth.name = name) specs with
  | Some s -> s
  | None -> raise Not_found

(* Two of the thirteen datasets are rule-defined enumerations and are
   reconstructed exactly (see Exact); the rest are calibrated synthetic
   stand-ins.  The synthetic specs for the exact pair remain in [specs] to
   document their dimensions and to parameterize the difficulty ablations. *)
let load name =
  match name with
  | "balance-scale" -> Exact.balance_scale ()
  | "tic-tac-toe" -> Exact.tic_tac_toe ()
  | _ -> Synth.generate (find name)

let load_all () = List.map (fun s -> load s.Synth.name) specs
