type spec = {
  name : string;
  features : int;
  classes : int;
  samples : int;
  modes_per_class : int;
  class_sep : float;
  spread : float;
  label_noise : float;
  priors : float array option;
  seed : int;
}

type t = { spec : spec; x : Tensor.t; y : int array }

let validate spec =
  if spec.features < 1 then invalid_arg "Synth.generate: features < 1";
  if spec.classes < 2 then invalid_arg "Synth.generate: classes < 2";
  if spec.samples < spec.classes then invalid_arg "Synth.generate: too few samples";
  if spec.modes_per_class < 1 then invalid_arg "Synth.generate: modes_per_class < 1";
  if spec.label_noise < 0.0 || spec.label_noise > 1.0 then
    invalid_arg "Synth.generate: label_noise outside [0,1]";
  match spec.priors with
  | Some p when Array.length p <> spec.classes ->
      invalid_arg "Synth.generate: priors length mismatch"
  | Some p when Array.exists (fun v -> v < 0.0) p ->
      invalid_arg "Synth.generate: negative prior"
  | Some _ | None -> ()

let pick_class rng cumulative =
  let u = Rng.float rng in
  let n = Array.length cumulative in
  let rec find i = if i >= n - 1 || u < cumulative.(i) then i else find (i + 1) in
  find 0

let generate spec =
  validate spec;
  let rng = Rng.create spec.seed in
  let d = spec.features in
  (* Class anchors: random directions rescaled around their centroid so the
     root-mean-square anchor-to-centroid distance is exactly class_sep.  This
     pins the separability ratio class_sep/spread independent of the seed,
     feature count and class count; with random placement the task's Bayes
     error varies wildly between specs. *)
  let anchors =
    Array.init spec.classes (fun _ ->
        Array.init d (fun _ -> Rng.gaussian rng ~mu:0.0 ~sigma:1.0))
  in
  let centroid =
    Array.init d (fun j ->
        Array.fold_left (fun acc a -> acc +. a.(j)) 0.0 anchors
        /. float_of_int spec.classes)
  in
  let rms =
    sqrt
      (Array.fold_left
         (fun acc a ->
           acc
           +. Array.fold_left ( +. ) 0.0
                (Array.mapi (fun j v -> (v -. centroid.(j)) ** 2.0) a))
         0.0 anchors
      /. float_of_int spec.classes)
  in
  let scale = spec.class_sep /. Stdlib.max rms 1e-9 in
  let anchors =
    Array.map
      (fun a -> Array.mapi (fun j v -> 0.5 +. ((v -. centroid.(j)) *. scale)) a)
      anchors
  in
  (* Modes jitter around their class anchor at half the class separation, so
     multi-modal classes bleed into their neighbours (not linearly separable). *)
  let centers =
    Array.map
      (fun anchor ->
        Array.init spec.modes_per_class (fun m ->
            if m = 0 then Array.copy anchor
            else
              Array.map
                (fun a -> a +. Rng.gaussian rng ~mu:0.0 ~sigma:(spec.class_sep *. 0.5))
                anchor))
      anchors
  in
  let cumulative =
    let p =
      match spec.priors with
      | Some p ->
          let s = Array.fold_left ( +. ) 0.0 p in
          Array.map (fun v -> v /. s) p
      | None -> Array.make spec.classes (1.0 /. float_of_int spec.classes)
    in
    let acc = ref 0.0 in
    Array.map
      (fun v ->
        acc := !acc +. v;
        !acc)
      p
  in
  let y = Array.make spec.samples 0 in
  let x = Tensor.zeros spec.samples d in
  for i = 0 to spec.samples - 1 do
    let cls = pick_class rng cumulative in
    let mode = Rng.int rng spec.modes_per_class in
    let center = centers.(cls).(mode) in
    y.(i) <- cls;
    for j = 0 to d - 1 do
      Tensor.set x i j (center.(j) +. Rng.gaussian rng ~mu:0.0 ~sigma:spec.spread)
    done
  done;
  (* label noise *)
  if spec.label_noise > 0.0 then
    for i = 0 to spec.samples - 1 do
      if Rng.float rng < spec.label_noise then y.(i) <- Rng.int rng spec.classes
    done;
  (* per-feature min-max scaling into the [0,1] voltage domain *)
  let x_scaled =
    let lo = Array.make d infinity and hi = Array.make d neg_infinity in
    for i = 0 to spec.samples - 1 do
      for j = 0 to d - 1 do
        let v = Tensor.get x i j in
        if v < lo.(j) then lo.(j) <- v;
        if v > hi.(j) then hi.(j) <- v
      done
    done;
    Tensor.init spec.samples d (fun i j ->
        let range = Stdlib.max (hi.(j) -. lo.(j)) 1e-9 in
        (Tensor.get x i j -. lo.(j)) /. range)
  in
  { spec; x = x_scaled; y }

let one_hot ~n_classes y =
  let t = Tensor.zeros (Array.length y) n_classes in
  Array.iteri
    (fun i cls ->
      if cls < 0 || cls >= n_classes then invalid_arg "Synth.one_hot: class out of range";
      Tensor.set t i cls 1.0)
    y;
  t

let class_counts t =
  let counts = Array.make t.spec.classes 0 in
  Array.iter (fun cls -> counts.(cls) <- counts.(cls) + 1) t.y;
  counts

let majority_fraction t =
  let counts = class_counts t in
  float_of_int (Array.fold_left Stdlib.max 0 counts) /. float_of_int (Array.length t.y)

type split = {
  x_train : Tensor.t;
  y_train : int array;
  x_val : Tensor.t;
  y_val : int array;
  x_test : Tensor.t;
  y_test : int array;
}

let split rng ?(fractions = (0.6, 0.2)) t =
  let f_train, f_val = fractions in
  if f_train <= 0.0 || f_val < 0.0 || f_train +. f_val >= 1.0 then
    invalid_arg "Synth.split: bad fractions";
  let n = Array.length t.y in
  let perm = Rng.perm rng n in
  let n_train = int_of_float (float_of_int n *. f_train) in
  let n_val = int_of_float (float_of_int n *. f_val) in
  let take start len =
    let idx = Array.sub perm start len in
    (Tensor.take_rows t.x idx, Array.map (fun i -> t.y.(i)) idx)
  in
  let x_train, y_train = take 0 n_train in
  let x_val, y_val = take n_train n_val in
  let x_test, y_test = take (n_train + n_val) (n - n_train - n_val) in
  { x_train; y_train; x_val; y_val; x_test; y_test }
