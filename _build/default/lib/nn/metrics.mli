(** Classification and regression metrics. *)

val accuracy : logits:Tensor.t -> labels:Tensor.t -> float
(** Fraction of rows whose argmax matches the one-hot label argmax. *)

val accuracy_idx : logits:Tensor.t -> labels:int array -> float
val mse : Tensor.t -> Tensor.t -> float
val r2 : pred:Tensor.t -> target:Tensor.t -> float
(** Coefficient of determination over all entries. *)

val confusion : logits:Tensor.t -> labels:int array -> n_classes:int -> int array array
(** [confusion.(true_class).(predicted_class)] counts. *)
