(** Multi-layer perceptrons.

    Used both as the paper's surrogate regression network (13 layers,
    10-9-9-8-8-7-7-6-6-6-5-5-5-4) and in tests.  Weights serialize to a plain
    text format so the surrogate pipeline can cache its artifact. *)

type t

val create :
  Rng.t ->
  sizes:int list ->
  hidden:Activation.t ->
  output:Activation.t ->
  t
(** [sizes] lists layer widths including input and output
    (e.g. [[10; 9; ...; 4]]); needs at least two entries. *)

val forward : t -> Autodiff.t -> Autodiff.t
val forward_tensor : t -> Tensor.t -> Tensor.t
val forward_frozen : t -> Autodiff.t -> Autodiff.t
(** Forward pass with the weights treated as constants: gradients flow through
    the {e input} but not into the weights.  This is how the frozen surrogate
    participates in pNN training. *)

val params : t -> Autodiff.t list
val sizes : t -> int list
val snapshot : t -> (Tensor.t * Tensor.t) list
val restore : t -> (Tensor.t * Tensor.t) list -> unit

val to_lines : t -> string list
(** Text serialization (architecture header + one line per tensor). *)

val of_lines : string list -> t * string list
(** Parse a network from serialized lines; returns remaining lines. Raises
    [Failure] on malformed input. *)
