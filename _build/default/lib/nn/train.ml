type config = {
  max_epochs : int;
  patience : int;
  min_delta : float;
  log_every : int;
  val_every : int;
}

let default_config =
  { max_epochs = 1000; patience = 100; min_delta = 0.0; log_every = 0; val_every = 1 }

type history = {
  train_losses : float array;
  val_losses : float array;
  best_epoch : int;
  best_val_loss : float;
  stopped_early : bool;
}

let run ~config ~optimizers ~train_loss ~val_loss ~snapshot ~restore =
  if config.val_every < 1 then invalid_arg "Train.run: val_every < 1";
  let train_hist = ref [] and val_hist = ref [] in
  let best_val = ref infinity and best_epoch = ref 0 in
  let epochs_since_best = ref 0 in
  let stopped_early = ref false in
  (try
     for epoch = 0 to config.max_epochs - 1 do
       let loss = train_loss () in
       Autodiff.backward loss;
       List.iter (fun (opt, ps) -> Optimizer.step opt ps) optimizers;
       let tl = Tensor.get (Autodiff.value loss) 0 0 in
       train_hist := tl :: !train_hist;
       incr epochs_since_best;
       if epoch mod config.val_every = 0 then begin
         let vl = val_loss () in
         val_hist := vl :: !val_hist;
         if config.log_every > 0 && epoch mod config.log_every = 0 then
           Logs.info (fun m ->
               m "epoch %d: train %.5f val %.5f (best %.5f @%d)" epoch tl vl
                 !best_val !best_epoch);
         if vl < !best_val -. config.min_delta then begin
           best_val := vl;
           best_epoch := epoch;
           epochs_since_best := 0;
           snapshot ()
         end
         else if !epochs_since_best > config.patience then begin
           stopped_early := true;
           raise Exit
         end
       end
     done
   with Exit -> ());
  if !best_val < infinity then restore ();
  {
    train_losses = Array.of_list (List.rev !train_hist);
    val_losses = Array.of_list (List.rev !val_hist);
    best_epoch = !best_epoch;
    best_val_loss = !best_val;
    stopped_early = !stopped_early;
  }
