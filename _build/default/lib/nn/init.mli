(** Weight initialization schemes. *)

type scheme =
  | Xavier  (** Glorot uniform — default for tanh/sigmoid networks. *)
  | He  (** He normal — for ReLU networks. *)
  | Uniform of float  (** U[-a, a]. *)

val tensor : Rng.t -> scheme -> inputs:int -> outputs:int -> Tensor.t
(** Weight matrix of shape [inputs × outputs] drawn from the scheme. *)
