(** Generic training loop with validation-based early stopping.

    The loop is deliberately abstract over the model: the caller supplies a
    thunk that rebuilds the (possibly stochastic) training-loss graph, a thunk
    that evaluates the validation loss, and snapshot/restore callbacks for
    best-epoch weight keeping.  Both the surrogate regressor and the pNN
    training of the paper instantiate this loop. *)

type config = {
  max_epochs : int;
  patience : int;  (** epochs without validation improvement before stopping *)
  min_delta : float;  (** improvement threshold (paper: plain early stopping → 0.) *)
  log_every : int;  (** 0 disables logging *)
  val_every : int;
      (** evaluate the validation loss every [val_every] epochs (≥ 1).  The
          Monte-Carlo validation loss of variation-aware training is as
          expensive as a training step, so pNN training uses 5. *)
}

val default_config : config

type history = {
  train_losses : float array;
  val_losses : float array;
  best_epoch : int;  (** epoch index of the best validation loss *)
  best_val_loss : float;
  stopped_early : bool;
}

val run :
  config:config ->
  optimizers:(Optimizer.t * Autodiff.t list) list ->
  train_loss:(unit -> Autodiff.t) ->
  val_loss:(unit -> float) ->
  snapshot:(unit -> unit) ->
  restore:(unit -> unit) ->
  history
(** Runs until [max_epochs] or patience exhaustion, keeping the best weights
    (by validation loss) via [snapshot]; calls [restore] before returning so
    the model ends at its best validation epoch.  Each optimizer updates its
    own parameter group, enabling the paper's two learning rates. *)
