type scheme = Xavier | He | Uniform of float

let tensor rng scheme ~inputs ~outputs =
  match scheme with
  | Xavier ->
      let a = sqrt (6.0 /. float_of_int (inputs + outputs)) in
      Tensor.uniform rng inputs outputs ~lo:(-.a) ~hi:a
  | He ->
      let sigma = sqrt (2.0 /. float_of_int inputs) in
      Tensor.gaussian rng inputs outputs ~mu:0.0 ~sigma
  | Uniform a -> Tensor.uniform rng inputs outputs ~lo:(-.a) ~hi:a
