(** A fully-connected layer [y = x·W + b]. *)

type t = { w : Autodiff.t; b : Autodiff.t }

val create : Rng.t -> ?init:Init.scheme -> inputs:int -> outputs:int -> unit -> t
val forward : t -> Autodiff.t -> Autodiff.t
val forward_tensor : t -> Tensor.t -> Tensor.t
val params : t -> Autodiff.t list
val inputs : t -> int
val outputs : t -> int
val snapshot : t -> Tensor.t * Tensor.t
(** Copies of the current weights (for best-epoch restoration). *)

val restore : t -> Tensor.t * Tensor.t -> unit
(** Write a snapshot back into the layer's parameters in place. *)
