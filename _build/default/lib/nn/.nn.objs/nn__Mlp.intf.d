lib/nn/mlp.mli: Activation Autodiff Rng Tensor
