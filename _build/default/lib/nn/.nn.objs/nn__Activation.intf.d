lib/nn/activation.mli: Autodiff Tensor
