lib/nn/dense.mli: Autodiff Init Rng Tensor
