lib/nn/init.ml: Tensor
