lib/nn/mlp.ml: Activation Array Autodiff Buffer Dense List Printf String Tensor
