lib/nn/train.mli: Autodiff Optimizer
