lib/nn/init.mli: Rng Tensor
