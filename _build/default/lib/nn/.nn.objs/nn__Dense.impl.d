lib/nn/dense.ml: Autodiff Init Tensor
