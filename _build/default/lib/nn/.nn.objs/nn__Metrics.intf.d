lib/nn/metrics.mli: Tensor
