lib/nn/metrics.ml: Array Stdlib Tensor
