lib/nn/train.ml: Array Autodiff List Logs Optimizer Tensor
