lib/nn/activation.ml: Autodiff Stdlib Tensor
