lib/nn/optimizer.ml: Array Autodiff Hashtbl List Tensor
