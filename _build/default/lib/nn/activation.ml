type t = Tanh | Relu | Sigmoid | Linear

let apply t x =
  match t with
  | Tanh -> Autodiff.tanh x
  | Relu -> Autodiff.relu x
  | Sigmoid -> Autodiff.sigmoid x
  | Linear -> x

let apply_tensor t x =
  match t with
  | Tanh -> Tensor.map Stdlib.tanh x
  | Relu -> Tensor.map (fun v -> if v > 0.0 then v else 0.0) x
  | Sigmoid -> Tensor.map (fun v -> 1.0 /. (1.0 +. exp (-.v))) x
  | Linear -> x

let of_string = function
  | "tanh" -> Tanh
  | "relu" -> Relu
  | "sigmoid" -> Sigmoid
  | "linear" -> Linear
  | s -> invalid_arg ("Activation.of_string: unknown activation " ^ s)

let to_string = function
  | Tanh -> "tanh"
  | Relu -> "relu"
  | Sigmoid -> "sigmoid"
  | Linear -> "linear"
