type adam_state = { m : float array; v : float array }

type algo =
  | Sgd
  | Adam of {
      beta1 : float;
      beta2 : float;
      eps : float;
      mutable t : int;
      table : (int, adam_state) Hashtbl.t;
    }

type t = { mutable lr : float; algo : algo }

let sgd ~lr = { lr; algo = Sgd }

let adam ?(beta1 = 0.9) ?(beta2 = 0.999) ?(eps = 1e-8) ~lr () =
  { lr; algo = Adam { beta1; beta2; eps; t = 0; table = Hashtbl.create 16 } }

let lr t = t.lr
let set_lr t v = t.lr <- v

(* Parameter leaves persist across training steps (graphs are rebuilt around
   them), so the node id is a stable key for per-parameter state. *)
let key_of node = Autodiff.id node

let step t nodes =
  List.iter
    (fun node ->
      if not (Autodiff.is_param node) then
        invalid_arg "Optimizer.step: node is not a parameter")
    nodes;
  match t.algo with
  | Sgd ->
      List.iter
        (fun node ->
          let value = Autodiff.value node and grad = Autodiff.grad node in
          let vd = value.Tensor.data and gd = grad.Tensor.data in
          for i = 0 to Array.length vd - 1 do
            vd.(i) <- vd.(i) -. (t.lr *. gd.(i))
          done)
        nodes
  | Adam a ->
      a.t <- a.t + 1;
      let bc1 = 1.0 -. (a.beta1 ** float_of_int a.t) in
      let bc2 = 1.0 -. (a.beta2 ** float_of_int a.t) in
      List.iter
        (fun node ->
          let value = Autodiff.value node and grad = Autodiff.grad node in
          let vd = value.Tensor.data and gd = grad.Tensor.data in
          let n = Array.length vd in
          let state =
            let k = key_of node in
            match Hashtbl.find_opt a.table k with
            | Some s -> s
            | None ->
                let s = { m = Array.make n 0.0; v = Array.make n 0.0 } in
                Hashtbl.add a.table k s;
                s
          in
          for i = 0 to n - 1 do
            let g = gd.(i) in
            state.m.(i) <- (a.beta1 *. state.m.(i)) +. ((1.0 -. a.beta1) *. g);
            state.v.(i) <- (a.beta2 *. state.v.(i)) +. ((1.0 -. a.beta2) *. g *. g);
            let mhat = state.m.(i) /. bc1 in
            let vhat = state.v.(i) /. bc2 in
            vd.(i) <- vd.(i) -. (t.lr *. mhat /. (sqrt vhat +. a.eps))
          done)
        nodes
