lib/qmc/lhs.mli: Rng
