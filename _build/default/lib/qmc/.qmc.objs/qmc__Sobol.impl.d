lib/qmc/sobol.ml: Array Printf Stdlib
