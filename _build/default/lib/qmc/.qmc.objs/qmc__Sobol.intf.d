lib/qmc/sobol.mli:
