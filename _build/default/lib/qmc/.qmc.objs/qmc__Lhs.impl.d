lib/qmc/lhs.ml: Array Rng
