let sample rng ~dim ~n =
  if dim < 1 || n < 1 then invalid_arg "Lhs.sample: dim and n must be positive";
  let columns =
    Array.init dim (fun _ ->
        let p = Rng.perm rng n in
        Array.map
          (fun bin -> (float_of_int bin +. Rng.float rng) /. float_of_int n)
          p)
  in
  Array.init n (fun i -> Array.init dim (fun d -> columns.(d).(i)))

let sample_in_box rng ~lo ~hi ~n =
  let dim = Array.length lo in
  if Array.length hi <> dim then invalid_arg "Lhs.sample_in_box: bounds mismatch";
  let pts = sample rng ~dim ~n in
  Array.map (Array.mapi (fun d u -> lo.(d) +. ((hi.(d) -. lo.(d)) *. u))) pts
