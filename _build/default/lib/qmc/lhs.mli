(** Latin hypercube sampling — a randomized space-filling design used as an
    ablation alternative to the paper's Sobol sampling. *)

val sample : Rng.t -> dim:int -> n:int -> float array array
(** [n] points in [\[0,1)^dim]: each axis is stratified into [n] equal bins,
    one point per bin, bins permuted independently per axis. *)

val sample_in_box : Rng.t -> lo:float array -> hi:float array -> n:int -> float array array
