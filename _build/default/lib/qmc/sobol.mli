(** Sobol low-discrepancy sequences (Quasi Monte-Carlo).

    Gray-code construction with Joe–Kuo direction numbers; supports up to
    {!max_dimension} dimensions, which covers the paper's 7-dimensional
    nonlinear-circuit design space.  The first point of the sequence proper is
    the origin; like most practical implementations we skip it by default so
    sampled circuits are strictly inside the design box. *)

val max_dimension : int

type t

val create : ?skip:int -> int -> t
(** [create dim] starts a [dim]-dimensional sequence. [skip] drops that many
    initial points (default 1, dropping the all-zeros point). Raises
    [Invalid_argument] if [dim] is not within [1 .. max_dimension]. *)

val dimension : t -> int

val next : t -> float array
(** Next point in the unit hypercube [\[0,1)^dim]. *)

val next_in_box : t -> lo:float array -> hi:float array -> float array
(** Next point scaled to the axis-aligned box. *)

val generate : t -> int -> float array array
(** [generate t n] draws the next [n] points. *)
