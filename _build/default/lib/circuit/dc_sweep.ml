type point = { vin : float; vout : float }

let linspace lo hi n =
  if n < 2 then invalid_arg "Dc_sweep.linspace: need n >= 2";
  Array.init n (fun i ->
      lo +. ((hi -. lo) *. float_of_int i /. float_of_int (n - 1)))

let run ?(options = Mna.default_options) ~model ~netlist ~source ~output ~sweep () =
  let guess = ref None in
  Array.map
    (fun vin ->
      Netlist.set_source netlist source vin;
      let sol = Mna.solve ~options ?initial:!guess model netlist in
      guess := Some sol.Mna.voltages;
      { vin; vout = sol.Mna.voltages.(output) })
    sweep
