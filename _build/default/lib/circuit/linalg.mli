(** Small dense linear algebra for circuit analysis and curve fitting. *)

val solve : float array array -> float array -> float array
(** [solve a b] solves [a · x = b] by LU factorization with partial pivoting.
    [a] and [b] are left unmodified.  Raises [Failure "Linalg.solve: singular"]
    when the matrix is (numerically) singular. *)

val solve_in_place : float array array -> float array -> float array
(** Like {!solve} but destroys its inputs (used in Newton inner loops to avoid
    allocation). The result aliases [b]. *)

val matvec : float array array -> float array -> float array
val residual_norm : float array array -> float array -> float array -> float
(** [residual_norm a x b] is [max_i |(a·x - b)_i|]. *)
