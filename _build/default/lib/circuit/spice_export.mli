(** Export netlists to SPICE (ngspice-compatible) text.

    Lets a design produced in this reproduction be cross-checked in a real
    SPICE: passives map to standard cards and the EGT compact model is
    emitted as a behavioural current source (B-source) implementing the same
    smoothed square-law equation as {!Egt}. *)

val to_spice : ?title:string -> ?model:Egt.params -> Netlist.t -> string
(** Complete netlist file ending in [.end].  Node 0 is SPICE ground. *)

val ptanh_circuit : ?title:string -> Ptanh_circuit.omega -> string
(** Convenience: the paper's nonlinear circuit for a given ω, with a
    [.dc] sweep card matching {!Ptanh_circuit.transfer}. *)
