type params = { k_prime : float; v_th : float; lambda : float; alpha : float }

(* v_th is calibrated so that the inverter's switch point, seen through the
   Table-I gate dividers (ratio ≈ 0.1 … 0.5), falls inside the 0–1 V input
   range for most of the design space — the paper's "sweep analysis … which
   leads to tanh-like characteristic curves". *)
let default = { k_prime = 1.5e-5; v_th = 0.08; lambda = 0.05; alpha = 0.1 }

type eval = { id : float; gm : float; gds : float }

(* softplus with overflow guard: alpha * ln(1 + exp(x/alpha)) *)
let softplus alpha x =
  let z = x /. alpha in
  if z > 30.0 then x
  else if z < -30.0 then 0.0
  else alpha *. log (1.0 +. exp z)

let softplus' alpha x =
  let z = x /. alpha in
  if z > 30.0 then 1.0 else if z < -30.0 then 0.0 else 1.0 /. (1.0 +. exp (-.z))

let evaluate_pos p ~wl ~vgs ~vds =
  let ov = softplus p.alpha (vgs -. p.v_th) in
  let dov = softplus' p.alpha (vgs -. p.v_th) in
  let vsat = Stdlib.max ov 1e-3 in
  let u = vds /. vsat in
  let t = tanh u in
  let sech2 = 1.0 -. (t *. t) in
  let clm = 1.0 +. (p.lambda *. vds) in
  let k = p.k_prime *. wl in
  let id = k *. ov *. ov *. t *. clm in
  (* gm: d/dvgs [k ov^2 tanh(vds/vsat) clm]; vsat depends on ov when ov>1e-3 *)
  let dvsat_dov = if ov > 1e-3 then 1.0 else 0.0 in
  let dt_dvgs = sech2 *. (-.vds /. (vsat *. vsat)) *. dvsat_dov *. dov in
  let gm = (k *. 2.0 *. ov *. dov *. t *. clm) +. (k *. ov *. ov *. dt_dvgs *. clm) in
  let gds =
    (k *. ov *. ov *. sech2 /. vsat *. clm) +. (k *. ov *. ov *. t *. p.lambda)
  in
  { id; gm; gds }

let evaluate p ~w_um ~l_um ~vgs ~vds =
  if w_um <= 0.0 || l_um <= 0.0 then invalid_arg "Egt.evaluate: non-positive geometry";
  let wl = w_um /. l_um in
  if vds >= 0.0 then evaluate_pos p ~wl ~vgs ~vds
  else begin
    (* antisymmetry: swap drain/source. vgs seen from the new source is
       vgs - vds; current flips sign. *)
    let e = evaluate_pos p ~wl ~vgs:(vgs -. vds) ~vds:(-.vds) in
    (* I(vgs,vds) = -I+(vgs - vds, -vds)
       dI/dvgs = -dI+/dvgs
       dI/dvds = -( dI+/dvgs * (-1) + dI+/dvds * (-1) ) = e.gm + e.gds *)
    { id = -.e.id; gm = -.e.gm; gds = e.gm +. e.gds }
  end
