(* B-source expression for the EGT model (vds >= 0 branch; the antisymmetric
   branch is composed with ternaries).  softplus is written with ln/exp and
   relies on ngspice folding large exponents; the limit() guard keeps the
   argument sane. *)
let egt_expression p ~w_over_l ~gate ~drain ~source =
  let ov v_gs =
    Printf.sprintf "(%g*ln(1+exp(limit((%s-%g)/%g,-30,30))))" p.Egt.alpha v_gs p.Egt.v_th
      p.Egt.alpha
  in
  let branch ~v_gs ~v_ds sign =
    let ov = ov v_gs in
    Printf.sprintf
      "%s(%g*(%g)*%s*%s*tanh(%s/max(%s,1e-3))*(1+%g*%s))" sign p.Egt.k_prime w_over_l ov
      ov v_ds ov p.Egt.lambda v_ds
  in
  let vgs_f = Printf.sprintf "(v(%d)-v(%d))" gate source in
  let vds_f = Printf.sprintf "(v(%d)-v(%d))" drain source in
  let vgs_r = Printf.sprintf "(v(%d)-v(%d))" gate drain in
  let vds_r = Printf.sprintf "(v(%d)-v(%d))" source drain in
  Printf.sprintf "I = (%s >= 0) ? %s : %s" vds_f
    (branch ~v_gs:vgs_f ~v_ds:vds_f "")
    (branch ~v_gs:vgs_r ~v_ds:vds_r "-")

let to_spice ?(title = "printed neuromorphic circuit") ?(model = Egt.default) netlist =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf ("* " ^ title ^ "\n");
  let r = ref 0 and c = ref 0 and i = ref 0 and b = ref 0 in
  List.iter
    (fun e ->
      match e with
      | Netlist.Resistor { a; b = nb; ohms } ->
          incr r;
          Buffer.add_string buf (Printf.sprintf "R%d %d %d %g\n" !r a nb ohms)
      | Netlist.Capacitor { a; b = nb; farads } ->
          incr c;
          Buffer.add_string buf (Printf.sprintf "C%d %d %d %g\n" !c a nb farads)
      | Netlist.Vsource { name; plus; minus; volts } ->
          Buffer.add_string buf (Printf.sprintf "V%s %d %d DC %g\n" name plus minus volts)
      | Netlist.Isource { into; out_of; amps } ->
          incr i;
          (* SPICE convention: current flows from node1 through the source to
             node2, so (out_of, into) injects into [into]. *)
          Buffer.add_string buf (Printf.sprintf "I%d %d %d DC %g\n" !i out_of into amps)
      | Netlist.Transistor { gate; drain; source; w_um; l_um } ->
          incr b;
          let expr =
            egt_expression model ~w_over_l:(w_um /. l_um) ~gate ~drain ~source
          in
          Buffer.add_string buf (Printf.sprintf "B%d %d %d %s\n" !b drain source expr))
    (Netlist.elements netlist);
  Buffer.add_string buf ".end\n";
  Buffer.contents buf

let ptanh_circuit ?(title = "ptanh nonlinear circuit") omega =
  let netlist, out = Ptanh_circuit.build omega in
  let body = to_spice ~title netlist in
  (* splice the sweep/control cards before .end *)
  let control =
    Printf.sprintf ".dc Vvin 0 %g 0.025\n.print dc v(%d)\n" Ptanh_circuit.vdd out
  in
  match String.length body with
  | n when n >= 5 -> String.sub body 0 (n - 5) ^ control ^ ".end\n"
  | _ -> body
