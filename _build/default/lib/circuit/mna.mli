(** Nonlinear DC operating-point analysis by modified nodal analysis (MNA)
    with damped Newton–Raphson.

    Unknowns are the non-ground node voltages plus one branch current per
    voltage source.  Nonlinear transistors are linearized at each iterate with
    their companion model (gm, gds stamps + equivalent current source).  A
    voltage step limiter (damping) keeps the iteration stable through the
    transistor's exponential-ish region. *)

type options = {
  max_iterations : int;
  tolerance : float;  (** convergence: max |ΔV| between iterates *)
  damping : float;  (** max voltage change per node per iteration (V) *)
  gmin : float;  (** shunt conductance to ground on every node (helps conditioning) *)
}

val default_options : options

type solution = { voltages : float array; iterations : int }
(** [voltages.(n)] is the solved voltage of node [n] ([voltages.(0) = 0]). *)

exception No_convergence of { iterations : int; residual : float }

val solve : ?options:options -> ?initial:float array -> Egt.params -> Netlist.t -> solution
(** [solve model netlist] computes the DC operating point.  [initial] is a
    warm-start guess of node voltages (length [node_count]); the default
    starts every node at 0.5 V.  Raises {!No_convergence} after
    [max_iterations], and [Invalid_argument] if the netlist fails
    {!Netlist.validate}. *)
