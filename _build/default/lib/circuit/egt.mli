(** Electrolyte-gated transistor (EGT) compact model.

    Printed inorganic EGTs (Rasheed et al., IEEE TED 2019) are n-type
    enhancement devices operating below 1 V.  We use a smoothed square-law
    model with a tanh drain-saturation characteristic — the standard compact
    form for analog hand analysis:

      I_D = K·(W/L)·ov² · tanh(V_DS / max(ov, v_eps)) · (1 + λ·V_DS)
      ov  = α·softplus((V_GS − V_TH)/α)          (smooth overdrive)

    The softplus smoothing keeps the model C¹ across the threshold, which the
    Newton solver needs; the tanh interpolates triode → saturation.  Absolute
    currents are calibrated so that with the Table-I load resistors and a 1 V
    supply the inverter swings rail-to-rail (what the training flow needs is
    the {e shape family} of the transfer curves, see DESIGN.md §2). *)

type params = {
  k_prime : float;  (** transconductance factor K (A/V²) per W/L square *)
  v_th : float;  (** threshold voltage (V) *)
  lambda : float;  (** channel-length modulation (1/V) *)
  alpha : float;  (** softplus smoothing width (V) *)
}

val default : params
(** Calibrated for the printed pPDK-like regime used in this reproduction. *)

type eval = { id : float; gm : float; gds : float }
(** Drain current and its partial derivatives w.r.t. V_GS and V_DS. *)

val evaluate : params -> w_um:float -> l_um:float -> vgs:float -> vds:float -> eval
(** Evaluate the model. Handles negative [vds] by antisymmetry (source/drain
    swap), so the Newton solver can wander through sign changes. *)
