(** The parametric nonlinear subcircuit of the paper (Fig. 1, right).

    Two cascaded inverter stages built from the physical parameters
    ω = [R1ᴺ, R2ᴺ, R3ᴺ, R4ᴺ, R5ᴺ, W, L]:

    {v
        Vin ──R1──┬          VDD            VDD
                  R2    R5─┤            R5─┤
                  │        ├── n1 ─R3─┬    ├── Vout
       stage 1:   └──gate T1          R4 ──gate T2
                           │          │    │
                          GND        GND  GND
    v}

    Stage 1: the R1/R2 divider conditions the input (the R1ᴺ > R2ᴺ
    constraint of Table I keeps its ratio below 1/2); T1 with load R5 inverts.
    Stage 2: the R3/R4 divider conditions the stage-1 output; T2 with a second
    copy of R5 inverts again, so the overall transfer is a rising tanh-like
    curve — the [ptanh] of Eq. 2.  The negative-weight circuit (Eq. 3) reuses
    the same hardware; its behavioural model is the negated fit (see
    [Fit.Ptanh]). *)

type omega = {
  r1 : float;  (** Ω *)
  r2 : float;  (** Ω *)
  r3 : float;  (** kΩ, stored in Ω here *)
  r4 : float;  (** kΩ, stored in Ω here *)
  r5 : float;  (** kΩ, stored in Ω here *)
  w_um : float;
  l_um : float;
}

val vdd : float
(** Supply/bias voltage (1 V, the paper's V_b). *)

val omega_of_array : float array -> omega
(** From [[|r1; r2; r3; r4; r5; w; l|]] in Ω/Ω/Ω/Ω/Ω/µm/µm. *)

val omega_to_array : omega -> float array

val build : omega -> Netlist.t * Netlist.node
(** Netlist with a sweepable source named ["vin"]; returns the output node. *)

val transfer :
  ?model:Egt.params -> ?points:int -> omega -> (float array * float array)
(** [transfer omega] sweeps Vin over [0, vdd] and returns
    [(vin_array, vout_array)]. Default 41 points. *)

val build_with_parasitics :
  ?c_gate:float -> ?c_load:float -> omega -> Netlist.t * Netlist.node
(** Like {!build} with capacitors at the transistor gates ([c_gate], default
    1 nF — electrolyte gating has large capacitance) and at the output
    ([c_load], default 1 nF): the model used for latency analysis. *)

val latency :
  ?model:Egt.params ->
  ?c_gate:float ->
  ?c_load:float ->
  ?dt:float ->
  ?duration:float ->
  omega ->
  float option
(** Settle time (2 % band) of the output after a full-swing input step —
    the inference latency of one printed neuron's nonlinear stage.  Defaults:
    dt = 20 µs, duration = 40 ms.  [None] if it does not settle. *)
