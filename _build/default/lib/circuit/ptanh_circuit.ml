type omega = {
  r1 : float;
  r2 : float;
  r3 : float;
  r4 : float;
  r5 : float;
  w_um : float;
  l_um : float;
}

let vdd = 1.0

let omega_of_array a =
  if Array.length a <> 7 then invalid_arg "Ptanh_circuit.omega_of_array: need 7 values";
  { r1 = a.(0); r2 = a.(1); r3 = a.(2); r4 = a.(3); r5 = a.(4); w_um = a.(5); l_um = a.(6) }

let omega_to_array o = [| o.r1; o.r2; o.r3; o.r4; o.r5; o.w_um; o.l_um |]

type nodes = { g1 : Netlist.node; g2 : Netlist.node; out : Netlist.node }

let build_nodes o =
  let open Netlist in
  let nl = create () in
  let n_in = fresh_node nl in
  let n_vdd = fresh_node nl in
  let n_g1 = fresh_node nl in
  let n_d1 = fresh_node nl in
  let n_g2 = fresh_node nl in
  let n_out = fresh_node nl in
  add nl (Vsource { name = "vin"; plus = n_in; minus = ground; volts = 0.0 });
  add nl (Vsource { name = "vdd"; plus = n_vdd; minus = ground; volts = vdd });
  (* stage 1 *)
  add nl (Resistor { a = n_in; b = n_g1; ohms = o.r1 });
  add nl (Resistor { a = n_g1; b = ground; ohms = o.r2 });
  add nl (Transistor { gate = n_g1; drain = n_d1; source = ground; w_um = o.w_um; l_um = o.l_um });
  add nl (Resistor { a = n_vdd; b = n_d1; ohms = o.r5 });
  (* stage 2 *)
  add nl (Resistor { a = n_d1; b = n_g2; ohms = o.r3 });
  add nl (Resistor { a = n_g2; b = ground; ohms = o.r4 });
  add nl (Transistor { gate = n_g2; drain = n_out; source = ground; w_um = o.w_um; l_um = o.l_um });
  add nl (Resistor { a = n_vdd; b = n_out; ohms = o.r5 });
  ignore n_in;
  (nl, { g1 = n_g1; g2 = n_g2; out = n_out })

let build o =
  let nl, nodes = build_nodes o in
  (nl, nodes.out)

let build_with_parasitics ?(c_gate = 1e-9) ?(c_load = 1e-9) o =
  let nl, nodes = build_nodes o in
  let open Netlist in
  add nl (Capacitor { a = nodes.g1; b = ground; farads = c_gate });
  add nl (Capacitor { a = nodes.g2; b = ground; farads = c_gate });
  add nl (Capacitor { a = nodes.out; b = ground; farads = c_load });
  (nl, nodes.out)

let latency ?(model = Egt.default) ?c_gate ?c_load ?(dt = 2e-5) ?(duration = 4e-2) o =
  let netlist, out = build_with_parasitics ?c_gate ?c_load o in
  let result =
    Transient.run ~model ~netlist ~source:"vin" ~waveform:(Transient.step ())
      ~duration ~dt ()
  in
  Transient.settle_time result ~node:out ()

let transfer ?(model = Egt.default) ?(points = 41) o =
  let netlist, out = build o in
  let sweep = Dc_sweep.linspace 0.0 vdd points in
  let pts = Dc_sweep.run ~model ~netlist ~source:"vin" ~output:out ~sweep () in
  (Array.map (fun p -> p.Dc_sweep.vin) pts, Array.map (fun p -> p.Dc_sweep.vout) pts)
