(** Transient (time-domain) analysis.

    Trapezoidal integration: at each time step every capacitor is replaced by
    its companion model (a conductance [2C/dt] in parallel with a current
    source derived from the previous step's state) and the resulting
    nonlinear DC problem is solved with {!Mna}.  Printed electronics is slow
    — electrolyte-gated transistors and large printed passives give printed
    neuromorphic circuits millisecond-scale settling — which is exactly what
    this analysis quantifies (the "high latency" the paper's introduction
    mentions as a weakness neuromorphic architectures tolerate). *)

type waveform = float -> float
(** Source voltage as a function of time (seconds). *)

val step : ?t0:float -> ?from_v:float -> ?to_v:float -> unit -> waveform
(** [step ()] is a 0→1 V step at [t0] (default 0). *)

type result = {
  times : float array;
  voltages : float array array;  (** [voltages.(step).(node)] *)
}

val run :
  ?options:Mna.options ->
  model:Egt.params ->
  netlist:Netlist.t ->
  source:string ->
  waveform:waveform ->
  duration:float ->
  dt:float ->
  unit ->
  result
(** Simulate from t = 0; the initial state is the DC operating point with the
    source at [waveform 0.]. Raises [Invalid_argument] for non-positive
    [duration]/[dt], and {!Mna.No_convergence} if a step fails. *)

val settle_time :
  result -> node:Netlist.node -> ?tolerance:float -> unit -> float option
(** Time after which the node voltage stays within [tolerance] (default 2 %)
    of its final value; [None] if it never settles within the window. *)
