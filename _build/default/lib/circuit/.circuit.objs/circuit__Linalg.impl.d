lib/circuit/linalg.ml: Array Float
