lib/circuit/mna.ml: Array Egt Float Linalg List Netlist
