lib/circuit/egt.mli:
