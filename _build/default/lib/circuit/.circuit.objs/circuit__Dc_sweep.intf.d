lib/circuit/dc_sweep.mli: Egt Mna Netlist
