lib/circuit/ptanh_circuit.ml: Array Dc_sweep Egt Netlist Transient
