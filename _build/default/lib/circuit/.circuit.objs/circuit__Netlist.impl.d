lib/circuit/netlist.ml: Hashtbl List
