lib/circuit/netlist.mli:
