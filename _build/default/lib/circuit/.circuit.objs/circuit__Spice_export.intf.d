lib/circuit/spice_export.mli: Egt Netlist Ptanh_circuit
