lib/circuit/egt.ml: Stdlib
