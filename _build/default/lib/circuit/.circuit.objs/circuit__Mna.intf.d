lib/circuit/mna.mli: Egt Netlist
