lib/circuit/transient.mli: Egt Mna Netlist
