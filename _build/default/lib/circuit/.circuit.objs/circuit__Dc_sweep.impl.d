lib/circuit/dc_sweep.ml: Array Mna Netlist
