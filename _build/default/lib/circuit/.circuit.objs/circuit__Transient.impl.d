lib/circuit/transient.ml: Array Float List Mna Netlist Stdlib
