lib/circuit/spice_export.ml: Buffer Egt List Netlist Printf Ptanh_circuit String
