lib/circuit/linalg.mli:
