lib/circuit/ptanh_circuit.mli: Egt Netlist
