(** Circuit netlists.

    Nodes are small integers; node 0 is ground.  A netlist is a value — the
    DC-sweep driver rebuilds or edits source values between solves. *)

type node = int

type element =
  | Resistor of { a : node; b : node; ohms : float }
  | Vsource of { name : string; plus : node; minus : node; volts : float }
  | Transistor of { gate : node; drain : node; source : node; w_um : float; l_um : float }
  | Capacitor of { a : node; b : node; farads : float }
      (** Open circuit in DC analysis; integrated by {!Transient}. *)
  | Isource of { into : node; out_of : node; amps : float }
      (** Ideal current source (used internally for companion models). *)

type t

val ground : node

val create : unit -> t
(** Empty netlist with only the ground node. *)

val fresh_node : t -> node
val add : t -> element -> unit
val set_source : t -> string -> float -> unit
(** Update the voltage of a named source in place (sweeps). Raises
    [Not_found] if no source has that name. *)

val elements : t -> element list
(** Elements in insertion order. *)

val node_count : t -> int
(** Number of nodes including ground. *)

val source_count : t -> int

val validate : t -> (unit, string) result
(** Checks that every referenced node was allocated, resistances are positive
    and source names are unique. *)
