lib/tensor/rng.mli:
