lib/tensor/stats.ml: Array Stdlib
