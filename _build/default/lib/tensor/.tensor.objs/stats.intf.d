lib/tensor/stats.mli:
