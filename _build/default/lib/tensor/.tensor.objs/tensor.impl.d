lib/tensor/tensor.ml: Array Float Format Printf Rng Stdlib
