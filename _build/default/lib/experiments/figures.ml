type curve = { label : string; omega : float array; vin : float array; vout : float array }

(* Five design points spanning the space, mirroring the five-curve legends of
   the paper's Fig. 2: the first Sobol points of the feasible space give the
   same mix of steep, gentle and shifted tanh-like shapes. *)
let fig2_omegas =
  let sobol = Surrogate.Design_space.sample_sobol ~n:8 in
  List.map
    (fun (label, idx) -> (label, sobol.(idx)))
    [ ("centre", 0); ("steep", 2); ("gentle", 3); ("shifted", 4); ("midway", 6) ]

let fig2_curves ?(points = 41) () =
  let mk (label, omega) =
    let vin, vout =
      Circuit.Ptanh_circuit.transfer ~points (Circuit.Ptanh_circuit.omega_of_array omega)
    in
    ({ label; omega; vin; vout }, { label; omega; vin; vout = Array.map (fun v -> -.v) vout })
  in
  let pairs = List.map mk fig2_omegas in
  (List.map fst pairs, List.map snd pairs)

let render_curves title curves =
  match curves with
  | [] -> title ^ ": (no curves)\n"
  | first :: _ ->
      let header = "vin" :: List.map (fun c -> c.label) curves in
      let rows =
        Array.to_list
          (Array.mapi
             (fun i v ->
               Printf.sprintf "%.3f" v
               :: List.map (fun c -> Printf.sprintf "%.4f" c.vout.(i)) curves)
             first.vin)
      in
      title ^ "\n" ^ Report.table ~header ~rows

let render_fig2 (ptanh_curves, inv_curves) =
  render_curves "Fig.2 (left): ptanh characteristic curves" ptanh_curves
  ^ "\n"
  ^ render_curves "Fig.2 (right): negative-weight characteristic curves" inv_curves

type fig4_left = {
  omega : float array;
  vin : float array;
  vout_sim : float array;
  eta : Fit.Ptanh.eta;
  vout_fit : float array;
  rmse : float;
}

let fig4_left ?(points = 41) () =
  let omega = snd (List.nth fig2_omegas 0) in
  let vin, vout_sim =
    Circuit.Ptanh_circuit.transfer ~points (Circuit.Ptanh_circuit.omega_of_array omega)
  in
  let { Fit.Ptanh.eta; rmse; _ } = Fit.Ptanh.fit ~vin ~vout:vout_sim in
  { omega; vin; vout_sim; eta; vout_fit = Array.map (Fit.Ptanh.eval eta) vin; rmse }

let render_fig4_left f =
  let b = Buffer.create 1024 in
  Buffer.add_string b "Fig.4 (left): simulated points vs fitted ptanh curve\n";
  Buffer.add_string b
    (Printf.sprintf "omega = [R1=%.0f R2=%.0f R3=%.0f R4=%.0f R5=%.0f W=%.0f L=%.0f]\n"
       f.omega.(0) f.omega.(1) f.omega.(2) f.omega.(3) f.omega.(4) f.omega.(5) f.omega.(6));
  Buffer.add_string b
    (Printf.sprintf "fitted eta = [%.4f; %.4f; %.4f; %.4f], RMSE = %.5f V\n"
       f.eta.Fit.Ptanh.eta1 f.eta.Fit.Ptanh.eta2 f.eta.Fit.Ptanh.eta3 f.eta.Fit.Ptanh.eta4
       f.rmse);
  let rows =
    Array.to_list
      (Array.mapi
         (fun i v ->
           [
             Printf.sprintf "%.3f" v;
             Printf.sprintf "%.4f" f.vout_sim.(i);
             Printf.sprintf "%.4f" f.vout_fit.(i);
           ])
         f.vin)
  in
  Buffer.add_string b (Report.table ~header:[ "vin"; "simulated"; "fitted" ] ~rows);
  Buffer.contents b

type fig4_right = {
  per_split : (string * float * float) list;
  sample_parity : (string * float * float) list;
}

let fig4_right ?(n = 1500) ?(arch = [ 10; 9; 8; 6; 4 ]) ?(max_epochs = 1200) ~seed () =
  let dataset = Surrogate.Pipeline.generate_dataset ~n () in
  let rng = Rng.create seed in
  let model, _report = Surrogate.Pipeline.train_surrogate ~arch ~max_epochs rng dataset in
  let split = Surrogate.Pipeline.split_dataset (Rng.create (seed + 1)) dataset in
  let parity = Surrogate.Pipeline.parity_rows model dataset split in
  let per_split =
    List.map
      (fun tag ->
        let pts = List.filter (fun (t, _, _) -> t = tag) parity in
        let n = float_of_int (List.length pts) in
        let mse =
          List.fold_left (fun acc (_, t, p) -> acc +. ((t -. p) *. (t -. p))) 0.0 pts /. n
        in
        let mean_t = List.fold_left (fun acc (_, t, _) -> acc +. t) 0.0 pts /. n in
        let ss_tot =
          List.fold_left (fun acc (_, t, _) -> acc +. ((t -. mean_t) *. (t -. mean_t))) 0.0 pts
        in
        let r2 = 1.0 -. (List.fold_left (fun acc (_, t, p) -> acc +. ((t -. p) *. (t -. p))) 0.0 pts /. Stdlib.max ss_tot 1e-30) in
        (tag, mse, r2))
      [ "train"; "val"; "test" ]
  in
  let sample_parity =
    List.filteri (fun i _ -> i mod Stdlib.max 1 (List.length parity / 24) = 0) parity
  in
  { per_split; sample_parity }

let render_fig4_right f =
  let b = Buffer.create 1024 in
  Buffer.add_string b "Fig.4 (right): surrogate parity (normalized eta)\n";
  List.iter
    (fun (tag, mse, r2) ->
      Buffer.add_string b (Printf.sprintf "  %-5s MSE %.5f  R2 %.4f\n" tag mse r2))
    f.per_split;
  Buffer.add_string b "  sample parity points (split, true, predicted):\n";
  List.iter
    (fun (tag, t, p) ->
      Buffer.add_string b (Printf.sprintf "    %-5s %8.4f %8.4f\n" tag t p))
    f.sample_parity;
  Buffer.contents b

let render_table1 () =
  let module Ds = Surrogate.Design_space in
  let rows =
    List.init Ds.dim (fun i ->
        [
          Ds.names.(i);
          Printf.sprintf "%g" Ds.omega_lo.(i);
          Printf.sprintf "%g" Ds.omega_hi.(i);
          (match i with
          | 1 -> "R2 < R1"
          | 3 -> "R4 < R3"
          | 0 | 2 | 4 | 5 | 6 -> "-"
          | _ -> "-");
        ])
  in
  "Table I: feasible design space of the nonlinear circuit (units: Ohm / um)\n"
  ^ Report.table ~header:[ "param"; "min"; "max"; "inequality" ] ~rows
