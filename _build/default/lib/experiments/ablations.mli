(** Ablation benches for this reproduction's own design choices (DESIGN.md §5)
    — beyond the paper's Table III ablation, which lives in {!Table3}. *)

val sampler_ablation : ?n:int -> ?epochs:int -> unit -> string
(** Sobol (paper) vs Latin hypercube vs i.i.d. uniform sampling of the design
    space: surrogate validation MSE at an equal simulation budget. *)

val architecture_ablation : ?n:int -> ?epochs:int -> unit -> string
(** The paper's deep narrow 13-layer surrogate vs shallow alternatives. *)

val initialization_ablation : ?seeds:int -> unit -> string
(** Transition-centred crossbar initialization (ours) vs naive random-sign
    initialization: fraction of non-collapsed trainings and mean accuracy on
    two benchmark tasks. *)

val temperature_ablation : ?seeds:int -> unit -> string
(** Softmax temperature (logit scale) vs accuracy and variation robustness. *)

val depth_ablation : ?seeds:int -> unit -> string
(** pNN depth: the paper's one-hidden-layer topology vs deeper stacks (the
    "future work" extension enabled by {!Pnn.Network.create_deep}). *)
