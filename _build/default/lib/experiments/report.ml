let cell mean std = Printf.sprintf "%.3f ± %.3f" mean std

let table ~header ~rows =
  let all = header :: rows in
  let cols = List.fold_left (fun acc r -> Stdlib.max acc (List.length r)) 0 all in
  let widths = Array.make cols 0 in
  List.iter
    (List.iteri (fun i s -> widths.(i) <- Stdlib.max widths.(i) (String.length s)))
    all;
  let render row =
    String.concat "  "
      (List.mapi (fun i s -> Printf.sprintf "%-*s" widths.(i) s) row)
  in
  let sep =
    String.concat "  " (Array.to_list (Array.map (fun w -> String.make w '-') widths))
  in
  String.concat "\n" ((render header :: sep :: List.map render rows) @ [ "" ])

let csv_line fields =
  String.concat ","
    (List.map
       (fun f ->
         if String.contains f ',' || String.contains f '"' then
           "\"" ^ String.concat "\"\"" (String.split_on_char '"' f) ^ "\""
         else f)
       fields)

let write_csv ~path ~header ~rows =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (csv_line header ^ "\n");
      List.iter (fun r -> output_string oc (csv_line r ^ "\n")) rows)
