(** Experiment arms and scales shared by the table/figure runners. *)

type arm = {
  learnable : bool;  (** learnable nonlinear circuit (α_ω = 0.005 vs 0) *)
  variation_aware : bool;  (** train with ε > 0 Monte-Carlo loss *)
}

val arms : arm list
(** The four ablation arms of Table III, baseline last. *)

val arm_name : arm -> string

type scale = {
  seeds : int list;  (** training repetitions; best-val model is selected *)
  test_epsilons : float list;  (** evaluation variations (paper: 5 %, 10 %) *)
  n_mc_test : int;  (** Monte-Carlo draws at test time (paper: 100) *)
  config : Pnn.Config.t;  (** per-training hyperparameters *)
  init : [ `Centered | `Random_sign ];  (** crossbar initialization *)
  surrogate_samples : int;  (** QMC samples for the surrogate pipeline *)
  surrogate_epochs : int;
}

val quick : scale
(** Small scale for the bench harness (minutes). *)

val committed : scale
(** The scale used for the committed EXPERIMENTS.md numbers. *)

val paper : scale
(** Full paper-scale settings (hours). *)

val fragile : scale
(** Paper-faithful optimizer fragility: the paper's α_θ = 0.1 and the naive
    random-sign initialization.  With these, the fixed-circuit baseline
    frequently under-trains — the regime in which the paper's relative
    improvements are largest (see EXPERIMENTS.md discussion). *)

val of_name : string -> scale
(** ["quick" | "committed" | "paper" | "fragile"]. Raises
    [Invalid_argument]. *)

val surrogate_of_scale : scale -> Surrogate.Model.t
(** Cached {!Surrogate.Pipeline.ensure} for the scale. *)
