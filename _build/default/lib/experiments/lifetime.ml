type t = {
  dataset : string;
  t_fracs : float list;
  nominal_curve : (float * Table2.cell) list;
  aware_curve : (float * Table2.cell) list;
}

let best_of candidates =
  match candidates with
  | [] -> invalid_arg "Lifetime.run: no seeds"
  | first :: rest ->
      List.fold_left
        (fun (best, bsplit) (r, split) ->
          if r.Pnn.Training.val_loss < best.Pnn.Training.val_loss then (r, split)
          else (best, bsplit))
        first rest

let run ?(dataset = "seeds") ?(seeds = [ 1; 2; 3 ]) ?(n_mc = 40) model scale surrogate =
  let data = Datasets.Bench13.load dataset in
  let spec = data.Datasets.Synth.spec in
  let n_classes = spec.Datasets.Synth.classes in
  let config = scale.Setup.config in
  let train aging seed =
    let split = Datasets.Synth.split (Rng.create (seed + 400)) data in
    let tdata = Pnn.Training.of_split ~n_classes split in
    let rng = Rng.create (seed + (if aging then 9000 else 0)) in
    let net =
      Pnn.Network.create rng config surrogate ~inputs:spec.Datasets.Synth.features
        ~outputs:n_classes
    in
    let result =
      if aging then Pnn.Aging.fit_aging_aware rng model net tdata
      else Pnn.Training.fit rng net tdata
    in
    (result, split)
  in
  let t_fracs = [ 0.0; 0.25; 0.5; 0.75; 1.0 ] in
  let curve aging =
    let result, split = best_of (List.map (train aging) seeds) in
    List.map
      (fun (t, e) ->
        ( t,
          {
            Table2.mean = e.Pnn.Evaluation.mean_accuracy;
            std = e.Pnn.Evaluation.std_accuracy;
          } ))
      (Pnn.Aging.accuracy_over_lifetime (Rng.create 555) model
         result.Pnn.Training.network ~t_fracs ~n:n_mc
         ~x:split.Datasets.Synth.x_test ~y:split.Datasets.Synth.y_test)
  in
  {
    dataset;
    t_fracs;
    nominal_curve = curve false;
    aware_curve = curve true;
  }

let render t =
  let header =
    "training" :: List.map (fun f -> Printf.sprintf "t=%.2f" f) t.t_fracs
  in
  let row label curve =
    label
    :: List.map (fun (_, c) -> Report.cell c.Table2.mean c.Table2.std) curve
  in
  Printf.sprintf "Extension: accuracy over device lifetime (%s)\n" t.dataset
  ^ Report.table ~header
      ~rows:[ row "aging-unaware" t.nominal_curve; row "aging-aware" t.aware_curve ]
