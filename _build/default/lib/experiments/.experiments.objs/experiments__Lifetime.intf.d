lib/experiments/lifetime.mli: Pnn Setup Surrogate Table2
