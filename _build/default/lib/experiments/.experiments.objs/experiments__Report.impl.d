lib/experiments/report.ml: Array Fun List Printf Stdlib String
