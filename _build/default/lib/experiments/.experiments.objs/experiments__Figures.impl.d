lib/experiments/figures.ml: Array Buffer Circuit Fit List Printf Report Rng Stdlib Surrogate
