lib/experiments/ablations.mli:
