lib/experiments/figures.mli: Fit
