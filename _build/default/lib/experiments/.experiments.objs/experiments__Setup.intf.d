lib/experiments/setup.mli: Pnn Surrogate
