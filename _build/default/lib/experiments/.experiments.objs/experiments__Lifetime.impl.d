lib/experiments/lifetime.ml: Datasets List Pnn Printf Report Rng Setup Table2
