lib/experiments/table2.ml: Datasets List Pnn Printf Report Rng Setup
