lib/experiments/ablations.ml: Array Circuit Datasets Fit Lazy List Pnn Printf Report Rng Setup Stats Stdlib Surrogate
