lib/experiments/table3.mli: Setup Table2
