lib/experiments/table3.ml: List Printf Report Setup Stdlib String Table2
