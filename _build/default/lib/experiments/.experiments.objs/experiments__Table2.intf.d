lib/experiments/table2.mli: Datasets Setup Surrogate
