lib/experiments/report.mli:
