lib/experiments/setup.ml: List Pnn Printf Surrogate
