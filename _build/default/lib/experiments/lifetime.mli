(** Extension experiment: aging curves (accuracy over device lifetime) for
    aging-unaware vs aging-aware training — the flow of the paper's
    reference [5] running on this reproduction's stack. *)

type t = {
  dataset : string;
  t_fracs : float list;
  nominal_curve : (float * Table2.cell) list;  (** trained without aging *)
  aware_curve : (float * Table2.cell) list;  (** aging-aware training *)
}

val run :
  ?dataset:string ->
  ?seeds:int list ->
  ?n_mc:int ->
  Pnn.Aging.model ->
  Setup.scale ->
  Surrogate.Model.t ->
  t
(** Defaults: dataset ["seeds"], seeds [[1; 2; 3]], 40 Monte-Carlo draws per
    life point. *)

val render : t -> string
