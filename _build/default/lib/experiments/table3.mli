(** Reproduction of Table III (ablation summary) and the §IV-D headline
    claims, derived from a Table II run:

    - the four arms' dataset-averaged accuracy ± std at each test ε;
    - relative accuracy improvement and robustness (std) reduction of the
      full method vs the baseline;
    - the contribution split between the learnable nonlinear circuit and
      variation-aware training. *)

type summary_row = {
  arm : Setup.arm;
  cells : (float * Table2.cell) list;  (** per test ε *)
}

type claims = {
  epsilon : float;
  accuracy_gain : float;  (** relative: (full − baseline) / baseline *)
  robustness_gain : float;  (** relative std reduction *)
  learnable_contribution : float;
      (** share of the accuracy improvement attributable to the learnable
          circuit (paper: 58 % @5 %, 52 % @10 %) *)
  va_contribution : float;
}

type t = { rows : summary_row list; claims : claims list }

val of_table2 : Setup.scale -> Table2.t -> t
val render : t -> string
