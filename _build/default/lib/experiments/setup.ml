type arm = { learnable : bool; variation_aware : bool }

let arms =
  [
    { learnable = true; variation_aware = true };
    { learnable = true; variation_aware = false };
    { learnable = false; variation_aware = true };
    { learnable = false; variation_aware = false };
  ]

let arm_name a =
  Printf.sprintf "%s/%s"
    (if a.learnable then "learnable" else "fixed")
    (if a.variation_aware then "va" else "nominal")

type scale = {
  seeds : int list;
  test_epsilons : float list;
  n_mc_test : int;
  config : Pnn.Config.t;
  init : [ `Centered | `Random_sign ];
  surrogate_samples : int;
  surrogate_epochs : int;
}

let quick =
  {
    seeds = [ 1; 2 ];
    test_epsilons = [ 0.05; 0.10 ];
    n_mc_test = 30;
    config =
      { Pnn.Config.default with max_epochs = 500; patience = 120; n_mc_train = 3; n_mc_val = 5 };
    init = `Centered;
    surrogate_samples = 2000;
    surrogate_epochs = 1500;
  }

let committed =
  {
    seeds = [ 1; 2; 3 ];
    test_epsilons = [ 0.05; 0.10 ];
    n_mc_test = 100;
    config = { Pnn.Config.default with Pnn.Config.max_epochs = 1200; patience = 250 };
    init = `Centered;
    surrogate_samples = 4000;
    surrogate_epochs = 3000;
  }

let paper =
  {
    seeds = List.init 10 (fun i -> i + 1);
    test_epsilons = [ 0.05; 0.10 ];
    n_mc_test = 100;
    config = Pnn.Config.paper ();
    init = `Centered;
    surrogate_samples = 10_000;
    surrogate_epochs = 10_000;
  }

let fragile =
  {
    seeds = [ 1; 2; 3 ];
    test_epsilons = [ 0.05; 0.10 ];
    n_mc_test = 100;
    config =
      {
        Pnn.Config.default with
        Pnn.Config.lr_theta = 0.1;
        max_epochs = 600;
        patience = 150;
      };
    init = `Random_sign;
    surrogate_samples = 4000;
    surrogate_epochs = 3000;
  }

let of_name = function
  | "quick" -> quick
  | "committed" -> committed
  | "paper" -> paper
  | "fragile" -> fragile
  | s -> invalid_arg ("Setup.of_name: unknown scale " ^ s)

let surrogate_of_scale scale =
  Surrogate.Pipeline.ensure ~n:scale.surrogate_samples
    ~max_epochs:scale.surrogate_epochs ~seed:42 ()
