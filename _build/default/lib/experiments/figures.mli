(** Regeneration of the paper's figures (as numeric series / summaries).

    Fig. 2: characteristic curves of the ptanh and negative-weight circuits
    for several physical parameterizations ω.
    Fig. 4 (left): simulated (V_in, V_out) points of one circuit against its
    fitted ptanh curve.
    Fig. 4 (right): surrogate parity — normalized true vs predicted η̃ on the
    train/validation/test splits. *)

type curve = { label : string; omega : float array; vin : float array; vout : float array }

val fig2_curves : ?points:int -> unit -> curve list * curve list
(** (ptanh curves, negative-weight curves) for a fixed set of five design
    points spanning the space. *)

val render_fig2 : curve list * curve list -> string

type fig4_left = {
  omega : float array;
  vin : float array;
  vout_sim : float array;
  eta : Fit.Ptanh.eta;
  vout_fit : float array;
  rmse : float;
}

val fig4_left : ?points:int -> unit -> fig4_left
val render_fig4_left : fig4_left -> string

type fig4_right = {
  per_split : (string * float * float) list;  (** split, MSE, R² *)
  sample_parity : (string * float * float) list;  (** split, true η̃, predicted η̃ *)
}

val fig4_right :
  ?n:int -> ?arch:int list -> ?max_epochs:int -> seed:int -> unit -> fig4_right
(** Runs a reduced pipeline live (the full-scale artifact is produced by
    [gen_surrogate]). *)

val render_fig4_right : fig4_right -> string

val render_table1 : unit -> string
(** The design-space box actually enforced (paper Table I). *)
