(** Formatting helpers for experiment output. *)

val cell : float -> float -> string
(** ["0.821 ± 0.083"]. *)

val table : header:string list -> rows:string list list -> string
(** Monospace-aligned table. *)

val csv_line : string list -> string
val write_csv : path:string -> header:string list -> rows:string list list -> unit
