type summary_row = {
  arm : Setup.arm;
  cells : (float * Table2.cell) list;
}

type claims = {
  epsilon : float;
  accuracy_gain : float;
  robustness_gain : float;
  learnable_contribution : float;
  va_contribution : float;
}

type t = { rows : summary_row list; claims : claims list }

let arm_of ~learnable ~variation_aware =
  { Setup.learnable; variation_aware }

let of_table2 scale table2 =
  let rows =
    List.map
      (fun arm ->
        {
          arm;
          cells =
            List.map
              (fun eps -> (eps, Table2.average_of table2 ~arm ~epsilon:eps))
              scale.Setup.test_epsilons;
        })
      Setup.arms
  in
  let cell_for arm eps = Table2.average_of table2 ~arm ~epsilon:eps in
  let claims =
    List.map
      (fun eps ->
        let full = cell_for (arm_of ~learnable:true ~variation_aware:true) eps in
        let learn_only = cell_for (arm_of ~learnable:true ~variation_aware:false) eps in
        let va_only = cell_for (arm_of ~learnable:false ~variation_aware:true) eps in
        let baseline = cell_for (arm_of ~learnable:false ~variation_aware:false) eps in
        let total_gain = full.Table2.mean -. baseline.Table2.mean in
        let learn_gain = learn_only.Table2.mean -. baseline.Table2.mean in
        let va_gain = va_only.Table2.mean -. baseline.Table2.mean in
        (* contribution split (paper §IV-D); when neither single-factor arm
           improves on the baseline the split is undefined — report 50/50 *)
        let parts = learn_gain +. va_gain in
        let learnable_contribution, va_contribution =
          if parts > 1e-9 then (learn_gain /. parts, va_gain /. parts) else (0.5, 0.5)
        in
        {
          epsilon = eps;
          accuracy_gain = total_gain /. Stdlib.max baseline.Table2.mean 1e-9;
          robustness_gain =
            (baseline.Table2.std -. full.Table2.std)
            /. Stdlib.max baseline.Table2.std 1e-9;
          learnable_contribution;
          va_contribution;
        })
      scale.Setup.test_epsilons
  in
  { rows; claims }

let render t =
  let epsilons =
    match t.rows with [] -> [] | r :: _ -> List.map fst r.cells
  in
  let header =
    "Learnable" :: "Variation-aware"
    :: List.map (fun e -> Printf.sprintf "eps=%g%%" (e *. 100.0)) epsilons
  in
  let mark b = if b then "yes" else "no" in
  let rows =
    List.map
      (fun row ->
        mark row.arm.Setup.learnable
        :: mark row.arm.Setup.variation_aware
        :: List.map
             (fun (_, c) -> Report.cell c.Table2.mean c.Table2.std)
             row.cells)
      t.rows
  in
  let claims_lines =
    List.map
      (fun c ->
        Printf.sprintf
          "@%g%%: accuracy +%.0f%%, robustness (std) -%.0f%%; contributions: learnable %.0f%%, variation-aware %.0f%%"
          (c.epsilon *. 100.0)
          (c.accuracy_gain *. 100.0)
          (c.robustness_gain *. 100.0)
          (c.learnable_contribution *. 100.0)
          (c.va_contribution *. 100.0))
      t.claims
  in
  Report.table ~header ~rows ^ String.concat "\n" claims_lines ^ "\n"
