lib/surrogate/design_space.mli: Rng
