lib/surrogate/scaler.mli: Autodiff Tensor
