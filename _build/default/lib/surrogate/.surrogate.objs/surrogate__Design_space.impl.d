lib/surrogate/design_space.ml: Array Qmc Stdlib
