lib/surrogate/model.mli: Autodiff Fit Nn Scaler
