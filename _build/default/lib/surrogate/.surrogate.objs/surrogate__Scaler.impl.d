lib/surrogate/scaler.ml: Array Autodiff List Printf String Tensor
