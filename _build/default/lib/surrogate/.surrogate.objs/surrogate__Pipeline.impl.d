lib/surrogate/pipeline.ml: Array Autodiff Circuit Design_space Fit Float List Logs Model Nn Printf Rng Scaler String Sys Tensor
