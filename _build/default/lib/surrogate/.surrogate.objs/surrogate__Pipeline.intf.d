lib/surrogate/pipeline.mli: Model Rng
