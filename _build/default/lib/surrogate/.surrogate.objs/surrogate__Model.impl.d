lib/surrogate/model.ml: Array Autodiff Design_space Fit Fun List Nn Scaler Tensor
