let dim = 7
let extended_dim = 10
let learnable_dim = 7

(* Table I, resistances in Ω (R3..R5 given in kΩ in the paper). *)
let omega_lo = [| 10.0; 5.0; 10e3; 8e3; 10e3; 200.0; 10.0 |]
let omega_hi = [| 500.0; 250.0; 500e3; 400e3; 500e3; 800.0; 70.0 |]
let names = [| "R1"; "R2"; "R3"; "R4"; "R5"; "W"; "L" |]

(* 𝔴 encoding: [R1; R3; R5; W; L; k1; k2] *)
let k_lo = 0.02
let k_hi = 0.98

let learnable_lo = [| omega_lo.(0); omega_lo.(2); omega_lo.(4); omega_lo.(5); omega_lo.(6); k_lo; k_lo |]
let learnable_hi = [| omega_hi.(0); omega_hi.(2); omega_hi.(4); omega_hi.(5); omega_hi.(6); k_hi; k_hi |]

(* Strict-inequality margin: the reassembled R2 (resp. R4) is kept at or below
   this fraction of R1 (resp. R3). *)
let margin = 0.98

let clip lo hi v = if v < lo then lo else if v > hi then hi else v

let assemble raw =
  if Array.length raw <> learnable_dim then
    invalid_arg "Design_space.assemble: need 7 raw values";
  let r1 = clip omega_lo.(0) omega_hi.(0) raw.(0) in
  let r3 = clip omega_lo.(2) omega_hi.(2) raw.(1) in
  let r5 = clip omega_lo.(4) omega_hi.(4) raw.(2) in
  let w = clip omega_lo.(5) omega_hi.(5) raw.(3) in
  let l = clip omega_lo.(6) omega_hi.(6) raw.(4) in
  let k1 = clip k_lo k_hi raw.(5) in
  let k2 = clip k_lo k_hi raw.(6) in
  let r2 = clip omega_lo.(1) (Stdlib.min omega_hi.(1) (margin *. r1)) (r1 *. k1) in
  let r4 = clip omega_lo.(3) (Stdlib.min omega_hi.(3) (margin *. r3)) (r3 *. k2) in
  [| r1; r2; r3; r4; r5; w; l |]

let extend omega =
  if Array.length omega <> dim then invalid_arg "Design_space.extend: need 7 values";
  Array.append omega
    [| omega.(1) /. omega.(0); omega.(3) /. omega.(2); omega.(5) /. omega.(6) |]

let contains omega =
  Array.length omega = dim
  && begin
       let ok = ref true in
       Array.iteri
         (fun i v -> if v < omega_lo.(i) -. 1e-9 || v > omega_hi.(i) +. 1e-9 then ok := false)
         omega;
       !ok && omega.(0) > omega.(1) && omega.(2) > omega.(3)
     end

let sample_sobol ~n =
  let sobol = Qmc.Sobol.create learnable_dim in
  Array.init n (fun _ ->
      assemble (Qmc.Sobol.next_in_box sobol ~lo:learnable_lo ~hi:learnable_hi))

let sample_lhs rng ~n =
  let pts = Qmc.Lhs.sample_in_box rng ~lo:learnable_lo ~hi:learnable_hi ~n in
  Array.map assemble pts

let clip_omega omega =
  if Array.length omega <> dim then invalid_arg "Design_space.clip_omega: need 7 values";
  let o = Array.mapi (fun i v -> clip omega_lo.(i) omega_hi.(i) v) omega in
  (* restore the strict inequalities if noise broke them *)
  o.(1) <- Stdlib.min o.(1) (margin *. o.(0));
  o.(3) <- Stdlib.min o.(3) (margin *. o.(2));
  o
