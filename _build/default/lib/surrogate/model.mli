(** The trained surrogate nonlinear-circuit model η̂(ω).

    Wraps the regression MLP together with the two min-max scalers.  Input is
    the raw physical ω (7 values); internally the vector is extended with the
    ratio features and normalized, and the network's normalized output is
    denormalized back to η (paper Fig. 5, right half). *)

type t = { mlp : Nn.Mlp.t; omega_scaler : Scaler.t; eta_scaler : Scaler.t }

val paper_arch : int list
(** The paper's 13-layer architecture: 10-9-9-8-8-7-7-6-6-6-5-5-5-4. *)

val eval : t -> float array -> Fit.Ptanh.eta
(** Predict η for one raw ω. *)

val eval_batch : t -> float array array -> Fit.Ptanh.eta array

val extend_ad : Autodiff.t -> Autodiff.t
(** Differentiable ω → extended-ω (appends k1, k2, k3) for [n × 7] nodes. *)

val eval_ad : t -> Autodiff.t -> Autodiff.t
(** Differentiable η̂ for a batch of raw ω ([n × 7] node → [n × 4] node).
    The MLP weights are frozen: gradients flow into ω only. *)

val to_lines : t -> string list
val of_lines : string list -> t * string list
val save_file : t -> string -> unit
val load_file : string -> t
