(** The feasible design space of the nonlinear circuit (paper Table I).

    ω order everywhere: [[R1; R2; R3; R4; R5; W; L]] with resistances in Ω and
    geometry in µm.  The inequality constraints R1 > R2 and R3 > R4 are
    honoured by sampling and learning the {e ratios} k1 = R2/R1 and
    k2 = R4/R3 instead of R2 and R4, then clipping the reassembled values into
    their Table-I boxes — the same encoding the paper uses for the learnable
    parameter 𝔴 (Fig. 5). *)

val dim : int
(** 7 *)

val extended_dim : int
(** 10 — ω extended with the ratio features [k1; k2; k3 = W/L]. *)

val learnable_dim : int
(** 7 — the 𝔴 encoding [R1; R3; R5; W; L; k1; k2]. *)

val omega_lo : float array
val omega_hi : float array
(** Table-I bounds in ω order. *)

val learnable_lo : float array
val learnable_hi : float array
(** Bounds of the 𝔴 encoding; k1 and k2 span [(0.02, 0.98)]. *)

val names : string array
(** ["R1"; "R2"; ...] for reporting. *)

val assemble : float array -> float array
(** [assemble raw] maps a 𝔴-encoded point [[R1; R3; R5; W; L; k1; k2]] to a
    feasible ω: computes R2 = R1·k1 and R4 = R3·k2 and clips them to their
    boxes intersected with the strict-inequality margins. *)

val extend : float array -> float array
(** [extend omega] appends [k1; k2; k3]. *)

val contains : float array -> bool
(** Membership test for a full ω (bounds + inequalities). *)

val sample_sobol : n:int -> float array array
(** [n] feasible ω points via a 7-dim Sobol sequence over the 𝔴 encoding. *)

val sample_lhs : Rng.t -> n:int -> float array array

val clip_omega : float array -> float array
(** Clip a (possibly perturbed) ω back into the feasible box, preserving the
    inequality margins — used after variation noise is applied. *)
