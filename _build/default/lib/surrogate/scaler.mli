(** Min-max feature scaling with saved bounds (paper §III-A: "the maximal and
    minimal values ω_min, ω_max, η_min and η_max are saved to perform
    denormalization later"). *)

type t

val fit : float array array -> t
(** Per-column min/max over the rows.  Columns with zero range are given unit
    range so transforms stay finite. Raises [Invalid_argument] on empty
    input. *)

val of_bounds : lo:float array -> hi:float array -> t
val lo : t -> float array
val hi : t -> float array
val dim : t -> int

val transform : t -> float array -> float array
(** [(x − lo) / (hi − lo)] per component. *)

val inverse : t -> float array -> float array

val transform_tensor : t -> Tensor.t -> Tensor.t
(** Row-wise transform of a [n × dim] matrix. *)

val inverse_tensor : t -> Tensor.t -> Tensor.t

val transform_ad : t -> Autodiff.t -> Autodiff.t
(** Differentiable transform of a [n × dim] node. *)

val inverse_ad : t -> Autodiff.t -> Autodiff.t

val to_lines : t -> string list
val of_lines : string list -> t * string list
