type t = { lo : float array; hi : float array }

let of_bounds ~lo ~hi =
  if Array.length lo <> Array.length hi then invalid_arg "Scaler.of_bounds: mismatch";
  Array.iteri
    (fun i l -> if hi.(i) < l then invalid_arg "Scaler.of_bounds: hi < lo")
    lo;
  { lo = Array.copy lo; hi = Array.copy hi }

let fit rows =
  if Array.length rows = 0 then invalid_arg "Scaler.fit: empty data";
  let d = Array.length rows.(0) in
  let lo = Array.copy rows.(0) and hi = Array.copy rows.(0) in
  Array.iter
    (fun row ->
      if Array.length row <> d then invalid_arg "Scaler.fit: ragged data";
      Array.iteri
        (fun i v ->
          if v < lo.(i) then lo.(i) <- v;
          if v > hi.(i) then hi.(i) <- v)
        row)
    rows;
  (* avoid zero ranges *)
  Array.iteri (fun i l -> if hi.(i) -. l < 1e-12 then hi.(i) <- l +. 1.0) lo;
  { lo; hi }

let lo t = Array.copy t.lo
let hi t = Array.copy t.hi
let dim t = Array.length t.lo

let check t x name =
  if Array.length x <> dim t then invalid_arg ("Scaler." ^ name ^ ": dimension mismatch")

let transform t x =
  check t x "transform";
  Array.mapi (fun i v -> (v -. t.lo.(i)) /. (t.hi.(i) -. t.lo.(i))) x

let inverse t x =
  check t x "inverse";
  Array.mapi (fun i v -> t.lo.(i) +. (v *. (t.hi.(i) -. t.lo.(i)))) x

let range t = Array.mapi (fun i l -> t.hi.(i) -. l) t.lo

let transform_tensor t m =
  if Tensor.cols m <> dim t then invalid_arg "Scaler.transform_tensor: dimension mismatch";
  let inv_range = Tensor.of_array (Array.map (fun r -> 1.0 /. r) (range t)) in
  let neg_lo = Tensor.of_array (Array.map (fun l -> -.l) t.lo) in
  Tensor.mul_rowvec (Tensor.add_rowvec m neg_lo) inv_range

let inverse_tensor t m =
  if Tensor.cols m <> dim t then invalid_arg "Scaler.inverse_tensor: dimension mismatch";
  Tensor.add_rowvec (Tensor.mul_rowvec m (Tensor.of_array (range t))) (Tensor.of_array t.lo)

let transform_ad t x =
  if Tensor.cols (Autodiff.value x) <> dim t then
    invalid_arg "Scaler.transform_ad: dimension mismatch";
  let inv_range = Autodiff.const (Tensor.of_array (Array.map (fun r -> 1.0 /. r) (range t))) in
  let neg_lo = Autodiff.const (Tensor.of_array (Array.map (fun l -> -.l) t.lo)) in
  Autodiff.mul_rowvec (Autodiff.add_rowvec x neg_lo) inv_range

let inverse_ad t x =
  if Tensor.cols (Autodiff.value x) <> dim t then
    invalid_arg "Scaler.inverse_ad: dimension mismatch";
  let r = Autodiff.const (Tensor.of_array (range t)) in
  let l = Autodiff.const (Tensor.of_array t.lo) in
  Autodiff.add_rowvec (Autodiff.mul_rowvec x r) l

let float_line a =
  String.concat " " (Array.to_list (Array.map (Printf.sprintf "%h") a))

let floats_of_line line =
  Array.of_list (List.map float_of_string (String.split_on_char ' ' (String.trim line)))

let to_lines t =
  [ Printf.sprintf "scaler %d" (dim t); float_line t.lo; float_line t.hi ]

let of_lines = function
  | header :: lo_line :: hi_line :: rest -> (
      match String.split_on_char ' ' (String.trim header) with
      | [ "scaler"; d ] ->
          let d = int_of_string d in
          let lo = floats_of_line lo_line and hi = floats_of_line hi_line in
          if Array.length lo <> d || Array.length hi <> d then
            failwith "Scaler.of_lines: dimension mismatch";
          ({ lo; hi }, rest)
      | _ -> failwith "Scaler.of_lines: bad header")
  | _ -> failwith "Scaler.of_lines: truncated input"
