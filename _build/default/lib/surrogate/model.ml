type t = { mlp : Nn.Mlp.t; omega_scaler : Scaler.t; eta_scaler : Scaler.t }

let paper_arch = [ 10; 9; 9; 8; 8; 7; 7; 6; 6; 6; 5; 5; 5; 4 ]

let eval t omega =
  let extended = Design_space.extend omega in
  let x = Tensor.of_array (Scaler.transform t.omega_scaler extended) in
  let y = Nn.Mlp.forward_tensor t.mlp x in
  Fit.Ptanh.eta_of_array (Scaler.inverse t.eta_scaler (Tensor.to_array y))

let eval_batch t omegas =
  let x =
    Tensor.of_arrays
      (Array.map (fun o -> Scaler.transform t.omega_scaler (Design_space.extend o)) omegas)
  in
  let y = Nn.Mlp.forward_tensor t.mlp x in
  Array.map
    (fun row -> Fit.Ptanh.eta_of_array (Scaler.inverse t.eta_scaler row))
    (Tensor.to_arrays y)

let extend_ad x =
  if Tensor.cols (Autodiff.value x) <> Design_space.dim then
    invalid_arg "Model.extend_ad: expected 7 columns";
  let col i = Autodiff.slice_cols x i 1 in
  let k1 = Autodiff.div (col 1) (col 0) in
  let k2 = Autodiff.div (col 3) (col 2) in
  let k3 = Autodiff.div (col 5) (col 6) in
  Autodiff.concat_cols (Autodiff.concat_cols (Autodiff.concat_cols x k1) k2) k3

let eval_ad t x =
  let extended = extend_ad x in
  let normalized = Scaler.transform_ad t.omega_scaler extended in
  let y = Nn.Mlp.forward_frozen t.mlp normalized in
  Scaler.inverse_ad t.eta_scaler y

let to_lines t =
  ("surrogate" :: Scaler.to_lines t.omega_scaler)
  @ Scaler.to_lines t.eta_scaler @ Nn.Mlp.to_lines t.mlp

let of_lines = function
  | "surrogate" :: rest ->
      let omega_scaler, rest = Scaler.of_lines rest in
      let eta_scaler, rest = Scaler.of_lines rest in
      let mlp, rest = Nn.Mlp.of_lines rest in
      ({ mlp; omega_scaler; eta_scaler }, rest)
  | _ -> failwith "Model.of_lines: bad header"

let save_file t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> List.iter (fun l -> output_string oc (l ^ "\n")) (to_lines t))

let load_file path =
  let ic = open_in path in
  let lines =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let rec go acc =
          match input_line ic with
          | line -> go (line :: acc)
          | exception End_of_file -> List.rev acc
        in
        go [])
  in
  fst (of_lines lines)
