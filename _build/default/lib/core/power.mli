(** Power, device-count and area estimation for a printed pNN design.

    Printed neuromorphic papers report static power and device counts
    alongside accuracy (e.g. Weller et al., Sci. Rep. 2021: an analog printed
    neuron needs < 10 devices where a digital one needs hundreds).  This
    module derives those figures for a trained design:

    - {b Crossbar power}: the surrogate conductances θ are dimensionless; a
      scale [g_unit] (default 10⁻⁴ S, i.e. θ = 1 ≙ 10 kΩ) maps them to
      printable conductances.  Static dissipation per input sample follows
      directly from Eq. 1's voltage divider:
      P = Σ_i g_i·(V_i − V_z)² + g_b·(V_b − V_z)² + g_d·V_z².
    - {b Nonlinear-circuit power}: each ptanh / negative-weight instance is
      simulated at its DC operating points over the input distribution and
      the supply current is integrated from the MNA solution.
    - {b Devices and area}: per nonlinear circuit 5 resistors + 2 EGTs; one
      activation circuit per neuron; one negative-weight circuit per input
      column that drives at least one negative conductance.  Area uses
      order-of-magnitude printed feature sizes (≈1 mm² per passive component,
      paper §IV-A) — an estimate, clearly labelled as such. *)

type report = {
  crossbar_power_w : float;  (** averaged over the provided input samples *)
  nonlinear_power_w : float;
  total_power_w : float;
  printed_resistors : int;  (** crossbar conductances actually printed + circuit resistors *)
  transistors : int;
  activation_circuits : int;
  negative_weight_circuits : int;
  area_mm2 : float;
}

val estimate : ?g_unit:float -> Network.t -> x_sample:Tensor.t -> report
(** [x_sample] is a batch of representative inputs (e.g. the training set);
    voltages outside [\[0,1]] are used as-is. Raises [Invalid_argument] on an
    empty sample or width mismatch. *)

val render : report -> string
