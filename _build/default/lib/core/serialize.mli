(** Persistence for trained printed neural networks.

    A saved pNN bundles the θ matrices, both nonlinear circuits' raw 𝔴 per
    layer and the training configuration — everything needed to re-evaluate
    or print the design later.  The frozen surrogate is {e not} embedded (it
    is a shared artifact with its own cache); [load] takes it as an input and
    checks the architecture matches. *)

val to_lines : Network.t -> string list
val of_lines : Surrogate.Model.t -> string list -> Network.t * string list
(** Raises [Failure] on malformed input. *)

val save_file : Network.t -> string -> unit
val load_file : Surrogate.Model.t -> string -> Network.t
