(** Monte-Carlo test evaluation (paper §IV-C): a trained pNN is tested under
    [n] independent variation draws; the mean and standard deviation of the
    test accuracy over the draws are the paper's reported accuracy and
    robustness. *)

type result = {
  mean_accuracy : float;
  std_accuracy : float;
  accuracies : float array;  (** one per Monte-Carlo draw *)
}

val mc_accuracy :
  Rng.t -> Network.t -> epsilon:float -> n:int -> x:Tensor.t -> y:int array -> result
(** [epsilon = 0] short-circuits to a single deterministic evaluation. *)

val nominal_accuracy : Network.t -> x:Tensor.t -> y:int array -> float
