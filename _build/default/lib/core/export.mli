(** From trained pNN to printable circuit design.

    In the paper's framing, {e training} a pNN {e is} designing a printed
    neuromorphic circuit: the learned |θ| are the crossbar conductances to
    print (sign ⇒ route the input through a negative-weight circuit), and the
    learned 𝔴 are the physical component values of the nonlinear subcircuits.
    This module renders that design, and closes the loop by re-simulating the
    learned nonlinear circuits with the MNA solver to measure how honest the
    surrogate was at the chosen design point. *)

type circuit_check = {
  layer : int;
  kind : [ `Activation | `Negative_weight ];
  omega : float array;  (** learned printable ω *)
  surrogate_eta : Fit.Ptanh.eta;  (** what training believed *)
  simulated_eta : Fit.Ptanh.eta;  (** ground truth: MNA simulation + LM fit *)
  curve_rmse : float;
      (** RMS difference between the surrogate-predicted transfer curve and
          the simulated curve over the 0–1 V sweep *)
}

val design_report : Network.t -> string
(** Human-readable design: per layer, the printable conductance matrix (zeros
    = not printed, sign = negative-weight routing) and both nonlinear
    circuits' component values with their behavioural η. *)

val verify_activations : ?points:int -> Network.t -> circuit_check list
(** Re-simulate every learned nonlinear circuit (paper Fig. 1 topology) and
    fit Eq. 2; reports the surrogate-vs-silicon gap per circuit. *)

val render_checks : circuit_check list -> string
