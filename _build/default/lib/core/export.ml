type circuit_check = {
  layer : int;
  kind : [ `Activation | `Negative_weight ];
  omega : float array;
  surrogate_eta : Fit.Ptanh.eta;
  simulated_eta : Fit.Ptanh.eta;
  curve_rmse : float;
}

let render_omega omega =
  Printf.sprintf "R1=%.0f R2=%.0f R3=%.0fk R4=%.0fk R5=%.0fk W=%.0fum L=%.0fum"
    omega.(0) omega.(1) (omega.(2) /. 1e3) (omega.(3) /. 1e3) (omega.(4) /. 1e3)
    omega.(5) omega.(6)

let render_eta (e : Fit.Ptanh.eta) =
  Printf.sprintf "[%.3f; %.3f; %.3f; %.3f]" e.Fit.Ptanh.eta1 e.Fit.Ptanh.eta2
    e.Fit.Ptanh.eta3 e.Fit.Ptanh.eta4

let design_report network =
  let config = Network.config network in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "Printed neuromorphic circuit design\n";
  Buffer.add_string buf "===================================\n";
  List.iteri
    (fun li layer ->
      let printed = Layer.printed_theta config layer in
      let n_in = Layer.inputs layer and n_out = Layer.outputs layer in
      Buffer.add_string buf
        (Printf.sprintf "\nLayer %d: %d inputs -> %d neurons\n" (li + 1) n_in n_out);
      Buffer.add_string buf
        "  crossbar conductances (normalized; <0 = via negative-weight circuit, 0 = not printed)\n";
      let row_label r =
        if r < n_in then Printf.sprintf "in%-2d" (r + 1)
        else if r = n_in then "bias"
        else "dark"
      in
      for r = 0 to Tensor.rows printed - 1 do
        Buffer.add_string buf (Printf.sprintf "    %-5s" (row_label r));
        for c = 0 to n_out - 1 do
          (* the dark conductance only enters the denominator; its sign is
             meaningless, so report the printed magnitude *)
          let v = Tensor.get printed r c in
          let v = if r = n_in + 1 then Float.abs v else v in
          Buffer.add_string buf (Printf.sprintf " %8.4f" v)
        done;
        Buffer.add_char buf '\n'
      done;
      let describe kind nl =
        Buffer.add_string buf
          (Printf.sprintf "  %s circuit: %s\n    eta = %s\n" kind
             (render_omega (Nonlinear.omega_values nl))
             (render_eta (Nonlinear.eta_values nl)))
      in
      describe "activation (ptanh)" layer.Layer.act;
      describe "negative-weight" layer.Layer.neg)
    (Network.layers network);
  Buffer.contents buf

let check_circuit ~points ~layer ~kind nl =
  let omega = Nonlinear.omega_values nl in
  let surrogate_eta = Nonlinear.eta_values nl in
  let vin, vout =
    Circuit.Ptanh_circuit.transfer ~points (Circuit.Ptanh_circuit.omega_of_array omega)
  in
  let { Fit.Ptanh.eta = simulated_eta; _ } = Fit.Ptanh.fit ~vin ~vout in
  let curve_rmse =
    let acc = ref 0.0 in
    Array.iteri
      (fun i v ->
        let d = Fit.Ptanh.eval surrogate_eta v -. vout.(i) in
        acc := !acc +. (d *. d))
      vin;
    sqrt (!acc /. float_of_int (Array.length vin))
  in
  { layer; kind; omega; surrogate_eta; simulated_eta; curve_rmse }

let verify_activations ?(points = 41) network =
  List.concat
    (List.mapi
       (fun li layer ->
         [
           check_circuit ~points ~layer:(li + 1) ~kind:`Activation layer.Layer.act;
           check_circuit ~points ~layer:(li + 1) ~kind:`Negative_weight layer.Layer.neg;
         ])
       (Network.layers network))

let render_checks checks =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "Surrogate honesty check (surrogate belief vs MNA simulation of the learned circuits)\n";
  List.iter
    (fun c ->
      Buffer.add_string buf
        (Printf.sprintf "  layer %d %-16s rmse %.4f V | surrogate %s | simulated %s\n"
           c.layer
           (match c.kind with
           | `Activation -> "activation"
           | `Negative_weight -> "negative-weight")
           c.curve_rmse (render_eta c.surrogate_eta) (render_eta c.simulated_eta)))
    checks;
  Buffer.contents buf
