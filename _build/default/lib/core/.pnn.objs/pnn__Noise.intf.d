lib/core/noise.mli: Rng Tensor
