lib/core/evaluation.ml: Array Network Noise Stats
