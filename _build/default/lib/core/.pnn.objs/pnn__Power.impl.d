lib/core/power.ml: Array Autodiff Circuit Float Layer List Network Noise Nonlinear Printf Stdlib String Tensor
