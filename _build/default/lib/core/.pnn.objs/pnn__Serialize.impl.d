lib/core/serialize.ml: Array Autodiff Config Fun Layer List Network Nonlinear Printf String Tensor
