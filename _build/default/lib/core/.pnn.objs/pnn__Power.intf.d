lib/core/power.mli: Network Tensor
