lib/core/noise.ml: List Surrogate Tensor
