lib/core/training.mli: Config Datasets Network Nn Noise Rng Surrogate Tensor
