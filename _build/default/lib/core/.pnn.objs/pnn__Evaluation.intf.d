lib/core/evaluation.mli: Network Rng Tensor
