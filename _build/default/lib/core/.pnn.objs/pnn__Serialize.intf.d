lib/core/serialize.mli: Network Surrogate
