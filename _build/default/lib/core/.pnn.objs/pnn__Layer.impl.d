lib/core/layer.ml: Autodiff Config Float Noise Nonlinear Rng Surrogate Tensor
