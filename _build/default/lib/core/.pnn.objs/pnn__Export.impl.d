lib/core/export.ml: Array Buffer Circuit Fit Float Layer List Network Nonlinear Printf Tensor
