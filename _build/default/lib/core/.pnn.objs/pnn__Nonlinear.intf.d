lib/core/nonlinear.mli: Autodiff Fit Surrogate Tensor
