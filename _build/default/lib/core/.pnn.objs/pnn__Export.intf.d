lib/core/export.mli: Fit Network
