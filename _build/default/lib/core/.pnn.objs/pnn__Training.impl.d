lib/core/training.ml: Autodiff Config Datasets Network Nn Noise Rng Tensor
