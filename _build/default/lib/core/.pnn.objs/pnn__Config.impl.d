lib/core/config.ml:
