lib/core/aging.mli: Evaluation Network Noise Rng Tensor Training
