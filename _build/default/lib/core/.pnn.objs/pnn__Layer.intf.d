lib/core/layer.mli: Autodiff Config Noise Nonlinear Rng Surrogate Tensor
