lib/core/network.ml: Autodiff Config Layer List Tensor
