lib/core/config.mli:
