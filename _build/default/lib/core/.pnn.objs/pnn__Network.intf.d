lib/core/network.mli: Autodiff Config Layer Noise Rng Surrogate Tensor
