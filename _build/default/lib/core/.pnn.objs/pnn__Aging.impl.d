lib/core/aging.ml: Array Config Evaluation List Network Noise Rng Stats Surrogate Tensor Training
