lib/core/nonlinear.ml: Array Autodiff Lazy List Surrogate Tensor
