type model = { kappa_max : float; beta : float }

let default_model = { kappa_max = 0.2; beta = 0.5 }

let omega_dim = Surrogate.Design_space.dim

(* Multipliers: conductances decay (1 - delta); circuit resistances R1..R5
   grow (1 + delta); W and L (geometry, indices 5 and 6) do not age. *)
let draw rng model ~t_frac ~theta_shapes =
  if t_frac < 0.0 || t_frac > 1.0 then invalid_arg "Aging.draw: t_frac outside [0,1]";
  let drift () = Rng.uniform rng ~lo:0.0 ~hi:model.kappa_max *. (t_frac ** model.beta) in
  let theta_mult r c = Tensor.init r c (fun _ _ -> 1.0 -. drift ()) in
  let omega_mult () =
    Tensor.init 1 omega_dim (fun _ j -> if j >= 5 then 1.0 else 1.0 +. drift ())
  in
  List.map
    (fun (r, c) ->
      {
        Noise.theta = theta_mult r c;
        act_omega = omega_mult ();
        neg_omega = omega_mult ();
      })
    theta_shapes

let draw_lifetime rng model ~theta_shapes ~n =
  List.init n (fun _ -> draw rng model ~t_frac:(Rng.float rng) ~theta_shapes)

let fit_aging_aware rng model network data =
  let config = Network.config network in
  let shapes = Network.theta_shapes network in
  let train_rng = Rng.copy rng in
  let val_rng = Rng.split rng in
  let train_sampler () =
    draw_lifetime train_rng model ~theta_shapes:shapes ~n:config.Config.n_mc_train
  in
  let val_noises =
    draw_lifetime val_rng model ~theta_shapes:shapes ~n:config.Config.n_mc_val
  in
  Training.fit ~train_sampler ~val_noises rng network data

let accuracy_over_lifetime rng model network ~t_fracs ~n ~x ~y =
  let shapes = Network.theta_shapes network in
  List.map
    (fun t_frac ->
      let accuracies =
        Array.init n (fun _ ->
            let noise = draw rng model ~t_frac ~theta_shapes:shapes in
            let pred = Network.predict network ~noise x in
            let hits = ref 0 in
            Array.iteri (fun i p -> if p = y.(i) then incr hits) pred;
            float_of_int !hits /. float_of_int (Array.length y))
      in
      ( t_frac,
        {
          Evaluation.mean_accuracy = Stats.mean accuracies;
          std_accuracy = (if n > 1 then Stats.std accuracies else 0.0);
          accuracies;
        } ))
    t_fracs
