(** Reparameterized printing-variation noise.

    The paper models fabrication error as i.i.d. multiplicative noise
    ε ~ U[1−ε̄, 1+ε̄] on every printed value: crossbar conductances θ and the
    printable nonlinear-circuit values ω.  A [draw] bundles one realization
    for a whole network. *)

type layer_noise = {
  theta : Tensor.t;  (** per-conductance multipliers, shape of θ *)
  act_omega : Tensor.t;  (** 1 × 7 multipliers for the activation circuit *)
  neg_omega : Tensor.t;  (** 1 × 7 multipliers for the negative-weight circuit *)
}

type t = layer_noise list
(** One entry per layer, input side first. *)

val none : theta_shapes:(int * int) list -> t
(** All-ones noise (nominal evaluation) for the given per-layer θ shapes. *)

val draw : Rng.t -> epsilon:float -> theta_shapes:(int * int) list -> t
(** One uniform multiplicative realization; [epsilon = 0] gives {!none}. *)

val draw_many : Rng.t -> epsilon:float -> theta_shapes:(int * int) list -> n:int -> t list
