type result = {
  mean_accuracy : float;
  std_accuracy : float;
  accuracies : float array;
}

let accuracy_under network noise ~x ~y =
  let pred = Network.predict network ~noise x in
  if Array.length pred <> Array.length y then
    invalid_arg "Evaluation.accuracy: label count mismatch";
  let hits = ref 0 in
  Array.iteri (fun i p -> if p = y.(i) then incr hits) pred;
  float_of_int !hits /. float_of_int (Array.length y)

let nominal_accuracy network ~x ~y =
  let shapes = Network.theta_shapes network in
  accuracy_under network (Noise.none ~theta_shapes:shapes) ~x ~y

let mc_accuracy rng network ~epsilon ~n ~x ~y =
  if n < 1 then invalid_arg "Evaluation.mc_accuracy: n < 1";
  let shapes = Network.theta_shapes network in
  let accuracies =
    if epsilon = 0.0 then [| nominal_accuracy network ~x ~y |]
    else
      Array.init n (fun _ ->
          let noise = Noise.draw rng ~epsilon ~theta_shapes:shapes in
          accuracy_under network noise ~x ~y)
  in
  {
    mean_accuracy = Stats.mean accuracies;
    std_accuracy = (if Array.length accuracies > 1 then Stats.std accuracies else 0.0);
    accuracies;
  }
