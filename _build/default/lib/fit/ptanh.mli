(** Fitting the behavioural ptanh model (paper Eq. 2/3) to simulated transfer
    curves:

      ptanh_η(v) = η1 + η2 · tanh((v − η3) · η4)

    The negative-weight circuit model (Eq. 3) is [inv(v) = −ptanh_η(v)] with η
    fitted against the negated curve; {!fit_inv} returns that η. *)

type eta = { eta1 : float; eta2 : float; eta3 : float; eta4 : float }

val eval : eta -> float -> float
val eval_inv : eta -> float -> float
(** [eval_inv eta v = -. eval eta v]. *)

val eta_to_array : eta -> float array
val eta_of_array : float array -> eta

type fit_result = { eta : eta; rmse : float; converged : bool }

val fit : vin:float array -> vout:float array -> fit_result
(** Least-squares fit of Eq. 2 with a heuristic initial guess derived from the
    curve's range and steepest slope, refined by Levenberg–Marquardt with a
    small multi-start.  Raises [Invalid_argument] on length mismatch or fewer
    than 5 points. *)

val fit_inv : vin:float array -> vout:float array -> fit_result
(** Fit of Eq. 3: finds η such that [−ptanh_η] matches the data. *)
