module Linalg = Circuit.Linalg

type problem = {
  n_params : int;
  n_residuals : int;
  residuals : float array -> float array;
  jacobian : float array -> float array array;
}

type result = {
  params : float array;
  cost : float;
  iterations : int;
  converged : bool;
}

let cost_of r = 0.5 *. Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 r

let solve ?(max_iterations = 200) ?(tolerance = 1e-12) ?(lambda0 = 1e-3) problem p0 =
  if Array.length p0 <> problem.n_params then
    invalid_arg "Lm.solve: initial guess has wrong length";
  let p = Array.copy p0 in
  let lambda = ref lambda0 in
  let r = ref (problem.residuals p) in
  let cost = ref (cost_of !r) in
  let n = problem.n_params in
  let converged = ref false in
  let iters = ref 0 in
  (try
     for iter = 1 to max_iterations do
       iters := iter;
       let j = problem.jacobian p in
       (* normal equations: (JtJ + lambda diag(JtJ)) dp = -Jt r *)
       let jtj = Array.make_matrix n n 0.0 in
       let jtr = Array.make n 0.0 in
       Array.iteri
         (fun i row ->
           let ri = !r.(i) in
           for a = 0 to n - 1 do
             jtr.(a) <- jtr.(a) +. (row.(a) *. ri);
             for b = a to n - 1 do
               jtj.(a).(b) <- jtj.(a).(b) +. (row.(a) *. row.(b))
             done
           done)
         j;
       for a = 0 to n - 1 do
         for b = 0 to a - 1 do
           jtj.(a).(b) <- jtj.(b).(a)
         done
       done;
       let attempt () =
         let m = Array.map Array.copy jtj in
         for a = 0 to n - 1 do
           m.(a).(a) <- m.(a).(a) *. (1.0 +. !lambda);
           (* keep strictly positive diagonal even for flat directions *)
           if m.(a).(a) < 1e-30 then m.(a).(a) <- 1e-30
         done;
         let rhs = Array.map (fun x -> -.x) jtr in
         match Linalg.solve_in_place m rhs with
         | dp -> Some dp
         | exception Failure _ -> None
       in
       let rec try_step attempts =
         if attempts = 0 then false
         else
           match attempt () with
           | None ->
               lambda := !lambda *. 10.0;
               try_step (attempts - 1)
           | Some dp ->
               let p' = Array.mapi (fun i v -> v +. dp.(i)) p in
               let r' = problem.residuals p' in
               let cost' = cost_of r' in
               if cost' < !cost then begin
                 Array.blit p' 0 p 0 n;
                 let rel = (!cost -. cost') /. Stdlib.max !cost 1e-300 in
                 r := r';
                 cost := cost';
                 lambda := Stdlib.max (!lambda /. 10.0) 1e-12;
                 if rel < tolerance then converged := true;
                 true
               end
               else begin
                 lambda := !lambda *. 10.0;
                 try_step (attempts - 1)
               end
       in
       let progressed = try_step 8 in
       if (not progressed) || !converged then begin
         if not progressed then converged := true;
         raise Exit
       end
     done
   with Exit -> ());
  { params = p; cost = !cost; iterations = !iters; converged = !converged }

let numerical_jacobian ~n_residuals f p =
  let n = Array.length p in
  let j = Array.make_matrix n_residuals n 0.0 in
  for col = 0 to n - 1 do
    let h = 1e-6 *. Stdlib.max 1.0 (Float.abs p.(col)) in
    let pp = Array.copy p and pm = Array.copy p in
    pp.(col) <- pp.(col) +. h;
    pm.(col) <- pm.(col) -. h;
    let fp = f pp and fm = f pm in
    for row = 0 to n_residuals - 1 do
      j.(row).(col) <- (fp.(row) -. fm.(row)) /. (2.0 *. h)
    done
  done;
  j
