open Lm

type eta = { eta1 : float; eta2 : float; eta3 : float; eta4 : float }

let eval e v = e.eta1 +. (e.eta2 *. tanh ((v -. e.eta3) *. e.eta4))
let eval_inv e v = -.eval e v
let eta_to_array e = [| e.eta1; e.eta2; e.eta3; e.eta4 |]

let eta_of_array a =
  if Array.length a <> 4 then invalid_arg "Ptanh.eta_of_array: need 4 values";
  { eta1 = a.(0); eta2 = a.(1); eta3 = a.(2); eta4 = a.(3) }

type fit_result = { eta : eta; rmse : float; converged : bool }

let residual_problem vin vout =
  let n = Array.length vin in
  {
    Lm.n_params = 4;
    n_residuals = n;
    residuals =
      (fun p ->
        Array.mapi
          (fun i v -> p.(0) +. (p.(1) *. tanh ((v -. p.(2)) *. p.(3))) -. vout.(i))
          vin);
    jacobian =
      (fun p ->
        Array.map
          (fun v ->
            let u = (v -. p.(2)) *. p.(3) in
            let th = tanh u in
            let sech2 = 1.0 -. (th *. th) in
            [|
              1.0;
              th;
              -.(p.(1) *. sech2 *. p.(3));
              p.(1) *. sech2 *. (v -. p.(2));
            |])
          vin);
  }

(* Initial guess: midpoint/amplitude from the curve range, center at the
   steepest secant, slope from the maximum secant slope (d/dv at center of
   a1 + a2 tanh((v-a3) a4) is a2*a4). *)
let initial_guess vin vout =
  let n = Array.length vin in
  let lo = Array.fold_left Stdlib.min vout.(0) vout in
  let hi = Array.fold_left Stdlib.max vout.(0) vout in
  let amp2 = Stdlib.max ((hi -. lo) /. 2.0) 1e-3 in
  let mid = (hi +. lo) /. 2.0 in
  let best_slope = ref 0.0 and best_center = ref vin.(n / 2) in
  for i = 0 to n - 2 do
    let dv = vin.(i + 1) -. vin.(i) in
    if dv > 1e-12 then begin
      let s = (vout.(i + 1) -. vout.(i)) /. dv in
      if Float.abs s > Float.abs !best_slope then begin
        best_slope := s;
        best_center := (vin.(i) +. vin.(i + 1)) /. 2.0
      end
    end
  done;
  let sign = if !best_slope >= 0.0 then 1.0 else -1.0 in
  let eta4 = Stdlib.max (Float.abs !best_slope /. amp2) 0.5 in
  [| mid; sign *. amp2; !best_center; eta4 |]

let fit ~vin ~vout =
  let n = Array.length vin in
  if Array.length vout <> n then invalid_arg "Ptanh.fit: length mismatch";
  if n < 5 then invalid_arg "Ptanh.fit: need at least 5 points";
  let problem = residual_problem vin vout in
  let guesses =
    let g0 = initial_guess vin vout in
    [
      g0;
      [| g0.(0); g0.(1); g0.(2); g0.(3) *. 4.0 |];
      [| g0.(0); g0.(1); 0.5; 2.0 |];
    ]
  in
  let best =
    List.fold_left
      (fun acc g ->
        let r = Lm.solve problem g in
        match acc with
        | Some (best : Lm.result) when best.cost <= r.cost -> acc
        | _ -> Some r)
      None guesses
  in
  match best with
  | None -> assert false
  | Some r ->
      {
        eta = eta_of_array r.params;
        rmse = sqrt (2.0 *. r.cost /. float_of_int n);
        converged = r.converged;
      }

let fit_inv ~vin ~vout =
  (* Eq. 3: vout ≈ −(η1 + η2 tanh((v−η3)η4)); fit the negated data with Eq. 2. *)
  fit ~vin ~vout:(Array.map (fun v -> -.v) vout)
