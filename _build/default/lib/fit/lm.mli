(** Levenberg–Marquardt nonlinear least squares.

    Minimizes [Σ_i r_i(p)²] for a user-supplied residual function with
    analytic Jacobian.  Small and dense — exactly what fitting a 4-parameter
    ptanh curve to a 41-point DC sweep needs. *)

type problem = {
  n_params : int;
  n_residuals : int;
  residuals : float array -> float array;
      (** [residuals p] has length [n_residuals]. *)
  jacobian : float array -> float array array;
      (** [jacobian p] is [n_residuals × n_params], [J.(i).(j) = ∂r_i/∂p_j]. *)
}

type result = {
  params : float array;
  cost : float;  (** final ½·Σ r² *)
  iterations : int;
  converged : bool;
}

val solve :
  ?max_iterations:int ->
  ?tolerance:float ->
  ?lambda0:float ->
  problem ->
  float array ->
  result
(** [solve problem p0] from the initial guess. [tolerance] bounds the relative
    cost decrease used as the convergence test (default 1e-12). *)

val numerical_jacobian :
  n_residuals:int -> (float array -> float array) -> float array -> float array array
(** Central-difference Jacobian, exposed for tests of analytic Jacobians. *)
