lib/fit/lm.mli:
