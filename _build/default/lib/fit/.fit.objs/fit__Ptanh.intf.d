lib/fit/ptanh.mli:
