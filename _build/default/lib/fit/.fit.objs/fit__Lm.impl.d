lib/fit/lm.ml: Array Circuit Float Stdlib
