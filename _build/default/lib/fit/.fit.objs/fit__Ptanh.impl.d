lib/fit/ptanh.ml: Array Float List Lm Stdlib
