(* Tests for the EGT compact transistor model. *)

module E = Circuit.Egt

let p = E.default

let test_zero_vds_zero_current () =
  let e = E.evaluate p ~w_um:400.0 ~l_um:40.0 ~vgs:0.5 ~vds:0.0 in
  Alcotest.(check (float 1e-15)) "I(vds=0) = 0" 0.0 e.E.id

let test_off_below_threshold () =
  let e = E.evaluate p ~w_um:400.0 ~l_um:40.0 ~vgs:(-0.5) ~vds:0.5 in
  Alcotest.(check bool) "subthreshold current tiny" true (Float.abs e.E.id < 1e-9)

let test_monotone_in_vgs () =
  let prev = ref neg_infinity in
  for i = 0 to 20 do
    let vgs = float_of_int i *. 0.05 in
    let e = E.evaluate p ~w_um:400.0 ~l_um:40.0 ~vgs ~vds:0.5 in
    if e.E.id < !prev -. 1e-15 then Alcotest.failf "not monotone in vgs at %.2f" vgs;
    prev := e.E.id
  done

let test_monotone_in_vds () =
  let prev = ref neg_infinity in
  for i = 0 to 20 do
    let vds = float_of_int i *. 0.05 in
    let e = E.evaluate p ~w_um:400.0 ~l_um:40.0 ~vgs:0.4 ~vds in
    if e.E.id < !prev -. 1e-15 then Alcotest.failf "not monotone in vds at %.2f" vds;
    prev := e.E.id
  done

let test_scales_with_geometry () =
  let narrow = E.evaluate p ~w_um:200.0 ~l_um:40.0 ~vgs:0.4 ~vds:0.5 in
  let wide = E.evaluate p ~w_um:800.0 ~l_um:40.0 ~vgs:0.4 ~vds:0.5 in
  Alcotest.(check (float 1e-12)) "I proportional to W" (4.0 *. narrow.E.id) wide.E.id;
  let long = E.evaluate p ~w_um:200.0 ~l_um:80.0 ~vgs:0.4 ~vds:0.5 in
  Alcotest.(check (float 1e-12)) "I inversely proportional to L" (narrow.E.id /. 2.0)
    long.E.id

let test_antisymmetry () =
  (* source/drain swap: I(vgs, vds) with vds < 0 equals -I+(vgs - vds, -vds);
     so I(0.1, -0.3) = -I+(0.4, 0.3) *)
  let fwd = E.evaluate p ~w_um:400.0 ~l_um:40.0 ~vgs:0.4 ~vds:0.3 in
  let rev = E.evaluate p ~w_um:400.0 ~l_um:40.0 ~vgs:0.1 ~vds:(-0.3) in
  Alcotest.(check (float 1e-15)) "swap symmetry" fwd.E.id (-.rev.E.id)

let test_invalid_geometry () =
  Alcotest.check_raises "bad W" (Invalid_argument "Egt.evaluate: non-positive geometry")
    (fun () -> ignore (E.evaluate p ~w_um:0.0 ~l_um:40.0 ~vgs:0.0 ~vds:0.0))

(* derivative checks vs central differences *)
let deriv_check ~vgs ~vds =
  let h = 1e-6 in
  let f ~vgs ~vds = (E.evaluate p ~w_um:400.0 ~l_um:40.0 ~vgs ~vds).E.id in
  let e = E.evaluate p ~w_um:400.0 ~l_um:40.0 ~vgs ~vds in
  let gm_num = (f ~vgs:(vgs +. h) ~vds -. f ~vgs:(vgs -. h) ~vds) /. (2.0 *. h) in
  let gds_num = (f ~vgs ~vds:(vds +. h) -. f ~vgs ~vds:(vds -. h)) /. (2.0 *. h) in
  let rel a b = Float.abs (a -. b) /. Stdlib.max 1e-9 (Stdlib.max (Float.abs a) (Float.abs b)) in
  if rel e.E.gm gm_num > 1e-3 then
    Alcotest.failf "gm mismatch at (%.2f, %.2f): %g vs %g" vgs vds e.E.gm gm_num;
  if rel e.E.gds gds_num > 1e-3 then
    Alcotest.failf "gds mismatch at (%.2f, %.2f): %g vs %g" vgs vds e.E.gds gds_num

let test_derivatives () =
  List.iter
    (fun (vgs, vds) -> deriv_check ~vgs ~vds)
    [ (0.3, 0.5); (0.5, 0.1); (0.1, 0.8); (0.6, 0.6); (0.05, 0.4); (0.4, 0.9) ]

let test_gds_positive () =
  (* positive output conductance everywhere the device conducts: needed for
     Newton stability *)
  for i = 1 to 10 do
    for j = 1 to 10 do
      let vgs = float_of_int i *. 0.1 and vds = float_of_int j *. 0.1 in
      let e = E.evaluate p ~w_um:400.0 ~l_um:40.0 ~vgs ~vds in
      if e.E.gds < 0.0 then Alcotest.failf "negative gds at (%.1f, %.1f)" vgs vds
    done
  done

let qcheck_current_bounded =
  QCheck.Test.make ~name:"current stays physical (< 100 mA)" ~count:500
    QCheck.(
      quad (float_range 200.0 800.0) (float_range 10.0 70.0) (float_range (-1.0) 1.5)
        (float_range (-1.0) 1.0))
    (fun (w, l, vgs, vds) ->
      let e = E.evaluate p ~w_um:w ~l_um:l ~vgs ~vds in
      Float.abs e.E.id < 0.1 && Float.is_finite e.E.gm && Float.is_finite e.E.gds)

let () =
  Alcotest.run "egt"
    [
      ( "model",
        [
          Alcotest.test_case "zero vds" `Quick test_zero_vds_zero_current;
          Alcotest.test_case "off below threshold" `Quick test_off_below_threshold;
          Alcotest.test_case "monotone vgs" `Quick test_monotone_in_vgs;
          Alcotest.test_case "monotone vds" `Quick test_monotone_in_vds;
          Alcotest.test_case "geometry scaling" `Quick test_scales_with_geometry;
          Alcotest.test_case "antisymmetry" `Quick test_antisymmetry;
          Alcotest.test_case "invalid geometry" `Quick test_invalid_geometry;
          Alcotest.test_case "derivatives" `Quick test_derivatives;
          Alcotest.test_case "gds positive" `Quick test_gds_positive;
          QCheck_alcotest.to_alcotest qcheck_current_bounded;
        ] );
    ]
