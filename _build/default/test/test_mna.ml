(* Tests for the nonlinear MNA solver. *)

module N = Circuit.Netlist
module M = Circuit.Mna

let model = Circuit.Egt.default
let feq = Alcotest.(check (float 1e-6))

let test_voltage_divider () =
  let nl = N.create () in
  let top = N.fresh_node nl in
  let mid = N.fresh_node nl in
  N.add nl (N.Vsource { name = "v"; plus = top; minus = N.ground; volts = 10.0 });
  N.add nl (N.Resistor { a = top; b = mid; ohms = 1000.0 });
  N.add nl (N.Resistor { a = mid; b = N.ground; ohms = 3000.0 });
  let sol = M.solve model nl in
  feq "divider" 7.5 sol.M.voltages.(mid)

let test_series_parallel () =
  (* 6V across 1k in series with (2k || 2k) -> node voltage = 6 * 1k / 2k = 3 *)
  let nl = N.create () in
  let top = N.fresh_node nl in
  let mid = N.fresh_node nl in
  N.add nl (N.Vsource { name = "v"; plus = top; minus = N.ground; volts = 6.0 });
  N.add nl (N.Resistor { a = top; b = mid; ohms = 1000.0 });
  N.add nl (N.Resistor { a = mid; b = N.ground; ohms = 2000.0 });
  N.add nl (N.Resistor { a = mid; b = N.ground; ohms = 2000.0 });
  let sol = M.solve model nl in
  feq "series-parallel" 3.0 sol.M.voltages.(mid)

let test_two_sources () =
  let nl = N.create () in
  let a = N.fresh_node nl in
  let b = N.fresh_node nl in
  N.add nl (N.Vsource { name = "va"; plus = a; minus = N.ground; volts = 5.0 });
  N.add nl (N.Vsource { name = "vb"; plus = b; minus = N.ground; volts = 2.0 });
  N.add nl (N.Resistor { a; b; ohms = 1000.0 });
  let sol = M.solve model nl in
  feq "source a pinned" 5.0 sol.M.voltages.(a);
  feq "source b pinned" 2.0 sol.M.voltages.(b)

let test_floating_source_stack () =
  (* stacked sources: 3V + 2V in series -> top node at 5V *)
  let nl = N.create () in
  let mid = N.fresh_node nl in
  let top = N.fresh_node nl in
  N.add nl (N.Vsource { name = "v1"; plus = mid; minus = N.ground; volts = 3.0 });
  N.add nl (N.Vsource { name = "v2"; plus = top; minus = mid; volts = 2.0 });
  N.add nl (N.Resistor { a = top; b = N.ground; ohms = 500.0 });
  let sol = M.solve model nl in
  feq "stack" 5.0 sol.M.voltages.(top)

let test_invalid_netlist () =
  let nl = N.create () in
  N.add nl (N.Resistor { a = 0; b = 5; ohms = 100.0 });
  match M.solve model nl with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected invalid netlist error"

let test_inverter_inverts () =
  (* common-source stage: gate up -> drain down *)
  let build vg =
    let nl = N.create () in
    let vdd = N.fresh_node nl in
    let gate = N.fresh_node nl in
    let drain = N.fresh_node nl in
    N.add nl (N.Vsource { name = "vdd"; plus = vdd; minus = N.ground; volts = 1.0 });
    N.add nl (N.Vsource { name = "vg"; plus = gate; minus = N.ground; volts = vg });
    N.add nl (N.Resistor { a = vdd; b = drain; ohms = 200_000.0 });
    N.add nl
      (N.Transistor { gate; drain; source = N.ground; w_um = 500.0; l_um = 20.0 });
    let sol = M.solve model nl in
    sol.M.voltages.(drain)
  in
  let off = build 0.0 and on = build 1.0 in
  (* the smooth subthreshold model leaks a little, so "high" is ~0.88 here *)
  Alcotest.(check bool) "off output high" true (off > 0.85);
  Alcotest.(check bool) "on output low" true (on < 0.3);
  (* monotone decreasing along the way *)
  let prev = ref infinity in
  for i = 0 to 10 do
    let v = build (float_of_int i *. 0.1) in
    if v > !prev +. 1e-9 then Alcotest.failf "inverter not monotone at step %d" i;
    prev := v
  done

let test_kcl_residual () =
  (* at the solution, net current into each internal node is ~0 *)
  let nl = N.create () in
  let vdd = N.fresh_node nl in
  let gate = N.fresh_node nl in
  let drain = N.fresh_node nl in
  N.add nl (N.Vsource { name = "vdd"; plus = vdd; minus = N.ground; volts = 1.0 });
  N.add nl (N.Vsource { name = "vg"; plus = gate; minus = N.ground; volts = 0.35 });
  N.add nl (N.Resistor { a = vdd; b = drain; ohms = 100_000.0 });
  N.add nl (N.Transistor { gate; drain; source = N.ground; w_um = 400.0; l_um = 30.0 });
  let sol = M.solve model nl in
  let v = sol.M.voltages in
  let i_r = (v.(vdd) -. v.(drain)) /. 100_000.0 in
  let e =
    Circuit.Egt.evaluate model ~w_um:400.0 ~l_um:30.0 ~vgs:(v.(gate)) ~vds:(v.(drain))
  in
  Alcotest.(check (float 1e-9)) "KCL at drain" 0.0 (i_r -. e.Circuit.Egt.id)

let test_warm_start () =
  let nl = N.create () in
  let top = N.fresh_node nl in
  N.add nl (N.Vsource { name = "v"; plus = top; minus = N.ground; volts = 1.0 });
  N.add nl (N.Resistor { a = top; b = N.ground; ohms = 1000.0 });
  let sol1 = M.solve model nl in
  let sol2 = M.solve ~initial:sol1.M.voltages model nl in
  Alcotest.(check bool) "warm start faster or equal" true
    (sol2.M.iterations <= sol1.M.iterations)

let test_set_source_sweep_consistency () =
  let nl = N.create () in
  let top = N.fresh_node nl in
  let mid = N.fresh_node nl in
  N.add nl (N.Vsource { name = "vin"; plus = top; minus = N.ground; volts = 0.0 });
  N.add nl (N.Resistor { a = top; b = mid; ohms = 1000.0 });
  N.add nl (N.Resistor { a = mid; b = N.ground; ohms = 1000.0 });
  let pts =
    Circuit.Dc_sweep.run ~model ~netlist:nl ~source:"vin" ~output:mid
      ~sweep:(Circuit.Dc_sweep.linspace 0.0 2.0 5) ()
  in
  Array.iter
    (fun p ->
      Alcotest.(check (float 1e-9))
        "half of vin" (p.Circuit.Dc_sweep.vin /. 2.0) p.Circuit.Dc_sweep.vout)
    pts

let () =
  Alcotest.run "mna"
    [
      ( "linear circuits",
        [
          Alcotest.test_case "voltage divider" `Quick test_voltage_divider;
          Alcotest.test_case "series-parallel" `Quick test_series_parallel;
          Alcotest.test_case "two sources" `Quick test_two_sources;
          Alcotest.test_case "stacked sources" `Quick test_floating_source_stack;
          Alcotest.test_case "invalid netlist" `Quick test_invalid_netlist;
        ] );
      ( "nonlinear circuits",
        [
          Alcotest.test_case "inverter inverts" `Quick test_inverter_inverts;
          Alcotest.test_case "KCL residual" `Quick test_kcl_residual;
          Alcotest.test_case "warm start" `Quick test_warm_start;
          Alcotest.test_case "sweep consistency" `Quick test_set_source_sweep_consistency;
        ] );
    ]
