(* Tests for the Levenberg–Marquardt solver. *)

open Fit

let test_linear_fit () =
  (* y = 2x + 1, exact fit *)
  let xs = [| 0.0; 1.0; 2.0; 3.0 |] in
  let ys = [| 1.0; 3.0; 5.0; 7.0 |] in
  let problem =
    {
      Lm.n_params = 2;
      n_residuals = 4;
      residuals = (fun p -> Array.mapi (fun i x -> (p.(0) *. x) +. p.(1) -. ys.(i)) xs);
      jacobian = (fun _ -> Array.map (fun x -> [| x; 1.0 |]) xs);
    }
  in
  let r = Lm.solve problem [| 0.0; 0.0 |] in
  Alcotest.(check (float 1e-6)) "slope" 2.0 r.Lm.params.(0);
  Alcotest.(check (float 1e-6)) "intercept" 1.0 r.Lm.params.(1);
  Alcotest.(check bool) "converged" true r.Lm.converged;
  Alcotest.(check bool) "zero cost" true (r.Lm.cost < 1e-12)

let test_exponential_fit () =
  (* y = 3 exp(-0.7 x), nonlinear *)
  let xs = Array.init 20 (fun i -> float_of_int i *. 0.25) in
  let ys = Array.map (fun x -> 3.0 *. exp (-0.7 *. x)) xs in
  let problem =
    {
      Lm.n_params = 2;
      n_residuals = Array.length xs;
      residuals =
        (fun p -> Array.mapi (fun i x -> (p.(0) *. exp (p.(1) *. x)) -. ys.(i)) xs);
      jacobian =
        (fun p ->
          Array.map (fun x -> [| exp (p.(1) *. x); p.(0) *. x *. exp (p.(1) *. x) |]) xs);
    }
  in
  let r = Lm.solve problem [| 1.0; -0.1 |] in
  Alcotest.(check (float 1e-5)) "amplitude" 3.0 r.Lm.params.(0);
  Alcotest.(check (float 1e-5)) "rate" (-0.7) r.Lm.params.(1)

let test_initial_guess_length () =
  let problem =
    {
      Lm.n_params = 2;
      n_residuals = 1;
      residuals = (fun _ -> [| 0.0 |]);
      jacobian = (fun _ -> [| [| 0.0; 0.0 |] |]);
    }
  in
  Alcotest.check_raises "bad p0" (Invalid_argument "Lm.solve: initial guess has wrong length")
    (fun () -> ignore (Lm.solve problem [| 0.0 |]))

let test_already_optimal () =
  (* start at the optimum: should converge immediately without moving *)
  let problem =
    {
      Lm.n_params = 1;
      n_residuals = 2;
      residuals = (fun p -> [| p.(0) -. 5.0; p.(0) -. 5.0 |]);
      jacobian = (fun _ -> [| [| 1.0 |]; [| 1.0 |] |]);
    }
  in
  let r = Lm.solve problem [| 5.0 |] in
  Alcotest.(check (float 1e-9)) "stays put" 5.0 r.Lm.params.(0)

let test_numerical_jacobian_agrees () =
  let f p = [| (p.(0) *. p.(0)) +. p.(1); sin p.(0) |] in
  let p = [| 0.7; -0.3 |] in
  let j = Lm.numerical_jacobian ~n_residuals:2 f p in
  Alcotest.(check (float 1e-5)) "d r0/d p0" 1.4 j.(0).(0);
  Alcotest.(check (float 1e-5)) "d r0/d p1" 1.0 j.(0).(1);
  Alcotest.(check (float 1e-5)) "d r1/d p0" (cos 0.7) j.(1).(0);
  Alcotest.(check (float 1e-5)) "d r1/d p1" 0.0 j.(1).(1)

let test_rosenbrock_valley () =
  (* classic hard case as least squares: r = [10(y - x^2); 1 - x] *)
  let problem =
    {
      Lm.n_params = 2;
      n_residuals = 2;
      residuals = (fun p -> [| 10.0 *. (p.(1) -. (p.(0) *. p.(0))); 1.0 -. p.(0) |]);
      jacobian = (fun p -> [| [| -20.0 *. p.(0); 10.0 |]; [| -1.0; 0.0 |] |]);
    }
  in
  let r = Lm.solve ~max_iterations:500 problem [| -1.2; 1.0 |] in
  Alcotest.(check (float 1e-4)) "x" 1.0 r.Lm.params.(0);
  Alcotest.(check (float 1e-4)) "y" 1.0 r.Lm.params.(1)

let test_noisy_fit_cost_reasonable () =
  let rng = Rng.create 21 in
  let xs = Array.init 50 (fun i -> float_of_int i /. 10.0) in
  let ys = Array.map (fun x -> (1.5 *. x) +. 0.2 +. Rng.gaussian rng ~mu:0.0 ~sigma:0.01) xs in
  let problem =
    {
      Lm.n_params = 2;
      n_residuals = 50;
      residuals = (fun p -> Array.mapi (fun i x -> (p.(0) *. x) +. p.(1) -. ys.(i)) xs);
      jacobian = (fun _ -> Array.map (fun x -> [| x; 1.0 |]) xs);
    }
  in
  let r = Lm.solve problem [| 0.0; 0.0 |] in
  Alcotest.(check bool) "slope near 1.5" true (Float.abs (r.Lm.params.(0) -. 1.5) < 0.02);
  Alcotest.(check bool) "cost ~ noise level" true (r.Lm.cost < 50.0 *. 0.01)

let () =
  Alcotest.run "lm"
    [
      ( "solver",
        [
          Alcotest.test_case "linear" `Quick test_linear_fit;
          Alcotest.test_case "exponential" `Quick test_exponential_fit;
          Alcotest.test_case "bad guess length" `Quick test_initial_guess_length;
          Alcotest.test_case "already optimal" `Quick test_already_optimal;
          Alcotest.test_case "numerical jacobian" `Quick test_numerical_jacobian_agrees;
          Alcotest.test_case "rosenbrock" `Quick test_rosenbrock_valley;
          Alcotest.test_case "noisy linear" `Quick test_noisy_fit_cost_reasonable;
        ] );
    ]
