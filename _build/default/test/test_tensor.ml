(* Tests for dense tensors. *)

module T = Tensor

let tensor_eq ?(eps = 1e-12) msg a b =
  if not (T.equal ~eps a b) then
    Alcotest.failf "%s:\nexpected %s\ngot %s" msg (T.to_string a) (T.to_string b)

let test_create_checks () =
  Alcotest.check_raises "bad length"
    (Invalid_argument "Tensor.create: data length 3 <> 2*2") (fun () ->
      ignore (T.create 2 2 [| 1.0; 2.0; 3.0 |]))

let test_init_layout () =
  let t = T.init 2 3 (fun r c -> float_of_int ((10 * r) + c)) in
  Alcotest.(check (float 0.0)) "(0,0)" 0.0 (T.get t 0 0);
  Alcotest.(check (float 0.0)) "(0,2)" 2.0 (T.get t 0 2);
  Alcotest.(check (float 0.0)) "(1,0)" 10.0 (T.get t 1 0);
  Alcotest.(check (float 0.0)) "(1,2)" 12.0 (T.get t 1 2)

let test_get_bounds () =
  let t = T.zeros 2 2 in
  Alcotest.check_raises "row oob" (Invalid_argument "Tensor.get: (2,0) out of 2x2")
    (fun () -> ignore (T.get t 2 0))

let test_of_arrays_ragged () =
  Alcotest.check_raises "ragged"
    (Invalid_argument "Tensor.of_arrays: row 1 has length 1, expected 2") (fun () ->
      ignore (T.of_arrays [| [| 1.0; 2.0 |]; [| 3.0 |] |]))

let test_elementwise () =
  let a = T.of_arrays [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  let b = T.of_arrays [| [| 5.0; 6.0 |]; [| 7.0; 8.0 |] |] in
  tensor_eq "add" (T.of_arrays [| [| 6.0; 8.0 |]; [| 10.0; 12.0 |] |]) (T.add a b);
  tensor_eq "sub" (T.of_arrays [| [| -4.0; -4.0 |]; [| -4.0; -4.0 |] |]) (T.sub a b);
  tensor_eq "mul" (T.of_arrays [| [| 5.0; 12.0 |]; [| 21.0; 32.0 |] |]) (T.mul a b);
  tensor_eq "div" (T.of_arrays [| [| 0.2; 2.0 /. 6.0 |]; [| 3.0 /. 7.0; 0.5 |] |])
    (T.div a b);
  tensor_eq "neg" (T.of_arrays [| [| -1.0; -2.0 |]; [| -3.0; -4.0 |] |]) (T.neg a);
  tensor_eq "scale" (T.of_arrays [| [| 2.0; 4.0 |]; [| 6.0; 8.0 |] |]) (T.scale 2.0 a);
  tensor_eq "add_scalar" (T.of_arrays [| [| 2.0; 3.0 |]; [| 4.0; 5.0 |] |])
    (T.add_scalar 1.0 a)

let test_shape_mismatch () =
  let a = T.zeros 2 2 and b = T.zeros 2 3 in
  Alcotest.check_raises "add mismatch"
    (Invalid_argument "Tensor.add: shape mismatch 2x2 vs 2x3") (fun () ->
      ignore (T.add a b))

let test_matmul_known () =
  let a = T.of_arrays [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  let b = T.of_arrays [| [| 5.0; 6.0 |]; [| 7.0; 8.0 |] |] in
  tensor_eq "a*b" (T.of_arrays [| [| 19.0; 22.0 |]; [| 43.0; 50.0 |] |]) (T.matmul a b)

let test_matmul_identity () =
  let rng = Rng.create 1 in
  let a = T.uniform rng 4 4 ~lo:(-1.0) ~hi:1.0 in
  let id = T.init 4 4 (fun r c -> if r = c then 1.0 else 0.0) in
  tensor_eq ~eps:1e-12 "a*I = a" a (T.matmul a id);
  tensor_eq ~eps:1e-12 "I*a = a" a (T.matmul id a)

let test_matmul_vs_naive () =
  let rng = Rng.create 2 in
  let a = T.uniform rng 5 7 ~lo:(-2.0) ~hi:2.0 in
  let b = T.uniform rng 7 3 ~lo:(-2.0) ~hi:2.0 in
  let naive =
    T.init 5 3 (fun i j ->
        let acc = ref 0.0 in
        for k = 0 to 6 do
          acc := !acc +. (T.get a i k *. T.get b k j)
        done;
        !acc)
  in
  tensor_eq ~eps:1e-12 "naive agreement" naive (T.matmul a b)

let test_transpose () =
  let a = T.of_arrays [| [| 1.0; 2.0; 3.0 |]; [| 4.0; 5.0; 6.0 |] |] in
  tensor_eq "transpose"
    (T.of_arrays [| [| 1.0; 4.0 |]; [| 2.0; 5.0 |]; [| 3.0; 6.0 |] |])
    (T.transpose a);
  tensor_eq "involution" a (T.transpose (T.transpose a))

let test_broadcast_ops () =
  let m = T.of_arrays [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  let v = T.of_array [| 10.0; 20.0 |] in
  tensor_eq "add_rowvec" (T.of_arrays [| [| 11.0; 22.0 |]; [| 13.0; 24.0 |] |])
    (T.add_rowvec m v);
  tensor_eq "mul_rowvec" (T.of_arrays [| [| 10.0; 40.0 |]; [| 30.0; 80.0 |] |])
    (T.mul_rowvec m v);
  let col = T.create 2 1 [| 10.0; 100.0 |] in
  tensor_eq "add_colvec" (T.of_arrays [| [| 11.0; 12.0 |]; [| 103.0; 104.0 |] |])
    (T.add_colvec m col);
  tensor_eq "mul_colvec" (T.of_arrays [| [| 10.0; 20.0 |]; [| 300.0; 400.0 |] |])
    (T.mul_colvec m col);
  tensor_eq "div_colvec" (T.of_arrays [| [| 0.1; 0.2 |]; [| 0.03; 0.04 |] |])
    (T.div_colvec m col)

let test_reductions () =
  let m = T.of_arrays [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  Alcotest.(check (float 1e-12)) "sum" 10.0 (T.sum m);
  Alcotest.(check (float 1e-12)) "mean" 2.5 (T.mean m);
  Alcotest.(check (float 1e-12)) "min" 1.0 (T.min_value m);
  Alcotest.(check (float 1e-12)) "max" 4.0 (T.max_value m);
  tensor_eq "sum_rows" (T.of_array [| 4.0; 6.0 |]) (T.sum_rows m);
  tensor_eq "sum_cols" (T.create 2 1 [| 3.0; 7.0 |]) (T.sum_cols m)

let test_argmax_rows () =
  let m = T.of_arrays [| [| 0.1; 0.9; 0.5 |]; [| 2.0; 1.0; 0.0 |] |] in
  Alcotest.(check (array int)) "argmax" [| 1; 0 |] (T.argmax_rows m)

let test_slicing () =
  let m = T.init 4 3 (fun r c -> float_of_int ((r * 3) + c)) in
  tensor_eq "slice_rows"
    (T.of_arrays [| [| 3.0; 4.0; 5.0 |]; [| 6.0; 7.0; 8.0 |] |])
    (T.slice_rows m 1 2);
  tensor_eq "slice_cols"
    (T.init 4 2 (fun r c -> float_of_int ((r * 3) + c + 1)))
    (T.slice_cols m 1 2);
  Alcotest.check_raises "slice oob"
    (Invalid_argument "Tensor.slice_rows: [3,6) out of 4 rows") (fun () ->
      ignore (T.slice_rows m 3 3))

let test_concat () =
  let a = T.of_arrays [| [| 1.0 |]; [| 2.0 |] |] in
  let b = T.of_arrays [| [| 3.0 |]; [| 4.0 |] |] in
  tensor_eq "concat_cols" (T.of_arrays [| [| 1.0; 3.0 |]; [| 2.0; 4.0 |] |])
    (T.concat_cols a b);
  tensor_eq "concat_rows" (T.create 4 1 [| 1.0; 2.0; 3.0; 4.0 |]) (T.concat_rows a b)

let test_take_rows () =
  let m = T.init 4 2 (fun r c -> float_of_int ((r * 2) + c)) in
  tensor_eq "take"
    (T.of_arrays [| [| 4.0; 5.0 |]; [| 0.0; 1.0 |]; [| 4.0; 5.0 |] |])
    (T.take_rows m [| 2; 0; 2 |]);
  Alcotest.check_raises "take oob" (Invalid_argument "Tensor.take_rows: index out of range")
    (fun () -> ignore (T.take_rows m [| 4 |]))

let test_clamp () =
  let m = T.of_array [| -2.0; 0.5; 3.0 |] in
  tensor_eq "clamp" (T.of_array [| -1.0; 0.5; 1.0 |]) (T.clamp ~lo:(-1.0) ~hi:1.0 m)

let test_dot () =
  let a = T.of_array [| 1.0; 2.0; 3.0 |] and b = T.of_array [| 4.0; 5.0; 6.0 |] in
  Alcotest.(check (float 1e-12)) "dot" 32.0 (T.dot a b)

let test_copy_isolated () =
  let a = T.zeros 2 2 in
  let b = T.copy a in
  T.set b 0 0 5.0;
  Alcotest.(check (float 0.0)) "original unchanged" 0.0 (T.get a 0 0)

let small_mat =
  QCheck.Gen.(
    sized_size (int_range 1 6) (fun n ->
        sized_size (int_range 1 6) (fun m ->
            map
              (fun values -> T.create n m (Array.of_list values))
              (list_repeat (n * m) (float_range (-10.0) 10.0)))))

let arb_mat = QCheck.make ~print:T.to_string small_mat

let qcheck_transpose_involution =
  QCheck.Test.make ~name:"transpose involution" ~count:200 arb_mat (fun m ->
      T.equal m (T.transpose (T.transpose m)))

let qcheck_add_commutes =
  QCheck.Test.make ~name:"add commutes" ~count:200 arb_mat (fun m ->
      let r = T.map (fun v -> v *. 0.5) m in
      T.equal ~eps:1e-9 (T.add m r) (T.add r m))

let qcheck_sum_linear =
  QCheck.Test.make ~name:"sum is linear under scale" ~count:200 arb_mat (fun m ->
      Float.abs (T.sum (T.scale 2.0 m) -. (2.0 *. T.sum m)) < 1e-6)

let qcheck_matmul_transpose =
  QCheck.Test.make ~name:"(AB)^T = B^T A^T" ~count:100
    QCheck.(pair arb_mat arb_mat)
    (fun (a, b0) ->
      (* reshape b to be compatible: use b0 transposed if needed, else skip *)
      let b =
        if T.rows b0 = T.cols a then b0
        else T.init (T.cols a) (T.cols b0) (fun r c -> T.get b0 (r mod T.rows b0) c)
      in
      T.equal ~eps:1e-6
        (T.transpose (T.matmul a b))
        (T.matmul (T.transpose b) (T.transpose a)))

let () =
  Alcotest.run "tensor"
    [
      ( "construction",
        [
          Alcotest.test_case "create checks" `Quick test_create_checks;
          Alcotest.test_case "init layout" `Quick test_init_layout;
          Alcotest.test_case "get bounds" `Quick test_get_bounds;
          Alcotest.test_case "ragged" `Quick test_of_arrays_ragged;
          Alcotest.test_case "copy isolated" `Quick test_copy_isolated;
        ] );
      ( "ops",
        [
          Alcotest.test_case "elementwise" `Quick test_elementwise;
          Alcotest.test_case "shape mismatch" `Quick test_shape_mismatch;
          Alcotest.test_case "matmul known" `Quick test_matmul_known;
          Alcotest.test_case "matmul identity" `Quick test_matmul_identity;
          Alcotest.test_case "matmul naive" `Quick test_matmul_vs_naive;
          Alcotest.test_case "transpose" `Quick test_transpose;
          Alcotest.test_case "broadcast" `Quick test_broadcast_ops;
          Alcotest.test_case "reductions" `Quick test_reductions;
          Alcotest.test_case "argmax" `Quick test_argmax_rows;
          Alcotest.test_case "slicing" `Quick test_slicing;
          Alcotest.test_case "concat" `Quick test_concat;
          Alcotest.test_case "take_rows" `Quick test_take_rows;
          Alcotest.test_case "clamp" `Quick test_clamp;
          Alcotest.test_case "dot" `Quick test_dot;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest qcheck_transpose_involution;
          QCheck_alcotest.to_alcotest qcheck_add_commutes;
          QCheck_alcotest.to_alcotest qcheck_sum_linear;
          QCheck_alcotest.to_alcotest qcheck_matmul_transpose;
        ] );
    ]
