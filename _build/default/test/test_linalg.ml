(* Tests for the dense linear solver. *)

module L = Circuit.Linalg

let feq = Alcotest.(check (float 1e-9))

let test_identity () =
  let a = [| [| 1.0; 0.0 |]; [| 0.0; 1.0 |] |] in
  let x = L.solve a [| 3.0; -4.0 |] in
  feq "x0" 3.0 x.(0);
  feq "x1" (-4.0) x.(1)

let test_known_2x2 () =
  (* 2x + y = 5 ; x - y = 1  => x = 2, y = 1 *)
  let a = [| [| 2.0; 1.0 |]; [| 1.0; -1.0 |] |] in
  let x = L.solve a [| 5.0; 1.0 |] in
  feq "x" 2.0 x.(0);
  feq "y" 1.0 x.(1)

let test_pivoting_required () =
  (* zero on the leading diagonal forces a row swap *)
  let a = [| [| 0.0; 1.0 |]; [| 1.0; 0.0 |] |] in
  let x = L.solve a [| 7.0; 9.0 |] in
  feq "x" 9.0 x.(0);
  feq "y" 7.0 x.(1)

let test_singular () =
  let a = [| [| 1.0; 2.0 |]; [| 2.0; 4.0 |] |] in
  Alcotest.check_raises "singular" (Failure "Linalg.solve: singular") (fun () ->
      ignore (L.solve a [| 1.0; 2.0 |]))

let test_inputs_not_modified () =
  let a = [| [| 2.0; 1.0 |]; [| 1.0; -1.0 |] |] in
  let b = [| 5.0; 1.0 |] in
  ignore (L.solve a b);
  feq "a intact" 2.0 a.(0).(0);
  feq "b intact" 5.0 b.(0)

let test_random_systems () =
  let rng = Rng.create 77 in
  for _ = 1 to 50 do
    let n = 1 + Rng.int rng 10 in
    let a =
      Array.init n (fun _ -> Array.init n (fun _ -> Rng.uniform rng ~lo:(-5.0) ~hi:5.0))
    in
    (* diagonally dominate to avoid accidental singularity *)
    Array.iteri (fun i row -> row.(i) <- row.(i) +. 20.0) a;
    let b = Array.init n (fun _ -> Rng.uniform rng ~lo:(-5.0) ~hi:5.0) in
    let x = L.solve a b in
    let r = L.residual_norm a x b in
    if r > 1e-8 then Alcotest.failf "residual %g too large (n=%d)" r n
  done

let test_matvec () =
  let a = [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  let y = L.matvec a [| 1.0; 1.0 |] in
  feq "y0" 3.0 y.(0);
  feq "y1" 7.0 y.(1)

let qcheck_solve_residual =
  QCheck.Test.make ~name:"solve leaves small residual" ~count:100
    QCheck.(pair small_int (int_range 1 8))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let a =
        Array.init n (fun i ->
            Array.init n (fun j ->
                Rng.uniform rng ~lo:(-3.0) ~hi:3.0 +. if i = j then 12.0 else 0.0))
      in
      let b = Array.init n (fun _ -> Rng.uniform rng ~lo:(-3.0) ~hi:3.0) in
      let x = L.solve a b in
      L.residual_norm a x b < 1e-8)

let () =
  Alcotest.run "linalg"
    [
      ( "solve",
        [
          Alcotest.test_case "identity" `Quick test_identity;
          Alcotest.test_case "known 2x2" `Quick test_known_2x2;
          Alcotest.test_case "pivoting" `Quick test_pivoting_required;
          Alcotest.test_case "singular" `Quick test_singular;
          Alcotest.test_case "inputs preserved" `Quick test_inputs_not_modified;
          Alcotest.test_case "random systems" `Quick test_random_systems;
          Alcotest.test_case "matvec" `Quick test_matvec;
          QCheck_alcotest.to_alcotest qcheck_solve_residual;
        ] );
    ]
