(* Tests for ptanh curve fitting (paper Eq. 2 / Eq. 3). *)

open Fit

let linspace lo hi n =
  Array.init n (fun i -> lo +. ((hi -. lo) *. float_of_int i /. float_of_int (n - 1)))

let eta a b c d = { Ptanh.eta1 = a; eta2 = b; eta3 = c; eta4 = d }

let test_eval () =
  let e = eta 0.5 0.4 0.3 6.0 in
  Alcotest.(check (float 1e-12)) "at center" 0.5 (Ptanh.eval e 0.3);
  Alcotest.(check (float 1e-12)) "inv negates" (-0.5) (Ptanh.eval_inv e 0.3)

let test_eta_array_roundtrip () =
  let e = eta 0.1 0.2 0.3 0.4 in
  Alcotest.(check (array (float 0.0)))
    "roundtrip" [| 0.1; 0.2; 0.3; 0.4 |]
    (Ptanh.eta_to_array (Ptanh.eta_of_array (Ptanh.eta_to_array e)))

let test_eta_of_array_invalid () =
  Alcotest.check_raises "len" (Invalid_argument "Ptanh.eta_of_array: need 4 values")
    (fun () -> ignore (Ptanh.eta_of_array [| 1.0 |]))

let recover_exact e =
  let vin = linspace 0.0 1.0 41 in
  let vout = Array.map (Ptanh.eval e) vin in
  let r = Ptanh.fit ~vin ~vout in
  Alcotest.(check bool)
    (Printf.sprintf "rmse tiny for eta=[%.2f %.2f %.2f %.2f]" e.Ptanh.eta1 e.Ptanh.eta2
       e.Ptanh.eta3 e.Ptanh.eta4)
    true (r.Ptanh.rmse < 1e-6);
  (* the recovered curve must match pointwise even if the parameterization is
     ambiguous (tanh has a sign symmetry) *)
  Array.iteri
    (fun i v ->
      let fitted = Ptanh.eval r.Ptanh.eta v in
      if Float.abs (fitted -. vout.(i)) > 1e-5 then
        Alcotest.failf "pointwise mismatch at %f: %f vs %f" v fitted vout.(i))
    vin

let test_recover_known_curves () =
  List.iter recover_exact
    [
      eta 0.5 0.4 0.3 6.0;
      eta 0.55 0.35 0.5 3.0;
      eta 0.4 0.3 0.7 10.0;
      eta 0.6 (-0.3) 0.4 5.0;
      (* falling curve *)
      eta 0.9 0.05 0.2 2.0;
      (* small amplitude *)
    ]

let test_recover_with_noise () =
  let e = eta 0.5 0.4 0.35 7.0 in
  let rng = Rng.create 5 in
  let vin = linspace 0.0 1.0 41 in
  let vout = Array.map (fun v -> Ptanh.eval e v +. Rng.gaussian rng ~mu:0.0 ~sigma:0.005) vin in
  let r = Ptanh.fit ~vin ~vout in
  Alcotest.(check bool) "rmse near noise floor" true (r.Ptanh.rmse < 0.01);
  Alcotest.(check bool) "eta4 in range" true (Float.abs (r.Ptanh.eta.Ptanh.eta4) < 20.0)

let test_fit_inv_negation () =
  (* Eq. 3: fitting the negated curve recovers eta with flipped eta1/eta2 *)
  let e = eta 0.5 0.4 0.3 6.0 in
  let vin = linspace 0.0 1.0 41 in
  let vout = Array.map (fun v -> -.Ptanh.eval e v) vin in
  let r = Ptanh.fit_inv ~vin ~vout in
  Array.iteri
    (fun i v ->
      let reconstructed = Ptanh.eval_inv r.Ptanh.eta v in
      if Float.abs (reconstructed -. vout.(i)) > 1e-5 then
        Alcotest.failf "inv mismatch at %f" v)
    vin

let test_fit_validations () =
  Alcotest.check_raises "length mismatch" (Invalid_argument "Ptanh.fit: length mismatch")
    (fun () -> ignore (Ptanh.fit ~vin:[| 0.0; 1.0 |] ~vout:[| 0.0 |]));
  Alcotest.check_raises "too few points"
    (Invalid_argument "Ptanh.fit: need at least 5 points") (fun () ->
      ignore (Ptanh.fit ~vin:[| 0.0; 0.5; 1.0 |] ~vout:[| 0.0; 0.5; 1.0 |]))

let test_fit_simulated_circuit () =
  (* integration: the design-space centre circuit fits with a small residual *)
  let omega = [| 255.0; 127.0; 255e3; 127e3; 255e3; 500.0; 40.0 |] in
  let vin, vout = Circuit.Ptanh_circuit.transfer (Circuit.Ptanh_circuit.omega_of_array omega) in
  let r = Ptanh.fit ~vin ~vout in
  Alcotest.(check bool) "rmse < 10 mV" true (r.Ptanh.rmse < 0.01);
  Alcotest.(check bool) "rising fit" true (r.Ptanh.eta.Ptanh.eta2 *. r.Ptanh.eta.Ptanh.eta4 > 0.0)

let qcheck_fit_recovers_function =
  QCheck.Test.make ~name:"fit reproduces arbitrary tanh-like curves" ~count:60
    QCheck.(
      quad (float_range 0.3 0.7) (float_range 0.1 0.45) (float_range 0.1 0.9)
        (float_range 1.0 12.0))
    (fun (a, b, c, d) ->
      let e = eta a b c d in
      let vin = linspace 0.0 1.0 41 in
      let vout = Array.map (Ptanh.eval e) vin in
      let r = Ptanh.fit ~vin ~vout in
      r.Ptanh.rmse < 1e-4)

let () =
  Alcotest.run "fit_ptanh"
    [
      ( "model",
        [
          Alcotest.test_case "eval" `Quick test_eval;
          Alcotest.test_case "eta roundtrip" `Quick test_eta_array_roundtrip;
          Alcotest.test_case "eta invalid" `Quick test_eta_of_array_invalid;
        ] );
      ( "fitting",
        [
          Alcotest.test_case "recover known" `Quick test_recover_known_curves;
          Alcotest.test_case "recover noisy" `Quick test_recover_with_noise;
          Alcotest.test_case "fit_inv" `Quick test_fit_inv_negation;
          Alcotest.test_case "validations" `Quick test_fit_validations;
          Alcotest.test_case "simulated circuit" `Quick test_fit_simulated_circuit;
          QCheck_alcotest.to_alcotest qcheck_fit_recovers_function;
        ] );
    ]
