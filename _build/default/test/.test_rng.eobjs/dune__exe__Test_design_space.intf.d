test/test_design_space.mli:
