test/test_datasets.ml: Alcotest Array Datasets Float Hashtbl List QCheck QCheck_alcotest Rng String Tensor
