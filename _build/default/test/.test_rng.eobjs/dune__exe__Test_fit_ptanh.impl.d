test/test_fit_ptanh.ml: Alcotest Array Circuit Fit Float List Printf Ptanh QCheck QCheck_alcotest Rng
