test/test_lm.mli:
