test/test_lm.ml: Alcotest Array Fit Float Lm Rng
