test/test_autodiff.ml: Alcotest Autodiff Float List Printf QCheck QCheck_alcotest Rng Stdlib Tensor
