test/test_nn.ml: Alcotest Array Autodiff Float List Nn Rng Tensor
