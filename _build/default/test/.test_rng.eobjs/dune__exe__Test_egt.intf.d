test/test_egt.mli:
