test/test_linalg.ml: Alcotest Array Circuit QCheck QCheck_alcotest Rng
