test/test_pnn.mli:
