test/test_mna.ml: Alcotest Array Circuit
