test/test_egt.ml: Alcotest Circuit Float List QCheck QCheck_alcotest Stdlib
