test/test_circuit.ml: Alcotest Array Circuit Float List Printf QCheck QCheck_alcotest Rng String Surrogate
