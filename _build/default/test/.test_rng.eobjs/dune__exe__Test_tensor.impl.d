test/test_tensor.ml: Alcotest Array Float QCheck QCheck_alcotest Rng Tensor
