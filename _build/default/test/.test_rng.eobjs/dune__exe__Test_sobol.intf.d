test/test_sobol.mli:
