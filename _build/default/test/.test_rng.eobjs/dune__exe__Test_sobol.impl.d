test/test_sobol.ml: Alcotest Array Float List Printf QCheck QCheck_alcotest Qmc Rng Stdlib
