test/test_design_space.ml: Alcotest Array QCheck QCheck_alcotest Rng String Surrogate
