test/test_fit_ptanh.mli:
