test/test_scaler.mli:
