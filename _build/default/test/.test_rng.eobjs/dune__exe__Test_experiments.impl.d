test/test_experiments.ml: Alcotest Array Datasets Experiments Filename Float Lazy List Pnn Rng String Surrogate Sys
