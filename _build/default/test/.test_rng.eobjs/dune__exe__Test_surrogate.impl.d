test/test_surrogate.ml: Alcotest Array Autodiff Filename Fit Float Hashtbl Lazy List Printf Rng Surrogate Sys Tensor
