test/test_pnn.ml: Alcotest Array Autodiff Datasets Filename Fit Float Lazy List Pnn Printf QCheck QCheck_alcotest Rng Stdlib String Surrogate Sys Tensor
