test/test_stats.ml: Alcotest Array QCheck QCheck_alcotest Stats Stdlib
