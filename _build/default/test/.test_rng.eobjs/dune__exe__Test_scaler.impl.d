test/test_scaler.ml: Alcotest Array Autodiff Float List QCheck QCheck_alcotest Surrogate Tensor
