(* Tests for the Table-I design space. *)

module Ds = Surrogate.Design_space

let test_dims () =
  Alcotest.(check int) "dim" 7 Ds.dim;
  Alcotest.(check int) "extended" 10 Ds.extended_dim;
  Alcotest.(check int) "learnable" 7 Ds.learnable_dim;
  Alcotest.(check int) "names" 7 (Array.length Ds.names)

let test_bounds_table1 () =
  (* spot-check the paper's Table I values *)
  Alcotest.(check (float 0.0)) "R1 min" 10.0 Ds.omega_lo.(0);
  Alcotest.(check (float 0.0)) "R1 max" 500.0 Ds.omega_hi.(0);
  Alcotest.(check (float 0.0)) "R2 min" 5.0 Ds.omega_lo.(1);
  Alcotest.(check (float 0.0)) "R4 max" 400e3 Ds.omega_hi.(3);
  Alcotest.(check (float 0.0)) "W min" 200.0 Ds.omega_lo.(5);
  Alcotest.(check (float 0.0)) "L max" 70.0 Ds.omega_hi.(6)

let test_assemble_center () =
  let raw = Array.mapi (fun i lo -> (lo +. Ds.learnable_hi.(i)) /. 2.0) Ds.learnable_lo in
  let omega = Ds.assemble raw in
  Alcotest.(check bool) "feasible" true (Ds.contains omega);
  Alcotest.(check (float 1e-9)) "R2 = R1 * k1" (omega.(0) *. raw.(5)) omega.(1)

let test_assemble_clips_r2 () =
  (* R1 max with k1 near 1 drives R2 above its box: must clip to 250 *)
  let raw = [| 500.0; 10e3; 10e3; 200.0; 10.0; 0.98; 0.5 |] in
  let omega = Ds.assemble raw in
  Alcotest.(check (float 0.0)) "R2 clipped" 250.0 omega.(1);
  Alcotest.(check bool) "still feasible" true (Ds.contains omega)

let test_assemble_respects_inequalities () =
  (* R1 at its minimum with tiny k1: R2 would fall below its box; the clip
     must keep R2 >= 5 and still below R1 *)
  let raw = [| 10.0; 10e3; 10e3; 200.0; 10.0; 0.02; 0.02 |] in
  let omega = Ds.assemble raw in
  Alcotest.(check bool) "R2 in box" true (omega.(1) >= 5.0);
  Alcotest.(check bool) "R2 < R1" true (omega.(1) < omega.(0))

let test_assemble_invalid_length () =
  Alcotest.check_raises "len" (Invalid_argument "Design_space.assemble: need 7 raw values")
    (fun () -> ignore (Ds.assemble [| 1.0 |]))

let test_extend () =
  let omega = [| 100.0; 50.0; 200e3; 100e3; 300e3; 400.0; 20.0 |] in
  let e = Ds.extend omega in
  Alcotest.(check int) "length" 10 (Array.length e);
  Alcotest.(check (float 1e-12)) "k1" 0.5 e.(7);
  Alcotest.(check (float 1e-12)) "k2" 0.5 e.(8);
  Alcotest.(check (float 1e-12)) "k3" 20.0 e.(9)

let test_contains () =
  Alcotest.(check bool) "violating inequality" false
    (Ds.contains [| 100.0; 150.0; 200e3; 100e3; 300e3; 400.0; 20.0 |]);
  Alcotest.(check bool) "out of box" false
    (Ds.contains [| 1000.0; 150.0; 200e3; 100e3; 300e3; 400.0; 20.0 |]);
  Alcotest.(check bool) "wrong length" false (Ds.contains [| 1.0 |])

let test_sample_sobol_feasible () =
  let samples = Ds.sample_sobol ~n:500 in
  Alcotest.(check int) "count" 500 (Array.length samples);
  Array.iter
    (fun omega ->
      if not (Ds.contains omega) then
        Alcotest.failf "infeasible sample: [%s]"
          (String.concat "; " (Array.to_list (Array.map string_of_float omega))))
    samples

let test_sample_sobol_spans_space () =
  let samples = Ds.sample_sobol ~n:1000 in
  (* each raw coordinate should cover most of its range *)
  let r1s = Array.map (fun o -> o.(0)) samples in
  Alcotest.(check bool) "R1 covers low" true (Array.exists (fun v -> v < 60.0) r1s);
  Alcotest.(check bool) "R1 covers high" true (Array.exists (fun v -> v > 450.0) r1s)

let test_sample_lhs_feasible () =
  let samples = Ds.sample_lhs (Rng.create 3) ~n:200 in
  Array.iter
    (fun omega ->
      if not (Ds.contains omega) then Alcotest.fail "infeasible LHS sample")
    samples

let test_clip_omega () =
  (* noise pushed values out of the box; clip restores feasibility *)
  let noisy = [| 600.0; 620.0; 5e3; 450e3; 600e3; 900.0; 5.0 |] in
  let clipped = Ds.clip_omega noisy in
  Alcotest.(check bool) "feasible after clip" true (Ds.contains clipped)

let qcheck_assemble_always_feasible =
  QCheck.Test.make ~name:"assemble of any raw point is feasible" ~count:500
    QCheck.(
      list_of_size (QCheck.Gen.return 7) (float_range (-1e6) 1e6))
    (fun raw_list ->
      let omega = Ds.assemble (Array.of_list raw_list) in
      Ds.contains omega)

let qcheck_extend_ratios_below_one =
  QCheck.Test.make ~name:"extend ratios respect inequalities on feasible points"
    ~count:300
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let omega = Ds.sample_lhs (Rng.create seed) ~n:1 in
      let e = Ds.extend omega.(0) in
      e.(7) < 1.0 && e.(8) < 1.0)

let () =
  Alcotest.run "design_space"
    [
      ( "space",
        [
          Alcotest.test_case "dims" `Quick test_dims;
          Alcotest.test_case "table1 bounds" `Quick test_bounds_table1;
          Alcotest.test_case "assemble center" `Quick test_assemble_center;
          Alcotest.test_case "assemble clips R2" `Quick test_assemble_clips_r2;
          Alcotest.test_case "assemble inequalities" `Quick test_assemble_respects_inequalities;
          Alcotest.test_case "assemble invalid" `Quick test_assemble_invalid_length;
          Alcotest.test_case "extend" `Quick test_extend;
          Alcotest.test_case "contains" `Quick test_contains;
          Alcotest.test_case "sobol feasible" `Quick test_sample_sobol_feasible;
          Alcotest.test_case "sobol spans" `Quick test_sample_sobol_spans_space;
          Alcotest.test_case "lhs feasible" `Quick test_sample_lhs_feasible;
          Alcotest.test_case "clip omega" `Quick test_clip_omega;
          QCheck_alcotest.to_alcotest qcheck_assemble_always_feasible;
          QCheck_alcotest.to_alcotest qcheck_extend_ratios_below_one;
        ] );
    ]
