(* Tests for Sobol and Latin-hypercube sampling. *)

module S = Qmc.Sobol

let test_dimension_bounds () =
  Alcotest.check_raises "dim 0"
    (Invalid_argument "Sobol.create: dimension 0 outside 1..10") (fun () ->
      ignore (S.create 0));
  Alcotest.check_raises "dim 11"
    (Invalid_argument "Sobol.create: dimension 11 outside 1..10") (fun () ->
      ignore (S.create 11))

let test_first_points_dim1 () =
  (* Gray-code ordering of the van der Corput sequence (after skipping the
     origin): each block of 2^k consecutive points still forms a (0,k,1)-net *)
  let s = S.create 1 in
  let expected = [ 0.5; 0.75; 0.25; 0.375; 0.875; 0.625; 0.125; 0.1875 ] in
  List.iter
    (fun e ->
      let p = S.next s in
      Alcotest.(check (float 1e-9)) "vdc point" e p.(0))
    expected

let test_points_in_unit_cube () =
  let s = S.create 7 in
  for _ = 1 to 2000 do
    let p = S.next s in
    Array.iter
      (fun v -> if v < 0.0 || v >= 1.0 then Alcotest.failf "out of cube: %f" v)
      p
  done

let test_no_skip_starts_at_origin () =
  let s = S.create 3 ~skip:0 in
  let p = S.next s in
  Alcotest.(check (array (float 0.0))) "origin" [| 0.0; 0.0; 0.0 |] p

let test_deterministic () =
  let a = S.generate (S.create 5) 100 in
  let b = S.generate (S.create 5) 100 in
  Alcotest.(check bool) "same sequence" true (a = b)

let test_distinct_dimensions () =
  (* dimensions must not be identical copies of one another *)
  let s = S.create 10 in
  let pts = S.generate s 64 in
  for d1 = 0 to 9 do
    for d2 = d1 + 1 to 9 do
      let same = ref true in
      Array.iter (fun p -> if p.(d1) <> p.(d2) then same := false) pts;
      if !same then Alcotest.failf "dimensions %d and %d identical" d1 d2
    done
  done

let test_balance_powers_of_two () =
  (* a (0,m,s)-net property consequence: the first 2^k points have exactly
     half below 1/2 in each coordinate *)
  let s = S.create 4 ~skip:0 in
  let pts = S.generate s 64 in
  for d = 0 to 3 do
    let below = Array.fold_left (fun acc p -> if p.(d) < 0.5 then acc + 1 else acc) 0 pts in
    Alcotest.(check int) (Printf.sprintf "dim %d balanced" d) 32 below
  done

let test_uniformity_vs_bins () =
  let s = S.create 2 in
  let pts = S.generate s 1024 in
  let bins = Array.make 16 0 in
  Array.iter
    (fun p ->
      let bx = Stdlib.min 3 (int_of_float (p.(0) *. 4.0)) in
      let by = Stdlib.min 3 (int_of_float (p.(1) *. 4.0)) in
      bins.((bx * 4) + by) <- bins.((bx * 4) + by) + 1)
    pts;
  Array.iteri
    (fun i c ->
      if c < 48 || c > 80 then Alcotest.failf "bin %d count %d far from 64" i c)
    bins

let test_low_discrepancy_beats_random () =
  (* star-discrepancy proxy: max deviation of the empirical CDF over a grid of
     anchored boxes. Sobol should beat a PRNG at the same sample count. *)
  let disc pts =
    let n = float_of_int (Array.length pts) in
    let worst = ref 0.0 in
    for i = 1 to 9 do
      for j = 1 to 9 do
        let x = float_of_int i /. 10.0 and y = float_of_int j /. 10.0 in
        let inside =
          Array.fold_left
            (fun acc p -> if p.(0) < x && p.(1) < y then acc +. 1.0 else acc)
            0.0 pts
        in
        let d = Float.abs ((inside /. n) -. (x *. y)) in
        if d > !worst then worst := d
      done
    done;
    !worst
  in
  let sobol = S.generate (S.create 2) 512 in
  let rng = Rng.create 4 in
  let random = Array.init 512 (fun _ -> [| Rng.float rng; Rng.float rng |]) in
  Alcotest.(check bool) "sobol more uniform" true (disc sobol < disc random)

let test_next_in_box () =
  let s = S.create 3 in
  let lo = [| -1.0; 0.0; 10.0 |] and hi = [| 1.0; 0.5; 20.0 |] in
  for _ = 1 to 100 do
    let p = S.next_in_box s ~lo ~hi in
    Array.iteri
      (fun i v ->
        if v < lo.(i) || v >= hi.(i) then Alcotest.failf "box violated at %d: %f" i v)
      p
  done

let test_lhs_stratification () =
  let rng = Rng.create 11 in
  let pts = Qmc.Lhs.sample rng ~dim:3 ~n:10 in
  (* each axis: exactly one point per decile *)
  for d = 0 to 2 do
    let seen = Array.make 10 false in
    Array.iter
      (fun p ->
        let bin = Stdlib.min 9 (int_of_float (p.(d) *. 10.0)) in
        if seen.(bin) then Alcotest.failf "axis %d bin %d hit twice" d bin;
        seen.(bin) <- true)
      pts;
    Alcotest.(check bool) "all bins" true (Array.for_all (fun b -> b) seen)
  done

let test_lhs_invalid () =
  Alcotest.check_raises "bad dims" (Invalid_argument "Lhs.sample: dim and n must be positive")
    (fun () -> ignore (Qmc.Lhs.sample (Rng.create 1) ~dim:0 ~n:5))

let qcheck_sobol_range =
  QCheck.Test.make ~name:"all points in cube for any dim/skip" ~count:100
    QCheck.(pair (int_range 1 10) (int_range 0 50))
    (fun (dim, skip) ->
      let s = S.create ~skip dim in
      let pts = S.generate s 50 in
      Array.for_all (Array.for_all (fun v -> v >= 0.0 && v < 1.0)) pts)

let () =
  Alcotest.run "sobol"
    [
      ( "sobol",
        [
          Alcotest.test_case "dimension bounds" `Quick test_dimension_bounds;
          Alcotest.test_case "dim1 sequence" `Quick test_first_points_dim1;
          Alcotest.test_case "unit cube" `Quick test_points_in_unit_cube;
          Alcotest.test_case "origin with skip 0" `Quick test_no_skip_starts_at_origin;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "distinct dims" `Quick test_distinct_dimensions;
          Alcotest.test_case "binary balance" `Quick test_balance_powers_of_two;
          Alcotest.test_case "uniform bins" `Quick test_uniformity_vs_bins;
          Alcotest.test_case "beats random" `Quick test_low_discrepancy_beats_random;
          Alcotest.test_case "boxes" `Quick test_next_in_box;
          QCheck_alcotest.to_alcotest qcheck_sobol_range;
        ] );
      ( "lhs",
        [
          Alcotest.test_case "stratification" `Quick test_lhs_stratification;
          Alcotest.test_case "invalid" `Quick test_lhs_invalid;
        ] );
    ]
