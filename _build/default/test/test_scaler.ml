(* Tests for min-max scalers. *)

module Sc = Surrogate.Scaler

let data = [| [| 0.0; 10.0 |]; [| 5.0; 20.0 |]; [| 10.0; 30.0 |] |]

let test_fit_bounds () =
  let s = Sc.fit data in
  Alcotest.(check (array (float 0.0))) "lo" [| 0.0; 10.0 |] (Sc.lo s);
  Alcotest.(check (array (float 0.0))) "hi" [| 10.0; 30.0 |] (Sc.hi s)

let test_fit_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Scaler.fit: empty data") (fun () ->
      ignore (Sc.fit [||]))

let test_fit_zero_range () =
  let s = Sc.fit [| [| 3.0 |]; [| 3.0 |] |] in
  (* degenerate column gets unit range: transform stays finite *)
  let t = Sc.transform s [| 3.0 |] in
  Alcotest.(check bool) "finite" true (Float.is_finite t.(0))

let test_transform_known () =
  let s = Sc.fit data in
  Alcotest.(check (array (float 1e-12))) "mid" [| 0.5; 0.5 |]
    (Sc.transform s [| 5.0; 20.0 |])

let test_roundtrip () =
  let s = Sc.fit data in
  let x = [| 7.3; 12.9 |] in
  let back = Sc.inverse s (Sc.transform s x) in
  Alcotest.(check (array (float 1e-9))) "roundtrip" x back

let test_tensor_matches_scalar_path () =
  let s = Sc.fit data in
  let m = Tensor.of_arrays data in
  let via_tensor = Sc.transform_tensor s m in
  Array.iteri
    (fun r row ->
      let expected = Sc.transform s row in
      Array.iteri
        (fun c e ->
          Alcotest.(check (float 1e-12)) "entry" e (Tensor.get via_tensor r c))
        expected)
    data

let test_inverse_tensor_roundtrip () =
  let s = Sc.fit data in
  let m = Tensor.of_arrays data in
  let back = Sc.inverse_tensor s (Sc.transform_tensor s m) in
  Alcotest.(check bool) "tensor roundtrip" true (Tensor.equal ~eps:1e-9 m back)

let test_ad_matches_tensor () =
  let s = Sc.fit data in
  let m = Tensor.of_arrays data in
  let via_ad = Autodiff.value (Sc.transform_ad s (Autodiff.const m)) in
  Alcotest.(check bool) "ad = tensor" true
    (Tensor.equal ~eps:1e-12 via_ad (Sc.transform_tensor s m));
  let inv_ad = Autodiff.value (Sc.inverse_ad s (Autodiff.const m)) in
  Alcotest.(check bool) "inverse ad = tensor" true
    (Tensor.equal ~eps:1e-12 inv_ad (Sc.inverse_tensor s m))

let test_ad_gradients () =
  (* transform is affine: gradient of sum(transform x) wrt x is 1/range *)
  let s = Sc.fit data in
  let p = Autodiff.param (Tensor.of_array [| 2.0; 15.0 |]) in
  Autodiff.backward (Autodiff.sum (Sc.transform_ad s p));
  let g = Autodiff.grad p in
  Alcotest.(check (float 1e-12)) "1/range col0" 0.1 (Tensor.get g 0 0);
  Alcotest.(check (float 1e-12)) "1/range col1" 0.05 (Tensor.get g 0 1)

let test_serialization_roundtrip () =
  let s = Sc.fit data in
  let s', rest = Sc.of_lines (Sc.to_lines s) in
  Alcotest.(check int) "consumed all" 0 (List.length rest);
  Alcotest.(check (array (float 0.0))) "lo" (Sc.lo s) (Sc.lo s');
  Alcotest.(check (array (float 0.0))) "hi" (Sc.hi s) (Sc.hi s')

let test_of_bounds_validation () =
  Alcotest.check_raises "hi < lo" (Invalid_argument "Scaler.of_bounds: hi < lo") (fun () ->
      ignore (Sc.of_bounds ~lo:[| 1.0 |] ~hi:[| 0.0 |]))

let test_dimension_mismatch () =
  let s = Sc.fit data in
  Alcotest.check_raises "transform dim"
    (Invalid_argument "Scaler.transform: dimension mismatch") (fun () ->
      ignore (Sc.transform s [| 1.0 |]))

let qcheck_roundtrip =
  QCheck.Test.make ~name:"transform/inverse roundtrip" ~count:300
    QCheck.(pair (float_range (-100.0) 100.0) (float_range (-100.0) 100.0))
    (fun (a, b) ->
      let s = Sc.of_bounds ~lo:[| -200.0; -200.0 |] ~hi:[| 200.0; 200.0 |] in
      let back = Sc.inverse s (Sc.transform s [| a; b |]) in
      Float.abs (back.(0) -. a) < 1e-9 && Float.abs (back.(1) -. b) < 1e-9)

let () =
  Alcotest.run "scaler"
    [
      ( "scaler",
        [
          Alcotest.test_case "fit bounds" `Quick test_fit_bounds;
          Alcotest.test_case "fit empty" `Quick test_fit_empty;
          Alcotest.test_case "zero range" `Quick test_fit_zero_range;
          Alcotest.test_case "transform known" `Quick test_transform_known;
          Alcotest.test_case "roundtrip" `Quick test_roundtrip;
          Alcotest.test_case "tensor path" `Quick test_tensor_matches_scalar_path;
          Alcotest.test_case "tensor roundtrip" `Quick test_inverse_tensor_roundtrip;
          Alcotest.test_case "ad path" `Quick test_ad_matches_tensor;
          Alcotest.test_case "ad gradients" `Quick test_ad_gradients;
          Alcotest.test_case "serialization" `Quick test_serialization_roundtrip;
          Alcotest.test_case "of_bounds" `Quick test_of_bounds_validation;
          Alcotest.test_case "dim mismatch" `Quick test_dimension_mismatch;
          QCheck_alcotest.to_alcotest qcheck_roundtrip;
        ] );
    ]
