(* Bespoke nonlinear circuits: what does training actually change?

   Trains two pNNs on the same task — one with the fixed mid-range nonlinear
   circuit, one with learnable circuits — and prints the activation transfer
   curves before and after training, together with the physical component
   values ω that would be printed.  This is the paper's core idea made
   visible: training *designs* the circuit.

   Run with: dune exec examples/bespoke_activation.exe *)

let print_activation label nl =
  let omega = Pnn.Nonlinear.omega_values nl in
  let eta = Pnn.Nonlinear.eta_values nl in
  Printf.printf "%s:\n" label;
  Printf.printf "  omega: R1=%.0f R2=%.0f R3=%.0fk R4=%.0fk R5=%.0fk W=%.0f L=%.0f\n"
    omega.(0) omega.(1) (omega.(2) /. 1e3) (omega.(3) /. 1e3) (omega.(4) /. 1e3)
    omega.(5) omega.(6);
  Printf.printf "  eta:   [%.3f; %.3f; %.3f; %.3f]\n" eta.Fit.Ptanh.eta1
    eta.Fit.Ptanh.eta2 eta.Fit.Ptanh.eta3 eta.Fit.Ptanh.eta4;
  Printf.printf "  curve: ";
  List.iter
    (fun v -> Printf.printf "%.2f->%.2f  " v (Fit.Ptanh.eval eta v))
    [ 0.0; 0.2; 0.4; 0.6; 0.8; 1.0 ];
  print_newline ()

(* Train a few seeds and keep the best validation loss — the paper's model
   selection (§IV-C). *)
let train learnable surrogate split =
  let config =
    Pnn.Config.with_learnable
      { Pnn.Config.default with Pnn.Config.epsilon = 0.05; max_epochs = 600; patience = 150 }
      learnable
  in
  let candidates =
    List.map
      (fun seed ->
        Pnn.Training.train_fresh (Rng.create seed) config surrogate ~n_classes:3 split)
      [ 11; 12; 13 ]
  in
  List.fold_left
    (fun best r ->
      if r.Pnn.Training.val_loss < best.Pnn.Training.val_loss then r else best)
    (List.hd candidates) (List.tl candidates)

let () =
  let surrogate = Surrogate.Pipeline.ensure ~n:2000 ~max_epochs:1500 ~seed:42 () in
  let dataset = Datasets.Bench13.load "seeds" in
  let split = Datasets.Synth.split (Rng.create 3) dataset in
  Printf.printf "task: %s\n\n" dataset.Datasets.Synth.spec.Datasets.Synth.name;
  print_activation "fixed circuit (what every prior-work pNN uses, mid design space)"
    (Pnn.Nonlinear.create surrogate);
  print_newline ();
  let fixed = train false surrogate split in
  let learned = train true surrogate split in
  let accuracy result =
    let eval =
      Pnn.Evaluation.mc_accuracy (Rng.create 99) result.Pnn.Training.network
        ~epsilon:0.05 ~n:100 ~x:split.Datasets.Synth.x_test ~y:split.Datasets.Synth.y_test
    in
    (eval.Pnn.Evaluation.mean_accuracy, eval.Pnn.Evaluation.std_accuracy)
  in
  let f_mean, f_std = accuracy fixed in
  let l_mean, l_std = accuracy learned in
  Printf.printf "fixed-circuit pNN:     accuracy %.3f +/- %.3f under 5%% variation\n"
    f_mean f_std;
  Printf.printf "learnable-circuit pNN: accuracy %.3f +/- %.3f under 5%% variation\n\n"
    l_mean l_std;
  List.iteri
    (fun i layer ->
      print_activation
        (Printf.sprintf "learned activation circuit, layer %d" (i + 1))
        layer.Pnn.Layer.act;
      print_activation
        (Printf.sprintf "learned negative-weight circuit, layer %d" (i + 1))
        layer.Pnn.Layer.neg)
    (Pnn.Network.layers learned.Pnn.Training.network)
