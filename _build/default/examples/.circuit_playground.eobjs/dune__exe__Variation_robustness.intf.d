examples/variation_robustness.mli:
