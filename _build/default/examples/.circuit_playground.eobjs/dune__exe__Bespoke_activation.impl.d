examples/bespoke_activation.ml: Array Datasets Fit List Pnn Printf Rng Surrogate
