examples/quickstart.ml: Array Datasets Fit List Nn Pnn Printf Rng Surrogate
