examples/design_cost.ml: Circuit Datasets List Pnn Printf Rng Surrogate
