examples/design_cost.mli:
