examples/variation_robustness.ml: Datasets List Pnn Printf Rng Surrogate
