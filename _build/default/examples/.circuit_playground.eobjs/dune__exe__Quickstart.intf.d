examples/quickstart.mli:
