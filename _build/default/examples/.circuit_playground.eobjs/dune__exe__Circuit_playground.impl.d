examples/circuit_playground.ml: Array Circuit List Printf String
