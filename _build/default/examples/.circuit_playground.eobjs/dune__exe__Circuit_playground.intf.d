examples/circuit_playground.mli:
