examples/bespoke_activation.mli:
