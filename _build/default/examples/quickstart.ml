(* Quickstart: design a printed neuromorphic circuit for a small
   classification task.

   1. Obtain the surrogate nonlinear-circuit model (cached pipeline run).
   2. Load a benchmark dataset and split it 60/20/20.
   3. Train a pNN with a learnable nonlinear circuit, variation-aware (5 %).
   4. Evaluate accuracy under 100 Monte-Carlo variation draws.

   Run with: dune exec examples/quickstart.exe *)

let () =
  let seed = 1 in
  let surrogate = Surrogate.Pipeline.ensure ~n:2000 ~max_epochs:1500 ~seed:42 () in
  let dataset = Datasets.Bench13.load "iris" in
  let rng = Rng.create seed in
  let split = Datasets.Synth.split rng dataset in
  let config =
    { Pnn.Config.default with epsilon = 0.05; n_mc_train = 5; max_epochs = 400; patience = 100 }
  in
  Printf.printf "training pNN on %s (%d features, %d classes, %d samples)...\n%!"
    dataset.Datasets.Synth.spec.Datasets.Synth.name
    dataset.Datasets.Synth.spec.Datasets.Synth.features
    dataset.Datasets.Synth.spec.Datasets.Synth.classes
    (Array.length dataset.Datasets.Synth.y);
  let result =
    Pnn.Training.train_fresh rng config surrogate
      ~n_classes:dataset.Datasets.Synth.spec.Datasets.Synth.classes split
  in
  Printf.printf "best validation loss: %.4f (epoch %d of %d)\n"
    result.Pnn.Training.val_loss result.Pnn.Training.history.Nn.Train.best_epoch
    (Array.length result.Pnn.Training.history.Nn.Train.train_losses);
  let eval =
    Pnn.Evaluation.mc_accuracy (Rng.create 99) result.Pnn.Training.network
      ~epsilon:config.Pnn.Config.epsilon ~n:100 ~x:split.Datasets.Synth.x_test
      ~y:split.Datasets.Synth.y_test
  in
  Printf.printf "test accuracy under 5%% variation: %.3f +/- %.3f (100 MC draws)\n"
    eval.Pnn.Evaluation.mean_accuracy eval.Pnn.Evaluation.std_accuracy;
  (* show the bespoke activation the training chose *)
  let layer = List.hd (Pnn.Network.layers result.Pnn.Training.network) in
  let eta = Pnn.Nonlinear.eta_values layer.Pnn.Layer.act in
  Printf.printf "learned layer-1 activation: eta = [%.3f; %.3f; %.3f; %.3f]\n"
    eta.Fit.Ptanh.eta1 eta.Fit.Ptanh.eta2 eta.Fit.Ptanh.eta3 eta.Fit.Ptanh.eta4;
  let omega = Pnn.Nonlinear.omega_values layer.Pnn.Layer.act in
  Printf.printf "printable omega: R1=%.0f R2=%.0f R3=%.0f R4=%.0f R5=%.0f W=%.0f L=%.0f\n"
    omega.(0) omega.(1) omega.(2) omega.(3) omega.(4) omega.(5) omega.(6);
  (* the full printable design, and a check of the learned circuits against
     direct circuit simulation *)
  print_newline ();
  print_string (Pnn.Export.design_report result.Pnn.Training.network);
  print_newline ();
  print_string
    (Pnn.Export.render_checks (Pnn.Export.verify_activations result.Pnn.Training.network))
