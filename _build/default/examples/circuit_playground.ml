(* Builds the parametric nonlinear subcircuit for a handful of design points
   and prints their simulated DC transfer curves — the raw material of the
   paper's Fig. 2.  Run with: dune exec examples/circuit_playground.exe *)

let configs =
  (* (label, omega as [r1; r2; r3; r4; r5; w_um; l_um]) *)
  [
    ("mid", [| 200.0; 80.0; 200e3; 80e3; 250e3; 500.0; 30.0 |]);
    ("steep", [| 50.0; 24.0; 50e3; 24e3; 450e3; 780.0; 12.0 |]);
    ("shift", [| 450.0; 60.0; 450e3; 60e3; 150e3; 400.0; 40.0 |]);
    ("weak", [| 300.0; 150.0; 300e3; 150e3; 20e3; 250.0; 60.0 |]);
  ]

let () =
  let points = 21 in
  let curves =
    List.map
      (fun (label, arr) ->
        let omega = Circuit.Ptanh_circuit.omega_of_array arr in
        let _, vout = Circuit.Ptanh_circuit.transfer ~points omega in
        (label, vout))
      configs
  in
  let vin = Circuit.Dc_sweep.linspace 0.0 Circuit.Ptanh_circuit.vdd points in
  Printf.printf "# ptanh transfer curves (Vin -> Vout), one column per config\n";
  Printf.printf "vin %s\n" (String.concat " " (List.map fst curves));
  Array.iteri
    (fun i v ->
      Printf.printf "%.3f" v;
      List.iter (fun (_, vout) -> Printf.printf " %.4f" vout.(i)) curves;
      print_newline ())
    vin
