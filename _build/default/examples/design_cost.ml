(* The full life of a printed design: train it, print it, cost it, age it.

   1. Train a variation-aware pNN with learnable nonlinear circuits.
   2. Export the printable design (crossbar conductances + circuit ω).
   3. Estimate static power, device count and area.
   4. Measure the nonlinear stage's inference latency with the transient
      engine (printed EGTs + nF parasitics -> millisecond scale).
   5. Plot (numerically) the accuracy over the device lifetime, with and
      without aging-aware training.

   Run with: dune exec examples/design_cost.exe *)

let () =
  let surrogate = Surrogate.Pipeline.ensure ~n:2000 ~max_epochs:1500 ~seed:42 () in
  let data = Datasets.Bench13.load "acute-inflammation" in
  let spec = data.Datasets.Synth.spec in
  let split = Datasets.Synth.split (Rng.create 5) data in
  let tdata = Pnn.Training.of_split ~n_classes:spec.Datasets.Synth.classes split in
  let config =
    { Pnn.Config.default with Pnn.Config.epsilon = 0.05; max_epochs = 500; patience = 150 }
  in
  let rng = Rng.create 3 in
  let net =
    Pnn.Network.create rng config surrogate ~inputs:spec.Datasets.Synth.features
      ~outputs:spec.Datasets.Synth.classes
  in
  let result = Pnn.Training.fit rng net tdata in
  let accuracy =
    Pnn.Evaluation.mc_accuracy (Rng.create 7) result.Pnn.Training.network ~epsilon:0.05
      ~n:50 ~x:split.Datasets.Synth.x_test ~y:split.Datasets.Synth.y_test
  in
  Printf.printf "task %s: accuracy %.3f +/- %.3f under 5%% variation\n\n"
    spec.Datasets.Synth.name accuracy.Pnn.Evaluation.mean_accuracy
    accuracy.Pnn.Evaluation.std_accuracy;

  (* 2. printable design *)
  print_string (Pnn.Export.design_report result.Pnn.Training.network);

  (* 3. power / devices / area *)
  print_newline ();
  let cost =
    Pnn.Power.estimate result.Pnn.Training.network ~x_sample:split.Datasets.Synth.x_train
  in
  print_string (Pnn.Power.render cost);

  (* 4. latency of each activation circuit's nonlinear stage *)
  print_newline ();
  Printf.printf "Nonlinear-stage latency (step response, nF parasitics):\n";
  List.iteri
    (fun i layer ->
      let omega =
        Circuit.Ptanh_circuit.omega_of_array
          (Pnn.Nonlinear.omega_values layer.Pnn.Layer.act)
      in
      match Circuit.Ptanh_circuit.latency omega with
      | Some t -> Printf.printf "  layer %d activation: settles in %.2f ms\n" (i + 1) (t *. 1e3)
      | None -> Printf.printf "  layer %d activation: did not settle in the window\n" (i + 1))
    (Pnn.Network.layers result.Pnn.Training.network);

  (* 5. aging curve *)
  print_newline ();
  let model = Pnn.Aging.default_model in
  let curve =
    Pnn.Aging.accuracy_over_lifetime (Rng.create 11) model result.Pnn.Training.network
      ~t_fracs:[ 0.0; 0.5; 1.0 ] ~n:40 ~x:split.Datasets.Synth.x_test
      ~y:split.Datasets.Synth.y_test
  in
  Printf.printf "Accuracy over lifetime (variation-aware-trained design, drift up to %.0f%%):\n"
    (model.Pnn.Aging.kappa_max *. 100.0);
  List.iter
    (fun (t, e) ->
      Printf.printf "  t=%.2f: %.3f +/- %.3f\n" t e.Pnn.Evaluation.mean_accuracy
        e.Pnn.Evaluation.std_accuracy)
    curve
