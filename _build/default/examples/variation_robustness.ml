(* Robustness sweep: accuracy vs printing variation for all four training
   setups of the paper's ablation (Table III), on one dataset.

   For epsilon in {0, 2.5, 5, 7.5, 10, 15 %}, evaluates each trained pNN with
   60 Monte-Carlo draws and prints mean ± std — the data one would plot as an
   accuracy-vs-variation robustness curve.

   Run with: dune exec examples/variation_robustness.exe *)

let arms =
  [
    ("fixed/nominal (baseline)", false, 0.0);
    ("fixed/va@10%", false, 0.10);
    ("learnable/nominal", true, 0.0);
    ("learnable/va@10%", true, 0.10);
  ]

let () =
  let surrogate = Surrogate.Pipeline.ensure ~n:2000 ~max_epochs:1500 ~seed:42 () in
  let dataset = Datasets.Bench13.load "vertebral-2c" in
  let split = Datasets.Synth.split (Rng.create 5) dataset in
  Printf.printf "task: %s\n\n" dataset.Datasets.Synth.spec.Datasets.Synth.name;
  let trained =
    List.map
      (fun (label, learnable, train_eps) ->
        let config =
          Pnn.Config.with_learnable
            {
              Pnn.Config.default with
              Pnn.Config.epsilon = train_eps;
              max_epochs = 600;
              patience = 150;
            }
            learnable
        in
        let r = Pnn.Training.train_fresh (Rng.create 21) config surrogate ~n_classes:2 split in
        (label, r.Pnn.Training.network))
      arms
  in
  let epsilons = [ 0.0; 0.025; 0.05; 0.075; 0.10; 0.15 ] in
  Printf.printf "%-26s" "test epsilon";
  List.iter (fun e -> Printf.printf "  %8.1f%%" (e *. 100.0)) epsilons;
  print_newline ();
  List.iter
    (fun (label, net) ->
      Printf.printf "%-26s" label;
      List.iter
        (fun eps ->
          let r =
            Pnn.Evaluation.mc_accuracy (Rng.create 77) net ~epsilon:eps ~n:60
              ~x:split.Datasets.Synth.x_test ~y:split.Datasets.Synth.y_test
          in
          Printf.printf "  %5.3f+-%.2f" r.Pnn.Evaluation.mean_accuracy
            r.Pnn.Evaluation.std_accuracy)
        epsilons;
      print_newline ())
    trained
