(* Benchmark and reproduction harness.

   Part 1 — Bechamel micro-benchmarks: one Test.make per computational pillar
   under the paper's tables and figures (crossbar forward, surrogate
   inference, Newton DC solve, DC sweep, Sobol sampling, LM fitting, a
   variation-aware training epoch).

   Part 2 — table/figure harnesses: regenerates Table I, Fig. 2, Fig. 4,
   Table II and Table III (reduced scale by default).

   Environment knobs:
     REPRO_SCALE=quick|committed|paper   (default quick)
     REPRO_DATASETS=iris,seeds,...       (default: all 13)
     REPRO_SKIP_TABLES=1                 (micro-benches only)
*)

open Bechamel
open Toolkit

(* {1 Shared fixtures} *)

let scale_name =
  match Sys.getenv_opt "REPRO_SCALE" with Some s -> s | None -> "quick"

let scale = Experiments.Setup.of_name scale_name
let surrogate = lazy (Experiments.Setup.surrogate_of_scale scale)

let iris = lazy (Datasets.Bench13.load "iris")

let iris_fixture =
  lazy
    (let data = Lazy.force iris in
     let rng = Rng.create 1 in
     let split = Datasets.Synth.split rng data in
     let tdata = Pnn.Training.of_split ~n_classes:3 split in
     let config = { scale.Experiments.Setup.config with Pnn.Config.epsilon = 0.05 } in
     let net =
       Pnn.Network.create (Rng.create 2) config (Lazy.force surrogate) ~inputs:4
         ~outputs:3
     in
     (config, net, tdata))

let mid_omega = [| 255.0; 127.0; 255e3; 127e3; 255e3; 500.0; 40.0 |]

(* {1 Micro-benchmarks} *)

let bench_crossbar_forward =
  (* Table II pillar: one full pNN forward pass on the iris training batch *)
  Test.make ~name:"pnn_forward_iris_batch"
    (Staged.stage (fun () ->
         let config, net, tdata = Lazy.force iris_fixture in
         ignore config;
         let shapes = Pnn.Network.theta_shapes net in
         let noise = Pnn.Noise.none ~theta_shapes:shapes in
         ignore (Pnn.Network.logits net ~noise tdata.Pnn.Training.x_train)))

let bench_va_epoch =
  (* Table II pillar: one variation-aware training epoch (loss + backward) *)
  Test.make ~name:"pnn_va_epoch_iris"
    (Staged.stage (fun () ->
         let config, net, tdata = Lazy.force iris_fixture in
         let shapes = Pnn.Network.theta_shapes net in
         let noises =
           Pnn.Noise.draw_many (Rng.create 3) ~epsilon:0.05 ~theta_shapes:shapes
             ~n:config.Pnn.Config.n_mc_train
         in
         let loss =
           Pnn.Network.mc_loss net ~noises ~x:tdata.Pnn.Training.x_train
             ~labels:tdata.Pnn.Training.y_train
         in
         Autodiff.backward loss))

let bench_surrogate_inference =
  (* Fig. 4/5 pillar: surrogate eta prediction for one omega *)
  Test.make ~name:"surrogate_eval"
    (Staged.stage (fun () -> ignore (Surrogate.Model.eval (Lazy.force surrogate) mid_omega)))

let bench_newton_solve =
  (* Fig. 2 pillar: one nonlinear DC operating point *)
  let netlist, _out = Circuit.Ptanh_circuit.build (Circuit.Ptanh_circuit.omega_of_array mid_omega) in
  Test.make ~name:"mna_newton_solve"
    (Staged.stage (fun () ->
         Circuit.Netlist.set_source netlist "vin" 0.5;
         ignore (Circuit.Mna.solve Circuit.Egt.default netlist)))

let bench_dc_sweep =
  (* Fig. 2 pillar: a full 41-point transfer curve *)
  Test.make ~name:"dc_sweep_41pts"
    (Staged.stage (fun () ->
         ignore
           (Circuit.Ptanh_circuit.transfer
              (Circuit.Ptanh_circuit.omega_of_array mid_omega))))

let bench_sobol =
  (* Fig. 3 pillar: design-space sampling *)
  let sobol = Qmc.Sobol.create 7 in
  Test.make ~name:"sobol_next_dim7" (Staged.stage (fun () -> ignore (Qmc.Sobol.next sobol)))

let bench_lm_fit =
  (* Fig. 4 pillar: one LM ptanh fit of a simulated curve *)
  let vin, vout =
    Circuit.Ptanh_circuit.transfer (Circuit.Ptanh_circuit.omega_of_array mid_omega)
  in
  Test.make ~name:"lm_ptanh_fit" (Staged.stage (fun () -> ignore (Fit.Ptanh.fit ~vin ~vout)))

let bench_mc_eval =
  (* Table II pillar: one Monte-Carlo test evaluation draw *)
  Test.make ~name:"mc_eval_draw_iris"
    (Staged.stage (fun () ->
         let _, net, tdata = Lazy.force iris_fixture in
         let shapes = Pnn.Network.theta_shapes net in
         let noise = Pnn.Noise.draw (Rng.create 7) ~epsilon:0.1 ~theta_shapes:shapes in
         ignore (Pnn.Network.predict net ~noise tdata.Pnn.Training.x_val)))

let bench_matmul =
  (* substrate pillar *)
  let rng = Rng.create 5 in
  let a = Tensor.uniform rng 128 64 ~lo:(-1.0) ~hi:1.0 in
  let b = Tensor.uniform rng 64 32 ~lo:(-1.0) ~hi:1.0 in
  Test.make ~name:"tensor_matmul_128x64x32"
    (Staged.stage (fun () -> ignore (Tensor.matmul a b)))

let micro_benchmarks () =
  let tests =
    Test.make_grouped ~name:"printed-neuromorphic"
      [
        bench_matmul;
        bench_sobol;
        bench_newton_solve;
        bench_dc_sweep;
        bench_lm_fit;
        bench_surrogate_inference;
        bench_crossbar_forward;
        bench_mc_eval;
        bench_va_epoch;
      ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instance = Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:2000 ~stabilize:true ~quota:(Time.second 0.5)
      ~kde:(Some 1000) ()
  in
  let raw = Benchmark.all cfg [ instance ] tests in
  let results = Analyze.all ols instance raw in
  Printf.printf "== micro-benchmarks (monotonic clock) ==\n";
  let rows = ref [] in
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ ns ] -> rows := (name, ns) :: !rows
      | Some _ | None -> ())
    results;
  List.iter
    (fun (name, ns) ->
      let pretty =
        if ns > 1e9 then Printf.sprintf "%8.2f s " (ns /. 1e9)
        else if ns > 1e6 then Printf.sprintf "%8.2f ms" (ns /. 1e6)
        else if ns > 1e3 then Printf.sprintf "%8.2f us" (ns /. 1e3)
        else Printf.sprintf "%8.0f ns" ns
      in
      Printf.printf "  %-45s %s/run\n" name pretty)
    (List.sort compare !rows);
  print_newline ()

(* {1 Table/figure harnesses} *)

let section title = Printf.printf "\n===== %s =====\n%!" title

let run_tables () =
  section "Table I (design space)";
  print_string (Experiments.Figures.render_table1 ());
  section "Fig. 2 (characteristic curves)";
  print_string (Experiments.Figures.render_fig2 (Experiments.Figures.fig2_curves ()));
  section "Fig. 4 left (fit example)";
  print_string (Experiments.Figures.render_fig4_left (Experiments.Figures.fig4_left ()));
  section "Fig. 4 right (surrogate parity)";
  print_string
    (Experiments.Figures.render_fig4_right (Experiments.Figures.fig4_right ~seed:7 ()));
  section
    (Printf.sprintf "Table II (scale=%s; see EXPERIMENTS.md for the committed run)"
       scale_name);
  let datasets =
    match Sys.getenv_opt "REPRO_DATASETS" with
    | None -> Datasets.Bench13.load_all ()
    | Some names -> List.map Datasets.Bench13.load (String.split_on_char ',' names)
  in
  let progress msg = Printf.eprintf "  [running] %s\n%!" msg in
  let table2 = Experiments.Table2.run ~progress ~datasets scale (Lazy.force surrogate) in
  print_string (Experiments.Table2.render table2);
  section "Table III (ablation summary)";
  print_string (Experiments.Table3.render (Experiments.Table3.of_table2 scale table2))

let () =
  micro_benchmarks ();
  match Sys.getenv_opt "REPRO_SKIP_TABLES" with
  | Some "1" -> ()
  | Some _ | None -> run_tables ()
