# Runs a sanitizer-built test executable: tools/run_sanitized.sh
# <flags-sexp> <exe> [args...].  The flags sexp is the probe output the
# executable was built with; when it is the empty set the binary carries no
# instrumentation (unsupported toolchain or wrong profile), so the run is a
# recorded skip rather than a false green.
#
# detect_leaks=0: the OCaml runtime intentionally leaves its heap to the OS
# at exit, which ASan's leak checker would report as noise.  UBSan halts on
# the first violation with a stack trace.
set -eu

flags_file="$1"
shift

if ! grep -q fsanitize "$flags_file" 2>/dev/null; then
  echo "sanitize: no ASan/UBSan toolchain support detected; skipping: $*"
  exit 0
fi

ASAN_OPTIONS="detect_leaks=0:abort_on_error=1${ASAN_OPTIONS:+:$ASAN_OPTIONS}"
UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1${UBSAN_OPTIONS:+:$UBSAN_OPTIONS}"
export ASAN_OPTIONS UBSAN_OPTIONS
exec "$@"
