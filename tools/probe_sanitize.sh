# Emits a dune ordered-set-language sexp of sanitizer flags.
#
#   probe_sanitize.sh <c|link> <profile> <output-file>
#
# Outside the `sanitize` profile, or when the C toolchain cannot link an
# ASan+UBSan binary, the output is the empty set `()` — the build stays
# byte-identical to a plain build and tools/run_sanitized.sh turns the
# @sanitize alias into a graceful skip.  With a supporting toolchain the
# stubs are compiled with -fsanitize=address,undefined (no recovery: the
# first violation aborts the test) and every test executable links the
# runtime in via -ccopt.
set -eu

mode="$1"
profile="$2"
out="$3"

SAN="-fsanitize=address,undefined -fno-sanitize-recover=all"

supported() {
  tmp=$(mktemp -d)
  trap 'rm -rf "$tmp"' RETURN 2>/dev/null || true
  echo 'int main(void){return 0;}' > "$tmp/probe.c"
  if ${CC:-cc} $SAN "$tmp/probe.c" -o "$tmp/probe.out" >/dev/null 2>&1 \
     && "$tmp/probe.out" >/dev/null 2>&1; then
    rm -rf "$tmp"
    return 0
  fi
  rm -rf "$tmp"
  return 1
}

if [ "$profile" != "sanitize" ] || ! supported; then
  echo "()" > "$out"
  exit 0
fi

case "$mode" in
  c)
    echo "($SAN -fno-omit-frame-pointer -g)" > "$out"
    ;;
  link)
    printf '(' > "$out"
    for f in $SAN; do
      printf -- '-ccopt %s ' "$f" >> "$out"
    done
    printf ')\n' >> "$out"
    ;;
  *)
    echo "probe_sanitize.sh: unknown mode $mode" >&2
    exit 2
    ;;
esac
