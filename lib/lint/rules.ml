(* The pnnlint rule set.

   Every rule is a syntactic check over the untyped AST.  The checks are
   deliberately conservative approximations of the semantic invariants they
   guard (documented per rule below); a site that is actually fine is
   silenced with an explicit [(* pnnlint:allow Rn reason *)] so the waiver
   is visible and counted, never implicit. *)

type finding = { rule : string; path : string; line : int; msg : string }

type rule_info = { id : string; title : string; detail : string }

let all_rules =
  [
    {
      id = "R1";
      title = "no Rng stream aliasing";
      detail =
        "Rng.copy duplicates generator state, so two consumers replay the \
         same draws (the fit_aging_aware bug fixed in PR 3).  Derive \
         sub-streams with Rng.split instead.  Tests that exercise copy \
         semantics themselves suppress with a reason.";
    };
    {
      id = "R2";
      title = "no wall clock or global Random near results";
      detail =
        "Sys.time, Unix.gettimeofday, Unix.time and Stdlib.Random are \
         banned in every module reachable from cache-key or \
         result-producing roots: a timestamp or ambient-random draw in \
         that closure silently breaks bit-identical reproduction.  The \
         serving stack is in the closure too: a response payload is a \
         result.  Scheduling clocks (batch linger, select timeouts) and \
         latency observability are legitimate — suppress those sites with \
         a reason saying the time never reaches a response.  Timing for \
         progress logs belongs in bin/ or bench/ shells outside the \
         closure.";
    };
    {
      id = "R3";
      title = "no order-dependent Hashtbl traversal";
      detail =
        "Hashtbl.iter/fold visit entries in hash-bucket order, which \
         depends on insertion history and hashing; any traversal whose \
         result can escape (lists, tables, serialized state, cache keys) \
         must walk a sorted or insertion-ordered view.  The rule flags \
         every traversal; provably order-free ones carry a suppression.";
    };
    {
      id = "R4";
      title = "unsafe accesses carry a SAFETY justification";
      detail =
        "Array.unsafe_get/unsafe_set, Bytes/String.unsafe_* and \
         Bigarray.Array1.unsafe_get/unsafe_set (including the monomorphic \
         Array1 shadow in the bigarray kernel backend) skip bounds checks; \
         each site must have a (* SAFETY: ... *) comment within 3 lines \
         stating why every index is in range.  The same applies to every \
         external C-stub declaration in lib/tensor (non-% primitives): the \
         stub crosses the FFI with raw buffers, so the declaration must \
         document its bounds/ABI contract.  PNN_CHECKED=1 additionally \
         swaps lib/tensor kernels to bounds-checked loops.";
    };
    {
      id = "R5";
      title = "no polymorphic compare at float-carrying types";
      detail =
        "Polymorphic compare on floats orders NaN and signed zeros \
         structurally, diverging from IEEE comparison and from \
         Float.compare's total order; on tensors/records it silently \
         compares mutable buffers.  The check flags bare compare / \
         Stdlib.compare anywhere and =/<>/==/!= with a float-literal \
         operand; use Int.compare, Float.compare, String.compare or \
         Tensor.equal, or suppress where IEEE +/-0.0 equality is the \
         point.";
    };
    {
      id = "R6";
      title = "no backend-internal storage access outside lib/tensor";
      detail =
        "Kernels_ref, Kernels_ba, Kernels_c and Tensor_backend are the \
         tensor library's internal kernel layer (the tensor library is \
         unwrapped, so they are globally visible); touching them from \
         outside lib/tensor bypasses the dispatch layer, breaking backend \
         selection, mixed-storage fallback and checked-mode swapping.  Go \
         through the Tensor API; tooling that genuinely needs raw buffers \
         suppresses with a reason.";
    };
    {
      id = "R7";
      title = "domain-shared mutable state is mediated or confined";
      detail =
        "Any module that mentions Domain, Parallel, Coordinator or Thread \
         seeds a concurrency closure; in every module that closure can \
         reach, module-level mutable state — ref / Hashtbl.create / \
         Buffer.create bound at structure level, and record types with \
         mutable fields but no Mutex.t field — is a data-race candidate \
         under OCaml 5 domains.  Mediate with Atomic.t (or a Mutex held \
         around every access) or suppress with a confinement proof naming \
         the single domain that owns the state.  Unix.fork is flagged \
         everywhere outside the allowed units (default: Coordinator, whose \
         pre-domain latch guarantees no domain has ever been spawned): \
         forking a multi-domain runtime duplicates locks and domains in an \
         undefined state.";
    };
    {
      id = "R8";
      title = "C stubs match their externals and the IEEE-strict contract";
      detail =
        "Every external in a registered stub pair is cross-checked against \
         its CAMLprim definitions: the two-name byte/native convention \
         (byte twin named <native>_byte), native parameter/return layout \
         matching [@untagged] (intnat) / [@unboxed] (double) / boxed \
         (value) declarations, byte twins taking all-value parameters (or \
         the argv/argn form above arity 5), no OCaml heap interaction \
         (caml_alloc*/caml_copy_*/CAMLparam/CAMLlocal/CAMLreturn) reachable \
         from a [@@noalloc] native body, and no orphan CAMLprim without a \
         binding.  The float contract bans fma(), libm calls outside the \
         vetted allowlist (tanh exp log sqrt fabs), every #pragma, and \
         __attribute__((optimize ...)) escapes; the stub dune must pin \
         -fno-fast-math and -ffp-contract=off, otherwise every a*b+c \
         multiply-add site is reported as a contraction risk.  Suppress in \
         C with /* pnnlint:allow R8 reason */.";
    };
  ]

type ctx = {
  file : Source.file;
  r2_applies : bool;  (* file is in the dependency closure of the R2 roots *)
  r7_applies : bool;  (* file is in the dependency closure of domain users *)
  fork_allowed : string list;  (* units that may call Unix.fork *)
}

(* {2 Helpers} *)

let line_of e = e.Parsetree.pexp_loc.Location.loc_start.Lexing.pos_lnum

let rec last = function [] -> None | [ x ] -> Some x | _ :: tl -> last tl

let path_of lid = Longident.flatten lid

(* strip a leading Stdlib so Stdlib.Hashtbl.iter and Hashtbl.iter match the
   same patterns *)
let norm_path p = match p with "Stdlib" :: rest when rest <> [] -> rest | p -> p

(* {2 The rules, as per-expression checks} *)

let check_ident ctx lid line =
  let p = norm_path (path_of lid) in
  let f rule msg = Some { rule; path = ctx.file.Source.path; line; msg } in
  match p with
  | [ "Rng"; "copy" ] | [ "Tensor"; "Rng"; "copy" ] ->
      f "R1" "Rng.copy aliases the stream; use Rng.split"
  | "Random" :: _ ->
      if ctx.r2_applies then
        f "R2" "global Random in a result-reachable module"
      else None
  | [ "Sys"; "time" ] | [ "Unix"; "gettimeofday" ] | [ "Unix"; "time" ] ->
      if ctx.r2_applies then
        f "R2"
          (String.concat "." p ^ " (wall clock) in a result-reachable module")
      else None
  | [ "Hashtbl"; "iter" ] | [ "Hashtbl"; "fold" ] ->
      f "R3"
        (String.concat "." p
        ^ " traverses in nondeterministic hash order; walk a sorted or \
           insertion-ordered view")
  | [ "compare" ] ->
      f "R5"
        "polymorphic compare; use Int.compare / Float.compare / \
         String.compare or a typed comparator"
  | ("Kernels_ref" | "Kernels_ba" | "Kernels_c" | "Tensor_backend") :: _
    when Deps.find_substring ctx.file.Source.path "lib/tensor" = None ->
      f "R6"
        (String.concat "." p
        ^ " is backend-internal storage; go through the Tensor dispatch API")
  | [ "Unix"; "fork" ]
    when not (List.mem (Deps.unit_name ctx.file.Source.path) ctx.fork_allowed)
    ->
      f "R7"
        (Printf.sprintf
           "Unix.fork outside the pre-domain latch (allowed unit(s): %s); \
            forking a runtime that may have spawned domains duplicates \
            locks in an undefined state"
           (String.concat ", " ctx.fork_allowed))
  | _ -> (
      (* R4 candidates: any qualified unsafe_* access *)
      match (p, last p) with
      | _ :: _ :: _, Some l
        when String.length l > 7 && String.sub l 0 7 = "unsafe_" -> (
          match p with
          | ("Array" | "Bytes" | "String" | "Char" | "Bigarray" | "Array1")
            :: _ ->
              f "R4" (String.concat "." p ^ " without a SAFETY justification")
          | _ -> None)
      | _ -> None)

let is_float_literal (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_constant (Pconst_float _) -> true
  | Pexp_apply
      ( { pexp_desc = Pexp_ident { txt = Longident.Lident "~-."; _ }; _ },
        [ (_, { pexp_desc = Pexp_constant (Pconst_float _); _ }) ] ) ->
      true
  | _ -> false

let check_apply ctx (fn : Parsetree.expression) args line =
  match fn.pexp_desc with
  | Pexp_ident { txt = Longident.Lident (("=" | "<>" | "==" | "!=") as op); _ }
    -> (
      match args with
      | [ (_, a); (_, b) ] when is_float_literal a || is_float_literal b ->
          Some
            {
              rule = "R5";
              path = ctx.file.Source.path;
              line;
              msg =
                Printf.sprintf
                  "polymorphic (%s) against a float literal; use \
                   Float.compare / Float.equal (or suppress where IEEE \
                   +/-0.0 / NaN semantics are intended)"
                  op;
            }
      | _ -> None)
  | _ -> None

(* {2 R7: module-level mutable state in the domain closure}

   Two structure-level checks, both gated on [ctx.r7_applies] (the file is
   reachable from a module that mentions Domain/Parallel/Coordinator/Thread):

   - R7a: a structure-level [let] whose right-hand side *evaluates* a
     mutable-state constructor ([ref], [Hashtbl.create], [Buffer.create])
     creates state shared by every domain that can see the module.  The scan
     does not descend into [fun]/[function]/[lazy] bodies — state created
     per call (or per [Domain.DLS] key init) is not module-level.
   - R7b: a record type with [mutable] fields and no [Mutex.t] field is an
     invitation to unmediated cross-domain writes.  A [Mutex.t] field is
     taken as evidence the record mediates itself; [Atomic.t] fields are
     never [mutable], so a fully atomic record passes trivially.

   [Atomic.make], [Mutex.create] and [Condition.create] are mediation
   primitives, not findings. *)

let mutable_creator p =
  match p with
  | [ "ref" ] -> Some "ref"
  | [ "Hashtbl"; "create" ] -> Some "Hashtbl.create"
  | [ "Buffer"; "create" ] -> Some "Buffer.create"
  | _ -> None

let scan_module_level_state ctx add (vb : Parsetree.value_binding) =
  let open Ast_iterator in
  let it =
    {
      default_iterator with
      expr =
        (fun it e ->
          match e.Parsetree.pexp_desc with
          | Pexp_fun _ | Pexp_function _ | Pexp_lazy _ -> ()
          | Pexp_apply ({ pexp_desc = Pexp_ident l; _ }, _) ->
              (match mutable_creator (norm_path (path_of l.Location.txt)) with
              | Some what ->
                  add
                    (Some
                       {
                         rule = "R7";
                         path = ctx.file.Source.path;
                         line = line_of e;
                         msg =
                           Printf.sprintf
                             "module-level %s in the domain-reachable \
                              closure; every domain that sees this module \
                              shares it — use Atomic.t / a Mutex, or \
                              suppress with a confinement proof"
                             what;
                       })
              | None -> ());
              default_iterator.expr it e
          | _ -> default_iterator.expr it e);
    }
  in
  it.expr it vb.Parsetree.pvb_expr

let check_mutable_type ctx (td : Parsetree.type_declaration) =
  match td.ptype_kind with
  | Ptype_record labels ->
      let mutables =
        List.filter
          (fun (l : Parsetree.label_declaration) ->
            l.pld_mutable = Asttypes.Mutable)
          labels
      in
      let mediated =
        List.exists
          (fun (l : Parsetree.label_declaration) ->
            match l.pld_type.Parsetree.ptyp_desc with
            | Ptyp_constr (c, _) -> (
                match norm_path (path_of c.Location.txt) with
                | [ "Mutex"; "t" ] -> true
                | _ -> false)
            | _ -> false)
          labels
      in
      (match mutables with
      | first :: _ when not mediated ->
          Some
            {
              rule = "R7";
              path = ctx.file.Source.path;
              line = first.pld_loc.Location.loc_start.Lexing.pos_lnum;
              msg =
                Printf.sprintf
                  "type %s has %d mutable field(s) and no Mutex.t field in \
                   the domain-reachable closure; make the fields Atomic.t, \
                   add a mutex, or suppress with a confinement proof"
                  td.ptype_name.Asttypes.txt (List.length mutables);
            }
      | _ -> None)
  | _ -> None

(* {2 R4 SAFETY-comment coverage}

   An unsafe site is justified when a comment containing "SAFETY:" overlaps
   the window of [safety_window] lines ending at the site — i.e. the comment
   sits on the same line or at most 3 lines above (multi-line comments count
   from their last line). *)

let safety_window = 3

(* Like suppressions, a justification must *start* with its marker so prose
   that merely mentions "SAFETY:" doesn't silence anything. *)
let is_safety_comment (c : Source.comment) =
  let t = String.trim c.text in
  String.length t >= 7 && String.sub t 0 7 = "SAFETY:"

let has_safety_comment (file : Source.file) line =
  List.exists
    (fun (c : Source.comment) ->
      c.end_line >= line - safety_window
      && c.start_line <= line
      && is_safety_comment c)
    file.Source.comments

(* R4 also covers FFI boundaries: an [external] whose primitive is a C stub
   (any name not starting with '%') hands raw buffers across the FFI with no
   bounds checking at all, so the declaration itself is an unsafe site and
   needs the same SAFETY justification.  Confined to lib/tensor — the only
   place stubs are allowed to live (R6 keeps callers out). *)
let check_primitive ctx (vd : Parsetree.value_description) line =
  let is_c_stub =
    match vd.pval_prim with
    | name :: _ -> String.length name > 0 && name.[0] <> '%'
    | [] -> false
  in
  if is_c_stub && Deps.find_substring ctx.file.Source.path "lib/tensor" <> None
  then
    Some
      {
        rule = "R4";
        path = ctx.file.Source.path;
        line;
        msg =
          Printf.sprintf
            "external %s is a C stub crossing the FFI without a SAFETY \
             justification; document its buffer/ABI contract"
            vd.pval_name.Asttypes.txt;
      }
  else None

(* {2 Driver} *)

let run ctx =
  let findings = ref [] in
  let add = function None -> () | Some f -> findings := f :: !findings in
  let open Ast_iterator in
  let it =
    {
      default_iterator with
      expr =
        (fun it e ->
          (match e.Parsetree.pexp_desc with
          | Pexp_ident l -> add (check_ident ctx l.Location.txt (line_of e))
          | Pexp_apply (fn, args) ->
              add (check_apply ctx fn args (line_of e))
          | _ -> ());
          default_iterator.expr it e);
      structure_item =
        (fun it si ->
          (match si.Parsetree.pstr_desc with
          | Pstr_primitive vd ->
              add
                (check_primitive ctx vd
                   si.Parsetree.pstr_loc.Location.loc_start.Lexing.pos_lnum)
          | Pstr_value (_, vbs) when ctx.r7_applies ->
              List.iter (scan_module_level_state ctx add) vbs
          | Pstr_type (_, tds) when ctx.r7_applies ->
              List.iter (fun td -> add (check_mutable_type ctx td)) tds
          | _ -> ());
          default_iterator.structure_item it si);
      signature_item =
        (fun it si ->
          (match si.Parsetree.psig_desc with
          | Psig_value vd when vd.pval_prim <> [] ->
              add
                (check_primitive ctx vd
                   si.Parsetree.psig_loc.Location.loc_start.Lexing.pos_lnum)
          | _ -> ());
          default_iterator.signature_item it si);
    }
  in
  it.structure it ctx.file.Source.structure;
  it.signature it ctx.file.Source.signature;
  let findings =
    (* R4 candidates covered by a SAFETY comment are satisfied, not findings *)
    List.filter
      (fun f -> not (f.rule = "R4" && has_safety_comment ctx.file f.line))
      !findings
  in
  List.sort
    (fun a b ->
      match Int.compare a.line b.line with
      | 0 -> String.compare a.rule b.rule
      | c -> c)
    findings

let safety_comments (file : Source.file) =
  List.filter is_safety_comment file.Source.comments
