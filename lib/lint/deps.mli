(** Compilation-unit dependency graph for pnnlint's reachability analysis.

    Rule R2 (no wall clock / global Random) applies to every module in the
    transitive dependency closure of the result-producing roots.  The graph is
    built from the untyped AST: each capitalized path root a file mentions is
    resolved against the scanned units and against wrapped dune libraries
    (whose wrapper module, e.g. [Pnn], stands for every unit in the library
    directory).  Resolution over-approximates — an unresolvable or ambiguous
    name simply widens the closure, which errs toward checking more code. *)

val find_substring : string -> string -> int option
(** [find_substring text needle] is the index of the first occurrence. *)

type lib = { dir : string; name : string; wrapped : bool }

val scan_dune_file : string -> lib option
(** Extract [(name x)] and wrappedness from a dune file, if it declares a
    library. *)

val unit_name : string -> string
(** [unit_name "lib/tensor/tensor.ml"] is ["Tensor"]. *)

val refs_of_file : Source.file -> Set.Make(String).t
(** Capitalized path roots referenced anywhere in the file (expressions,
    types, patterns, opens, module expressions). *)

type graph

val build_graph : libs:lib list -> Source.file list -> graph

val referencing_units : graph -> names:string list -> string list
(** Unit names of every scanned [.ml] file that references any of the given
    module names.  Rule R7 seeds its domain closure with these: a file that
    mentions [Domain] or [Parallel] spawns (or is) concurrent code, so
    everything it can reach is shared-state territory. *)

val closure : graph -> roots:string list -> Set.Make(String).t
(** Paths of every [.ml] file reachable from the given unit / wrapper names,
    roots included. *)
