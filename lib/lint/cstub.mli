(** C-stub cross-checker — the multi-language half of rule R8.

    Analyzes a stub pair: the C file defining [CAMLprim] stubs (tokenized
    with enough preprocessing to expand the stub-generating macros) and the
    OCaml file declaring the matching [external]s, plus the dune file whose
    [foreign_stubs] flags pin IEEE-strict compilation.

    Checks: byte/native twin naming, native arity and
    [@untagged]/[@unboxed]/boxed parameter layout, byte-twin calling
    convention (all-[value], or [(value *argv, int argn)] above arity 5),
    no OCaml-heap interaction reachable from a [@@noalloc] native body,
    no orphan [CAMLprim]; and the float contract — no [fma()], no libm
    outside the allowlist (tanh exp log sqrt fabs), no [#pragma], no
    optimize/fast-math [__attribute__], dune flags present (multiply-add
    sites are reported when they are not). *)

val analyze :
  c_path:string ->
  c_file:string ->
  ml:Source.file ->
  dune_path:string ->
  dune_file:string ->
  unit ->
  Rules.finding list * Source.comment list
(** [analyze ~c_path ~c_file ~ml ~dune_path ~dune_file ()] returns R8
    findings plus the C file's comments, so the engine can run its normal
    [pnnlint:allow] suppression pass over C-side sites.  [c_path] /
    [dune_path] are the display paths findings are reported under;
    [c_file] / [dune_file] are the paths actually read. *)
