(** The pnnlint rule set: syntactic checks over the untyped AST.

    - R1 — no [Rng.copy] stream aliasing; derive sub-streams with
      [Rng.split].
    - R2 — no wall clock ([Sys.time], [Unix.gettimeofday], [Unix.time]) or
      global [Random] in modules reachable from cache-key / result-producing
      roots.
    - R3 — no [Hashtbl.iter]/[Hashtbl.fold]: hash-order traversal must be
      replaced by a sorted or insertion-ordered view (or suppressed with a
      reason when the order provably cannot escape).
    - R4 — every qualified [unsafe_*] access carries a [(* SAFETY: ... *)]
      justification within {!safety_window} lines.
    - R5 — no polymorphic comparison at float-carrying types: bare
      [compare] anywhere, and [=]/[<>]/[==]/[!=] against float literals.
    - R6 — no backend-internal storage access outside [lib/tensor].
    - R7 — module-level mutable state ([ref]/[Hashtbl.create]/
      [Buffer.create] at structure level, record types with [mutable]
      fields and no [Mutex.t] field) in the dependency closure of
      domain-spawning modules must be Atomic/Mutex-mediated or carry a
      confinement proof; [Unix.fork] only in the allowed units.
    - R8 — C-stub pairs match their externals and the IEEE-strict float
      contract (checked by {!Cstub}, reported under this rule id).

    All checks are conservative approximations; intentional exceptions are
    silenced with counted [(* pnnlint:allow Rn reason *)] comments handled
    by {!Engine}. *)

type finding = { rule : string; path : string; line : int; msg : string }

type rule_info = { id : string; title : string; detail : string }

val all_rules : rule_info list

type ctx = {
  file : Source.file;
  r2_applies : bool;
      (** the file is in the dependency closure of the R2 roots *)
  r7_applies : bool;
      (** the file is in the dependency closure of domain-using modules *)
  fork_allowed : string list;
      (** compilation units that may call [Unix.fork] *)
}

val run : ctx -> finding list
(** All rule findings for one file, sorted by line.  R4 candidates covered
    by a SAFETY comment are already filtered out. *)

val safety_window : int
(** A SAFETY comment justifies unsafe sites on its own lines and up to this
    many lines below it. *)

val is_safety_comment : Source.comment -> bool

val safety_comments : Source.file -> Source.comment list
