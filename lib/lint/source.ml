(* Source loading for pnnlint: parse .ml/.mli files with compiler-libs and
   extract comments (with line spans) from the raw text.

   The parser gives us a Parsetree without comments, so suppressions
   ([(* pnnlint:allow ... *)]) and justifications ([(* SAFETY: ... *)]) are
   recovered by a small hand-rolled scanner over the bytes.  The scanner
   understands nested comments, string literals (plain and {tag|quoted|tag}),
   and character literals, which is enough to never misread real OCaml. *)

type comment = { text : string; start_line : int; end_line : int }

type kind = Ml | Mli

type file = {
  path : string;
  kind : kind;
  structure : Parsetree.structure;  (* empty for .mli or on parse error *)
  signature : Parsetree.signature;  (* empty for .ml or on parse error *)
  comments : comment list;
  parse_error : (int * string) option;  (* line, message *)
}

let read_all path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let b = really_input_string ic n in
  close_in ic;
  b

(* {2 Comment scanner} *)

let scan_comments text =
  let n = String.length text in
  let comments = ref [] in
  let line = ref 1 in
  let i = ref 0 in
  let peek k = if !i + k < n then text.[!i + k] else '\000' in
  let bump_line c = if c = '\n' then incr line in
  let advance () =
    bump_line text.[!i];
    incr i
  in
  (* skip a string literal body starting after the opening quote *)
  let skip_string () =
    let fin = ref false in
    while (not !fin) && !i < n do
      (match text.[!i] with
      | '\\' when !i + 1 < n ->
          bump_line text.[!i];
          incr i (* skip the escaped char below *)
      | '"' -> fin := true
      | _ -> ());
      if !i < n then advance ()
    done
  in
  let skip_quoted_string () =
    (* at '{' of {tag|...|tag}; returns false if it is not a quoted string *)
    let j = ref (!i + 1) in
    while
      !j < n && (text.[!j] = '_' || (text.[!j] >= 'a' && text.[!j] <= 'z'))
    do
      incr j
    done;
    if !j < n && text.[!j] = '|' then begin
      let tag = String.sub text (!i + 1) (!j - !i - 1) in
      let close = "|" ^ tag ^ "}" in
      let m = String.length close in
      while !i < n
            && not (!i + m <= n && String.sub text !i m = close)
      do
        advance ()
      done;
      for _ = 1 to m do
        if !i < n then advance ()
      done;
      true
    end
    else false
  in
  while !i < n do
    match text.[!i] with
    | '(' when peek 1 = '*' ->
        (* comment: record span and text, handling nesting and strings *)
        let start_line = !line in
        let buf = Buffer.create 64 in
        advance ();
        advance ();
        let depth = ref 1 in
        while !depth > 0 && !i < n do
          if text.[!i] = '(' && peek 1 = '*' then begin
            incr depth;
            Buffer.add_string buf "(*";
            advance ();
            advance ()
          end
          else if text.[!i] = '*' && peek 1 = ')' then begin
            decr depth;
            if !depth > 0 then Buffer.add_string buf "*)";
            advance ();
            advance ()
          end
          else if text.[!i] = '"' then begin
            let s0 = !i in
            advance ();
            skip_string ();
            Buffer.add_string buf (String.sub text s0 (Stdlib.min !i n - s0))
          end
          else begin
            Buffer.add_char buf text.[!i];
            advance ()
          end
        done;
        comments :=
          { text = Buffer.contents buf; start_line; end_line = !line }
          :: !comments
    | '"' ->
        advance ();
        skip_string ()
    | '{' ->
        if not (skip_quoted_string ()) then advance ()
    | '\'' ->
        (* char literal vs type variable: a literal is 'c', '\..' or '\xNN' *)
        if peek 1 = '\\' then begin
          advance ();
          advance ();
          (* skip escape body up to the closing quote *)
          while !i < n && text.[!i] <> '\'' do
            advance ()
          done;
          if !i < n then advance ()
        end
        else if peek 2 = '\'' && peek 1 <> '\000' then begin
          advance ();
          advance ();
          advance ()
        end
        else advance ()
    | _ -> advance ()
  done;
  List.rev !comments

(* {2 Parsing} *)

let with_lexbuf path text f =
  let lexbuf = Lexing.from_string text in
  Lexing.set_filename lexbuf path;
  f lexbuf

let error_info path = function
  | Syntaxerr.Error e ->
      let loc = Syntaxerr.location_of_error e in
      Some (loc.Location.loc_start.Lexing.pos_lnum, "syntax error")
  | Lexer.Error (_, loc) ->
      Some (loc.Location.loc_start.Lexing.pos_lnum, "lexer error")
  | Sys_error m -> Some (0, m)
  | exn -> Some (0, "cannot parse " ^ path ^ ": " ^ Printexc.to_string exn)

let load path =
  let text = read_all path in
  let kind = if Filename.check_suffix path ".mli" then Mli else Ml in
  let comments = scan_comments text in
  let structure, signature, parse_error =
    match kind with
    | Ml -> (
        try (with_lexbuf path text Parse.implementation, [], None)
        with exn -> ([], [], error_info path exn))
    | Mli -> (
        try ([], with_lexbuf path text Parse.interface, None)
        with exn -> ([], [], error_info path exn))
  in
  { path; kind; structure; signature; comments; parse_error }

(* Process-level parse cache.  The engine asks for the same file once per
   run, but a run consults each AST from several passes (rules, R2/R7
   reachability, R8 stub pairing) and test harnesses run the engine over the
   same fixture tree many times; one parse per path per process keeps the
   whole-tree lint well under its latency budget.  Keyed by path only: the
   tool's lifetime is one scan of a static tree, so invalidation is not a
   concern (clear_cache exists for long-lived embedders). *)

let cache : (string, file) Hashtbl.t = Hashtbl.create 256

let clear_cache () = Hashtbl.reset cache

let load_cached path =
  match Hashtbl.find_opt cache path with
  | Some f -> f
  | None ->
      let f = load path in
      Hashtbl.add cache path f;
      f
