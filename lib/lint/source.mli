(** Parsing and comment extraction for pnnlint.

    Files are parsed with compiler-libs ([Parse.implementation] /
    [Parse.interface]); comments — which the parser drops — are recovered by
    a dedicated scanner so that rule suppressions and [(* SAFETY: ... *)]
    justifications keep their line spans. *)

type comment = {
  text : string;  (** comment body, without the outer [(*]/[*)] *)
  start_line : int;
  end_line : int;
}

type kind = Ml | Mli

type file = {
  path : string;
  kind : kind;
  structure : Parsetree.structure;  (** empty for .mli or on parse error *)
  signature : Parsetree.signature;  (** empty for .ml or on parse error *)
  comments : comment list;
  parse_error : (int * string) option;  (** line, message *)
}

val load : string -> file
(** Read and parse one source file.  Parse failures are reported through
    [parse_error] rather than raised: an unparseable file must fail the lint
    gate with a diagnostic, not crash the tool. *)

val load_cached : string -> file
(** Like {!load}, memoized by path for the life of the process: every pass
    of a run (rules, reachability closures, stub pairing) and every engine
    run in a test harness shares one parse per file. *)

val clear_cache : unit -> unit
(** Drop the {!load_cached} memo table (for long-lived embedders that
    rescan a changing tree). *)

val scan_comments : string -> comment list
(** Exposed for tests: extract every comment span from raw source text. *)

val read_all : string -> string
(** Read a whole file as bytes. *)
