(** pnnlint driver: scan a source tree, run every rule, apply suppressions.

    The gate contract: {!run} exits through {!report}; a report with a
    non-empty [findings] list must fail the build.  Suppressed findings and
    SAFETY justifications are carried alongside so `lint_tool allow-report`
    can show every waiver in force. *)

type config = {
  scan_dirs : string list;  (** relative to the root *)
  exclude : string list;  (** path substrings to skip, e.g. fixture dirs *)
  r2_roots : string list;  (** units whose dependency closure R2 covers *)
  r7_seeds : string list;
      (** module names whose referencers seed the R7 domain closure *)
  fork_allowed : string list;  (** units that may call [Unix.fork] (R7) *)
  cstub_pairs : (string * string * string) list;
      (** R8 stub pairs — C file, OCaml externals file, dune file — given
          relative to the scan root *)
}

val default_config : config
(** Scans [lib], [bin], [test], [bench]; excludes [lint_fixtures]; R2 roots
    are the cache-key and result-producing units (Cache, Serialize,
    Checkpoint, Evaluation, Training, the experiment tables); R7 seeds are
    Domain/Parallel/Coordinator/Thread with only Coordinator allowed to
    fork; the registered stub pair is the Kernels_c backend. *)

type suppression = {
  sup_path : string;
  sup_line : int;
  rules : string list;
  reason : string;
  first_covered : int;
  last_covered : int;
}

type report = {
  findings : Rules.finding list;  (** unsuppressed: these fail the gate *)
  suppressed : (Rules.finding * suppression) list;
  suppressions : suppression list;
  safety : (string * int * string) list;
      (** SAFETY comments: path, line, text *)
  files_scanned : int;
}

val run : ?config:config -> root:string -> unit -> report

val render_finding : Rules.finding -> string
(** ["path:line: [Rn] message"]. *)

val render_report : report -> string

val render_allow_report : report -> string
(** Every suppression in force (with how many findings each absorbs) and
    every SAFETY justification. *)

val render_rules : unit -> string

val render_json : report -> string
(** The whole report as one line of JSON with a fixed key order
    (byte-stable, golden-testable): files scanned, findings, suppressed
    findings, suppressions in force, SAFETY count. *)

val render_stats : report -> string
(** Per-rule posture table: findings / suppressed / allow comments for
    R1..Rn plus S1 and P0, with totals. *)

val render_stats_json : report -> string
(** {!render_stats} as one line of JSON. *)
