(* Compilation-unit dependency graph for the reachability half of rule R2.

   The determinism contract ("no wall clock, no global Random") must hold in
   every module that cache keys or experiment results can observe — i.e. in
   the transitive dependency closure of the result-producing roots.  We build
   that closure from the untyped AST: every capitalized path root a file
   mentions is a candidate unit reference, resolved against (a) the scanned
   units themselves and (b) wrapped dune libraries, whose wrapper name (e.g.
   [Pnn], [Experiments]) stands for every unit in the library directory. *)

module SS = Set.Make (String)

type lib = { dir : string; name : string; wrapped : bool }

let find_substring text needle =
  let m = String.length needle and n = String.length text in
  let rec at i =
    if i + m > n then None
    else if String.sub text i m = needle then Some i
    else at (i + 1)
  in
  at 0

(* Minimal dune-file scan: we only need [(name x)] and whether
   [(wrapped false)] appears.  A real s-expression parser would be overkill
   for the two fields this tool reads. *)
let scan_dune_file path =
  try
    let text = Source.read_all path in
    let name =
      match find_substring text "(name" with
      | None -> None
      | Some i ->
          let n = String.length text in
          let j = ref (i + 5) in
          while !j < n && (text.[!j] = ' ' || text.[!j] = '\n' || text.[!j] = '\t') do
            incr j
          done;
          let k = ref !j in
          while
            !k < n
            && (match text.[!k] with
               | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true
               | _ -> false)
          do
            incr k
          done;
          if !k > !j then Some (String.sub text !j (!k - !j)) else None
    in
    match name with
    | None -> None
    | Some name ->
        let wrapped = find_substring text "(wrapped false)" = None in
        Some { dir = Filename.dirname path; name; wrapped }
  with Sys_error _ -> None

let unit_name path =
  String.capitalize_ascii
    (Filename.remove_extension (Filename.basename path))

(* {2 Reference collection} *)

let lid_root lid =
  match Longident.flatten lid with root :: _ -> Some root | [] -> None

let refs_of_file (f : Source.file) =
  let refs = ref SS.empty in
  let add lid =
    match lid_root lid with
    | Some r when String.length r > 0 && r.[0] >= 'A' && r.[0] <= 'Z' ->
        refs := SS.add r !refs
    | _ -> ()
  in
  let open Ast_iterator in
  let it =
    {
      default_iterator with
      expr =
        (fun it e ->
          (match e.Parsetree.pexp_desc with
          | Pexp_ident l | Pexp_new l -> add l.Location.txt
          | Pexp_construct (l, _) -> add l.Location.txt
          | Pexp_field (_, l) | Pexp_setfield (_, l, _) -> add l.Location.txt
          | Pexp_record (fields, _) ->
              List.iter (fun (l, _) -> add l.Location.txt) fields
          | _ -> ());
          default_iterator.expr it e);
      typ =
        (fun it t ->
          (match t.Parsetree.ptyp_desc with
          | Ptyp_constr (l, _) | Ptyp_class (l, _) -> add l.Location.txt
          | _ -> ());
          default_iterator.typ it t);
      pat =
        (fun it p ->
          (match p.Parsetree.ppat_desc with
          | Ppat_construct (l, _) | Ppat_type l -> add l.Location.txt
          | Ppat_record (fields, _) ->
              List.iter (fun (l, _) -> add l.Location.txt) fields
          | _ -> ());
          default_iterator.pat it p);
      module_expr =
        (fun it m ->
          (match m.Parsetree.pmod_desc with
          | Pmod_ident l -> add l.Location.txt
          | _ -> ());
          default_iterator.module_expr it m);
      open_description =
        (fun it o ->
          add o.Parsetree.popen_expr.Location.txt;
          default_iterator.open_description it o);
      module_type =
        (fun it m ->
          (match m.Parsetree.pmty_desc with
          | Pmty_ident l | Pmty_alias l -> add l.Location.txt
          | _ -> ());
          default_iterator.module_type it m);
    }
  in
  it.structure it f.structure;
  it.signature it f.signature;
  !refs

(* {2 Closure} *)

type graph = {
  resolve : string -> string list;  (* unit or wrapper name -> .ml paths *)
  file_refs : (string * SS.t) list;  (* .ml path -> referenced roots *)
}

let build_graph ~libs (files : Source.file list) =
  let ml_files = List.filter (fun f -> f.Source.kind = Source.Ml) files in
  let unit_map = Hashtbl.create 64 in
  List.iter
    (fun f ->
      let u = unit_name f.Source.path in
      let prev = try Hashtbl.find unit_map u with Not_found -> [] in
      Hashtbl.replace unit_map u (f.Source.path :: prev))
    ml_files;
  let lib_map = Hashtbl.create 16 in
  List.iter
    (fun l ->
      if l.wrapped then begin
        let members =
          List.filter_map
            (fun f ->
              if Filename.dirname f.Source.path = l.dir then
                Some f.Source.path
              else None)
            ml_files
        in
        let u = String.capitalize_ascii l.name in
        let prev = try Hashtbl.find lib_map u with Not_found -> [] in
        Hashtbl.replace lib_map u (members @ prev)
      end)
    libs;
  let resolve name =
    let a = try Hashtbl.find unit_map name with Not_found -> [] in
    let b = try Hashtbl.find lib_map name with Not_found -> [] in
    a @ b
  in
  let file_refs =
    List.map (fun f -> (f.Source.path, refs_of_file f)) ml_files
  in
  { resolve; file_refs }

let referencing_units graph ~names =
  let nameset = SS.of_list names in
  graph.file_refs
  |> List.filter (fun (_, refs) -> not (SS.disjoint refs nameset))
  |> List.map (fun (path, _) -> unit_name path)
  |> List.sort_uniq String.compare

let closure graph ~roots =
  let refs_of path =
    match List.assoc_opt path graph.file_refs with
    | Some r -> r
    | None -> SS.empty
  in
  let seen = ref SS.empty in
  let rec visit path =
    if not (SS.mem path !seen) then begin
      seen := SS.add path !seen;
      SS.iter
        (fun r -> List.iter visit (graph.resolve r))
        (refs_of path)
    end
  in
  List.iter (fun root -> List.iter visit (graph.resolve root)) roots;
  !seen
