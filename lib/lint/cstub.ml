(* C-stub cross-checker: the multi-language half of rule R8.

   pnnlint's other rules see one OCaml file at a time; the FFI contract
   lives in *pairs* — an OCaml externals file, the C stub file its
   primitives name, and the dune file whose [foreign_stubs] flags pin the
   float semantics.  This module tokenizes the C side (with just enough
   preprocessing to expand the stub-generating function macros, including
   [##] pasting), extracts every function definition, and cross-checks:

   - ABI: every two-name external resolves to a native CAMLprim and a
     [<native>_byte] twin; native parameter/return layout matches the
     [@untagged]/[@unboxed]/boxed declaration; byte twins take all-[value]
     parameters (or the [(value *argv, int argn)] form above arity 5);
     [@@noalloc] native bodies — transitively through local helpers — never
     touch the OCaml heap; no CAMLprim is left orphaned.
   - Float contract: no [fma()], no libm call outside the vetted allowlist,
     no [#pragma], no [__attribute__] optimize/fast-math escape; and the
     dune stanza must carry -fno-fast-math and -ffp-contract=off — when it
     does not, every multiply-add line is reported as a contraction risk.

   Findings are suppressible from the C side with
   [/* pnnlint:allow R8 reason */] comments (same grammar and coverage
   window as OCaml suppressions); the comment list is returned so the
   engine can run its ordinary suppression pass over them. *)

type token = { t : string; line : int }

type directive = { d_text : string; d_line : int }

(* {2 Tokenizer}

   Comments are collected with line spans (they carry suppressions);
   preprocessor directives are collected whole (logical lines, with
   backslash continuations joined) and not tokenized in place. *)

let is_id_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_id_char c = is_id_start c || (c >= '0' && c <= '9')

let is_digit c = c >= '0' && c <= '9'

type lexed = {
  tokens : token list;
  comments : Source.comment list;
  directives : directive list;
}

let tokenize text =
  let n = String.length text in
  let tokens = ref [] and comments = ref [] and directives = ref [] in
  let line = ref 1 in
  let i = ref 0 in
  let at_line_start = ref true in
  let peek k = if !i + k < n then text.[!i + k] else '\000' in
  let advance () =
    if text.[!i] = '\n' then begin
      incr line;
      at_line_start := true
    end;
    incr i
  in
  let emit t l =
    tokens := { t; line = l } :: !tokens;
    at_line_start := false
  in
  while !i < n do
    let c = text.[!i] in
    if c = '/' && peek 1 = '*' then begin
      let start_line = !line in
      let buf = Buffer.create 32 in
      advance ();
      advance ();
      let fin = ref false in
      while (not !fin) && !i < n do
        if text.[!i] = '*' && peek 1 = '/' then begin
          fin := true;
          advance ();
          advance ()
        end
        else begin
          Buffer.add_char buf text.[!i];
          advance ()
        end
      done;
      comments :=
        {
          Source.text = Buffer.contents buf;
          start_line;
          end_line = !line;
        }
        :: !comments
    end
    else if c = '/' && peek 1 = '/' then begin
      let start_line = !line in
      let buf = Buffer.create 32 in
      advance ();
      advance ();
      while !i < n && text.[!i] <> '\n' do
        Buffer.add_char buf text.[!i];
        advance ()
      done;
      comments :=
        {
          Source.text = Buffer.contents buf;
          start_line;
          end_line = start_line;
        }
        :: !comments
    end
    else if c = '#' && !at_line_start then begin
      (* preprocessor directive: one logical line, continuations joined *)
      let start_line = !line in
      let buf = Buffer.create 64 in
      let fin = ref false in
      while (not !fin) && !i < n do
        if text.[!i] = '\\' && peek 1 = '\n' then begin
          Buffer.add_char buf ' ';
          advance ();
          advance ()
        end
        else if text.[!i] = '\n' then begin
          fin := true;
          advance ()
        end
        else if text.[!i] = '/' && peek 1 = '*' then begin
          (* comment inside a directive (macro bodies have them) *)
          advance ();
          advance ();
          let cfin = ref false in
          while (not !cfin) && !i < n do
            if text.[!i] = '*' && peek 1 = '/' then begin
              cfin := true;
              advance ();
              advance ()
            end
            else advance ()
          done;
          Buffer.add_char buf ' '
        end
        else begin
          Buffer.add_char buf text.[!i];
          advance ()
        end
      done;
      directives := { d_text = Buffer.contents buf; d_line = start_line } :: !directives
    end
    else if c = '"' then begin
      advance ();
      let fin = ref false in
      while (not !fin) && !i < n do
        (match text.[!i] with
        | '\\' when !i + 1 < n -> advance ()
        | '"' -> fin := true
        | _ -> ());
        if !i < n then advance ()
      done
    end
    else if c = '\'' then begin
      advance ();
      let fin = ref false in
      while (not !fin) && !i < n do
        (match text.[!i] with
        | '\\' when !i + 1 < n -> advance ()
        | '\'' -> fin := true
        | _ -> ());
        if !i < n then advance ()
      done
    end
    else if is_id_start c then begin
      let l = !line in
      let j = ref !i in
      while !j < n && is_id_char text.[!j] do
        incr j
      done;
      emit (String.sub text !i (!j - !i)) l;
      while !i < !j do
        advance ()
      done
    end
    else if is_digit c then begin
      let l = !line in
      let j = ref !i in
      while
        !j < n
        && (is_id_char text.[!j]
           || text.[!j] = '.'
           || ((text.[!j] = '+' || text.[!j] = '-')
              && !j > 0
              && (text.[!j - 1] = 'e' || text.[!j - 1] = 'E')))
      do
        incr j
      done;
      emit (String.sub text !i (!j - !i)) l;
      while !i < !j do
        advance ()
      done
    end
    else if c = '#' && peek 1 = '#' then begin
      emit "##" !line;
      advance ();
      advance ()
    end
    else if c = ' ' || c = '\t' || c = '\n' || c = '\r' then advance ()
    else begin
      emit (String.make 1 c) !line;
      advance ()
    end
  done;
  {
    tokens = List.rev !tokens;
    comments = List.rev !comments;
    directives = List.rev !directives;
  }

(* {2 Macro expansion}

   Only what the stub files need: [#define NAME(a, b) body] function macros
   (with [##] pasting) and object-like [#define NAME body].  Bodies are
   re-tokenized from the directive text; expanded tokens take the line of
   the invocation, so findings inside generated stubs point at the
   generator call. *)

type macro = { params : string list option; body : token list }

let has_prefix s p =
  String.length s >= String.length p && String.sub s 0 (String.length p) = p

let parse_define d =
  let t = String.trim d.d_text in
  if not (has_prefix t "#") then None
  else
    let t1 = String.trim (String.sub t 1 (String.length t - 1)) in
    if not (has_prefix t1 "define") then None
    else
      let rest = String.trim (String.sub t1 6 (String.length t1 - 6)) in
      let lx = tokenize rest in
      match lx.tokens with
      | { t = name; _ } :: tl when is_id_start name.[0] ->
          (* function-like iff '(' immediately follows the name in the text *)
          let funlike =
            has_prefix rest (name ^ "(")
          in
          if funlike then begin
            let rec take_params acc = function
              | { t = ")"; _ } :: tl -> (List.rev acc, tl)
              | { t = ","; _ } :: tl -> take_params acc tl
              | { t = p; _ } :: tl -> take_params (p :: acc) tl
              | [] -> (List.rev acc, [])
            in
            match tl with
            | { t = "("; _ } :: tl ->
                let params, body = take_params [] tl in
                Some (name, { params = Some params; body })
            | _ -> None
          end
          else Some (name, { params = None; body = tl })
      | _ -> None

let expand_macros macros tokens =
  let module SM = Map.Make (String) in
  let macros =
    List.fold_left (fun m (k, v) -> SM.add k v m) SM.empty macros
  in
  let expanded_once = ref true in
  let rounds = ref 0 in
  let result = ref tokens in
  while !expanded_once && !rounds < 8 do
    expanded_once := false;
    incr rounds;
    let rec go acc = function
      | [] -> List.rev acc
      | ({ t; line } as tok) :: tl -> (
          match SM.find_opt t macros with
          | None -> go (tok :: acc) tl
          | Some { params = None; body } ->
              expanded_once := true;
              go acc (List.map (fun b -> { b with line }) body @ tl)
          | Some { params = Some params; body } -> (
              match tl with
              | { t = "("; _ } :: tl ->
                  expanded_once := true;
                  (* collect comma-separated argument token lists *)
                  let rec args depth cur acc = function
                    | { t = "("; _ } as x :: tl ->
                        args (depth + 1) (x :: cur) acc tl
                    | { t = ")"; _ } :: tl when depth = 0 ->
                        (List.rev (List.rev cur :: acc), tl)
                    | { t = ")"; _ } as x :: tl ->
                        args (depth - 1) (x :: cur) acc tl
                    | { t = ","; _ } :: tl when depth = 0 ->
                        args depth [] (List.rev cur :: acc) tl
                    | x :: tl -> args depth (x :: cur) acc tl
                    | [] -> (List.rev (List.rev cur :: acc), [])
                  in
                  let actuals, rest = args 0 [] [] tl in
                  let binding =
                    List.mapi
                      (fun k p ->
                        (p, try List.nth actuals k with _ -> []))
                      params
                  in
                  let substituted =
                    List.concat_map
                      (fun (b : token) ->
                        match List.assoc_opt b.t binding with
                        | Some arg ->
                            List.map (fun (a : token) -> { a with line }) arg
                        | None -> [ { b with line } ])
                      body
                  in
                  (* ## pasting *)
                  let rec paste = function
                    | a :: { t = "##"; _ } :: b :: tl ->
                        paste ({ t = a.t ^ b.t; line = a.line } :: tl)
                    | x :: tl -> x :: paste tl
                    | [] -> []
                  in
                  go acc (paste substituted @ rest)
              | _ -> go (tok :: acc) tl))
    in
    result := go [] !result
  done;
  !result

(* {2 Function extraction} *)

type cfunc = {
  c_name : string;
  is_camlprim : bool;
  ret : string;  (* return type tokens, space-joined, CAMLprim stripped *)
  params : string list;  (* per-parameter type tokens, space-joined *)
  def_line : int;
  body : token list;
}

let param_type tokens =
  (* drop the trailing identifier (the parameter name) and const qualifiers;
     "value *argv" keeps its star: ["value"; "*"] *)
  let tokens = List.filter (fun (t : token) -> t.t <> "const") tokens in
  let rec strip_name = function
    | [] -> []
    | [ last ] -> if is_id_start last.t.[0] then [] else [ last ]
    | x :: tl -> x :: strip_name tl
  in
  String.concat " " (List.map (fun (t : token) -> t.t) (strip_name tokens))

let extract_functions tokens =
  let funcs = ref [] in
  let arr = Array.of_list tokens in
  let n = Array.length arr in
  let i = ref 0 in
  let stmt_start = ref 0 in
  while !i < n do
    let tok = arr.(!i) in
    if tok.t = "(" && !i > 0 && is_id_start arr.(!i - 1).t.[0] then begin
      (* candidate: ident '(' ... ')' '{' at top level *)
      let j = ref (!i + 1) in
      let depth = ref 1 in
      while !j < n && !depth > 0 do
        (match arr.(!j).t with
        | "(" -> incr depth
        | ")" -> decr depth
        | _ -> ());
        incr j
      done;
      if !j < n && arr.(!j).t = "{" then begin
        let name_tok = arr.(!i - 1) in
        let quals =
          Array.to_list (Array.sub arr !stmt_start (!i - 1 - !stmt_start))
        in
        let is_camlprim =
          List.exists (fun (t : token) -> t.t = "CAMLprim") quals
        in
        let ret =
          quals
          |> List.filter (fun (t : token) ->
                 t.t <> "CAMLprim" && t.t <> "static" && t.t <> "inline")
          |> List.map (fun (t : token) -> t.t)
          |> String.concat " "
        in
        (* split parameters on top-level commas *)
        let ptokens = Array.to_list (Array.sub arr (!i + 1) (!j - !i - 2)) in
        let params =
          let rec split depth cur acc = function
            | ({ t = "("; _ } as x) :: tl -> split (depth + 1) (x :: cur) acc tl
            | ({ t = ")"; _ } as x) :: tl -> split (depth - 1) (x :: cur) acc tl
            | { t = ","; _ } :: tl when depth = 0 ->
                split depth [] (List.rev cur :: acc) tl
            | x :: tl -> split depth (x :: cur) acc tl
            | [] -> List.rev (List.rev cur :: acc)
          in
          match ptokens with
          | [] | [ { t = "void"; _ } ] -> []
          | _ -> split 0 [] [] ptokens |> List.map param_type
        in
        (* body: from '{' to its matching '}' *)
        let k = ref (!j + 1) in
        let bdepth = ref 1 in
        let body_start = !k in
        while !k < n && !bdepth > 0 do
          (match arr.(!k).t with
          | "{" -> incr bdepth
          | "}" -> decr bdepth
          | _ -> ());
          incr k
        done;
        let body =
          Array.to_list (Array.sub arr body_start (!k - 1 - body_start))
        in
        funcs :=
          {
            c_name = name_tok.t;
            is_camlprim;
            ret;
            params;
            def_line = name_tok.line;
            body;
          }
          :: !funcs;
        stmt_start := !k;
        i := !k
      end
      else incr i
    end
    else begin
      (match tok.t with
      | ";" | "}" -> stmt_start := !i + 1
      | "{" ->
          (* skip a top-level brace block that is not a function body
             (enum/struct/initializer): advance past it *)
          let k = ref (!i + 1) in
          let bdepth = ref 1 in
          while !k < n && !bdepth > 0 do
            (match arr.(!k).t with
            | "{" -> incr bdepth
            | "}" -> decr bdepth
            | _ -> ());
            incr k
          done;
          i := !k - 1;
          stmt_start := !k
      | _ -> ());
      incr i
    end
  done;
  List.rev !funcs

(* {2 OCaml externals} *)

type arg_kind = Untagged | Unboxed | Boxed

type ext = {
  ml_name : string;
  byte_name : string;
  native_name : string;
  args : arg_kind list;
  ret : arg_kind;
  ret_unit : bool;
  noalloc : bool;
  ml_line : int;
}

let has_attr name (attrs : Parsetree.attributes) =
  List.exists
    (fun (a : Parsetree.attribute) -> a.attr_name.Asttypes.txt = name)
    attrs

let core_type_name (t : Parsetree.core_type) =
  match t.ptyp_desc with
  | Ptyp_constr (l, _) -> (
      match Longident.flatten l.Location.txt with
      | [ n ] -> Some n
      | p -> Some (String.concat "." p))
  | _ -> None

let classify_arg ~decl_untagged ~decl_unboxed (t : Parsetree.core_type) =
  let name = core_type_name t in
  if has_attr "untagged" t.ptyp_attributes then Untagged
  else if has_attr "unboxed" t.ptyp_attributes then Unboxed
  else if decl_untagged && name = Some "int" then Untagged
  else if decl_unboxed && name = Some "float" then Unboxed
  else Boxed

let rec arrow_args (t : Parsetree.core_type) =
  match t.ptyp_desc with
  | Ptyp_arrow (_, a, b) ->
      let args, ret = arrow_args b in
      (a :: args, ret)
  | _ -> ([], t)

let externals_of (ml : Source.file) =
  let exts = ref [] in
  let of_vd (vd : Parsetree.value_description) line =
    match vd.pval_prim with
    | [] -> ()
    | names when List.exists (fun n -> n <> "" && n.[0] = '%') names -> ()
    | names ->
        let decl_untagged = has_attr "untagged" vd.pval_attributes in
        let decl_unboxed = has_attr "unboxed" vd.pval_attributes in
        let args, ret = arrow_args vd.pval_type in
        let byte_name, native_name =
          match names with
          | [ b; nat ] -> (b, nat)
          | [ single ] -> (single, single)
          | b :: nat :: _ -> (b, nat)
          | [] -> ("", "")
        in
        exts :=
          {
            ml_name = vd.pval_name.Asttypes.txt;
            byte_name;
            native_name;
            args = List.map (classify_arg ~decl_untagged ~decl_unboxed) args;
            ret = classify_arg ~decl_untagged ~decl_unboxed ret;
            ret_unit = core_type_name ret = Some "unit";
            noalloc = has_attr "noalloc" vd.pval_attributes;
            ml_line = line;
          }
          :: !exts
  in
  let open Ast_iterator in
  let it =
    {
      default_iterator with
      structure_item =
        (fun it si ->
          (match si.Parsetree.pstr_desc with
          | Pstr_primitive vd ->
              of_vd vd si.Parsetree.pstr_loc.Location.loc_start.Lexing.pos_lnum
          | _ -> ());
          default_iterator.structure_item it si);
    }
  in
  it.structure it ml.Source.structure;
  List.rev !exts

(* {2 Checks} *)

let expected_ctype = function
  | Untagged -> "intnat"
  | Unboxed -> "double"
  | Boxed -> "value"

let libm_allowlist = [ "tanh"; "exp"; "log"; "sqrt"; "fabs" ]

let libm_names =
  [
    "sin"; "cos"; "tan"; "asin"; "acos"; "atan"; "atan2"; "sinh"; "cosh";
    "asinh"; "acosh"; "atanh"; "exp2"; "expm1"; "log2"; "log10"; "log1p";
    "pow"; "cbrt"; "hypot"; "erf"; "erfc"; "tgamma"; "lgamma"; "fmod";
    "remainder"; "round"; "rint"; "nearbyint"; "trunc"; "floor"; "ceil";
    "copysign"; "fmin"; "fmax"; "fdim"; "ldexp"; "frexp"; "modf"; "scalbn";
    "ilogb"; "logb"; "nextafter";
  ]

let is_heap_ident s =
  has_prefix s "caml_alloc"
  || has_prefix s "caml_copy_"
  || has_prefix s "caml_callback"
  || has_prefix s "caml_raise"
  || has_prefix s "caml_failwith"
  || has_prefix s "caml_invalid_argument"
  || has_prefix s "CAMLparam"
  || has_prefix s "CAMLlocal"
  || has_prefix s "CAMLreturn"

(* Transitive heap-interaction search through locally-defined callees
   (static helpers and CAMLprims alike). *)
let find_heap_touch funcs name =
  let by_name n = List.find_opt (fun f -> f.c_name = n) funcs in
  let seen = Hashtbl.create 8 in
  let rec go n =
    if Hashtbl.mem seen n then None
    else begin
      Hashtbl.add seen n ();
      match by_name n with
      | None -> None
      | Some f ->
          let rec scan = function
            | [] -> None
            | (tok : token) :: tl ->
                if is_heap_ident tok.t then Some (tok.t, tok.line, f.c_name)
                else if
                  tok.t <> n && by_name tok.t <> None
                  && (match tl with { t = "("; _ } :: _ -> true | _ -> false)
                then
                  match go tok.t with None -> scan tl | hit -> hit
                else scan tl
          in
          scan f.body
    end
  in
  go name

(* A line holding both a binary [*] and a binary [+]/[-] is a potential
   contraction site; only reported when the dune contract is missing. *)
let muladd_lines tokens =
  let binary_prev (p : token option) =
    match p with
    | Some { t; _ } ->
        (t <> "" && (is_id_char t.[0] || t = ")" || t = "]"))
        || (t <> "" && is_digit t.[0])
    | None -> false
  in
  let tbl = Hashtbl.create 16 in
  let rec go prev = function
    | [] -> ()
    | (tok : token) :: tl ->
        (if (tok.t = "*" || tok.t = "+" || tok.t = "-") && binary_prev prev
         then
           let key = tok.line in
           let cur = try Hashtbl.find tbl key with Not_found -> [] in
           Hashtbl.replace tbl key (tok.t :: cur));
        go (Some tok) tl
  in
  go None tokens;
  Hashtbl.to_seq_keys tbl
  |> List.of_seq
  |> List.sort_uniq Int.compare
  |> List.filter (fun line ->
         let ops = try Hashtbl.find tbl line with Not_found -> [] in
         List.mem "*" ops && (List.mem "+" ops || List.mem "-" ops))

let analyze ~c_path ~c_file ~(ml : Source.file) ~dune_path ~dune_file () =
  let findings = ref [] in
  let add path line msg =
    findings := { Rules.rule = "R8"; path; line; msg } :: !findings
  in
  match (try Some (Source.read_all c_file) with Sys_error _ -> None) with
  | None ->
      ( [ { Rules.rule = "R8"; path = c_path; line = 0;
            msg = "cannot read C stub file" } ],
        [] )
  | Some text ->
      let lx = tokenize text in
      let macros = List.filter_map parse_define lx.directives in
      let tokens = expand_macros macros lx.tokens in
      let funcs = extract_functions tokens in
      let camlprims = List.filter (fun f -> f.is_camlprim) funcs in
      let exts = externals_of ml in
      (* -- per-external ABI cross-checks ------------------------------- *)
      List.iter
        (fun e ->
          let arity = List.length e.args in
          if e.byte_name = e.native_name then
            add ml.Source.path e.ml_line
              (Printf.sprintf
                 "external %s uses a single stub name %S; C stubs must use \
                  the two-name byte/native convention"
                 e.ml_name e.native_name)
          else if e.byte_name <> e.native_name ^ "_byte" then
            add ml.Source.path e.ml_line
              (Printf.sprintf
                 "external %s: byte stub %S breaks the twin convention \
                  (expected %S)"
                 e.ml_name e.byte_name (e.native_name ^ "_byte"));
          (match List.find_opt (fun f -> f.c_name = e.native_name) camlprims with
          | None ->
              add ml.Source.path e.ml_line
                (Printf.sprintf
                   "external %s: native stub %S has no CAMLprim definition \
                    in %s"
                   e.ml_name e.native_name c_path)
          | Some f ->
              let expected = List.map expected_ctype e.args in
              if List.length f.params <> arity then
                add ml.Source.path e.ml_line
                  (Printf.sprintf
                     "external %s: arity mismatch — OCaml declares %d \
                      argument(s), CAMLprim %s takes %d"
                     e.ml_name arity e.native_name (List.length f.params))
              else
                List.iteri
                  (fun k (want, got) ->
                    if want <> got then
                      add ml.Source.path e.ml_line
                        (Printf.sprintf
                           "external %s: argument %d is %s on the C side \
                            but the declaration implies %s (check \
                            [@untagged]/[@unboxed])"
                           e.ml_name (k + 1) got want))
                  (List.combine expected f.params);
              let want_ret =
                if e.ret_unit then "value" else expected_ctype e.ret
              in
              if f.ret <> want_ret then
                add ml.Source.path e.ml_line
                  (Printf.sprintf
                     "external %s: CAMLprim %s returns %s but the \
                      declaration implies %s"
                     e.ml_name e.native_name f.ret want_ret);
              if e.noalloc then
                match find_heap_touch funcs e.native_name with
                | Some (ident, line, inside) ->
                    add c_path line
                      (Printf.sprintf
                         "%s reaches %s (in %s) but its external %s is \
                          [@@noalloc]; drop the attribute or the heap \
                          interaction"
                         e.native_name ident inside e.ml_name)
                | None -> ());
          if e.byte_name <> e.native_name then
            match
              List.find_opt (fun f -> f.c_name = e.byte_name) camlprims
            with
            | None ->
                add ml.Source.path e.ml_line
                  (Printf.sprintf
                     "external %s: byte stub %S has no CAMLprim definition \
                      in %s"
                     e.ml_name e.byte_name c_path)
            | Some f ->
                if arity > 5 then begin
                  if f.params <> [ "value *"; "int" ] then
                    add c_path f.def_line
                      (Printf.sprintf
                         "byte stub %s: arity %d > 5 requires the (value \
                          *argv, int argn) form"
                         e.byte_name arity)
                end
                else if
                  List.length f.params <> arity
                  || List.exists (fun p -> p <> "value") f.params
                then
                  add c_path f.def_line
                    (Printf.sprintf
                       "byte stub %s must take exactly %d boxed value \
                        parameter(s)"
                       e.byte_name arity))
        exts;
      (* -- orphan CAMLprims ------------------------------------------- *)
      let bound =
        List.concat_map (fun e -> [ e.native_name; e.byte_name ]) exts
      in
      List.iter
        (fun f ->
          if not (List.mem f.c_name bound) then
            add c_path f.def_line
              (Printf.sprintf
                 "orphan CAMLprim %s: no external in %s binds it" f.c_name
                 ml.Source.path))
        camlprims;
      (* -- float contract --------------------------------------------- *)
      let rec scan_calls = function
        (* the attribute case must precede the generic call case:
           [__attribute__] is always followed by [(] and would otherwise be
           swallowed as an ordinary call head *)
        | { t = "__attribute__"; line } :: tl ->
            let rec scan_attr depth = function
              | ({ t = "("; _ } : token) :: tl -> scan_attr (depth + 1) tl
              | { t = ")"; _ } :: tl ->
                  if depth <= 1 then tl else scan_attr (depth - 1) tl
              | { t; _ } :: tl ->
                  if
                    Deps.find_substring t "optimize" <> None
                    || Deps.find_substring t "fast" <> None
                  then
                    add c_path line
                      (Printf.sprintf
                         "__attribute__((%s ...)) overrides the IEEE-strict \
                          compilation contract"
                         t);
                  scan_attr depth tl
              | [] -> []
            in
            scan_calls (scan_attr 0 tl)
        | (a : token) :: ({ t = "("; _ } :: _ as tl) ->
            (if a.t = "fma" || a.t = "fmaf" || a.t = "fmal" then
               add c_path a.line
                 "fma() forces fused multiply-add, defeating \
                  -ffp-contract=off; write the mul and add separately"
             else if
               List.mem a.t libm_names && not (List.mem a.t libm_allowlist)
             then
               add c_path a.line
                 (Printf.sprintf
                    "libm call %s() is outside the vetted allowlist (%s); \
                     its rounding is not pinned by the backend contract"
                    a.t
                    (String.concat " " libm_allowlist)));
            scan_calls tl
        | _ :: tl -> scan_calls tl
        | [] -> ()
      in
      scan_calls tokens;
      List.iter
        (fun d ->
          let t = String.trim d.d_text in
          let t1 =
            if has_prefix t "#" then
              String.trim (String.sub t 1 (String.length t - 1))
            else t
          in
          if has_prefix t1 "pragma" then
            add c_path d.d_line
              "#pragma can override float semantics (STDC FP_CONTRACT, GCC \
               optimize); the stub contract allows none")
        lx.directives;
      (* -- dune compilation contract ---------------------------------- *)
      let dune_text =
        try Some (Source.read_all dune_file) with Sys_error _ -> None
      in
      let contract_ok =
        match dune_text with
        | None ->
            add dune_path 0 "cannot read the dune file pinning stub flags";
            false
        | Some dt ->
            let missing =
              List.filter
                (fun flag -> Deps.find_substring dt flag = None)
                [ "-fno-fast-math"; "-ffp-contract=off" ]
            in
            List.iter
              (fun flag ->
                add dune_path 1
                  (Printf.sprintf
                     "stub dune contract is missing %s; the C compiler may \
                      change IEEE results"
                     flag))
              missing;
            missing = []
      in
      if not contract_ok then
        List.iter
          (fun line ->
            add c_path line
              "multiply-add on this line may be contracted to FMA because \
               the dune contract does not pin -ffp-contract=off")
          (muladd_lines tokens);
      (List.rev !findings, lx.comments)
