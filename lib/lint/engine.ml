(* pnnlint driver: walk the tree, run the rules, apply suppressions.

   Suppression syntax, checked here rather than in the rules so every rule
   gets it uniformly:

     (* pnnlint:allow R3 reason why the order cannot escape *)

   A suppression covers findings of the listed rules on any line the comment
   spans plus the following line (so it can sit above or at the end of the
   offending line).  Suppressions without a rule id or without a reason are
   themselves findings (S1): a waiver must say what it waives and why. *)

type config = {
  scan_dirs : string list;  (* relative to the root *)
  exclude : string list;  (* path substrings to skip, e.g. fixture dirs *)
  r2_roots : string list;  (* units whose dep closure R2 applies to *)
  r7_seeds : string list;  (* module names whose referencers seed R7 *)
  fork_allowed : string list;  (* units that may call Unix.fork (R7) *)
  cstub_pairs : (string * string * string) list;
      (* R8 stub pairs: C file, OCaml externals file, dune file — relative
         to the root *)
}

let default_config =
  {
    scan_dirs = [ "lib"; "bin"; "test"; "bench" ];
    exclude = [ "lint_fixtures" ];
    (* cache keys: Cache, Serialize, Checkpoint; results: the experiment and
       evaluation stack.  The serving path is result-producing too — a
       response payload is a result, and BENCH_5.json is committed — so the
       Serving library and its CLIs are roots as well.  Everything those
       units can reach inherits R2. *)
    r2_roots =
      [
        "Cache";
        "Serialize";
        "Checkpoint";
        "Evaluation";
        "Training";
        "Table2";
        "Table3";
        "Ablations";
        "Faults";
        "Lifetime";
        "Report";
        "Serving";
        "Serve";
        "Loadgen";
        (* the sharded orchestrator publishes cache entries and assembles
           the committed tables, so its whole closure (library + CLI) is
           result-producing; wall clocks there may only drive the lease
           protocol or progress reporting, under reasoned allows *)
        "Orchestration";
        "Orchestrate";
      ];
    (* R7's closure is seeded by auto-detection: any scanned module that
       mentions one of these names spawns (or coordinates) domains, so
       everything reachable from it is shared-state territory. *)
    r7_seeds = [ "Domain"; "Parallel"; "Coordinator"; "Thread" ];
    (* the orchestrator's Coordinator forks workers behind a pre-domain
       latch (Parallel.require_sequential); nobody else may fork *)
    fork_allowed = [ "Coordinator" ];
    cstub_pairs =
      [
        ( "lib/tensor/pnn_kernels_stubs.c",
          "lib/tensor/kernels_c.ml",
          "lib/tensor/dune" );
      ];
  }

type suppression = {
  sup_path : string;
  sup_line : int;
  rules : string list;
  reason : string;
  first_covered : int;
  last_covered : int;
}

type report = {
  findings : Rules.finding list;  (* unsuppressed: these fail the gate *)
  suppressed : (Rules.finding * suppression) list;
  suppressions : suppression list;  (* every valid suppression in the tree *)
  safety : (string * int * string) list;  (* SAFETY comments: path, line, text *)
  files_scanned : int;
}

(* {2 Tree walking} *)

let rec walk dir acc =
  if Sys.file_exists dir && Sys.is_directory dir then
    Array.fold_left
      (fun acc entry ->
        let p = Filename.concat dir entry in
        if Sys.is_directory p then
          if entry = "_build" || String.length entry > 0 && entry.[0] = '.'
          then acc
          else walk p acc
        else p :: acc)
      acc (Sys.readdir dir)
  else acc

let excluded config path =
  List.exists (fun s -> Deps.find_substring path s <> None) config.exclude

let source_files config root =
  let dirs = List.map (Filename.concat root) config.scan_dirs in
  let all = List.concat_map (fun d -> walk d []) dirs in
  all
  |> List.filter (fun p ->
         (Filename.check_suffix p ".ml" || Filename.check_suffix p ".mli")
         && not (excluded config p))
  |> List.sort String.compare

let dune_files config root =
  let dirs = List.map (Filename.concat root) config.scan_dirs in
  let all = List.concat_map (fun d -> walk d []) dirs in
  all
  |> List.filter (fun p -> Filename.basename p = "dune")
  |> List.sort String.compare

(* {2 Suppressions} *)

(* A suppression comment must *start* with the marker (mentions of the
   syntax in prose, like the header of this very file, don't count). *)
let parse_suppression path (c : Source.comment) =
  let text = String.trim c.Source.text in
  let marker = "pnnlint:allow" in
  if
    String.length text < String.length marker
    || String.sub text 0 (String.length marker) <> marker
  then None
  else
    let rest =
      String.sub text (String.length marker)
        (String.length text - String.length marker)
    in
      let words =
        String.split_on_char ' ' (String.trim rest)
        |> List.concat_map (String.split_on_char ',')
        |> List.filter (fun w -> w <> "")
      in
      let is_rule w =
        String.length w >= 2
        && w.[0] = 'R'
        && String.for_all (fun ch -> ch >= '0' && ch <= '9')
             (String.sub w 1 (String.length w - 1))
      in
      let rec span rules = function
        | w :: tl when is_rule w -> span (w :: rules) tl
        | rest -> (List.rev rules, rest)
      in
      let rules, reason_words = span [] words in
      Some
        {
          sup_path = path;
          sup_line = c.Source.start_line;
          rules;
          reason = String.concat " " reason_words;
          first_covered = c.Source.start_line;
          last_covered = c.Source.end_line + 1;
        }

let suppresses s (f : Rules.finding) =
  s.sup_path = f.Rules.path
  && List.mem f.Rules.rule s.rules
  && f.Rules.line >= s.first_covered
  && f.Rules.line <= s.last_covered

(* {2 Run} *)

let normalize path =
  if String.length path > 2 && String.sub path 0 2 = "./" then
    String.sub path 2 (String.length path - 2)
  else path

let run ?(config = default_config) ~root () =
  let files =
    List.map
      (fun p -> { (Source.load_cached p) with Source.path = normalize p })
      (source_files config root)
  in
  let libs = List.filter_map Deps.scan_dune_file (dune_files config root) in
  let libs =
    List.map (fun (l : Deps.lib) -> { l with Deps.dir = normalize l.Deps.dir }) libs
  in
  let graph = Deps.build_graph ~libs files in
  let r2_closure = Deps.closure graph ~roots:config.r2_roots in
  let r7_closure =
    (* roots: every scanned unit that mentions a seed name, plus the seeds
       themselves (so the Parallel/Coordinator libraries are covered even
       when nothing in the scan set references them) *)
    Deps.closure graph
      ~roots:
        (Deps.referencing_units graph ~names:config.r7_seeds
        @ config.r7_seeds)
  in
  let module SS = Set.Make (String) in
  let in_closure closure (f : Source.file) =
    match f.Source.kind with
    | Source.Ml -> SS.mem f.Source.path closure
    | Source.Mli ->
        (* an interface shares its implementation's obligations *)
        SS.mem (Filename.remove_extension f.Source.path ^ ".ml") closure
  in
  let all_findings = ref [] in
  let all_sups = ref [] in
  let safety = ref [] in
  let take_suppressions path comments =
    List.iter
      (fun c ->
        match parse_suppression path c with
        | None -> ()
        | Some s ->
            if s.rules = [] || s.reason = "" then
              all_findings :=
                {
                  Rules.rule = "S1";
                  path;
                  line = s.sup_line;
                  msg =
                    "suppression must list rule ids and a non-empty \
                     reason: pnnlint:allow R<n> <why>";
                }
                :: !all_findings
            else all_sups := s :: !all_sups)
      comments
  in
  List.iter
    (fun (f : Source.file) ->
      (match f.Source.parse_error with
      | Some (line, msg) ->
          all_findings :=
            { Rules.rule = "P0"; path = f.Source.path; line; msg }
            :: !all_findings
      | None -> ());
      let ctx =
        {
          Rules.file = f;
          r2_applies = in_closure r2_closure f;
          r7_applies = in_closure r7_closure f;
          fork_allowed = config.fork_allowed;
        }
      in
      all_findings := Rules.run ctx @ !all_findings;
      take_suppressions f.Source.path f.Source.comments;
      List.iter
        (fun (c : Source.comment) ->
          safety :=
            (f.Source.path, c.Source.start_line, String.trim c.Source.text)
            :: !safety)
        (Rules.safety_comments f))
    files;
  (* R8: registered C-stub pairs (cross-language, so outside the per-file
     loop; C-side comments join the same suppression pass) *)
  List.iter
    (fun (c_rel, ml_rel, dune_rel) ->
      let full rel = Filename.concat root rel in
      let c_path = normalize (full c_rel) in
      let dune_path = normalize (full dune_rel) in
      let ml_path = normalize (full ml_rel) in
      let ml =
        match
          List.find_opt (fun f -> f.Source.path = ml_path) files
        with
        | Some f -> f
        | None ->
            { (Source.load_cached (full ml_rel)) with Source.path = ml_path }
      in
      let findings, c_comments =
        Cstub.analyze ~c_path ~c_file:(full c_rel) ~ml ~dune_path
          ~dune_file:(full dune_rel) ()
      in
      all_findings := findings @ !all_findings;
      take_suppressions c_path c_comments)
    config.cstub_pairs;
  let sups = List.rev !all_sups in
  let suppressed, findings =
    List.partition_map
      (fun f ->
        match List.find_opt (fun s -> suppresses s f) sups with
        | Some s -> Either.Left (f, s)
        | None -> Either.Right f)
      (List.rev !all_findings)
  in
  let by_site (a : Rules.finding) (b : Rules.finding) =
    match String.compare a.Rules.path b.Rules.path with
    | 0 -> (
        match Int.compare a.Rules.line b.Rules.line with
        | 0 -> String.compare a.Rules.rule b.Rules.rule
        | c -> c)
    | c -> c
  in
  {
    findings = List.sort by_site findings;
    suppressed;
    suppressions = sups;
    safety = List.rev !safety;
    files_scanned = List.length files;
  }

(* {2 Rendering} *)

let render_finding (f : Rules.finding) =
  Printf.sprintf "%s:%d: [%s] %s" f.Rules.path f.Rules.line f.Rules.rule
    f.Rules.msg

let render_report r =
  let b = Buffer.create 1024 in
  List.iter
    (fun f -> Buffer.add_string b (render_finding f ^ "\n"))
    r.findings;
  Buffer.add_string b
    (Printf.sprintf
       "pnnlint: %d file(s), %d finding(s), %d suppressed, %d suppression \
        comment(s), %d SAFETY comment(s)\n"
       r.files_scanned (List.length r.findings) (List.length r.suppressed)
       (List.length r.suppressions) (List.length r.safety));
  Buffer.contents b

let render_allow_report r =
  let b = Buffer.create 1024 in
  Buffer.add_string b "== pnnlint suppressions ==\n";
  List.iter
    (fun s ->
      let used =
        List.length (List.filter (fun (_, s') -> s' == s) r.suppressed)
      in
      Buffer.add_string b
        (Printf.sprintf "%s:%d: allow %s (%d finding(s)) — %s\n" s.sup_path
           s.sup_line
           (String.concat "," s.rules)
           used s.reason))
    r.suppressions;
  Buffer.add_string b
    (Printf.sprintf "== SAFETY justifications: %d ==\n"
       (List.length r.safety));
  List.iter
    (fun (path, line, text) ->
      let text =
        if String.length text > 72 then String.sub text 0 72 ^ "..." else text
      in
      Buffer.add_string b (Printf.sprintf "%s:%d: %s\n" path line text))
    r.safety;
  Buffer.contents b

let render_rules () =
  String.concat "\n"
    (List.map
       (fun (r : Rules.rule_info) ->
         Printf.sprintf "%s  %s\n    %s" r.Rules.id r.Rules.title
           r.Rules.detail)
       Rules.all_rules)
  ^ "\n"

(* {2 Machine-readable output}

   Hand-rolled JSON with a fixed key order so the output is byte-stable
   across runs and can be golden-tested; no JSON library in the dependency
   cone. *)

let json_string s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

let json_list f xs = "[" ^ String.concat "," (List.map f xs) ^ "]"

let json_finding (f : Rules.finding) =
  Printf.sprintf "{\"rule\":%s,\"path\":%s,\"line\":%d,\"msg\":%s}"
    (json_string f.Rules.rule) (json_string f.Rules.path) f.Rules.line
    (json_string f.Rules.msg)

let json_suppression r s =
  let used = List.length (List.filter (fun (_, s') -> s' == s) r.suppressed) in
  Printf.sprintf
    "{\"path\":%s,\"line\":%d,\"rules\":%s,\"reason\":%s,\"findings\":%d}"
    (json_string s.sup_path) s.sup_line
    (json_list json_string s.rules)
    (json_string s.reason) used

let render_json r =
  Printf.sprintf
    "{\"files_scanned\":%d,\"findings\":%s,\"suppressed\":%s,\"suppressions\":%s,\"safety_comments\":%d}\n"
    r.files_scanned
    (json_list json_finding r.findings)
    (json_list
       (fun (f, s) ->
         Printf.sprintf
           "{\"rule\":%s,\"path\":%s,\"line\":%d,\"by_path\":%s,\"by_line\":%d}"
           (json_string f.Rules.rule) (json_string f.Rules.path) f.Rules.line
           (json_string s.sup_path) s.sup_line)
       r.suppressed)
    (json_list (json_suppression r) r.suppressions)
    (List.length r.safety)

(* Per-rule posture: how many findings each rule produced, how many were
   absorbed by suppressions, and how many allow comments name the rule. *)

let stats_rows r =
  let ids =
    List.map (fun (ri : Rules.rule_info) -> ri.Rules.id) Rules.all_rules
    @ [ "S1"; "P0" ]
  in
  List.map
    (fun id ->
      let findings =
        List.length (List.filter (fun f -> f.Rules.rule = id) r.findings)
      in
      let suppressed =
        List.length
          (List.filter (fun (f, _) -> f.Rules.rule = id) r.suppressed)
      in
      let allows =
        List.length
          (List.filter (fun s -> List.mem id s.rules) r.suppressions)
      in
      (id, findings, suppressed, allows))
    ids

let render_stats r =
  let b = Buffer.create 512 in
  Buffer.add_string b "rule  findings  suppressed  allows\n";
  List.iter
    (fun (id, findings, suppressed, allows) ->
      Buffer.add_string b
        (Printf.sprintf "%-4s  %8d  %10d  %6d\n" id findings suppressed
           allows))
    (stats_rows r);
  Buffer.add_string b
    (Printf.sprintf
       "total: %d file(s), %d finding(s), %d suppressed, %d suppression \
        comment(s), %d SAFETY comment(s)\n"
       r.files_scanned (List.length r.findings) (List.length r.suppressed)
       (List.length r.suppressions) (List.length r.safety));
  Buffer.contents b

let render_stats_json r =
  Printf.sprintf
    "{\"files_scanned\":%d,\"rules\":%s,\"totals\":{\"findings\":%d,\"suppressed\":%d,\"suppression_comments\":%d,\"safety_comments\":%d}}\n"
    r.files_scanned
    (json_list
       (fun (id, findings, suppressed, allows) ->
         Printf.sprintf
           "{\"id\":%s,\"findings\":%d,\"suppressed\":%d,\"allows\":%d}"
           (json_string id) findings suppressed allows)
       (stats_rows r))
    (List.length r.findings)
    (List.length r.suppressed)
    (List.length r.suppressions)
    (List.length r.safety)
