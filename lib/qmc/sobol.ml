(* Joe–Kuo "new-joe-kuo-6" parameters for dimensions 2..10; dimension 1 is the
   van der Corput sequence in base 2.  (s, a, m) per dimension. *)
let joe_kuo : (int * int * int array) array =
  [|
    (1, 0, [| 1 |]);
    (2, 1, [| 1; 3 |]);
    (3, 1, [| 1; 3; 1 |]);
    (3, 2, [| 1; 1; 1 |]);
    (4, 1, [| 1; 1; 3; 3 |]);
    (4, 4, [| 1; 3; 5; 13 |]);
    (5, 2, [| 1; 1; 5; 5; 17 |]);
    (5, 4, [| 1; 1; 5; 5; 5 |]);
    (5, 7, [| 1; 1; 7; 11; 19 |]);
  |]

let max_dimension = Array.length joe_kuo + 1
let bits = 30
let norm = 1.0 /. float_of_int (1 lsl bits)

type t = {
  dim : int;
  v : int array array; (* v.(d).(k): direction numbers, k in 0..bits-1 *)
  x : int array; (* current integer state per dimension *)
  (* pnnlint:allow R7 a Sobol stream is sequential by construction; parallel
     draws partition by leapfrogged copies, never by sharing one stream *)
  mutable count : int;
}

let direction_numbers dim_index =
  (* dim_index 0 = van der Corput *)
  let v = Array.make bits 0 in
  if dim_index = 0 then begin
    for k = 0 to bits - 1 do
      v.(k) <- 1 lsl (bits - 1 - k)
    done;
    v
  end
  else begin
    let s, a, m_init = joe_kuo.(dim_index - 1) in
    let m = Array.make (Stdlib.max bits s) 0 in
    Array.blit m_init 0 m 0 s;
    for k = s to bits - 1 do
      (* m_k = (2^s * m_{k-s}) xor m_{k-s} xor sum 2^i a_i m_{k-i} *)
      let acc = ref ((m.(k - s) lsl s) lxor m.(k - s)) in
      for i = 1 to s - 1 do
        let a_i = (a lsr (s - 1 - i)) land 1 in
        if a_i = 1 then acc := !acc lxor (m.(k - i) lsl i)
      done;
      m.(k) <- !acc
    done;
    for k = 0 to bits - 1 do
      v.(k) <- m.(k) lsl (bits - 1 - k)
    done;
    v
  end

(* Gray-code advance: flip the direction number of the lowest zero bit. *)
let advance t =
  let c = ref 0 in
  let n = ref t.count in
  while !n land 1 = 1 do
    incr c;
    n := !n lsr 1
  done;
  for d = 0 to t.dim - 1 do
    t.x.(d) <- t.x.(d) lxor t.v.(d).(!c)
  done;
  t.count <- t.count + 1

let create ?(skip = 1) dim =
  if dim < 1 || dim > max_dimension then
    invalid_arg
      (Printf.sprintf "Sobol.create: dimension %d outside 1..%d" dim max_dimension);
  if skip < 0 then invalid_arg "Sobol.create: negative skip";
  let t =
    {
      dim;
      v = Array.init dim direction_numbers;
      x = Array.make dim 0;
      count = 0;
    }
  in
  (* skip the prefix (including the implicit origin point) *)
  for _ = 1 to skip do
    advance t
  done;
  t

let dimension t = t.dim

let next t =
  let point = Array.map (fun xi -> float_of_int xi *. norm) t.x in
  advance t;
  point

let next_in_box t ~lo ~hi =
  if Array.length lo <> t.dim || Array.length hi <> t.dim then
    invalid_arg "Sobol.next_in_box: bounds dimension mismatch";
  let p = next t in
  Array.mapi (fun i u -> lo.(i) +. ((hi.(i) -. lo.(i)) *. u)) p

let generate t n = Array.init n (fun _ -> next t)
