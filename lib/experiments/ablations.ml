(* Random i.i.d. sampling for the sampler ablation: like LHS but without the
   stratification. *)
let sample_random rng ~n =
  Array.init n (fun _ ->
      Surrogate.Design_space.assemble
        (Array.mapi
           (fun i lo ->
             Rng.uniform rng ~lo ~hi:Surrogate.Design_space.learnable_hi.(i))
           Surrogate.Design_space.learnable_lo))

let surrogate_quality ~epochs dataset =
  let rng = Rng.create 42 in
  let _, report =
    Surrogate.Pipeline.train_surrogate ~arch:[ 10; 9; 8; 6; 4 ] ~max_epochs:epochs rng
      dataset
  in
  (report.Surrogate.Pipeline.val_mse, report.Surrogate.Pipeline.val_r2)

let sampler_ablation ?(n = 1200) ?(epochs = 800) () =
  let make sampler =
    match sampler with
    | `Sobol -> Surrogate.Pipeline.generate_dataset ~n ()
    | `Lhs -> Surrogate.Pipeline.generate_dataset ~n ~sampler:(`Lhs (Rng.create 7)) ()
    | `Random ->
        let omegas = sample_random (Rng.create 7) ~n in
        (* reuse the pipeline's simulate+fit by temporarily building a dataset
           from explicit omegas: simplest is to rerun its internals here *)
        let kept_o = ref [] and kept_e = ref [] and kept_r = ref [] in
        let rejected = ref 0 in
        Array.iter
          (fun omega ->
            match
              Circuit.Ptanh_circuit.transfer (Circuit.Ptanh_circuit.omega_of_array omega)
            with
            | exception Circuit.Mna.No_convergence _ -> incr rejected
            | vin, vout ->
                let { Fit.Ptanh.eta; rmse; _ } = Fit.Ptanh.fit ~vin ~vout in
                if rmse <= 0.02 then begin
                  kept_o := omega :: !kept_o;
                  kept_e := Fit.Ptanh.eta_to_array eta :: !kept_e;
                  kept_r := rmse :: !kept_r
                end
                else incr rejected)
          omegas;
        {
          Surrogate.Pipeline.omegas = Array.of_list !kept_o;
          etas = Array.of_list !kept_e;
          fit_rmses = Array.of_list !kept_r;
          rejected = !rejected;
        }
  in
  let rows =
    List.map
      (fun (name, sampler) ->
        let dataset = make sampler in
        let mse, r2 = surrogate_quality ~epochs dataset in
        [
          name;
          string_of_int (Array.length dataset.Surrogate.Pipeline.omegas);
          Printf.sprintf "%.5f" mse;
          Printf.sprintf "%.4f" r2;
        ])
      [ ("sobol (paper)", `Sobol); ("latin hypercube", `Lhs); ("iid uniform", `Random) ]
  in
  "Ablation: design-space sampler (equal simulation budget)\n"
  ^ Report.table ~header:[ "sampler"; "kept"; "val MSE"; "val R2" ] ~rows

let architecture_ablation ?(n = 1200) ?(epochs = 800) () =
  let dataset = Surrogate.Pipeline.generate_dataset ~n () in
  let rows =
    List.map
      (fun (name, arch) ->
        let rng = Rng.create 42 in
        let _, report =
          Surrogate.Pipeline.train_surrogate ~arch ~max_epochs:epochs rng dataset
        in
        [
          name;
          string_of_int (List.length arch - 1);
          Printf.sprintf "%.5f" report.Surrogate.Pipeline.val_mse;
          Printf.sprintf "%.4f" report.Surrogate.Pipeline.val_r2;
        ])
      [
        ("13-layer deep-narrow (paper)", Surrogate.Model.paper_arch);
        ("3-layer wide", [ 10; 32; 32; 4 ]);
        ("2-layer", [ 10; 24; 4 ]);
        ("linear", [ 10; 4 ]);
      ]
  in
  "Ablation: surrogate architecture (same data, same epochs)\n"
  ^ Report.table ~header:[ "architecture"; "layers"; "val MSE"; "val R2" ] ~rows

let surrogate_small = lazy (Setup.surrogate_of_scale Setup.quick)

let surrogate_small_digest =
  lazy (Cache.digest_lines (Surrogate.Model.to_lines (Lazy.force surrogate_small)))

let init_name = function `Centered -> "centered" | `Random_sign -> "random_sign"

let train_once ?cache ~init ~config ~seed data =
  let cache = match cache with Some c -> c | None -> Cache.get_default () in
  let spec = data.Datasets.Synth.spec in
  let key =
    Cache.key ~schema:(Pnn.Serialize.cache_schema ()) ~kind:"ablcell"
      [
        Lazy.force surrogate_small_digest;
        Pnn.Serialize.config_line config;
        spec.Datasets.Synth.name;
        string_of_int seed;
        init_name init;
      ]
  in
  Cache.memoize cache ~kind:"ablcell" ~key
    ~encode:(fun (acc, majority) -> [ Printf.sprintf "acc %h %h" acc majority ])
    ~decode:(fun lines ->
      match lines with
      | [ line ] -> (
          match String.split_on_char ' ' (String.trim line) with
          | [ "acc"; a; m ] -> (float_of_string a, float_of_string m)
          | _ -> failwith "Ablations: bad cell payload")
      | _ -> failwith "Ablations: bad cell payload")
    (fun () ->
      let split = Datasets.Synth.split (Rng.create (seed + 100)) data in
      let rng = Rng.create seed in
      let tdata =
        Pnn.Training.of_split ~n_classes:spec.Datasets.Synth.classes split
      in
      let net =
        Pnn.Network.create ~init rng config (Lazy.force surrogate_small)
          ~inputs:spec.Datasets.Synth.features ~outputs:spec.Datasets.Synth.classes
      in
      let result = Pnn.Training.fit rng net tdata in
      let acc =
        Pnn.Evaluation.nominal_accuracy result.Pnn.Training.network
          ~x:split.Datasets.Synth.x_test ~y:split.Datasets.Synth.y_test
      in
      (acc, Datasets.Synth.majority_fraction data))

let initialization_ablation ?(seeds = 4) () =
  let config =
    { Pnn.Config.default with Pnn.Config.max_epochs = 400; patience = 120 }
  in
  let rows =
    List.concat_map
      (fun dataset_name ->
        let data = Datasets.Bench13.load dataset_name in
        List.map
          (fun (label, init) ->
            let results =
              List.init seeds (fun s -> train_once ~init ~config ~seed:(s + 1) data)
            in
            let accs = Array.of_list (List.map fst results) in
            let majority = snd (List.hd results) in
            let ok =
              Array.fold_left
                (fun acc a -> if a > majority +. 0.05 then acc + 1 else acc)
                0 accs
            in
            [
              dataset_name;
              label;
              Printf.sprintf "%d/%d" ok seeds;
              Printf.sprintf "%.3f" (Stats.mean accs);
              Printf.sprintf "%.3f" (Stats.max accs);
            ])
          [ ("centered (ours)", `Centered); ("random-sign", `Random_sign) ])
      [ "seeds"; "vertebral-2c" ]
  in
  "Ablation: crossbar initialization (nominal training, fixed circuits)\n"
  ^ Report.table
      ~header:[ "dataset"; "init"; "beats majority"; "mean acc"; "best acc" ]
      ~rows

let temperature_ablation ?(seeds = 3) () =
  let data = Datasets.Bench13.load "iris" in
  let rows =
    List.map
      (fun temp ->
        let config =
          {
            Pnn.Config.default with
            Pnn.Config.logit_scale = temp;
            max_epochs = 500;
            patience = 150;
          }
        in
        let best =
          List.fold_left
            (fun acc s ->
              let split = Datasets.Synth.split (Rng.create (s + 200)) data in
              let r =
                Pnn.Training.train_fresh (Rng.create s) config
                  (Lazy.force surrogate_small) ~n_classes:3 split
              in
              match acc with
              | Some (b, _) when b.Pnn.Training.val_loss <= r.Pnn.Training.val_loss -> acc
              | _ -> Some (r, split))
            None
            (List.init seeds (fun i -> i + 1))
        in
        match best with
        | None -> assert false
        | Some (r, split) ->
            let eval eps =
              Pnn.Evaluation.mc_accuracy (Rng.create 9) r.Pnn.Training.network
                ~epsilon:eps ~n:40 ~x:split.Datasets.Synth.x_test
                ~y:split.Datasets.Synth.y_test
            in
            let nominal =
              Pnn.Evaluation.nominal_accuracy r.Pnn.Training.network
                ~x:split.Datasets.Synth.x_test ~y:split.Datasets.Synth.y_test
            in
            let e10 = eval 0.10 in
            [
              Printf.sprintf "%.1f" temp;
              Printf.sprintf "%.3f" nominal;
              Report.cell e10.Pnn.Evaluation.mean_accuracy e10.Pnn.Evaluation.std_accuracy;
            ])
      [ 2.0; 4.0; 10.0 ]
  in
  "Ablation: softmax temperature (iris, nominal training)\n"
  ^ Report.table ~header:[ "logit scale"; "nominal acc"; "acc @10% variation" ] ~rows

let depth_ablation ?(seeds = 2) () =
  let data = Datasets.Bench13.load "pendigits" in
  let spec = data.Datasets.Synth.spec in
  let config = { Pnn.Config.default with Pnn.Config.max_epochs = 400; patience = 120 } in
  let rows =
    List.map
      (fun (label, hidden_sizes) ->
        let sizes = (spec.Datasets.Synth.features :: hidden_sizes) @ [ spec.Datasets.Synth.classes ] in
        let accuracy_of_seed s =
          let split = Datasets.Synth.split (Rng.create (s + 300)) data in
          let tdata = Pnn.Training.of_split ~n_classes:spec.Datasets.Synth.classes split in
          let net =
            Pnn.Network.create_deep (Rng.create s) config (Lazy.force surrogate_small)
              ~sizes
          in
          let r = Pnn.Training.fit (Rng.create (s + 17)) net tdata in
          Pnn.Evaluation.nominal_accuracy r.Pnn.Training.network
            ~x:split.Datasets.Synth.x_test ~y:split.Datasets.Synth.y_test
        in
        let best =
          List.fold_left
            (fun acc s -> Stdlib.max acc (accuracy_of_seed s))
            0.0
            (List.init seeds (fun i -> i + 1))
        in
        [ label; Printf.sprintf "%.3f" best ])
      [ ("3 (paper)", [ 3 ]); ("6", [ 6 ]); ("3-3", [ 3; 3 ]); ("6-4", [ 6; 4 ]) ]
  in
  "Extension: pNN topology on the hardest task (pendigits; best of seeds)\n"
  ^ Report.table ~header:[ "hidden layout"; "best nominal acc" ] ~rows
