(** Extension experiment: fault injection beyond the paper's noise model.

    The paper trains and tests under one non-ideality (i.i.d. uniform
    printing variation).  This experiment stress-tests the same training
    machinery against the {!Pnn.Variation} families — gaussian process
    spread, correlated within-crossbar mismatch, and hard stuck-at defects —
    in three views:

    - a Table III-style {e mismatch grid}: networks trained under each model
      (plus a nominal baseline), evaluated under every model;
    - accuracy vs. {e total defect rate} (split evenly between stuck-open
      and stuck-short) for every trained arm;
    - accuracy vs. gaussian {e σ} for every trained arm.

    Each cell is a full {!Pnn.Evaluation.mc_result} — the min/quantiles
    matter here, because rare catastrophic defect draws vanish in a mean.
    All RNG streams are derived from fixed arithmetic tags and every
    reduction is in fixed order, so results are bit-identical for any
    [REPRO_JOBS] worker count. *)

type t = {
  dataset : string;
  epsilon : float;  (** severity anchor for the train/test families *)
  train_arms : string list;  (** ["nominal"] + one per family, in order *)
  test_families : string list;
  grid : ((string * string) * Pnn.Evaluation.mc_result) list;
      (** keyed by (train arm, test family) *)
  defect_sweep : (string * (float * Pnn.Evaluation.mc_result) list) list;
      (** per train arm: (total defect rate, result) *)
  sigma_sweep : (string * (float * Pnn.Evaluation.mc_result) list) list;
      (** per train arm: (gaussian σ, result) *)
}

val families : float -> (string * Pnn.Variation.model) list
(** The four test families anchored at severity [epsilon]: uniform ε,
    gaussian ε/2, correlated ε/2+ε/2, defects 3 %+1 %. *)

val train_arms : float -> (string * Pnn.Variation.model option) list
(** [("nominal", None)] followed by {!families} — the trained arms, in the
    order {!run} trains them (the list index is the cell key's [arm_idx]). *)

(** {1 Cell-level building blocks}

    Pure functions of their named inputs, exposed so the multi-process
    orchestrator can compute individual fault-table training cells that land
    on exactly the cache entries {!run} reads back. *)

val split_for : Datasets.Synth.t -> seed:int -> Datasets.Synth.split
(** The per-seed split shared by every arm. *)

val cell_key :
  surrogate_digest:string ->
  scale:Setup.scale ->
  dataset:string ->
  arm_idx:int ->
  model:Pnn.Variation.model option ->
  seed:int ->
  string
(** The content address of one (arm, seed) training cell — exactly the key
    {!run} uses. *)

val train_cell :
  ?pool:Parallel.Pool.t ->
  ?cache:Cache.t ->
  ?checkpoints:bool ->
  ?checkpoint_every:int ->
  ?interrupt_after:int ->
  digest:string ->
  scale:Setup.scale ->
  surrogate:Surrogate.Model.t ->
  dataset:string ->
  features:int ->
  n_classes:int ->
  arm_idx:int ->
  model:Pnn.Variation.model option ->
  seed:int ->
  split:Datasets.Synth.split ->
  unit ->
  Pnn.Training.result
(** One memoized training cell, keyed with {!cell_key}.  [checkpoint_every]
    and [interrupt_after] as in {!Table2.train_cell}. *)

val run :
  ?pool:Parallel.Pool.t ->
  ?cache:Cache.t ->
  ?checkpoints:bool ->
  ?progress:(string -> unit) ->
  ?dataset:string ->
  ?epsilon:float ->
  Setup.scale ->
  Surrogate.Model.t ->
  t
(** Defaults: dataset ["seeds"], [epsilon = 0.10].  Trains best-of-seeds per
    arm (validation loss, as Table II does) with {!Pnn.Training.fit_under},
    then evaluates every view with [scale.n_mc_test] draws per cell.

    [cache] (default {!Cache.get_default}) memoizes per-(arm, seed) trainings
    and per-cell Monte-Carlo evaluations — keys cover the arm's fault model
    and both stream indices, so arms sharing a config never collide; hits
    are bit-identical to the computes they replace.  [checkpoints] as in
    {!Table2.run}. *)

val render : t -> string

val to_csv_rows : t -> string list * string list list
(** (header, rows): [kind,train_model,test_model,param,mean,std,min,q05,
    median,q95]. *)
