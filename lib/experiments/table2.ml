type cell = { mean : float; std : float }

type dataset_row = {
  dataset : string;
  cells : ((Setup.arm * float) * cell) list;
}

type t = {
  rows : dataset_row list;
  average : ((Setup.arm * float) * cell) list;
}

(* Deterministic per-(dataset, arm, eps, seed) RNG streams. *)
let run_seed ~dataset_seed ~arm ~eps ~seed =
  let tag =
    (dataset_seed * 7919)
    lxor (if arm.Setup.learnable then 101 else 202)
    lxor (if arm.Setup.variation_aware then 3030 else 4040)
    lxor int_of_float (eps *. 10_000.0)
    lxor (seed * 131)
  in
  Rng.create tag

let config_for scale arm eps =
  let base = scale.Setup.config in
  let base = Pnn.Config.with_learnable base arm.Setup.learnable in
  Pnn.Config.with_epsilon base (if arm.Setup.variation_aware then eps else 0.0)

(* Train one arm for every seed and keep the best model by validation loss.
   The per-seed runs are independent (each derives its own RNG stream from
   [run_seed]) and fan out over the pool; the best-of fold below stays in
   seed order, so the selection is identical for any worker count. *)
let train_best ?pool scale surrogate ~dataset_seed ~n_classes ~splits arm eps =
  let pool = match pool with Some p -> p | None -> Parallel.get_pool () in
  let candidates =
    Parallel.Pool.map_list pool
      (fun (seed, split) ->
        let rng = run_seed ~dataset_seed ~arm ~eps ~seed in
        let result =
          Pnn.Training.train_fresh ~pool ~init:scale.Setup.init rng
            (config_for scale arm eps) surrogate ~n_classes split
        in
        (result, split))
      splits
  in
  List.fold_left
    (fun acc (result, split) ->
      match acc with
      | Some (best, _) when best.Pnn.Training.val_loss <= result.Pnn.Training.val_loss ->
          acc
      | _ -> Some (result, split))
    None candidates

let evaluate ?pool scale ~dataset_seed network ~epsilon ~(split : Datasets.Synth.split) =
  let rng = Rng.create ((dataset_seed * 31) + int_of_float (epsilon *. 1e4) + 5) in
  let r =
    Pnn.Evaluation.mc_accuracy ?pool rng network ~epsilon ~n:scale.Setup.n_mc_test
      ~x:split.Datasets.Synth.x_test ~y:split.Datasets.Synth.y_test
  in
  { mean = r.Pnn.Evaluation.mean_accuracy; std = r.Pnn.Evaluation.std_accuracy }

let run_dataset ?pool ?(progress = fun _ -> ()) scale surrogate (data : Datasets.Synth.t) =
  let spec = data.Datasets.Synth.spec in
  let n_classes = spec.Datasets.Synth.classes in
  let dataset_seed = spec.Datasets.Synth.seed in
  (* one split per seed, shared by all arms for a fair comparison *)
  let splits =
    List.map
      (fun seed -> (seed, Datasets.Synth.split (Rng.create (dataset_seed + seed)) data))
      scale.Setup.seeds
  in
  let cells =
    List.concat_map
      (fun arm ->
        if arm.Setup.variation_aware then
          List.map
            (fun eps ->
              progress
                (Printf.sprintf "%s %s eps=%g" spec.Datasets.Synth.name
                   (Setup.arm_name arm) eps);
              match
                train_best ?pool scale surrogate ~dataset_seed ~n_classes ~splits arm eps
              with
              | Some (result, split) ->
                  ( (arm, eps),
                    evaluate ?pool scale ~dataset_seed result.Pnn.Training.network
                      ~epsilon:eps ~split )
              | None -> assert false)
            scale.Setup.test_epsilons
        else begin
          progress
            (Printf.sprintf "%s %s" spec.Datasets.Synth.name (Setup.arm_name arm));
          match
            train_best ?pool scale surrogate ~dataset_seed ~n_classes ~splits arm 0.0
          with
          | Some (result, split) ->
              List.map
                (fun eps ->
                  ( (arm, eps),
                    evaluate ?pool scale ~dataset_seed result.Pnn.Training.network
                      ~epsilon:eps ~split ))
                scale.Setup.test_epsilons
          | None -> assert false
        end)
      Setup.arms
  in
  { dataset = spec.Datasets.Synth.name; cells }

let column_keys scale =
  List.concat_map
    (fun arm -> List.map (fun eps -> (arm, eps)) scale.Setup.test_epsilons)
    Setup.arms

let run ?pool ?progress ?datasets scale surrogate =
  let datasets =
    match datasets with Some d -> d | None -> Datasets.Bench13.load_all ()
  in
  let rows = List.map (run_dataset ?pool ?progress scale surrogate) datasets in
  let average =
    List.map
      (fun key ->
        let means = List.map (fun r -> (List.assoc key r.cells).mean) rows in
        let stds = List.map (fun r -> (List.assoc key r.cells).std) rows in
        let avg l = List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l) in
        (key, { mean = avg means; std = avg stds }))
      (column_keys scale)
  in
  { rows; average }

let cell_of t ~dataset ~arm ~epsilon =
  let row = List.find (fun r -> r.dataset = dataset) t.rows in
  List.assoc (arm, epsilon) row.cells

let average_of t ~arm ~epsilon = List.assoc (arm, epsilon) t.average

let ordered_keys t =
  match t.rows with
  | [] -> List.map fst t.average
  | r :: _ -> List.map fst r.cells

(* Paper column order: fixed/nominal, fixed/va, learnable/nominal,
   learnable/va — each at 5 % and 10 %. *)
let paper_order (a : Setup.arm * float) (b : Setup.arm * float) =
  let rank (arm, eps) =
    ( (if arm.Setup.learnable then 1 else 0),
      (if arm.Setup.variation_aware then 1 else 0),
      eps )
  in
  compare (rank a) (rank b)

let render t =
  let keys = List.sort paper_order (ordered_keys t) in
  let header =
    "Dataset"
    :: List.map
         (fun (arm, eps) ->
           Printf.sprintf "%s@%g%%" (Setup.arm_name arm) (eps *. 100.0))
         keys
  in
  let data_rows =
    List.map
      (fun r ->
        r.dataset
        :: List.map
             (fun key ->
               let c = List.assoc key r.cells in
               Report.cell c.mean c.std)
             keys)
      t.rows
  in
  let avg_row =
    "Average"
    :: List.map
         (fun key ->
           let c = List.assoc key t.average in
           Report.cell c.mean c.std)
         keys
  in
  Report.table ~header ~rows:(data_rows @ [ avg_row ])

let to_csv_rows t =
  let keys = List.sort paper_order (ordered_keys t) in
  let header =
    "dataset"
    :: List.concat_map
         (fun (arm, eps) ->
           let base = Printf.sprintf "%s@%g" (Setup.arm_name arm) (eps *. 100.0) in
           [ base ^ "_mean"; base ^ "_std" ])
         keys
  in
  let rows =
    List.map
      (fun r ->
        r.dataset
        :: List.concat_map
             (fun key ->
               let c = List.assoc key r.cells in
               [ Printf.sprintf "%.4f" c.mean; Printf.sprintf "%.4f" c.std ])
             keys)
      t.rows
  in
  (header, rows)
