type cell = { mean : float; std : float }

type dataset_row = {
  dataset : string;
  cells : ((Setup.arm * float) * cell) list;
}

type t = {
  rows : dataset_row list;
  average : ((Setup.arm * float) * cell) list;
}

(* Deterministic per-(dataset, arm, eps, seed) RNG streams. *)
let run_seed ~dataset_seed ~arm ~eps ~seed =
  let tag =
    (dataset_seed * 7919)
    lxor (if arm.Setup.learnable then 101 else 202)
    lxor (if arm.Setup.variation_aware then 3030 else 4040)
    lxor int_of_float (eps *. 10_000.0)
    lxor (seed * 131)
  in
  Rng.create tag

let config_for scale arm eps =
  let base = scale.Setup.config in
  let base = Pnn.Config.with_learnable base arm.Setup.learnable in
  Pnn.Config.with_epsilon base (if arm.Setup.variation_aware then eps else 0.0)

let init_tag = function `Centered -> "centered" | `Random_sign -> "random_sign"

(* Content address of one (dataset, seed, arm) training cell: everything the
   run reads — the frozen surrogate, the resolved config (which encodes arm
   and ε), the dataset identity and both seed layers.  [run_seed]'s stream
   tag is derived from the same inputs, so the key covers it. *)
let raw_cell_key ~kind ~surrogate_digest ~config ~dataset ~dataset_seed ~seed
    ~init =
  Cache.key ~schema:(Pnn.Serialize.cache_schema ()) ~kind
    [
      surrogate_digest;
      Pnn.Serialize.config_line config;
      dataset;
      string_of_int dataset_seed;
      string_of_int seed;
      init_tag init;
    ]

let cell_key ~surrogate_digest ~config ~dataset ~dataset_seed ~seed ~init =
  raw_cell_key ~kind:"t2cell" ~surrogate_digest ~config ~dataset ~dataset_seed
    ~seed ~init

let surrogate_digest surrogate =
  Cache.digest_lines (Surrogate.Model.to_lines surrogate)

let checkpoint_for cache ~checkpoints ~checkpoint_every ~interrupt_after ~key =
  if not checkpoints then None
  else
    match Cache.member_path cache ~kind:"ckpt" ~key with
    | None -> None
    | Some path ->
        Some
          {
            Pnn.Training.ckpt_path = path;
            every = checkpoint_every;
            resume = true;
            interrupt_after;
          }

(* the per-seed train/validation/test split, shared by every arm so the arm
   comparison is fair; a function of (dataset identity, seed) only, so any
   process can reproduce it *)
let split_for (data : Datasets.Synth.t) ~seed =
  let dataset_seed = data.Datasets.Synth.spec.Datasets.Synth.seed in
  Datasets.Synth.split (Rng.create (dataset_seed + seed)) data

(* One memoized training cell — the unit of work the multi-process
   orchestrator distributes, so everything here (the key, the RNG stream
   derivation, the checkpoint placement) must stay a pure function of the
   named inputs. *)
let train_cell ?pool ?(cache = Cache.disabled ()) ?(checkpoints = false)
    ?(checkpoint_every = 50) ?interrupt_after ~digest ~scale ~surrogate
    ~dataset ~dataset_seed ~n_classes ~seed ~split ~arm ~eps () =
  let pool = match pool with Some p -> p | None -> Parallel.get_pool () in
  let config = config_for scale arm eps in
  let key =
    cell_key ~surrogate_digest:digest ~config ~dataset ~dataset_seed ~seed
      ~init:scale.Setup.init
  in
  Cache.memoize cache ~kind:"t2cell" ~key ~encode:Pnn.Training.result_lines
    ~decode:(Pnn.Training.result_of_lines surrogate)
    (fun () ->
      let rng = run_seed ~dataset_seed ~arm ~eps ~seed in
      let checkpoint =
        checkpoint_for cache ~checkpoints ~checkpoint_every ~interrupt_after
          ~key
      in
      let r =
        Pnn.Training.train_fresh ~pool ~init:scale.Setup.init ?checkpoint rng
          config surrogate ~n_classes split
      in
      (* the completed result supersedes any in-progress checkpoint *)
      (match checkpoint with
      | Some c -> (
          try Sys.remove c.Pnn.Training.ckpt_path with Sys_error _ -> ())
      | None -> ());
      r)

(* Train one arm for every seed and keep the best model by validation loss.
   The per-seed runs are independent (each derives its own RNG stream from
   [run_seed]) and fan out over the pool; the best-of fold below stays in
   seed order, so the selection is identical for any worker count. *)
let train_best ?pool ?(cache = Cache.disabled ()) ?(checkpoints = false)
    ?digest scale surrogate ~dataset ~dataset_seed ~n_classes ~splits arm eps =
  let pool = match pool with Some p -> p | None -> Parallel.get_pool () in
  let digest =
    match digest with Some d -> d | None -> surrogate_digest surrogate
  in
  let candidates =
    Parallel.Pool.map_list pool
      (fun (seed, split) ->
        let result =
          train_cell ~pool ~cache ~checkpoints ~digest ~scale ~surrogate
            ~dataset ~dataset_seed ~n_classes ~seed ~split ~arm ~eps ()
        in
        (result, split))
      splits
  in
  List.fold_left
    (fun acc (result, split) ->
      match acc with
      | Some (best, _) when best.Pnn.Training.val_loss <= result.Pnn.Training.val_loss ->
          acc
      | _ -> Some (result, split))
    None candidates

let evaluate ?pool ?(cache = Cache.disabled ()) scale ~dataset_seed network
    ~epsilon ~(split : Datasets.Synth.split) =
  let rng = Rng.create ((dataset_seed * 31) + int_of_float (epsilon *. 1e4) + 5) in
  let eval_cache =
    if not (Cache.enabled cache) then None
    else
      Some
        ( cache,
          Cache.key ~schema:(Pnn.Serialize.cache_schema ()) ~kind:"mceval"
            [
              Pnn.Serialize.digest network;
              Printf.sprintf "%h" epsilon;
              string_of_int scale.Setup.n_mc_test;
              string_of_int dataset_seed;
              Cache.digest_lines
                [ Pnn.Serialize.tensor_line split.Datasets.Synth.x_test ];
              Cache.digest_lines
                (List.map string_of_int
                   (Array.to_list split.Datasets.Synth.y_test));
            ] )
  in
  let r =
    Pnn.Evaluation.mc_accuracy ?pool ?cache:eval_cache rng network ~epsilon
      ~n:scale.Setup.n_mc_test ~x:split.Datasets.Synth.x_test
      ~y:split.Datasets.Synth.y_test
  in
  { mean = r.Pnn.Evaluation.mean_accuracy; std = r.Pnn.Evaluation.std_accuracy }

let run_dataset ?pool ?cache ?checkpoints ?digest ?(progress = fun _ -> ())
    scale surrogate (data : Datasets.Synth.t) =
  let spec = data.Datasets.Synth.spec in
  let n_classes = spec.Datasets.Synth.classes in
  let dataset_seed = spec.Datasets.Synth.seed in
  let dataset = spec.Datasets.Synth.name in
  let cache = match cache with Some c -> c | None -> Cache.disabled () in
  let digest =
    match digest with Some d -> d | None -> surrogate_digest surrogate
  in
  (* one split per seed, shared by all arms for a fair comparison *)
  let splits =
    List.map (fun seed -> (seed, split_for data ~seed)) scale.Setup.seeds
  in
  let train_best arm eps =
    train_best ?pool ~cache ?checkpoints ~digest scale surrogate ~dataset
      ~dataset_seed ~n_classes ~splits arm eps
  in
  let cells =
    List.concat_map
      (fun arm ->
        if arm.Setup.variation_aware then
          List.map
            (fun eps ->
              progress
                (Printf.sprintf "%s %s eps=%g" spec.Datasets.Synth.name
                   (Setup.arm_name arm) eps);
              match train_best arm eps with
              | Some (result, split) ->
                  ( (arm, eps),
                    evaluate ?pool ~cache scale ~dataset_seed
                      result.Pnn.Training.network ~epsilon:eps ~split )
              | None -> assert false)
            scale.Setup.test_epsilons
        else begin
          progress
            (Printf.sprintf "%s %s" spec.Datasets.Synth.name (Setup.arm_name arm));
          match train_best arm 0.0 with
          | Some (result, split) ->
              List.map
                (fun eps ->
                  ( (arm, eps),
                    evaluate ?pool ~cache scale ~dataset_seed
                      result.Pnn.Training.network ~epsilon:eps ~split ))
                scale.Setup.test_epsilons
          | None -> assert false
        end)
      Setup.arms
  in
  { dataset = spec.Datasets.Synth.name; cells }

let column_keys scale =
  List.concat_map
    (fun arm -> List.map (fun eps -> (arm, eps)) scale.Setup.test_epsilons)
    Setup.arms

let run ?pool ?cache ?checkpoints ?progress ?datasets scale surrogate =
  let datasets =
    match datasets with Some d -> d | None -> Datasets.Bench13.load_all ()
  in
  let cache = match cache with Some c -> c | None -> Cache.get_default () in
  let digest = surrogate_digest surrogate in
  let rows =
    List.map
      (run_dataset ?pool ~cache ?checkpoints ~digest ?progress scale surrogate)
      datasets
  in
  let average =
    List.map
      (fun key ->
        let means = List.map (fun r -> (List.assoc key r.cells).mean) rows in
        let stds = List.map (fun r -> (List.assoc key r.cells).std) rows in
        let avg l = List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l) in
        (key, { mean = avg means; std = avg stds }))
      (column_keys scale)
  in
  { rows; average }

let cell_of t ~dataset ~arm ~epsilon =
  let row = List.find (fun r -> r.dataset = dataset) t.rows in
  List.assoc (arm, epsilon) row.cells

let average_of t ~arm ~epsilon = List.assoc (arm, epsilon) t.average

let ordered_keys t =
  match t.rows with
  | [] -> List.map fst t.average
  | r :: _ -> List.map fst r.cells

(* Paper column order: fixed/nominal, fixed/va, learnable/nominal,
   learnable/va — each at 5 % and 10 %. *)
let paper_order (a : Setup.arm * float) (b : Setup.arm * float) =
  let rank (arm, eps) =
    ( (if arm.Setup.learnable then 1 else 0),
      (if arm.Setup.variation_aware then 1 else 0),
      eps )
  in
  let la, va, ea = rank a and lb, vb, eb = rank b in
  let c = Int.compare la lb in
  if c <> 0 then c
  else
    let c = Int.compare va vb in
    if c <> 0 then c else Float.compare ea eb

let render t =
  let keys = List.sort paper_order (ordered_keys t) in
  let header =
    "Dataset"
    :: List.map
         (fun (arm, eps) ->
           Printf.sprintf "%s@%g%%" (Setup.arm_name arm) (eps *. 100.0))
         keys
  in
  let data_rows =
    List.map
      (fun r ->
        r.dataset
        :: List.map
             (fun key ->
               let c = List.assoc key r.cells in
               Report.cell c.mean c.std)
             keys)
      t.rows
  in
  let avg_row =
    "Average"
    :: List.map
         (fun key ->
           let c = List.assoc key t.average in
           Report.cell c.mean c.std)
         keys
  in
  Report.table ~header ~rows:(data_rows @ [ avg_row ])

let to_csv_rows t =
  let keys = List.sort paper_order (ordered_keys t) in
  let header =
    "dataset"
    :: List.concat_map
         (fun (arm, eps) ->
           let base = Printf.sprintf "%s@%g" (Setup.arm_name arm) (eps *. 100.0) in
           [ base ^ "_mean"; base ^ "_std" ])
         keys
  in
  let rows =
    List.map
      (fun r ->
        r.dataset
        :: List.concat_map
             (fun key ->
               let c = List.assoc key r.cells in
               [ Printf.sprintf "%.4f" c.mean; Printf.sprintf "%.4f" c.std ])
             keys)
      t.rows
  in
  (header, rows)
