(** Reproduction of Table II: accuracy ± std on the 13 benchmark datasets for
    {non-learnable, learnable} × {nominal, variation-aware} training, tested
    under 5 % and 10 % component variation.

    Per (dataset, arm): one pNN is trained per seed, the best model w.r.t.
    validation loss is selected (paper §IV-C), and the selected model is
    evaluated with [n_mc_test] Monte-Carlo variation draws on the test set;
    the cell reports the mean ± std over those draws.  Nominal arms are
    trained once and tested at every ε; variation-aware arms are trained at
    each ε and tested at the same ε. *)

type cell = { mean : float; std : float }

type dataset_row = {
  dataset : string;
  cells : ((Setup.arm * float) * cell) list;  (** keyed by (arm, test ε) *)
}

type t = {
  rows : dataset_row list;
  average : ((Setup.arm * float) * cell) list;  (** column averages *)
}

val run :
  ?pool:Parallel.Pool.t ->
  ?cache:Cache.t ->
  ?checkpoints:bool ->
  ?progress:(string -> unit) ->
  ?datasets:Datasets.Synth.t list ->
  Setup.scale ->
  Surrogate.Model.t ->
  t
(** Defaults to all 13 benchmark datasets.

    Per-seed trainings fan out over [pool] (default: the shared
    {!Parallel.get_pool}) and every reduction is in fixed seed/draw order, so
    the table is bit-identical for any worker count.

    [cache] (default {!Cache.get_default}) memoizes each (dataset, seed, arm)
    training cell and each Monte-Carlo evaluation; hits are bit-identical to
    the computes they replace, so a warm run reproduces the cold table
    exactly.  With [checkpoints = true] (and an enabled cache) each in-flight
    training writes periodic {!Pnn.Training.checkpoint}s inside the cache
    tree and resumes from them after an interruption; a cell's checkpoint is
    deleted once its result lands in the cache. *)

(** {1 Cell-level building blocks}

    The orchestrator distributes Table II work one training cell at a time, so
    the key derivation, the per-seed split and the memoized training step are
    exposed as pure functions of their named inputs: any process computing the
    same cell arrives at the same cache entry. *)

val config_for : Setup.scale -> Setup.arm -> float -> Pnn.Config.t
(** The resolved training config of one (arm, train ε) column. *)

val surrogate_digest : Surrogate.Model.t -> string
(** Content digest of the frozen surrogate, folded into every cell key. *)

val cell_key :
  surrogate_digest:string ->
  config:Pnn.Config.t ->
  dataset:string ->
  dataset_seed:int ->
  seed:int ->
  init:[ `Centered | `Random_sign ] ->
  string
(** The content address of one (dataset, seed, arm) training cell — exactly
    the key {!run} uses, so externally computed cells are cache hits. *)

val split_for : Datasets.Synth.t -> seed:int -> Datasets.Synth.split
(** The per-seed train/validation/test split shared by every arm. *)

val train_cell :
  ?pool:Parallel.Pool.t ->
  ?cache:Cache.t ->
  ?checkpoints:bool ->
  ?checkpoint_every:int ->
  ?interrupt_after:int ->
  digest:string ->
  scale:Setup.scale ->
  surrogate:Surrogate.Model.t ->
  dataset:string ->
  dataset_seed:int ->
  n_classes:int ->
  seed:int ->
  split:Datasets.Synth.split ->
  arm:Setup.arm ->
  eps:float ->
  unit ->
  Pnn.Training.result
(** One memoized training cell, keyed with {!cell_key}.  [checkpoint_every]
    (default 50 epochs) sets the checkpoint cadence when [checkpoints] is on;
    [interrupt_after] raises {!Pnn.Training.Interrupted} once that many
    epochs have completed (after any due checkpoint write) — the
    crash-injection hook the orchestrator's kill-recovery tests use. *)

val cell_of : t -> dataset:string -> arm:Setup.arm -> epsilon:float -> cell
(** Raises [Not_found]. *)

val average_of : t -> arm:Setup.arm -> epsilon:float -> cell

val render : t -> string
(** The paper's Table II layout (8 result columns). *)

val to_csv_rows : t -> string list * string list list
(** (header, rows) for CSV export. *)
