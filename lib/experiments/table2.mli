(** Reproduction of Table II: accuracy ± std on the 13 benchmark datasets for
    {non-learnable, learnable} × {nominal, variation-aware} training, tested
    under 5 % and 10 % component variation.

    Per (dataset, arm): one pNN is trained per seed, the best model w.r.t.
    validation loss is selected (paper §IV-C), and the selected model is
    evaluated with [n_mc_test] Monte-Carlo variation draws on the test set;
    the cell reports the mean ± std over those draws.  Nominal arms are
    trained once and tested at every ε; variation-aware arms are trained at
    each ε and tested at the same ε. *)

type cell = { mean : float; std : float }

type dataset_row = {
  dataset : string;
  cells : ((Setup.arm * float) * cell) list;  (** keyed by (arm, test ε) *)
}

type t = {
  rows : dataset_row list;
  average : ((Setup.arm * float) * cell) list;  (** column averages *)
}

val run :
  ?pool:Parallel.Pool.t ->
  ?cache:Cache.t ->
  ?checkpoints:bool ->
  ?progress:(string -> unit) ->
  ?datasets:Datasets.Synth.t list ->
  Setup.scale ->
  Surrogate.Model.t ->
  t
(** Defaults to all 13 benchmark datasets.

    Per-seed trainings fan out over [pool] (default: the shared
    {!Parallel.get_pool}) and every reduction is in fixed seed/draw order, so
    the table is bit-identical for any worker count.

    [cache] (default {!Cache.get_default}) memoizes each (dataset, seed, arm)
    training cell and each Monte-Carlo evaluation; hits are bit-identical to
    the computes they replace, so a warm run reproduces the cold table
    exactly.  With [checkpoints = true] (and an enabled cache) each in-flight
    training writes periodic {!Pnn.Training.checkpoint}s inside the cache
    tree and resumes from them after an interruption; a cell's checkpoint is
    deleted once its result lands in the cache. *)

val cell_of : t -> dataset:string -> arm:Setup.arm -> epsilon:float -> cell
(** Raises [Not_found]. *)

val average_of : t -> arm:Setup.arm -> epsilon:float -> cell

val render : t -> string
(** The paper's Table II layout (8 result columns). *)

val to_csv_rows : t -> string list * string list list
(** (header, rows) for CSV export. *)
