type t = {
  dataset : string;
  epsilon : float;
  train_arms : string list;
  test_families : string list;
  grid : ((string * string) * Pnn.Evaluation.mc_result) list;
  defect_sweep : (string * (float * Pnn.Evaluation.mc_result) list) list;
  sigma_sweep : (string * (float * Pnn.Evaluation.mc_result) list) list;
}

(* The four fault families at a comparable severity: uniform at the paper's
   full ε, gaussian/correlated at ε/2 (a lognormal σ produces heavier tails
   than the bounded uniform at the same magnitude), defects at a fixed
   4 % total failure rate. *)
let families epsilon =
  [
    ("uniform", Pnn.Variation.Uniform epsilon);
    ("gaussian", Pnn.Variation.Gaussian (epsilon /. 2.0));
    ( "correlated",
      Pnn.Variation.Correlated { global = epsilon /. 2.0; local = epsilon /. 2.0 } );
    ("defects", Pnn.Variation.Defects { p_open = 0.03; p_short = 0.01 });
  ]

let train_arms epsilon =
  ("nominal", None) :: List.map (fun (n, m) -> (n, Some m)) (families epsilon)

let defect_rates = [ 0.0; 0.01; 0.02; 0.05; 0.10 ]
let sigmas = [ 0.0; 0.025; 0.05; 0.10; 0.20 ]

(* Deterministic per-(arm, seed) / per-(arm, evaluation) RNG streams, same
   arithmetic-tag scheme as {!Table2.run_seed}. *)
let train_rng ~arm_idx ~seed = Rng.create ((arm_idx * 7907) lxor (seed * 131) lxor 5557)
let eval_rng ~arm_idx ~test_idx = Rng.create ((arm_idx * 101) lxor (test_idx * 9176) lxor 33)

(* Canonical fault-model descriptor folded into cache keys: the family alone
   is not enough, the parameters change both training and evaluation. *)
let rec model_desc = function
  | Pnn.Variation.Uniform e -> Printf.sprintf "uniform:%h" e
  | Pnn.Variation.Gaussian s -> Printf.sprintf "gaussian:%h" s
  | Pnn.Variation.Correlated { global; local } ->
      Printf.sprintf "correlated:%h:%h" global local
  | Pnn.Variation.Defects { p_open; p_short } ->
      Printf.sprintf "defects:%h:%h" p_open p_short
  | Pnn.Variation.Aging { kappa_max; beta; t_frac } ->
      Printf.sprintf "aging:%h:%h:%s" kappa_max beta
        (match t_frac with None -> "-" | Some t -> Printf.sprintf "%h" t)
  | Pnn.Variation.Compose models ->
      Printf.sprintf "compose[%s]" (String.concat ";" (List.map model_desc models))

let model_tag = function None -> "nominal" | Some m -> model_desc m

(* the per-seed split, shared by all arms; a function of the seed only (the
   dataset is fixed per run), so any process can reproduce it *)
let split_for (data : Datasets.Synth.t) ~seed =
  Datasets.Synth.split (Rng.create (seed + 700)) data

let init_name = function `Centered -> "centered" | `Random_sign -> "random_sign"

(* [train_rng]'s tag covers (arm_idx, seed); the key carries both plus the
   model descriptor, so arms sharing a config never collide. *)
let cell_key ~surrogate_digest ~scale ~dataset ~arm_idx ~model ~seed =
  Cache.key ~schema:(Pnn.Serialize.cache_schema ()) ~kind:"faultcell"
    [
      surrogate_digest;
      Pnn.Serialize.config_line scale.Setup.config;
      dataset;
      string_of_int arm_idx;
      model_tag model;
      string_of_int seed;
      init_name scale.Setup.init;
    ]

(* One memoized training cell — the fault-table counterpart of
   {!Table2.train_cell}, and the unit the orchestrator distributes. *)
let train_cell ?pool ?(cache = Cache.disabled ()) ?(checkpoints = false)
    ?(checkpoint_every = 50) ?interrupt_after ~digest ~scale ~surrogate
    ~dataset ~features ~n_classes ~arm_idx ~model ~seed ~split () =
  let pool = match pool with Some p -> p | None -> Parallel.get_pool () in
  let key = cell_key ~surrogate_digest:digest ~scale ~dataset ~arm_idx ~model ~seed in
  Cache.memoize cache ~kind:"faultcell" ~key ~encode:Pnn.Training.result_lines
    ~decode:(Pnn.Training.result_of_lines surrogate)
    (fun () ->
      let rng = train_rng ~arm_idx ~seed in
      let tdata = Pnn.Training.of_split ~n_classes split in
      let network =
        Pnn.Network.create ~init:scale.Setup.init rng scale.Setup.config
          surrogate ~inputs:features ~outputs:n_classes
      in
      let checkpoint =
        if not checkpoints then None
        else
          match Cache.member_path cache ~kind:"ckpt" ~key with
          | None -> None
          | Some path ->
              Some
                {
                  Pnn.Training.ckpt_path = path;
                  every = checkpoint_every;
                  resume = true;
                  interrupt_after;
                }
      in
      let r =
        match model with
        | None -> Pnn.Training.fit ~pool ?checkpoint rng network tdata
        | Some m ->
            Pnn.Training.fit_under ~pool ?checkpoint rng ~model:m network tdata
      in
      (match checkpoint with
      | Some c -> (
          try Sys.remove c.Pnn.Training.ckpt_path with Sys_error _ -> ())
      | None -> ());
      r)

let best_of candidates =
  match candidates with
  | [] -> invalid_arg "Faults.run: no seeds"
  | first :: rest ->
      List.fold_left
        (fun (best, bsplit) (r, split) ->
          if r.Pnn.Training.val_loss < best.Pnn.Training.val_loss then (r, split)
          else (best, bsplit))
        first rest

let run ?pool ?cache ?(checkpoints = false) ?(progress = fun _ -> ())
    ?(dataset = "seeds") ?(epsilon = 0.10) scale surrogate =
  let pool = match pool with Some p -> p | None -> Parallel.get_pool () in
  let cache = match cache with Some c -> c | None -> Cache.get_default () in
  let digest = Cache.digest_lines (Surrogate.Model.to_lines surrogate) in
  let data = Datasets.Bench13.load dataset in
  let spec = data.Datasets.Synth.spec in
  let n_classes = spec.Datasets.Synth.classes in
  (* one split per seed, shared by all arms for a fair comparison *)
  let splits =
    List.map (fun seed -> (seed, split_for data ~seed)) scale.Setup.seeds
  in
  let train_one ~arm_idx model (seed, split) =
    let result =
      train_cell ~pool ~cache ~checkpoints ~digest ~scale ~surrogate ~dataset
        ~features:spec.Datasets.Synth.features ~n_classes ~arm_idx ~model ~seed
        ~split ()
    in
    (result, split)
  in
  (* Train every arm (best-of-seeds by validation loss, as Table II does). *)
  let trained =
    List.mapi
      (fun arm_idx (name, model) ->
        progress (Printf.sprintf "%s train %s" dataset name);
        let result, split = best_of (List.map (train_one ~arm_idx model) splits) in
        (name, arm_idx, result.Pnn.Training.network, split))
      (train_arms epsilon)
  in
  let evaluate ~arm_idx ~test_idx network (split : Datasets.Synth.split) model =
    (* arm_idx and test_idx determine the evaluation stream ([eval_rng]), so
       both belong in the key alongside the content inputs. *)
    let eval_cache =
      if not (Cache.enabled cache) then None
      else
        Some
          ( cache,
            Cache.key ~schema:(Pnn.Serialize.cache_schema ()) ~kind:"mceval"
              [
                Pnn.Serialize.digest network;
                model_tag (Some model);
                string_of_int arm_idx;
                string_of_int test_idx;
                string_of_int scale.Setup.n_mc_test;
                Cache.digest_lines
                  [ Pnn.Serialize.tensor_line split.Datasets.Synth.x_test ];
                Cache.digest_lines
                  (List.map string_of_int
                     (Array.to_list split.Datasets.Synth.y_test));
              ] )
    in
    Pnn.Evaluation.mc_result_under ~pool ?cache:eval_cache
      (eval_rng ~arm_idx ~test_idx)
      network ~model ~n:scale.Setup.n_mc_test ~x:split.Datasets.Synth.x_test
      ~y:split.Datasets.Synth.y_test
  in
  (* Table III-style mismatch grid: every trained arm under every family. *)
  let grid =
    List.concat_map
      (fun (train_name, arm_idx, network, split) ->
        progress (Printf.sprintf "%s grid %s" dataset train_name);
        List.mapi
          (fun test_idx (test_name, model) ->
            ((train_name, test_name), evaluate ~arm_idx ~test_idx network split model))
          (families epsilon))
      trained
  in
  (* Severity sweeps: defect rate and gaussian σ, per trained arm. *)
  let sweep ~base models =
    List.map
      (fun (train_name, arm_idx, network, split) ->
        progress (Printf.sprintf "%s sweep %s" dataset train_name);
        ( train_name,
          List.mapi
            (fun i (param, model) ->
              (param, evaluate ~arm_idx ~test_idx:(base + i) network split model))
            models ))
      trained
  in
  let defect_sweep =
    sweep ~base:100
      (List.map
         (fun p -> (p, Pnn.Variation.Defects { p_open = p /. 2.0; p_short = p /. 2.0 }))
         defect_rates)
  in
  let sigma_sweep =
    sweep ~base:200 (List.map (fun s -> (s, Pnn.Variation.Gaussian s)) sigmas)
  in
  {
    dataset;
    epsilon;
    train_arms = List.map (fun (n, _) -> n) (train_arms epsilon);
    test_families = List.map fst (families epsilon);
    grid;
    defect_sweep;
    sigma_sweep;
  }

let render t =
  let grid_table =
    let header = "train \\ test" :: t.test_families in
    let rows =
      List.map
        (fun train ->
          train
          :: List.map
               (fun test ->
                 let r = List.assoc (train, test) t.grid in
                 Report.cell r.Pnn.Evaluation.mean r.Pnn.Evaluation.std)
               t.test_families)
        t.train_arms
    in
    Report.table ~header ~rows
  in
  let sweep_table label params sweep =
    let header = "train" :: List.map (fun p -> Printf.sprintf "%g" p) params in
    let rows =
      List.map
        (fun (train, points) ->
          train
          :: List.map
               (fun (_, r) -> Report.cell r.Pnn.Evaluation.mean r.Pnn.Evaluation.std)
               points)
        sweep
    in
    Printf.sprintf "%s\n%s" label (Report.table ~header ~rows)
  in
  Printf.sprintf
    "Fault injection (%s, eps=%g%%): train-model x test-model accuracy\n%s\n%s\n%s"
    t.dataset (t.epsilon *. 100.0) grid_table
    (sweep_table "Accuracy vs total defect rate (p_open = p_short = p/2)"
       defect_rates t.defect_sweep)
    (sweep_table "Accuracy vs gaussian sigma" sigmas t.sigma_sweep)

let to_csv_rows t =
  let header =
    [
      "kind"; "train_model"; "test_model"; "param"; "mean"; "std"; "min"; "q05";
      "median"; "q95";
    ]
  in
  let row ~kind ~train ~test ~param (r : Pnn.Evaluation.mc_result) =
    [
      kind; train; test; param;
      Printf.sprintf "%.4f" r.Pnn.Evaluation.mean;
      Printf.sprintf "%.4f" r.Pnn.Evaluation.std;
      Printf.sprintf "%.4f" r.Pnn.Evaluation.min;
      Printf.sprintf "%.4f" r.Pnn.Evaluation.q05;
      Printf.sprintf "%.4f" r.Pnn.Evaluation.median;
      Printf.sprintf "%.4f" r.Pnn.Evaluation.q95;
    ]
  in
  let grid_rows =
    List.map
      (fun ((train, test), r) ->
        row ~kind:"grid" ~train ~test ~param:(Printf.sprintf "%g" t.epsilon) r)
      t.grid
  in
  let sweep_rows ~kind ~test sweep =
    List.concat_map
      (fun (train, points) ->
        List.map
          (fun (param, r) ->
            row ~kind ~train ~test ~param:(Printf.sprintf "%g" param) r)
          points)
      sweep
  in
  ( header,
    grid_rows
    @ sweep_rows ~kind:"defect_sweep" ~test:"defects" t.defect_sweep
    @ sweep_rows ~kind:"sigma_sweep" ~test:"gaussian" t.sigma_sweep )
