(** Tape-based reverse-mode automatic differentiation over {!Tensor.t}.

    Building expressions with the functions below records a computation graph;
    {!backward} then accumulates gradients of a scalar root into every node
    that can reach a {!param} leaf.  Leaves created with {!param} are the
    trainable tensors (crossbar conductances θ, nonlinear-circuit parameters
    𝔴, MLP weights); leaves created with {!const} are data or frozen values
    and receive no gradient traffic at all: subgraphs built only from consts
    (e.g. a frozen surrogate MLP's weight branches) are skipped entirely
    during backward, and their gradients read as zeros.

    Gradient buffers are allocated lazily (on first accumulation or first
    {!grad} read) and zeroed in place on subsequent passes; backward
    temporaries live in per-node scratch buffers reused across passes.
    Repeated {!backward} calls over the same graph therefore allocate
    nothing beyond the first pass.

    A graph can also be {e reused} with new leaf contents: update leaves
    with {!set_value} (or mutate a {!param}'s tensor in place), then
    {!refresh} a {!compile}d tape to re-run the forward pass in place and
    {!backward_tape} to backpropagate — both bit-identical to rebuilding
    the graph from scratch.

    The straight-through-estimator entry points ({!clamp_ste}, {!map_ste})
    implement the projection technique the paper uses to keep conductances in
    the printable range: the forward pass applies an arbitrary projection, the
    backward pass is the identity. *)

type t

(** {1 Leaves and inspection} *)

val param : Tensor.t -> t
(** Trainable leaf; [value] is used directly (not copied), so optimizers can
    update it in place between graph constructions. *)

val const : Tensor.t -> t
(** Non-trainable leaf (inputs, labels, frozen weights, noise draws). *)

val scalar : float -> t
val value : t -> Tensor.t

val grad : t -> Tensor.t
(** Gradient accumulated by the last {!backward}; zeros before that (and
    always zeros for nodes not reaching a {!param}).  Returns the node's
    {e live} accumulation buffer — copy it before the next backward pass if
    you need to keep the values. *)

val is_param : t -> bool
val zero_grad : t -> unit

val set_value : t -> Tensor.t -> unit
(** [set_value leaf t] copies [t] into the leaf's value buffer (shape
    checked); raises [Invalid_argument] on interior (op) nodes.  Used to
    feed new inputs/noise draws into a reused graph before {!refresh}. *)

val id : t -> int
(** Unique per-node identifier (stable for the lifetime of the node); used by
    optimizers to key per-parameter state. *)

(** {1 Arithmetic} *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
(** Hadamard product. *)

val div : t -> t -> t
val neg : t -> t
val scale : float -> t -> t
val add_scalar : float -> t -> t
val pow_const : t -> float -> t

(** {1 Nonlinearities} *)

val tanh : t -> t
val sigmoid : t -> t
val exp : t -> t
val log : t -> t
val sqrt : t -> t
val relu : t -> t
val abs : t -> t
(** Subgradient 0 at 0. *)

(** {1 Linear algebra and broadcasting} *)

val matmul : t -> t -> t
val transpose : t -> t
val add_rowvec : t -> t -> t
(** [add_rowvec m v] adds a [1 × cols] vector to each row of [m]. *)

val dense : ?op:Tensor.unop -> t -> t -> t -> t
(** [dense ?op x w b] is the fused dense-layer forward
    [unop (x·w +rowvec b)] as a single node — bit-identical (values and
    gradients) to [unary_op (add_rowvec (matmul x w) b)], but forwarded
    through the backend's fused kernel when one is available and with one
    node's worth of tape/dispatch overhead instead of three.  With [op]
    absent, no nonlinearity is applied. *)

val mul_rowvec : t -> t -> t
val div_rowvec : t -> t -> t
(** [div_rowvec m v] divides each row of [m] elementwise by [v]. *)

val badd : t -> t -> t
(** [badd s m] broadcast-adds a [1 × 1] scalar node to every entry of [m];
    the scalar's gradient is the sum of the incoming gradients. *)

val bmul : t -> t -> t
(** [bmul s m] broadcast-multiplies every entry of [m] by a [1 × 1] scalar
    node. *)

(** {1 Reductions} *)

val sum : t -> t
(** Scalar [1 × 1] sum of all entries. *)

val mean : t -> t
val sum_rows : t -> t
(** Column-wise sums: [1 × cols]. *)

(** {1 Structure} *)

val concat_cols : t -> t -> t
val concat_rows : t -> t -> t
(** Vertical stacking; gradients split back to the two blocks.  Lets
    independent row-batches (e.g. the act/neg circuit parameter rows of one
    pNN layer) share a single surrogate forward pass. *)

val slice_cols : t -> int -> int -> t
(** [slice_cols v start len]; gradient scatters back into the slice. *)

val slice_rows : t -> int -> int -> t

(** {1 Straight-through estimators} *)

val clamp_ste : lo:float -> hi:float -> t -> t
(** Forward clamps to [\[lo, hi]]; backward passes gradients unchanged. *)

val map_ste : (float -> float) -> t -> t
(** Forward applies an arbitrary elementwise projection; backward identity.
    Used for the printable-conductance set
    [[-Gmax,-Gmin] ∪ {0} ∪ [Gmin,Gmax]] and the R2/R4 box clipping. *)

(** {1 Externally computed gradients} *)

val precomputed : value:Tensor.t -> (t * Tensor.t) list -> t
(** [precomputed ~value pairs] wraps a scalar [1 × 1] [value] whose gradients
    w.r.t. the given leaves were computed out-of-graph (e.g. by data-parallel
    replicas): {!backward} on (an expression containing) the node adds each
    listed gradient — scaled by the node's incoming gradient — into the
    paired leaf.  Gradient shapes must match their leaves. *)

(** {1 Losses} *)

val softmax_cross_entropy : logits:t -> labels:Tensor.t -> t
(** Mean cross-entropy between row-wise softmax of [logits] and one-hot
    [labels] (same shape). Numerically stabilized (max subtraction). *)

val mse : t -> Tensor.t -> t
(** Mean squared error against a constant target of the same shape. *)

(** {1 Backward pass} *)

val backward : t -> unit
(** [backward root] requires a [1 × 1] root; zeroes gradients of all reachable
    nodes, seeds the root gradient with 1 and back-propagates. *)

val params : t -> t list
(** All distinct {!param} leaves reachable from the node, in creation order. *)

(** {1 Graph reuse}

    A {!tape} caches the topological order of the graph under a root so the
    same node structure can be run many times — once per Monte-Carlo draw and
    per epoch — without rebuilding it.  The protocol is: mutate leaf values
    ({!set_value} on consts, in-place optimizer updates on params),
    {!refresh}, then {!backward_tape}.  Both passes write every node's
    [value]/[grad] buffer in place and are bit-identical to building a fresh
    graph from the same leaf contents. *)

type tape

val compile : t -> tape
(** Record the topological order under [root].  The root need not be scalar
    (forward-only tapes over logits are fine); only {!backward_tape}
    requires a [1 × 1] root. *)

val refresh : tape -> unit
(** Re-run the forward pass in place, leaves first. *)

val backward_tape : tape -> unit
(** As {!backward}, but reusing the compiled order. *)
