(** Tape-based reverse-mode automatic differentiation over {!Tensor.t}.

    Building expressions with the functions below records a computation graph;
    {!backward} then accumulates gradients of a scalar root into every
    reachable node.  Leaves created with {!param} are the trainable tensors
    (crossbar conductances θ, nonlinear-circuit parameters 𝔴, MLP weights);
    leaves created with {!const} are data or frozen values and receive no
    gradient storage traffic beyond a single buffer.

    The straight-through-estimator entry points ({!clamp_ste}, {!map_ste})
    implement the projection technique the paper uses to keep conductances in
    the printable range: the forward pass applies an arbitrary projection, the
    backward pass is the identity. *)

type t

(** {1 Leaves and inspection} *)

val param : Tensor.t -> t
(** Trainable leaf; [value] is used directly (not copied), so optimizers can
    update it in place between graph constructions. *)

val const : Tensor.t -> t
(** Non-trainable leaf (inputs, labels, frozen weights, noise draws). *)

val scalar : float -> t
val value : t -> Tensor.t
val grad : t -> Tensor.t
(** Gradient accumulated by the last {!backward}; zeros before that. *)

val is_param : t -> bool
val zero_grad : t -> unit

val id : t -> int
(** Unique per-node identifier (stable for the lifetime of the node); used by
    optimizers to key per-parameter state. *)

(** {1 Arithmetic} *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
(** Hadamard product. *)

val div : t -> t -> t
val neg : t -> t
val scale : float -> t -> t
val add_scalar : float -> t -> t
val pow_const : t -> float -> t

(** {1 Nonlinearities} *)

val tanh : t -> t
val sigmoid : t -> t
val exp : t -> t
val log : t -> t
val sqrt : t -> t
val relu : t -> t
val abs : t -> t
(** Subgradient 0 at 0. *)

(** {1 Linear algebra and broadcasting} *)

val matmul : t -> t -> t
val transpose : t -> t
val add_rowvec : t -> t -> t
(** [add_rowvec m v] adds a [1 × cols] vector to each row of [m]. *)

val mul_rowvec : t -> t -> t
val div_rowvec : t -> t -> t
(** [div_rowvec m v] divides each row of [m] elementwise by [v]. *)

val badd : t -> t -> t
(** [badd s m] broadcast-adds a [1 × 1] scalar node to every entry of [m];
    the scalar's gradient is the sum of the incoming gradients. *)

val bmul : t -> t -> t
(** [bmul s m] broadcast-multiplies every entry of [m] by a [1 × 1] scalar
    node. *)

(** {1 Reductions} *)

val sum : t -> t
(** Scalar [1 × 1] sum of all entries. *)

val mean : t -> t
val sum_rows : t -> t
(** Column-wise sums: [1 × cols]. *)

(** {1 Structure} *)

val concat_cols : t -> t -> t
val slice_cols : t -> int -> int -> t
(** [slice_cols v start len]; gradient scatters back into the slice. *)

val slice_rows : t -> int -> int -> t

(** {1 Straight-through estimators} *)

val clamp_ste : lo:float -> hi:float -> t -> t
(** Forward clamps to [\[lo, hi]]; backward passes gradients unchanged. *)

val map_ste : (float -> float) -> t -> t
(** Forward applies an arbitrary elementwise projection; backward identity.
    Used for the printable-conductance set
    [[-Gmax,-Gmin] ∪ {0} ∪ [Gmin,Gmax]] and the R2/R4 box clipping. *)

(** {1 Externally computed gradients} *)

val precomputed : value:Tensor.t -> (t * Tensor.t) list -> t
(** [precomputed ~value pairs] wraps a scalar [1 × 1] [value] whose gradients
    w.r.t. the given leaves were computed out-of-graph (e.g. by data-parallel
    replicas): {!backward} on (an expression containing) the node adds each
    listed gradient — scaled by the node's incoming gradient — into the
    paired leaf.  Gradient shapes must match their leaves. *)

(** {1 Losses} *)

val softmax_cross_entropy : logits:t -> labels:Tensor.t -> t
(** Mean cross-entropy between row-wise softmax of [logits] and one-hot
    [labels] (same shape). Numerically stabilized (max subtraction). *)

val mse : t -> Tensor.t -> t
(** Mean squared error against a constant target of the same shape. *)

(** {1 Backward pass} *)

val backward : t -> unit
(** [backward root] requires a [1 × 1] root; zeroes gradients of all reachable
    nodes, seeds the root gradient with 1 and back-propagates. *)

val params : t -> t list
(** All distinct {!param} leaves reachable from the node, in creation order. *)
