module T = Tensor

type t = {
  id : int;
  value : T.t;
  (* pnnlint:allow R7 tape nodes are confined to the domain that built the
     tape; parallel training replicates tapes per worker (see Network.copy) *)
  mutable grad : T.t option; (* allocated lazily, zeroed in place *)
  parents : t list;
  push : t -> unit; (* propagate self's grad into parents' grads *)
  recompute : t -> unit; (* refresh [value] in place from parents' values *)
  kind : kind;
  needs_grad : bool; (* reachable from a Param leaf? *)
}

and kind = Param | Const | Op

(* Atomic: graphs are built concurrently by worker domains (one replica
   network per Monte-Carlo draw); ids must stay unique across domains. *)
let counter = Atomic.make 0
let next_id () = Atomic.fetch_and_add counter 1 + 1

let no_push _ = ()
let no_recompute _ = ()

let leaf kind value =
  {
    id = next_id ();
    value;
    grad = None;
    parents = [];
    push = no_push;
    recompute = no_recompute;
    kind;
    needs_grad = kind = Param;
  }

let param value = leaf Param value
let const value = leaf Const value
let scalar v = const (T.scalar v)
let value n = n.value
let is_param n = n.kind = Param
let id n = n.id

let grad_buffer n =
  match n.grad with
  | Some g -> g
  | None ->
      let g = T.zeros_as n.value (T.rows n.value) (T.cols n.value) in
      n.grad <- Some g;
      g

let grad n = grad_buffer n
let zero_grad n = match n.grad with Some g -> T.fill g 0.0 | None -> ()

let set_value n t =
  if n.kind = Op then invalid_arg "Autodiff.set_value: node is not a leaf";
  if T.shape t <> T.shape n.value then
    invalid_arg "Autodiff.set_value: shape mismatch";
  T.blit ~src:t ~dst:n.value

let node ?(recompute = no_recompute) value parents push =
  {
    id = next_id ();
    value;
    grad = None;
    parents;
    push;
    recompute;
    kind = Op;
    needs_grad = List.exists (fun p -> p.needs_grad) parents;
  }

(* First accumulation lands on a freshly zeroed buffer, so [0.0 +. x]
   reproduces the old [T.add zeros g] bit-for-bit (including -0.0 -> +0.0). *)
let accum p g =
  if p.needs_grad then begin
    let dst = grad_buffer p in
    T.add_into dst g ~dst
  end

(* Per-node scratch buffers for backward temporaries: allocated on first
   backward, reused on every subsequent pass over the same graph.  Cells are
   captured per closure, so distinct replicas never share scratch.  [like]
   pins the scratch to an existing tensor's backend so a graph built on one
   backend never mixes storage mid-pass. *)
let scratch cell like rows cols =
  match !cell with
  | Some s -> s
  | None ->
      let s = T.zeros_as like rows cols in
      cell := Some s;
      s

let scratch_like cell t = scratch cell t (T.rows t) (T.cols t)

(* {1 Arithmetic} *)

let add a b =
  node (T.add a.value b.value) [ a; b ]
    ~recompute:(fun self -> T.add_into a.value b.value ~dst:self.value)
    (fun self ->
      if self.needs_grad then begin
        let g = grad_buffer self in
        accum a g;
        accum b g
      end)

let sub a b =
  let sc = ref None in
  node (T.sub a.value b.value) [ a; b ]
    ~recompute:(fun self -> T.sub_into a.value b.value ~dst:self.value)
    (fun self ->
      if self.needs_grad then begin
        let g = grad_buffer self in
        accum a g;
        if b.needs_grad then begin
          let s = scratch_like sc g in
          T.neg_into g ~dst:s;
          accum b s
        end
      end)

let mul a b =
  let sc = ref None in
  node (T.mul a.value b.value) [ a; b ]
    ~recompute:(fun self -> T.mul_into a.value b.value ~dst:self.value)
    (fun self ->
      if self.needs_grad then begin
        let g = grad_buffer self in
        if a.needs_grad then begin
          let s = scratch_like sc g in
          T.mul_into g b.value ~dst:s;
          accum a s
        end;
        if b.needs_grad then begin
          let s = scratch_like sc g in
          T.mul_into g a.value ~dst:s;
          accum b s
        end
      end)

let div a b =
  let s1c = ref None and s2c = ref None in
  node (T.div a.value b.value) [ a; b ]
    ~recompute:(fun self -> T.div_into a.value b.value ~dst:self.value)
    (fun self ->
      if self.needs_grad then begin
        let g = grad_buffer self in
        if a.needs_grad then begin
          let s = scratch_like s1c g in
          T.div_into g b.value ~dst:s;
          accum a s
        end;
        if b.needs_grad then begin
          (* d/db (a/b) = -a / b^2 *)
          let s1 = scratch_like s1c g in
          let s2 = scratch_like s2c g in
          T.mul_into g a.value ~dst:s1;
          T.mul_into b.value b.value ~dst:s2;
          T.div_into s1 s2 ~dst:s1;
          T.neg_into s1 ~dst:s1;
          accum b s1
        end
      end)

let neg a =
  let sc = ref None in
  node (T.neg a.value) [ a ]
    ~recompute:(fun self -> T.neg_into a.value ~dst:self.value)
    (fun self ->
      if a.needs_grad then begin
        let g = grad_buffer self in
        let s = scratch_like sc g in
        T.neg_into g ~dst:s;
        accum a s
      end)

let scale k a =
  let sc = ref None in
  node (T.scale k a.value) [ a ]
    ~recompute:(fun self -> T.scale_into k a.value ~dst:self.value)
    (fun self ->
      if a.needs_grad then begin
        let g = grad_buffer self in
        let s = scratch_like sc g in
        T.scale_into k g ~dst:s;
        accum a s
      end)

let add_scalar k a =
  node (T.add_scalar k a.value) [ a ]
    ~recompute:(fun self -> T.add_scalar_into k a.value ~dst:self.value)
    (fun self -> if a.needs_grad then accum a (grad_buffer self))

let pow_const a p =
  let sc = ref None in
  node
    (T.map (fun x -> x ** p) a.value)
    [ a ]
    ~recompute:(fun self -> T.map_into (fun x -> x ** p) a.value ~dst:self.value)
    (fun self ->
      if a.needs_grad then begin
        let g = grad_buffer self in
        let s = scratch_like sc g in
        T.map_into (fun x -> p *. (x ** (p -. 1.0))) a.value ~dst:s;
        T.mul_into g s ~dst:s;
        accum a s
      end)

(* {1 Nonlinearities}

   Each op runs the backend's dedicated [unop] kernels rather than a generic
   [map f] helper: applying a [float -> float] closure per element boxes its
   argument and result on the minor heap, which dominated the training hot
   path's allocation profile.  The backend's backward kernel fuses
   [g *. df x y] in one expression — bitwise identical to the former
   [map2_into df; mul_into g] pair (same operations, same order). *)

let unary_spec ~op a =
  let sc = ref None in
  let v = T.zeros_as a.value (T.rows a.value) (T.cols a.value) in
  T.unop_into op a.value ~dst:v;
  node v [ a ]
    ~recompute:(fun self -> T.unop_into op a.value ~dst:self.value)
    (fun self ->
      if a.needs_grad then begin
        let g = grad_buffer self in
        let s = scratch_like sc g in
        T.unop_bwd_into op ~x:a.value ~y:self.value ~g ~dst:s;
        accum a s
      end)

let tanh a = unary_spec ~op:T.Tanh a
let sigmoid a = unary_spec ~op:T.Sigmoid a
let exp a = unary_spec ~op:T.Exp a
let log a = unary_spec ~op:T.Log a
let sqrt a = unary_spec ~op:T.Sqrt a
let relu a = unary_spec ~op:T.Relu a
let abs a = unary_spec ~op:T.Abs a

(* {1 Linear algebra} *)

let matmul a b =
  let sa = ref None and st = ref None and sb = ref None in
  node (T.matmul a.value b.value) [ a; b ]
    ~recompute:(fun self -> T.matmul_into a.value b.value ~dst:self.value)
    (fun self ->
      if self.needs_grad then begin
        let g = grad_buffer self in
        if a.needs_grad then begin
          let s = scratch_like sa a.value in
          T.matmul_nt_into g b.value ~dst:s;
          accum a s
        end;
        if b.needs_grad then begin
          let at = scratch st a.value (T.cols a.value) (T.rows a.value) in
          T.transpose_into a.value ~dst:at;
          let s = scratch_like sb b.value in
          T.matmul_into at g ~dst:s;
          accum b s
        end
      end)

let transpose a =
  let sc = ref None in
  node (T.transpose a.value) [ a ]
    ~recompute:(fun self -> T.transpose_into a.value ~dst:self.value)
    (fun self ->
      if a.needs_grad then begin
        let g = grad_buffer self in
        let s = scratch_like sc a.value in
        T.transpose_into g ~dst:s;
        accum a s
      end)

let add_rowvec m v =
  let sv = ref None in
  node (T.add_rowvec m.value v.value) [ m; v ]
    ~recompute:(fun self -> T.add_rowvec_into m.value v.value ~dst:self.value)
    (fun self ->
      if self.needs_grad then begin
        let g = grad_buffer self in
        accum m g;
        if v.needs_grad then begin
          let s = scratch_like sv v.value in
          T.sum_rows_into g ~dst:s;
          accum v s
        end
      end)

(* Fused dense-layer forward: one node for [unop (x·w +rowvec b)], the
   inner loop of every surrogate MLP evaluation (13 tiny layers per pNN
   layer per MC draw) where per-node dispatch dominated small-net cost.
   Forward runs the backend's fused kernel when available (one stub call);
   backward replicates the legacy matmul -> add_rowvec -> unary node chain
   operation-for-operation, INCLUDING the [0.0 +. x] flush each
   intermediate node's first grad accumulation performed on its zeroed
   buffer — so trajectories are bit-identical to the unfused graph.  With
   [op] absent the unary stage vanishes (the legacy chain ended at the
   add_rowvec node). *)
let dense ?op x w b =
  let m = T.rows x.value and n = T.cols w.value in
  (* [pre] persists across passes (refreshed in place on recompute); with a
     nonlinearity it plays the add_rowvec node's value, otherwise it IS the
     output buffer. *)
  let pre = T.zeros_as x.value m n in
  let out = match op with Some _ -> T.zeros_as x.value m n | None -> pre in
  T.matmul_bias_unop_into ?op x.value w.value b.value ~pre ~out;
  let ssc = ref None and gac = ref None and gmc = ref None in
  let svc = ref None and sxc = ref None and atc = ref None and swc = ref None in
  node out [ x; w; b ]
    ~recompute:(fun self ->
      T.matmul_bias_unop_into ?op x.value w.value b.value ~pre ~out:self.value)
    (fun self ->
      if self.needs_grad then begin
        let g = grad_buffer self in
        (* unary stage: ga plays the add_rowvec node's grad buffer (zeroed,
           then accumulated once — the 0.0 +. s flush) *)
        let ga =
          match op with
          | Some u ->
              let s = scratch_like ssc g in
              T.unop_bwd_into u ~x:pre ~y:self.value ~g ~dst:s;
              let ga = scratch_like gac g in
              T.fill ga 0.0;
              T.add_into ga s ~dst:ga;
              ga
          | None -> g
        in
        (* add_rowvec stage: bias grad first, then the matmul stage seeds
           gm (the matmul node's grad buffer) — same accumulation order as
           the legacy chain *)
        if b.needs_grad then begin
          let sv = scratch svc b.value 1 n in
          T.sum_rows_into ga ~dst:sv;
          accum b sv
        end;
        if x.needs_grad || w.needs_grad then begin
          let gm = scratch_like gmc g in
          T.fill gm 0.0;
          T.add_into gm ga ~dst:gm;
          if x.needs_grad then begin
            let s = scratch_like sxc x.value in
            T.matmul_nt_into gm w.value ~dst:s;
            accum x s
          end;
          if w.needs_grad then begin
            let at = scratch atc x.value (T.cols x.value) (T.rows x.value) in
            T.transpose_into x.value ~dst:at;
            let s = scratch_like swc w.value in
            T.matmul_into at gm ~dst:s;
            accum w s
          end
        end
      end)

let mul_rowvec m v =
  let sm = ref None and sv = ref None in
  node (T.mul_rowvec m.value v.value) [ m; v ]
    ~recompute:(fun self -> T.mul_rowvec_into m.value v.value ~dst:self.value)
    (fun self ->
      if self.needs_grad then begin
        let g = grad_buffer self in
        if m.needs_grad then begin
          let s = scratch_like sm g in
          T.mul_rowvec_into g v.value ~dst:s;
          accum m s
        end;
        if v.needs_grad then begin
          let s = scratch_like sm g in
          T.mul_into g m.value ~dst:s;
          let sv' = scratch_like sv v.value in
          T.sum_rows_into s ~dst:sv';
          accum v sv'
        end
      end)

let div_rowvec m v =
  (* [inv] is a persistent forward cache, refreshed in place on recompute so
     the node stays correct when the graph is reused with new leaf values. *)
  let inv = T.map (fun x -> 1.0 /. x) v.value in
  let sm = ref None and sv2 = ref None and svec = ref None in
  node (T.mul_rowvec m.value inv) [ m; v ]
    ~recompute:(fun self ->
      T.map_into (fun x -> 1.0 /. x) v.value ~dst:inv;
      T.mul_rowvec_into m.value inv ~dst:self.value)
    (fun self ->
      if self.needs_grad then begin
        let g = grad_buffer self in
        if m.needs_grad then begin
          let s = scratch_like sm g in
          T.mul_rowvec_into g inv ~dst:s;
          accum m s
        end;
        if v.needs_grad then begin
          (* d/dv (m / v) = -m / v^2, summed over rows *)
          let s = scratch_like sm g in
          let iv2 = scratch_like sv2 v.value in
          T.mul_into inv inv ~dst:iv2;
          T.neg_into m.value ~dst:s;
          T.mul_rowvec_into s iv2 ~dst:s;
          T.mul_into g s ~dst:s;
          let sv' = scratch_like svec v.value in
          T.sum_rows_into s ~dst:sv';
          accum v sv'
        end
      end)

let scalar_shape_check name s =
  if T.shape s.value <> (1, 1) then
    invalid_arg ("Autodiff." ^ name ^ ": first argument must be 1x1")

let badd s m =
  scalar_shape_check "badd" s;
  let s11 = ref None in
  node
    (T.add_scalar (T.get s.value 0 0) m.value)
    [ s; m ]
    ~recompute:(fun self ->
      T.add_scalar_into (T.get s.value 0 0) m.value ~dst:self.value)
    (fun self ->
      if self.needs_grad then begin
        let g = grad_buffer self in
        accum m g;
        if s.needs_grad then begin
          let t = scratch s11 g 1 1 in
          T.set t 0 0 (T.sum g);
          accum s t
        end
      end)

let bmul s m =
  scalar_shape_check "bmul" s;
  let sc = ref None and s11 = ref None in
  node
    (T.scale (T.get s.value 0 0) m.value)
    [ s; m ]
    ~recompute:(fun self ->
      T.scale_into (T.get s.value 0 0) m.value ~dst:self.value)
    (fun self ->
      if self.needs_grad then begin
        (* read the scalar here, not at build time: the graph may be reused
           with refreshed leaf values *)
        let sv = T.get s.value 0 0 in
        let g = grad_buffer self in
        if m.needs_grad then begin
          let t = scratch_like sc g in
          T.scale_into sv g ~dst:t;
          accum m t
        end;
        if s.needs_grad then begin
          let t = scratch_like sc g in
          T.mul_into g m.value ~dst:t;
          let t1 = scratch s11 g 1 1 in
          T.set t1 0 0 (T.sum t);
          accum s t1
        end
      end)

(* {1 Reductions} *)

let sum a =
  let sc = ref None in
  node
    (T.scalar (T.sum a.value))
    [ a ]
    ~recompute:(fun self -> T.set self.value 0 0 (T.sum a.value))
    (fun self ->
      if a.needs_grad then begin
        let g = T.get (grad_buffer self) 0 0 in
        let s = scratch_like sc a.value in
        T.fill s g;
        accum a s
      end)

let mean a =
  let n = float_of_int (T.numel a.value) in
  let sc = ref None in
  node
    (T.scalar (T.mean a.value))
    [ a ]
    ~recompute:(fun self -> T.set self.value 0 0 (T.mean a.value))
    (fun self ->
      if a.needs_grad then begin
        let g = T.get (grad_buffer self) 0 0 /. n in
        let s = scratch_like sc a.value in
        T.fill s g;
        accum a s
      end)

let sum_rows a =
  let sc = ref None in
  node (T.sum_rows a.value) [ a ]
    ~recompute:(fun self -> T.sum_rows_into a.value ~dst:self.value)
    (fun self ->
      if a.needs_grad then begin
        let g = grad_buffer self in
        (* broadcast the 1 x cols gradient back over all rows *)
        let s = scratch_like sc a.value in
        T.broadcast_rowvec_into g ~dst:s;
        accum a s
      end)

(* {1 Structure} *)

let concat_cols a b =
  let sa = ref None and sb = ref None in
  node (T.concat_cols a.value b.value) [ a; b ]
    ~recompute:(fun self -> T.concat_cols_into a.value b.value ~dst:self.value)
    (fun self ->
      if self.needs_grad then begin
        let g = grad_buffer self in
        if a.needs_grad then begin
          let s = scratch_like sa a.value in
          T.slice_cols_into g 0 (T.cols a.value) ~dst:s;
          accum a s
        end;
        if b.needs_grad then begin
          let s = scratch_like sb b.value in
          T.slice_cols_into g (T.cols a.value) (T.cols b.value) ~dst:s;
          accum b s
        end
      end)

let concat_rows a b =
  let sa = ref None and sb = ref None in
  node (T.concat_rows a.value b.value) [ a; b ]
    ~recompute:(fun self -> T.concat_rows_into a.value b.value ~dst:self.value)
    (fun self ->
      if self.needs_grad then begin
        let g = grad_buffer self in
        if a.needs_grad then begin
          let s = scratch_like sa a.value in
          T.slice_rows_into g 0 (T.rows a.value) ~dst:s;
          accum a s
        end;
        if b.needs_grad then begin
          let s = scratch_like sb b.value in
          T.slice_rows_into g (T.rows a.value) (T.rows b.value) ~dst:s;
          accum b s
        end
      end)

let slice_cols a start len =
  let sc = ref None in
  node
    (T.slice_cols a.value start len)
    [ a ]
    ~recompute:(fun self -> T.slice_cols_into a.value start len ~dst:self.value)
    (fun self ->
      if a.needs_grad then begin
        let g = grad_buffer self in
        let s = scratch_like sc a.value in
        T.embed_cols_into g start ~dst:s;
        accum a s
      end)

let slice_rows a start len =
  let sc = ref None in
  node
    (T.slice_rows a.value start len)
    [ a ]
    ~recompute:(fun self -> T.slice_rows_into a.value start len ~dst:self.value)
    (fun self ->
      if a.needs_grad then begin
        let g = grad_buffer self in
        let s = scratch_like sc a.value in
        T.embed_rows_into g start ~dst:s;
        accum a s
      end)

(* {1 Straight-through estimators} *)

let map_ste f a =
  node (T.map f a.value) [ a ]
    ~recompute:(fun self -> T.map_into f a.value ~dst:self.value)
    (fun self -> if a.needs_grad then accum a (grad_buffer self))

let clamp_ste ~lo ~hi a =
  map_ste (fun x -> if x < lo then lo else if x > hi then hi else x) a

(* {1 Losses} *)

let softmax_rows_into m ~dst = T.softmax_rows_into m ~dst

let softmax_rows m =
  let out = T.zeros_as m (T.rows m) (T.cols m) in
  softmax_rows_into m ~dst:out;
  out

let ce_loss probs labels =
  T.ce_loss_sum probs labels /. float_of_int (T.rows probs)

let softmax_cross_entropy ~logits ~labels =
  if T.shape logits.value <> T.shape labels then
    invalid_arg "Autodiff.softmax_cross_entropy: logits/labels shape mismatch";
  (* [probs] persists across passes: recompute refreshes it in place *)
  let probs = softmax_rows logits.value in
  let sc = ref None in
  node
    (T.scalar (ce_loss probs labels))
    [ logits ]
    ~recompute:(fun self ->
      softmax_rows_into logits.value ~dst:probs;
      T.set self.value 0 0 (ce_loss probs labels))
    (fun self ->
      if logits.needs_grad then begin
        let batch = float_of_int (T.rows probs) in
        let g = T.get (grad_buffer self) 0 0 /. batch in
        let s = scratch_like sc probs in
        T.sub_into probs labels ~dst:s;
        T.scale_into g s ~dst:s;
        accum logits s
      end)

let mse pred target =
  if T.shape pred.value <> T.shape target then
    invalid_arg "Autodiff.mse: shape mismatch";
  let diff = T.sub pred.value target in
  let n = float_of_int (T.numel target) in
  let sc = ref None in
  node
    (T.scalar (T.dot diff diff /. n))
    [ pred ]
    ~recompute:(fun self ->
      T.sub_into pred.value target ~dst:diff;
      T.set self.value 0 0 (T.dot diff diff /. n))
    (fun self ->
      if pred.needs_grad then begin
        let g = T.get (grad_buffer self) 0 0 in
        let s = scratch_like sc diff in
        T.scale_into (2.0 *. g /. n) diff ~dst:s;
        accum pred s
      end)

(* {1 Externally computed gradients} *)

let precomputed ~value pairs =
  if T.shape value <> (1, 1) then
    invalid_arg "Autodiff.precomputed: value must be 1x1";
  List.iter
    (fun (p, g) ->
      if T.shape p.value <> T.shape g then
        invalid_arg "Autodiff.precomputed: gradient shape mismatch")
    pairs;
  node value (List.map fst pairs) (fun self ->
      let s = T.get (grad_buffer self) 0 0 in
      List.iter (fun (p, g) -> accum p (T.scale s g)) pairs)

(* {1 Backward pass} *)

let reachable root =
  let seen = Hashtbl.create 256 in
  let acc = ref [] in
  let rec visit n =
    if not (Hashtbl.mem seen n.id) then begin
      Hashtbl.add seen n.id ();
      List.iter visit n.parents;
      acc := n :: !acc
    end
  in
  visit root;
  (* acc is in reverse topological order already: children before parents is
     what backward needs, and we consed each node after its parents. *)
  !acc

type tape = { root : t; order : t list; fwd : t list }

let compile root =
  let order = reachable root in
  { root; order; fwd = List.rev order }

let refresh tape = List.iter (fun n -> n.recompute n) tape.fwd

let backward_tape tape =
  if T.shape tape.root.value <> (1, 1) then
    invalid_arg "Autodiff.backward: root must be a 1x1 scalar";
  List.iter zero_grad tape.order;
  T.set (grad_buffer tape.root) 0 0 1.0;
  List.iter (fun n -> n.push n) tape.order

let backward root = backward_tape (compile root)

let params root =
  let order = reachable root in
  let ps = List.filter is_param order in
  List.sort (fun a b -> Int.compare a.id b.id) ps
