module T = Tensor

type t = {
  id : int;
  value : T.t;
  mutable grad : T.t;
  parents : t list;
  push : t -> unit; (* propagate self.grad into parents' grads *)
  kind : kind;
}

and kind = Param | Const | Op

(* Atomic: graphs are built concurrently by worker domains (one replica
   network per Monte-Carlo draw); ids must stay unique across domains. *)
let counter = Atomic.make 0
let next_id () = Atomic.fetch_and_add counter 1 + 1

let no_push _ = ()

let leaf kind value =
  {
    id = next_id ();
    value;
    grad = T.zeros (T.rows value) (T.cols value);
    parents = [];
    push = no_push;
    kind;
  }

let param value = leaf Param value
let const value = leaf Const value
let scalar v = const (T.scalar v)
let value n = n.value
let grad n = n.grad
let is_param n = n.kind = Param
let id n = n.id
let zero_grad n = n.grad <- T.zeros (T.rows n.value) (T.cols n.value)

let node value parents push =
  {
    id = next_id ();
    value;
    grad = T.zeros (T.rows value) (T.cols value);
    parents;
    push;
    kind = Op;
  }

let accum p g = p.grad <- T.add p.grad g

(* {1 Arithmetic} *)

let add a b =
  node (T.add a.value b.value) [ a; b ] (fun self ->
      accum a self.grad;
      accum b self.grad)

let sub a b =
  node (T.sub a.value b.value) [ a; b ] (fun self ->
      accum a self.grad;
      accum b (T.neg self.grad))

let mul a b =
  node (T.mul a.value b.value) [ a; b ] (fun self ->
      accum a (T.mul self.grad b.value);
      accum b (T.mul self.grad a.value))

let div a b =
  node (T.div a.value b.value) [ a; b ] (fun self ->
      accum a (T.div self.grad b.value);
      (* d/db (a/b) = -a / b^2 *)
      accum b (T.neg (T.div (T.mul self.grad a.value) (T.mul b.value b.value))))

let neg a = node (T.neg a.value) [ a ] (fun self -> accum a (T.neg self.grad))
let scale k a = node (T.scale k a.value) [ a ] (fun self -> accum a (T.scale k self.grad))

let add_scalar k a =
  node (T.add_scalar k a.value) [ a ] (fun self -> accum a self.grad)

let pow_const a p =
  let y = T.map (fun x -> x ** p) a.value in
  node y [ a ] (fun self ->
      let d = T.map (fun x -> p *. (x ** (p -. 1.0))) a.value in
      accum a (T.mul self.grad d))

(* {1 Nonlinearities} *)

let unary f df a =
  let y = T.map f a.value in
  node y [ a ] (fun self ->
      let d = T.map2 df a.value y in
      accum a (T.mul self.grad d))

let tanh a = unary Stdlib.tanh (fun _ y -> 1.0 -. (y *. y)) a

let sigmoid a =
  let sg x = 1.0 /. (1.0 +. Stdlib.exp (-.x)) in
  unary sg (fun _ y -> y *. (1.0 -. y)) a

let exp a = unary Stdlib.exp (fun _ y -> y) a
let log a = unary Stdlib.log (fun x _ -> 1.0 /. x) a
let sqrt a = unary Stdlib.sqrt (fun _ y -> 0.5 /. y) a
let relu a = unary (fun x -> if x > 0.0 then x else 0.0) (fun x _ -> if x > 0.0 then 1.0 else 0.0) a

let abs a =
  unary Stdlib.abs_float
    (fun x _ -> if x > 0.0 then 1.0 else if x < 0.0 then -1.0 else 0.0)
    a

(* {1 Linear algebra} *)

let matmul a b =
  node (T.matmul a.value b.value) [ a; b ] (fun self ->
      accum a (T.matmul_nt self.grad b.value);
      accum b (T.matmul (T.transpose a.value) self.grad))

let transpose a =
  node (T.transpose a.value) [ a ] (fun self -> accum a (T.transpose self.grad))

let add_rowvec m v =
  node (T.add_rowvec m.value v.value) [ m; v ] (fun self ->
      accum m self.grad;
      accum v (T.sum_rows self.grad))

let mul_rowvec m v =
  node (T.mul_rowvec m.value v.value) [ m; v ] (fun self ->
      accum m (T.mul_rowvec self.grad v.value);
      accum v (T.sum_rows (T.mul self.grad m.value)))

let div_rowvec m v =
  let inv = T.map (fun x -> 1.0 /. x) v.value in
  node (T.mul_rowvec m.value inv) [ m; v ] (fun self ->
      accum m (T.mul_rowvec self.grad inv);
      (* d/dv (m / v) = -m / v^2, summed over rows *)
      let minus_m_over_v2 = T.mul_rowvec (T.neg m.value) (T.mul inv inv) in
      accum v (T.sum_rows (T.mul self.grad minus_m_over_v2)))

let scalar_shape_check name s =
  if T.shape s.value <> (1, 1) then
    invalid_arg ("Autodiff." ^ name ^ ": first argument must be 1x1")

let badd s m =
  scalar_shape_check "badd" s;
  node (T.add_scalar (T.get s.value 0 0) m.value) [ s; m ] (fun self ->
      accum m self.grad;
      accum s (T.scalar (T.sum self.grad)))

let bmul s m =
  scalar_shape_check "bmul" s;
  let sv = T.get s.value 0 0 in
  node (T.scale sv m.value) [ s; m ] (fun self ->
      accum m (T.scale sv self.grad);
      accum s (T.scalar (T.sum (T.mul self.grad m.value))))

(* {1 Reductions} *)

let sum a =
  node (T.scalar (T.sum a.value)) [ a ] (fun self ->
      let g = T.get self.grad 0 0 in
      accum a (T.full (T.rows a.value) (T.cols a.value) g))

let mean a =
  let n = float_of_int (T.numel a.value) in
  node (T.scalar (T.mean a.value)) [ a ] (fun self ->
      let g = T.get self.grad 0 0 /. n in
      accum a (T.full (T.rows a.value) (T.cols a.value) g))

let sum_rows a =
  node (T.sum_rows a.value) [ a ] (fun self ->
      (* broadcast the 1 x cols gradient back over all rows *)
      accum a (T.mul_rowvec (T.ones (T.rows a.value) (T.cols a.value)) self.grad))

(* {1 Structure} *)

let concat_cols a b =
  node (T.concat_cols a.value b.value) [ a; b ] (fun self ->
      accum a (T.slice_cols self.grad 0 (T.cols a.value));
      accum b (T.slice_cols self.grad (T.cols a.value) (T.cols b.value)))

let slice_cols a start len =
  node (T.slice_cols a.value start len) [ a ] (fun self ->
      let g = T.zeros (T.rows a.value) (T.cols a.value) in
      for r = 0 to T.rows self.grad - 1 do
        for c = 0 to len - 1 do
          T.set g r (start + c) (T.get self.grad r c)
        done
      done;
      accum a g)

let slice_rows a start len =
  node (T.slice_rows a.value start len) [ a ] (fun self ->
      let g = T.zeros (T.rows a.value) (T.cols a.value) in
      for r = 0 to len - 1 do
        for c = 0 to T.cols self.grad - 1 do
          T.set g (start + r) c (T.get self.grad r c)
        done
      done;
      accum a g)

(* {1 Straight-through estimators} *)

let map_ste f a =
  node (T.map f a.value) [ a ] (fun self -> accum a self.grad)

let clamp_ste ~lo ~hi a =
  map_ste (fun x -> if x < lo then lo else if x > hi then hi else x) a

(* {1 Losses} *)

let softmax_rows m =
  (* stable row-wise softmax on a plain tensor *)
  let rows = T.rows m and cols = T.cols m in
  let out = T.zeros rows cols in
  for r = 0 to rows - 1 do
    let mx = ref neg_infinity in
    for c = 0 to cols - 1 do
      if T.get m r c > !mx then mx := T.get m r c
    done;
    let z = ref 0.0 in
    for c = 0 to cols - 1 do
      let e = Stdlib.exp (T.get m r c -. !mx) in
      T.set out r c e;
      z := !z +. e
    done;
    for c = 0 to cols - 1 do
      T.set out r c (T.get out r c /. !z)
    done
  done;
  out

let softmax_cross_entropy ~logits ~labels =
  if T.shape logits.value <> T.shape labels then
    invalid_arg "Autodiff.softmax_cross_entropy: logits/labels shape mismatch";
  let probs = softmax_rows logits.value in
  let batch = float_of_int (T.rows probs) in
  let loss = ref 0.0 in
  for r = 0 to T.rows probs - 1 do
    for c = 0 to T.cols probs - 1 do
      let y = T.get labels r c in
      if y > 0.0 then loss := !loss -. (y *. Stdlib.log (Stdlib.max (T.get probs r c) 1e-30))
    done
  done;
  node (T.scalar (!loss /. batch)) [ logits ] (fun self ->
      let g = T.get self.grad 0 0 /. batch in
      accum logits (T.scale g (T.sub probs labels)))

let mse pred target =
  if T.shape pred.value <> T.shape target then
    invalid_arg "Autodiff.mse: shape mismatch";
  let diff = T.sub pred.value target in
  let n = float_of_int (T.numel target) in
  node (T.scalar (T.sum (T.mul diff diff) /. n)) [ pred ] (fun self ->
      let g = T.get self.grad 0 0 in
      accum pred (T.scale (2.0 *. g /. n) diff))

(* {1 Externally computed gradients} *)

let precomputed ~value pairs =
  if T.shape value <> (1, 1) then
    invalid_arg "Autodiff.precomputed: value must be 1x1";
  List.iter
    (fun (p, g) ->
      if T.shape p.value <> T.shape g then
        invalid_arg "Autodiff.precomputed: gradient shape mismatch")
    pairs;
  node value (List.map fst pairs) (fun self ->
      let s = T.get self.grad 0 0 in
      List.iter (fun (p, g) -> accum p (T.scale s g)) pairs)

(* {1 Backward pass} *)

let reachable root =
  let seen = Hashtbl.create 256 in
  let acc = ref [] in
  let rec visit n =
    if not (Hashtbl.mem seen n.id) then begin
      Hashtbl.add seen n.id ();
      List.iter visit n.parents;
      acc := n :: !acc
    end
  in
  visit root;
  (* acc is in reverse topological order already: children before parents is
     what backward needs, and we consed each node after its parents. *)
  !acc

let backward root =
  if T.shape root.value <> (1, 1) then
    invalid_arg "Autodiff.backward: root must be a 1x1 scalar";
  let order = reachable root in
  List.iter zero_grad order;
  root.grad <- T.ones 1 1;
  List.iter (fun n -> n.push n) order

let params root =
  let order = reachable root in
  let ps = List.filter is_param order in
  List.sort (fun a b -> compare a.id b.id) ps
