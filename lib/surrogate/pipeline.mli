(** The modelling pipeline of the paper's Fig. 3:

    design space → QMC sampling → SPICE (our MNA solver) → ptanh fitting
    → dataset (ω, η) → surrogate MLP training.

    Dataset points whose LM fit is poor (the paper constrains the space to
    tanh-like curves by sweep analysis; our space has a small fraction of
    degenerate corners) are filtered out; the fraction kept is reported. *)

type dataset = {
  omegas : float array array;  (** raw 7-dim ω per sample *)
  etas : float array array;  (** fitted 4-dim η per sample *)
  fit_rmses : float array;
  rejected : int;  (** samples dropped by the fit-quality filter *)
}

val generate_dataset :
  ?pool:Parallel.Pool.t ->
  ?cache:Cache.t ->
  ?n:int ->
  ?sweep_points:int ->
  ?max_fit_rmse:float ->
  ?sampler:[ `Sobol | `Lhs of Rng.t ] ->
  unit ->
  dataset
(** Defaults: [n = 10_000] (paper), [sweep_points = 41],
    [max_fit_rmse = 0.02] V, Sobol sampling.

    Candidates are sampled sequentially, then each candidate's DC sweep and
    LM fit fan out over [pool] (default: the shared {!Parallel.get_pool});
    acceptance keeps candidate order, so the dataset is bit-identical for any
    worker count.

    [cache] (default: disabled) memoizes sweep+fit outcomes in fixed-size
    chunks keyed by chunk content and every sweep/fit/filter knob; candidates
    are sampled before the cache is consulted, so a warm run leaves all RNG
    streams exactly where a cold one would and returns a bit-identical
    dataset. *)

type split = { train : int array; validation : int array; test : int array }

val split_dataset : Rng.t -> dataset -> split
(** Random 70 / 20 / 10 split (paper §III-A). *)

type report = {
  train_mse : float;
  val_mse : float;
  test_mse : float;
  train_r2 : float;
  val_r2 : float;
  test_r2 : float;
  epochs_run : int;
  kept_samples : int;
  rejected_samples : int;
}

val train_surrogate :
  ?arch:int list ->
  ?max_epochs:int ->
  ?patience:int ->
  ?lr:float ->
  Rng.t ->
  dataset ->
  Model.t * report
(** Trains the surrogate MLP (default: {!Model.paper_arch}) with Adam + early
    stopping on the validation MSE; reports per-split metrics of the best
    model. *)

val parity_rows :
  Model.t -> dataset -> split -> (string * float * float) list
(** Normalized (true η̃, predicted η̃) pairs tagged ["train"], ["val"],
    ["test"] — the data behind the paper's Fig. 4 (right). *)

val ensure :
  ?dir:string ->
  ?n:int ->
  ?arch:int list ->
  ?max_epochs:int ->
  seed:int ->
  unit ->
  Model.t
(** Loads the cached surrogate artifact from [dir] (default ["_artifacts"]),
    or runs the full pipeline and caches it.  The cache key includes [n],
    the architecture and the seed. *)
