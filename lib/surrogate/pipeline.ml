type dataset = {
  omegas : float array array;
  etas : float array array;
  fit_rmses : float array;
  rejected : int;
}

(* η sanity box: fits outside are degenerate (flat curves chased by huge
   amplitude/offset compensation) and would wreck min-max normalization. *)
let eta_sane (e : Fit.Ptanh.eta) =
  Float.abs e.Fit.Ptanh.eta1 <= 3.0
  && Float.abs e.Fit.Ptanh.eta2 <= 3.0
  && e.Fit.Ptanh.eta3 >= -2.0
  && e.Fit.Ptanh.eta3 <= 3.0
  && Float.abs e.Fit.Ptanh.eta4 <= 100.0

(* {2 Per-chunk dataset cache}

   The DC sweep + LM fit per candidate dominates pipeline cost, so outcomes
   are memoized in fixed-size chunks keyed by the chunk's ω content plus
   every knob the sweep/fit/filter reads.  ω itself is reconstructed from the
   input on decode, so the payload stores only the (η, rmse) verdicts. *)

(* bump when the transfer sweep, the ptanh fit or the η sanity box changes:
   old verdict entries silently re-key instead of being replayed *)
let chunk_schema = "surchunk-1"
let chunk_size = 256

let hex_floats a =
  String.concat " " (Array.to_list (Array.map (Printf.sprintf "%h") a))

let outcome_line = function
  | None -> "r"
  | Some (_omega, eta, rmse) ->
      Printf.sprintf "k %s %h" (hex_floats eta) rmse

let outcome_of_line omega line =
  match String.split_on_char ' ' (String.trim line) with
  | [ "r" ] -> None
  | [ "k"; e1; e2; e3; e4; rmse ] ->
      let f = float_of_string in
      Some (omega, [| f e1; f e2; f e3; f e4 |], f rmse)
  | _ -> failwith "Pipeline: bad outcome line"

let generate_dataset ?pool ?cache ?(n = 10_000) ?(sweep_points = 41)
    ?(max_fit_rmse = 0.02) ?(sampler = `Sobol) () =
  let pool = match pool with Some p -> p | None -> Parallel.get_pool () in
  let cache = match cache with Some c -> c | None -> Cache.disabled () in
  (* Candidates are sampled up-front on this domain (the Sobol / LHS streams
     stay sequential); each candidate's MNA DC sweep + LM fit is independent
     and fans out over the pool.  Acceptance is then folded in candidate
     order, so the dataset is bit-identical for any worker count — and
     sampling stays ahead of the cache, so hits leave every RNG stream
     exactly where a cold run would. *)
  let omegas =
    match sampler with
    | `Sobol -> Design_space.sample_sobol ~n
    | `Lhs rng -> Design_space.sample_lhs rng ~n
  in
  let candidate omega =
    match
      Circuit.Ptanh_circuit.transfer ~points:sweep_points
        (Circuit.Ptanh_circuit.omega_of_array omega)
    with
    | exception Circuit.Mna.No_convergence _ -> None
    | vin, vout ->
        let { Fit.Ptanh.eta; rmse; converged = _ } = Fit.Ptanh.fit ~vin ~vout in
        if rmse <= max_fit_rmse && eta_sane eta then
          Some (omega, Fit.Ptanh.eta_to_array eta, rmse)
        else None
  in
  let chunk_outcomes chunk =
    let key =
      Cache.key ~schema:chunk_schema ~kind:"surchunk"
        [
          string_of_int sweep_points;
          Printf.sprintf "%h" max_fit_rmse;
          Cache.digest_lines (Array.to_list (Array.map hex_floats chunk));
        ]
    in
    Cache.memoize cache ~kind:"surchunk" ~key
      ~encode:(fun outcomes ->
        Array.to_list (Array.map outcome_line outcomes))
      ~decode:(fun lines ->
        if List.length lines <> Array.length chunk then
          failwith "Pipeline: chunk length mismatch";
        Array.mapi
          (fun i line -> outcome_of_line chunk.(i) line)
          (Array.of_list lines))
      (fun () -> Parallel.Pool.map_array pool candidate chunk)
  in
  let outcomes =
    if not (Cache.enabled cache) then Parallel.Pool.map_array pool candidate omegas
    else begin
      let total = Array.length omegas in
      let n_chunks = (total + chunk_size - 1) / chunk_size in
      Array.concat
        (List.init n_chunks (fun c ->
             let lo = c * chunk_size in
             chunk_outcomes (Array.sub omegas lo (min chunk_size (total - lo)))))
    end
  in
  let kept_omegas = ref [] and kept_etas = ref [] and kept_rmses = ref [] in
  let rejected = ref 0 in
  Array.iter
    (function
      | None -> incr rejected
      | Some (omega, eta, rmse) ->
          kept_omegas := omega :: !kept_omegas;
          kept_etas := eta :: !kept_etas;
          kept_rmses := rmse :: !kept_rmses)
    outcomes;
  {
    omegas = Array.of_list (List.rev !kept_omegas);
    etas = Array.of_list (List.rev !kept_etas);
    fit_rmses = Array.of_list (List.rev !kept_rmses);
    rejected = !rejected;
  }

type split = { train : int array; validation : int array; test : int array }

let split_dataset rng dataset =
  let n = Array.length dataset.omegas in
  if n < 10 then invalid_arg "Pipeline.split_dataset: dataset too small";
  let perm = Rng.perm rng n in
  let n_train = n * 70 / 100 in
  let n_val = n * 20 / 100 in
  {
    train = Array.sub perm 0 n_train;
    validation = Array.sub perm n_train n_val;
    test = Array.sub perm (n_train + n_val) (n - n_train - n_val);
  }

type report = {
  train_mse : float;
  val_mse : float;
  test_mse : float;
  train_r2 : float;
  val_r2 : float;
  test_r2 : float;
  epochs_run : int;
  kept_samples : int;
  rejected_samples : int;
}

let normalized_tensors dataset =
  let extended = Array.map Design_space.extend dataset.omegas in
  let omega_scaler = Scaler.fit extended in
  let eta_scaler = Scaler.fit dataset.etas in
  let x = Tensor.of_arrays (Array.map (Scaler.transform omega_scaler) extended) in
  let y = Tensor.of_arrays (Array.map (Scaler.transform eta_scaler) dataset.etas) in
  (omega_scaler, eta_scaler, x, y)

let train_surrogate ?(arch = Model.paper_arch) ?(max_epochs = 3000) ?(patience = 200)
    ?(lr = 2e-3) rng dataset =
  let omega_scaler, eta_scaler, x_all, y_all = normalized_tensors dataset in
  (match arch with
  | first :: _ when first = Design_space.extended_dim -> ()
  | _ -> invalid_arg "Pipeline.train_surrogate: arch must start with 10");
  let split = split_dataset rng dataset in
  let take idx = (Tensor.take_rows x_all idx, Tensor.take_rows y_all idx) in
  let x_train, y_train = take split.train in
  let x_val, y_val = take split.validation in
  let x_test, y_test = take split.test in
  let mlp = Nn.Mlp.create rng ~sizes:arch ~hidden:Nn.Activation.Tanh ~output:Nn.Activation.Linear in
  let params = Nn.Mlp.params mlp in
  let opt = Nn.Optimizer.adam ~lr () in
  let x_train_node = Autodiff.const x_train in
  let best = ref (Nn.Mlp.snapshot mlp) in
  let history =
    Nn.Train.run
      ~config:{ Nn.Train.default_config with max_epochs; patience; log_every = 0 }
      ~optimizers:[ (opt, params) ]
      ~train_loss:(fun () -> Autodiff.mse (Nn.Mlp.forward mlp x_train_node) y_train)
      ~val_loss:(fun () -> Nn.Metrics.mse (Nn.Mlp.forward_tensor mlp x_val) y_val)
      ~snapshot:(fun () -> best := Nn.Mlp.snapshot mlp)
      ~restore:(fun () -> Nn.Mlp.restore mlp !best)
      ()
  in
  let model = { Model.mlp; omega_scaler; eta_scaler } in
  let metrics x y =
    let pred = Nn.Mlp.forward_tensor mlp x in
    (Nn.Metrics.mse pred y, Nn.Metrics.r2 ~pred ~target:y)
  in
  let train_mse, train_r2 = metrics x_train y_train in
  let val_mse, val_r2 = metrics x_val y_val in
  let test_mse, test_r2 = metrics x_test y_test in
  ( model,
    {
      train_mse;
      val_mse;
      test_mse;
      train_r2;
      val_r2;
      test_r2;
      epochs_run = Array.length history.Nn.Train.train_losses;
      kept_samples = Array.length dataset.omegas;
      rejected_samples = dataset.rejected;
    } )

let parity_rows model dataset split =
  let _, eta_scaler, x_all, y_all = normalized_tensors dataset in
  ignore eta_scaler;
  let rows tag idx =
    let pred = Nn.Mlp.forward_tensor model.Model.mlp (Tensor.take_rows x_all idx) in
    let truth = Tensor.take_rows y_all idx in
    List.concat
      (List.init (Tensor.rows pred) (fun r ->
           List.init (Tensor.cols pred) (fun c ->
               (tag, Tensor.get truth r c, Tensor.get pred r c))))
  in
  rows "train" split.train @ rows "val" split.validation @ rows "test" split.test

let ensure ?(dir = "_artifacts") ?(n = 4000) ?(arch = Model.paper_arch)
    ?(max_epochs = 3000) ~seed () =
  let arch_tag = String.concat "-" (List.map string_of_int arch) in
  let path = Printf.sprintf "%s/surrogate_n%d_%s_seed%d.txt" dir n arch_tag seed in
  if Sys.file_exists path then Model.load_file path
  else begin
    Logs.info (fun m -> m "surrogate cache miss; running pipeline (n=%d) -> %s" n path);
    let dataset = generate_dataset ~cache:(Cache.get_default ()) ~n () in
    let rng = Rng.create seed in
    let model, report = train_surrogate ~arch ~max_epochs rng dataset in
    Logs.info (fun m ->
        m "surrogate trained: val MSE %.5f, test MSE %.5f (kept %d, rejected %d)"
          report.val_mse report.test_mse report.kept_samples report.rejected_samples);
    (* EEXIST-tolerant: two processes may race to materialize the artifact
       directory (the orchestrator's workers do) *)
    Cache.mkdir_p dir;
    Model.save_file model path;
    model
  end
