type layer_noise = {
  theta : Tensor.t;
  act_omega : Tensor.t;
  neg_omega : Tensor.t;
}

type t = layer_noise list

let omega_dim = Surrogate.Design_space.dim

let none ~theta_shapes =
  List.map
    (fun (r, c) ->
      {
        theta = Tensor.ones r c;
        act_omega = Tensor.ones 1 omega_dim;
        neg_omega = Tensor.ones 1 omega_dim;
      })
    theta_shapes

let draw rng ~epsilon ~theta_shapes =
  if epsilon < 0.0 || epsilon >= 1.0 then invalid_arg "Noise.draw: epsilon outside [0,1)";
  (* pnnlint:allow R5 exact-zero sentinel selects the no-noise draw;
     IEEE equality also accepts -0.0 *)
  if epsilon = 0.0 then none ~theta_shapes
  else
    let u r c = Tensor.uniform rng r c ~lo:(1.0 -. epsilon) ~hi:(1.0 +. epsilon) in
    List.map
      (fun (r, c) ->
        { theta = u r c; act_omega = u 1 omega_dim; neg_omega = u 1 omega_dim })
      theta_shapes

let draw_many rng ~epsilon ~theta_shapes ~n =
  List.init n (fun _ -> draw rng ~epsilon ~theta_shapes)
