module A = Autodiff

type t = { layers : Layer.t list; config : Config.t }

let create_deep ?init rng config surrogate ~sizes =
  let rec pairs = function
    | a :: (b :: _ as rest) -> (a, b) :: pairs rest
    | [ _ ] | [] -> []
  in
  if List.length sizes < 2 then invalid_arg "Network.create_deep: need >= 2 sizes";
  let layers =
    List.map
      (fun (inputs, outputs) -> Layer.create ?init rng config surrogate ~inputs ~outputs)
      (pairs sizes)
  in
  { layers; config }

let create ?init rng config surrogate ~inputs ~outputs =
  create_deep ?init rng config surrogate ~sizes:[ inputs; config.Config.hidden; outputs ]

let of_layers config layers =
  (match layers with [] -> invalid_arg "Network.of_layers: no layers" | _ -> ());
  let rec check = function
    | a :: (b :: _ as rest) ->
        if Layer.outputs a <> Layer.inputs b then
          invalid_arg "Network.of_layers: layer widths do not chain";
        check rest
    | [ _ ] | [] -> ()
  in
  check layers;
  { layers; config }

let layers t = t.layers
let config t = t.config
let theta_shapes t = List.map Layer.theta_shape t.layers

let forward t ~noise x =
  if List.length noise <> List.length t.layers then
    invalid_arg "Network.forward: noise/layer count mismatch";
  List.fold_left2
    (fun acc layer layer_noise -> Layer.forward t.config layer ~noise:layer_noise acc)
    x t.layers noise

let logits t ~noise x =
  A.scale t.config.Config.logit_scale (forward t ~noise (A.const x))

let predict t ~noise x = Tensor.argmax_rows (A.value (logits t ~noise x))

let loss t ~noise ~x ~labels =
  A.softmax_cross_entropy ~logits:(logits t ~noise x) ~labels

let mc_loss t ~noises ~x ~labels =
  match noises with
  | [] -> invalid_arg "Network.mc_loss: no noise draws"
  | _ ->
      let n = float_of_int (List.length noises) in
      let total =
        List.fold_left
          (fun acc noise ->
            let l = loss t ~noise ~x ~labels in
            match acc with None -> Some l | Some s -> Some (A.add s l))
          None noises
      in
      (match total with Some s -> A.scale (1.0 /. n) s | None -> assert false)

let params_theta t = List.concat_map Layer.params_theta t.layers
let params_omega t = List.concat_map Layer.params_omega t.layers

let replicate t = { layers = List.map Layer.replicate t.layers; config = t.config }

(* {2 Compiled replica cache}

   A compiled replica is a full autodiff graph (fresh param leaves, noise
   const leaves, loss or logits root) plus its topological tape.  It is
   built once per (worker domain × network × input batch) and then reused
   across Monte-Carlo draws and epochs: each use blits the master's current
   parameter values and the draw's noise tensors into the leaves and re-runs
   forward/backward in place over the same node structure — bit-identical to
   building a throwaway replica per draw, without the build-and-discard
   allocation churn.

   The cache is domain-local (Domain.DLS): pool workers are long-lived
   domains, and autodiff graphs are single-domain mutable state, so each
   worker keeps its own replicas.  Entries are keyed by physical identity of
   the master network and the input tensors (which are stable for the
   lifetime of a training or evaluation run) and evicted LRU. *)

let forward_nodes t ~noise_nodes x =
  List.fold_left2
    (fun acc layer nodes -> Layer.forward_nodes t.config layer nodes acc)
    x t.layers noise_nodes

type compiled = {
  c_master : t; (* physical-identity key *)
  c_x : Tensor.t; (* physical-identity key *)
  c_labels : Tensor.t option; (* physical-identity key (loss graphs) *)
  c_replica_params : A.t list; (* canonical order: theta @ omega *)
  c_master_params : A.t list; (* same order on the master *)
  c_noise : Layer.noise_nodes list;
  c_root : A.t; (* loss (1×1) or logits *)
  c_tape : A.tape;
}

let compile_graph t ~noise ~x ~labels =
  let replica = replicate t in
  let noise_nodes = List.map Layer.noise_nodes_of noise in
  let lg =
    A.scale t.config.Config.logit_scale (forward_nodes replica ~noise_nodes (A.const x))
  in
  let root =
    match labels with
    | Some labels -> A.softmax_cross_entropy ~logits:lg ~labels
    | None -> lg
  in
  {
    c_master = t;
    c_x = x;
    c_labels = labels;
    c_replica_params = params_theta replica @ params_omega replica;
    c_master_params = params_theta t @ params_omega t;
    c_noise = noise_nodes;
    c_root = root;
    c_tape = A.compile root;
  }

let cache_capacity = 4

let loss_cache : compiled list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let logits_cache : compiled list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | e :: rest -> e :: take (n - 1) rest

(* Look up (or build) this domain's compiled replica and run its forward
   pass for the given draw.  On a hit the master's parameters and the new
   noise draw are blitted into the existing leaves first. *)
let cached_graph cache_key t ~noise ~x ~labels =
  let cache = Domain.DLS.get cache_key in
  let hit e =
    e.c_master == t && e.c_x == x
    &&
    match (e.c_labels, labels) with
    | Some a, Some b -> a == b
    | None, None -> true
    | Some _, None | None, Some _ -> false
  in
  match List.find_opt hit !cache with
  | Some e ->
      (match !cache with
      | front :: _ when front == e -> ()
      | _ -> cache := e :: List.filter (fun e' -> e' != e) !cache);
      List.iter2
        (fun rp mp -> A.set_value rp (A.value mp))
        e.c_replica_params e.c_master_params;
      List.iter2 Layer.set_noise_nodes e.c_noise noise;
      A.refresh e.c_tape;
      e
  | None ->
      let e = compile_graph t ~noise ~x ~labels in
      cache := take cache_capacity (e :: !cache);
      e

(* One Monte-Carlo draw on this domain's cached replica.  Returns the scalar
   loss and fresh copies of the gradients in the canonical parameter order
   (params_theta @ params_omega) — copies, because the accumulation buffers
   are reused by the next draw. *)
let draw_loss_and_grads t ~noise ~x ~labels =
  let e = cached_graph loss_cache t ~noise ~x ~labels:(Some labels) in
  A.backward_tape e.c_tape;
  let grads = List.map (fun p -> Tensor.copy (A.grad p)) e.c_replica_params in
  (Tensor.get (A.value e.c_root) 0 0, grads)

(* Reference implementation: a throwaway replica per draw, as before the
   compiled-replica cache existed.  Kept for the bit-identity tests and the
   allocation benchmarks. *)
let draw_loss_and_grads_alloc t ~noise ~x ~labels =
  let replica = replicate t in
  let l = loss replica ~noise ~x ~labels in
  A.backward l;
  let grads =
    List.map (fun p -> Tensor.copy (A.grad p)) (params_theta replica @ params_omega replica)
  in
  (Tensor.get (A.value l) 0 0, grads)

let mc_loss_pooled_with ~draw pool t ~noises ~x ~labels =
  match noises with
  | [] -> invalid_arg "Network.mc_loss: no noise draws"
  | _ ->
      let draws = Array.of_list noises in
      let n = Array.length draws in
      let per_draw =
        Parallel.Pool.map_array pool (fun noise -> draw t ~noise ~x ~labels) draws
      in
      (* Ordered reduction over the draw index: the summation order is fixed
         by the draw order alone, so the result is bit-identical for any
         worker count.  Draw 0's gradient copies double as the accumulators;
         every later draw is added into them in place. *)
      let total_loss = ref 0.0 in
      let total_grads = ref [] in
      Array.iteri
        (fun i (l, grads) ->
          total_loss := !total_loss +. l;
          if i = 0 then total_grads := grads
          else
            List.iter2
              (fun acc g -> Tensor.add_into acc g ~dst:acc)
              !total_grads grads)
        per_draw;
      let inv_n = 1.0 /. float_of_int n in
      List.iter (fun g -> Tensor.scale_into inv_n g ~dst:g) !total_grads;
      A.precomputed
        ~value:(Tensor.scalar (!total_loss *. inv_n))
        (List.combine (params_theta t @ params_omega t) !total_grads)

let mc_loss_pooled pool t ~noises ~x ~labels =
  mc_loss_pooled_with ~draw:draw_loss_and_grads pool t ~noises ~x ~labels

let mc_loss_pooled_alloc pool t ~noises ~x ~labels =
  mc_loss_pooled_with ~draw:draw_loss_and_grads_alloc pool t ~noises ~x ~labels

(* Forward-only pooled MC loss value.  Per-draw losses come from the cached
   replicas (no backward pass); the draw-order fold and the final 1/n scale
   reproduce {!mc_loss}'s arithmetic exactly, so the value is bit-identical
   to [Tensor.get (A.value (mc_loss ...)) 0 0]. *)
let mc_loss_value pool t ~noises ~x ~labels =
  match noises with
  | [] -> invalid_arg "Network.mc_loss: no noise draws"
  | _ ->
      let draws = Array.of_list noises in
      let n = Array.length draws in
      let per_draw =
        Parallel.Pool.map_array pool
          (fun noise ->
            let e = cached_graph loss_cache t ~noise ~x ~labels:(Some labels) in
            Tensor.get (A.value e.c_root) 0 0)
          draws
      in
      let total = ref per_draw.(0) in
      for i = 1 to n - 1 do
        total := !total +. per_draw.(i)
      done;
      !total *. (1.0 /. float_of_int n)

let predict_cached t ~noise x =
  let e = cached_graph logits_cache t ~noise ~x ~labels:None in
  Tensor.argmax_rows (A.value e.c_root)

(* {2 Serve-time predictors}

   The replica caches above key on the {e physical identity} of the input
   tensor — right for training/evaluation, where the same batch tensors live
   for the whole run, but useless for a server whose every batch is a fresh
   tensor.  A predictor instead owns a fixed-shape const input leaf that each
   call blits into ({!A.set_value}), so one compiled graph serves an
   unbounded stream of same-shaped batches.

   Because every op in the forward pass is row-independent (matmul row i
   reads only input row i; activations and the logit scale are elementwise),
   each row of the refreshed root is bit-identical to running that row alone
   through {!predict} — batch composition never changes an answer. *)

type predictor = {
  p_master : t; (* physical-identity key *)
  p_rows : int;
  p_cols : int;
  p_x : A.t; (* const leaf the batch is blitted into *)
  p_replica_params : A.t list;
  p_master_params : A.t list;
  p_noise : Layer.noise_nodes list;
  p_nominal : Noise.t; (* all-ones draw, reused when no draw is given *)
  p_root : A.t; (* scaled logits, rows × outputs *)
  p_tape : A.tape;
}

let compile_predictor t ~rows ~cols =
  let replica = replicate t in
  let nominal = Noise.none ~theta_shapes:(theta_shapes t) in
  let noise_nodes = List.map Layer.noise_nodes_of nominal in
  let x_leaf = A.const (Tensor.zeros rows cols) in
  let root =
    A.scale t.config.Config.logit_scale (forward_nodes replica ~noise_nodes x_leaf)
  in
  {
    p_master = t;
    p_rows = rows;
    p_cols = cols;
    p_x = x_leaf;
    p_replica_params = params_theta replica @ params_omega replica;
    p_master_params = params_theta t @ params_omega t;
    p_noise = noise_nodes;
    p_nominal = nominal;
    p_root = root;
    p_tape = A.compile root;
  }

let predictor_shape p = (p.p_rows, p.p_cols)

let predictor_logits p ?noise x =
  if Tensor.shape x <> (p.p_rows, p.p_cols) then
    invalid_arg "Network.predictor_logits: batch shape mismatch";
  A.set_value p.p_x x;
  (* The master is read-only at serve time, but re-blitting keeps the
     predictor correct if someone does train the master between calls. *)
  List.iter2
    (fun rp mp -> A.set_value rp (A.value mp))
    p.p_replica_params p.p_master_params;
  let noise = match noise with Some n -> n | None -> p.p_nominal in
  (try List.iter2 Layer.set_noise_nodes p.p_noise noise
   with Invalid_argument _ ->
     invalid_arg "Network.predictor_logits: noise/layer count mismatch");
  A.refresh p.p_tape;
  A.value p.p_root

let predictor_predict p ?noise x = Tensor.argmax_rows (predictor_logits p ?noise x)

(* Per-domain predictor cache, keyed by (master identity, batch shape).
   Serving pads batches to a small set of row counts, so the working set is
   tiny; LRU keeps a rebuild from ever being per-request. *)
let predictor_cache_capacity = 12

let predictor_cache : predictor list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let predictor_cached t ~rows ~cols =
  let cache = Domain.DLS.get predictor_cache in
  let hit p = p.p_master == t && p.p_rows = rows && p.p_cols = cols in
  match List.find_opt hit !cache with
  | Some p ->
      (match !cache with
      | front :: _ when front == p -> ()
      | _ -> cache := p :: List.filter (fun p' -> p' != p) !cache);
      p
  | None ->
      let p = compile_predictor t ~rows ~cols in
      cache := take predictor_cache_capacity (p :: !cache);
      p

type weights = (Tensor.t * Tensor.t * Tensor.t) list

let snapshot t = List.map Layer.snapshot t.layers
let restore t ws = List.iter2 Layer.restore t.layers ws
