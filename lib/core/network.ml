module A = Autodiff

type t = { layers : Layer.t list; config : Config.t }

let create_deep ?init rng config surrogate ~sizes =
  let rec pairs = function
    | a :: (b :: _ as rest) -> (a, b) :: pairs rest
    | [ _ ] | [] -> []
  in
  if List.length sizes < 2 then invalid_arg "Network.create_deep: need >= 2 sizes";
  let layers =
    List.map
      (fun (inputs, outputs) -> Layer.create ?init rng config surrogate ~inputs ~outputs)
      (pairs sizes)
  in
  { layers; config }

let create ?init rng config surrogate ~inputs ~outputs =
  create_deep ?init rng config surrogate ~sizes:[ inputs; config.Config.hidden; outputs ]

let of_layers config layers =
  (match layers with [] -> invalid_arg "Network.of_layers: no layers" | _ -> ());
  let rec check = function
    | a :: (b :: _ as rest) ->
        if Layer.outputs a <> Layer.inputs b then
          invalid_arg "Network.of_layers: layer widths do not chain";
        check rest
    | [ _ ] | [] -> ()
  in
  check layers;
  { layers; config }

let layers t = t.layers
let config t = t.config
let theta_shapes t = List.map Layer.theta_shape t.layers

let forward t ~noise x =
  if List.length noise <> List.length t.layers then
    invalid_arg "Network.forward: noise/layer count mismatch";
  List.fold_left2
    (fun acc layer layer_noise -> Layer.forward t.config layer ~noise:layer_noise acc)
    x t.layers noise

let logits t ~noise x =
  A.scale t.config.Config.logit_scale (forward t ~noise (A.const x))

let predict t ~noise x = Tensor.argmax_rows (A.value (logits t ~noise x))

let loss t ~noise ~x ~labels =
  A.softmax_cross_entropy ~logits:(logits t ~noise x) ~labels

let mc_loss t ~noises ~x ~labels =
  match noises with
  | [] -> invalid_arg "Network.mc_loss: no noise draws"
  | _ ->
      let n = float_of_int (List.length noises) in
      let total =
        List.fold_left
          (fun acc noise ->
            let l = loss t ~noise ~x ~labels in
            match acc with None -> Some l | Some s -> Some (A.add s l))
          None noises
      in
      (match total with Some s -> A.scale (1.0 /. n) s | None -> assert false)

let params_theta t = List.concat_map Layer.params_theta t.layers
let params_omega t = List.concat_map Layer.params_omega t.layers

let replicate t = { layers = List.map Layer.replicate t.layers; config = t.config }

(* One Monte-Carlo draw evaluated on a throwaway replica: the replica owns
   every autodiff node it creates, so draws never share mutable state and can
   run on any domain.  Returns the scalar loss and the gradients in the
   canonical parameter order (params_theta @ params_omega). *)
let draw_loss_and_grads t ~noise ~x ~labels =
  let replica = replicate t in
  let l = loss replica ~noise ~x ~labels in
  A.backward l;
  let grads =
    List.map A.grad (params_theta replica @ params_omega replica)
  in
  (Tensor.get (A.value l) 0 0, grads)

let mc_loss_pooled pool t ~noises ~x ~labels =
  match noises with
  | [] -> invalid_arg "Network.mc_loss: no noise draws"
  | _ ->
      let draws = Array.of_list noises in
      let n = Array.length draws in
      let per_draw =
        Parallel.Pool.map_array pool
          (fun noise -> draw_loss_and_grads t ~noise ~x ~labels)
          draws
      in
      (* Ordered reduction over the draw index: the summation order is fixed
         by the draw order alone, so the result is bit-identical for any
         worker count. *)
      let total_loss = ref 0.0 in
      let total_grads = ref [] in
      Array.iteri
        (fun i (l, grads) ->
          total_loss := !total_loss +. l;
          total_grads := (if i = 0 then grads else List.map2 Tensor.add !total_grads grads))
        per_draw;
      let inv_n = 1.0 /. float_of_int n in
      let grads = List.map (Tensor.scale inv_n) !total_grads in
      A.precomputed
        ~value:(Tensor.scalar (!total_loss *. inv_n))
        (List.combine (params_theta t @ params_omega t) grads)

type weights = (Tensor.t * Tensor.t * Tensor.t) list

let snapshot t = List.map Layer.snapshot t.layers
let restore t ws = List.iter2 Layer.restore t.layers ws
