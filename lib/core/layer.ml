module A = Autodiff

type t = { theta : A.t; act : Nonlinear.t; neg : Nonlinear.t }

let create ?(init = `Centered) rng config surrogate ~inputs ~outputs =
  if inputs < 1 || outputs < 1 then invalid_arg "Layer.create: empty layer";
  (* θ init. Rows: inputs, bias, dark.  `Centered (default): input
     conductances get random signs and small magnitudes while the bias and
     dark rows start positive and larger, so the initial crossbar output sits
     near the activation circuits' transition (≈ 0.3 V for the mid-range
     circuit) instead of in a flat saturated region, where training reliably
     collapses to a constant predictor.  `Random_sign is the naive scheme,
     kept for the initialization ablation. *)
  let centered r _ =
    if r < inputs then begin
      let mag = Rng.uniform rng ~lo:0.05 ~hi:0.3 in
      if Rng.float rng < 0.5 then -.mag else mag
    end
    else Rng.uniform rng ~lo:0.3 ~hi:0.6
  in
  let random_sign _ _ =
    let mag = Rng.uniform rng ~lo:config.Config.g_min ~hi:(config.Config.g_max /. 2.0) in
    if Rng.float rng < 0.5 then -.mag else mag
  in
  let f = match init with `Centered -> centered | `Random_sign -> random_sign in
  let theta = A.param (Tensor.init (inputs + 2) outputs f) in
  { theta; act = Nonlinear.create surrogate; neg = Nonlinear.create surrogate }

let of_parts surrogate ~theta ~act_w ~neg_w =
  if Tensor.rows theta < 3 then invalid_arg "Layer.of_parts: theta too small";
  let circuit w =
    if Tensor.shape w <> (1, Surrogate.Design_space.learnable_dim) then
      invalid_arg "Layer.of_parts: bad raw circuit vector";
    Nonlinear.create_from surrogate ~w_init:(Tensor.to_array w)
  in
  { theta = A.param (Tensor.copy theta); act = circuit act_w; neg = circuit neg_w }

let replicate t =
  {
    theta = A.param (Tensor.copy (A.value t.theta));
    act = Nonlinear.replicate t.act;
    neg = Nonlinear.replicate t.neg;
  }

let theta_shape t =
  Tensor.shape (A.value t.theta)

let inputs t = fst (theta_shape t) - 2
let outputs t = snd (theta_shape t)

(* Projection onto the printable set {0} ∪ [g_min, g_max] (by magnitude,
   keeping the sign); nearest-point projection, STE backward. *)
let project config v =
  let g_min = config.Config.g_min and g_max = config.Config.g_max in
  let mag = Float.abs v in
  let s = if v < 0.0 then -1.0 else 1.0 in
  if mag < g_min /. 2.0 then 0.0
  else if mag < g_min then s *. g_min
  else if mag > g_max then s *. g_max
  else v

(* Variation draws enter the graph as const leaf nodes so a compiled graph
   can be re-fed new draws with [Autodiff.set_value] + [Autodiff.refresh].
   The leaves own copies of the draw tensors: on reuse the new draw is
   blitted into them, which must never mutate a caller-owned tensor (fixed
   validation draws are reused across epochs). *)
type noise_nodes = { theta_n : A.t; act_n : A.t; neg_n : A.t }

let noise_nodes_of (noise : Noise.layer_noise) =
  {
    theta_n = A.const (Tensor.copy noise.Noise.theta);
    act_n = A.const (Tensor.copy noise.Noise.act_omega);
    neg_n = A.const (Tensor.copy noise.Noise.neg_omega);
  }

let set_noise_nodes nodes (noise : Noise.layer_noise) =
  A.set_value nodes.theta_n noise.Noise.theta;
  A.set_value nodes.act_n noise.Noise.act_omega;
  A.set_value nodes.neg_n noise.Noise.neg_omega

(* augment the batch with the bias column (V_b = 1) *)
let augment x =
  let batch = Tensor.rows (A.value x) in
  A.concat_cols x (A.const (Tensor.ones batch 1))

let crossbar config t ~theta_n ~x_aug ~inv_x ~n_in =
  let theta = A.mul (A.map_ste (project config) t.theta) theta_n in
  let pos = A.relu theta and neg_part = A.relu (A.neg theta) in
  let input_rows = n_in + 1 in
  (* split θ rows: input+bias rows feed the numerator; all rows (incl. the
     dark conductance) feed the denominator *)
  let pos_top = A.slice_rows pos 0 input_rows in
  let neg_top = A.slice_rows neg_part 0 input_rows in
  let numerator = A.add (A.matmul x_aug pos_top) (A.matmul inv_x neg_top) in
  let denominator = A.sum_rows (A.add pos neg_part) in
  A.div_rowvec numerator denominator

let check_width t x =
  let n_in = inputs t in
  if Tensor.cols (A.value x) <> n_in then
    invalid_arg "Layer.forward: input width mismatch";
  n_in

let forward_nodes config t nodes x =
  let n_in = check_width t x in
  let act_eta, neg_eta =
    Nonlinear.eta_pair t.act t.neg ~act_noise:nodes.act_n ~neg_noise:nodes.neg_n
  in
  let x_aug = augment x in
  let inv_x = A.neg (Nonlinear.apply_eta neg_eta x_aug) in
  let pre = crossbar config t ~theta_n:nodes.theta_n ~x_aug ~inv_x ~n_in in
  Nonlinear.apply_eta act_eta pre

let forward config t ~noise x = forward_nodes config t (noise_nodes_of noise) x

let preactivation config t ~noise x =
  let n_in = check_width t x in
  let nodes = noise_nodes_of noise in
  let _act_eta, neg_eta =
    Nonlinear.eta_pair t.act t.neg ~act_noise:nodes.act_n ~neg_noise:nodes.neg_n
  in
  let x_aug = augment x in
  let inv_x = A.neg (Nonlinear.apply_eta neg_eta x_aug) in
  crossbar config t ~theta_n:nodes.theta_n ~x_aug ~inv_x ~n_in

let printed_theta config t =
  Tensor.map (project config) (A.value t.theta)

let params_theta t = [ t.theta ]
let params_omega t = [ Nonlinear.raw_param t.act; Nonlinear.raw_param t.neg ]

let snapshot t =
  (Tensor.copy (A.value t.theta), Nonlinear.snapshot t.act, Nonlinear.snapshot t.neg)

let restore t (theta, act, neg) =
  let v = A.value t.theta in
  if Tensor.shape v <> Tensor.shape theta then invalid_arg "Layer.restore: shape mismatch";
  for r = 0 to Tensor.rows theta - 1 do
    for c = 0 to Tensor.cols theta - 1 do
      Tensor.set v r c (Tensor.get theta r c)
    done
  done;
  Nonlinear.restore t.act act;
  Nonlinear.restore t.neg neg
