type result = {
  mean_accuracy : float;
  std_accuracy : float;
  accuracies : float array;
}

let accuracy_under network noise ~x ~y =
  (* forward pass in place on this domain's cached replica *)
  let pred = Network.predict_cached network ~noise x in
  if Array.length pred <> Array.length y then
    invalid_arg "Evaluation.accuracy: label count mismatch";
  let hits = ref 0 in
  Array.iteri (fun i p -> if p = y.(i) then incr hits) pred;
  float_of_int !hits /. float_of_int (Array.length y)

let nominal_accuracy network ~x ~y =
  let shapes = Network.theta_shapes network in
  accuracy_under network (Noise.none ~theta_shapes:shapes) ~x ~y

(* Cache payload: the raw per-draw accuracies in [%h]; every summary
   statistic is recomputed from the decoded bits, so a hit is bit-identical
   to the evaluation it replaced. *)
let accs_line a =
  Printf.sprintf "accs %d%s" (Array.length a)
    (if Array.length a = 0 then "" else " " ^ Serialize.float_line a)

let accs_of_lines lines =
  match lines with
  | [ line ] -> (
      match String.split_on_char ' ' (String.trim line) with
      | "accs" :: nw :: words when int_of_string_opt nw = Some (List.length words)
        ->
          Serialize.floats_of_words words
      | _ -> failwith "Evaluation: bad accs line")
  | _ -> failwith "Evaluation: bad cache payload"

(* On a hit the evaluation rng is left untouched; callers hand every
   evaluation its own derived generator, so nothing downstream observes the
   skipped draws. *)
let with_cache cache compute =
  match cache with
  | None -> compute ()
  | Some (c, key) ->
      Cache.memoize c ~kind:"mceval" ~key
        ~encode:(fun a -> [ accs_line a ])
        ~decode:accs_of_lines compute

type mc_result = {
  mean : float;
  std : float;
  min : float;
  q05 : float;
  median : float;
  q95 : float;
  accuracies : float array;
}

let mc_result_under ?pool ?cache rng network ~model ~n ~x ~y =
  if n < 1 then invalid_arg "Evaluation.mc_result_under: n < 1";
  Variation.validate model;
  let accuracies =
    with_cache cache (fun () ->
        let pool = match pool with Some p -> p | None -> Parallel.get_pool () in
        let ctx = Variation.ctx_of_network network in
        (* Same determinism pattern as [mc_accuracy]: pre-draw sequentially on
           the calling domain, fan out the pure forward passes. *)
        let noises = Array.make n [] in
        for i = 0 to n - 1 do
          noises.(i) <- Variation.draw rng model ctx
        done;
        Parallel.Pool.map_array pool
          (fun noise -> accuracy_under network noise ~x ~y)
          noises)
  in
  {
    mean = Stats.mean accuracies;
    std = (if n > 1 then Stats.std accuracies else 0.0);
    min = Stats.min accuracies;
    q05 = Stats.quantile accuracies 0.05;
    median = Stats.median accuracies;
    q95 = Stats.quantile accuracies 0.95;
    accuracies;
  }

let mc_accuracy ?pool ?cache rng network ~epsilon ~n ~x ~y =
  if n < 1 then invalid_arg "Evaluation.mc_accuracy: n < 1";
  let shapes = Network.theta_shapes network in
  let accuracies =
    with_cache cache (fun () ->
        (* pnnlint:allow R5 exact-zero sentinel selects the nominal path;
           IEEE equality also accepts -0.0 *)
        if epsilon = 0.0 then [| nominal_accuracy network ~x ~y |]
        else begin
          let pool = match pool with Some p -> p | None -> Parallel.get_pool () in
          (* Pre-draw every noise record sequentially: the RNG stream is
             consumed in exactly the per-draw order of the sequential
             implementation, and the fan-out below is then a pure forward
             pass per draw. *)
          let noises = Array.make n [] in
          for i = 0 to n - 1 do
            noises.(i) <- Noise.draw rng ~epsilon ~theta_shapes:shapes
          done;
          Parallel.Pool.map_array pool
            (fun noise -> accuracy_under network noise ~x ~y)
            noises
        end)
  in
  {
    mean_accuracy = Stats.mean accuracies;
    std_accuracy = (if Array.length accuracies > 1 then Stats.std accuracies else 0.0);
    accuracies;
  }
