(** Aging-aware training — the extension the paper builds on (Zhao et al.,
    "Aging-Aware Training for Printed Neuromorphic Circuits", ICCAD 2022,
    reference [5]).

    Printed resistors drift over their lifetime.  We model each printed
    value's relative drift at life fraction [t ∈ [0,1]] as

      δ_i(t) = κ_i · t^β,   κ_i ~ U[0, κ_max]  (i.i.d. per component)

    with conductances decaying by (1 − δ) and the nonlinear circuits'
    resistances growing by (1 + δ); transistor geometry does not age.
    Aging-aware training minimizes the Monte-Carlo expectation of the loss
    over the device's lifetime (t ~ U[0,1]) — the same reparameterization
    machinery as variation-aware training, with a different noise law. *)

type model = {
  kappa_max : float;  (** maximum relative drift at end of life (e.g. 0.2) *)
  beta : float;  (** sub-linear drift exponent (e.g. 0.5) *)
}

val default_model : model
(** κ_max = 0.2, β = 0.5. *)

val to_variation : ?t_frac:float -> model -> Variation.model
(** The drift law as a composable {!Variation.model} — [Variation.Aging]
    with this model's parameters.  Omitting [t_frac] gives the lifetime
    sampler (t ~ U[0,1] per draw); passing it fixes the life fraction.
    Compose with other families, e.g.
    [Variation.Compose [to_variation m; Uniform 0.05]] for an aged device
    that was also printed imperfectly. *)

val draw :
  Rng.t -> model -> t_frac:float -> theta_shapes:(int * int) list -> Noise.t
(** One aging realization at a fixed life fraction. Raises
    [Invalid_argument] if [t_frac] is outside [0, 1]. *)

val draw_lifetime :
  Rng.t -> model -> theta_shapes:(int * int) list -> n:int -> Noise.t list
(** [n] realizations at life fractions drawn uniformly from [0, 1] —
    the training-time sampler. *)

val fit_aging_aware :
  ?pool:Parallel.Pool.t ->
  Rng.t -> model -> Network.t -> Training.data -> Training.result
(** {!Training.fit_under} with the lifetime model: training noise resamples
    t ~ U[0,1] every epoch, validation noise is fixed.  Train and validation
    streams are independent [Rng.split]s of [rng] — neither aliases the
    caller's stream. *)

val accuracy_over_lifetime :
  Rng.t ->
  model ->
  Network.t ->
  t_fracs:float list ->
  n:int ->
  x:Tensor.t ->
  y:int array ->
  (float * Evaluation.result) list
(** Accuracy at each life fraction, [n] Monte-Carlo κ draws each — the aging
    curve of a design. *)
