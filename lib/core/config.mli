(** Hyperparameters for printed neural networks (paper §IV-A).

    The paper's settings: topology [#input-3-#output], Adam with α_θ = 0.1
    for the crossbar conductances and α_ω ∈ {0, 0.005} for the nonlinear
    circuits (0 ⇒ non-learnable), variation ε ∈ {0, 5 %, 10 %}, N_train = 20
    Monte-Carlo samples, early stopping with patience 5000.  The defaults
    below are the scaled-down settings used by the committed experiment runs
    (see EXPERIMENTS.md); [paper ()] restores the full-scale values. *)

type t = {
  hidden : int;  (** hidden-layer width (paper: 3) *)
  lr_theta : float;  (** Adam learning rate for θ *)
  lr_omega : float;  (** Adam learning rate for 𝔴; 0 disables learning it *)
  epsilon : float;  (** component variation ε of U[1−ε, 1+ε]; 0 = nominal *)
  n_mc_train : int;  (** Monte-Carlo samples per training step *)
  n_mc_val : int;  (** fixed Monte-Carlo draws for the validation loss *)
  max_epochs : int;
  patience : int;
  g_min : float;  (** smallest printable (normalized) conductance *)
  g_max : float;  (** largest printable (normalized) conductance *)
  logit_scale : float;
      (** temperature applied to output voltages before softmax cross-entropy
          (output voltages live in ≈[0,1], so raw differences are tiny) *)
  val_every : int;
      (** epochs between validation passes (and early-stopping checks);
          1 validates every epoch as the paper's full runs do *)
}

val default : t
(** Scaled-down settings for this environment. *)

val paper : unit -> t
(** The paper's full-scale hyperparameters. *)

val learnable : t -> bool
(** [lr_omega > 0]. *)

val with_epsilon : t -> float -> t
val with_learnable : t -> bool -> t
(** Sets [lr_omega] to 0.005 or 0. *)
