(** Composable variation models — fault injection beyond the paper's noise.

    The paper stress-tests one non-ideality: i.i.d. multiplicative
    U[1−ε, 1+ε] printing error ({!Noise}).  Real printed circuits also suffer
    Gaussian process spread, correlated within-crossbar mismatch, hard
    defects (stuck resistors) and lifetime drift.  A {!model} describes any
    of these — or any composition of them — as a recipe for drawing
    multiplicative {!Noise.t} records, so the whole existing machinery
    (variation-aware training, Monte-Carlo evaluation, compiled replicas,
    the deterministic pool) applies to every family unchanged.

    {b Determinism contract.}  A draw consumes the [Rng.t] on the calling
    domain only, in a fixed per-layer order (θ row-major, then the
    activation circuit's ω, then the negative-weight circuit's ω; composed
    models draw in list order).  Callers that fan out Monte-Carlo work
    pre-draw sequentially and parallelize the pure forward passes, exactly
    as {!Evaluation.mc_accuracy} does, so results are bit-identical for any
    worker count.  [Uniform ε] reproduces {!Noise.draw} {e bit-identically}
    (same stream, same consumption). *)

type model =
  | Uniform of float
      (** The paper's family: every multiplier i.i.d. U[1−ε, 1+ε].
          Bit-identical to {!Noise.draw} with the same [Rng.t] state. *)
  | Gaussian of float
      (** Lognormal multiplicative spread: each multiplier is
          [exp(σ·z − σ²/2)] with [z] standard normal clamped to [±3]
          (mean-one up to the tail clamp, always positive).  [Gaussian 0.]
          gives exact all-ones multipliers. *)
  | Correlated of { global : float; local : float }
      (** Within-crossbar mismatch: one shared factor U[1−global, 1+global]
          per tensor (the whole θ crossbar, or one circuit's ω vector),
          multiplied by element-wise U[1−local, 1+local] noise. *)
  | Defects of { p_open : float; p_short : float }
      (** Per-resistor stuck-at faults.  Each printed θ entry independently
          goes stuck-open with probability [p_open] (magnitude forced to the
          [g_min] rail, sign kept) or stuck-short with probability [p_short]
          (forced to [g_max]); unprinted entries (θ = 0) cannot fail.  Each
          nonlinear-circuit resistance R1..R5 is forced to its Table-I
          {e high} rail on open and {e low} rail on short; transistor
          geometry (W, L) has no resistor to fail and is untouched.
          Requires a network-backed {!ctx} (the fault targets depend on the
          current printed values). *)
  | Aging of { kappa_max : float; beta : float; t_frac : float option }
      (** Lifetime drift δ = κ·t^β, κ ~ U[0, κ_max] per component:
          conductances decay by (1 − δ), circuit resistances grow by
          (1 + δ), geometry does not age ({!Aging.model} re-expressed).
          [t_frac = None] samples t ~ U[0,1] per draw (the training-time
          lifetime sampler); [Some t] fixes the life fraction. *)
  | Compose of model list
      (** Element-wise product of the component draws, drawn in list order
          from the same stream.  [Compose []] is nominal (all ones). *)

type ctx
(** What a draw needs to know about the target network: the per-layer θ
    shapes always; the printable rails and current printed values only for
    [Defects]. *)

val ctx_of_shapes : (int * int) list -> ctx
(** Shape-only context.  Sufficient for every family except [Defects]
    (which raises [Invalid_argument] when drawn against it). *)

val ctx_of_network : Network.t -> ctx
(** Full context: shapes, the config's [g_min]/[g_max] rails, and thunks
    reading the {e current} printed θ and circuit ω values at draw time —
    so a training-loop sampler tracks the moving parameters. *)

val validate : model -> unit
(** Raises [Invalid_argument] on out-of-range parameters: Uniform/Correlated
    magnitudes outside [0, 1), negative σ, defect probabilities outside
    [0, 1] or summing above 1, κ_max outside [0, 1), β ≤ 0, t_frac outside
    [0, 1]. *)

val name : model -> string
(** Stable short label, e.g. ["uniform(0.1)"], ["defects(0.02,0.01)"],
    ["compose(uniform(0.05)+defects(0.02,0))"] — used by reports and CSV. *)

val draw : Rng.t -> model -> ctx -> Noise.t
(** One realization.  Validates the model first. *)

val draw_many : Rng.t -> model -> ctx -> n:int -> Noise.t list

val sampler : Rng.t -> model -> ctx -> n:int -> unit -> Noise.t list
(** A training-time sampler: each call draws [n] fresh realizations from the
    captured [Rng.t] — plug for {!Training.fit}'s [train_sampler]. *)
