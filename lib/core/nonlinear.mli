(** A (learnable) nonlinear subcircuit instance inside a pNN.

    Implements the paper's Fig. 5 processing chain for the learnable
    parameter 𝔴:

      𝔴 --sigmoid--> (0,1)^7 --denormalize--> [R1; R3; R5; W; L; k1; k2]
        --reassemble (R2 = R1·k1, R4 = R3·k2, clip)--> printable ω
        --× ε_ω (variation)--> --extend + normalize--> surrogate η̂ --> η

    and the resulting tanh-like transfer applied to layer pre-activations:

      ptanh(v) = η1 + η2·tanh((v − η3)·η4)          (Eq. 2)
      inv(v)   = −ptanh(v)                          (Eq. 3)

    The clipping of R2 and R4 uses the straight-through estimator so training
    can push against the box. *)

type t

val create : Surrogate.Model.t -> t
(** Fresh instance with 𝔴 = 0, i.e. the mid-range circuit (all sigmoid
    outputs 0.5).  This is also the paper's fixed, non-learnable circuit: with
    α_ω = 0 the parameters simply never move. *)

val create_from : Surrogate.Model.t -> w_init:float array -> t
(** Start from a specific raw 𝔴 (length 7, pre-sigmoid). *)

val raw_param : t -> Autodiff.t
(** The learnable 1 × 7 leaf (pre-sigmoid 𝔴). *)

val replicate : t -> t
(** Deep copy with a fresh parameter leaf (the surrogate is shared,
    read-only); used to build per-domain network replicas. *)

val printable_omega : t -> noise:Tensor.t -> Autodiff.t
(** The 1 × 7 printable ω node after reassembly, clipping and variation —
    what would be sent to the printer (with [noise] all-ones). *)

val eta : t -> noise:Tensor.t -> Autodiff.t
(** The 1 × 4 η node for the given variation draw. *)

val eta_pair :
  t -> t -> act_noise:Autodiff.t -> neg_noise:Autodiff.t -> Autodiff.t * Autodiff.t
(** [eta_pair act neg ~act_noise ~neg_noise] evaluates both circuits' η in a
    single batched surrogate forward pass (one 2 × 7 MLP evaluation instead
    of two 1 × 7 ones) and returns [(η_act, η_neg)].  Noises enter as graph
    nodes so a reused graph can be fed new draws via {!Autodiff.set_value}.
    Each returned row is bit-identical to the corresponding {!eta}. *)

val apply_eta : Autodiff.t -> Autodiff.t -> Autodiff.t
(** [apply_eta η v] is ptanh(v) for an already-evaluated 1 × 4 η node. *)

val apply : t -> noise:Tensor.t -> Autodiff.t -> Autodiff.t
(** [apply t ~noise v] is ptanh(v) elementwise over the batch. *)

val apply_inv : t -> noise:Tensor.t -> Autodiff.t -> Autodiff.t
(** Eq. 3: the negative-weight transfer −ptanh(v). *)

val omega_values : t -> float array
(** Current printable ω (no variation), as plain floats — for reports. *)

val eta_values : t -> Fit.Ptanh.eta
(** Current η (no variation) through the surrogate. *)

val snapshot : t -> Tensor.t
val restore : t -> Tensor.t -> unit
