(** A printed neural network: a stack of printed layers (paper topology
    [#input-3-#output]). *)

type t

val create :
  ?init:[ `Centered | `Random_sign ] ->
  Rng.t -> Config.t -> Surrogate.Model.t -> inputs:int -> outputs:int -> t
(** Two printed layers with the configured hidden width. *)

val create_deep :
  ?init:[ `Centered | `Random_sign ] ->
  Rng.t -> Config.t -> Surrogate.Model.t -> sizes:int list -> t
(** Arbitrary depth (sizes includes input and output widths) — used by the
    extension experiments. *)

val of_layers : Config.t -> Layer.t list -> t
(** Reassemble a network from layers (widths must chain); used by
    {!Serialize}. *)

val layers : t -> Layer.t list
val config : t -> Config.t
val theta_shapes : t -> (int * int) list
(** Per-layer θ shapes, for {!Noise.draw}. *)

val forward : t -> noise:Noise.t -> Autodiff.t -> Autodiff.t
(** Output-layer activations (voltages in ≈[0,1]), batch × outputs. *)

val logits : t -> noise:Noise.t -> Tensor.t -> Autodiff.t
(** Temperature-scaled activations for the cross-entropy loss. *)

val predict : t -> noise:Noise.t -> Tensor.t -> int array
(** Argmax classification under a given variation draw. *)

val predict_cached : t -> noise:Noise.t -> Tensor.t -> int array
(** As {!predict}, but running the forward pass in place over this domain's
    cached compiled replica (built on first use, keyed by the network and
    input tensor identities, reused across draws).  Bit-identical to
    {!predict}; the Monte-Carlo evaluation hot path. *)

val loss : t -> noise:Noise.t -> x:Tensor.t -> labels:Tensor.t -> Autodiff.t
(** Softmax cross-entropy of one variation draw. *)

val mc_loss : t -> noises:Noise.t list -> x:Tensor.t -> labels:Tensor.t -> Autodiff.t
(** Monte-Carlo expected loss: mean of {!loss} over the draws (paper Eq. for
    variation-aware training), as a single sequential autodiff graph. *)

val replicate : t -> t
(** Deep copy with fresh parameter leaves (shared read-only surrogate). *)

val mc_loss_pooled :
  Parallel.Pool.t ->
  t -> noises:Noise.t list -> x:Tensor.t -> labels:Tensor.t -> Autodiff.t
(** Data-parallel {!mc_loss}: each draw's loss and gradients are computed on
    a per-domain replica, then reduced in draw order (a fixed-order sum, so
    the returned value and the gradients {!Autodiff.backward} injects into
    this network's parameters are bit-identical for any pool size).  The
    result supports {!Autodiff.backward} like {!mc_loss} does.

    Each worker domain compiles its replica graph once and reuses it across
    draws and epochs, re-running forward/backward in place after blitting
    the master's parameters and the draw's noise into the leaves; gradients
    are reduced in place into the first draw's buffers.  Allocation per draw
    is limited to small per-parameter gradient copies. *)

val mc_loss_pooled_alloc :
  Parallel.Pool.t ->
  t -> noises:Noise.t list -> x:Tensor.t -> labels:Tensor.t -> Autodiff.t
(** Reference implementation of {!mc_loss_pooled} that builds a throwaway
    replica graph per draw (the pre-cache behaviour).  Bit-identical to
    {!mc_loss_pooled}; kept for regression tests and benchmarks. *)

val mc_loss_value :
  Parallel.Pool.t ->
  t -> noises:Noise.t list -> x:Tensor.t -> labels:Tensor.t -> float
(** Forward-only pooled Monte-Carlo loss (no gradients): bit-identical to
    [Tensor.get (Autodiff.value (mc_loss ...)) 0 0] but runs on the cached
    replicas.  The validation-loss hot path. *)

val draw_loss_and_grads :
  t -> noise:Noise.t -> x:Tensor.t -> labels:Tensor.t -> float * Tensor.t list
(** One Monte-Carlo draw on this domain's cached replica: scalar loss plus
    gradient copies in canonical order ([params_theta @ params_omega]).
    Exposed for tests and benchmarks. *)

val draw_loss_and_grads_alloc :
  t -> noise:Noise.t -> x:Tensor.t -> labels:Tensor.t -> float * Tensor.t list
(** As {!draw_loss_and_grads} but building a throwaway replica graph
    (bit-identical; the allocating reference). *)

type predictor
(** A serve-time compiled forward graph with a fixed-shape blittable input
    leaf: one compilation answers an unbounded stream of same-shaped batches
    (the replica caches above key on input {e identity}, which only helps
    when the same batch tensor is reused).  Single-domain mutable state, like
    every compiled graph. *)

val compile_predictor : t -> rows:int -> cols:int -> predictor
(** Compile a logits graph for [rows × cols] input batches against a fresh
    replica of this network (nominal all-ones noise pre-bound). *)

val predictor_shape : predictor -> int * int
(** The [rows × cols] input shape the predictor was compiled for. *)

val predictor_logits : predictor -> ?noise:Noise.t -> Tensor.t -> Tensor.t
(** Blit the batch (and the master's current parameters, and [noise] or the
    nominal all-ones draw) into the graph leaves, refresh, and return the
    live temperature-scaled logits ([rows × outputs]).  Each row is
    bit-identical to {!predict}'s logits for that row alone — the forward
    pass is row-independent, so batch composition never changes an answer.
    The returned tensor is the graph's root buffer: read or copy it before
    the next call.  Raises [Invalid_argument] on a shape mismatch. *)

val predictor_predict : predictor -> ?noise:Noise.t -> Tensor.t -> int array
(** Argmax rows of {!predictor_logits}; bit-identical to {!predict}. *)

val predictor_cached : t -> rows:int -> cols:int -> predictor
(** This domain's LRU-cached {!compile_predictor} (keyed by network identity
    and batch shape) — the serving hot path. *)

val params_theta : t -> Autodiff.t list
val params_omega : t -> Autodiff.t list

type weights = (Tensor.t * Tensor.t * Tensor.t) list
(** Per-layer (θ, act 𝔴, neg 𝔴) value copies, outermost layer first.
    Concrete so checkpointing can serialize the best-epoch snapshot. *)

val snapshot : t -> weights
val restore : t -> weights -> unit
