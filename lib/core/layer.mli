(** One printed neuron layer: resistor crossbar + negative-weight circuits +
    ptanh activation circuits.

    The crossbar implements Eq. 1.  Each output column z has surrogate
    conductances θ with one row per input, one bias row (V_b = 1 V) and one
    "dark" row (R_d to ground, denominator only):

      V_z = (Σ_i θ⁺_i·x_i  +  θ⁻_i·inv(x_i)) / Σ_j |θ_j|

    where θ⁺ = max(θ, 0), θ⁻ = max(−θ, 0).  Wherever θ has a definite sign
    this matches the paper's semantics (|θ| printed, sign = input inverted via
    the negative-weight circuit) while staying differentiable through zero.
    θ magnitudes are projected onto the printable set
    [{0} ∪ [G_min, G_max]] with a straight-through estimator. *)

type t = {
  theta : Autodiff.t;  (** (n_in + 2) × n_out; rows: inputs, bias, dark *)
  act : Nonlinear.t;  (** this layer's ptanh circuit *)
  neg : Nonlinear.t;  (** this layer's negative-weight circuit *)
}

val create :
  ?init:[ `Centered | `Random_sign ] ->
  Rng.t -> Config.t -> Surrogate.Model.t -> inputs:int -> outputs:int -> t
(** [init] selects the θ initialization: [`Centered] (default) biases the
    bias/dark rows so the initial crossbar output lands on the activation
    transition; [`Random_sign] is the naive scheme (ablation). *)

val of_parts :
  Surrogate.Model.t -> theta:Tensor.t -> act_w:Tensor.t -> neg_w:Tensor.t -> t
(** Reassemble a layer from saved parts (θ and the two raw 1 × 7 𝔴 vectors);
    used by {!Serialize}. *)

val replicate : t -> t
(** Deep copy with fresh parameter leaves (θ and both 𝔴 vectors); the
    surrogate model is shared.  Used for per-domain data-parallel replicas. *)

val theta_shape : t -> int * int
val inputs : t -> int
val outputs : t -> int

val forward :
  Config.t -> t -> noise:Noise.layer_noise -> Autodiff.t -> Autodiff.t
(** Batch forward: [n × n_in] → [n × n_out] (after the ptanh activation).
    Both of the layer's nonlinear circuits go through a single batched
    surrogate evaluation ({!Nonlinear.eta_pair}). *)

(** {2 Reusable-graph building blocks}

    The variation draw enters the graph through three const leaf nodes per
    layer, so a compiled replica graph can be re-fed new draws in place
    ({!set_noise_nodes} + {!Autodiff.refresh}) instead of being rebuilt —
    see {!Network.mc_loss_pooled}. *)

type noise_nodes = { theta_n : Autodiff.t; act_n : Autodiff.t; neg_n : Autodiff.t }

val noise_nodes_of : Noise.layer_noise -> noise_nodes
(** Fresh const leaves holding {e copies} of the draw tensors (the caller
    keeps ownership of the originals). *)

val set_noise_nodes : noise_nodes -> Noise.layer_noise -> unit
(** Blit a new draw into the leaves (shape-checked). *)

val forward_nodes : Config.t -> t -> noise_nodes -> Autodiff.t -> Autodiff.t
(** As {!forward}, with the noise already in the graph. *)

val preactivation :
  Config.t -> t -> noise:Noise.layer_noise -> Autodiff.t -> Autodiff.t
(** The crossbar output V_z before the activation circuit (for analysis). *)

val printed_theta : Config.t -> t -> Tensor.t
(** The projected conductance matrix that would be printed (signed). *)

val params_theta : t -> Autodiff.t list
val params_omega : t -> Autodiff.t list
val snapshot : t -> Tensor.t * Tensor.t * Tensor.t
val restore : t -> Tensor.t * Tensor.t * Tensor.t -> unit
