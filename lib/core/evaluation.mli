(** Monte-Carlo test evaluation (paper §IV-C): a trained pNN is tested under
    [n] independent variation draws; the mean and standard deviation of the
    test accuracy over the draws are the paper's reported accuracy and
    robustness. *)

type result = {
  mean_accuracy : float;
  std_accuracy : float;
      (** sample standard deviation over [accuracies]; [0.0] whenever
          [accuracies] has a single element *)
  accuracies : float array;
      (** one entry per Monte-Carlo draw, in draw order.  Length is exactly
          [n] when [epsilon > 0] — and exactly [1] when [epsilon = 0],
          regardless of [n] (see {!mc_accuracy}). *)
}

val mc_accuracy :
  ?pool:Parallel.Pool.t ->
  ?cache:Cache.t * string ->
  Rng.t -> Network.t -> epsilon:float -> n:int -> x:Tensor.t -> y:int array -> result
(** Evaluates [n] variation draws of magnitude [epsilon].

    {b [epsilon = 0] short-circuit}: with no variation every draw is the same
    deterministic forward pass, so the function evaluates once and returns a
    {b 1-element} [accuracies] array (not [n] copies); [mean_accuracy] is
    that single accuracy and [std_accuracy] is [0.0].

    The [n] noise records are pre-drawn from [rng] in draw order, then the
    (pure) forward passes are fanned out over [pool] (default: the shared
    {!Parallel.get_pool}).  Results are bit-identical for any worker count,
    and the RNG stream is consumed exactly as by a sequential evaluation.

    [cache] is an optional [(store, key)] pair memoizing the raw per-draw
    accuracies; the key must cover everything the draws depend on (network
    content hash, [epsilon], [n], test-set identity and the evaluation seed).
    On a hit the summary statistics are recomputed from the decoded [%h]
    bits — bit-identical to the evaluation they replace — and [rng] is left
    untouched (callers hand each evaluation its own derived generator).

    @raise Invalid_argument if [n < 1]. *)

val nominal_accuracy : Network.t -> x:Tensor.t -> y:int array -> float

type mc_result = {
  mean : float;
  std : float;  (** sample std; [0.0] when [n = 1] *)
  min : float;  (** worst draw — the robustness floor *)
  q05 : float;
  median : float;
  q95 : float;
  accuracies : float array;  (** one entry per draw, in draw order *)
}
(** Distribution summary of the Monte-Carlo test accuracy — the tails matter
    for fault models, where the mean hides rare catastrophic draws. *)

val mc_result_under :
  ?pool:Parallel.Pool.t ->
  ?cache:Cache.t * string ->
  Rng.t ->
  Network.t ->
  model:Variation.model -> n:int -> x:Tensor.t -> y:int array -> mc_result
(** Evaluates [n] draws from an arbitrary {!Variation.model} (always [n]
    draws — no nominal short-circuit) and summarizes the accuracy
    distribution.  Pre-draws the noise sequentially, fans the pure forward
    passes out over [pool]: bit-identical for any worker count.  [cache] as
    in {!mc_accuracy} (the key must additionally cover the model).

    @raise Invalid_argument if [n < 1] or the model fails
    {!Variation.validate}. *)
