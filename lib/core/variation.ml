type model =
  | Uniform of float
  | Gaussian of float
  | Correlated of { global : float; local : float }
  | Defects of { p_open : float; p_short : float }
  | Aging of { kappa_max : float; beta : float; t_frac : float option }
  | Compose of model list

(* [printed] is a thunk so a training-loop sampler reads the parameters the
   optimizer is currently moving, not a snapshot from ctx-creation time. *)
type ctx = {
  theta_shapes : (int * int) list;
  rails : (float * float) option; (* printable (g_min, g_max) *)
  printed : (unit -> (Tensor.t * float array * float array) list) option;
      (* per layer: printed θ, act ω values, neg ω values *)
}

let ctx_of_shapes theta_shapes = { theta_shapes; rails = None; printed = None }

let ctx_of_network network =
  let config = Network.config network in
  {
    theta_shapes = Network.theta_shapes network;
    rails = Some (config.Config.g_min, config.Config.g_max);
    printed =
      Some
        (fun () ->
          List.map
            (fun layer ->
              ( Layer.printed_theta config layer,
                Nonlinear.omega_values layer.Layer.act,
                Nonlinear.omega_values layer.Layer.neg ))
            (Network.layers network));
  }

let rec validate = function
  | Uniform epsilon ->
      if epsilon < 0.0 || epsilon >= 1.0 then
        invalid_arg "Variation: Uniform epsilon outside [0,1)"
  | Gaussian sigma ->
      if sigma < 0.0 || not (Float.is_finite sigma) then
        invalid_arg "Variation: Gaussian sigma < 0"
  | Correlated { global; local } ->
      if global < 0.0 || global >= 1.0 || local < 0.0 || local >= 1.0 then
        invalid_arg "Variation: Correlated magnitudes outside [0,1)"
  | Defects { p_open; p_short } ->
      if p_open < 0.0 || p_short < 0.0 || p_open +. p_short > 1.0 then
        invalid_arg "Variation: Defects probabilities outside [0,1]"
  | Aging { kappa_max; beta; t_frac } ->
      if kappa_max < 0.0 || kappa_max >= 1.0 then
        invalid_arg "Variation: Aging kappa_max outside [0,1)";
      if beta <= 0.0 then invalid_arg "Variation: Aging beta <= 0";
      (match t_frac with
      | Some t when t < 0.0 || t > 1.0 ->
          invalid_arg "Variation: Aging t_frac outside [0,1]"
      | _ -> ())
  | Compose models -> List.iter validate models

let rec name = function
  | Uniform epsilon -> Printf.sprintf "uniform(%g)" epsilon
  | Gaussian sigma -> Printf.sprintf "gaussian(%g)" sigma
  | Correlated { global; local } -> Printf.sprintf "correlated(%g,%g)" global local
  | Defects { p_open; p_short } -> Printf.sprintf "defects(%g,%g)" p_open p_short
  | Aging { kappa_max; beta; t_frac } -> (
      match t_frac with
      | None -> Printf.sprintf "aging(%g,%g)" kappa_max beta
      | Some t -> Printf.sprintf "aging(%g,%g,t=%g)" kappa_max beta t)
  | Compose models -> "compose(" ^ String.concat "+" (List.map name models) ^ ")"

let omega_dim = Surrogate.Design_space.dim

(* Each family draws in the same fixed per-layer order — θ row-major, then
   the activation ω, then the negative-weight ω — sequenced explicitly with
   lets (record-literal field order is not an evaluation order). *)
let layer_noise ~theta ~act ~neg (r, c) =
  let th = theta r c in
  let a = act () in
  let ng = neg () in
  { Noise.theta = th; act_omega = a; neg_omega = ng }

let draw_gaussian rng ~sigma ~theta_shapes =
  let m _ _ =
    let z = Rng.normal rng in
    let z = Float.max (-3.0) (Float.min 3.0 z) in
    exp ((sigma *. z) -. (0.5 *. sigma *. sigma))
  in
  List.map
    (layer_noise
       ~theta:(fun r c -> Tensor.init r c m)
       ~act:(fun () -> Tensor.init 1 omega_dim m)
       ~neg:(fun () -> Tensor.init 1 omega_dim m))
    theta_shapes

let draw_correlated rng ~global ~local ~theta_shapes =
  (* one shared factor per tensor, then element-wise noise; when a magnitude
     is 0 the uniform draw collapses to exactly 1.0 (lo = hi = 1), keeping
     the consumption pattern uniform across parameter values *)
  let u magnitude = Rng.uniform rng ~lo:(1.0 -. magnitude) ~hi:(1.0 +. magnitude) in
  let tensor r c =
    let shared = u global in
    Tensor.init r c (fun _ _ -> shared *. u local)
  in
  List.map
    (layer_noise
       ~theta:(fun r c -> tensor r c)
       ~act:(fun () -> tensor 1 omega_dim)
       ~neg:(fun () -> tensor 1 omega_dim))
    theta_shapes

let draw_defects rng ~p_open ~p_short ~ctx =
  let printed =
    match ctx.printed with
    | Some f -> f ()
    | None -> invalid_arg "Variation.draw: Defects requires a network-backed ctx"
  in
  let g_min, g_max =
    match ctx.rails with
    | Some rails -> rails
    | None -> invalid_arg "Variation.draw: Defects requires a network-backed ctx"
  in
  let r_lo = Surrogate.Design_space.omega_lo
  and r_hi = Surrogate.Design_space.omega_hi in
  if List.length printed <> List.length ctx.theta_shapes then
    invalid_arg "Variation.draw: ctx layer count mismatch";
  List.map2
    (fun shape (theta_p, act_omega, neg_omega) ->
      (* one uniform per component, drawn whether or not it can fail, so the
         stream layout is independent of the current parameter values *)
      let theta r c =
        if Tensor.shape theta_p <> (r, c) then
          invalid_arg "Variation.draw: printed theta shape mismatch";
        Tensor.init r c (fun i j ->
            let u = Rng.float rng in
            let g = Tensor.get theta_p i j in
            (* pnnlint:allow R5 unprinted conductances are exactly 0.0;
               IEEE equality also treats -0.0 as unprinted *)
            if g = 0.0 then 1.0
            else if u < p_open then g_min /. Float.abs g
            else if u < p_open +. p_short then g_max /. Float.abs g
            else 1.0)
      in
      let omega values () =
        Tensor.init 1 omega_dim (fun _ j ->
            let u = Rng.float rng in
            if j >= 5 then 1.0 (* W, L: no resistor to fail *)
            else if u < p_open then r_hi.(j) /. values.(j)
            else if u < p_open +. p_short then r_lo.(j) /. values.(j)
            else 1.0)
      in
      layer_noise ~theta ~act:(omega act_omega) ~neg:(omega neg_omega) shape)
    ctx.theta_shapes printed

let draw_aging rng ~kappa_max ~beta ~t ~theta_shapes =
  let drift () = Rng.uniform rng ~lo:0.0 ~hi:kappa_max *. (t ** beta) in
  List.map
    (layer_noise
       ~theta:(fun r c -> Tensor.init r c (fun _ _ -> 1.0 -. drift ()))
       ~act:(fun () ->
         Tensor.init 1 omega_dim (fun _ j -> if j >= 5 then 1.0 else 1.0 +. drift ()))
       ~neg:(fun () ->
         Tensor.init 1 omega_dim (fun _ j -> if j >= 5 then 1.0 else 1.0 +. drift ())))
    theta_shapes

let rec draw_validated rng model ctx =
  match model with
  | Uniform epsilon ->
      (* delegate to the original implementation: bit-identical stream *)
      Noise.draw rng ~epsilon ~theta_shapes:ctx.theta_shapes
  | Gaussian sigma -> draw_gaussian rng ~sigma ~theta_shapes:ctx.theta_shapes
  | Correlated { global; local } ->
      draw_correlated rng ~global ~local ~theta_shapes:ctx.theta_shapes
  | Defects { p_open; p_short } -> draw_defects rng ~p_open ~p_short ~ctx
  | Aging { kappa_max; beta; t_frac } ->
      let t = match t_frac with Some t -> t | None -> Rng.float rng in
      draw_aging rng ~kappa_max ~beta ~t ~theta_shapes:ctx.theta_shapes
  | Compose models -> (
      (* draw each component in list order from the same stream, then take
         the element-wise product *)
      let draws = List.map (fun m -> draw_validated rng m ctx) models in
      match draws with
      | [] -> Noise.none ~theta_shapes:ctx.theta_shapes
      | first :: rest ->
          List.fold_left
            (fun acc d ->
              List.map2
                (fun (a : Noise.layer_noise) (b : Noise.layer_noise) ->
                  {
                    Noise.theta = Tensor.mul a.Noise.theta b.Noise.theta;
                    act_omega = Tensor.mul a.Noise.act_omega b.Noise.act_omega;
                    neg_omega = Tensor.mul a.Noise.neg_omega b.Noise.neg_omega;
                  })
                acc d)
            first rest)

let draw rng model ctx =
  validate model;
  draw_validated rng model ctx

let draw_many rng model ctx ~n =
  validate model;
  List.init n (fun _ -> draw_validated rng model ctx)

let sampler rng model ctx ~n =
  validate model;
  fun () -> List.init n (fun _ -> draw_validated rng model ctx)
