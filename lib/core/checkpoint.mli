(** Deterministic training checkpoints.

    A checkpoint captures {e everything} the training loop reads at an epoch
    boundary: the parameter tensors, the best-validation snapshot, the
    {!Nn.Train.state} progress record, every optimizer's moment estimates and
    the RNG stream position consumed by in-loop noise sampling.  Restoring it
    and re-entering the loop therefore reproduces the uninterrupted run
    bit-for-bit — the determinism contract survives a crash.

    Checkpoints live in {!Cache.Blob} files (atomic write, checksummed, tag
    ["ckpt"]), addressed by path rather than content key: the {e caller}
    derives the path from the cell's cache key, so a checkpoint can only ever
    resume the exact (config, dataset, seed, arm) cell that wrote it.  A
    missing, corrupt or incompatible file degrades to a fresh start, never to
    a misparse. *)

type t

val save :
  path:string ->
  config:Config.t ->
  rng:Rng.t ->
  state:Nn.Train.state ->
  network:Network.t ->
  best:Network.weights ->
  optimizers:(Nn.Optimizer.t * Autodiff.t list) list ->
  unit
(** Atomically write a checkpoint of the loop's current position.  [rng] is
    the generator consumed {e inside} the epoch loop (training-noise
    sampling); pre-loop streams are re-derived from the seed on resume. *)

val load : string -> t option
(** [None] when the file is missing, corrupt, or unparseable. *)

val matches : t -> Config.t -> bool
(** Whether the checkpoint was written under exactly this training config —
    the cheap guard callers check before {!apply}. *)

val apply :
  t ->
  rng:Rng.t ->
  state:Nn.Train.state ->
  network:Network.t ->
  optimizers:(Nn.Optimizer.t * Autodiff.t list) list ->
  Network.weights
(** Restore in place: network parameters, loop state, optimizer moments and
    the RNG stream position.  Returns the best-validation weights snapshot.
    Structure is validated (architecture shapes, optimizer group count)
    {e before} any mutation; raises [Failure] on mismatch, leaving the fresh
    start untouched. *)
