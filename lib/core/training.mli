(** Nominal and variation-aware training of pNNs (paper §III-C).

    Nominal training minimizes the deterministic loss L(θ, 𝔴).  Variation-
    aware training minimizes the Monte-Carlo estimate of
    E_{ε_θ, ε_ω}[L(ε_θ·θ, ε_ω·ω)] with N fresh draws per epoch.  Two Adam
    optimizers drive the two parameter groups (α_θ, α_ω); α_ω = 0 reproduces
    the non-learnable ablation arm. *)

type data = {
  x_train : Tensor.t;
  y_train : Tensor.t;  (** one-hot *)
  x_val : Tensor.t;
  y_val : Tensor.t;
}

type result = {
  network : Network.t;
  history : Nn.Train.history;
  val_loss : float;  (** best validation loss (MC-averaged when ε > 0) *)
}

val of_split : n_classes:int -> Datasets.Synth.split -> data

type checkpoint = {
  ckpt_path : string;  (** blob file location (inside the cache tree) *)
  every : int;  (** write a checkpoint every [every] completed epochs *)
  resume : bool;  (** restore from [ckpt_path] before the first epoch *)
  interrupt_after : int option;
      (** crash-injection test hook: raise {!Interrupted} once this many
          epochs have completed (after any due checkpoint write) *)
}
(** Periodic checkpointing for {!fit}: every state the loop reads — weights,
    best snapshot, progress, optimizer moments, in-loop RNG position — is
    persisted atomically, so an interrupted run resumed with [resume = true]
    finishes bit-identically to an uninterrupted one.  A missing, corrupt or
    mismatched checkpoint silently falls back to a fresh start. *)

exception Interrupted
(** Raised by the [interrupt_after] hook; propagates out of {!fit} like any
    crash would. *)

val fit :
  ?pool:Parallel.Pool.t ->
  ?train_sampler:(unit -> Noise.t list) ->
  ?val_noises:Noise.t list ->
  ?sampler_rng:Rng.t ->
  ?checkpoint:checkpoint ->
  Rng.t ->
  Network.t ->
  data ->
  result
(** Trains the given network in place according to its config ([epsilon = 0]
    ⇒ nominal, else variation-aware with [n_mc_train] draws per epoch) and
    restores the best-validation weights.  [train_sampler] / [val_noises]
    override the default variation model — the hook used by aging-aware
    training ({!Aging}).

    The per-epoch Monte-Carlo loss runs data-parallel over [pool] (default:
    the shared {!Parallel.get_pool}) via {!Network.mc_loss_pooled}; noises
    are drawn on the training loop's domain, so the RNG stream and the
    resulting parameter trajectory are bit-identical for any pool size.

    [sampler_rng] names the generator consumed {e inside} the epoch loop
    (defaults to [rng], which is what the default training sampler draws
    from); its stream position is saved in every [checkpoint] so a resumed
    run continues the noise sequence exactly.  Callers passing a custom
    [train_sampler] that draws from a different generator must name it here
    for checkpointing to be exact. *)

val fit_under :
  ?pool:Parallel.Pool.t ->
  ?checkpoint:checkpoint ->
  Rng.t -> model:Variation.model -> Network.t -> data -> result
(** {!fit} with training and validation noise drawn from an arbitrary
    {!Variation.model} instead of the config's uniform ε — variation-aware
    training against any fault family.  The training sampler and the fixed
    validation draws get independent sub-streams via [Rng.split] (the
    caller's generator is advanced by exactly two splits and is never
    aliased), and fresh training draws target the {e current} parameters, so
    defect models track the optimizer.  Raises [Invalid_argument] on an
    ill-formed model ({!Variation.validate}). *)

val train_fresh :
  ?pool:Parallel.Pool.t ->
  ?init:[ `Centered | `Random_sign ] ->
  ?checkpoint:checkpoint ->
  Rng.t -> Config.t -> Surrogate.Model.t -> n_classes:int -> Datasets.Synth.split -> result
(** Convenience: build the paper-topology network for a dataset split and
    {!fit} it. *)

val result_lines : result -> string list
val result_of_lines : Surrogate.Model.t -> string list -> result
(** Cache codec for a completed run (network + full history, [%h]-exact:
    a cache hit is bit-identical to the compute it replaced).
    [result_of_lines] raises [Failure] on malformed input. *)
