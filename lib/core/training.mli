(** Nominal and variation-aware training of pNNs (paper §III-C).

    Nominal training minimizes the deterministic loss L(θ, 𝔴).  Variation-
    aware training minimizes the Monte-Carlo estimate of
    E_{ε_θ, ε_ω}[L(ε_θ·θ, ε_ω·ω)] with N fresh draws per epoch.  Two Adam
    optimizers drive the two parameter groups (α_θ, α_ω); α_ω = 0 reproduces
    the non-learnable ablation arm. *)

type data = {
  x_train : Tensor.t;
  y_train : Tensor.t;  (** one-hot *)
  x_val : Tensor.t;
  y_val : Tensor.t;
}

type result = {
  network : Network.t;
  history : Nn.Train.history;
  val_loss : float;  (** best validation loss (MC-averaged when ε > 0) *)
}

val of_split : n_classes:int -> Datasets.Synth.split -> data

val fit :
  ?pool:Parallel.Pool.t ->
  ?train_sampler:(unit -> Noise.t list) ->
  ?val_noises:Noise.t list ->
  Rng.t ->
  Network.t ->
  data ->
  result
(** Trains the given network in place according to its config ([epsilon = 0]
    ⇒ nominal, else variation-aware with [n_mc_train] draws per epoch) and
    restores the best-validation weights.  [train_sampler] / [val_noises]
    override the default variation model — the hook used by aging-aware
    training ({!Aging}).

    The per-epoch Monte-Carlo loss runs data-parallel over [pool] (default:
    the shared {!Parallel.get_pool}) via {!Network.mc_loss_pooled}; noises
    are drawn on the training loop's domain, so the RNG stream and the
    resulting parameter trajectory are bit-identical for any pool size. *)

val fit_under :
  ?pool:Parallel.Pool.t -> Rng.t -> model:Variation.model -> Network.t -> data -> result
(** {!fit} with training and validation noise drawn from an arbitrary
    {!Variation.model} instead of the config's uniform ε — variation-aware
    training against any fault family.  The training sampler and the fixed
    validation draws get independent sub-streams via [Rng.split] (the
    caller's generator is advanced by exactly two splits and is never
    aliased), and fresh training draws target the {e current} parameters, so
    defect models track the optimizer.  Raises [Invalid_argument] on an
    ill-formed model ({!Variation.validate}). *)

val train_fresh :
  ?pool:Parallel.Pool.t ->
  ?init:[ `Centered | `Random_sign ] ->
  Rng.t -> Config.t -> Surrogate.Model.t -> n_classes:int -> Datasets.Synth.split -> result
(** Convenience: build the paper-topology network for a dataset split and
    {!fit} it. *)
