let magic = "pnn-save"
let format_version = 2
let schema_tag = Printf.sprintf "%s-%d" magic format_version

(* The active kernel backend is part of the effective numeric schema: the
   bigarray backend may differ from the reference in the last ulp of matmul
   accumulations, so cached experiment results must never cross backends.
   Read at call time (not bound at init) so [Tensor.set_backend] in tests is
   honored. *)
let cache_schema () = schema_tag ^ "+" ^ Tensor.backend_tag ()

let float_line a =
  String.concat " " (Array.to_list (Array.map (Printf.sprintf "%h") a))

(* A truncated or corrupted save must surface as a clear [Failure
   "Serialize: ..."] the loader can report, never as an [Invalid_argument]
   or a bare [Failure "int_of_string"] escaping from a field parse.  Every
   field goes through an [_opt] parse, and value counts are checked against
   the declared shape before any [Tensor.create]. *)
let int_field what s =
  match int_of_string_opt s with
  | Some v -> v
  | None -> failwith (Printf.sprintf "Serialize: bad %s %S" what s)

let float_field what s =
  match float_of_string_opt s with
  | Some v -> v
  | None -> failwith (Printf.sprintf "Serialize: bad %s %S" what s)

let floats_of_words words =
  Array.of_list (List.map (float_field "float value") words)

let tensor_line t =
  Printf.sprintf "%d %d %s" (Tensor.rows t) (Tensor.cols t)
    (float_line (Tensor.to_array t))

let tensor_of_line line =
  match String.split_on_char ' ' (String.trim line) with
  | rows :: cols :: values ->
      let rows = int_field "tensor rows" rows
      and cols = int_field "tensor cols" cols in
      if rows < 0 || cols < 0 then
        failwith "Serialize: negative tensor dimension";
      let expect = rows * cols and got = List.length values in
      if got <> expect then
        failwith
          (Printf.sprintf
             "Serialize: truncated tensor line (%dx%d needs %d values, got %d)"
             rows cols expect got);
      Tensor.create rows cols
        (Array.of_list (List.map (float_field "tensor value") values))
  | [] | [ _ ] -> failwith "Serialize: malformed tensor line"

let config_line (c : Config.t) =
  Printf.sprintf "config %d %h %h %h %d %d %d %d %h %h %h %d" c.Config.hidden
    c.Config.lr_theta c.Config.lr_omega c.Config.epsilon c.Config.n_mc_train
    c.Config.n_mc_val c.Config.max_epochs c.Config.patience c.Config.g_min
    c.Config.g_max c.Config.logit_scale c.Config.val_every

let config_of_line line =
  match String.split_on_char ' ' (String.trim line) with
  | "config" :: hidden :: lr_t :: lr_o :: eps :: mct :: mcv :: me :: pat
    :: gmin :: gmax :: ls :: rest ->
      (* [rest] distinguishes format versions: pre-val_every lines have 11
         fields and keep the historical default. *)
      let val_every =
        match rest with
        | [] -> 5
        | [ ve ] -> int_field "config val_every" ve
        | _ -> failwith "Serialize: bad config line"
      in
      {
        Config.hidden = int_field "config hidden" hidden;
        lr_theta = float_field "config lr_theta" lr_t;
        lr_omega = float_field "config lr_omega" lr_o;
        epsilon = float_field "config epsilon" eps;
        n_mc_train = int_field "config n_mc_train" mct;
        n_mc_val = int_field "config n_mc_val" mcv;
        max_epochs = int_field "config max_epochs" me;
        patience = int_field "config patience" pat;
        g_min = float_field "config g_min" gmin;
        g_max = float_field "config g_max" gmax;
        logit_scale = float_field "config logit_scale" ls;
        val_every;
      }
  | _ -> failwith "Serialize: bad config line"

let rng_line rng =
  let s = Rng.state rng in
  Printf.sprintf "rng %Lx %Lx %Lx %Lx" s.(0) s.(1) s.(2) s.(3)

let rng_of_line line =
  match String.split_on_char ' ' (String.trim line) with
  | [ "rng"; a; b; c; d ] ->
      let word w =
        match Int64.of_string_opt ("0x" ^ w) with
        | Some v -> v
        | None -> failwith (Printf.sprintf "Serialize: bad rng word %S" w)
      in
      Rng.of_state (Array.map word [| a; b; c; d |])
  | _ -> failwith "Serialize: bad rng line"

let to_lines network =
  let layers = Network.layers network in
  let count = Printf.sprintf "pnn %d" (List.length layers) in
  let layer_lines layer =
    [
      tensor_line (Autodiff.value layer.Layer.theta);
      tensor_line (Nonlinear.snapshot layer.Layer.act);
      tensor_line (Nonlinear.snapshot layer.Layer.neg);
    ]
  in
  (Printf.sprintf "%s %d" magic format_version
  :: count
  :: config_line (Network.config network)
  :: List.concat_map layer_lines layers)

let strip_header lines =
  match lines with
  | first :: rest -> (
      match String.split_on_char ' ' (String.trim first) with
      | [ m; v ] when m = magic ->
          if int_of_string_opt v = Some format_version then rest
          else
            failwith
              (Printf.sprintf "Serialize: unsupported format version %s" v)
      | _ ->
          (* headerless v1 file: body starts directly with the "pnn <n>"
             layer-count line *)
          lines)
  | [] -> failwith "Serialize: empty input"

let of_lines surrogate lines =
  match strip_header lines with
  | header :: config_l :: rest -> (
      match String.split_on_char ' ' (String.trim header) with
      | [ "pnn"; n ] ->
          let n = int_field "layer count" n in
          if n < 0 then failwith "Serialize: negative layer count";
          let config = config_of_line config_l in
          let rec take k lines acc =
            if k = 0 then (List.rev acc, lines)
            else
              match lines with
              | tl :: al :: nl :: rest ->
                  let layer =
                    Layer.of_parts surrogate ~theta:(tensor_of_line tl)
                      ~act_w:(tensor_of_line al) ~neg_w:(tensor_of_line nl)
                  in
                  take (k - 1) rest (layer :: acc)
              | _ -> failwith "Serialize: truncated layer section"
          in
          let layers, remaining = take n rest [] in
          (Network.of_layers config layers, remaining)
      | _ -> failwith "Serialize: bad header")
  | _ -> failwith "Serialize: empty input"

let digest network =
  Digest.to_hex (Digest.string (String.concat "\n" (to_lines network)))

let save_file network path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> List.iter (fun l -> output_string oc (l ^ "\n")) (to_lines network))

let load_file surrogate path =
  let ic = open_in path in
  let lines =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let rec go acc =
          match input_line ic with
          | line -> go (line :: acc)
          | exception End_of_file -> List.rev acc
        in
        go [])
  in
  (* Re-raise decode failures with the offending path so a server refusing
     to start can say which model file is corrupt. *)
  match of_lines surrogate lines with
  | net, _ -> net
  | exception Failure msg ->
      failwith (Printf.sprintf "%s (while loading %s)" msg path)
