(** Persistence for trained printed neural networks.

    A saved pNN bundles the θ matrices, both nonlinear circuits' raw 𝔴 per
    layer and the training configuration — everything needed to re-evaluate
    or print the design later.  The frozen surrogate is {e not} embedded (it
    is a shared artifact with its own cache); [load] takes it as an input and
    checks the architecture matches.

    Files written since format version 2 start with a ["pnn-save <version>"]
    header line; {!of_lines} also accepts the original headerless layout
    (whose first line is the ["pnn <n>"] layer count) and rejects unknown or
    future versions with [Failure] rather than misparsing them. *)

val schema_tag : string
(** Canonical name of the current on-disk format (["pnn-save-2"]).  Cache
    keys fold this in so any format bump re-keys the store. *)

val cache_schema : unit -> string
(** {!schema_tag} plus the active kernel backend's tag (e.g.
    ["pnn-save-2+ref"], ["pnn-save-2+ba64"]) — the schema string experiment
    cache keys must use, so results computed on one backend are never served
    to a run on another (backends may differ in the last ulp of matmul
    accumulation).  Evaluated at call time: it follows
    [Tensor.set_backend]. *)

val float_line : float array -> string
(** Space-joined [%h] hex floats — bit-exact round-trips including ±inf,
    −0.0 and signed NaN. *)

val floats_of_words : string list -> float array
(** Parse a list of [%h] (or decimal) float words back.  Raises [Failure] on
    malformed input. *)

val rng_line : Rng.t -> string
val rng_of_line : string -> Rng.t
(** RNG stream-position codec (["rng <s0> <s1> <s2> <s3>"], hex words).  The
    restored generator continues the stream bit-exactly.  Raises [Failure] on
    malformed input. *)

val tensor_line : Tensor.t -> string
val tensor_of_line : string -> Tensor.t
(** Single-tensor line codec ([rows cols v0 v1 …] with [%h] hex floats —
    bit-exact round-trips including ±inf, −0.0 and signed NaN; NaN payloads
    are canonicalized by [%h]).  Raises [Failure] on malformed input. *)

val config_line : Config.t -> string
val config_of_line : string -> Config.t
(** Config line codec.  [config_of_line] accepts both the current 12-field
    format and pre-[val_every] 11-field lines (defaulting [val_every] to 5).
    Raises [Failure] on malformed input. *)

val to_lines : Network.t -> string list
val of_lines : Surrogate.Model.t -> string list -> Network.t * string list
(** Raises [Failure] on malformed input. *)

val digest : Network.t -> string
(** MD5 hex of the canonical serialization — the content hash used to key
    evaluation results on the exact trained weights. *)

val save_file : Network.t -> string -> unit
val load_file : Surrogate.Model.t -> string -> Network.t
