type model = { kappa_max : float; beta : float }

let default_model = { kappa_max = 0.2; beta = 0.5 }

(* The drift law lives in {!Variation} now (as the [Aging] constructor);
   this module keeps the aging-specific entry points as thin wrappers. *)
let to_variation ?t_frac model =
  Variation.Aging { kappa_max = model.kappa_max; beta = model.beta; t_frac }

let draw rng model ~t_frac ~theta_shapes =
  if t_frac < 0.0 || t_frac > 1.0 then invalid_arg "Aging.draw: t_frac outside [0,1]";
  Variation.draw rng
    (to_variation ~t_frac model)
    (Variation.ctx_of_shapes theta_shapes)

let draw_lifetime rng model ~theta_shapes ~n =
  (* t ~ U[0,1] is drawn inside Variation (t_frac = None), immediately before
     each realization — the same stream order as drawing t explicitly here. *)
  Variation.draw_many rng (to_variation model) (Variation.ctx_of_shapes theta_shapes) ~n

let fit_aging_aware ?pool rng model network data =
  (* [Training.fit_under] derives the train/val streams with [Rng.split];
     the previous implementation used [Rng.copy] for the training stream,
     which aliased the caller's generator — every later draw from [rng]
     replayed the training noise values (see docs/INTERNALS.md). *)
  Training.fit_under ?pool rng ~model:(to_variation model) network data

let accuracy_over_lifetime rng model network ~t_fracs ~n ~x ~y =
  let shapes = Network.theta_shapes network in
  List.map
    (fun t_frac ->
      let accuracies =
        Array.init n (fun _ ->
            let noise = draw rng model ~t_frac ~theta_shapes:shapes in
            let pred = Network.predict network ~noise x in
            let hits = ref 0 in
            Array.iteri (fun i p -> if p = y.(i) then incr hits) pred;
            float_of_int !hits /. float_of_int (Array.length y))
      in
      ( t_frac,
        {
          Evaluation.mean_accuracy = Stats.mean accuracies;
          std_accuracy = (if n > 1 then Stats.std accuracies else 0.0);
          accuracies;
        } ))
    t_fracs
