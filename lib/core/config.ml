type t = {
  hidden : int;
  lr_theta : float;
  lr_omega : float;
  epsilon : float;
  n_mc_train : int;
  n_mc_val : int;
  max_epochs : int;
  patience : int;
  g_min : float;
  g_max : float;
  logit_scale : float;
  val_every : int;
}

let default =
  {
    hidden = 3;
    lr_theta = 0.05;
    lr_omega = 0.005;
    epsilon = 0.0;
    n_mc_train = 5;
    n_mc_val = 5;
    max_epochs = 800;
    patience = 150;
    g_min = 0.01;
    g_max = 1.0;
    logit_scale = 4.0;
    val_every = 5;
  }

let paper () =
  {
    default with
    lr_theta = 0.1;
    n_mc_train = 20;
    n_mc_val = 20;
    max_epochs = 50_000;
    patience = 5_000;
  }

let learnable t = t.lr_omega > 0.0
let with_epsilon t epsilon = { t with epsilon }

let with_learnable t flag =
  { t with lr_omega = (if flag then 0.005 else 0.0) }
