type report = {
  crossbar_power_w : float;
  nonlinear_power_w : float;
  total_power_w : float;
  printed_resistors : int;
  transistors : int;
  activation_circuits : int;
  negative_weight_circuits : int;
  area_mm2 : float;
}

(* Order-of-magnitude printed feature areas (mm^2). Passive components in
   printed technologies are on the order of 1 mm (paper §IV-A: "component
   feature sizes ... on the order of 1 mm"). *)
let resistor_area_mm2 = 1.0
let transistor_area_overhead_mm2 = 0.5

let v_bias = Circuit.Ptanh_circuit.vdd

(* Propagate a batch through the network layer by layer with nominal noise,
   collecting per-layer (input activations, crossbar outputs). *)
let layer_traces network x =
  let config = Network.config network in
  let shapes = Network.theta_shapes network in
  let noise = Noise.none ~theta_shapes:shapes in
  let rec go acc x layers noises =
    match (layers, noises) with
    | [], [] -> List.rev acc
    | layer :: rest_l, ln :: rest_n ->
        let inputs = Autodiff.const x in
        let vz = Autodiff.value (Layer.preactivation config layer ~noise:ln inputs) in
        let out = Autodiff.value (Layer.forward config layer ~noise:ln inputs) in
        go ((x, vz, layer) :: acc) out rest_l rest_n
    | _ -> assert false
  in
  go [] x (Network.layers network) noise

(* Static crossbar dissipation for one layer, averaged over the batch. *)
let crossbar_power config ~g_unit (x, vz, layer) =
  let printed = Layer.printed_theta config layer in
  let n_in = Layer.inputs layer and n_out = Layer.outputs layer in
  let batch = Tensor.rows x in
  let total = ref 0.0 in
  for b = 0 to batch - 1 do
    for j = 0 to n_out - 1 do
      let vzj = Tensor.get vz b j in
      for i = 0 to n_in - 1 do
        let g = Float.abs (Tensor.get printed i j) *. g_unit in
        if g > 0.0 then begin
          (* negative conductances see the inverted input; magnitude of the
             voltage across the printed resistor is what dissipates *)
          let vi = Tensor.get x b i in
          let dv = vi -. vzj in
          total := !total +. (g *. dv *. dv)
        end
      done;
      let gb = Float.abs (Tensor.get printed n_in j) *. g_unit in
      let gd = Float.abs (Tensor.get printed (n_in + 1) j) *. g_unit in
      let dvb = v_bias -. vzj in
      total := !total +. (gb *. dvb *. dvb) +. (gd *. vzj *. vzj)
    done
  done;
  !total /. float_of_int batch

(* Supply power of one nonlinear circuit instance averaged over its input
   voltage distribution, from MNA operating points. *)
let circuit_power nl inputs =
  let omega =
    Circuit.Ptanh_circuit.omega_of_array (Nonlinear.omega_values nl)
  in
  let netlist, _out = Circuit.Ptanh_circuit.build omega in
  let guess = ref None in
  let samples = Array.of_list inputs in
  if Array.length samples = 0 then 0.0
  else begin
    let total = ref 0.0 in
    Array.iter
      (fun vin ->
        let vin = Stdlib.max 0.0 (Stdlib.min 1.0 vin) in
        Circuit.Netlist.set_source netlist "vin" vin;
        match Circuit.Mna.solve ?initial:!guess Circuit.Egt.default netlist with
        | exception Circuit.Mna.No_convergence _ -> ()
        | sol ->
            guess := Some sol.Circuit.Mna.voltages;
            (* dissipation = sum over resistors of V^2/R plus Vds*Id of the
               transistors; equals total supply power in DC *)
            let v = sol.Circuit.Mna.voltages in
            List.iter
              (fun e ->
                match e with
                | Circuit.Netlist.Resistor { a; b; ohms } ->
                    let dv = v.(a) -. v.(b) in
                    total := !total +. (dv *. dv /. ohms)
                | Circuit.Netlist.Transistor { gate; drain; source; w_um; l_um } ->
                    let e =
                      Circuit.Egt.evaluate Circuit.Egt.default ~w_um ~l_um
                        ~vgs:(v.(gate) -. v.(source))
                        ~vds:(v.(drain) -. v.(source))
                    in
                    total := !total +. (Float.abs (e.Circuit.Egt.id *. (v.(drain) -. v.(source))))
                | Circuit.Netlist.Vsource _ | Circuit.Netlist.Capacitor _
                | Circuit.Netlist.Isource _ ->
                    ())
              (Circuit.Netlist.elements netlist))
      samples;
    !total /. float_of_int (Array.length samples)
  end

(* A few representative input voltages per circuit keeps the estimate cheap. *)
let subsample_column x col =
  let n = Tensor.rows x in
  let step = Stdlib.max 1 (n / 16) in
  let rec go i acc = if i >= n then acc else go (i + step) (Tensor.get x i col :: acc) in
  go 0 []

let estimate ?(g_unit = 1e-4) network ~x_sample =
  if Tensor.rows x_sample = 0 then invalid_arg "Power.estimate: empty sample";
  let config = Network.config network in
  let traces = layer_traces network x_sample in
  let crossbar_power_w =
    List.fold_left (fun acc t -> acc +. crossbar_power config ~g_unit t) 0.0 traces
  in
  (* device counts *)
  let printed_resistors = ref 0 in
  let neg_circuits = ref 0 in
  let act_circuits = ref 0 in
  List.iter
    (fun (_, _, layer) ->
      let printed = Layer.printed_theta config layer in
      let n_in = Layer.inputs layer in
      for r = 0 to Tensor.rows printed - 1 do
        for c = 0 to Tensor.cols printed - 1 do
          (* pnnlint:allow R5 counts exactly-nonzero conductances; IEEE
             equality keeps -0.0 counted as unprinted *)
          if Tensor.get printed r c <> 0.0 then incr printed_resistors
        done
      done;
      (* one negative-weight circuit per input column with negative fan-out *)
      for r = 0 to n_in - 1 do
        let has_neg = ref false in
        for c = 0 to Tensor.cols printed - 1 do
          if Tensor.get printed r c < 0.0 then has_neg := true
        done;
        if !has_neg then incr neg_circuits
      done;
      act_circuits := !act_circuits + Layer.outputs layer)
    traces;
  (* nonlinear power: activation circuits see the crossbar outputs; the
     negative-weight circuits see the raw inputs *)
  let nonlinear_power_w =
    List.fold_left
      (fun acc (x, vz, layer) ->
        let act_inputs = subsample_column vz 0 in
        let neg_inputs = subsample_column x 0 in
        acc
        +. (float_of_int (Layer.outputs layer) *. circuit_power layer.Layer.act act_inputs)
        +. (float_of_int (Layer.inputs layer)
           *. circuit_power layer.Layer.neg neg_inputs
           *. (float_of_int !neg_circuits
              /. float_of_int (Stdlib.max 1 (Layer.inputs layer)))))
      0.0 traces
  in
  let circuit_instances = !act_circuits + !neg_circuits in
  let circuit_resistors = 5 * circuit_instances in
  let transistors = 2 * circuit_instances in
  let area_of_circuit nl =
    let omega = Nonlinear.omega_values nl in
    (5.0 *. resistor_area_mm2)
    +. (2.0 *. ((omega.(5) *. omega.(6) /. 1e6) +. transistor_area_overhead_mm2))
  in
  let circuit_area =
    List.fold_left
      (fun acc (_, _, layer) ->
        acc
        +. (float_of_int (Layer.outputs layer) *. area_of_circuit layer.Layer.act)
        +. area_of_circuit layer.Layer.neg)
      0.0 traces
  in
  let area_mm2 =
    (float_of_int !printed_resistors *. resistor_area_mm2) +. circuit_area
  in
  {
    crossbar_power_w;
    nonlinear_power_w;
    total_power_w = crossbar_power_w +. nonlinear_power_w;
    printed_resistors = !printed_resistors + circuit_resistors;
    transistors;
    activation_circuits = !act_circuits;
    negative_weight_circuits = !neg_circuits;
    area_mm2;
  }

let render r =
  String.concat "\n"
    [
      "Design cost estimate (order-of-magnitude; see Power docs)";
      Printf.sprintf "  static power: crossbars %.2f uW + nonlinear circuits %.2f uW = %.2f uW"
        (r.crossbar_power_w *. 1e6)
        (r.nonlinear_power_w *. 1e6)
        (r.total_power_w *. 1e6);
      Printf.sprintf "  devices: %d printed resistors, %d transistors" r.printed_resistors
        r.transistors;
      Printf.sprintf "  circuits: %d activation, %d negative-weight" r.activation_circuits
        r.negative_weight_circuits;
      Printf.sprintf "  estimated area: %.1f mm^2" r.area_mm2;
      "";
    ]
