module A = Autodiff
module Ds = Surrogate.Design_space

type t = { raw : A.t; surrogate : Surrogate.Model.t }

let create_from surrogate ~w_init =
  if Array.length w_init <> Ds.learnable_dim then
    invalid_arg "Nonlinear.create_from: need 7 raw values";
  { raw = A.param (Tensor.of_array w_init); surrogate }

let create surrogate =
  create_from surrogate ~w_init:(Array.make Ds.learnable_dim 0.0)

let raw_param t = t.raw

let replicate t = { raw = A.param (Tensor.copy (A.value t.raw)); surrogate = t.surrogate }

(* Denormalization bounds for the 𝔴 encoding [R1; R3; R5; W; L; k1; k2].
   Eager (not lazy): forcing a lazy concurrently from several domains raises
   RacyLazy, and layer replicas are built inside pool workers. *)
let w_scaler = Surrogate.Scaler.of_bounds ~lo:Ds.learnable_lo ~hi:Ds.learnable_hi

let printable_omega_node t ~noise_node =
  let s = A.sigmoid t.raw in
  let w = Surrogate.Scaler.inverse_ad w_scaler s in
  let field i = A.slice_cols w i 1 in
  let r1 = field 0 and r3 = field 1 and r5 = field 2 in
  let wd = field 3 and ld = field 4 and k1 = field 5 and k2 = field 6 in
  (* Reassemble; the inferred R2/R4 may leave their Table-I boxes, so clip
     with a straight-through estimator (paper: "simply clipping them to their
     feasible range").  R2 < R1 / R4 < R3 hold because k ≤ 0.98. *)
  let r2 = A.clamp_ste ~lo:Ds.omega_lo.(1) ~hi:Ds.omega_hi.(1) (A.mul r1 k1) in
  let r4 = A.clamp_ste ~lo:Ds.omega_lo.(3) ~hi:Ds.omega_hi.(3) (A.mul r3 k2) in
  let omega =
    List.fold_left A.concat_cols r1 [ r2; r3; r4; r5; wd; ld ]
  in
  (* Variation is applied to the printable values (paper §III-C). *)
  A.mul omega noise_node

let printable_omega t ~noise = printable_omega_node t ~noise_node:(A.const noise)

let eta t ~noise =
  Surrogate.Model.eval_ad t.surrogate (printable_omega t ~noise)

let eta_pair act neg ~act_noise ~neg_noise =
  (* Stack the two circuits' printable ω rows and run one surrogate forward
     over the 2 × 7 batch instead of two 1 × 7 passes.  Every op on the
     surrogate path (slices, elementwise, rowvec broadcasts, matmul) treats
     rows independently with a fixed per-row accumulation order, so each
     output row is bit-identical to its own single-row evaluation. *)
  let om =
    A.concat_rows
      (printable_omega_node act ~noise_node:act_noise)
      (printable_omega_node neg ~noise_node:neg_noise)
  in
  let e = Surrogate.Model.eval_ad act.surrogate om in
  (A.slice_rows e 0 1, A.slice_rows e 1 1)

let apply_eta eta_node v =
  let e i = A.slice_cols eta_node i 1 in
  let shifted = A.badd (A.neg (e 2)) v in
  A.badd (e 0) (A.bmul (e 1) (A.tanh (A.bmul (e 3) shifted)))

let apply t ~noise v = apply_eta (eta t ~noise) v
let apply_inv t ~noise v = A.neg (apply t ~noise v)

let ones_noise = Tensor.ones 1 Ds.dim

let omega_values t =
  Tensor.to_array (A.value (printable_omega t ~noise:ones_noise))

let eta_values t =
  Surrogate.Model.eval t.surrogate (omega_values t)

let snapshot t = Tensor.copy (A.value t.raw)

let restore t saved =
  let v = A.value t.raw in
  if Tensor.shape v <> Tensor.shape saved then invalid_arg "Nonlinear.restore: shape mismatch";
  for c = 0 to Tensor.cols saved - 1 do
    Tensor.set v 0 c (Tensor.get saved 0 c)
  done
