let tag = "ckpt"

type t = {
  config : Config.t;
  rng : Rng.t;
  epoch : int;
  best_epoch : int;
  epochs_since_best : int;
  stopped_early : bool;
  best_val : float;
  train_hist : float list;
  val_hist : float list;
  weights : Network.weights;
  best : Network.weights;
  opt_groups : int;
  opt_lines : string list;
}

let state_line (st : Nn.Train.state) =
  Printf.sprintf "state %d %d %d %b %h" st.Nn.Train.epoch st.Nn.Train.best_epoch
    st.Nn.Train.epochs_since_best st.Nn.Train.stopped_early st.Nn.Train.best_val

(* Histories are stored newest-first, exactly as [Nn.Train.state] keeps them,
   so a restored state is field-for-field identical. *)
let hist_line label values =
  Printf.sprintf "%s %d%s" label (List.length values)
    (match values with
    | [] -> ""
    | _ -> " " ^ Serialize.float_line (Array.of_list values))

let weights_lines label (ws : Network.weights) =
  Printf.sprintf "%s %d" label (List.length ws)
  :: List.concat_map
       (fun (theta, act, neg) ->
         [
           Serialize.tensor_line theta;
           Serialize.tensor_line act;
           Serialize.tensor_line neg;
         ])
       ws

let save ~path ~config ~rng ~state ~network ~best ~optimizers =
  let lines =
    (Serialize.config_line config :: Serialize.rng_line rng
    :: state_line state
    :: hist_line "train" state.Nn.Train.train_hist
    :: hist_line "val" state.Nn.Train.val_hist
    :: weights_lines "weights" (Network.snapshot network))
    @ weights_lines "best" best
    @ (Printf.sprintf "opts %d" (List.length optimizers)
      :: List.concat_map
           (fun (opt, params) -> Nn.Optimizer.state_lines opt params)
           optimizers)
  in
  ignore (Cache.Blob.write ~tag path lines)

let words line = String.split_on_char ' ' (String.trim line)

let hist_of_line label line =
  match words line with
  | l :: n :: floats when l = label && int_of_string_opt n = Some (List.length floats)
    ->
      Array.to_list (Serialize.floats_of_words floats)
  | _ -> failwith (Printf.sprintf "Checkpoint: bad %s history line" label)

let weights_of_lines label lines =
  match lines with
  | head :: rest -> (
      match words head with
      | [ l; n ] when l = label ->
          let n = int_of_string n in
          let rec take k lines acc =
            if k = 0 then (List.rev acc, lines)
            else
              match lines with
              | tl :: al :: nl :: rest ->
                  take (k - 1) rest
                    (( Serialize.tensor_of_line tl,
                       Serialize.tensor_of_line al,
                       Serialize.tensor_of_line nl )
                    :: acc)
              | _ -> failwith "Checkpoint: truncated weights section"
          in
          take n rest []
      | _ -> failwith (Printf.sprintf "Checkpoint: bad %s header" label))
  | [] -> failwith (Printf.sprintf "Checkpoint: missing %s section" label)

let parse lines =
  match lines with
  | config_l :: rng_l :: state_l :: train_l :: val_l :: rest ->
      let config = Serialize.config_of_line config_l in
      let rng = Serialize.rng_of_line rng_l in
      let epoch, best_epoch, epochs_since_best, stopped_early, best_val =
        match words state_l with
        | [ "state"; e; be; esb; se; bv ] ->
            ( int_of_string e,
              int_of_string be,
              int_of_string esb,
              bool_of_string se,
              float_of_string bv )
        | _ -> failwith "Checkpoint: bad state line"
      in
      let train_hist = hist_of_line "train" train_l in
      let val_hist = hist_of_line "val" val_l in
      let weights, rest = weights_of_lines "weights" rest in
      let best, rest = weights_of_lines "best" rest in
      let opt_groups, opt_lines =
        match rest with
        | head :: opt_lines -> (
            match words head with
            | [ "opts"; n ] -> (int_of_string n, opt_lines)
            | _ -> failwith "Checkpoint: bad opts header")
        | [] -> failwith "Checkpoint: missing opts section"
      in
      {
        config;
        rng;
        epoch;
        best_epoch;
        epochs_since_best;
        stopped_early;
        best_val;
        train_hist;
        val_hist;
        weights;
        best;
        opt_groups;
        opt_lines;
      }
  | _ -> failwith "Checkpoint: truncated"

let load path =
  match Cache.Blob.read ~tag path with
  | Cache.Blob.Valid lines -> ( try Some (parse lines) with _ -> None)
  | Cache.Blob.Corrupt | Cache.Blob.Missing -> None

let matches ck config = ck.config = config

let same_shapes ws ws' =
  List.length ws = List.length ws'
  && List.for_all2
       (fun (a, b, c) (a', b', c') ->
         let dims t t' =
           Tensor.rows t = Tensor.rows t' && Tensor.cols t = Tensor.cols t'
         in
         dims a a' && dims b b' && dims c c')
       ws ws'

let apply ck ~rng ~state ~network ~optimizers =
  (* Validate structure before any mutation so a stale checkpoint from a
     different architecture degrades to a clean fresh start. *)
  let current = Network.snapshot network in
  if not (same_shapes ck.weights current && same_shapes ck.best current) then
    failwith "Checkpoint: architecture mismatch";
  if ck.opt_groups <> List.length optimizers then
    failwith "Checkpoint: optimizer group mismatch";
  let rest =
    List.fold_left
      (fun lines (opt, params) -> Nn.Optimizer.restore_state opt params lines)
      ck.opt_lines optimizers
  in
  if rest <> [] then failwith "Checkpoint: trailing optimizer state";
  Network.restore network ck.weights;
  state.Nn.Train.epoch <- ck.epoch;
  state.Nn.Train.train_hist <- ck.train_hist;
  state.Nn.Train.val_hist <- ck.val_hist;
  state.Nn.Train.best_val <- ck.best_val;
  state.Nn.Train.best_epoch <- ck.best_epoch;
  state.Nn.Train.epochs_since_best <- ck.epochs_since_best;
  state.Nn.Train.stopped_early <- ck.stopped_early;
  Rng.set_state rng (Rng.state ck.rng);
  ck.best
