type data = {
  x_train : Tensor.t;
  y_train : Tensor.t;
  x_val : Tensor.t;
  y_val : Tensor.t;
}

type result = {
  network : Network.t;
  history : Nn.Train.history;
  val_loss : float;
}

let of_split ~n_classes (s : Datasets.Synth.split) =
  {
    x_train = s.Datasets.Synth.x_train;
    y_train = Datasets.Synth.one_hot ~n_classes s.Datasets.Synth.y_train;
    x_val = s.Datasets.Synth.x_val;
    y_val = Datasets.Synth.one_hot ~n_classes s.Datasets.Synth.y_val;
  }

type checkpoint = {
  ckpt_path : string;
  every : int;
  resume : bool;
  interrupt_after : int option;
}

exception Interrupted

let fit ?pool ?train_sampler ?val_noises ?sampler_rng ?checkpoint rng network
    data =
  let pool = match pool with Some p -> p | None -> Parallel.get_pool () in
  (* The generator consumed inside the epoch loop; its position is part of
     every checkpoint.  The default [fit] path draws training noise from the
     caller's [rng]; [fit_under] samples from its derived train stream. *)
  let sampler_rng = match sampler_rng with Some r -> r | None -> rng in
  let config = Network.config network in
  let shapes = Network.theta_shapes network in
  let epsilon = config.Config.epsilon in
  (* pnnlint:allow R5 exact-zero sentinel selects nominal training;
     IEEE equality also accepts -0.0 *)
  let nominal = epsilon = 0.0 in
  let draw_train =
    match train_sampler with
    | Some sampler -> sampler
    | None ->
        fun () ->
          if nominal then [ Noise.none ~theta_shapes:shapes ]
          else
            Noise.draw_many rng ~epsilon ~theta_shapes:shapes
              ~n:config.Config.n_mc_train
  in
  (* Fixed validation draws: a stable early-stopping signal across epochs. *)
  let val_noises =
    match val_noises with
    | Some n -> n
    | None ->
        if nominal then [ Noise.none ~theta_shapes:shapes ]
        else
          Noise.draw_many (Rng.split rng) ~epsilon ~theta_shapes:shapes
            ~n:config.Config.n_mc_val
  in
  let opt_theta = Nn.Optimizer.adam ~lr:config.Config.lr_theta () in
  let optimizers =
    let groups = [ (opt_theta, Network.params_theta network) ] in
    if Config.learnable config then
      (Nn.Optimizer.adam ~lr:config.Config.lr_omega (), Network.params_omega network)
      :: groups
    else groups
  in
  let best = ref (Network.snapshot network) in
  let st = Nn.Train.fresh_state () in
  (* Resume before the first epoch: the caller has just re-run the identical
     pre-loop derivations (network init, fixed validation noises), so
     restoring the loop-time state — weights, best snapshot, progress,
     optimizer moments, in-loop RNG position — re-enters the interrupted
     trajectory bit-exactly.  Anything wrong with the file is a fresh start. *)
  (match checkpoint with
  | Some ck when ck.resume -> (
      match Checkpoint.load ck.ckpt_path with
      | Some c when Checkpoint.matches c config -> (
          match
            Checkpoint.apply c ~rng:sampler_rng ~state:st ~network ~optimizers
          with
          | b -> best := b
          | exception Failure _ -> ())
      | Some _ | None -> ())
  | Some _ | None -> ());
  let on_epoch =
    match checkpoint with
    | None -> None
    | Some ck ->
        Some
          (fun (s : Nn.Train.state) ->
            if ck.every > 0 && s.Nn.Train.epoch mod ck.every = 0 then
              Checkpoint.save ~path:ck.ckpt_path ~config ~rng:sampler_rng
                ~state:s ~network ~best:!best ~optimizers;
            match ck.interrupt_after with
            | Some n when s.Nn.Train.epoch >= n -> raise Interrupted
            | Some _ | None -> ())
  in
  let val_loss () =
    (* Forward-only on the cached replicas; bit-identical to the
       full-graph [Network.mc_loss] value. *)
    Network.mc_loss_value pool network ~noises:val_noises ~x:data.x_val
      ~labels:data.y_val
  in
  let history =
    Nn.Train.run ~state:st ?on_epoch
      ~config:
        {
          Nn.Train.default_config with
          max_epochs = config.Config.max_epochs;
          patience = config.Config.patience;
          val_every = config.Config.val_every;
        }
      ~optimizers
      ~train_loss:(fun () ->
        (* Data-parallel over the pre-drawn noises; the fixed-order gradient
           reduction keeps updates bit-identical for any pool size. *)
        Network.mc_loss_pooled pool network ~noises:(draw_train ()) ~x:data.x_train
          ~labels:data.y_train)
      ~val_loss
      ~snapshot:(fun () -> best := Network.snapshot network)
      ~restore:(fun () -> Network.restore network !best)
      ()
  in
  { network; history; val_loss = history.Nn.Train.best_val_loss }

(* Sub-stream derivation follows the split-only convention (docs/INTERNALS):
   the caller's rng is advanced by exactly two splits, and neither derived
   stream aliases it — later caller draws never replay training noise. *)
let fit_under ?pool ?checkpoint rng ~model network data =
  let config = Network.config network in
  let ctx = Variation.ctx_of_network network in
  let train_rng = Rng.split rng in
  let val_rng = Rng.split rng in
  let train_sampler =
    Variation.sampler train_rng model ctx ~n:config.Config.n_mc_train
  in
  let val_noises = Variation.draw_many val_rng model ctx ~n:config.Config.n_mc_val in
  fit ?pool ~train_sampler ~val_noises ~sampler_rng:train_rng ?checkpoint rng
    network data

let train_fresh ?pool ?init ?checkpoint rng config surrogate ~n_classes split =
  let data = of_split ~n_classes split in
  let inputs = Tensor.cols data.x_train in
  let network = Network.create ?init rng config surrogate ~inputs ~outputs:n_classes in
  fit ?pool ?checkpoint rng network data

(* {2 Result codec}

   Cache payload for a completed training run: the trained network plus its
   full history, [%h]-exact so a cache hit is bit-identical to the compute it
   replaced. *)

let floats_line label a =
  Printf.sprintf "%s %d%s" label (Array.length a)
    (if Array.length a = 0 then "" else " " ^ Serialize.float_line a)

let floats_of_line label line =
  match String.split_on_char ' ' (String.trim line) with
  | l :: n :: words when l = label && int_of_string_opt n = Some (List.length words)
    ->
      Serialize.floats_of_words words
  | _ -> failwith (Printf.sprintf "Training: bad %s line" label)

let result_lines r =
  Serialize.to_lines r.network
  @ [
      Printf.sprintf "hist %d %b %h" r.history.Nn.Train.best_epoch
        r.history.Nn.Train.stopped_early r.history.Nn.Train.best_val_loss;
      floats_line "train" r.history.Nn.Train.train_losses;
      floats_line "val" r.history.Nn.Train.val_losses;
    ]

let result_of_lines surrogate lines =
  let network, rest = Serialize.of_lines surrogate lines in
  match rest with
  | [ hist_l; train_l; val_l ] ->
      let best_epoch, stopped_early, best_val_loss =
        match String.split_on_char ' ' (String.trim hist_l) with
        | [ "hist"; be; se; bv ] ->
            (int_of_string be, bool_of_string se, float_of_string bv)
        | _ -> failwith "Training: bad hist line"
      in
      let history =
        {
          Nn.Train.train_losses = floats_of_line "train" train_l;
          val_losses = floats_of_line "val" val_l;
          best_epoch;
          best_val_loss;
          stopped_early;
        }
      in
      { network; history; val_loss = best_val_loss }
  | _ -> failwith "Training: bad result payload"
