type data = {
  x_train : Tensor.t;
  y_train : Tensor.t;
  x_val : Tensor.t;
  y_val : Tensor.t;
}

type result = {
  network : Network.t;
  history : Nn.Train.history;
  val_loss : float;
}

let of_split ~n_classes (s : Datasets.Synth.split) =
  {
    x_train = s.Datasets.Synth.x_train;
    y_train = Datasets.Synth.one_hot ~n_classes s.Datasets.Synth.y_train;
    x_val = s.Datasets.Synth.x_val;
    y_val = Datasets.Synth.one_hot ~n_classes s.Datasets.Synth.y_val;
  }

let fit ?pool ?train_sampler ?val_noises rng network data =
  let pool = match pool with Some p -> p | None -> Parallel.get_pool () in
  let config = Network.config network in
  let shapes = Network.theta_shapes network in
  let epsilon = config.Config.epsilon in
  let nominal = epsilon = 0.0 in
  let draw_train =
    match train_sampler with
    | Some sampler -> sampler
    | None ->
        fun () ->
          if nominal then [ Noise.none ~theta_shapes:shapes ]
          else
            Noise.draw_many rng ~epsilon ~theta_shapes:shapes
              ~n:config.Config.n_mc_train
  in
  (* Fixed validation draws: a stable early-stopping signal across epochs. *)
  let val_noises =
    match val_noises with
    | Some n -> n
    | None ->
        if nominal then [ Noise.none ~theta_shapes:shapes ]
        else
          Noise.draw_many (Rng.split rng) ~epsilon ~theta_shapes:shapes
            ~n:config.Config.n_mc_val
  in
  let opt_theta = Nn.Optimizer.adam ~lr:config.Config.lr_theta () in
  let optimizers =
    let groups = [ (opt_theta, Network.params_theta network) ] in
    if Config.learnable config then
      (Nn.Optimizer.adam ~lr:config.Config.lr_omega (), Network.params_omega network)
      :: groups
    else groups
  in
  let best = ref (Network.snapshot network) in
  let val_loss () =
    (* Forward-only on the cached replicas; bit-identical to the
       full-graph [Network.mc_loss] value. *)
    Network.mc_loss_value pool network ~noises:val_noises ~x:data.x_val
      ~labels:data.y_val
  in
  let history =
    Nn.Train.run
      ~config:
        {
          Nn.Train.default_config with
          max_epochs = config.Config.max_epochs;
          patience = config.Config.patience;
          val_every = config.Config.val_every;
        }
      ~optimizers
      ~train_loss:(fun () ->
        (* Data-parallel over the pre-drawn noises; the fixed-order gradient
           reduction keeps updates bit-identical for any pool size. *)
        Network.mc_loss_pooled pool network ~noises:(draw_train ()) ~x:data.x_train
          ~labels:data.y_train)
      ~val_loss
      ~snapshot:(fun () -> best := Network.snapshot network)
      ~restore:(fun () -> Network.restore network !best)
  in
  { network; history; val_loss = history.Nn.Train.best_val_loss }

(* Sub-stream derivation follows the split-only convention (docs/INTERNALS):
   the caller's rng is advanced by exactly two splits, and neither derived
   stream aliases it — later caller draws never replay training noise. *)
let fit_under ?pool rng ~model network data =
  let config = Network.config network in
  let ctx = Variation.ctx_of_network network in
  let train_rng = Rng.split rng in
  let val_rng = Rng.split rng in
  let train_sampler =
    Variation.sampler train_rng model ctx ~n:config.Config.n_mc_train
  in
  let val_noises = Variation.draw_many val_rng model ctx ~n:config.Config.n_mc_val in
  fit ?pool ~train_sampler ~val_noises rng network data

let train_fresh ?pool ?init rng config surrogate ~n_classes split =
  let data = of_split ~n_classes split in
  let inputs = Tensor.cols data.x_train in
  let network = Network.create ?init rng config surrogate ~inputs ~outputs:n_classes in
  fit ?pool rng network data
