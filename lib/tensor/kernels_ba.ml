(* Bigarray.Float64 backend: the fast path.

   Flat 1-D [Bigarray.Array1] storage (c_layout), with the hot loops
   restructured for throughput on the scalar CPU path: the matmul pair is
   4x-unrolled over the shared dimension with register accumulators and no
   per-entry zero-skip branch, and the elementwise kernels are stride-free
   single loops over unsafe bigarray accessors.

   Numeric contract (see Tensor_backend.KERNELS): every per-element kernel
   (elementwise, broadcasts, unary/backward, softmax, cross-entropy, dot,
   sum, sum_rows/cols, optimizer steps) performs the same floating-point
   operations in the same order as the reference backend, so those results
   are bitwise identical across backends.  Only [matmul]/[matmul_nt]
   re-associate the accumulation (and drop the reference backend's
   exact-zero skip), so they may differ from the reference in the last ulp —
   deterministically so within this backend.  The NaN/-0.0 edge kernels
   ([clamp], [min_value]/[max_value], [argmax_rows]) spell out the same IEEE
   selects as the reference fold/loops and stay bit-identical.

   Checked (sanitizer) mode: as in the reference backend, every kernel with
   unsafe indexing carries a bounds-checked twin performing identical
   floating-point operations in identical order ([Array1.get/set] raise on
   out-of-range), selected once per call from [Tensor_backend.checked]. *)

open Bigarray
module TB = Tensor_backend

type buf = (float, float64_elt, c_layout) Array1.t

(* Monomorphic accessors: the polymorphic [Bigarray.Array1.get] family only
   compiles to the inline load/store when the element kind and layout are
   statically known AT THE USE SITE.  The kernels below are inferred
   polymorphic before the signature constraint lands, which would silently
   send every access through the generic C path (~12x slower end-to-end).
   Shadowing with [buf]-typed externals pins the types where it matters. *)
module Array1 = struct
  include Bigarray.Array1

  external get : buf -> int -> float = "%caml_ba_ref_1"
  external set : buf -> int -> float -> unit = "%caml_ba_set_1"
  external unsafe_get : buf -> int -> float = "%caml_ba_unsafe_ref_1"
  external unsafe_set : buf -> int -> float -> unit = "%caml_ba_unsafe_set_1"
end

let impl = TB.Bigarray64
let checked () = Atomic.get TB.checked

let create n =
  let b = Array1.create float64 c_layout n in
  Array1.fill b 0.0;
  b

let length = Array1.dim
let get = Array1.get
let set = Array1.set

(* Explicit loops: [Array1.sub] allocates a view struct per call, which is
   real garbage on the zero-fill/blit hot paths (gradient zeroing, scratch
   reuse).  Plain safe stores — [fill]/[blit] are exact regardless of mode. *)
let fill b ~pos ~len v =
  for i = pos to pos + len - 1 do
    Array1.set b i v
  done

let blit src src_pos dst dst_pos len =
  for i = 0 to len - 1 do
    Array1.set dst (dst_pos + i) (Array1.get src (src_pos + i))
  done

let of_float_array a = Array1.of_array float64 c_layout a

let to_float_array b =
  let n = Array1.dim b in
  let a = Array.make n 0.0 in
  for i = 0 to n - 1 do
    a.(i) <- Array1.get b i
  done;
  a

let load b a =
  for i = 0 to Array.length a - 1 do
    Array1.set b i a.(i)
  done

(* {1 Elementwise}

   Fast paths are unrolled 4x with the block's loads grouped ahead of its
   stores.  Without flambda every [Array1.unsafe_get] re-reads the bigarray
   data pointer from the header; grouping the accesses lets the backend CSE
   those reloads inside the block and amortises the loop bookkeeping, which
   is where the small-op gap against the [float array] reference came from
   (BENCH_4 tensor_add_128x64 at 0.69x).  Elementwise ops are independent
   per index, so the unrolled order performs the exact same float operation
   per element — results stay bitwise identical to the checked twin. *)

let add a b dst n =
  if checked () then
    for i = 0 to n - 1 do
      Array1.set dst i (Array1.get a i +. Array1.get b i)
    done
  else begin
    let n4 = n - (n land 3) in
    let i = ref 0 in
    while !i < n4 do
      let i0 = !i in
      (* SAFETY: every index below is i0 + 3 < n4 <= n at most, and the
         dispatch layer checks n against each buffer's dimension *)
      let a0 = Array1.unsafe_get a i0 and a1 = Array1.unsafe_get a (i0 + 1) in
      let a2 = Array1.unsafe_get a (i0 + 2) and a3 = Array1.unsafe_get a (i0 + 3) in
      let b0 = Array1.unsafe_get b i0 and b1 = Array1.unsafe_get b (i0 + 1) in
      (* SAFETY: i0 + 3 < n4 <= n, as above *)
      let b2 = Array1.unsafe_get b (i0 + 2) and b3 = Array1.unsafe_get b (i0 + 3) in
      Array1.unsafe_set dst i0 (a0 +. b0);
      Array1.unsafe_set dst (i0 + 1) (a1 +. b1);
      (* SAFETY: i0 + 3 < n4 <= n, as above *)
      Array1.unsafe_set dst (i0 + 2) (a2 +. b2);
      Array1.unsafe_set dst (i0 + 3) (a3 +. b3);
      i := i0 + 4
    done;
    (* SAFETY: the tail touches j in [n4, n), all < n *)
    for j = n4 to n - 1 do
      Array1.unsafe_set dst j (Array1.unsafe_get a j +. Array1.unsafe_get b j)
    done
  end

let sub a b dst n =
  if checked () then
    for i = 0 to n - 1 do
      Array1.set dst i (Array1.get a i -. Array1.get b i)
    done
  else begin
    let n4 = n - (n land 3) in
    let i = ref 0 in
    while !i < n4 do
      let i0 = !i in
      (* SAFETY: every index below is i0 + 3 < n4 <= n at most, and the
         dispatch layer checks n against each buffer's dimension *)
      let a0 = Array1.unsafe_get a i0 and a1 = Array1.unsafe_get a (i0 + 1) in
      let a2 = Array1.unsafe_get a (i0 + 2) and a3 = Array1.unsafe_get a (i0 + 3) in
      let b0 = Array1.unsafe_get b i0 and b1 = Array1.unsafe_get b (i0 + 1) in
      (* SAFETY: i0 + 3 < n4 <= n, as above *)
      let b2 = Array1.unsafe_get b (i0 + 2) and b3 = Array1.unsafe_get b (i0 + 3) in
      Array1.unsafe_set dst i0 (a0 -. b0);
      Array1.unsafe_set dst (i0 + 1) (a1 -. b1);
      (* SAFETY: i0 + 3 < n4 <= n, as above *)
      Array1.unsafe_set dst (i0 + 2) (a2 -. b2);
      Array1.unsafe_set dst (i0 + 3) (a3 -. b3);
      i := i0 + 4
    done;
    (* SAFETY: the tail touches j in [n4, n), all < n *)
    for j = n4 to n - 1 do
      Array1.unsafe_set dst j (Array1.unsafe_get a j -. Array1.unsafe_get b j)
    done
  end

let mul a b dst n =
  if checked () then
    for i = 0 to n - 1 do
      Array1.set dst i (Array1.get a i *. Array1.get b i)
    done
  else begin
    let n4 = n - (n land 3) in
    let i = ref 0 in
    while !i < n4 do
      let i0 = !i in
      (* SAFETY: every index below is i0 + 3 < n4 <= n at most, and the
         dispatch layer checks n against each buffer's dimension *)
      let a0 = Array1.unsafe_get a i0 and a1 = Array1.unsafe_get a (i0 + 1) in
      let a2 = Array1.unsafe_get a (i0 + 2) and a3 = Array1.unsafe_get a (i0 + 3) in
      let b0 = Array1.unsafe_get b i0 and b1 = Array1.unsafe_get b (i0 + 1) in
      (* SAFETY: i0 + 3 < n4 <= n, as above *)
      let b2 = Array1.unsafe_get b (i0 + 2) and b3 = Array1.unsafe_get b (i0 + 3) in
      Array1.unsafe_set dst i0 (a0 *. b0);
      Array1.unsafe_set dst (i0 + 1) (a1 *. b1);
      (* SAFETY: i0 + 3 < n4 <= n, as above *)
      Array1.unsafe_set dst (i0 + 2) (a2 *. b2);
      Array1.unsafe_set dst (i0 + 3) (a3 *. b3);
      i := i0 + 4
    done;
    (* SAFETY: the tail touches j in [n4, n), all < n *)
    for j = n4 to n - 1 do
      Array1.unsafe_set dst j (Array1.unsafe_get a j *. Array1.unsafe_get b j)
    done
  end

let div a b dst n =
  if checked () then
    for i = 0 to n - 1 do
      Array1.set dst i (Array1.get a i /. Array1.get b i)
    done
  else begin
    let n4 = n - (n land 3) in
    let i = ref 0 in
    while !i < n4 do
      let i0 = !i in
      (* SAFETY: every index below is i0 + 3 < n4 <= n at most, and the
         dispatch layer checks n against each buffer's dimension *)
      let a0 = Array1.unsafe_get a i0 and a1 = Array1.unsafe_get a (i0 + 1) in
      let a2 = Array1.unsafe_get a (i0 + 2) and a3 = Array1.unsafe_get a (i0 + 3) in
      let b0 = Array1.unsafe_get b i0 and b1 = Array1.unsafe_get b (i0 + 1) in
      (* SAFETY: i0 + 3 < n4 <= n, as above *)
      let b2 = Array1.unsafe_get b (i0 + 2) and b3 = Array1.unsafe_get b (i0 + 3) in
      Array1.unsafe_set dst i0 (a0 /. b0);
      Array1.unsafe_set dst (i0 + 1) (a1 /. b1);
      (* SAFETY: i0 + 3 < n4 <= n, as above *)
      Array1.unsafe_set dst (i0 + 2) (a2 /. b2);
      Array1.unsafe_set dst (i0 + 3) (a3 /. b3);
      i := i0 + 4
    done;
    (* SAFETY: the tail touches j in [n4, n), all < n *)
    for j = n4 to n - 1 do
      Array1.unsafe_set dst j (Array1.unsafe_get a j /. Array1.unsafe_get b j)
    done
  end

let neg a dst n =
  if checked () then
    for i = 0 to n - 1 do
      Array1.set dst i (-.Array1.get a i)
    done
  else begin
    let n4 = n - (n land 3) in
    let i = ref 0 in
    while !i < n4 do
      let i0 = !i in
      (* SAFETY: every index below is i0 + 3 < n4 <= n at most, and the
         dispatch layer checks n against each buffer's dimension *)
      let a0 = Array1.unsafe_get a i0 and a1 = Array1.unsafe_get a (i0 + 1) in
      let a2 = Array1.unsafe_get a (i0 + 2) and a3 = Array1.unsafe_get a (i0 + 3) in
      Array1.unsafe_set dst i0 (-.a0);
      (* SAFETY: i0 + 3 < n4 <= n, as above *)
      Array1.unsafe_set dst (i0 + 1) (-.a1);
      Array1.unsafe_set dst (i0 + 2) (-.a2);
      Array1.unsafe_set dst (i0 + 3) (-.a3);
      i := i0 + 4
    done;
    (* SAFETY: the tail touches j in [n4, n), all < n *)
    for j = n4 to n - 1 do
      Array1.unsafe_set dst j (-.Array1.unsafe_get a j)
    done
  end

let scale k a dst n =
  if checked () then
    for i = 0 to n - 1 do
      Array1.set dst i (k *. Array1.get a i)
    done
  else begin
    let n4 = n - (n land 3) in
    let i = ref 0 in
    while !i < n4 do
      let i0 = !i in
      (* SAFETY: every index below is i0 + 3 < n4 <= n at most, and the
         dispatch layer checks n against each buffer's dimension *)
      let a0 = Array1.unsafe_get a i0 and a1 = Array1.unsafe_get a (i0 + 1) in
      let a2 = Array1.unsafe_get a (i0 + 2) and a3 = Array1.unsafe_get a (i0 + 3) in
      Array1.unsafe_set dst i0 (k *. a0);
      (* SAFETY: i0 + 3 < n4 <= n, as above *)
      Array1.unsafe_set dst (i0 + 1) (k *. a1);
      Array1.unsafe_set dst (i0 + 2) (k *. a2);
      Array1.unsafe_set dst (i0 + 3) (k *. a3);
      i := i0 + 4
    done;
    (* SAFETY: the tail touches j in [n4, n), all < n *)
    for j = n4 to n - 1 do
      Array1.unsafe_set dst j (k *. Array1.unsafe_get a j)
    done
  end

let add_scalar k a dst n =
  if checked () then
    for i = 0 to n - 1 do
      Array1.set dst i (k +. Array1.get a i)
    done
  else begin
    let n4 = n - (n land 3) in
    let i = ref 0 in
    while !i < n4 do
      let i0 = !i in
      (* SAFETY: every index below is i0 + 3 < n4 <= n at most, and the
         dispatch layer checks n against each buffer's dimension *)
      let a0 = Array1.unsafe_get a i0 and a1 = Array1.unsafe_get a (i0 + 1) in
      let a2 = Array1.unsafe_get a (i0 + 2) and a3 = Array1.unsafe_get a (i0 + 3) in
      Array1.unsafe_set dst i0 (k +. a0);
      (* SAFETY: i0 + 3 < n4 <= n, as above *)
      Array1.unsafe_set dst (i0 + 1) (k +. a1);
      Array1.unsafe_set dst (i0 + 2) (k +. a2);
      Array1.unsafe_set dst (i0 + 3) (k +. a3);
      i := i0 + 4
    done;
    (* SAFETY: the tail touches j in [n4, n), all < n *)
    for j = n4 to n - 1 do
      Array1.unsafe_set dst j (k +. Array1.unsafe_get a j)
    done
  end

(* Same comparison chain as the reference: NaN fails both compares and
   passes through unchanged (the documented clamp contract). *)
let clamp ~lo ~hi a dst n =
  if checked () then
    for i = 0 to n - 1 do
      let x = Array1.get a i in
      Array1.set dst i (if x < lo then lo else if x > hi then hi else x)
    done
  else
    (* SAFETY: i < n and the dispatch layer checks shapes, so n <= each
       buffer's dimension *)
    for i = 0 to n - 1 do
      let x = Array1.unsafe_get a i in
      Array1.unsafe_set dst i (if x < lo then lo else if x > hi then hi else x)
    done

(* The closure-taking kernels stay safe-access: the closure call dominates
   the loop, so unsafe indexing buys nothing. *)
let map f a dst n =
  for i = 0 to n - 1 do
    Array1.set dst i (f (Array1.get a i))
  done

let map2 f a b dst n =
  for i = 0 to n - 1 do
    Array1.set dst i (f (Array1.get a i) (Array1.get b i))
  done

(* {1 Broadcasts} *)

let add_rowvec md vd dst rows cols =
  if checked () then
    for r = 0 to rows - 1 do
      let base = r * cols in
      for c = 0 to cols - 1 do
        Array1.set dst (base + c) (Array1.get md (base + c) +. Array1.get vd c)
      done
    done
  else
    for r = 0 to rows - 1 do
      let base = r * cols in
      (* SAFETY: base + c < rows * cols = dim of md and dst; c < cols = dim
         vd — the dispatch layer checks all three shapes *)
      for c = 0 to cols - 1 do
        Array1.unsafe_set dst (base + c)
          (Array1.unsafe_get md (base + c) +. Array1.unsafe_get vd c)
      done
    done

let mul_rowvec md vd dst rows cols =
  if checked () then
    for r = 0 to rows - 1 do
      let base = r * cols in
      for c = 0 to cols - 1 do
        Array1.set dst (base + c) (Array1.get md (base + c) *. Array1.get vd c)
      done
    done
  else
    for r = 0 to rows - 1 do
      let base = r * cols in
      (* SAFETY: base + c < rows * cols = dim of md and dst; c < cols = dim
         vd — the dispatch layer checks all three shapes *)
      for c = 0 to cols - 1 do
        Array1.unsafe_set dst (base + c)
          (Array1.unsafe_get md (base + c) *. Array1.unsafe_get vd c)
      done
    done

(* Colvec kernels are off the training hot path: safe accessors, same
   per-element order as the reference. *)
let add_colvec md vd dst rows cols =
  for r = 0 to rows - 1 do
    let base = r * cols in
    let x = Array1.get vd r in
    for c = 0 to cols - 1 do
      Array1.set dst (base + c) (Array1.get md (base + c) +. x)
    done
  done

let mul_colvec md vd dst rows cols =
  for r = 0 to rows - 1 do
    let base = r * cols in
    let x = Array1.get vd r in
    for c = 0 to cols - 1 do
      Array1.set dst (base + c) (Array1.get md (base + c) *. x)
    done
  done

let div_colvec md vd dst rows cols =
  for r = 0 to rows - 1 do
    let base = r * cols in
    let x = Array1.get vd r in
    for c = 0 to cols - 1 do
      Array1.set dst (base + c) (Array1.get md (base + c) /. x)
    done
  done

(* {1 Linear algebra} *)

(* Register-blocked ikj: the shared dimension is 4x-unrolled, so each pass
   over a C row loads four A entries into locals and does one C load/store
   per four multiply-adds.  The combined update
   [((((c + a0*b0) + a1*b1) + a2*b2) + a3*b3)] fixes the accumulation
   order — deterministic, but re-associated relative to the reference
   backend (last-ulp differences allowed, see header).  [cd] must be
   pre-zeroed by the caller. *)
(* Register-blocked matmul: an 8-wide column tile of the output row is
   accumulated in eight float refs (unboxed to registers by ocamlopt's
   ref-elimination) across the WHOLE shared dimension, so the output sees one
   store per element instead of k read-modify-write round-trips, and the
   eight independent add chains keep the FP units saturated where a single
   accumulator would stall on add latency.  Each element is still summed in
   pure k order — the same association as the reference — but without the
   reference's exact-zero skip, so results can differ from the reference in
   the last ulp (deterministically within this backend). *)
let matmul ad bd cd m k n =
  let n8 = n - (n land 7) in
  if checked () then
    for i = 0 to m - 1 do
      let a_base = i * k and c_base = i * n in
      let jt = ref 0 in
      while !jt < n8 do
        let j0 = !jt in
        let c0 = ref 0.0 and c1 = ref 0.0 and c2 = ref 0.0 and c3 = ref 0.0 in
        let c4 = ref 0.0 and c5 = ref 0.0 and c6 = ref 0.0 and c7 = ref 0.0 in
        for p = 0 to k - 1 do
          let a = Array1.get ad (a_base + p) in
          let b = (p * n) + j0 in
          c0 := !c0 +. (a *. Array1.get bd b);
          c1 := !c1 +. (a *. Array1.get bd (b + 1));
          c2 := !c2 +. (a *. Array1.get bd (b + 2));
          c3 := !c3 +. (a *. Array1.get bd (b + 3));
          c4 := !c4 +. (a *. Array1.get bd (b + 4));
          c5 := !c5 +. (a *. Array1.get bd (b + 5));
          c6 := !c6 +. (a *. Array1.get bd (b + 6));
          c7 := !c7 +. (a *. Array1.get bd (b + 7))
        done;
        Array1.set cd (c_base + j0) !c0;
        Array1.set cd (c_base + j0 + 1) !c1;
        Array1.set cd (c_base + j0 + 2) !c2;
        Array1.set cd (c_base + j0 + 3) !c3;
        Array1.set cd (c_base + j0 + 4) !c4;
        Array1.set cd (c_base + j0 + 5) !c5;
        Array1.set cd (c_base + j0 + 6) !c6;
        Array1.set cd (c_base + j0 + 7) !c7;
        jt := j0 + 8
      done;
      for j = n8 to n - 1 do
        let acc = ref 0.0 in
        for p = 0 to k - 1 do
          acc := !acc +. (Array1.get ad (a_base + p) *. Array1.get bd ((p * n) + j))
        done;
        Array1.set cd (c_base + j) !acc
      done
    done
  else
    for i = 0 to m - 1 do
      let a_base = i * k and c_base = i * n in
      let jt = ref 0 in
      while !jt < n8 do
        let j0 = !jt in
        let c0 = ref 0.0 and c1 = ref 0.0 and c2 = ref 0.0 and c3 = ref 0.0 in
        let c4 = ref 0.0 and c5 = ref 0.0 and c6 = ref 0.0 and c7 = ref 0.0 in
        for p = 0 to k - 1 do
          (* SAFETY: p < k so a_base + p < m * k = dim ad; and
             b + 7 = p * n + j0 + 7 < p * n + n <= k * n = dim bd because
             j0 + 7 < n8 + 8 <= n + 7 ... j0 <= n8 - 8 so j0 + 7 < n —
             the dispatch layer checks all three shapes *)
          let a = Array1.unsafe_get ad (a_base + p) in
          let b = (p * n) + j0 in
          c0 := !c0 +. (a *. Array1.unsafe_get bd b);
          (* SAFETY: b + 7 < k * n = dim bd, as established above *)
          c1 := !c1 +. (a *. Array1.unsafe_get bd (b + 1));
          (* SAFETY: b + 7 < k * n = dim bd, as established above *)
          c2 := !c2 +. (a *. Array1.unsafe_get bd (b + 2));
          c3 := !c3 +. (a *. Array1.unsafe_get bd (b + 3));
          c4 := !c4 +. (a *. Array1.unsafe_get bd (b + 4));
          (* SAFETY: b + 7 < k * n = dim bd, as established above *)
          c5 := !c5 +. (a *. Array1.unsafe_get bd (b + 5));
          c6 := !c6 +. (a *. Array1.unsafe_get bd (b + 6));
          c7 := !c7 +. (a *. Array1.unsafe_get bd (b + 7))
        done;
        (* SAFETY: j0 + 7 < n so c_base + j0 + 7 < m * n = dim cd *)
        Array1.unsafe_set cd (c_base + j0) !c0;
        Array1.unsafe_set cd (c_base + j0 + 1) !c1;
        (* SAFETY: j0 + 7 < n so c_base + j0 + 7 < m * n = dim cd *)
        Array1.unsafe_set cd (c_base + j0 + 2) !c2;
        Array1.unsafe_set cd (c_base + j0 + 3) !c3;
        Array1.unsafe_set cd (c_base + j0 + 4) !c4;
        (* SAFETY: j0 + 7 < n so c_base + j0 + 7 < m * n = dim cd *)
        Array1.unsafe_set cd (c_base + j0 + 5) !c5;
        Array1.unsafe_set cd (c_base + j0 + 6) !c6;
        Array1.unsafe_set cd (c_base + j0 + 7) !c7;
        jt := j0 + 8
      done;
      for j = n8 to n - 1 do
        let acc = ref 0.0 in
        for p = 0 to k - 1 do
          (* SAFETY: a_base + p < m * k = dim ad and p * n + j < k * n =
             dim bd by the loop bounds; dispatch checks shapes *)
          acc := !acc +. (Array1.unsafe_get ad (a_base + p)
                          *. Array1.unsafe_get bd ((p * n) + j))
        done;
        (* SAFETY: c_base + j < m * n = dim cd *)
        Array1.unsafe_set cd (c_base + j) !acc
      done
    done

(* A · Bᵀ with four independent accumulators over the shared dimension,
   combined as [((s0 + s1) + (s2 + s3))] with the tail folded in after —
   again deterministic but re-associated relative to the reference. *)
let matmul_nt ad bd cd m k n =
  let k4 = k - (k land 3) in
  if checked () then
    for i = 0 to m - 1 do
      let a_base = i * k and c_base = i * n in
      for j = 0 to n - 1 do
        let b_base = j * k in
        let s0 = ref 0.0 and s1 = ref 0.0 and s2 = ref 0.0 and s3 = ref 0.0 in
        for q = 0 to (k4 / 4) - 1 do
          let p0 = 4 * q in
          s0 := !s0 +. (Array1.get ad (a_base + p0) *. Array1.get bd (b_base + p0));
          s1 := !s1 +. (Array1.get ad (a_base + p0 + 1) *. Array1.get bd (b_base + p0 + 1));
          s2 := !s2 +. (Array1.get ad (a_base + p0 + 2) *. Array1.get bd (b_base + p0 + 2));
          s3 := !s3 +. (Array1.get ad (a_base + p0 + 3) *. Array1.get bd (b_base + p0 + 3))
        done;
        let acc = ref ((!s0 +. !s1) +. (!s2 +. !s3)) in
        for p0 = k4 to k - 1 do
          acc := !acc +. (Array1.get ad (a_base + p0) *. Array1.get bd (b_base + p0))
        done;
        Array1.set cd (c_base + j) !acc
      done
    done
  else
    for i = 0 to m - 1 do
      let a_base = i * k and c_base = i * n in
      for j = 0 to n - 1 do
        let b_base = j * k in
        let s0 = ref 0.0 and s1 = ref 0.0 and s2 = ref 0.0 and s3 = ref 0.0 in
        for q = 0 to (k4 / 4) - 1 do
          let p0 = 4 * q in
          (* SAFETY: p0 + 3 < k, so a_base + p0 + 3 < m * k = dim ad and
             b_base + p0 + 3 < n * k = dim bd — dispatch checks shapes *)
          s0 := !s0 +. (Array1.unsafe_get ad (a_base + p0) *. Array1.unsafe_get bd (b_base + p0));
          s1 := !s1 +. (Array1.unsafe_get ad (a_base + p0 + 1) *. Array1.unsafe_get bd (b_base + p0 + 1));
          (* SAFETY: as above — p0 + 2/3 < k keeps every index in range *)
          s2 := !s2 +. (Array1.unsafe_get ad (a_base + p0 + 2) *. Array1.unsafe_get bd (b_base + p0 + 2));
          s3 := !s3 +. (Array1.unsafe_get ad (a_base + p0 + 3) *. Array1.unsafe_get bd (b_base + p0 + 3))
        done;
        let acc = ref ((!s0 +. !s1) +. (!s2 +. !s3)) in
        for p0 = k4 to k - 1 do
          (* SAFETY: p0 < k, so a_base + p0 < m * k = dim ad and
             b_base + p0 < n * k = dim bd *)
          acc := !acc +. (Array1.unsafe_get ad (a_base + p0) *. Array1.unsafe_get bd (b_base + p0))
        done;
        (* SAFETY: c_base + j < m * n = dim cd *)
        Array1.unsafe_set cd (c_base + j) !acc
      done
    done

(* Same 32x32 tiling as the reference (copies are exact either way). *)
let transpose src dst rows cols =
  let bs = 32 in
  if checked () then begin
    let r0 = ref 0 in
    while !r0 < rows do
      let rmax = Stdlib.min rows (!r0 + bs) in
      let c0 = ref 0 in
      while !c0 < cols do
        let cmax = Stdlib.min cols (!c0 + bs) in
        for r = !r0 to rmax - 1 do
          let base = r * cols in
          for c = !c0 to cmax - 1 do
            Array1.set dst ((c * rows) + r) (Array1.get src (base + c))
          done
        done;
        c0 := !c0 + bs
      done;
      r0 := !r0 + bs
    done
  end
  else begin
    let r0 = ref 0 in
    while !r0 < rows do
      let rmax = Stdlib.min rows (!r0 + bs) in
      let c0 = ref 0 in
      while !c0 < cols do
        let cmax = Stdlib.min cols (!c0 + bs) in
        for r = !r0 to rmax - 1 do
          let base = r * cols in
          (* SAFETY: r < rows and c < cols keep base + c < rows * cols =
             dim src and c * rows + r < cols * rows = dim dst *)
          for c = !c0 to cmax - 1 do
            Array1.unsafe_set dst ((c * rows) + r) (Array1.unsafe_get src (base + c))
          done
        done;
        c0 := !c0 + bs
      done;
      r0 := !r0 + bs
    done
  end

(* {1 Reductions}

   [dot]/[sum]/[sum_rows]/[sum_cols] keep the reference backend's
   left-to-right single-accumulator order, so they are bitwise identical
   across backends. *)

let dot a b n =
  let acc = ref 0.0 in
  if checked () then
    for i = 0 to n - 1 do
      acc := !acc +. (Array1.get a i *. Array1.get b i)
    done
  else
    (* SAFETY: i < n = dim of both (shapes checked by the dispatch layer) *)
    for i = 0 to n - 1 do
      acc := !acc +. (Array1.unsafe_get a i *. Array1.unsafe_get b i)
    done;
  !acc

let sum a n =
  let acc = ref 0.0 in
  if checked () then
    for i = 0 to n - 1 do
      acc := !acc +. Array1.get a i
    done
  else
    (* SAFETY: i < n = dim a *)
    for i = 0 to n - 1 do
      acc := !acc +. Array1.unsafe_get a i
    done;
  !acc

(* Monomorphic spellings of the reference backend's
   [Array.fold_left Stdlib.min/max data.(0) data]: polymorphic min/max on
   floats are the IEEE selects [if acc <= x then acc else x] (resp. [>=]),
   where an unordered compare keeps [x] — so a NaN accumulator is displaced
   by the next element and a NaN element never displaces the accumulator.
   The i = 0 start replays the fold's seed element, matching the fold
   bit-for-bit (including all-NaN and -0.0/0.0 inputs). *)
let min_value b n =
  let acc = ref (Array1.get b 0) in
  for i = 0 to n - 1 do
    let x = Array1.get b i in
    acc := (if !acc <= x then !acc else x)
  done;
  !acc

let max_value b n =
  let acc = ref (Array1.get b 0) in
  for i = 0 to n - 1 do
    let x = Array1.get b i in
    acc := (if !acc >= x then !acc else x)
  done;
  !acc

(* [dst] must be pre-zeroed by the caller (column accumulators). *)
let sum_rows src dst rows cols =
  if checked () then
    for r = 0 to rows - 1 do
      let base = r * cols in
      for c = 0 to cols - 1 do
        Array1.set dst c (Array1.get dst c +. Array1.get src (base + c))
      done
    done
  else
    for r = 0 to rows - 1 do
      let base = r * cols in
      (* SAFETY: base + c < rows * cols = dim src and c < cols = dim dst *)
      for c = 0 to cols - 1 do
        Array1.unsafe_set dst c
          (Array1.unsafe_get dst c +. Array1.unsafe_get src (base + c))
      done
    done

let sum_cols src dst rows cols =
  if checked () then
    for r = 0 to rows - 1 do
      let base = r * cols in
      let acc = ref 0.0 in
      for c = 0 to cols - 1 do
        acc := !acc +. Array1.get src (base + c)
      done;
      Array1.set dst r !acc
    done
  else
    for r = 0 to rows - 1 do
      let base = r * cols in
      let acc = ref 0.0 in
      (* SAFETY: base + c < rows * cols = dim src *)
      for c = 0 to cols - 1 do
        acc := !acc +. Array1.unsafe_get src (base + c)
      done;
      (* SAFETY: r < rows = dim dst *)
      Array1.unsafe_set dst r !acc
    done

(* Strict [>] as in the reference: first maximum wins; NaN never displaces
   the incumbent (and a NaN in column 0 is never displaced). *)
let argmax_rows b rows cols =
  Array.init rows (fun r ->
      let base = r * cols in
      let best = ref 0 in
      for c = 1 to cols - 1 do
        if Array1.get b (base + c) > Array1.get b (base + !best) then best := c
      done;
      !best)

(* {1 Nonlinearities}

   Identical per-element formulas (and order) to the reference backend, so
   results are bitwise equal across backends. *)

let unary op src dst n =
  match (op : TB.unop) with
  | TB.Tanh ->
      if checked () then
        for i = 0 to n - 1 do
          Array1.set dst i (Stdlib.tanh (Array1.get src i))
        done
      else
        (* SAFETY: i < n <= dim of src and dst (dispatch layer) *)
        for i = 0 to n - 1 do
          Array1.unsafe_set dst i (Stdlib.tanh (Array1.unsafe_get src i))
        done
  | TB.Sigmoid ->
      if checked () then
        for i = 0 to n - 1 do
          Array1.set dst i (1.0 /. (1.0 +. Stdlib.exp (-.Array1.get src i)))
        done
      else
        (* SAFETY: i < n <= dim of src and dst (dispatch layer) *)
        for i = 0 to n - 1 do
          Array1.unsafe_set dst i
            (1.0 /. (1.0 +. Stdlib.exp (-.Array1.unsafe_get src i)))
        done
  | TB.Exp ->
      if checked () then
        for i = 0 to n - 1 do
          Array1.set dst i (Stdlib.exp (Array1.get src i))
        done
      else
        (* SAFETY: i < n <= dim of src and dst (dispatch layer) *)
        for i = 0 to n - 1 do
          Array1.unsafe_set dst i (Stdlib.exp (Array1.unsafe_get src i))
        done
  | TB.Log ->
      if checked () then
        for i = 0 to n - 1 do
          Array1.set dst i (Stdlib.log (Array1.get src i))
        done
      else
        (* SAFETY: i < n <= dim of src and dst (dispatch layer) *)
        for i = 0 to n - 1 do
          Array1.unsafe_set dst i (Stdlib.log (Array1.unsafe_get src i))
        done
  | TB.Sqrt ->
      if checked () then
        for i = 0 to n - 1 do
          Array1.set dst i (Stdlib.sqrt (Array1.get src i))
        done
      else
        (* SAFETY: i < n <= dim of src and dst (dispatch layer) *)
        for i = 0 to n - 1 do
          Array1.unsafe_set dst i (Stdlib.sqrt (Array1.unsafe_get src i))
        done
  | TB.Relu ->
      if checked () then
        for i = 0 to n - 1 do
          let x = Array1.get src i in
          Array1.set dst i (if x > 0.0 then x else 0.0)
        done
      else
        (* SAFETY: i < n <= dim of src and dst (dispatch layer) *)
        for i = 0 to n - 1 do
          let x = Array1.unsafe_get src i in
          Array1.unsafe_set dst i (if x > 0.0 then x else 0.0)
        done
  | TB.Abs ->
      if checked () then
        for i = 0 to n - 1 do
          Array1.set dst i (Stdlib.abs_float (Array1.get src i))
        done
      else
        (* SAFETY: i < n <= dim of src and dst (dispatch layer) *)
        for i = 0 to n - 1 do
          Array1.unsafe_set dst i (Stdlib.abs_float (Array1.unsafe_get src i))
        done

let unary_bwd op ~x ~y ~g ~s n =
  match (op : TB.unop) with
  | TB.Tanh ->
      if checked () then
        for i = 0 to n - 1 do
          let yi = Array1.get y i in
          Array1.set s i (Array1.get g i *. (1.0 -. (yi *. yi)))
        done
      else
        (* SAFETY: i < n <= dim of y, g and s (dispatch layer) *)
        for i = 0 to n - 1 do
          let yi = Array1.unsafe_get y i in
          Array1.unsafe_set s i (Array1.unsafe_get g i *. (1.0 -. (yi *. yi)))
        done
  | TB.Sigmoid ->
      if checked () then
        for i = 0 to n - 1 do
          let yi = Array1.get y i in
          Array1.set s i (Array1.get g i *. (yi *. (1.0 -. yi)))
        done
      else
        (* SAFETY: i < n <= dim of y, g and s (dispatch layer) *)
        for i = 0 to n - 1 do
          let yi = Array1.unsafe_get y i in
          Array1.unsafe_set s i (Array1.unsafe_get g i *. (yi *. (1.0 -. yi)))
        done
  | TB.Exp ->
      if checked () then
        for i = 0 to n - 1 do
          Array1.set s i (Array1.get g i *. Array1.get y i)
        done
      else
        (* SAFETY: i < n <= dim of y, g and s (dispatch layer) *)
        for i = 0 to n - 1 do
          Array1.unsafe_set s i (Array1.unsafe_get g i *. Array1.unsafe_get y i)
        done
  | TB.Log ->
      if checked () then
        for i = 0 to n - 1 do
          Array1.set s i (Array1.get g i *. (1.0 /. Array1.get x i))
        done
      else
        (* SAFETY: i < n <= dim of x, g and s (dispatch layer) *)
        for i = 0 to n - 1 do
          Array1.unsafe_set s i
            (Array1.unsafe_get g i *. (1.0 /. Array1.unsafe_get x i))
        done
  | TB.Sqrt ->
      if checked () then
        for i = 0 to n - 1 do
          Array1.set s i (Array1.get g i *. (0.5 /. Array1.get y i))
        done
      else
        (* SAFETY: i < n <= dim of y, g and s (dispatch layer) *)
        for i = 0 to n - 1 do
          Array1.unsafe_set s i
            (Array1.unsafe_get g i *. (0.5 /. Array1.unsafe_get y i))
        done
  | TB.Relu ->
      if checked () then
        for i = 0 to n - 1 do
          Array1.set s i
            (Array1.get g i *. (if Array1.get x i > 0.0 then 1.0 else 0.0))
        done
      else
        for i = 0 to n - 1 do
          (* SAFETY: i < n <= dim of x, g and s (dispatch layer) *)
          Array1.unsafe_set s i
            (Array1.unsafe_get g i
            *. (if Array1.unsafe_get x i > 0.0 then 1.0 else 0.0))
        done
  | TB.Abs ->
      if checked () then
        for i = 0 to n - 1 do
          let xi = Array1.get x i in
          Array1.set s i
            (Array1.get g i
            *. (if xi > 0.0 then 1.0 else if xi < 0.0 then -1.0 else 0.0))
        done
      else
        for i = 0 to n - 1 do
          (* SAFETY: i < n <= dim of x, g and s (dispatch layer) *)
          let xi = Array1.unsafe_get x i in
          Array1.unsafe_set s i
            (Array1.unsafe_get g i
            *. (if xi > 0.0 then 1.0 else if xi < 0.0 then -1.0 else 0.0))
        done

(* {1 Training-path fused kernels} *)

let softmax_rows src out rows cols =
  if checked () then
    for r = 0 to rows - 1 do
      let base = r * cols in
      let mx = ref neg_infinity in
      for c = 0 to cols - 1 do
        let x = Array1.get src (base + c) in
        if x > !mx then mx := x
      done;
      let z = ref 0.0 in
      for c = 0 to cols - 1 do
        let e = Stdlib.exp (Array1.get src (base + c) -. !mx) in
        Array1.set out (base + c) e;
        z := !z +. e
      done;
      for c = 0 to cols - 1 do
        Array1.set out (base + c) (Array1.get out (base + c) /. !z)
      done
    done
  else
    for r = 0 to rows - 1 do
      let base = r * cols in
      let mx = ref neg_infinity in
      (* SAFETY: base + c < rows * cols, the dim of src and of out (the
         dispatch layer checks both shapes) — holds for all three loops *)
      for c = 0 to cols - 1 do
        let x = Array1.unsafe_get src (base + c) in
        if x > !mx then mx := x
      done;
      let z = ref 0.0 in
      (* SAFETY: base + c < rows * cols = dim of src and out *)
      for c = 0 to cols - 1 do
        let e = Stdlib.exp (Array1.unsafe_get src (base + c) -. !mx) in
        Array1.unsafe_set out (base + c) e;
        z := !z +. e
      done;
      (* SAFETY: base + c < rows * cols = dim of out *)
      for c = 0 to cols - 1 do
        Array1.unsafe_set out (base + c) (Array1.unsafe_get out (base + c) /. !z)
      done
    done

let ce_loss_sum p y n =
  let loss = ref 0.0 in
  if checked () then
    for i = 0 to n - 1 do
      let yi = Array1.get y i in
      if yi > 0.0 then
        loss := !loss -. (yi *. Stdlib.log (Stdlib.max (Array1.get p i) 1e-30))
    done
  else
    for i = 0 to n - 1 do
      (* SAFETY: the dispatch layer checks p and y share a shape, so i is
         below the dim of both *)
      let yi = Array1.unsafe_get y i in
      if yi > 0.0 then
        loss := !loss -. (yi *. Stdlib.log (Stdlib.max (Array1.unsafe_get p i) 1e-30))
    done;
  !loss

let sgd_step ~lr ~grad ~value n =
  if checked () then
    for i = 0 to n - 1 do
      Array1.set value i (Array1.get value i -. (lr *. Array1.get grad i))
    done
  else
    (* SAFETY: i < n = dim of grad and value (dispatch layer) *)
    for i = 0 to n - 1 do
      Array1.unsafe_set value i
        (Array1.unsafe_get value i -. (lr *. Array1.unsafe_get grad i))
    done

let adam_step ~lr ~beta1 ~beta2 ~eps ~bc1 ~bc2 ~m ~v ~grad ~value n =
  (* moments stay plain float arrays (optimizer-owned, see KERNELS) *)
  if checked () then
    for i = 0 to n - 1 do
      let g = Array1.get grad i in
      m.(i) <- (beta1 *. m.(i)) +. ((1.0 -. beta1) *. g);
      v.(i) <- (beta2 *. v.(i)) +. ((1.0 -. beta2) *. g *. g);
      let mhat = m.(i) /. bc1 in
      let vhat = v.(i) /. bc2 in
      Array1.set value i
        (Array1.get value i -. (lr *. mhat /. (Stdlib.sqrt vhat +. eps)))
    done
  else
    for i = 0 to n - 1 do
      (* SAFETY: i < n = dim of grad and value and length of m and v (the
         optimizer allocates moments at the parameter's size) *)
      let g = Array1.unsafe_get grad i in
      Array.unsafe_set m i ((beta1 *. Array.unsafe_get m i) +. ((1.0 -. beta1) *. g));
      Array.unsafe_set v i ((beta2 *. Array.unsafe_get v i) +. ((1.0 -. beta2) *. g *. g));
      (* SAFETY: i < n bounds m, v and value exactly as above *)
      let mhat = Array.unsafe_get m i /. bc1 in
      let vhat = Array.unsafe_get v i /. bc2 in
      (* SAFETY: i < n = dim of value, as above *)
      Array1.unsafe_set value i
        (Array1.unsafe_get value i -. (lr *. mhat /. (Stdlib.sqrt vhat +. eps)))
    done

(* No fused capabilities: the OCaml loops gain nothing from fusion that the
   dispatch layer's decomposed sequence doesn't already deliver, and keeping
   this backend decomposed preserves it as the checked-twin oracle the C
   backend delegates to under PNN_CHECKED=1. *)
let matmul_bias_unop = None
let adam_step_many = None
