(* Dense 2-D tensors over pluggable kernel backends.

   Representation: row-major, index (r, c) at [r * cols + c], stored in one
   flat buffer owned by a backend (Tensor_backend.KERNELS implementation).
   This module is the dispatch layer: it validates shapes, decides which
   backend's kernels to run, and owns every storage constructor — backend
   buffer types never escape (pnnlint R6 enforces that outside lib/tensor).

   Dispatch is storage-driven: an operation whose operands all live on one
   backend runs that backend's kernels directly (a single pattern match, no
   closure indirection — this matters without flambda).  Mixed-storage
   operands (possible when tensors created before a [set_backend] call meet
   tensors created after) fall back to snapshotting the inputs into plain
   float arrays, running the REFERENCE kernels, and loading the result into
   the destination — always correct, bit-equal to the reference backend, and
   only as slow as the copies.  The active-backend flag only decides where
   fresh allocations land. *)

module TB = Tensor_backend
module Kr = Kernels_ref
module Kb = Kernels_ba
module Kc = Kernels_c

(* B1 and C share the flat Float64 bigarray buffer type; the distinct
   constructors keep dispatch storage-driven (a C tensor runs C kernels, a
   bigarray tensor runs the OCaml loops, and B1-meets-C is mixed storage
   like any other pair). *)
type storage = F of Kr.buf | B1 of Kb.buf | C of Kc.buf
type t = { rows : int; cols : int; store : storage }

(* {1 Backends} *)

type backend = TB.id = Reference | Bigarray64 | C64

let backend () = (Atomic.get TB.current)
let set_backend b = Atomic.set TB.current b
let backend_of_string = TB.of_string
let backend_name = TB.name
let backends = TB.all
let backend_choices = TB.names_string
let backend_tag () = TB.tag (Atomic.get TB.current)

let storage_backend = function
  | F _ -> Reference
  | B1 _ -> Bigarray64
  | C _ -> C64

let backend_of t = storage_backend t.store

let set_checked b = Atomic.set TB.checked b
let checked () = (Atomic.get TB.checked)

(* {1 Storage helpers} *)

let alloc_for b n =
  match b with
  | Reference -> F (Kr.create n)
  | Bigarray64 -> B1 (Kb.create n)
  | C64 -> C (Kc.create n)

let alloc_active n = alloc_for (Atomic.get TB.current) n
let alloc_like t n = alloc_for (storage_backend t.store) n

(* B1 and C buffers are the same bigarray type, so the scalar storage
   helpers share the Kb accessors via or-patterns. *)
let sget s i = match s with F a -> Kr.get a i | B1 b | C b -> Kb.get b i
let sset s i v = match s with F a -> Kr.set a i v | B1 b | C b -> Kb.set b i v

let sfill s pos len v =
  match s with
  | F a -> Kr.fill a ~pos ~len v
  | B1 b | C b -> Kb.fill b ~pos ~len v

(* exact element copy between any two storages *)
let sblit src src_pos dst dst_pos len =
  match (src, dst) with
  | F s, F d -> Kr.blit s src_pos d dst_pos len
  | (B1 s | C s), (B1 d | C d) -> Kb.blit s src_pos d dst_pos len
  | F s, (B1 d | C d) ->
      for i = 0 to len - 1 do
        Kb.set d (dst_pos + i) (Kr.get s (src_pos + i))
      done
  | (B1 s | C s), F d ->
      for i = 0 to len - 1 do
        Kr.set d (dst_pos + i) (Kb.get s (src_pos + i))
      done

(* Read-only view for the mixed-storage fallback: the F case returns the
   LIVE array (no copy) — callers must not write through it. *)
let snapshot = function F a -> a | B1 b | C b -> Kb.to_float_array b

let load_into s arr =
  match s with F d -> Kr.load d arr | B1 b | C b -> Kb.load b arr

let dup_ba b =
  let n = Kb.length b in
  let d = Kb.create n in
  Kb.blit b 0 d 0 n;
  d

let dup_store = function
  | F a -> F (Kr.of_float_array a)
  | B1 b -> B1 (dup_ba b)
  | C b -> C (dup_ba b)

(* {1 Shape plumbing} *)

let shape_string rows cols = Printf.sprintf "%dx%d" rows cols

let shape_fail name a b =
  invalid_arg
    (Printf.sprintf "Tensor.%s: shape mismatch %s vs %s" name
       (shape_string a.rows a.cols)
       (shape_string b.rows b.cols))

let binop_check name a b =
  if a.rows <> b.rows || a.cols <> b.cols then shape_fail name a b

let rows t = t.rows
let cols t = t.cols
let numel t = t.rows * t.cols
let shape t = (t.rows, t.cols)

(* {1 Construction}

   Constructors allocate on the ACTIVE backend; operations allocate on
   their first operand's backend (so computations stay on one backend no
   matter when the flag changes). *)

let create rows cols data =
  if rows < 0 || cols < 0 then invalid_arg "Tensor.create: negative dimension";
  if Array.length data <> rows * cols then
    invalid_arg
      (Printf.sprintf "Tensor.create: data length %d <> %d*%d"
         (Array.length data) rows cols);
  let store =
    match (Atomic.get TB.current) with
    | Reference -> F data (* wraps without copy, as before the backend split *)
    | Bigarray64 -> B1 (Kb.of_float_array data)
    | C64 -> C (Kc.of_float_array data)
  in
  { rows; cols; store }

let zeros rows cols =
  if rows < 0 || cols < 0 then invalid_arg "Tensor.create: negative dimension";
  { rows; cols; store = alloc_active (rows * cols) }

let full rows cols v =
  let t = zeros rows cols in
  sfill t.store 0 (rows * cols) v;
  t

let ones rows cols = full rows cols 1.0

let init rows cols f =
  (* fill a plain array first so [f] is called in row-major order exactly as
     before (RNG-backed constructors depend on the draw order) *)
  let data = Array.make (rows * cols) 0.0 in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      data.((r * cols) + c) <- f r c
    done
  done;
  create rows cols data

let scalar v = create 1 1 [| v |]
let of_array a = create 1 (Array.length a) (Array.copy a)

let of_arrays rows_arr =
  let rows = Array.length rows_arr in
  if rows = 0 then create 0 0 [||]
  else begin
    let cols = Array.length rows_arr.(0) in
    Array.iteri
      (fun i row ->
        if Array.length row <> cols then
          invalid_arg
            (Printf.sprintf "Tensor.of_arrays: row %d has length %d, expected %d"
               i (Array.length row) cols))
      rows_arr;
    init rows cols (fun r c -> rows_arr.(r).(c))
  end

let row_of_list l = of_array (Array.of_list l)
let copy t = { t with store = dup_store t.store }

let uniform rng rows cols ~lo ~hi =
  init rows cols (fun _ _ -> Rng.uniform rng ~lo ~hi)

let gaussian rng rows cols ~mu ~sigma =
  init rows cols (fun _ _ -> Rng.gaussian rng ~mu ~sigma)

let zeros_as exemplar rows cols =
  if rows < 0 || cols < 0 then invalid_arg "Tensor.create: negative dimension";
  { rows; cols; store = alloc_like exemplar (rows * cols) }

(* {1 Access} *)

let get t r c =
  if r < 0 || r >= t.rows || c < 0 || c >= t.cols then
    invalid_arg
      (Printf.sprintf "Tensor.get: (%d,%d) out of %s" r c
         (shape_string t.rows t.cols));
  sget t.store ((r * t.cols) + c)

let set t r c v =
  if r < 0 || r >= t.rows || c < 0 || c >= t.cols then
    invalid_arg
      (Printf.sprintf "Tensor.set: (%d,%d) out of %s" r c
         (shape_string t.rows t.cols));
  sset t.store ((r * t.cols) + c) v

let row t r =
  if r < 0 || r >= t.rows then invalid_arg "Tensor.row: index out of range";
  let dst = { rows = 1; cols = t.cols; store = alloc_like t t.cols } in
  sblit t.store (r * t.cols) dst.store 0 t.cols;
  dst

let to_array t =
  match t.store with
  | F a -> Array.copy a
  | B1 b | C b -> Kb.to_float_array b

let to_arrays t =
  let a = to_array t in
  Array.init t.rows (fun r -> Array.sub a (r * t.cols) t.cols)

(* {1 Dispatch cores}

   Each helper matches the operand storages once per call.  Homogeneous
   operands run their backend's kernel; mixed operands take the reference
   fallback described in the header. *)

let ew1 kr kb kc a dst n =
  match (a.store, dst.store) with
  | F x, F d -> kr x d n
  | B1 x, B1 d -> kb x d n
  | C x, C d -> kc x d n
  | ax, ds ->
      let d = Array.make n 0.0 in
      kr (snapshot ax) d n;
      load_into ds d

let ew2 kr kb kc a b dst n =
  match (a.store, b.store, dst.store) with
  | F x, F y, F d -> kr x y d n
  | B1 x, B1 y, B1 d -> kb x y d n
  | C x, C y, C d -> kc x y d n
  | ax, by, ds ->
      let d = Array.make n 0.0 in
      kr (snapshot ax) (snapshot by) d n;
      load_into ds d

let bc2 kr kb kc m v dst rows cols =
  match (m.store, v.store, dst.store) with
  | F x, F y, F d -> kr x y d rows cols
  | B1 x, B1 y, B1 d -> kb x y d rows cols
  | C x, C y, C d -> kc x y d rows cols
  | mx, vy, ds ->
      let d = Array.make (rows * cols) 0.0 in
      kr (snapshot mx) (snapshot vy) d rows cols;
      load_into ds d

(* matmul-shaped: three ints after the buffers *)
let mm3 kr kb kc a b dst m k n =
  match (a.store, b.store, dst.store) with
  | F x, F y, F d -> kr x y d m k n
  | B1 x, B1 y, B1 d -> kb x y d m k n
  | C x, C y, C d -> kc x y d m k n
  | ax, by, ds ->
      let d = Array.make (m * n) 0.0 in
      kr (snapshot ax) (snapshot by) d m k n;
      load_into ds d

let t2 kr kb kc src dst rows cols =
  match (src.store, dst.store) with
  | F x, F d -> kr x d rows cols
  | B1 x, B1 d -> kb x d rows cols
  | C x, C d -> kc x d rows cols
  | sx, ds ->
      let d = Array.make (rows * cols) 0.0 in
      kr (snapshot sx) d rows cols;
      load_into ds d

(* {1 Elementwise} *)

let map_disp f a dst n = ew1 (Kr.map f) (Kb.map f) (Kc.map f) a dst n
let map2_disp f a b dst n = ew2 (Kr.map2 f) (Kb.map2 f) (Kc.map2 f) a b dst n

let map f t =
  let dst = zeros_as t t.rows t.cols in
  map_disp f t dst (numel t);
  dst

let map2 f a b =
  if a.rows <> b.rows || a.cols <> b.cols then shape_fail "map2" a b;
  let dst = zeros_as a a.rows a.cols in
  map2_disp f a b dst (numel a);
  dst

let add a b =
  binop_check "add" a b;
  let dst = zeros_as a a.rows a.cols in
  ew2 Kr.add Kb.add Kc.add a b dst (numel a);
  dst

let sub a b =
  binop_check "sub" a b;
  let dst = zeros_as a a.rows a.cols in
  ew2 Kr.sub Kb.sub Kc.sub a b dst (numel a);
  dst

let mul a b =
  binop_check "mul" a b;
  let dst = zeros_as a a.rows a.cols in
  ew2 Kr.mul Kb.mul Kc.mul a b dst (numel a);
  dst

let div a b =
  binop_check "div" a b;
  let dst = zeros_as a a.rows a.cols in
  ew2 Kr.div Kb.div Kc.div a b dst (numel a);
  dst

let neg t =
  let dst = zeros_as t t.rows t.cols in
  ew1 Kr.neg Kb.neg Kc.neg t dst (numel t);
  dst

let scale k t =
  let dst = zeros_as t t.rows t.cols in
  ew1 (Kr.scale k) (Kb.scale k) (Kc.scale k) t dst (numel t);
  dst

let add_scalar k t =
  let dst = zeros_as t t.rows t.cols in
  ew1 (Kr.add_scalar k) (Kb.add_scalar k) (Kc.add_scalar k) t dst (numel t);
  dst

let clamp ~lo ~hi t =
  if hi < lo then invalid_arg "Tensor.clamp: hi < lo";
  let dst = zeros_as t t.rows t.cols in
  ew1 (Kr.clamp ~lo ~hi) (Kb.clamp ~lo ~hi) (Kc.clamp ~lo ~hi) t dst (numel t);
  dst

(* {1 Broadcast helpers} *)

let rowvec_check name m v =
  if v.rows <> 1 || v.cols <> m.cols then shape_fail name m v

let add_rowvec m v =
  rowvec_check "add_rowvec" m v;
  let dst = zeros_as m m.rows m.cols in
  bc2 Kr.add_rowvec Kb.add_rowvec Kc.add_rowvec m v dst m.rows m.cols;
  dst

let mul_rowvec m v =
  rowvec_check "mul_rowvec" m v;
  let dst = zeros_as m m.rows m.cols in
  bc2 Kr.mul_rowvec Kb.mul_rowvec Kc.mul_rowvec m v dst m.rows m.cols;
  dst

let colvec_check name m v =
  if v.cols <> 1 || v.rows <> m.rows then shape_fail name m v

let add_colvec m v =
  colvec_check "add_colvec" m v;
  let dst = zeros_as m m.rows m.cols in
  bc2 Kr.add_colvec Kb.add_colvec Kc.add_colvec m v dst m.rows m.cols;
  dst

let mul_colvec m v =
  colvec_check "mul_colvec" m v;
  let dst = zeros_as m m.rows m.cols in
  bc2 Kr.mul_colvec Kb.mul_colvec Kc.mul_colvec m v dst m.rows m.cols;
  dst

let div_colvec m v =
  colvec_check "div_colvec" m v;
  let dst = zeros_as m m.rows m.cols in
  bc2 Kr.div_colvec Kb.div_colvec Kc.div_colvec m v dst m.rows m.cols;
  dst

(* {1 Linear algebra} *)

let matmul a b =
  if a.cols <> b.rows then shape_fail "matmul" a b;
  let m = a.rows and k = a.cols and n = b.cols in
  let dst = zeros_as a m n in
  (* freshly allocated dst is already zeroed, as the kernels require *)
  mm3 Kr.matmul Kb.matmul Kc.matmul a b dst m k n;
  dst

let matmul_nt a b =
  if a.cols <> b.cols then shape_fail "matmul_nt" a b;
  let m = a.rows and k = a.cols and n = b.rows in
  let dst = zeros_as a m n in
  mm3 Kr.matmul_nt Kb.matmul_nt Kc.matmul_nt a b dst m k n;
  dst

let transpose t =
  let dst = zeros_as t t.cols t.rows in
  t2 Kr.transpose Kb.transpose Kc.transpose t dst t.rows t.cols;
  dst

let dot a b =
  if a.rows <> b.rows || a.cols <> b.cols then shape_fail "dot" a b;
  match (a.store, b.store) with
  | F x, F y -> Kr.dot x y (numel a)
  | B1 x, B1 y -> Kb.dot x y (numel a)
  | C x, C y -> Kc.dot x y (numel a)
  | ax, by -> Kr.dot (snapshot ax) (snapshot by) (numel a)

(* {1 Reductions} *)

let sum t =
  match t.store with
  | F a -> Kr.sum a (numel t)
  | B1 b -> Kb.sum b (numel t)
  | C b -> Kc.sum b (numel t)

let mean t =
  if numel t = 0 then invalid_arg "Tensor.mean: empty tensor";
  sum t /. float_of_int (numel t)

let min_value t =
  if numel t = 0 then invalid_arg "Tensor.min_value: empty tensor";
  match t.store with
  | F a -> Kr.min_value a (numel t)
  | B1 b | C b -> Kb.min_value b (numel t)

let max_value t =
  if numel t = 0 then invalid_arg "Tensor.max_value: empty tensor";
  match t.store with
  | F a -> Kr.max_value a (numel t)
  | B1 b | C b -> Kb.max_value b (numel t)

let sum_rows t =
  let dst = zeros_as t 1 t.cols in
  t2 Kr.sum_rows Kb.sum_rows Kc.sum_rows t dst t.rows t.cols;
  dst

let sum_cols t =
  let dst = zeros_as t t.rows 1 in
  t2 Kr.sum_cols Kb.sum_cols Kc.sum_cols t dst t.rows t.cols;
  dst

let argmax_rows t =
  if t.cols = 0 then invalid_arg "Tensor.argmax_rows: zero columns";
  match t.store with
  | F a -> Kr.argmax_rows a t.rows t.cols
  | B1 b | C b -> Kb.argmax_rows b t.rows t.cols

(* {1 Assembly} *)

let concat_cols a b =
  if a.rows <> b.rows then shape_fail "concat_cols" a b;
  let dst = zeros_as a a.rows (a.cols + b.cols) in
  for r = 0 to a.rows - 1 do
    sblit a.store (r * a.cols) dst.store (r * dst.cols) a.cols;
    sblit b.store (r * b.cols) dst.store ((r * dst.cols) + a.cols) b.cols
  done;
  dst

let concat_rows a b =
  if a.cols <> b.cols then shape_fail "concat_rows" a b;
  let dst = zeros_as a (a.rows + b.rows) a.cols in
  sblit a.store 0 dst.store 0 (numel a);
  sblit b.store 0 dst.store (numel a) (numel b);
  dst

let slice_rows t start len =
  if start < 0 || len < 0 || start + len > t.rows then
    invalid_arg
      (Printf.sprintf "Tensor.slice_rows: [%d,%d) out of %d rows" start
         (start + len) t.rows);
  let dst = zeros_as t len t.cols in
  sblit t.store (start * t.cols) dst.store 0 (len * t.cols);
  dst

let slice_cols t start len =
  if start < 0 || len < 0 || start + len > t.cols then
    invalid_arg
      (Printf.sprintf "Tensor.slice_cols: [%d,%d) out of %d cols" start
         (start + len) t.cols);
  let dst = zeros_as t t.rows len in
  for r = 0 to t.rows - 1 do
    sblit t.store ((r * t.cols) + start) dst.store (r * len) len
  done;
  dst

let take_rows t idx =
  let dst = zeros_as t (Array.length idx) t.cols in
  Array.iteri
    (fun r src ->
      if src < 0 || src >= t.rows then
        invalid_arg "Tensor.take_rows: index out of range";
      sblit t.store (src * t.cols) dst.store (r * t.cols) t.cols)
    idx;
  dst

(* {1 In-place (destination-passing) kernels} *)

let shape_check_dst name dst rows cols =
  if dst.rows <> rows || dst.cols <> cols then
    invalid_arg
      (Printf.sprintf "Tensor.%s: dst shape %s, expected %s" name
         (shape_string dst.rows dst.cols)
         (shape_string rows cols))

let fill t v = sfill t.store 0 (numel t) v

let blit ~src ~dst =
  if src.rows <> dst.rows || src.cols <> dst.cols then shape_fail "blit" src dst;
  sblit src.store 0 dst.store 0 (numel src)

let map_into f a ~dst =
  shape_check_dst "map_into" dst a.rows a.cols;
  map_disp f a dst (numel a)

let map2_into f a b ~dst =
  if a.rows <> b.rows || a.cols <> b.cols then shape_fail "map2_into" a b;
  shape_check_dst "map2_into" dst a.rows a.cols;
  map2_disp f a b dst (numel a)

let add_into a b ~dst =
  binop_check "add_into" a b;
  shape_check_dst "add_into" dst a.rows a.cols;
  ew2 Kr.add Kb.add Kc.add a b dst (numel a)

let sub_into a b ~dst =
  binop_check "sub_into" a b;
  shape_check_dst "sub_into" dst a.rows a.cols;
  ew2 Kr.sub Kb.sub Kc.sub a b dst (numel a)

let mul_into a b ~dst =
  binop_check "mul_into" a b;
  shape_check_dst "mul_into" dst a.rows a.cols;
  ew2 Kr.mul Kb.mul Kc.mul a b dst (numel a)

let div_into a b ~dst =
  binop_check "div_into" a b;
  shape_check_dst "div_into" dst a.rows a.cols;
  ew2 Kr.div Kb.div Kc.div a b dst (numel a)

let neg_into a ~dst =
  shape_check_dst "neg_into" dst a.rows a.cols;
  ew1 Kr.neg Kb.neg Kc.neg a dst (numel a)

let scale_into k a ~dst =
  shape_check_dst "scale_into" dst a.rows a.cols;
  ew1 (Kr.scale k) (Kb.scale k) (Kc.scale k) a dst (numel a)

let add_scalar_into k a ~dst =
  shape_check_dst "add_scalar_into" dst a.rows a.cols;
  ew1 (Kr.add_scalar k) (Kb.add_scalar k) (Kc.add_scalar k) a dst (numel a)

let clamp_into ~lo ~hi a ~dst =
  if hi < lo then invalid_arg "Tensor.clamp_into: hi < lo";
  shape_check_dst "clamp_into" dst a.rows a.cols;
  ew1 (Kr.clamp ~lo ~hi) (Kb.clamp ~lo ~hi) (Kc.clamp ~lo ~hi) a dst (numel a)

let add_rowvec_into m v ~dst =
  rowvec_check "add_rowvec_into" m v;
  shape_check_dst "add_rowvec_into" dst m.rows m.cols;
  bc2 Kr.add_rowvec Kb.add_rowvec Kc.add_rowvec m v dst m.rows m.cols

let mul_rowvec_into m v ~dst =
  rowvec_check "mul_rowvec_into" m v;
  shape_check_dst "mul_rowvec_into" dst m.rows m.cols;
  bc2 Kr.mul_rowvec Kb.mul_rowvec Kc.mul_rowvec m v dst m.rows m.cols

let broadcast_rowvec_into v ~dst =
  (* each dst row := v; bit-identical to [mul_rowvec (ones …) v]
     (1.0 *. x = x for every float, including signed zeros) *)
  if v.rows <> 1 || v.cols <> dst.cols then shape_fail "broadcast_rowvec_into" dst v;
  for r = 0 to dst.rows - 1 do
    sblit v.store 0 dst.store (r * dst.cols) dst.cols
  done

let matmul_into a b ~dst =
  if a.cols <> b.rows then shape_fail "matmul_into" a b;
  let m = a.rows and k = a.cols and n = b.cols in
  shape_check_dst "matmul_into" dst m n;
  sfill dst.store 0 (m * n) 0.0;
  mm3 Kr.matmul Kb.matmul Kc.matmul a b dst m k n

let matmul_nt_into a b ~dst =
  if a.cols <> b.cols then shape_fail "matmul_nt_into" a b;
  let m = a.rows and k = a.cols and n = b.rows in
  shape_check_dst "matmul_nt_into" dst m n;
  mm3 Kr.matmul_nt Kb.matmul_nt Kc.matmul_nt a b dst m k n

let transpose_into t ~dst =
  shape_check_dst "transpose_into" dst t.cols t.rows;
  t2 Kr.transpose Kb.transpose Kc.transpose t dst t.rows t.cols

let sum_rows_into t ~dst =
  shape_check_dst "sum_rows_into" dst 1 t.cols;
  sfill dst.store 0 t.cols 0.0;
  t2 Kr.sum_rows Kb.sum_rows Kc.sum_rows t dst t.rows t.cols

let sum_cols_into t ~dst =
  shape_check_dst "sum_cols_into" dst t.rows 1;
  t2 Kr.sum_cols Kb.sum_cols Kc.sum_cols t dst t.rows t.cols

let slice_cols_into t start len ~dst =
  if start < 0 || len < 0 || start + len > t.cols then
    invalid_arg
      (Printf.sprintf "Tensor.slice_cols_into: [%d,%d) out of %d cols" start
         (start + len) t.cols);
  shape_check_dst "slice_cols_into" dst t.rows len;
  for r = 0 to t.rows - 1 do
    sblit t.store ((r * t.cols) + start) dst.store (r * len) len
  done

let slice_rows_into t start len ~dst =
  if start < 0 || len < 0 || start + len > t.rows then
    invalid_arg
      (Printf.sprintf "Tensor.slice_rows_into: [%d,%d) out of %d rows" start
         (start + len) t.rows);
  shape_check_dst "slice_rows_into" dst len t.cols;
  sblit t.store (start * t.cols) dst.store 0 (len * t.cols)

let embed_cols_into src start ~dst =
  (* dst := 0 everywhere except columns [start, start + cols src), which
     receive src — the scatter used by the slice_cols gradient. *)
  if src.rows <> dst.rows || start < 0 || start + src.cols > dst.cols then
    shape_fail "embed_cols_into" src dst;
  fill dst 0.0;
  for r = 0 to src.rows - 1 do
    sblit src.store (r * src.cols) dst.store ((r * dst.cols) + start) src.cols
  done

let embed_rows_into src start ~dst =
  if src.cols <> dst.cols || start < 0 || start + src.rows > dst.rows then
    shape_fail "embed_rows_into" src dst;
  fill dst 0.0;
  sblit src.store 0 dst.store (start * dst.cols) (src.rows * dst.cols)

let concat_cols_into a b ~dst =
  if a.rows <> b.rows then shape_fail "concat_cols_into" a b;
  shape_check_dst "concat_cols_into" dst a.rows (a.cols + b.cols);
  for r = 0 to a.rows - 1 do
    sblit a.store (r * a.cols) dst.store (r * dst.cols) a.cols;
    sblit b.store (r * b.cols) dst.store ((r * dst.cols) + a.cols) b.cols
  done

let concat_rows_into a b ~dst =
  if a.cols <> b.cols then shape_fail "concat_rows_into" a b;
  shape_check_dst "concat_rows_into" dst (a.rows + b.rows) a.cols;
  sblit a.store 0 dst.store 0 (numel a);
  sblit b.store 0 dst.store (numel a) (numel b)

(* {1 Nonlinearity and training-path kernels}

   These belong to the backend because the autodiff tape and the optimizer
   run them on backend-owned storage; routing them through here keeps raw
   buffers from leaking out of lib/tensor. *)

type unop = TB.unop = Tanh | Sigmoid | Exp | Log | Sqrt | Relu | Abs

let unop_into op a ~dst =
  shape_check_dst "unop_into" dst a.rows a.cols;
  ew1 (Kr.unary op) (Kb.unary op) (Kc.unary op) a dst (numel a)

let unop_bwd_into op ~x ~y ~g ~dst =
  binop_check "unop_bwd_into" x y;
  binop_check "unop_bwd_into" x g;
  shape_check_dst "unop_bwd_into" dst x.rows x.cols;
  let n = numel x in
  match (x.store, y.store, g.store, dst.store) with
  | F xb, F yb, F gb, F db -> Kr.unary_bwd op ~x:xb ~y:yb ~g:gb ~s:db n
  | B1 xb, B1 yb, B1 gb, B1 db -> Kb.unary_bwd op ~x:xb ~y:yb ~g:gb ~s:db n
  | C xb, C yb, C gb, C db -> Kc.unary_bwd op ~x:xb ~y:yb ~g:gb ~s:db n
  | xs, ys, gs, ds ->
      let d = Array.make n 0.0 in
      Kr.unary_bwd op ~x:(snapshot xs) ~y:(snapshot ys) ~g:(snapshot gs) ~s:d n;
      load_into ds d

let softmax_rows_into m ~dst =
  shape_check_dst "softmax_rows_into" dst m.rows m.cols;
  t2 Kr.softmax_rows Kb.softmax_rows Kc.softmax_rows m dst m.rows m.cols

let ce_loss_sum probs labels =
  binop_check "ce_loss_sum" probs labels;
  match (probs.store, labels.store) with
  | F p, F y -> Kr.ce_loss_sum p y (numel probs)
  | B1 p, B1 y -> Kb.ce_loss_sum p y (numel probs)
  | C p, C y -> Kc.ce_loss_sum p y (numel probs)
  | ps, ys -> Kr.ce_loss_sum (snapshot ps) (snapshot ys) (numel probs)

let sgd_step ~lr ~grad value =
  binop_check "sgd_step" value grad;
  let n = numel value in
  match (value.store, grad.store) with
  | F v, F g -> Kr.sgd_step ~lr ~grad:g ~value:v n
  | B1 v, B1 g -> Kb.sgd_step ~lr ~grad:g ~value:v n
  | C v, C g -> Kc.sgd_step ~lr ~grad:g ~value:v n
  | vs, gs ->
      (* snapshot of an F store is the live array, so Kr updates it in
         place; a bigarray-backed store needs the result loaded back *)
      let v = snapshot vs in
      Kr.sgd_step ~lr ~grad:(snapshot gs) ~value:v n;
      (match vs with F _ -> () | B1 b | C b -> Kb.load b v)

let adam_step ~lr ~beta1 ~beta2 ~eps ~bc1 ~bc2 ~m ~v ~grad value =
  binop_check "adam_step" value grad;
  let n = numel value in
  if Array.length m <> n || Array.length v <> n then
    invalid_arg "Tensor.adam_step: moment length mismatch";
  match (value.store, grad.store) with
  | F vb, F gb ->
      Kr.adam_step ~lr ~beta1 ~beta2 ~eps ~bc1 ~bc2 ~m ~v ~grad:gb ~value:vb n
  | B1 vb, B1 gb ->
      Kb.adam_step ~lr ~beta1 ~beta2 ~eps ~bc1 ~bc2 ~m ~v ~grad:gb ~value:vb n
  | C vb, C gb ->
      Kc.adam_step ~lr ~beta1 ~beta2 ~eps ~bc1 ~bc2 ~m ~v ~grad:gb ~value:vb n
  | vs, gs ->
      let vb = snapshot vs in
      Kr.adam_step ~lr ~beta1 ~beta2 ~eps ~bc1 ~bc2 ~m ~v ~grad:(snapshot gs)
        ~value:vb n;
      (match vs with F _ -> () | B1 b | C b -> Kb.load b vb)

(* {1 Fused hot-path entry points}

   Each takes the backend's fused capability when (a) every operand lives
   on that backend, (b) the backend advertises the capability, and (c) the
   sanitizer is off (checked mode decomposes so every constituent kernel
   runs its bounds-checked body).  Otherwise it decomposes into the exact
   kernel sequence the fused stub replicates, so both routes are
   bit-identical on a given backend. *)

let matmul_bias_unop_into ?op x w b ~pre ~out =
  if x.cols <> w.rows then shape_fail "matmul_bias_unop_into" x w;
  let m = x.rows and k = x.cols and n = w.cols in
  if b.rows <> 1 || b.cols <> n then shape_fail "matmul_bias_unop_into" w b;
  shape_check_dst "matmul_bias_unop_into" pre m n;
  shape_check_dst "matmul_bias_unop_into" out m n;
  let fused =
    if (Atomic.get TB.checked) then None
    else
      match (x.store, w.store, b.store, pre.store, out.store) with
      | C xb, C wb, C bb, C pb, C ob -> (
          match Kc.matmul_bias_unop with
          | Some f -> Some (fun () -> f op ~x:xb ~w:wb ~b:bb ~pre:pb ~out:ob m k n)
          | None -> None)
      | _ -> None
  in
  match fused with
  | Some run -> run ()
  | None -> (
      matmul_into x w ~dst:pre;
      (* elementwise broadcast: dst aliasing the matrix operand is legal *)
      add_rowvec_into pre b ~dst:pre;
      match op with
      | Some u -> unop_into u pre ~dst:out
      | None -> if not (out == pre) then blit ~src:pre ~dst:out)

let adam_step_many ~lr ~beta1 ~beta2 ~eps ~bc1 ~bc2 items =
  List.iter
    (fun (value, grad, m, v) ->
      binop_check "adam_step_many" value grad;
      if Array.length m <> numel value || Array.length v <> numel value then
        invalid_arg "Tensor.adam_step_many: moment length mismatch")
    items;
  let all_c =
    List.for_all
      (fun (value, grad, _, _) ->
        match (value.store, grad.store) with
        | C _, C _ -> true
        | _ -> false)
      items
  in
  match Kc.adam_step_many with
  | Some f when all_c && not (Atomic.get TB.checked) ->
      let arr =
        Array.of_list
          (List.map
             (fun (value, grad, m, v) ->
               match (value.store, grad.store) with
               | C vb, C gb -> (vb, gb, m, v, numel value)
               | _ -> assert false)
             items)
      in
      f ~lr ~beta1 ~beta2 ~eps ~bc1 ~bc2 arr
  | _ ->
      List.iter
        (fun (value, grad, m, v) ->
          adam_step ~lr ~beta1 ~beta2 ~eps ~bc1 ~bc2 ~m ~v ~grad value)
        items

(* {1 Comparison and printing} *)

let equal ?(eps = 0.0) a b =
  a.rows = b.rows && a.cols = b.cols
  && begin
       (* [not (|x - y| <= eps)] instead of [|x - y| > eps]: a NaN difference
          fails both comparisons, so any NaN entry makes the tensors unequal
          (IEEE semantics) instead of silently comparing as equal. *)
       let ok = ref true in
       let n = numel a in
       for i = 0 to n - 1 do
         if not (Float.abs (sget a.store i -. sget b.store i) <= eps) then
           ok := false
       done;
       !ok
     end

let pp fmt t =
  Format.fprintf fmt "@[<v>tensor %dx%d" t.rows t.cols;
  for r = 0 to Stdlib.min (t.rows - 1) 7 do
    Format.fprintf fmt "@,[";
    for c = 0 to Stdlib.min (t.cols - 1) 9 do
      Format.fprintf fmt "%s%.5g" (if c > 0 then "; " else "") (get t r c)
    done;
    if t.cols > 10 then Format.fprintf fmt "; ...";
    Format.fprintf fmt "]"
  done;
  if t.rows > 8 then Format.fprintf fmt "@,...";
  Format.fprintf fmt "@]"

let to_string t = Format.asprintf "%a" pp t
