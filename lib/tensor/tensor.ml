type t = { rows : int; cols : int; data : float array }
(* A note on representation: row-major, index (r, c) at [r * cols + c]. *)


let shape_string rows cols = Printf.sprintf "%dx%d" rows cols

let shape_fail name a b =
  invalid_arg
    (Printf.sprintf "Tensor.%s: shape mismatch %s vs %s" name
       (shape_string a.rows a.cols)
       (shape_string b.rows b.cols))

(* {1 Checked (sanitizer) mode}

   When [checked_mode] is on (PNN_CHECKED=1 in the environment, or
   [set_checked true]), every kernel below runs its bounds-checked loop body
   instead of the [Array.unsafe_*] one.  Both bodies perform the exact same
   floating-point operations in the exact same order, so results are
   bit-identical across modes — the CI determinism suite runs once under
   PNN_CHECKED=1 to prove the unsafe indexing never strays out of bounds.

   The flag is tested once per kernel call, not per element: a per-element
   flag dereference measured ~2.3x slower on the elementwise hot path, while
   the one-branch-per-call dual-loop shape is within noise of the raw loop. *)

let checked_mode =
  ref
    (match Sys.getenv_opt "PNN_CHECKED" with
    | Some ("1" | "true" | "yes") -> true
    | _ -> false)

let set_checked b = checked_mode := b
let checked () = !checked_mode

let create rows cols data =
  if rows < 0 || cols < 0 then invalid_arg "Tensor.create: negative dimension";
  if Array.length data <> rows * cols then
    invalid_arg
      (Printf.sprintf "Tensor.create: data length %d <> %d*%d"
         (Array.length data) rows cols);
  { rows; cols; data }

let zeros rows cols = create rows cols (Array.make (rows * cols) 0.0)
let ones rows cols = create rows cols (Array.make (rows * cols) 1.0)
let full rows cols v = create rows cols (Array.make (rows * cols) v)

let init rows cols f =
  let data = Array.make (rows * cols) 0.0 in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      data.((r * cols) + c) <- f r c
    done
  done;
  create rows cols data

let scalar v = create 1 1 [| v |]
let of_array a = create 1 (Array.length a) (Array.copy a)

let of_arrays rows_arr =
  let rows = Array.length rows_arr in
  if rows = 0 then create 0 0 [||]
  else begin
    let cols = Array.length rows_arr.(0) in
    Array.iteri
      (fun i row ->
        if Array.length row <> cols then
          invalid_arg
            (Printf.sprintf "Tensor.of_arrays: row %d has length %d, expected %d"
               i (Array.length row) cols))
      rows_arr;
    init rows cols (fun r c -> rows_arr.(r).(c))
  end

let row_of_list l = of_array (Array.of_list l)
let copy t = { t with data = Array.copy t.data }

let uniform rng rows cols ~lo ~hi =
  init rows cols (fun _ _ -> Rng.uniform rng ~lo ~hi)

let gaussian rng rows cols ~mu ~sigma =
  init rows cols (fun _ _ -> Rng.gaussian rng ~mu ~sigma)

let rows t = t.rows
let cols t = t.cols
let numel t = t.rows * t.cols
let shape t = (t.rows, t.cols)

let get t r c =
  if r < 0 || r >= t.rows || c < 0 || c >= t.cols then
    invalid_arg
      (Printf.sprintf "Tensor.get: (%d,%d) out of %s" r c
         (shape_string t.rows t.cols));
  t.data.((r * t.cols) + c)

let set t r c v =
  if r < 0 || r >= t.rows || c < 0 || c >= t.cols then
    invalid_arg
      (Printf.sprintf "Tensor.set: (%d,%d) out of %s" r c
         (shape_string t.rows t.cols));
  t.data.((r * t.cols) + c) <- v

let row t r =
  if r < 0 || r >= t.rows then invalid_arg "Tensor.row: index out of range";
  create 1 t.cols (Array.sub t.data (r * t.cols) t.cols)

let to_array t = Array.copy t.data
let to_arrays t = Array.init t.rows (fun r -> Array.sub t.data (r * t.cols) t.cols)

let map f t = { t with data = Array.map f t.data }

let map2 f a b =
  if a.rows <> b.rows || a.cols <> b.cols then shape_fail "map2" a b;
  { a with data = Array.map2 f a.data b.data }

(* {1 Kernel cores}

   The arithmetic kernels are written as monomorphic direct loops instead of
   going through a [binop f]-style higher-order helper: calling a
   [float -> float -> float] closure per element boxes its arguments and
   result on the minor heap, which dominated minor-words profiles of the
   training hot path.  A direct [a +. b] on float-array reads stays fully
   unboxed.

   Each core below operates on raw arrays and is shared by the allocating
   kernel and its [*_into] twin, so both stay bit-identical by construction.
   Callers validate shapes, which is what makes the unsafe branch's index
   arithmetic in-bounds. *)

let binop_check name a b =
  if a.rows <> b.rows || a.cols <> b.cols then shape_fail name a b

let add_core a b dst n =
  if !checked_mode then
    for i = 0 to n - 1 do
      dst.(i) <- a.(i) +. b.(i)
    done
  else
    (* SAFETY: i < n and callers check shapes, so n <= each array length *)
    for i = 0 to n - 1 do
      Array.unsafe_set dst i (Array.unsafe_get a i +. Array.unsafe_get b i)
    done

let sub_core a b dst n =
  if !checked_mode then
    for i = 0 to n - 1 do
      dst.(i) <- a.(i) -. b.(i)
    done
  else
    (* SAFETY: i < n and callers check shapes, so n <= each array length *)
    for i = 0 to n - 1 do
      Array.unsafe_set dst i (Array.unsafe_get a i -. Array.unsafe_get b i)
    done

let mul_core a b dst n =
  if !checked_mode then
    for i = 0 to n - 1 do
      dst.(i) <- a.(i) *. b.(i)
    done
  else
    (* SAFETY: i < n and callers check shapes, so n <= each array length *)
    for i = 0 to n - 1 do
      Array.unsafe_set dst i (Array.unsafe_get a i *. Array.unsafe_get b i)
    done

let div_core a b dst n =
  if !checked_mode then
    for i = 0 to n - 1 do
      dst.(i) <- a.(i) /. b.(i)
    done
  else
    (* SAFETY: i < n and callers check shapes, so n <= each array length *)
    for i = 0 to n - 1 do
      Array.unsafe_set dst i (Array.unsafe_get a i /. Array.unsafe_get b i)
    done

let neg_core a dst n =
  if !checked_mode then
    for i = 0 to n - 1 do
      dst.(i) <- -.a.(i)
    done
  else
    (* SAFETY: i < n and callers check shapes, so n <= each array length *)
    for i = 0 to n - 1 do
      Array.unsafe_set dst i (-.Array.unsafe_get a i)
    done

let scale_core k a dst n =
  if !checked_mode then
    for i = 0 to n - 1 do
      dst.(i) <- k *. a.(i)
    done
  else
    (* SAFETY: i < n and callers check shapes, so n <= each array length *)
    for i = 0 to n - 1 do
      Array.unsafe_set dst i (k *. Array.unsafe_get a i)
    done

let add_scalar_core k a dst n =
  if !checked_mode then
    for i = 0 to n - 1 do
      dst.(i) <- k +. a.(i)
    done
  else
    (* SAFETY: i < n and callers check shapes, so n <= each array length *)
    for i = 0 to n - 1 do
      Array.unsafe_set dst i (k +. Array.unsafe_get a i)
    done

let clamp_core ~lo ~hi a dst n =
  if !checked_mode then
    for i = 0 to n - 1 do
      let x = a.(i) in
      dst.(i) <- (if x < lo then lo else if x > hi then hi else x)
    done
  else
    (* SAFETY: i < n and callers check shapes, so n <= each array length *)
    for i = 0 to n - 1 do
      let x = Array.unsafe_get a i in
      Array.unsafe_set dst i (if x < lo then lo else if x > hi then hi else x)
    done

let map_core f a dst n =
  if !checked_mode then
    for i = 0 to n - 1 do
      dst.(i) <- f a.(i)
    done
  else
    (* SAFETY: i < n and callers check shapes, so n <= each array length *)
    for i = 0 to n - 1 do
      Array.unsafe_set dst i (f (Array.unsafe_get a i))
    done

let map2_core f a b dst n =
  if !checked_mode then
    for i = 0 to n - 1 do
      dst.(i) <- f a.(i) b.(i)
    done
  else
    (* SAFETY: i < n and callers check shapes, so n <= each array length *)
    for i = 0 to n - 1 do
      Array.unsafe_set dst i (f (Array.unsafe_get a i) (Array.unsafe_get b i))
    done

let add_rowvec_core md vd dst rows cols =
  if !checked_mode then
    for r = 0 to rows - 1 do
      let base = r * cols in
      for c = 0 to cols - 1 do
        dst.(base + c) <- md.(base + c) +. vd.(c)
      done
    done
  else
    for r = 0 to rows - 1 do
      let base = r * cols in
      (* SAFETY: base + c < rows * cols = length of md and dst;
         c < cols = length vd — callers check all three shapes *)
      for c = 0 to cols - 1 do
        Array.unsafe_set dst (base + c)
          (Array.unsafe_get md (base + c) +. Array.unsafe_get vd c)
      done
    done

let mul_rowvec_core md vd dst rows cols =
  if !checked_mode then
    for r = 0 to rows - 1 do
      let base = r * cols in
      for c = 0 to cols - 1 do
        dst.(base + c) <- md.(base + c) *. vd.(c)
      done
    done
  else
    for r = 0 to rows - 1 do
      let base = r * cols in
      (* SAFETY: base + c < rows * cols = length of md and dst;
         c < cols = length vd — callers check all three shapes *)
      for c = 0 to cols - 1 do
        Array.unsafe_set dst (base + c)
          (Array.unsafe_get md (base + c) *. Array.unsafe_get vd c)
      done
    done

(* ikj loop order: streams through b rows, cache friendly for row-major.
   [cd] must be pre-zeroed by the caller. *)
let matmul_core ad bd cd m k n =
  if !checked_mode then
    for i = 0 to m - 1 do
      let a_base = i * k and c_base = i * n in
      for p = 0 to k - 1 do
        let aip = ad.(a_base + p) in
        (* pnnlint:allow R5 exact-zero skip is IEEE on purpose: -0.0 skips,
           NaN never skips; Float.equal would treat both differently *)
        if aip <> 0.0 then begin
          let b_base = p * n in
          for j = 0 to n - 1 do
            cd.(c_base + j) <- cd.(c_base + j) +. (aip *. bd.(b_base + j))
          done
        end
      done
    done
  else
    for i = 0 to m - 1 do
      let a_base = i * k and c_base = i * n in
      for p = 0 to k - 1 do
        (* SAFETY: a_base + p < m * k = length ad *)
        let aip = Array.unsafe_get ad (a_base + p) in
        (* pnnlint:allow R5 exact-zero skip is IEEE on purpose: -0.0 skips,
           NaN never skips; Float.equal would treat both differently *)
        if aip <> 0.0 then begin
          let b_base = p * n in
          (* SAFETY: c_base + j < m * n = length cd and
             b_base + j < k * n = length bd, by the loop bounds *)
          for j = 0 to n - 1 do
            Array.unsafe_set cd (c_base + j)
              (Array.unsafe_get cd (c_base + j) +. (aip *. Array.unsafe_get bd (b_base + j)))
          done
        end
      done
    done

(* A · Bᵀ without materializing the transpose: rows of both operands are
   contiguous, so the p-loop streams both.  The accumulation order (and the
   skip of exact-zero A entries) mirrors [matmul a (transpose b)], keeping
   results bit-identical to that formulation. *)
let matmul_nt_core ad bd cd m k n =
  if !checked_mode then
    for i = 0 to m - 1 do
      let a_base = i * k and c_base = i * n in
      for j = 0 to n - 1 do
        let b_base = j * k in
        let acc = ref 0.0 in
        for p = 0 to k - 1 do
          let aip = ad.(a_base + p) in
          (* pnnlint:allow R5 exact-zero skip is IEEE on purpose: -0.0 skips,
             NaN never skips; Float.equal would treat both differently *)
          if aip <> 0.0 then acc := !acc +. (aip *. bd.(b_base + p))
        done;
        cd.(c_base + j) <- !acc
      done
    done
  else
    for i = 0 to m - 1 do
      let a_base = i * k and c_base = i * n in
      for j = 0 to n - 1 do
        let b_base = j * k in
        let acc = ref 0.0 in
        for p = 0 to k - 1 do
          (* SAFETY: a_base + p < m * k = length ad *)
          let aip = Array.unsafe_get ad (a_base + p) in
          (* pnnlint:allow R5 exact-zero skip is IEEE on purpose: -0.0 skips,
             NaN never skips; Float.equal would treat both differently *)
          if aip <> 0.0 then
            (* SAFETY: b_base + p < n * k = length bd *)
            acc := !acc +. (aip *. Array.unsafe_get bd (b_base + p))
        done;
        (* SAFETY: c_base + j < m * n = length cd *)
        Array.unsafe_set cd (c_base + j) !acc
      done
    done

(* Blocked copy instead of a closure-per-element [init]: both the read and
   the write stay within a 32x32 tile, so one of the two strided streams is
   always cache-resident. *)
let transpose_core src dst rows cols =
  let bs = 32 in
  if !checked_mode then begin
    let r0 = ref 0 in
    while !r0 < rows do
      let rmax = Stdlib.min rows (!r0 + bs) in
      let c0 = ref 0 in
      while !c0 < cols do
        let cmax = Stdlib.min cols (!c0 + bs) in
        for r = !r0 to rmax - 1 do
          let base = r * cols in
          for c = !c0 to cmax - 1 do
            dst.((c * rows) + r) <- src.(base + c)
          done
        done;
        c0 := !c0 + bs
      done;
      r0 := !r0 + bs
    done
  end
  else begin
    let r0 = ref 0 in
    while !r0 < rows do
      let rmax = Stdlib.min rows (!r0 + bs) in
      let c0 = ref 0 in
      while !c0 < cols do
        let cmax = Stdlib.min cols (!c0 + bs) in
        for r = !r0 to rmax - 1 do
          let base = r * cols in
          (* SAFETY: r < rows and c < cols keep base + c < rows * cols =
             length src and c * rows + r < cols * rows = length dst *)
          for c = !c0 to cmax - 1 do
            Array.unsafe_set dst ((c * rows) + r) (Array.unsafe_get src (base + c))
          done
        done;
        c0 := !c0 + bs
      done;
      r0 := !r0 + bs
    done
  end

(* [dst] must be pre-zeroed by the caller (column accumulators). *)
let sum_rows_core src dst rows cols =
  if !checked_mode then
    for r = 0 to rows - 1 do
      let base = r * cols in
      for c = 0 to cols - 1 do
        dst.(c) <- dst.(c) +. src.(base + c)
      done
    done
  else
    for r = 0 to rows - 1 do
      let base = r * cols in
      (* SAFETY: base + c < rows * cols = length src and
         c < cols = length dst *)
      for c = 0 to cols - 1 do
        Array.unsafe_set dst c
          (Array.unsafe_get dst c +. Array.unsafe_get src (base + c))
      done
    done

let sum_cols_core src dst rows cols =
  if !checked_mode then
    for r = 0 to rows - 1 do
      let base = r * cols in
      let acc = ref 0.0 in
      for c = 0 to cols - 1 do
        acc := !acc +. src.(base + c)
      done;
      dst.(r) <- !acc
    done
  else
    for r = 0 to rows - 1 do
      let base = r * cols in
      let acc = ref 0.0 in
      (* SAFETY: base + c < rows * cols = length src *)
      for c = 0 to cols - 1 do
        acc := !acc +. Array.unsafe_get src (base + c)
      done;
      (* SAFETY: r < rows = length dst *)
      Array.unsafe_set dst r !acc
    done

(* {1 Allocating kernels} *)

let add a b =
  binop_check "add" a b;
  let n = Array.length a.data in
  let data = Array.make n 0.0 in
  add_core a.data b.data data n;
  { a with data }

let sub a b =
  binop_check "sub" a b;
  let n = Array.length a.data in
  let data = Array.make n 0.0 in
  sub_core a.data b.data data n;
  { a with data }

let mul a b =
  binop_check "mul" a b;
  let n = Array.length a.data in
  let data = Array.make n 0.0 in
  mul_core a.data b.data data n;
  { a with data }

let div a b =
  binop_check "div" a b;
  let n = Array.length a.data in
  let data = Array.make n 0.0 in
  div_core a.data b.data data n;
  { a with data }

let neg t =
  let n = Array.length t.data in
  let data = Array.make n 0.0 in
  neg_core t.data data n;
  { t with data }

let scale k t =
  let n = Array.length t.data in
  let data = Array.make n 0.0 in
  scale_core k t.data data n;
  { t with data }

let add_scalar k t =
  let n = Array.length t.data in
  let data = Array.make n 0.0 in
  add_scalar_core k t.data data n;
  { t with data }

let clamp ~lo ~hi t =
  if hi < lo then invalid_arg "Tensor.clamp: hi < lo";
  let n = Array.length t.data in
  let data = Array.make n 0.0 in
  clamp_core ~lo ~hi t.data data n;
  { t with data }

let rowvec_check name m v =
  if v.rows <> 1 || v.cols <> m.cols then shape_fail name m v

let add_rowvec m v =
  rowvec_check "add_rowvec" m v;
  let data = Array.make (m.rows * m.cols) 0.0 in
  add_rowvec_core m.data v.data data m.rows m.cols;
  { m with data }

let mul_rowvec m v =
  rowvec_check "mul_rowvec" m v;
  let data = Array.make (m.rows * m.cols) 0.0 in
  mul_rowvec_core m.data v.data data m.rows m.cols;
  { m with data }

let colvec_check name m v =
  if v.cols <> 1 || v.rows <> m.rows then shape_fail name m v

let add_colvec m v =
  colvec_check "add_colvec" m v;
  let data = Array.make (m.rows * m.cols) 0.0 in
  for r = 0 to m.rows - 1 do
    let base = r * m.cols in
    let x = v.data.(r) in
    for c = 0 to m.cols - 1 do
      data.(base + c) <- m.data.(base + c) +. x
    done
  done;
  { m with data }

let mul_colvec m v =
  colvec_check "mul_colvec" m v;
  let data = Array.make (m.rows * m.cols) 0.0 in
  for r = 0 to m.rows - 1 do
    let base = r * m.cols in
    let x = v.data.(r) in
    for c = 0 to m.cols - 1 do
      data.(base + c) <- m.data.(base + c) *. x
    done
  done;
  { m with data }

let div_colvec m v =
  colvec_check "div_colvec" m v;
  let data = Array.make (m.rows * m.cols) 0.0 in
  for r = 0 to m.rows - 1 do
    let base = r * m.cols in
    let x = v.data.(r) in
    for c = 0 to m.cols - 1 do
      data.(base + c) <- m.data.(base + c) /. x
    done
  done;
  { m with data }

let matmul a b =
  if a.cols <> b.rows then shape_fail "matmul" a b;
  let m = a.rows and k = a.cols and n = b.cols in
  let data = Array.make (m * n) 0.0 in
  matmul_core a.data b.data data m k n;
  { rows = m; cols = n; data }

let transpose t =
  let rows = t.rows and cols = t.cols in
  let data = Array.make (rows * cols) 0.0 in
  transpose_core t.data data rows cols;
  { rows = cols; cols = rows; data }

let matmul_nt a b =
  if a.cols <> b.cols then shape_fail "matmul_nt" a b;
  let m = a.rows and k = a.cols and n = b.rows in
  let data = Array.make (m * n) 0.0 in
  matmul_nt_core a.data b.data data m k n;
  { rows = m; cols = n; data }

let dot a b =
  if a.rows <> b.rows || a.cols <> b.cols then shape_fail "dot" a b;
  let n = Array.length a.data in
  let acc = ref 0.0 in
  if !checked_mode then
    for i = 0 to n - 1 do
      acc := !acc +. (a.data.(i) *. b.data.(i))
    done
  else
    (* SAFETY: i < n = length of both (shapes checked above) *)
    for i = 0 to n - 1 do
      acc := !acc +. (Array.unsafe_get a.data i *. Array.unsafe_get b.data i)
    done;
  !acc

let sum t =
  (* left-to-right accumulation, same order as [Array.fold_left ( +. ) 0.0] *)
  let n = Array.length t.data in
  let acc = ref 0.0 in
  if !checked_mode then
    for i = 0 to n - 1 do
      acc := !acc +. t.data.(i)
    done
  else
    (* SAFETY: i < n = length t.data *)
    for i = 0 to n - 1 do
      acc := !acc +. Array.unsafe_get t.data i
    done;
  !acc

let mean t =
  if numel t = 0 then invalid_arg "Tensor.mean: empty tensor";
  sum t /. float_of_int (numel t)

let min_value t =
  if numel t = 0 then invalid_arg "Tensor.min_value: empty tensor";
  Array.fold_left Stdlib.min t.data.(0) t.data

let max_value t =
  if numel t = 0 then invalid_arg "Tensor.max_value: empty tensor";
  Array.fold_left Stdlib.max t.data.(0) t.data

let sum_rows t =
  let data = Array.make t.cols 0.0 in
  sum_rows_core t.data data t.rows t.cols;
  create 1 t.cols data

let sum_cols t =
  let data = Array.make t.rows 0.0 in
  sum_cols_core t.data data t.rows t.cols;
  create t.rows 1 data

let argmax_rows t =
  if t.cols = 0 then invalid_arg "Tensor.argmax_rows: zero columns";
  Array.init t.rows (fun r ->
      let base = r * t.cols in
      let best = ref 0 in
      for c = 1 to t.cols - 1 do
        if t.data.(base + c) > t.data.(base + !best) then best := c
      done;
      !best)

let concat_cols a b =
  if a.rows <> b.rows then shape_fail "concat_cols" a b;
  init a.rows (a.cols + b.cols) (fun r c ->
      if c < a.cols then a.data.((r * a.cols) + c)
      else b.data.((r * b.cols) + c - a.cols))

let concat_rows a b =
  if a.cols <> b.cols then shape_fail "concat_rows" a b;
  create (a.rows + b.rows) a.cols (Array.append a.data b.data)

let slice_rows t start len =
  if start < 0 || len < 0 || start + len > t.rows then
    invalid_arg
      (Printf.sprintf "Tensor.slice_rows: [%d,%d) out of %d rows" start
         (start + len) t.rows);
  create len t.cols (Array.sub t.data (start * t.cols) (len * t.cols))

let slice_cols t start len =
  if start < 0 || len < 0 || start + len > t.cols then
    invalid_arg
      (Printf.sprintf "Tensor.slice_cols: [%d,%d) out of %d cols" start
         (start + len) t.cols);
  init t.rows len (fun r c -> t.data.((r * t.cols) + start + c))

let take_rows t idx =
  init (Array.length idx) t.cols (fun r c ->
      let src = idx.(r) in
      if src < 0 || src >= t.rows then
        invalid_arg "Tensor.take_rows: index out of range";
      t.data.((src * t.cols) + c))

(* {1 In-place (destination-passing) kernels}

   Every [*_into] kernel runs the same core as its allocating counterpart,
   so results are bit-identical — the training hot path relies on this to
   stay deterministic while reusing buffers.  Elementwise kernels read and
   write index [i] only, so [dst] may alias an input; kernels with
   non-trivial access patterns (matmul, transpose, slices, reductions,
   broadcasts) require [dst] to be distinct from every input (not
   enforced). *)

let shape_check_dst name dst rows cols =
  if dst.rows <> rows || dst.cols <> cols then
    invalid_arg
      (Printf.sprintf "Tensor.%s: dst shape %s, expected %s" name
         (shape_string dst.rows dst.cols)
         (shape_string rows cols))

let fill t v = Array.fill t.data 0 (Array.length t.data) v

let blit ~src ~dst =
  if src.rows <> dst.rows || src.cols <> dst.cols then shape_fail "blit" src dst;
  Array.blit src.data 0 dst.data 0 (Array.length src.data)

let map_into f a ~dst =
  shape_check_dst "map_into" dst a.rows a.cols;
  map_core f a.data dst.data (Array.length a.data)

let map2_into f a b ~dst =
  if a.rows <> b.rows || a.cols <> b.cols then shape_fail "map2_into" a b;
  shape_check_dst "map2_into" dst a.rows a.cols;
  map2_core f a.data b.data dst.data (Array.length a.data)

let add_into a b ~dst =
  binop_check "add_into" a b;
  shape_check_dst "add_into" dst a.rows a.cols;
  add_core a.data b.data dst.data (Array.length a.data)

let sub_into a b ~dst =
  binop_check "sub_into" a b;
  shape_check_dst "sub_into" dst a.rows a.cols;
  sub_core a.data b.data dst.data (Array.length a.data)

let mul_into a b ~dst =
  binop_check "mul_into" a b;
  shape_check_dst "mul_into" dst a.rows a.cols;
  mul_core a.data b.data dst.data (Array.length a.data)

let div_into a b ~dst =
  binop_check "div_into" a b;
  shape_check_dst "div_into" dst a.rows a.cols;
  div_core a.data b.data dst.data (Array.length a.data)

let neg_into a ~dst =
  shape_check_dst "neg_into" dst a.rows a.cols;
  neg_core a.data dst.data (Array.length a.data)

let scale_into k a ~dst =
  shape_check_dst "scale_into" dst a.rows a.cols;
  scale_core k a.data dst.data (Array.length a.data)

let add_scalar_into k a ~dst =
  shape_check_dst "add_scalar_into" dst a.rows a.cols;
  add_scalar_core k a.data dst.data (Array.length a.data)

let add_rowvec_into m v ~dst =
  rowvec_check "add_rowvec_into" m v;
  shape_check_dst "add_rowvec_into" dst m.rows m.cols;
  add_rowvec_core m.data v.data dst.data m.rows m.cols

let mul_rowvec_into m v ~dst =
  rowvec_check "mul_rowvec_into" m v;
  shape_check_dst "mul_rowvec_into" dst m.rows m.cols;
  mul_rowvec_core m.data v.data dst.data m.rows m.cols

let broadcast_rowvec_into v ~dst =
  (* each dst row := v; bit-identical to [mul_rowvec (ones …) v]
     (1.0 *. x = x for every float, including signed zeros) *)
  if v.rows <> 1 || v.cols <> dst.cols then shape_fail "broadcast_rowvec_into" dst v;
  for r = 0 to dst.rows - 1 do
    Array.blit v.data 0 dst.data (r * dst.cols) dst.cols
  done

let matmul_into a b ~dst =
  if a.cols <> b.rows then shape_fail "matmul_into" a b;
  let m = a.rows and k = a.cols and n = b.cols in
  shape_check_dst "matmul_into" dst m n;
  Array.fill dst.data 0 (m * n) 0.0;
  matmul_core a.data b.data dst.data m k n

let matmul_nt_into a b ~dst =
  if a.cols <> b.cols then shape_fail "matmul_nt_into" a b;
  let m = a.rows and k = a.cols and n = b.rows in
  shape_check_dst "matmul_nt_into" dst m n;
  matmul_nt_core a.data b.data dst.data m k n

let transpose_into t ~dst =
  shape_check_dst "transpose_into" dst t.cols t.rows;
  transpose_core t.data dst.data t.rows t.cols

let sum_rows_into t ~dst =
  shape_check_dst "sum_rows_into" dst 1 t.cols;
  Array.fill dst.data 0 t.cols 0.0;
  sum_rows_core t.data dst.data t.rows t.cols

let sum_cols_into t ~dst =
  shape_check_dst "sum_cols_into" dst t.rows 1;
  sum_cols_core t.data dst.data t.rows t.cols

let slice_cols_into t start len ~dst =
  if start < 0 || len < 0 || start + len > t.cols then
    invalid_arg
      (Printf.sprintf "Tensor.slice_cols_into: [%d,%d) out of %d cols" start
         (start + len) t.cols);
  shape_check_dst "slice_cols_into" dst t.rows len;
  for r = 0 to t.rows - 1 do
    Array.blit t.data ((r * t.cols) + start) dst.data (r * len) len
  done

let slice_rows_into t start len ~dst =
  if start < 0 || len < 0 || start + len > t.rows then
    invalid_arg
      (Printf.sprintf "Tensor.slice_rows_into: [%d,%d) out of %d rows" start
         (start + len) t.rows);
  shape_check_dst "slice_rows_into" dst len t.cols;
  Array.blit t.data (start * t.cols) dst.data 0 (len * t.cols)

let embed_cols_into src start ~dst =
  (* dst := 0 everywhere except columns [start, start + cols src), which
     receive src — the scatter used by the slice_cols gradient. *)
  if src.rows <> dst.rows || start < 0 || start + src.cols > dst.cols then
    shape_fail "embed_cols_into" src dst;
  fill dst 0.0;
  for r = 0 to src.rows - 1 do
    Array.blit src.data (r * src.cols) dst.data ((r * dst.cols) + start) src.cols
  done

let embed_rows_into src start ~dst =
  if src.cols <> dst.cols || start < 0 || start + src.rows > dst.rows then
    shape_fail "embed_rows_into" src dst;
  fill dst 0.0;
  Array.blit src.data 0 dst.data (start * dst.cols) (src.rows * dst.cols)

let concat_cols_into a b ~dst =
  if a.rows <> b.rows then shape_fail "concat_cols_into" a b;
  shape_check_dst "concat_cols_into" dst a.rows (a.cols + b.cols);
  for r = 0 to a.rows - 1 do
    Array.blit a.data (r * a.cols) dst.data (r * dst.cols) a.cols;
    Array.blit b.data (r * b.cols) dst.data ((r * dst.cols) + a.cols) b.cols
  done

let concat_rows_into a b ~dst =
  if a.cols <> b.cols then shape_fail "concat_rows_into" a b;
  shape_check_dst "concat_rows_into" dst (a.rows + b.rows) a.cols;
  Array.blit a.data 0 dst.data 0 (Array.length a.data);
  Array.blit b.data 0 dst.data (Array.length a.data) (Array.length b.data)

let equal ?(eps = 0.0) a b =
  a.rows = b.rows && a.cols = b.cols
  && begin
       (* [not (|x - y| <= eps)] instead of [|x - y| > eps]: a NaN difference
          fails both comparisons, so any NaN entry makes the tensors unequal
          (IEEE semantics) instead of silently comparing as equal. *)
       let ok = ref true in
       Array.iteri
         (fun i x -> if not (Float.abs (x -. b.data.(i)) <= eps) then ok := false)
         a.data;
       !ok
     end

let pp fmt t =
  Format.fprintf fmt "@[<v>tensor %dx%d" t.rows t.cols;
  for r = 0 to Stdlib.min (t.rows - 1) 7 do
    Format.fprintf fmt "@,[";
    for c = 0 to Stdlib.min (t.cols - 1) 9 do
      Format.fprintf fmt "%s%.5g" (if c > 0 then "; " else "") (get t r c)
    done;
    if t.cols > 10 then Format.fprintf fmt "; ...";
    Format.fprintf fmt "]"
  done;
  if t.rows > 8 then Format.fprintf fmt "@,...";
  Format.fprintf fmt "@]"

let to_string t = Format.asprintf "%a" pp t
