type t = { rows : int; cols : int; data : float array }
(* A note on representation: row-major, index (r, c) at [r * cols + c]. *)


let shape_string rows cols = Printf.sprintf "%dx%d" rows cols

let shape_fail name a b =
  invalid_arg
    (Printf.sprintf "Tensor.%s: shape mismatch %s vs %s" name
       (shape_string a.rows a.cols)
       (shape_string b.rows b.cols))

let create rows cols data =
  if rows < 0 || cols < 0 then invalid_arg "Tensor.create: negative dimension";
  if Array.length data <> rows * cols then
    invalid_arg
      (Printf.sprintf "Tensor.create: data length %d <> %d*%d"
         (Array.length data) rows cols);
  { rows; cols; data }

let zeros rows cols = create rows cols (Array.make (rows * cols) 0.0)
let ones rows cols = create rows cols (Array.make (rows * cols) 1.0)
let full rows cols v = create rows cols (Array.make (rows * cols) v)

let init rows cols f =
  let data = Array.make (rows * cols) 0.0 in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      data.((r * cols) + c) <- f r c
    done
  done;
  create rows cols data

let scalar v = create 1 1 [| v |]
let of_array a = create 1 (Array.length a) (Array.copy a)

let of_arrays rows_arr =
  let rows = Array.length rows_arr in
  if rows = 0 then create 0 0 [||]
  else begin
    let cols = Array.length rows_arr.(0) in
    Array.iteri
      (fun i row ->
        if Array.length row <> cols then
          invalid_arg
            (Printf.sprintf "Tensor.of_arrays: row %d has length %d, expected %d"
               i (Array.length row) cols))
      rows_arr;
    init rows cols (fun r c -> rows_arr.(r).(c))
  end

let row_of_list l = of_array (Array.of_list l)
let copy t = { t with data = Array.copy t.data }

let uniform rng rows cols ~lo ~hi =
  init rows cols (fun _ _ -> Rng.uniform rng ~lo ~hi)

let gaussian rng rows cols ~mu ~sigma =
  init rows cols (fun _ _ -> Rng.gaussian rng ~mu ~sigma)

let rows t = t.rows
let cols t = t.cols
let numel t = t.rows * t.cols
let shape t = (t.rows, t.cols)

let get t r c =
  if r < 0 || r >= t.rows || c < 0 || c >= t.cols then
    invalid_arg
      (Printf.sprintf "Tensor.get: (%d,%d) out of %s" r c
         (shape_string t.rows t.cols));
  t.data.((r * t.cols) + c)

let set t r c v =
  if r < 0 || r >= t.rows || c < 0 || c >= t.cols then
    invalid_arg
      (Printf.sprintf "Tensor.set: (%d,%d) out of %s" r c
         (shape_string t.rows t.cols));
  t.data.((r * t.cols) + c) <- v

let row t r =
  if r < 0 || r >= t.rows then invalid_arg "Tensor.row: index out of range";
  create 1 t.cols (Array.sub t.data (r * t.cols) t.cols)

let to_array t = Array.copy t.data
let to_arrays t = Array.init t.rows (fun r -> Array.sub t.data (r * t.cols) t.cols)

let map f t = { t with data = Array.map f t.data }

let map2 f a b =
  if a.rows <> b.rows || a.cols <> b.cols then shape_fail "map2" a b;
  { a with data = Array.map2 f a.data b.data }

let binop name f a b =
  if a.rows <> b.rows || a.cols <> b.cols then shape_fail name a b;
  let n = Array.length a.data in
  let data = Array.make n 0.0 in
  for i = 0 to n - 1 do
    Array.unsafe_set data i (f (Array.unsafe_get a.data i) (Array.unsafe_get b.data i))
  done;
  { a with data }

let add a b = binop "add" ( +. ) a b
let sub a b = binop "sub" ( -. ) a b
let mul a b = binop "mul" ( *. ) a b
let div a b = binop "div" ( /. ) a b
let neg t = map (fun x -> -.x) t
let scale k t = map (fun x -> k *. x) t
let add_scalar k t = map (fun x -> k +. x) t

let clamp ~lo ~hi t =
  if hi < lo then invalid_arg "Tensor.clamp: hi < lo";
  map (fun x -> if x < lo then lo else if x > hi then hi else x) t

let rowvec_op name f m v =
  if v.rows <> 1 || v.cols <> m.cols then shape_fail name m v;
  let data = Array.make (m.rows * m.cols) 0.0 in
  for r = 0 to m.rows - 1 do
    let base = r * m.cols in
    for c = 0 to m.cols - 1 do
      data.(base + c) <- f m.data.(base + c) v.data.(c)
    done
  done;
  { m with data }

let add_rowvec m v = rowvec_op "add_rowvec" ( +. ) m v
let mul_rowvec m v = rowvec_op "mul_rowvec" ( *. ) m v

let colvec_op name f m v =
  if v.cols <> 1 || v.rows <> m.rows then shape_fail name m v;
  let data = Array.make (m.rows * m.cols) 0.0 in
  for r = 0 to m.rows - 1 do
    let base = r * m.cols in
    let x = v.data.(r) in
    for c = 0 to m.cols - 1 do
      data.(base + c) <- f m.data.(base + c) x
    done
  done;
  { m with data }

let add_colvec m v = colvec_op "add_colvec" ( +. ) m v
let mul_colvec m v = colvec_op "mul_colvec" ( *. ) m v
let div_colvec m v = colvec_op "div_colvec" ( /. ) m v

let matmul a b =
  if a.cols <> b.rows then shape_fail "matmul" a b;
  let m = a.rows and k = a.cols and n = b.cols in
  let data = Array.make (m * n) 0.0 in
  (* ikj loop order: streams through b rows, cache friendly for row-major.
     unsafe accesses are fine: every index is bounded by the loop limits. *)
  for i = 0 to m - 1 do
    let a_base = i * k and c_base = i * n in
    for p = 0 to k - 1 do
      let aip = Array.unsafe_get a.data (a_base + p) in
      if aip <> 0.0 then begin
        let b_base = p * n in
        for j = 0 to n - 1 do
          Array.unsafe_set data (c_base + j)
            (Array.unsafe_get data (c_base + j)
            +. (aip *. Array.unsafe_get b.data (b_base + j)))
        done
      end
    done
  done;
  { rows = m; cols = n; data }

let transpose t =
  (* Blocked copy instead of a closure-per-element [init]: both the read and
     the write stay within a 32x32 tile, so one of the two strided streams is
     always cache-resident. *)
  let rows = t.rows and cols = t.cols in
  let src = t.data in
  let data = Array.make (rows * cols) 0.0 in
  let bs = 32 in
  let r0 = ref 0 in
  while !r0 < rows do
    let rmax = Stdlib.min rows (!r0 + bs) in
    let c0 = ref 0 in
    while !c0 < cols do
      let cmax = Stdlib.min cols (!c0 + bs) in
      for r = !r0 to rmax - 1 do
        let base = r * cols in
        for c = !c0 to cmax - 1 do
          Array.unsafe_set data ((c * rows) + r) (Array.unsafe_get src (base + c))
        done
      done;
      c0 := !c0 + bs
    done;
    r0 := !r0 + bs
  done;
  { rows = cols; cols = rows; data }

let matmul_nt a b =
  (* A · Bᵀ without materializing the transpose: rows of both operands are
     contiguous, so the k-loop streams both.  The accumulation order (and the
     skip of exact-zero A entries) mirrors [matmul a (transpose b)], keeping
     results bit-identical to that formulation. *)
  if a.cols <> b.cols then shape_fail "matmul_nt" a b;
  let m = a.rows and k = a.cols and n = b.rows in
  let data = Array.make (m * n) 0.0 in
  for i = 0 to m - 1 do
    let a_base = i * k and c_base = i * n in
    for j = 0 to n - 1 do
      let b_base = j * k in
      let acc = ref 0.0 in
      for p = 0 to k - 1 do
        let aip = Array.unsafe_get a.data (a_base + p) in
        if aip <> 0.0 then
          acc := !acc +. (aip *. Array.unsafe_get b.data (b_base + p))
      done;
      Array.unsafe_set data (c_base + j) !acc
    done
  done;
  { rows = m; cols = n; data }

let dot a b =
  if a.rows <> b.rows || a.cols <> b.cols then shape_fail "dot" a b;
  let acc = ref 0.0 in
  for i = 0 to Array.length a.data - 1 do
    acc := !acc +. (a.data.(i) *. b.data.(i))
  done;
  !acc

let sum t = Array.fold_left ( +. ) 0.0 t.data

let mean t =
  if numel t = 0 then invalid_arg "Tensor.mean: empty tensor";
  sum t /. float_of_int (numel t)

let min_value t =
  if numel t = 0 then invalid_arg "Tensor.min_value: empty tensor";
  Array.fold_left Stdlib.min t.data.(0) t.data

let max_value t =
  if numel t = 0 then invalid_arg "Tensor.max_value: empty tensor";
  Array.fold_left Stdlib.max t.data.(0) t.data

let sum_rows t =
  let data = Array.make t.cols 0.0 in
  for r = 0 to t.rows - 1 do
    let base = r * t.cols in
    for c = 0 to t.cols - 1 do
      data.(c) <- data.(c) +. t.data.(base + c)
    done
  done;
  create 1 t.cols data

let sum_cols t =
  let data = Array.make t.rows 0.0 in
  for r = 0 to t.rows - 1 do
    let base = r * t.cols in
    let acc = ref 0.0 in
    for c = 0 to t.cols - 1 do
      acc := !acc +. t.data.(base + c)
    done;
    data.(r) <- !acc
  done;
  create t.rows 1 data

let argmax_rows t =
  if t.cols = 0 then invalid_arg "Tensor.argmax_rows: zero columns";
  Array.init t.rows (fun r ->
      let base = r * t.cols in
      let best = ref 0 in
      for c = 1 to t.cols - 1 do
        if t.data.(base + c) > t.data.(base + !best) then best := c
      done;
      !best)

let concat_cols a b =
  if a.rows <> b.rows then shape_fail "concat_cols" a b;
  init a.rows (a.cols + b.cols) (fun r c ->
      if c < a.cols then a.data.((r * a.cols) + c)
      else b.data.((r * b.cols) + c - a.cols))

let concat_rows a b =
  if a.cols <> b.cols then shape_fail "concat_rows" a b;
  create (a.rows + b.rows) a.cols (Array.append a.data b.data)

let slice_rows t start len =
  if start < 0 || len < 0 || start + len > t.rows then
    invalid_arg
      (Printf.sprintf "Tensor.slice_rows: [%d,%d) out of %d rows" start
         (start + len) t.rows);
  create len t.cols (Array.sub t.data (start * t.cols) (len * t.cols))

let slice_cols t start len =
  if start < 0 || len < 0 || start + len > t.cols then
    invalid_arg
      (Printf.sprintf "Tensor.slice_cols: [%d,%d) out of %d cols" start
         (start + len) t.cols);
  init t.rows len (fun r c -> t.data.((r * t.cols) + start + c))

let take_rows t idx =
  init (Array.length idx) t.cols (fun r c ->
      let src = idx.(r) in
      if src < 0 || src >= t.rows then
        invalid_arg "Tensor.take_rows: index out of range";
      t.data.((src * t.cols) + c))

let equal ?(eps = 0.0) a b =
  a.rows = b.rows && a.cols = b.cols
  && begin
       let ok = ref true in
       Array.iteri
         (fun i x -> if Float.abs (x -. b.data.(i)) > eps then ok := false)
         a.data;
       !ok
     end

let pp fmt t =
  Format.fprintf fmt "@[<v>tensor %dx%d" t.rows t.cols;
  for r = 0 to Stdlib.min (t.rows - 1) 7 do
    Format.fprintf fmt "@,[";
    for c = 0 to Stdlib.min (t.cols - 1) 9 do
      Format.fprintf fmt "%s%.5g" (if c > 0 then "; " else "") (get t r c)
    done;
    if t.cols > 10 then Format.fprintf fmt "; ...";
    Format.fprintf fmt "]"
  done;
  if t.rows > 8 then Format.fprintf fmt "@,...";
  Format.fprintf fmt "@]"

let to_string t = Format.asprintf "%a" pp t
