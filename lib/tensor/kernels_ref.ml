(* Reference backend: the bit-identity oracle.

   Every core here is the original [float array] kernel, moved verbatim from
   the pre-backend tensor/autodiff/optimizer modules — same floating-point
   operations in the same order, so every golden trajectory, checkpoint and
   determinism test pinned against the old code stays bit-identical.  Do not
   "optimize" these loops: the Bigarray64 backend is the fast path; this one
   is the semantics.

   Checked (sanitizer) mode: each hot kernel carries two loop bodies
   performing identical floating-point operations in identical order; the
   checked body uses bounds-checked indexing.  The flag is tested once per
   kernel call, not per element (a per-element dereference measured ~2.3x
   slower on the elementwise hot path). *)

module TB = Tensor_backend

type buf = float array

let impl = TB.Reference
let checked () = Atomic.get TB.checked
let create n = Array.make n 0.0
let length = Array.length
let get = Array.get
let set = Array.set
let fill b ~pos ~len v = Array.fill b pos len v
let blit src src_pos dst dst_pos len = Array.blit src src_pos dst dst_pos len
let of_float_array = Array.copy
let to_float_array = Array.copy
let load b a = Array.blit a 0 b 0 (Array.length a)

(* {1 Elementwise} *)

let add a b dst n =
  if checked () then
    for i = 0 to n - 1 do
      dst.(i) <- a.(i) +. b.(i)
    done
  else
    (* SAFETY: i < n and the dispatch layer checks shapes, so n <= each
       array length *)
    for i = 0 to n - 1 do
      Array.unsafe_set dst i (Array.unsafe_get a i +. Array.unsafe_get b i)
    done

let sub a b dst n =
  if checked () then
    for i = 0 to n - 1 do
      dst.(i) <- a.(i) -. b.(i)
    done
  else
    (* SAFETY: i < n and the dispatch layer checks shapes, so n <= each
       array length *)
    for i = 0 to n - 1 do
      Array.unsafe_set dst i (Array.unsafe_get a i -. Array.unsafe_get b i)
    done

let mul a b dst n =
  if checked () then
    for i = 0 to n - 1 do
      dst.(i) <- a.(i) *. b.(i)
    done
  else
    (* SAFETY: i < n and the dispatch layer checks shapes, so n <= each
       array length *)
    for i = 0 to n - 1 do
      Array.unsafe_set dst i (Array.unsafe_get a i *. Array.unsafe_get b i)
    done

let div a b dst n =
  if checked () then
    for i = 0 to n - 1 do
      dst.(i) <- a.(i) /. b.(i)
    done
  else
    (* SAFETY: i < n and the dispatch layer checks shapes, so n <= each
       array length *)
    for i = 0 to n - 1 do
      Array.unsafe_set dst i (Array.unsafe_get a i /. Array.unsafe_get b i)
    done

let neg a dst n =
  if checked () then
    for i = 0 to n - 1 do
      dst.(i) <- -.a.(i)
    done
  else
    (* SAFETY: i < n and the dispatch layer checks shapes, so n <= each
       array length *)
    for i = 0 to n - 1 do
      Array.unsafe_set dst i (-.Array.unsafe_get a i)
    done

let scale k a dst n =
  if checked () then
    for i = 0 to n - 1 do
      dst.(i) <- k *. a.(i)
    done
  else
    (* SAFETY: i < n and the dispatch layer checks shapes, so n <= each
       array length *)
    for i = 0 to n - 1 do
      Array.unsafe_set dst i (k *. Array.unsafe_get a i)
    done

let add_scalar k a dst n =
  if checked () then
    for i = 0 to n - 1 do
      dst.(i) <- k +. a.(i)
    done
  else
    (* SAFETY: i < n and the dispatch layer checks shapes, so n <= each
       array length *)
    for i = 0 to n - 1 do
      Array.unsafe_set dst i (k +. Array.unsafe_get a i)
    done

(* NaN passes through: both [x < lo] and [x > hi] are false for an unordered
   compare, so the final [else x] branch returns NaN unchanged.  This is the
   documented contract (Tensor.clamp) and both backends implement it. *)
let clamp ~lo ~hi a dst n =
  if checked () then
    for i = 0 to n - 1 do
      let x = a.(i) in
      dst.(i) <- (if x < lo then lo else if x > hi then hi else x)
    done
  else
    (* SAFETY: i < n and the dispatch layer checks shapes, so n <= each
       array length *)
    for i = 0 to n - 1 do
      let x = Array.unsafe_get a i in
      Array.unsafe_set dst i (if x < lo then lo else if x > hi then hi else x)
    done

let map f a dst n =
  if checked () then
    for i = 0 to n - 1 do
      dst.(i) <- f a.(i)
    done
  else
    (* SAFETY: i < n and the dispatch layer checks shapes, so n <= each
       array length *)
    for i = 0 to n - 1 do
      Array.unsafe_set dst i (f (Array.unsafe_get a i))
    done

let map2 f a b dst n =
  if checked () then
    for i = 0 to n - 1 do
      dst.(i) <- f a.(i) b.(i)
    done
  else
    (* SAFETY: i < n and the dispatch layer checks shapes, so n <= each
       array length *)
    for i = 0 to n - 1 do
      Array.unsafe_set dst i (f (Array.unsafe_get a i) (Array.unsafe_get b i))
    done

(* {1 Broadcasts} *)

let add_rowvec md vd dst rows cols =
  if checked () then
    for r = 0 to rows - 1 do
      let base = r * cols in
      for c = 0 to cols - 1 do
        dst.(base + c) <- md.(base + c) +. vd.(c)
      done
    done
  else
    for r = 0 to rows - 1 do
      let base = r * cols in
      (* SAFETY: base + c < rows * cols = length of md and dst;
         c < cols = length vd — the dispatch layer checks all three shapes *)
      for c = 0 to cols - 1 do
        Array.unsafe_set dst (base + c)
          (Array.unsafe_get md (base + c) +. Array.unsafe_get vd c)
      done
    done

let mul_rowvec md vd dst rows cols =
  if checked () then
    for r = 0 to rows - 1 do
      let base = r * cols in
      for c = 0 to cols - 1 do
        dst.(base + c) <- md.(base + c) *. vd.(c)
      done
    done
  else
    for r = 0 to rows - 1 do
      let base = r * cols in
      (* SAFETY: base + c < rows * cols = length of md and dst;
         c < cols = length vd — the dispatch layer checks all three shapes *)
      for c = 0 to cols - 1 do
        Array.unsafe_set dst (base + c)
          (Array.unsafe_get md (base + c) *. Array.unsafe_get vd c)
      done
    done

let add_colvec md vd dst rows cols =
  for r = 0 to rows - 1 do
    let base = r * cols in
    let x = vd.(r) in
    for c = 0 to cols - 1 do
      dst.(base + c) <- md.(base + c) +. x
    done
  done

let mul_colvec md vd dst rows cols =
  for r = 0 to rows - 1 do
    let base = r * cols in
    let x = vd.(r) in
    for c = 0 to cols - 1 do
      dst.(base + c) <- md.(base + c) *. x
    done
  done

let div_colvec md vd dst rows cols =
  for r = 0 to rows - 1 do
    let base = r * cols in
    let x = vd.(r) in
    for c = 0 to cols - 1 do
      dst.(base + c) <- md.(base + c) /. x
    done
  done

(* {1 Linear algebra} *)

(* ikj loop order: streams through b rows, cache friendly for row-major.
   [cd] must be pre-zeroed by the caller. *)
let matmul ad bd cd m k n =
  if checked () then
    for i = 0 to m - 1 do
      let a_base = i * k and c_base = i * n in
      for p = 0 to k - 1 do
        let aip = ad.(a_base + p) in
        (* pnnlint:allow R5 exact-zero skip is IEEE on purpose: -0.0 skips,
           NaN never skips; Float.equal would treat both differently *)
        if aip <> 0.0 then begin
          let b_base = p * n in
          for j = 0 to n - 1 do
            cd.(c_base + j) <- cd.(c_base + j) +. (aip *. bd.(b_base + j))
          done
        end
      done
    done
  else
    for i = 0 to m - 1 do
      let a_base = i * k and c_base = i * n in
      for p = 0 to k - 1 do
        (* SAFETY: a_base + p < m * k = length ad *)
        let aip = Array.unsafe_get ad (a_base + p) in
        (* pnnlint:allow R5 exact-zero skip is IEEE on purpose: -0.0 skips,
           NaN never skips; Float.equal would treat both differently *)
        if aip <> 0.0 then begin
          let b_base = p * n in
          (* SAFETY: c_base + j < m * n = length cd and
             b_base + j < k * n = length bd, by the loop bounds *)
          for j = 0 to n - 1 do
            Array.unsafe_set cd (c_base + j)
              (Array.unsafe_get cd (c_base + j) +. (aip *. Array.unsafe_get bd (b_base + j)))
          done
        end
      done
    done

(* A · Bᵀ without materializing the transpose: rows of both operands are
   contiguous, so the p-loop streams both.  The accumulation order (and the
   skip of exact-zero A entries) mirrors [matmul a (transpose b)], keeping
   results bit-identical to that formulation. *)
let matmul_nt ad bd cd m k n =
  if checked () then
    for i = 0 to m - 1 do
      let a_base = i * k and c_base = i * n in
      for j = 0 to n - 1 do
        let b_base = j * k in
        let acc = ref 0.0 in
        for p = 0 to k - 1 do
          let aip = ad.(a_base + p) in
          (* pnnlint:allow R5 exact-zero skip is IEEE on purpose: -0.0 skips,
             NaN never skips; Float.equal would treat both differently *)
          if aip <> 0.0 then acc := !acc +. (aip *. bd.(b_base + p))
        done;
        cd.(c_base + j) <- !acc
      done
    done
  else
    for i = 0 to m - 1 do
      let a_base = i * k and c_base = i * n in
      for j = 0 to n - 1 do
        let b_base = j * k in
        let acc = ref 0.0 in
        for p = 0 to k - 1 do
          (* SAFETY: a_base + p < m * k = length ad *)
          let aip = Array.unsafe_get ad (a_base + p) in
          (* pnnlint:allow R5 exact-zero skip is IEEE on purpose: -0.0 skips,
             NaN never skips; Float.equal would treat both differently *)
          if aip <> 0.0 then
            (* SAFETY: b_base + p < n * k = length bd *)
            acc := !acc +. (aip *. Array.unsafe_get bd (b_base + p))
        done;
        (* SAFETY: c_base + j < m * n = length cd *)
        Array.unsafe_set cd (c_base + j) !acc
      done
    done

(* Blocked copy instead of a closure-per-element [init]: both the read and
   the write stay within a 32x32 tile, so one of the two strided streams is
   always cache-resident. *)
let transpose src dst rows cols =
  let bs = 32 in
  if checked () then begin
    let r0 = ref 0 in
    while !r0 < rows do
      let rmax = Stdlib.min rows (!r0 + bs) in
      let c0 = ref 0 in
      while !c0 < cols do
        let cmax = Stdlib.min cols (!c0 + bs) in
        for r = !r0 to rmax - 1 do
          let base = r * cols in
          for c = !c0 to cmax - 1 do
            dst.((c * rows) + r) <- src.(base + c)
          done
        done;
        c0 := !c0 + bs
      done;
      r0 := !r0 + bs
    done
  end
  else begin
    let r0 = ref 0 in
    while !r0 < rows do
      let rmax = Stdlib.min rows (!r0 + bs) in
      let c0 = ref 0 in
      while !c0 < cols do
        let cmax = Stdlib.min cols (!c0 + bs) in
        for r = !r0 to rmax - 1 do
          let base = r * cols in
          (* SAFETY: r < rows and c < cols keep base + c < rows * cols =
             length src and c * rows + r < cols * rows = length dst *)
          for c = !c0 to cmax - 1 do
            Array.unsafe_set dst ((c * rows) + r) (Array.unsafe_get src (base + c))
          done
        done;
        c0 := !c0 + bs
      done;
      r0 := !r0 + bs
    done
  end

(* {1 Reductions} *)

let dot a b n =
  let acc = ref 0.0 in
  if checked () then
    for i = 0 to n - 1 do
      acc := !acc +. (a.(i) *. b.(i))
    done
  else
    (* SAFETY: i < n = length of both (shapes checked by the dispatch
       layer) *)
    for i = 0 to n - 1 do
      acc := !acc +. (Array.unsafe_get a i *. Array.unsafe_get b i)
    done;
  !acc

let sum a n =
  (* left-to-right accumulation, same order as [Array.fold_left ( +. ) 0.0] *)
  let acc = ref 0.0 in
  if checked () then
    for i = 0 to n - 1 do
      acc := !acc +. a.(i)
    done
  else
    (* SAFETY: i < n = length a *)
    for i = 0 to n - 1 do
      acc := !acc +. Array.unsafe_get a i
    done;
  !acc

(* Polymorphic [Stdlib.min]/[max] specialize to IEEE [<=]/[>=] selects on
   floats: an unordered (NaN) compare keeps the right operand, and -0.0/0.0
   compare equal so the left one wins.  The Bigarray64 twins spell out the
   same selects monomorphically — the fold here is the defining order. *)
let min_value a _n = Array.fold_left Stdlib.min a.(0) a
let max_value a _n = Array.fold_left Stdlib.max a.(0) a

(* [dst] must be pre-zeroed by the caller (column accumulators). *)
let sum_rows src dst rows cols =
  if checked () then
    for r = 0 to rows - 1 do
      let base = r * cols in
      for c = 0 to cols - 1 do
        dst.(c) <- dst.(c) +. src.(base + c)
      done
    done
  else
    for r = 0 to rows - 1 do
      let base = r * cols in
      (* SAFETY: base + c < rows * cols = length src and
         c < cols = length dst *)
      for c = 0 to cols - 1 do
        Array.unsafe_set dst c
          (Array.unsafe_get dst c +. Array.unsafe_get src (base + c))
      done
    done

let sum_cols src dst rows cols =
  if checked () then
    for r = 0 to rows - 1 do
      let base = r * cols in
      let acc = ref 0.0 in
      for c = 0 to cols - 1 do
        acc := !acc +. src.(base + c)
      done;
      dst.(r) <- !acc
    done
  else
    for r = 0 to rows - 1 do
      let base = r * cols in
      let acc = ref 0.0 in
      (* SAFETY: base + c < rows * cols = length src *)
      for c = 0 to cols - 1 do
        acc := !acc +. Array.unsafe_get src (base + c)
      done;
      (* SAFETY: r < rows = length dst *)
      Array.unsafe_set dst r !acc
    done

(* Strict [>]: the first maximum wins, and a NaN entry never displaces the
   incumbent (unordered compares are false); a NaN in column 0 is never
   displaced for the same reason. *)
let argmax_rows a rows cols =
  Array.init rows (fun r ->
      let base = r * cols in
      let best = ref 0 in
      for c = 1 to cols - 1 do
        if a.(base + c) > a.(base + !best) then best := c
      done;
      !best)

(* {1 Nonlinearities}

   Specialized direct loops rather than a generic [map f]: applying a
   [float -> float] closure per element boxes its argument and result on the
   minor heap, which dominated the training hot path's allocation profile.
   Backward fuses [g *. df x y] in one expression.  Moved verbatim from the
   autodiff layer; the dispatch layer guarantees all buffers share [n]. *)

let unary op src dst n =
  match (op : TB.unop) with
  | TB.Tanh ->
      if checked () then
        for i = 0 to n - 1 do
          dst.(i) <- Stdlib.tanh src.(i)
        done
      else
        (* SAFETY: i < n <= length of src and dst (dispatch layer) *)
        for i = 0 to n - 1 do
          Array.unsafe_set dst i (Stdlib.tanh (Array.unsafe_get src i))
        done
  | TB.Sigmoid ->
      if checked () then
        for i = 0 to n - 1 do
          dst.(i) <- 1.0 /. (1.0 +. Stdlib.exp (-.src.(i)))
        done
      else
        (* SAFETY: i < n <= length of src and dst (dispatch layer) *)
        for i = 0 to n - 1 do
          Array.unsafe_set dst i
            (1.0 /. (1.0 +. Stdlib.exp (-.Array.unsafe_get src i)))
        done
  | TB.Exp ->
      if checked () then
        for i = 0 to n - 1 do
          dst.(i) <- Stdlib.exp src.(i)
        done
      else
        (* SAFETY: i < n <= length of src and dst (dispatch layer) *)
        for i = 0 to n - 1 do
          Array.unsafe_set dst i (Stdlib.exp (Array.unsafe_get src i))
        done
  | TB.Log ->
      if checked () then
        for i = 0 to n - 1 do
          dst.(i) <- Stdlib.log src.(i)
        done
      else
        (* SAFETY: i < n <= length of src and dst (dispatch layer) *)
        for i = 0 to n - 1 do
          Array.unsafe_set dst i (Stdlib.log (Array.unsafe_get src i))
        done
  | TB.Sqrt ->
      if checked () then
        for i = 0 to n - 1 do
          dst.(i) <- Stdlib.sqrt src.(i)
        done
      else
        (* SAFETY: i < n <= length of src and dst (dispatch layer) *)
        for i = 0 to n - 1 do
          Array.unsafe_set dst i (Stdlib.sqrt (Array.unsafe_get src i))
        done
  | TB.Relu ->
      if checked () then
        for i = 0 to n - 1 do
          let x = src.(i) in
          dst.(i) <- (if x > 0.0 then x else 0.0)
        done
      else
        (* SAFETY: i < n <= length of src and dst (dispatch layer) *)
        for i = 0 to n - 1 do
          let x = Array.unsafe_get src i in
          Array.unsafe_set dst i (if x > 0.0 then x else 0.0)
        done
  | TB.Abs ->
      if checked () then
        for i = 0 to n - 1 do
          dst.(i) <- Stdlib.abs_float src.(i)
        done
      else
        (* SAFETY: i < n <= length of src and dst (dispatch layer) *)
        for i = 0 to n - 1 do
          Array.unsafe_set dst i (Stdlib.abs_float (Array.unsafe_get src i))
        done

let unary_bwd op ~x ~y ~g ~s n =
  match (op : TB.unop) with
  | TB.Tanh ->
      if checked () then
        for i = 0 to n - 1 do
          let yi = y.(i) in
          s.(i) <- g.(i) *. (1.0 -. (yi *. yi))
        done
      else
        (* SAFETY: i < n <= length of y, g and s (dispatch layer) *)
        for i = 0 to n - 1 do
          let yi = Array.unsafe_get y i in
          Array.unsafe_set s i (Array.unsafe_get g i *. (1.0 -. (yi *. yi)))
        done
  | TB.Sigmoid ->
      if checked () then
        for i = 0 to n - 1 do
          let yi = y.(i) in
          s.(i) <- g.(i) *. (yi *. (1.0 -. yi))
        done
      else
        (* SAFETY: i < n <= length of y, g and s (dispatch layer) *)
        for i = 0 to n - 1 do
          let yi = Array.unsafe_get y i in
          Array.unsafe_set s i (Array.unsafe_get g i *. (yi *. (1.0 -. yi)))
        done
  | TB.Exp ->
      if checked () then
        for i = 0 to n - 1 do
          s.(i) <- g.(i) *. y.(i)
        done
      else
        (* SAFETY: i < n <= length of y, g and s (dispatch layer) *)
        for i = 0 to n - 1 do
          Array.unsafe_set s i (Array.unsafe_get g i *. Array.unsafe_get y i)
        done
  | TB.Log ->
      if checked () then
        for i = 0 to n - 1 do
          s.(i) <- g.(i) *. (1.0 /. x.(i))
        done
      else
        (* SAFETY: i < n <= length of x, g and s (dispatch layer) *)
        for i = 0 to n - 1 do
          Array.unsafe_set s i (Array.unsafe_get g i *. (1.0 /. Array.unsafe_get x i))
        done
  | TB.Sqrt ->
      if checked () then
        for i = 0 to n - 1 do
          s.(i) <- g.(i) *. (0.5 /. y.(i))
        done
      else
        (* SAFETY: i < n <= length of y, g and s (dispatch layer) *)
        for i = 0 to n - 1 do
          Array.unsafe_set s i (Array.unsafe_get g i *. (0.5 /. Array.unsafe_get y i))
        done
  | TB.Relu ->
      if checked () then
        for i = 0 to n - 1 do
          s.(i) <- g.(i) *. (if x.(i) > 0.0 then 1.0 else 0.0)
        done
      else
        for i = 0 to n - 1 do
          (* SAFETY: i < n <= length of x, g and s (dispatch layer) *)
          Array.unsafe_set s i
            (Array.unsafe_get g i
            *. (if Array.unsafe_get x i > 0.0 then 1.0 else 0.0))
        done
  | TB.Abs ->
      if checked () then
        for i = 0 to n - 1 do
          let xi = x.(i) in
          s.(i) <- g.(i) *. (if xi > 0.0 then 1.0 else if xi < 0.0 then -1.0 else 0.0)
        done
      else
        for i = 0 to n - 1 do
          (* SAFETY: i < n <= length of x, g and s (dispatch layer) *)
          let xi = Array.unsafe_get x i in
          Array.unsafe_set s i
            (Array.unsafe_get g i
            *. (if xi > 0.0 then 1.0 else if xi < 0.0 then -1.0 else 0.0))
        done

(* {1 Training-path fused kernels} *)

(* Stable row-wise softmax; raw loops for the same unboxed-float reason as
   the nonlinearities above. *)
let softmax_rows src out rows cols =
  if checked () then
    for r = 0 to rows - 1 do
      let base = r * cols in
      let mx = ref neg_infinity in
      for c = 0 to cols - 1 do
        let x = src.(base + c) in
        if x > !mx then mx := x
      done;
      let z = ref 0.0 in
      for c = 0 to cols - 1 do
        let e = Stdlib.exp (src.(base + c) -. !mx) in
        out.(base + c) <- e;
        z := !z +. e
      done;
      for c = 0 to cols - 1 do
        out.(base + c) <- out.(base + c) /. !z
      done
    done
  else
    for r = 0 to rows - 1 do
      let base = r * cols in
      let mx = ref neg_infinity in
      (* SAFETY: base + c < rows * cols, the length of src and of out (the
         dispatch layer checks both shapes) — holds for all three loops *)
      for c = 0 to cols - 1 do
        let x = Array.unsafe_get src (base + c) in
        if x > !mx then mx := x
      done;
      let z = ref 0.0 in
      (* SAFETY: base + c < rows * cols = length of src and out *)
      for c = 0 to cols - 1 do
        let e = Stdlib.exp (Array.unsafe_get src (base + c) -. !mx) in
        Array.unsafe_set out (base + c) e;
        z := !z +. e
      done;
      (* SAFETY: base + c < rows * cols = length of out *)
      for c = 0 to cols - 1 do
        Array.unsafe_set out (base + c) (Array.unsafe_get out (base + c) /. !z)
      done
    done

(* Summed (not averaged) cross-entropy: the caller divides by the batch so
   every backend shares one division point. *)
let ce_loss_sum p y n =
  let loss = ref 0.0 in
  if checked () then
    for i = 0 to n - 1 do
      let yi = y.(i) in
      if yi > 0.0 then
        loss := !loss -. (yi *. Stdlib.log (Stdlib.max p.(i) 1e-30))
    done
  else
    for i = 0 to n - 1 do
      (* SAFETY: the dispatch layer checks p and y share a shape, so i is
         below the length of both *)
      let yi = Array.unsafe_get y i in
      if yi > 0.0 then
        loss := !loss -. (yi *. Stdlib.log (Stdlib.max (Array.unsafe_get p i) 1e-30))
    done;
  !loss

(* Optimizer steps, moved verbatim from lib/nn/optimizer.ml (safe indexing,
   exactly as before the backend split). *)

let sgd_step ~lr ~grad ~value n =
  for i = 0 to n - 1 do
    value.(i) <- value.(i) -. (lr *. grad.(i))
  done

let adam_step ~lr ~beta1 ~beta2 ~eps ~bc1 ~bc2 ~m ~v ~grad ~value n =
  for i = 0 to n - 1 do
    let g = grad.(i) in
    m.(i) <- (beta1 *. m.(i)) +. ((1.0 -. beta1) *. g);
    v.(i) <- (beta2 *. v.(i)) +. ((1.0 -. beta2) *. g *. g);
    let mhat = m.(i) /. bc1 in
    let vhat = v.(i) /. bc2 in
    value.(i) <- value.(i) -. (lr *. mhat /. (Stdlib.sqrt vhat +. eps))
  done

(* The reference backend never fuses: the decomposed kernel sequence IS the
   bit-identity oracle the fused capabilities are specified against. *)
let matmul_bias_unop = None
let adam_step_many = None
