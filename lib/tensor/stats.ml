let check name a = if Array.length a = 0 then invalid_arg ("Stats." ^ name ^ ": empty")

let mean a =
  check "mean" a;
  Array.fold_left ( +. ) 0.0 a /. float_of_int (Array.length a)

let variance a =
  check "variance" a;
  let m = mean a in
  Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 a
  /. float_of_int (Array.length a)

let std a = sqrt (variance a)

let min a =
  check "min" a;
  Array.fold_left Stdlib.min a.(0) a

let max a =
  check "max" a;
  Array.fold_left Stdlib.max a.(0) a

let quantile a q =
  check "quantile" a;
  if q < 0.0 || q > 1.0 then invalid_arg "Stats.quantile: q outside [0,1]";
  if Array.exists Float.is_nan a then invalid_arg "Stats.quantile: nan input";
  let sorted = Array.copy a in
  Array.sort Float.compare sorted;
  let n = Array.length sorted in
  let pos = q *. float_of_int (n - 1) in
  let lo = Stdlib.min (Stdlib.max (int_of_float pos) 0) (n - 1) in
  let hi = Stdlib.min (lo + 1) (n - 1) in
  let frac = pos -. float_of_int lo in
  (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)

let median a = quantile a 0.5
let mean_std a = (mean a, std a)
