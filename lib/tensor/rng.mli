(** Deterministic pseudo-random number generation.

    The implementation is xoshiro256** seeded through splitmix64, giving
    reproducible streams independent of OCaml's global [Random] state.  All
    experiment code threads an explicit [t] so that every table and figure of
    the reproduction is replayable from a seed. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] builds a generator from any integer seed (splitmix64
    expansion, so nearby seeds give uncorrelated streams). *)

val split : t -> t
(** [split rng] derives a fresh, statistically independent generator and
    advances [rng].  Useful to hand sub-streams to parallel experiment arms. *)

val copy : t -> t
(** Duplicate the current state (the two generators then evolve separately). *)

val state : t -> int64 array
(** The full xoshiro256** state as 4 words — everything needed to resume the
    stream bit-exactly (checkpoint/resume).  The generator is not advanced. *)

val of_state : int64 array -> t
(** Rebuild a generator from {!state} output.  The restored stream produces
    exactly the draws the original would have from that point on.  Raises
    [Invalid_argument] unless given exactly 4 words. *)

val set_state : t -> int64 array -> unit
(** In-place {!of_state}: repositions an existing generator (and therefore
    every closure holding it) onto a saved stream position. *)

val uint64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float
(** Uniform draw in [\[0, 1)], 53-bit resolution. *)

val uniform : t -> lo:float -> hi:float -> float
(** Uniform draw in [\[lo, hi)]. Raises [Invalid_argument] if [hi < lo]. *)

val int : t -> int -> int
(** [int rng n] draws uniformly from [\[0, n)]. Raises [Invalid_argument] when
    [n <= 0]. *)

val normal : t -> float
(** Standard normal draw (Box–Muller, no caching). *)

val gaussian : t -> mu:float -> sigma:float -> float
(** Normal draw with the given mean and standard deviation. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val perm : t -> int -> int array
(** [perm rng n] is a uniformly random permutation of [0 .. n-1]. *)
