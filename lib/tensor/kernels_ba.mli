(** Bigarray.Float64 kernel backend — the fast path.

    Flat c_layout [Bigarray.Array1] storage with unrolled/blocked hot loops.
    Per-element kernels match the reference backend bit-for-bit; only
    [matmul]/[matmul_nt] re-associate accumulation and may differ in the
    last ulp (deterministically within this backend).  [buf] is concrete so
    {!Kernels_c} — which uses the same flat Float64 storage — can delegate
    to these loops as its bounds-checked twins under PNN_CHECKED=1; outside
    [lib/tensor] the boundary is enforced by pnnlint R6 (only the dispatch
    layer in {!Tensor} constructs or consumes backend storage). *)

include
  Tensor_backend.KERNELS
    with type buf =
      (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t
