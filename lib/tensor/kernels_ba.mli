(** Bigarray.Float64 kernel backend — the fast path.

    Flat c_layout [Bigarray.Array1] storage with unrolled/blocked hot loops.
    Per-element kernels match the reference backend bit-for-bit; only
    [matmul]/[matmul_nt] re-associate accumulation and may differ in the
    last ulp (deterministically within this backend).  [buf] is abstract:
    only the dispatch layer in {!Tensor} constructs or consumes backend
    storage (pnnlint R6 enforces the boundary outside [lib/tensor]). *)

include Tensor_backend.KERNELS
