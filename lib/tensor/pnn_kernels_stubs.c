/* C kernel cores for the Kernels_c backend.
 *
 * ABI (documented in docs/INTERNALS.md): every stub receives flat
 * Bigarray.Array1 Float64 buffers (data pointer via Caml_ba_data_val) plus
 * explicit dimensions; Adam moment buffers arrive as OCaml float arrays
 * (flat unboxed doubles, data pointer is the value itself).  No stub
 * allocates on the OCaml heap or calls back into OCaml, so every native
 * declaration is [@@noalloc]; scalars cross unboxed ([@unboxed] floats,
 * [@untagged] ints), which is why each stub has a _byte twin for the
 * bytecode calling convention.
 *
 * Float semantics contract (compiler flags set in lib/tensor/dune):
 * compiled with -O2 -fno-fast-math -ffp-contract=off so the compiler may
 * not re-associate, contract mul+add into FMA, or otherwise change IEEE
 * results.  Per-element kernels below perform the exact floating-point
 * operations, in the exact order, of the reference backend
 * (lib/tensor/kernels_ref.ml) and are bit-identical to it; libm calls
 * (tanh/exp/log) resolve to the same libm the OCaml runtime links.  Only
 * the matmul family re-associates — deterministically, replicating
 * Kernels_ba's register-blocked association exactly (pure-k-order 8-wide
 * output tiles for matmul, a 4-lane split combined as (s0+s1)+(s2+s3) for
 * matmul_nt), so C results match the bigarray backend bit-for-bit while
 * still carrying their own cache tag (+c64).
 *
 * Vectorization is portable: GCC/Clang generic vector extensions (lowered
 * to scalar code on targets without SIMD) behind __GNUC__, with a scalar
 * fallback of identical association for any other compiler.  No
 * ISA-specific intrinsics.
 */

#define CAML_NAME_SPACE
#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <caml/bigarray.h>
#include <math.h>

#define BA(v) ((double *) Caml_ba_data_val(v))
/* An OCaml float array is a flat block of doubles; the value points at the
 * first element (flat-float-array runtime, which this codebase assumes
 * everywhere moments are touched). */
#define FA(v) ((double *) (v))

#if defined(__GNUC__) || defined(__clang__)
/* 2-lane double vector — the width every mainstream double-SIMD target
 * supports natively (SSE2, NEON, VSX, z13), so GCC/Clang map it straight to
 * registers instead of running the generic-vector lowering pass, which
 * round-trips oversized vectors through the stack.  The naturally-aligned
 * type is the only one used for arithmetic; the aligned(8) twin exists
 * solely to express unaligned loads/stores of row slices — putting
 * aligned(8) on the arithmetic type itself also forces stack spills. */
typedef double v2df __attribute__((vector_size(16)));
typedef double v2df_u __attribute__((vector_size(16), aligned(8)));
static inline v2df vload(const double *p) { return *(const v2df_u *) p; }
static inline void vstore(double *p, v2df v) { *(v2df_u *) p = v; }
#define PNN_HAVE_VEC 1
#endif

/* ---------------------------------------------------------------- */
/* Elementwise: dst may alias an input (same-index read/write only). */
/* ---------------------------------------------------------------- */

#define EW2(name, expr)                                                   \
  CAMLprim value name(value va, value vb, value vdst, intnat n)           \
  {                                                                       \
    const double *a = BA(va);                                             \
    const double *b = BA(vb);                                             \
    double *dst = BA(vdst);                                               \
    for (intnat i = 0; i < n; i++) dst[i] = (expr);                       \
    return Val_unit;                                                      \
  }                                                                       \
  CAMLprim value name##_byte(value va, value vb, value vdst, value vn)    \
  {                                                                       \
    return name(va, vb, vdst, Long_val(vn));                              \
  }

EW2(pnn_c_add, a[i] + b[i])
EW2(pnn_c_sub, a[i] - b[i])
EW2(pnn_c_mul, a[i] * b[i])
EW2(pnn_c_div, a[i] / b[i])

CAMLprim value pnn_c_neg(value va, value vdst, intnat n)
{
  const double *a = BA(va);
  double *dst = BA(vdst);
  for (intnat i = 0; i < n; i++) dst[i] = -a[i];
  return Val_unit;
}
CAMLprim value pnn_c_neg_byte(value va, value vdst, value vn)
{
  return pnn_c_neg(va, vdst, Long_val(vn));
}

CAMLprim value pnn_c_scale(double k, value va, value vdst, intnat n)
{
  const double *a = BA(va);
  double *dst = BA(vdst);
  for (intnat i = 0; i < n; i++) dst[i] = k * a[i];
  return Val_unit;
}
CAMLprim value pnn_c_scale_byte(value vk, value va, value vdst, value vn)
{
  return pnn_c_scale(Double_val(vk), va, vdst, Long_val(vn));
}

CAMLprim value pnn_c_add_scalar(double k, value va, value vdst, intnat n)
{
  const double *a = BA(va);
  double *dst = BA(vdst);
  for (intnat i = 0; i < n; i++) dst[i] = k + a[i];
  return Val_unit;
}
CAMLprim value pnn_c_add_scalar_byte(value vk, value va, value vdst, value vn)
{
  return pnn_c_add_scalar(Double_val(vk), va, vdst, Long_val(vn));
}

/* NaN passes through: both unordered compares are false, so the trailing
 * branch returns x unchanged — the documented clamp contract. */
CAMLprim value pnn_c_clamp(double lo, double hi, value va, value vdst, intnat n)
{
  const double *a = BA(va);
  double *dst = BA(vdst);
  for (intnat i = 0; i < n; i++) {
    double x = a[i];
    dst[i] = x < lo ? lo : (x > hi ? hi : x);
  }
  return Val_unit;
}
CAMLprim value pnn_c_clamp_byte(value vlo, value vhi, value va, value vdst,
                                value vn)
{
  return pnn_c_clamp(Double_val(vlo), Double_val(vhi), va, vdst, Long_val(vn));
}

/* ------------------------------------------------- */
/* Broadcasts (dst may alias the matrix operand md).  */
/* ------------------------------------------------- */

CAMLprim value pnn_c_add_rowvec(value vm, value vv, value vdst, intnat rows,
                                intnat cols)
{
  const double *md = BA(vm);
  const double *vd = BA(vv);
  double *dst = BA(vdst);
  for (intnat r = 0; r < rows; r++) {
    const double *mrow = md + r * cols;
    double *drow = dst + r * cols;
    for (intnat c = 0; c < cols; c++) drow[c] = mrow[c] + vd[c];
  }
  return Val_unit;
}
CAMLprim value pnn_c_add_rowvec_byte(value vm, value vv, value vdst,
                                     value vrows, value vcols)
{
  return pnn_c_add_rowvec(vm, vv, vdst, Long_val(vrows), Long_val(vcols));
}

CAMLprim value pnn_c_mul_rowvec(value vm, value vv, value vdst, intnat rows,
                                intnat cols)
{
  const double *md = BA(vm);
  const double *vd = BA(vv);
  double *dst = BA(vdst);
  for (intnat r = 0; r < rows; r++) {
    const double *mrow = md + r * cols;
    double *drow = dst + r * cols;
    for (intnat c = 0; c < cols; c++) drow[c] = mrow[c] * vd[c];
  }
  return Val_unit;
}
CAMLprim value pnn_c_mul_rowvec_byte(value vm, value vv, value vdst,
                                     value vrows, value vcols)
{
  return pnn_c_mul_rowvec(vm, vv, vdst, Long_val(vrows), Long_val(vcols));
}

/* ----------------------------------------------------------------- */
/* Matmul family: the only kernels allowed to re-associate.  Both    */
/* replicate Kernels_ba's association exactly (see file header).     */
/* ----------------------------------------------------------------- */

/* 8-wide output tile, each lane accumulated in pure k order — the same
 * association as Kernels_ba's 8-accumulator register blocking (and as the
 * reference backend minus its exact-zero skip).  c is overwritten. */
static void matmul_core(const double *ad, const double *bd, double *cd,
                        intnat m, intnat k, intnat n)
{
  intnat n8 = n - (n & 7);
  for (intnat i = 0; i < m; i++) {
    const double *arow = ad + i * k;
    double *crow = cd + i * n;
    intnat j0 = 0;
#ifdef PNN_HAVE_VEC
    for (; j0 < n8; j0 += 8) {
      v2df acc0 = { 0.0, 0.0 };
      v2df acc1 = { 0.0, 0.0 };
      v2df acc2 = { 0.0, 0.0 };
      v2df acc3 = { 0.0, 0.0 };
      for (intnat p = 0; p < k; p++) {
        double a = arow[p];
        v2df av = { a, a };
        const double *brow = bd + p * n + j0;
        acc0 = acc0 + av * vload(brow);
        acc1 = acc1 + av * vload(brow + 2);
        acc2 = acc2 + av * vload(brow + 4);
        acc3 = acc3 + av * vload(brow + 6);
      }
      vstore(crow + j0, acc0);
      vstore(crow + j0 + 2, acc1);
      vstore(crow + j0 + 4, acc2);
      vstore(crow + j0 + 6, acc3);
    }
#else
    for (; j0 < n8; j0 += 8) {
      double c0 = 0.0, c1 = 0.0, c2 = 0.0, c3 = 0.0;
      double c4 = 0.0, c5 = 0.0, c6 = 0.0, c7 = 0.0;
      for (intnat p = 0; p < k; p++) {
        double a = arow[p];
        const double *brow = bd + p * n + j0;
        c0 = c0 + a * brow[0];
        c1 = c1 + a * brow[1];
        c2 = c2 + a * brow[2];
        c3 = c3 + a * brow[3];
        c4 = c4 + a * brow[4];
        c5 = c5 + a * brow[5];
        c6 = c6 + a * brow[6];
        c7 = c7 + a * brow[7];
      }
      crow[j0] = c0;  crow[j0 + 1] = c1;
      crow[j0 + 2] = c2;  crow[j0 + 3] = c3;
      crow[j0 + 4] = c4;  crow[j0 + 5] = c5;
      crow[j0 + 6] = c6;  crow[j0 + 7] = c7;
    }
#endif
    for (intnat j = n8; j < n; j++) {
      double acc = 0.0;
      for (intnat p = 0; p < k; p++) acc = acc + arow[p] * bd[p * n + j];
      crow[j] = acc;
    }
  }
}

CAMLprim value pnn_c_matmul(value va, value vb, value vc, intnat m, intnat k,
                            intnat n)
{
  matmul_core(BA(va), BA(vb), BA(vc), m, k, n);
  return Val_unit;
}
CAMLprim value pnn_c_matmul_byte(value *argv, int argn)
{
  (void) argn;
  return pnn_c_matmul(argv[0], argv[1], argv[2], Long_val(argv[3]),
                      Long_val(argv[4]), Long_val(argv[5]));
}

/* A · Bᵀ: 4-lane split over the shared dimension combined as
 * (s0 + s1) + (s2 + s3) with the tail folded in after — exactly
 * Kernels_ba's matmul_nt association. */
CAMLprim value pnn_c_matmul_nt(value va, value vb, value vc, intnat m,
                               intnat k, intnat n)
{
  const double *ad = BA(va);
  const double *bd = BA(vb);
  double *cd = BA(vc);
  intnat k4 = k - (k & 3);
  for (intnat i = 0; i < m; i++) {
    const double *arow = ad + i * k;
    double *crow = cd + i * n;
    for (intnat j = 0; j < n; j++) {
      const double *brow = bd + j * k;
      double acc;
#ifdef PNN_HAVE_VEC
      /* Lanes 0/1 live in sa, lanes 2/3 in sb; the combine below is the
       * same (s0 + s1) + (s2 + s3) tree as the scalar fallback. */
      v2df sa = { 0.0, 0.0 };
      v2df sb = { 0.0, 0.0 };
      for (intnat p = 0; p < k4; p += 4) {
        sa = sa + vload(arow + p) * vload(brow + p);
        sb = sb + vload(arow + p + 2) * vload(brow + p + 2);
      }
      acc = (sa[0] + sa[1]) + (sb[0] + sb[1]);
#else
      double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
      for (intnat p = 0; p < k4; p += 4) {
        s0 = s0 + arow[p] * brow[p];
        s1 = s1 + arow[p + 1] * brow[p + 1];
        s2 = s2 + arow[p + 2] * brow[p + 2];
        s3 = s3 + arow[p + 3] * brow[p + 3];
      }
      acc = (s0 + s1) + (s2 + s3);
#endif
      for (intnat p = k4; p < k; p++) acc = acc + arow[p] * brow[p];
      crow[j] = acc;
    }
  }
  return Val_unit;
}
CAMLprim value pnn_c_matmul_nt_byte(value *argv, int argn)
{
  (void) argn;
  return pnn_c_matmul_nt(argv[0], argv[1], argv[2], Long_val(argv[3]),
                         Long_val(argv[4]), Long_val(argv[5]));
}

/* Blocked copy, same 32x32 tiling as the OCaml backends (copies are exact
 * in any order). */
CAMLprim value pnn_c_transpose(value vsrc, value vdst, intnat rows,
                               intnat cols)
{
  const double *src = BA(vsrc);
  double *dst = BA(vdst);
  const intnat bs = 32;
  for (intnat r0 = 0; r0 < rows; r0 += bs) {
    intnat rmax = r0 + bs < rows ? r0 + bs : rows;
    for (intnat c0 = 0; c0 < cols; c0 += bs) {
      intnat cmax = c0 + bs < cols ? c0 + bs : cols;
      for (intnat r = r0; r < rmax; r++)
        for (intnat c = c0; c < cmax; c++)
          dst[c * rows + r] = src[r * cols + c];
    }
  }
  return Val_unit;
}
CAMLprim value pnn_c_transpose_byte(value vsrc, value vdst, value vrows,
                                    value vcols)
{
  return pnn_c_transpose(vsrc, vdst, Long_val(vrows), Long_val(vcols));
}

/* ------------------------------------------------------------------ */
/* Reductions: left-to-right single accumulator, same order as the    */
/* reference (the compiler may not re-associate without -ffast-math). */
/* ------------------------------------------------------------------ */

CAMLprim double pnn_c_dot(value va, value vb, intnat n)
{
  const double *a = BA(va);
  const double *b = BA(vb);
  double acc = 0.0;
  for (intnat i = 0; i < n; i++) acc = acc + a[i] * b[i];
  return acc;
}
CAMLprim value pnn_c_dot_byte(value va, value vb, value vn)
{
  return caml_copy_double(pnn_c_dot(va, vb, Long_val(vn)));
}

CAMLprim double pnn_c_sum(value va, intnat n)
{
  const double *a = BA(va);
  double acc = 0.0;
  for (intnat i = 0; i < n; i++) acc = acc + a[i];
  return acc;
}
CAMLprim value pnn_c_sum_byte(value va, value vn)
{
  return caml_copy_double(pnn_c_sum(va, Long_val(vn)));
}

/* dst is pre-zeroed by the caller; rows accumulate in r order per column
 * (vectorizable across columns without re-association). */
CAMLprim value pnn_c_sum_rows(value vsrc, value vdst, intnat rows, intnat cols)
{
  const double *src = BA(vsrc);
  double *dst = BA(vdst);
  for (intnat r = 0; r < rows; r++) {
    const double *srow = src + r * cols;
    for (intnat c = 0; c < cols; c++) dst[c] = dst[c] + srow[c];
  }
  return Val_unit;
}
CAMLprim value pnn_c_sum_rows_byte(value vsrc, value vdst, value vrows,
                                   value vcols)
{
  return pnn_c_sum_rows(vsrc, vdst, Long_val(vrows), Long_val(vcols));
}

CAMLprim value pnn_c_sum_cols(value vsrc, value vdst, intnat rows, intnat cols)
{
  const double *src = BA(vsrc);
  double *dst = BA(vdst);
  for (intnat r = 0; r < rows; r++) {
    const double *srow = src + r * cols;
    double acc = 0.0;
    for (intnat c = 0; c < cols; c++) acc = acc + srow[c];
    dst[r] = acc;
  }
  return Val_unit;
}
CAMLprim value pnn_c_sum_cols_byte(value vsrc, value vdst, value vrows,
                                   value vcols)
{
  return pnn_c_sum_cols(vsrc, vdst, Long_val(vrows), Long_val(vcols));
}

/* --------------------------------------------------------------- */
/* Nonlinearities: op tags match Tensor_backend.unop declaration   */
/* order (Tanh..Abs = 0..6); formulas are the reference backend's, */
/* libm calls resolve to the same libm the OCaml runtime links.    */
/* --------------------------------------------------------------- */

enum pnn_unop { PNN_TANH, PNN_SIGMOID, PNN_EXP, PNN_LOG, PNN_SQRT, PNN_RELU,
                PNN_ABS };

CAMLprim value pnn_c_unary(intnat op, value vsrc, value vdst, intnat n)
{
  const double *src = BA(vsrc);
  double *dst = BA(vdst);
  switch ((enum pnn_unop) op) {
  case PNN_TANH:
    for (intnat i = 0; i < n; i++) dst[i] = tanh(src[i]);
    break;
  case PNN_SIGMOID:
    for (intnat i = 0; i < n; i++) dst[i] = 1.0 / (1.0 + exp(-src[i]));
    break;
  case PNN_EXP:
    for (intnat i = 0; i < n; i++) dst[i] = exp(src[i]);
    break;
  case PNN_LOG:
    for (intnat i = 0; i < n; i++) dst[i] = log(src[i]);
    break;
  case PNN_SQRT:
    for (intnat i = 0; i < n; i++) dst[i] = sqrt(src[i]);
    break;
  case PNN_RELU:
    for (intnat i = 0; i < n; i++) {
      double x = src[i];
      dst[i] = x > 0.0 ? x : 0.0;
    }
    break;
  case PNN_ABS:
    for (intnat i = 0; i < n; i++) dst[i] = fabs(src[i]);
    break;
  }
  return Val_unit;
}
CAMLprim value pnn_c_unary_byte(value vop, value vsrc, value vdst, value vn)
{
  return pnn_c_unary(Long_val(vop), vsrc, vdst, Long_val(vn));
}

CAMLprim value pnn_c_unary_bwd(intnat op, value vx, value vy, value vg,
                               value vs, intnat n)
{
  const double *x = BA(vx);
  const double *y = BA(vy);
  const double *g = BA(vg);
  double *s = BA(vs);
  switch ((enum pnn_unop) op) {
  case PNN_TANH:
    for (intnat i = 0; i < n; i++) {
      double yi = y[i];
      s[i] = g[i] * (1.0 - yi * yi);
    }
    break;
  case PNN_SIGMOID:
    for (intnat i = 0; i < n; i++) {
      double yi = y[i];
      s[i] = g[i] * (yi * (1.0 - yi));
    }
    break;
  case PNN_EXP:
    for (intnat i = 0; i < n; i++) s[i] = g[i] * y[i];
    break;
  case PNN_LOG:
    for (intnat i = 0; i < n; i++) s[i] = g[i] * (1.0 / x[i]);
    break;
  case PNN_SQRT:
    for (intnat i = 0; i < n; i++) s[i] = g[i] * (0.5 / y[i]);
    break;
  case PNN_RELU:
    for (intnat i = 0; i < n; i++) s[i] = g[i] * (x[i] > 0.0 ? 1.0 : 0.0);
    break;
  case PNN_ABS:
    for (intnat i = 0; i < n; i++) {
      double xi = x[i];
      s[i] = g[i] * (xi > 0.0 ? 1.0 : (xi < 0.0 ? -1.0 : 0.0));
    }
    break;
  }
  return Val_unit;
}
CAMLprim value pnn_c_unary_bwd_byte(value *argv, int argn)
{
  (void) argn;
  return pnn_c_unary_bwd(Long_val(argv[0]), argv[1], argv[2], argv[3],
                         argv[4], Long_val(argv[5]));
}

/* ------------------------------------------ */
/* Training-path fused kernels (reference     */
/* order per row/element, see kernels_ref.ml) */
/* ------------------------------------------ */

static void softmax_rows_core(const double *src, double *out, intnat rows,
                              intnat cols)
{
  for (intnat r = 0; r < rows; r++) {
    const double *srow = src + r * cols;
    double *orow = out + r * cols;
    double mx = -INFINITY;
    for (intnat c = 0; c < cols; c++) {
      double x = srow[c];
      if (x > mx) mx = x;
    }
    double z = 0.0;
    for (intnat c = 0; c < cols; c++) {
      double e = exp(srow[c] - mx);
      orow[c] = e;
      z = z + e;
    }
    for (intnat c = 0; c < cols; c++) orow[c] = orow[c] / z;
  }
}

CAMLprim value pnn_c_softmax_rows(value vsrc, value vout, intnat rows,
                                  intnat cols)
{
  softmax_rows_core(BA(vsrc), BA(vout), rows, cols);
  return Val_unit;
}
CAMLprim value pnn_c_softmax_rows_byte(value vsrc, value vout, value vrows,
                                       value vcols)
{
  return pnn_c_softmax_rows(vsrc, vout, Long_val(vrows), Long_val(vcols));
}

CAMLprim double pnn_c_ce_loss_sum(value vp, value vy, intnat n)
{
  const double *p = BA(vp);
  const double *y = BA(vy);
  double loss = 0.0;
  for (intnat i = 0; i < n; i++) {
    double yi = y[i];
    if (yi > 0.0) {
      /* Stdlib.max p 1e-30 = if p >= 1e-30 then p else 1e-30 (NaN -> 1e-30) */
      double pi = p[i];
      double cl = pi >= 1e-30 ? pi : 1e-30;
      loss = loss - yi * log(cl);
    }
  }
  return loss;
}
CAMLprim value pnn_c_ce_loss_sum_byte(value vp, value vy, value vn)
{
  return caml_copy_double(pnn_c_ce_loss_sum(vp, vy, Long_val(vn)));
}

CAMLprim value pnn_c_sgd_step(double lr, value vgrad, value vvalue, intnat n)
{
  const double *grad = BA(vgrad);
  double *val = BA(vvalue);
  for (intnat i = 0; i < n; i++) val[i] = val[i] - lr * grad[i];
  return Val_unit;
}
CAMLprim value pnn_c_sgd_step_byte(value vlr, value vgrad, value vvalue,
                                   value vn)
{
  return pnn_c_sgd_step(Double_val(vlr), vgrad, vvalue, Long_val(vn));
}

static void adam_core(double lr, double beta1, double beta2, double eps,
                      double bc1, double bc2, double *m, double *v,
                      const double *grad, double *val, intnat n)
{
  for (intnat i = 0; i < n; i++) {
    double g = grad[i];
    m[i] = beta1 * m[i] + (1.0 - beta1) * g;
    v[i] = beta2 * v[i] + (1.0 - beta2) * g * g;
    double mhat = m[i] / bc1;
    double vhat = v[i] / bc2;
    val[i] = val[i] - lr * mhat / (sqrt(vhat) + eps);
  }
}

CAMLprim value pnn_c_adam_step(double lr, double beta1, double beta2,
                               double eps, double bc1, double bc2, value vm,
                               value vv, value vgrad, value vvalue, intnat n)
{
  adam_core(lr, beta1, beta2, eps, bc1, bc2, FA(vm), FA(vv), BA(vgrad),
            BA(vvalue), n);
  return Val_unit;
}
CAMLprim value pnn_c_adam_step_byte(value *argv, int argn)
{
  (void) argn;
  return pnn_c_adam_step(Double_val(argv[0]), Double_val(argv[1]),
                         Double_val(argv[2]), Double_val(argv[3]),
                         Double_val(argv[4]), Double_val(argv[5]), argv[6],
                         argv[7], argv[8], argv[9], Long_val(argv[10]));
}

/* ----------------------------------------------------------------- */
/* Fused hot-path kernels (optional KERNELS capabilities).           */
/* ----------------------------------------------------------------- */

/* One stub call for a dense-layer forward: pre := x·w + bias (matmul_core
 * association, then the rowvec add), out := unop(pre).  op < 0 means no
 * nonlinearity: out receives a plain copy of pre (skipped when they are
 * the same buffer).  Bit-identical to the decomposed
 * matmul/add_rowvec/unary sequence above because it runs the same loops
 * in the same order. */
CAMLprim value pnn_c_matmul_bias_unop(intnat op, value vx, value vw, value vb,
                                      value vpre, value vout, intnat m,
                                      intnat k, intnat n)
{
  const double *bias = BA(vb);
  double *pre = BA(vpre);
  matmul_core(BA(vx), BA(vw), pre, m, k, n);
  for (intnat r = 0; r < m; r++) {
    double *prow = pre + r * n;
    for (intnat c = 0; c < n; c++) prow[c] = prow[c] + bias[c];
  }
  if (op >= 0) pnn_c_unary(op, vpre, vout, m * n);
  else {
    double *out = BA(vout);
    if (out != pre)
      for (intnat i = 0; i < m * n; i++) out[i] = pre[i];
  }
  return Val_unit;
}
CAMLprim value pnn_c_matmul_bias_unop_byte(value *argv, int argn)
{
  (void) argn;
  return pnn_c_matmul_bias_unop(Long_val(argv[0]), argv[1], argv[2], argv[3],
                                argv[4], argv[5], Long_val(argv[6]),
                                Long_val(argv[7]), Long_val(argv[8]));
}

/* One stub call for an Adam step over every parameter leaf.  items is an
 * OCaml array of (value, grad, m, v, numel) tuples: value/grad are Float64
 * bigarrays, m/v are OCaml float arrays.  Leaves are independent, so
 * per-leaf results are bit-identical to one pnn_c_adam_step call each. */
CAMLprim value pnn_c_adam_step_many(double lr, double beta1, double beta2,
                                    double eps, double bc1, double bc2,
                                    value vitems)
{
  mlsize_t count = Wosize_val(vitems);
  for (mlsize_t j = 0; j < count; j++) {
    value it = Field(vitems, j);
    adam_core(lr, beta1, beta2, eps, bc1, bc2, FA(Field(it, 2)),
              FA(Field(it, 3)), BA(Field(it, 1)), BA(Field(it, 0)),
              Long_val(Field(it, 4)));
  }
  return Val_unit;
}
CAMLprim value pnn_c_adam_step_many_byte(value *argv, int argn)
{
  (void) argn;
  return pnn_c_adam_step_many(Double_val(argv[0]), Double_val(argv[1]),
                              Double_val(argv[2]), Double_val(argv[3]),
                              Double_val(argv[4]), Double_val(argv[5]),
                              argv[6]);
}
