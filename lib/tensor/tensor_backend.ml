(* Backend registry for the tensor kernel set.

   A backend is an implementation of the {!KERNELS} module type below: a flat
   buffer type plus every arithmetic core the tensor layer dispatches to.
   Three implementations exist today — {!Kernels_ref} on [float array] (the
   bit-identity oracle every golden trajectory is pinned to), {!Kernels_ba}
   on flat [Bigarray.Array1] Float64 storage with unrolled/blocked OCaml
   loops, and {!Kernels_c} on the same storage with vectorized C foreign
   stubs.  A BLAS backend would be one more module satisfying {!KERNELS}
   plus one more storage constructor in [Tensor.t].

   This module also owns the two process-wide mode flags the kernels consult:

   - [checked]: the PNN_CHECKED sanitizer switch.  Every kernel in every
     backend carries two loop bodies performing identical floating-point
     operations in identical order; the checked body uses bounds-checked
     indexing.  Results are bit-identical across modes by construction.
   - [current]: the backend new tensors are created on (PNN_BACKEND, default
     reference).  Dispatch itself is storage-driven — a tensor computed on one
     backend keeps using that backend's kernels even after the flag changes —
     so the flag only decides where fresh allocations land. *)

type id = Reference | Bigarray64 | C64

(* The single source of truth for the live backend list: [of_string],
   [names_string] (error messages and every --backend help text) and the
   test matrix all derive from it. *)
let all = [ Reference; Bigarray64; C64 ]

let of_string = function
  | "reference" | "ref" -> Some Reference
  | "bigarray" | "bigarray64" | "ba64" -> Some Bigarray64
  | "c" | "c64" -> Some C64
  | _ -> None

let name = function
  | Reference -> "reference"
  | Bigarray64 -> "bigarray"
  | C64 -> "c"

let names = List.map name all
let names_string = String.concat "|" names

(* Short, stable tags folded into cache keys (Serialize.cache_schema): the
   backends may differ in the last ulp on the matmul family, so cached
   results must never cross. *)
let tag = function Reference -> "ref" | Bigarray64 -> "ba64" | C64 -> "c64"

let checked =
  Atomic.make
    (match Sys.getenv_opt "PNN_CHECKED" with
    | Some ("1" | "true" | "yes") -> true
    | _ -> false)

let current =
  Atomic.make
    (match Sys.getenv_opt "PNN_BACKEND" with
    | None | Some "" -> Reference
    | Some s -> (
        match of_string s with
        | Some b -> b
        | None ->
            failwith
              (Printf.sprintf "PNN_BACKEND=%s: unknown backend (expected %s)" s
                 names_string)))

(* Unary nonlinearities are backend kernels (the autodiff tape calls them on
   backend-owned storage); the constructor set is shared so every backend
   implements the same catalogue. *)
type unop = Tanh | Sigmoid | Exp | Log | Sqrt | Relu | Abs

let unop_name = function
  | Tanh -> "tanh"
  | Sigmoid -> "sigmoid"
  | Exp -> "exp"
  | Log -> "log"
  | Sqrt -> "sqrt"
  | Relu -> "relu"
  | Abs -> "abs"

(** The backend signature: one flat buffer type plus every kernel core the
    tensor dispatch layer needs.  Contracts shared by all implementations:

    - Shape/bounds validation happens in the dispatch layer ([Tensor]);
      cores may assume every index they derive from the stated dimensions is
      in range.
    - Elementwise cores ([add] … [map2], [unary], [clamp]) read and write
      index [i] only, so the destination may alias an input.
    - [matmul] and [sum_rows] accumulate into a destination the caller has
      pre-zeroed.
    - When [checked] is set, cores must run a bounds-checked loop body that
      performs the exact same floating-point operations in the exact same
      order as the fast body.
    - NaN/−0.0 contracts ([clamp] passes NaN through; [min_value]/
      [max_value] fold IEEE comparisons left-to-right so an unordered pair
      keeps the second operand; [argmax_rows] keeps the first strict
      maximum and never displaces the incumbent on an unordered compare)
      are part of the signature: backends must agree bit-for-bit on these
      edge kernels even where accumulation order is allowed to differ. *)
module type KERNELS = sig
  type buf

  val impl : id

  (* storage *)
  val create : int -> buf
  (** Zero-filled buffer. *)

  val length : buf -> int
  val get : buf -> int -> float
  val set : buf -> int -> float -> unit
  val fill : buf -> pos:int -> len:int -> float -> unit
  val blit : buf -> int -> buf -> int -> int -> unit
  val of_float_array : float array -> buf
  (** Copies. *)

  val to_float_array : buf -> float array
  (** Copies. *)

  val load : buf -> float array -> unit
  (** [load buf a] copies [a] (same length) into [buf]. *)

  (* elementwise *)
  val add : buf -> buf -> buf -> int -> unit
  val sub : buf -> buf -> buf -> int -> unit
  val mul : buf -> buf -> buf -> int -> unit
  val div : buf -> buf -> buf -> int -> unit
  val neg : buf -> buf -> int -> unit
  val scale : float -> buf -> buf -> int -> unit
  val add_scalar : float -> buf -> buf -> int -> unit
  val clamp : lo:float -> hi:float -> buf -> buf -> int -> unit
  val map : (float -> float) -> buf -> buf -> int -> unit
  val map2 : (float -> float -> float) -> buf -> buf -> buf -> int -> unit

  (* broadcasts: [rows cols] trailing args *)
  val add_rowvec : buf -> buf -> buf -> int -> int -> unit
  val mul_rowvec : buf -> buf -> buf -> int -> int -> unit
  val add_colvec : buf -> buf -> buf -> int -> int -> unit
  val mul_colvec : buf -> buf -> buf -> int -> int -> unit
  val div_colvec : buf -> buf -> buf -> int -> int -> unit

  (* linear algebra: [m k n] = rows a, cols a, cols out *)
  val matmul : buf -> buf -> buf -> int -> int -> int -> unit
  val matmul_nt : buf -> buf -> buf -> int -> int -> int -> unit
  val transpose : buf -> buf -> int -> int -> unit

  (* reductions *)
  val dot : buf -> buf -> int -> float
  val sum : buf -> int -> float
  val min_value : buf -> int -> float
  val max_value : buf -> int -> float
  val sum_rows : buf -> buf -> int -> int -> unit
  val sum_cols : buf -> buf -> int -> int -> unit
  val argmax_rows : buf -> int -> int -> int array

  (* nonlinearities and training-path fused kernels *)
  val unary : unop -> buf -> buf -> int -> unit
  val unary_bwd : unop -> x:buf -> y:buf -> g:buf -> s:buf -> int -> unit
  val softmax_rows : buf -> buf -> int -> int -> unit
  val ce_loss_sum : buf -> buf -> int -> float
  val sgd_step : lr:float -> grad:buf -> value:buf -> int -> unit

  val adam_step :
    lr:float ->
    beta1:float ->
    beta2:float ->
    eps:float ->
    bc1:float ->
    bc2:float ->
    m:float array ->
    v:float array ->
    grad:buf ->
    value:buf ->
    int ->
    unit
  (** Moment buffers [m]/[v] are optimizer-owned plain arrays (they are
      checkpointed by the optimizer codec and never enter tensor math), so
      they stay [float array] on every backend. *)

  (* Optional fused capabilities.  A backend that cannot fuse advertises
     [None] and the dispatch layer decomposes into the catalogue kernels
     above; a backend advertising [Some f] guarantees [f] is bit-identical
     to the decomposed sequence on the same backend. *)

  val matmul_bias_unop :
    (unop option ->
    x:buf ->
    w:buf ->
    b:buf ->
    pre:buf ->
    out:buf ->
    int ->
    int ->
    int ->
    unit)
    option
  (** Fused dense-layer forward over [m k n]: [pre := x·w +rowvec b] then
      [out := unop pre] ([None] leaves [out] untouched and callers use
      [pre]; [out] may equal [pre]).  [pre]/[out] must not alias [x], [w]
      or [b]. *)

  val adam_step_many :
    (lr:float ->
    beta1:float ->
    beta2:float ->
    eps:float ->
    bc1:float ->
    bc2:float ->
    (buf * buf * float array * float array * int) array ->
    unit)
    option
  (** One call for an Adam step over every parameter leaf.  Each item is
      [(value, grad, m, v, numel)]; leaves are updated independently,
      bit-identically to per-leaf [adam_step] calls. *)
end
