(* C-stub kernel backend: flat Bigarray.Float64 storage (the same [buf] as
   {!Kernels_ba}) with the hot kernels implemented as vectorized C foreign
   stubs in pnn_kernels_stubs.c.

   Numeric contract (see Tensor_backend.KERNELS): the C per-element kernels
   perform the reference backend's floating-point operations in the
   reference order and are bit-identical to it — the stubs are compiled
   with -O2 -fno-fast-math -ffp-contract=off so the C compiler may not
   re-associate or contract into FMA, and tanh/exp/log resolve to the same
   libm the OCaml runtime links.  Only [matmul]/[matmul_nt] re-associate,
   deterministically, replicating {!Kernels_ba}'s register-blocked
   association exactly; the backend still carries its own cache tag (+c64)
   so cached results never cross backends.

   Checked (sanitizer) mode: C stubs cannot bounds-check OCaml-side, so
   under PNN_CHECKED=1 every kernel delegates to {!Kernels_ba}'s
   bounds-checked loop body — legal because the storage type is shared and
   Kernels_ba's checked bodies perform the same float ops in the same
   order as the stubs (for the matmul family, because the stubs replicate
   Kernels_ba's association).  Results are bit-identical across modes by
   construction.

   Closure-carrying kernels ([map]/[map2]) and the cold edge kernels with
   delicate NaN/-0.0 select semantics ([min_value]/[max_value]/
   [argmax_rows], colvec broadcasts) delegate to Kernels_ba's OCaml loops
   unconditionally: closures cannot cross the FFI, and the edge kernels are
   not worth a C twin that would have to reproduce IEEE select quirks. *)

open Bigarray
module TB = Tensor_backend
module Kb = Kernels_ba

type buf = (float, float64_elt, c_layout) Array1.t

let impl = TB.C64

(* storage: identical to the bigarray backend (same [buf]) *)

let create = Kb.create
let length = Kb.length
let get = Kb.get
let set = Kb.set
let fill = Kb.fill
let blit = Kb.blit
let of_float_array = Kb.of_float_array
let to_float_array = Kb.to_float_array
let load = Kb.load

(* {2 Foreign stubs}

   ABI: flat Float64 bigarray data pointers + explicit [@untagged]
   dimensions, [@unboxed] float scalars, no callbacks, no OCaml-heap
   allocation ([@@noalloc]); each stub has a _byte twin for the bytecode
   calling convention.  Bounds are never checked C-side: every wrapper
   below is called from the Tensor dispatch layer, which validates shapes
   before dispatch (PNN_CHECKED=1 additionally reroutes every call to
   Kernels_ba's bounds-checked bodies before the stub is reached). *)

(* SAFETY: dispatch guarantees a, b and dst all have >= n elements; the stub
   touches indices 0..n-1 only, and dst may alias an input (same-index
   read/write). *)
external c_add : buf -> buf -> buf -> (int[@untagged]) -> unit
  = "pnn_c_add_byte" "pnn_c_add"
[@@noalloc]

(* SAFETY: same contract as c_add — n bounds all three buffers. *)
external c_sub : buf -> buf -> buf -> (int[@untagged]) -> unit
  = "pnn_c_sub_byte" "pnn_c_sub"
[@@noalloc]

(* SAFETY: same contract as c_add — n bounds all three buffers. *)
external c_mul : buf -> buf -> buf -> (int[@untagged]) -> unit
  = "pnn_c_mul_byte" "pnn_c_mul"
[@@noalloc]

(* SAFETY: same contract as c_add — n bounds all three buffers. *)
external c_div : buf -> buf -> buf -> (int[@untagged]) -> unit
  = "pnn_c_div_byte" "pnn_c_div"
[@@noalloc]

(* SAFETY: a and dst have >= n elements; indices 0..n-1 only; aliasing ok. *)
external c_neg : buf -> buf -> (int[@untagged]) -> unit
  = "pnn_c_neg_byte" "pnn_c_neg"
[@@noalloc]

(* SAFETY: a and dst have >= n elements; indices 0..n-1 only; aliasing ok. *)
external c_scale : (float[@unboxed]) -> buf -> buf -> (int[@untagged]) -> unit
  = "pnn_c_scale_byte" "pnn_c_scale"
[@@noalloc]

(* SAFETY: a and dst have >= n elements; indices 0..n-1 only; aliasing ok. *)
external c_add_scalar :
  (float[@unboxed]) -> buf -> buf -> (int[@untagged]) -> unit
  = "pnn_c_add_scalar_byte" "pnn_c_add_scalar"
[@@noalloc]

(* SAFETY: a and dst have >= n elements; indices 0..n-1 only; aliasing ok. *)
external c_clamp :
  (float[@unboxed]) ->
  (float[@unboxed]) ->
  buf ->
  buf ->
  (int[@untagged]) ->
  unit = "pnn_c_clamp_byte" "pnn_c_clamp"
[@@noalloc]

(* SAFETY: m and dst have >= rows*cols elements, v has >= cols; row strides
   derive from the stated dims; dst may alias m (same-index writes). *)
external c_add_rowvec :
  buf -> buf -> buf -> (int[@untagged]) -> (int[@untagged]) -> unit
  = "pnn_c_add_rowvec_byte" "pnn_c_add_rowvec"
[@@noalloc]

(* SAFETY: same contract as c_add_rowvec. *)
external c_mul_rowvec :
  buf -> buf -> buf -> (int[@untagged]) -> (int[@untagged]) -> unit
  = "pnn_c_mul_rowvec_byte" "pnn_c_mul_rowvec"
[@@noalloc]

(* SAFETY: a is m*k, b is k*n, c is m*n (validated by dispatch); c is
   overwritten and must not alias a or b. *)
external c_matmul :
  buf ->
  buf ->
  buf ->
  (int[@untagged]) ->
  (int[@untagged]) ->
  (int[@untagged]) ->
  unit = "pnn_c_matmul_byte" "pnn_c_matmul"
[@@noalloc]

(* SAFETY: a is m*k, b is n*k, c is m*n; c overwritten, no aliasing. *)
external c_matmul_nt :
  buf ->
  buf ->
  buf ->
  (int[@untagged]) ->
  (int[@untagged]) ->
  (int[@untagged]) ->
  unit = "pnn_c_matmul_nt_byte" "pnn_c_matmul_nt"
[@@noalloc]

(* SAFETY: src is rows*cols, dst is cols*rows; dst must not alias src. *)
external c_transpose : buf -> buf -> (int[@untagged]) -> (int[@untagged]) -> unit
  = "pnn_c_transpose_byte" "pnn_c_transpose"
[@@noalloc]

(* SAFETY: a and b have >= n elements; read-only. *)
external c_dot : buf -> buf -> (int[@untagged]) -> (float[@unboxed])
  = "pnn_c_dot_byte" "pnn_c_dot"
[@@noalloc]

(* SAFETY: a has >= n elements; read-only. *)
external c_sum : buf -> (int[@untagged]) -> (float[@unboxed])
  = "pnn_c_sum_byte" "pnn_c_sum"
[@@noalloc]

(* SAFETY: src is rows*cols, dst has >= cols (pre-zeroed accumulator);
   dst must not alias src. *)
external c_sum_rows :
  buf -> buf -> (int[@untagged]) -> (int[@untagged]) -> unit
  = "pnn_c_sum_rows_byte" "pnn_c_sum_rows"
[@@noalloc]

(* SAFETY: src is rows*cols, dst has >= rows; dst must not alias src. *)
external c_sum_cols :
  buf -> buf -> (int[@untagged]) -> (int[@untagged]) -> unit
  = "pnn_c_sum_cols_byte" "pnn_c_sum_cols"
[@@noalloc]

(* SAFETY: src and dst have >= n elements; op is a valid unop code (0..6,
   produced only by unop_code below); aliasing ok. *)
external c_unary : (int[@untagged]) -> buf -> buf -> (int[@untagged]) -> unit
  = "pnn_c_unary_byte" "pnn_c_unary"
[@@noalloc]

(* SAFETY: x, y, g and s all have >= n elements; op is a valid unop code;
   s may alias g (same-index read/write). *)
external c_unary_bwd :
  (int[@untagged]) -> buf -> buf -> buf -> buf -> (int[@untagged]) -> unit
  = "pnn_c_unary_bwd_byte" "pnn_c_unary_bwd"
[@@noalloc]

(* SAFETY: src and out are rows*cols; out may alias src (each row is fully
   read into the max scan before out's row is written... rows are processed
   independently and the exp pass reads src[c] before writing out[c], so
   same-buffer aliasing is same-index only). *)
external c_softmax_rows :
  buf -> buf -> (int[@untagged]) -> (int[@untagged]) -> unit
  = "pnn_c_softmax_rows_byte" "pnn_c_softmax_rows"
[@@noalloc]

(* SAFETY: p and y have >= n elements; read-only. *)
external c_ce_loss_sum : buf -> buf -> (int[@untagged]) -> (float[@unboxed])
  = "pnn_c_ce_loss_sum_byte" "pnn_c_ce_loss_sum"
[@@noalloc]

(* SAFETY: grad and value have >= n elements; value updated in place at
   index i from index i only. *)
external c_sgd_step : (float[@unboxed]) -> buf -> buf -> (int[@untagged]) -> unit
  = "pnn_c_sgd_step_byte" "pnn_c_sgd_step"
[@@noalloc]

(* SAFETY: m and v are float arrays of length >= n (flat unboxed doubles;
   the optimizer allocates moments at the parameter's size), grad and value
   are bigarrays of >= n elements; all updates are same-index. *)
external c_adam_step :
  (float[@unboxed]) ->
  (float[@unboxed]) ->
  (float[@unboxed]) ->
  (float[@unboxed]) ->
  (float[@unboxed]) ->
  (float[@unboxed]) ->
  float array ->
  float array ->
  buf ->
  buf ->
  (int[@untagged]) ->
  unit = "pnn_c_adam_step_byte" "pnn_c_adam_step"
[@@noalloc]

(* SAFETY: x is m*k, w is k*n, b has >= n, pre and out are m*n; pre/out
   must not alias x/w/b; out may equal pre.  op is -1 (none) or a valid
   unop code. *)
external c_matmul_bias_unop :
  (int[@untagged]) ->
  buf ->
  buf ->
  buf ->
  buf ->
  buf ->
  (int[@untagged]) ->
  (int[@untagged]) ->
  (int[@untagged]) ->
  unit = "pnn_c_matmul_bias_unop_byte" "pnn_c_matmul_bias_unop"
[@@noalloc]

(* SAFETY: each item (value, grad, m, v, numel) carries its own length:
   value/grad are bigarrays and m/v float arrays all of >= numel elements
   (the dispatch layer builds items from same-shaped tensors and
   optimizer-allocated moments); the stub reads tuple fields of the
   immutable items array and performs same-index updates only. *)
external c_adam_step_many :
  (float[@unboxed]) ->
  (float[@unboxed]) ->
  (float[@unboxed]) ->
  (float[@unboxed]) ->
  (float[@unboxed]) ->
  (float[@unboxed]) ->
  (buf * buf * float array * float array * int) array ->
  unit = "pnn_c_adam_step_many_byte" "pnn_c_adam_step_many"
[@@noalloc]

(* {2 Kernel catalogue} *)

let add a b dst n = if Atomic.get TB.checked then Kb.add a b dst n else c_add a b dst n
let sub a b dst n = if Atomic.get TB.checked then Kb.sub a b dst n else c_sub a b dst n
let mul a b dst n = if Atomic.get TB.checked then Kb.mul a b dst n else c_mul a b dst n
let div a b dst n = if Atomic.get TB.checked then Kb.div a b dst n else c_div a b dst n
let neg a dst n = if Atomic.get TB.checked then Kb.neg a dst n else c_neg a dst n

let scale k a dst n =
  if Atomic.get TB.checked then Kb.scale k a dst n else c_scale k a dst n

let add_scalar k a dst n =
  if Atomic.get TB.checked then Kb.add_scalar k a dst n else c_add_scalar k a dst n

let clamp ~lo ~hi a dst n =
  if Atomic.get TB.checked then Kb.clamp ~lo ~hi a dst n else c_clamp lo hi a dst n

(* Closures cannot cross the FFI: map/map2 stay on the OCaml loops. *)
let map = Kb.map
let map2 = Kb.map2

let add_rowvec m v dst rows cols =
  if Atomic.get TB.checked then Kb.add_rowvec m v dst rows cols
  else c_add_rowvec m v dst rows cols

let mul_rowvec m v dst rows cols =
  if Atomic.get TB.checked then Kb.mul_rowvec m v dst rows cols
  else c_mul_rowvec m v dst rows cols

(* Cold column broadcasts: not on any hot path, OCaml loops are fine. *)
let add_colvec = Kb.add_colvec
let mul_colvec = Kb.mul_colvec
let div_colvec = Kb.div_colvec

let matmul a b c m k n =
  if Atomic.get TB.checked then Kb.matmul a b c m k n else c_matmul a b c m k n

let matmul_nt a b c m k n =
  if Atomic.get TB.checked then Kb.matmul_nt a b c m k n else c_matmul_nt a b c m k n

let transpose src dst rows cols =
  if Atomic.get TB.checked then Kb.transpose src dst rows cols
  else c_transpose src dst rows cols

let dot a b n = if Atomic.get TB.checked then Kb.dot a b n else c_dot a b n
let sum a n = if Atomic.get TB.checked then Kb.sum a n else c_sum a n

(* IEEE-select edge kernels (NaN keeps the second operand / first-max wins):
   delegate to the OCaml loops rather than duplicating the quirks in C. *)
let min_value = Kb.min_value
let max_value = Kb.max_value
let argmax_rows = Kb.argmax_rows

let sum_rows src dst rows cols =
  if Atomic.get TB.checked then Kb.sum_rows src dst rows cols
  else c_sum_rows src dst rows cols

let sum_cols src dst rows cols =
  if Atomic.get TB.checked then Kb.sum_cols src dst rows cols
  else c_sum_cols src dst rows cols

(* Codes match enum pnn_unop in pnn_kernels_stubs.c (declaration order). *)
let unop_code = function
  | TB.Tanh -> 0
  | TB.Sigmoid -> 1
  | TB.Exp -> 2
  | TB.Log -> 3
  | TB.Sqrt -> 4
  | TB.Relu -> 5
  | TB.Abs -> 6

let unary op src dst n =
  if Atomic.get TB.checked then Kb.unary op src dst n
  else c_unary (unop_code op) src dst n

let unary_bwd op ~x ~y ~g ~s n =
  if Atomic.get TB.checked then Kb.unary_bwd op ~x ~y ~g ~s n
  else c_unary_bwd (unop_code op) x y g s n

let softmax_rows src out rows cols =
  if Atomic.get TB.checked then Kb.softmax_rows src out rows cols
  else c_softmax_rows src out rows cols

let ce_loss_sum p y n =
  if Atomic.get TB.checked then Kb.ce_loss_sum p y n else c_ce_loss_sum p y n

let sgd_step ~lr ~grad ~value n =
  if Atomic.get TB.checked then Kb.sgd_step ~lr ~grad ~value n
  else c_sgd_step lr grad value n

let adam_step ~lr ~beta1 ~beta2 ~eps ~bc1 ~bc2 ~m ~v ~grad ~value n =
  if Atomic.get TB.checked then
    Kb.adam_step ~lr ~beta1 ~beta2 ~eps ~bc1 ~bc2 ~m ~v ~grad ~value n
  else c_adam_step lr beta1 beta2 eps bc1 bc2 m v grad value n

(* {2 Fused capabilities}

   Advertised unconditionally; the dispatch layer only takes the fused
   route outside checked mode (under PNN_CHECKED=1 it decomposes so every
   constituent runs its bounds-checked body). *)

let matmul_bias_unop =
  Some
    (fun op ~x ~w ~b ~pre ~out m k n ->
      let code = match op with None -> -1 | Some u -> unop_code u in
      c_matmul_bias_unop code x w b pre out m k n)

let adam_step_many =
  Some
    (fun ~lr ~beta1 ~beta2 ~eps ~bc1 ~bc2 items ->
      c_adam_step_many lr beta1 beta2 eps bc1 bc2 items)
