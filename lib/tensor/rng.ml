(* pnnlint:allow R7 generators are sequential by contract: parallel code
   derives an independent stream per domain via [split], never sharing one *)
type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

(* splitmix64: expands a single seed into well-distributed 64-bit words; the
   recommended way to seed xoshiro generators. *)
let splitmix64 state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create seed =
  let state = ref (Int64.of_int seed) in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3 }

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let state t = [| t.s0; t.s1; t.s2; t.s3 |]

let set_state t words =
  if Array.length words <> 4 then invalid_arg "Rng.set_state: need 4 words";
  t.s0 <- words.(0);
  t.s1 <- words.(1);
  t.s2 <- words.(2);
  t.s3 <- words.(3)

let of_state words =
  let t = { s0 = 0L; s1 = 0L; s2 = 0L; s3 = 0L } in
  set_state t words;
  t

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

(* xoshiro256** next *)
let uint64 t =
  let open Int64 in
  let result = mul (rotl (mul t.s1 5L) 7) 9L in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  let seed = Int64.to_int (uint64 t) in
  create (seed lxor 0x5851F42D)

let float t =
  (* Top 53 bits -> [0,1) with full double resolution. *)
  let bits = Int64.shift_right_logical (uint64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let uniform t ~lo ~hi =
  if hi < lo then invalid_arg "Rng.uniform: hi < lo";
  lo +. ((hi -. lo) *. float t)

let int t n =
  if n <= 0 then invalid_arg "Rng.int: n <= 0";
  (* Rejection-free for our purposes: modulo bias is negligible for n << 2^62.
     [land max_int] forces a non-negative OCaml int after truncation. *)
  let v = Int64.to_int (uint64 t) land max_int in
  v mod n

let normal t =
  (* Box–Muller; guard against log 0. *)
  let u1 = Stdlib.max (float t) 1e-300 in
  let u2 = float t in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let gaussian t ~mu ~sigma = mu +. (sigma *. normal t)

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let perm t n =
  let a = Array.init n (fun i -> i) in
  shuffle t a;
  a
