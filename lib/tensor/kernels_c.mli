(** C-stub kernel backend — vectorized foreign stubs on flat Float64 storage.

    Same [buf] as {!Kernels_ba}; hot kernels run in C
    (pnn_kernels_stubs.c, compiled -O2 -fno-fast-math -ffp-contract=off).
    Per-element kernels are bit-identical to the reference backend; the
    matmul family re-associates deterministically, replicating
    {!Kernels_ba}'s register-blocked association, behind its own +c64
    cache tag.  This backend is the only one advertising the fused
    [matmul_bias_unop] / [adam_step_many] capabilities.  Only the dispatch
    layer in {!Tensor} may call these directly (pnnlint R6 enforces the
    boundary outside [lib/tensor]). *)

include
  Tensor_backend.KERNELS
    with type buf =
      (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t
