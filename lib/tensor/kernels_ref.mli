(** Reference kernel backend on [float array] — the bit-identity oracle.

    Every core performs the exact floating-point operations, in the exact
    order, of the pre-backend tensor/autodiff/optimizer loops; golden
    trajectories and the determinism suite are pinned against it.  Only the
    dispatch layer in {!Tensor} may call these directly (pnnlint R6 enforces
    the boundary outside [lib/tensor]). *)

include Tensor_backend.KERNELS with type buf = float array
