(** Dense 2-D float tensors.

    Every value is a row-major matrix of shape [rows × cols]; vectors are
    represented as [1 × n] row matrices.  All binary operations check shapes
    and raise [Invalid_argument] with the offending shapes on mismatch — the
    autodiff layer and the pNN rely on these checks to catch wiring mistakes
    early.

    Storage lives behind a pluggable kernel backend (see {!section:backends});
    the element type is always [float] (IEEE binary64) regardless of
    backend. *)

type t

(** {1:backends Kernel backends}

    Each tensor's flat buffer is owned by one of three kernel backends:

    - {!Reference} — plain [float array] loops, operation-for-operation
      identical to the pre-backend implementation.  The bit-identity oracle:
      golden trajectories, the determinism suite, and cached experiment
      results are pinned against it.  The default.
    - {!Bigarray64} — flat c_layout [Bigarray.Array1] [float64] storage with
      unrolled/blocked hot loops (register-blocked matmul, stride-free
      elementwise).  Per-element kernels (elementwise, broadcasts,
      nonlinearities, reductions, optimizer steps) perform the exact same
      floating-point operations in the exact same order as the reference
      backend and agree with it bit-for-bit.  Only [matmul]/[matmul_nt]
      re-associate their accumulations and may differ in the last few ulps —
      deterministically: the same program produces bitwise-identical results
      run-to-run within this backend.
    - {!C64} — the same flat Float64 storage with the hot kernels as
      vectorized C foreign stubs (compiled [-O2 -fno-fast-math
      -ffp-contract=off], so C float semantics stay IEEE-strict).
      Per-element kernels are bit-identical to the reference backend; the
      matmul family re-associates deterministically (replicating
      {!Bigarray64}'s register-blocked association).  The only backend with
      fused layer-forward / Adam kernels (used automatically by the
      autodiff and optimizer hot paths; see {!matmul_bias_unop_into}).

    Selection: [PNN_BACKEND=reference|bigarray|c] in the environment (read
    at module initialization) or {!set_backend}.  The active backend decides
    where {e constructors} ({!zeros}, {!create}, {!uniform}, …) allocate;
    operations allocate their result on their {e first operand's} backend, so
    a computation stays on one backend even if the flag changes mid-run.
    Mixed-backend operands are supported (results are computed with the
    reference kernels), but the intended use is to pick one backend per
    process.  Cached experiment results are keyed by {!backend_tag} so runs
    never observe another backend's numerics. *)

type backend = Tensor_backend.id = Reference | Bigarray64 | C64

val backend : unit -> backend
(** The active backend used by constructors. *)

val set_backend : backend -> unit

val backend_of_string : string -> backend option
(** Accepts ["reference"]/["ref"], ["bigarray"]/["bigarray64"]/["ba64"] and
    ["c"]/["c64"]. *)

val backend_name : backend -> string
(** ["reference"], ["bigarray"] or ["c"] — inverse of {!backend_of_string}. *)

val backends : backend list
(** Every live backend, in registry order — the single source the CLI
    surfaces and the test matrix enumerate. *)

val backend_choices : string
(** The canonical names joined with ["|"] (["reference|bigarray|c"]), for
    [--backend] help text and error messages. *)

val backend_tag : unit -> string
(** Short stable tag of the active backend (["ref"] / ["ba64"] / ["c64"])
    folded into cache keys so cached results never cross backends. *)

val backend_of : t -> backend
(** The backend owning this tensor's storage. *)

(** {1 Sanitizer (checked) mode}

    Every kernel carries two loop bodies performing identical floating-point
    operations in identical order: a raw one using unchecked indexing and a
    bounds-checked one.  Setting [PNN_CHECKED=1] in the environment (read at
    module initialization) or calling [set_checked true] selects the checked
    bodies; results are bit-identical across modes, only out-of-bounds
    behavior differs (checked mode raises [Invalid_argument]).  Checked mode
    composes with either backend.  CI runs the determinism suite once under
    [PNN_CHECKED=1]. *)

val set_checked : bool -> unit
val checked : unit -> bool

(** {1 Construction} *)

val create : int -> int -> float array -> t
(** [create rows cols data] builds a tensor from [data] (length must equal
    [rows * cols]).  On the [Reference] backend the array is wrapped without
    copying; other backends copy.  Callers must not retain [data]. *)

val zeros : int -> int -> t
val ones : int -> int -> t
val full : int -> int -> float -> t

val init : int -> int -> (int -> int -> float) -> t
(** [init rows cols f] with [f row col] supplying each element; [f] is called
    in row-major order (RNG-backed constructors rely on the draw order). *)

val scalar : float -> t
(** A [1 × 1] tensor. *)

val of_array : float array -> t
(** Row vector [1 × n] sharing no storage with the argument. *)

val of_arrays : float array array -> t
(** Matrix from rows; all rows must have equal length. *)

val row_of_list : float list -> t

val copy : t -> t
(** Deep copy on the same backend as the argument. *)

val uniform : Rng.t -> int -> int -> lo:float -> hi:float -> t
val gaussian : Rng.t -> int -> int -> mu:float -> sigma:float -> t

val zeros_as : t -> int -> int -> t
(** [zeros_as exemplar rows cols] is {!zeros} allocated on [exemplar]'s
    backend rather than the active one — the way autodiff scratch and
    gradient buffers follow their value tensors. *)

(** {1 Access} *)

val rows : t -> int
val cols : t -> int
val numel : t -> int
val shape : t -> int * int
val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit
val row : t -> int -> t
(** Extract one row as a [1 × cols] tensor (copy). *)

val to_array : t -> float array
(** Fresh copy of the underlying data, row-major (never a live view,
    regardless of backend). *)

val to_arrays : t -> float array array

(** {1 Elementwise} *)

val map : (float -> float) -> t -> t
val map2 : (float -> float -> float) -> t -> t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
(** Hadamard product. *)

val div : t -> t -> t
val neg : t -> t
val scale : float -> t -> t
val add_scalar : float -> t -> t

val clamp : lo:float -> hi:float -> t -> t
(** Entrywise [max lo (min hi x)] via the comparison chain
    [if x < lo then lo else if x > hi then hi else x].  NaN entries pass
    through {e unchanged}: both comparisons are false for NaN, so the result
    keeps the NaN rather than snapping it to a bound.  Downstream fault
    detection relies on clamp not masking NaNs — both backends implement this
    contract bit-identically. *)

(** {1 Broadcast helpers} *)

val add_rowvec : t -> t -> t
(** [add_rowvec m v] adds the [1 × cols] vector [v] to every row of [m]. *)

val mul_rowvec : t -> t -> t
val add_colvec : t -> t -> t
(** [add_colvec m v] adds the [rows × 1] vector [v] to every column of [m]. *)

val mul_colvec : t -> t -> t
val div_colvec : t -> t -> t

(** {1 Linear algebra} *)

val matmul : t -> t -> t

val matmul_nt : t -> t -> t
(** [matmul_nt a b] is [matmul a (transpose b)] (requires
    [cols a = cols b]) without materializing the transpose; on each backend,
    results are bit-identical to that backend's [matmul] formulation.  Used
    on the autodiff matmul backward path. *)

val transpose : t -> t
val dot : t -> t -> float
(** Inner product of two tensors of identical shape. *)

(** {1 Reductions} *)

val sum : t -> float
val mean : t -> float

val min_value : t -> float
(** Minimum entry, folded left with the IEEE select
    [if acc <= x then acc else x] starting from the first element.  With any
    NaN present the result depends on position — a NaN {e accumulator}
    propagates (every comparison is false, so [x] is chosen only… never;
    once the accumulator is NaN it stays NaN), while a NaN {e element} is
    skipped; [-0.0] and [0.0] compare equal, so whichever is encountered
    first wins.  Both backends agree bitwise.  Raises on empty tensors. *)

val max_value : t -> float
(** Dual of {!min_value} ([if acc >= x then acc else x]); same NaN and
    signed-zero behavior, bitwise identical across backends. *)

val sum_rows : t -> t
(** Column-wise sum: result is [1 × cols]. *)

val sum_cols : t -> t
(** Row-wise sum: result is [rows × 1]. *)

val argmax_rows : t -> int array
(** Index of the maximum entry of each row, first maximum winning (strict
    [>] against the incumbent).  A NaN never displaces the incumbent (strict
    comparison is false), but a leading NaN at column 0 becomes an incumbent
    that nothing displaces — so [argmax] of a row starting with NaN is [0].
    [-0.0] does not displace [0.0] (they compare equal).  Both backends agree
    exactly. *)

(** {1 Assembly} *)

val concat_cols : t -> t -> t
(** Horizontal concatenation of matrices with equal row counts. *)

val concat_rows : t -> t -> t
val slice_rows : t -> int -> int -> t
(** [slice_rows m start len]. *)

val slice_cols : t -> int -> int -> t
val take_rows : t -> int array -> t
(** Gather rows by index (used for dataset splits). *)

(** {1 In-place (destination-passing) kernels}

    Allocation-free counterparts of the operations above: each [*_into]
    kernel writes its result into [dst] and performs the {e exact same
    floating-point operations in the exact same order} as the allocating
    version, so results are bit-identical — the autodiff scratch buffers and
    the variation-aware training hot path rely on this for determinism.

    Aliasing convention: elementwise kernels ([add_into] … [map2_into],
    [neg_into], [scale_into], [add_scalar_into], [clamp_into], and the
    [*_rowvec_into] broadcasts) read and write only index [i] (resp.
    [(r, c)]) at a time, so [dst] may alias an input.  All other kernels
    (matmul, transpose, slices, embeds, concats, reductions,
    [broadcast_rowvec_into]) require [dst] to be distinct from every input;
    aliasing them is undefined (and not checked).

    All kernels raise [Invalid_argument] if [dst] has the wrong shape. *)

val fill : t -> float -> unit
(** Set every entry. *)

val blit : src:t -> dst:t -> unit
(** Copy [src] into [dst] (same shape; backends may differ). *)

val map_into : (float -> float) -> t -> dst:t -> unit
val map2_into : (float -> float -> float) -> t -> t -> dst:t -> unit
val add_into : t -> t -> dst:t -> unit
val sub_into : t -> t -> dst:t -> unit
val mul_into : t -> t -> dst:t -> unit
val div_into : t -> t -> dst:t -> unit
val neg_into : t -> dst:t -> unit
val scale_into : float -> t -> dst:t -> unit
val add_scalar_into : float -> t -> dst:t -> unit

val clamp_into : lo:float -> hi:float -> t -> dst:t -> unit
(** In-place {!clamp}; same NaN pass-through contract. *)

val add_rowvec_into : t -> t -> dst:t -> unit
val mul_rowvec_into : t -> t -> dst:t -> unit

val broadcast_rowvec_into : t -> dst:t -> unit
(** Every row of [dst] := the [1 × cols] vector.  Bit-identical to
    [mul_rowvec (ones …) v] (multiplying by 1.0 is exact). *)

val matmul_into : t -> t -> dst:t -> unit
val matmul_nt_into : t -> t -> dst:t -> unit
val transpose_into : t -> dst:t -> unit
val sum_rows_into : t -> dst:t -> unit
(** [dst] is [1 × cols]. *)

val sum_cols_into : t -> dst:t -> unit
(** [dst] is [rows × 1]. *)

val slice_cols_into : t -> int -> int -> dst:t -> unit
(** [slice_cols_into t start len ~dst] with [dst] of shape [rows × len]. *)

val slice_rows_into : t -> int -> int -> dst:t -> unit

val embed_cols_into : t -> int -> dst:t -> unit
(** [embed_cols_into src start ~dst]: [dst] := zeros except columns
    [start, start + cols src) := [src] — the scatter adjoint of
    {!slice_cols}. *)

val embed_rows_into : t -> int -> dst:t -> unit
val concat_cols_into : t -> t -> dst:t -> unit
val concat_rows_into : t -> t -> dst:t -> unit

(** {1 Nonlinearity and training-path kernels}

    Backend-owned loops for the autodiff tape and the optimizer.  Routing
    them through this module keeps raw backend buffers from escaping
    [lib/tensor] (pnnlint R6). *)

type unop = Tensor_backend.unop =
  | Tanh
  | Sigmoid
  | Exp
  | Log
  | Sqrt
  | Relu
  | Abs

val unop_into : unop -> t -> dst:t -> unit
(** Forward nonlinearity, elementwise ([dst] may alias the input). *)

val unop_bwd_into : unop -> x:t -> y:t -> g:t -> dst:t -> unit
(** Backward pass of [unop]: [dst.(i) := g.(i) * d/dx op] evaluated from the
    forward input [x] and output [y] (each formula reads whichever is
    cheaper, e.g. tanh uses [y], log uses [x]).  [dst] may alias [g]. *)

val softmax_rows_into : t -> dst:t -> unit
(** Numerically-stable row-wise softmax (max-shifted); [dst] must not alias
    the input. *)

val ce_loss_sum : t -> t -> float
(** [ce_loss_sum probs labels] is the {e summed} cross-entropy
    [-Σ y·log (max p 1e-30)] over all entries; callers divide by the batch
    size for the mean. *)

val sgd_step : lr:float -> grad:t -> t -> unit
(** [sgd_step ~lr ~grad value]: [value := value - lr * grad], in place. *)

val adam_step :
  lr:float ->
  beta1:float ->
  beta2:float ->
  eps:float ->
  bc1:float ->
  bc2:float ->
  m:float array ->
  v:float array ->
  grad:t ->
  t ->
  unit
(** One Adam update in place on the value tensor; [m]/[v] are the caller-owned
    first/second-moment buffers ([bc1]/[bc2] the bias corrections
    [1 - betaᵢ^t]). *)

(** {1 Fused hot-path kernels}

    Single-call fusions of the dominant kernel sequences.  Each routes to a
    backend's fused capability when every operand lives on that backend,
    the backend advertises it, and checked mode is off; otherwise it
    decomposes into the exact kernel sequence the fused implementation
    replicates.  Both routes are bit-identical on a given backend — the
    fusion only removes dispatch and loop-restart overhead, never changes
    float operations or their order. *)

val matmul_bias_unop_into : ?op:unop -> t -> t -> t -> pre:t -> out:t -> unit
(** [matmul_bias_unop_into ?op x w b ~pre ~out] is the dense-layer forward:
    [pre := x·w +rowvec b], then [out := op pre] (with [?op] absent, [out]
    becomes a copy of [pre]; passing [out == pre] skips the copy).  [pre]
    and [out] must not alias [x], [w] or [b]; [out] may alias [pre]. *)

val adam_step_many :
  lr:float ->
  beta1:float ->
  beta2:float ->
  eps:float ->
  bc1:float ->
  bc2:float ->
  (t * t * float array * float array) list ->
  unit
(** One Adam update over every [(value, grad, m, v)] parameter leaf —
    semantically (and bitwise) per-leaf {!adam_step} calls, fused into one
    kernel invocation when the backend allows. *)

(** {1 Comparison and printing} *)

(** [equal ?eps a b] is shape equality plus entrywise [|a - b| <= eps]
    (default exact).  Any NaN entry on either side makes the result [false]
    (IEEE comparison semantics): a NaN never equals anything, including
    another NaN. *)
val equal : ?eps:float -> t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
