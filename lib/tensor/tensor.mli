(** Dense 2-D float tensors.

    Every value is a row-major matrix of shape [rows × cols]; vectors are
    represented as [1 × n] row matrices.  All binary operations check shapes
    and raise [Invalid_argument] with the offending shapes on mismatch — the
    autodiff layer and the pNN rely on these checks to catch wiring mistakes
    early. *)

type t = private { rows : int; cols : int; data : float array }

(** {1 Sanitizer (checked) mode}

    Every kernel carries two loop bodies performing identical floating-point
    operations in identical order: a raw one using unchecked indexing and a
    bounds-checked one.  Setting [PNN_CHECKED=1] in the environment (read at
    module initialization) or calling [set_checked true] selects the checked
    bodies; results are bit-identical across modes, only out-of-bounds
    behavior differs (checked mode raises [Invalid_argument]).  CI runs the
    determinism suite once under [PNN_CHECKED=1]. *)

val set_checked : bool -> unit
val checked : unit -> bool

(** {1 Construction} *)

val create : int -> int -> float array -> t
(** [create rows cols data] wraps [data] (length must equal [rows * cols]). *)

val zeros : int -> int -> t
val ones : int -> int -> t
val full : int -> int -> float -> t

val init : int -> int -> (int -> int -> float) -> t
(** [init rows cols f] with [f row col] supplying each element. *)

val scalar : float -> t
(** A [1 × 1] tensor. *)

val of_array : float array -> t
(** Row vector [1 × n] sharing no storage with the argument. *)

val of_arrays : float array array -> t
(** Matrix from rows; all rows must have equal length. *)

val row_of_list : float list -> t

val copy : t -> t

val uniform : Rng.t -> int -> int -> lo:float -> hi:float -> t
val gaussian : Rng.t -> int -> int -> mu:float -> sigma:float -> t

(** {1 Access} *)

val rows : t -> int
val cols : t -> int
val numel : t -> int
val shape : t -> int * int
val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit
val row : t -> int -> t
(** Extract one row as a [1 × cols] tensor (copy). *)

val to_array : t -> float array
(** Fresh copy of the underlying data, row-major. *)

val to_arrays : t -> float array array

(** {1 Elementwise} *)

val map : (float -> float) -> t -> t
val map2 : (float -> float -> float) -> t -> t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
(** Hadamard product. *)

val div : t -> t -> t
val neg : t -> t
val scale : float -> t -> t
val add_scalar : float -> t -> t
val clamp : lo:float -> hi:float -> t -> t

(** {1 Broadcast helpers} *)

val add_rowvec : t -> t -> t
(** [add_rowvec m v] adds the [1 × cols] vector [v] to every row of [m]. *)

val mul_rowvec : t -> t -> t
val add_colvec : t -> t -> t
(** [add_colvec m v] adds the [rows × 1] vector [v] to every column of [m]. *)

val mul_colvec : t -> t -> t
val div_colvec : t -> t -> t

(** {1 Linear algebra} *)

val matmul : t -> t -> t

val matmul_nt : t -> t -> t
(** [matmul_nt a b] is [matmul a (transpose b)] (requires
    [cols a = cols b]) without materializing the transpose; results are
    bit-identical to that formulation.  Used on the autodiff matmul backward
    path. *)

val transpose : t -> t
val dot : t -> t -> float
(** Inner product of two tensors of identical shape. *)

(** {1 Reductions} *)

val sum : t -> float
val mean : t -> float
val min_value : t -> float
val max_value : t -> float
val sum_rows : t -> t
(** Column-wise sum: result is [1 × cols]. *)

val sum_cols : t -> t
(** Row-wise sum: result is [rows × 1]. *)

val argmax_rows : t -> int array
(** Index of the maximum entry of each row. *)

(** {1 Assembly} *)

val concat_cols : t -> t -> t
(** Horizontal concatenation of matrices with equal row counts. *)

val concat_rows : t -> t -> t
val slice_rows : t -> int -> int -> t
(** [slice_rows m start len]. *)

val slice_cols : t -> int -> int -> t
val take_rows : t -> int array -> t
(** Gather rows by index (used for dataset splits). *)

(** {1 In-place (destination-passing) kernels}

    Allocation-free counterparts of the operations above: each [*_into]
    kernel writes its result into [dst] and performs the {e exact same
    floating-point operations in the exact same order} as the allocating
    version, so results are bit-identical — the autodiff scratch buffers and
    the variation-aware training hot path rely on this for determinism.

    Aliasing convention: elementwise kernels ([add_into] … [map2_into],
    [neg_into], [scale_into], [add_scalar_into], and the [*_rowvec_into]
    broadcasts) read and write only index [i] (resp. [(r, c)]) at a time, so
    [dst] may alias an input.  All other kernels (matmul, transpose, slices,
    embeds, concats, reductions, [broadcast_rowvec_into]) require [dst] to be
    distinct from every input; aliasing them is undefined (and not checked).

    All kernels raise [Invalid_argument] if [dst] has the wrong shape. *)

val fill : t -> float -> unit
(** Set every entry. *)

val blit : src:t -> dst:t -> unit
(** Copy [src] into [dst] (same shape). *)

val map_into : (float -> float) -> t -> dst:t -> unit
val map2_into : (float -> float -> float) -> t -> t -> dst:t -> unit
val add_into : t -> t -> dst:t -> unit
val sub_into : t -> t -> dst:t -> unit
val mul_into : t -> t -> dst:t -> unit
val div_into : t -> t -> dst:t -> unit
val neg_into : t -> dst:t -> unit
val scale_into : float -> t -> dst:t -> unit
val add_scalar_into : float -> t -> dst:t -> unit
val add_rowvec_into : t -> t -> dst:t -> unit
val mul_rowvec_into : t -> t -> dst:t -> unit

val broadcast_rowvec_into : t -> dst:t -> unit
(** Every row of [dst] := the [1 × cols] vector.  Bit-identical to
    [mul_rowvec (ones …) v] (multiplying by 1.0 is exact). *)

val matmul_into : t -> t -> dst:t -> unit
val matmul_nt_into : t -> t -> dst:t -> unit
val transpose_into : t -> dst:t -> unit
val sum_rows_into : t -> dst:t -> unit
(** [dst] is [1 × cols]. *)

val sum_cols_into : t -> dst:t -> unit
(** [dst] is [rows × 1]. *)

val slice_cols_into : t -> int -> int -> dst:t -> unit
(** [slice_cols_into t start len ~dst] with [dst] of shape [rows × len]. *)

val slice_rows_into : t -> int -> int -> dst:t -> unit

val embed_cols_into : t -> int -> dst:t -> unit
(** [embed_cols_into src start ~dst]: [dst] := zeros except columns
    [start, start + cols src) := [src] — the scatter adjoint of
    {!slice_cols}. *)

val embed_rows_into : t -> int -> dst:t -> unit
val concat_cols_into : t -> t -> dst:t -> unit
val concat_rows_into : t -> t -> dst:t -> unit

(** {1 Comparison and printing} *)

(** [equal ?eps a b] is shape equality plus entrywise [|a - b| <= eps]
    (default exact).  Any NaN entry on either side makes the result [false]
    (IEEE comparison semantics): a NaN never equals anything, including
    another NaN. *)
val equal : ?eps:float -> t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
