(** Descriptive statistics over float arrays (used for Monte-Carlo result
    aggregation: the paper reports mean ± std over variation samples). *)

val mean : float array -> float
(** Arithmetic mean. Raises [Invalid_argument] on empty input. *)

val variance : float array -> float
(** Population variance (divides by [n], matching the Monte-Carlo estimator of
    the paper's reported std over test samples). *)

val std : float array -> float
val min : float array -> float
val max : float array -> float
val median : float array -> float
val quantile : float array -> float -> float
(** [quantile a q] with [q] in [\[0,1]]; linear interpolation between order
    statistics (sorted with [Float.compare]).  Raises [Invalid_argument] on
    empty input, [q] outside [\[0,1]], or any NaN entry (a NaN has no order
    statistic). *)

val mean_std : float array -> float * float
