type config = {
  max_epochs : int;
  patience : int;
  min_delta : float;
  log_every : int;
  val_every : int;
}

let default_config =
  { max_epochs = 1000; patience = 100; min_delta = 0.0; log_every = 0; val_every = 1 }

type history = {
  train_losses : float array;
  val_losses : float array;
  best_epoch : int;
  best_val_loss : float;
  stopped_early : bool;
}

type state = {
  (* pnnlint:allow R7 epoch-loop bookkeeping confined to the domain running
     [fit]; parallel experiment replicas each own a private state *)
  mutable epoch : int;
  mutable train_hist : float list;
  mutable val_hist : float list;
  mutable best_val : float;
  mutable best_epoch : int;
  mutable epochs_since_best : int;
  mutable stopped_early : bool;
}

let fresh_state () =
  {
    epoch = 0;
    train_hist = [];
    val_hist = [];
    best_val = infinity;
    best_epoch = 0;
    epochs_since_best = 0;
    stopped_early = false;
  }

let run ?state ?on_epoch ~config ~optimizers ~train_loss ~val_loss ~snapshot
    ~restore () =
  if config.val_every < 1 then invalid_arg "Train.run: val_every < 1";
  let st = match state with Some s -> s | None -> fresh_state () in
  (try
     for epoch = st.epoch to config.max_epochs - 1 do
       let loss = train_loss () in
       Autodiff.backward loss;
       List.iter (fun (opt, ps) -> Optimizer.step opt ps) optimizers;
       let tl = Tensor.get (Autodiff.value loss) 0 0 in
       st.train_hist <- tl :: st.train_hist;
       st.epochs_since_best <- st.epochs_since_best + 1;
       if epoch mod config.val_every = 0 then begin
         let vl = val_loss () in
         st.val_hist <- vl :: st.val_hist;
         if config.log_every > 0 && epoch mod config.log_every = 0 then
           Logs.info (fun m ->
               m "epoch %d: train %.5f val %.5f (best %.5f @%d)" epoch tl vl
                 st.best_val st.best_epoch);
         if vl < st.best_val -. config.min_delta then begin
           st.best_val <- vl;
           st.best_epoch <- epoch;
           st.epochs_since_best <- 0;
           snapshot ()
         end
         else if st.epochs_since_best > config.patience then begin
           st.stopped_early <- true;
           raise Exit
         end
       end;
       st.epoch <- epoch + 1;
       match on_epoch with Some f -> f st | None -> ()
     done
   with Exit -> ());
  if st.best_val < infinity then restore ();
  {
    train_losses = Array.of_list (List.rev st.train_hist);
    val_losses = Array.of_list (List.rev st.val_hist);
    best_epoch = st.best_epoch;
    best_val_loss = st.best_val;
    stopped_early = st.stopped_early;
  }
