(** Gradient-based optimizers.

    An optimizer owns per-parameter state keyed by the parameter node, so the
    same optimizer instance must be used across steps.  [step] consumes the
    gradients accumulated by the last {!Autodiff.backward} and updates the
    parameter tensors in place.

    The paper trains with Adam (default settings) and two learning rates:
    α_θ = 0.1 for crossbar conductances and α_ω ∈ {0, 0.005} for the
    nonlinear-circuit parameters — hence [step] takes the parameter list, and
    distinct optimizers can drive distinct parameter groups. *)

type t

val sgd : lr:float -> t
val adam : ?beta1:float -> ?beta2:float -> ?eps:float -> lr:float -> unit -> t
(** Defaults: beta1 = 0.9, beta2 = 0.999, eps = 1e-8 (Kingma & Ba). *)

val step : t -> Autodiff.t list -> unit
(** Apply one update to every parameter in the list using its current
    gradient. Raises [Invalid_argument] if a node is not a parameter.
    Updates run in place: parameter tensors and the Adam moment estimates
    are mutated directly, with no per-step tensor allocation (beyond the
    one-time state created on a parameter's first step). *)

val lr : t -> float
val set_lr : t -> float -> unit
(** Mutate the learning rate (for schedules). *)

val state_lines : t -> Autodiff.t list -> string list
(** Serialize the optimizer's per-parameter state for the given parameter
    group as text lines ([%h] floats, bit-exact).  State is addressed
    positionally by the list, so {!restore_state} must be given the same
    parameters in the same order. *)

val restore_state : t -> Autodiff.t list -> string list -> string list
(** [restore_state t params lines] consumes this optimizer's section from
    [lines] (re-keying moment estimates onto [params]) and returns the
    remaining lines.  Raises [Failure] on malformed input, a parameter-count
    or size mismatch, or an algorithm mismatch. *)
