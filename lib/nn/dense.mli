(** A fully-connected layer [y = x·W + b]. *)

type t = { w : Autodiff.t; b : Autodiff.t }

val create : Rng.t -> ?init:Init.scheme -> inputs:int -> outputs:int -> unit -> t
val forward : t -> Autodiff.t -> Autodiff.t
val forward_tensor : t -> Tensor.t -> Tensor.t

val forward_fused : Activation.t -> t -> Autodiff.t -> Autodiff.t
(** [forward_fused act t x] is [Activation.apply act (forward t x)] as one
    fused node — bit-identical values and gradients, one kernel call on
    backends with the fused capability. *)

val forward_tensor_fused : Activation.t -> t -> Tensor.t -> Tensor.t
(** Tape-free fused counterpart of
    [Activation.apply_tensor act (forward_tensor t x)]. *)

val params : t -> Autodiff.t list
val inputs : t -> int
val outputs : t -> int
val snapshot : t -> Tensor.t * Tensor.t
(** Copies of the current weights (for best-epoch restoration). *)

val restore : t -> Tensor.t * Tensor.t -> unit
(** Write a snapshot back into the layer's parameters in place. *)
