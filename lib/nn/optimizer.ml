type adam_state = { m : float array; v : float array }

type algo =
  | Sgd
  | Adam of {
      beta1 : float;
      beta2 : float;
      eps : float;
      mutable t : int;
      table : (int, adam_state) Hashtbl.t;
    }

(* pnnlint:allow R7 optimizer state is per-trainer and stays on the domain
   running the update loop; parallel sweeps build one optimizer per worker *)
type t = { mutable lr : float; algo : algo }

let sgd ~lr = { lr; algo = Sgd }

let adam ?(beta1 = 0.9) ?(beta2 = 0.999) ?(eps = 1e-8) ~lr () =
  { lr; algo = Adam { beta1; beta2; eps; t = 0; table = Hashtbl.create 16 } }

let lr t = t.lr
let set_lr t v = t.lr <- v

(* Parameter leaves persist across training steps (graphs are rebuilt around
   them), so the node id is a stable key for per-parameter state. *)
let key_of node = Autodiff.id node

(* {2 Checkpoint codec}

   Self-describing text lines mirroring lib/core/serialize.ml's conventions
   ([%h] floats for bit-exact round-trips, explicit counts so empty arrays
   parse unambiguously).  Hashtbl keys are process-local node ids, so the
   codec addresses state positionally by the caller's parameter list and
   re-keys on restore. *)

let float_words a =
  if Array.length a = 0 then ""
  else
    " " ^ String.concat " " (Array.to_list (Array.map (Printf.sprintf "%h") a))

let moment_line label a =
  Printf.sprintf "%s %d%s" label (Array.length a) (float_words a)

let moment_of_line label line =
  match String.split_on_char ' ' (String.trim line) with
  | l :: n :: words when l = label && int_of_string_opt n = Some (List.length words)
    ->
      Array.of_list (List.map float_of_string words)
  | _ -> failwith (Printf.sprintf "Optimizer: bad %s line" label)

let param_size node = Tensor.numel (Autodiff.value node)

let state_lines t params =
  match t.algo with
  | Sgd -> [ "sgd" ]
  | Adam a ->
      let per_param node =
        let s =
          match Hashtbl.find_opt a.table (key_of node) with
          | Some s -> s
          | None ->
              (* never stepped yet: zeros are what the first step would see *)
              let n = param_size node in
              { m = Array.make n 0.0; v = Array.make n 0.0 }
        in
        [ moment_line "m" s.m; moment_line "v" s.v ]
      in
      Printf.sprintf "adam %d %d" a.t (List.length params)
      :: List.concat_map per_param params

let restore_state t params lines =
  match (t.algo, lines) with
  | Sgd, "sgd" :: rest -> rest
  | Adam a, first :: rest -> (
      match String.split_on_char ' ' (String.trim first) with
      | [ "adam"; tt; np ] ->
          if int_of_string np <> List.length params then
            failwith "Optimizer: parameter count mismatch";
          a.t <- int_of_string tt;
          Hashtbl.reset a.table;
          List.fold_left
            (fun lines node ->
              match lines with
              | ml :: vl :: rest ->
                  let m = moment_of_line "m" ml
                  and v = moment_of_line "v" vl in
                  let n = param_size node in
                  if Array.length m <> n || Array.length v <> n then
                    failwith "Optimizer: moment size mismatch";
                  Hashtbl.replace a.table (key_of node) { m; v };
                  rest
              | _ -> failwith "Optimizer: truncated state")
            rest params
      | _ -> failwith "Optimizer: bad state header")
  | _, _ -> failwith "Optimizer: algorithm/state mismatch"

let step t nodes =
  List.iter
    (fun node ->
      if not (Autodiff.is_param node) then
        invalid_arg "Optimizer.step: node is not a parameter")
    nodes;
  match t.algo with
  | Sgd ->
      List.iter
        (fun node ->
          let value = Autodiff.value node and grad = Autodiff.grad node in
          Tensor.sgd_step ~lr:t.lr ~grad value)
        nodes
  | Adam a ->
      a.t <- a.t + 1;
      let bc1 = 1.0 -. (a.beta1 ** float_of_int a.t) in
      let bc2 = 1.0 -. (a.beta2 ** float_of_int a.t) in
      (* One fused call over all leaves (single stub call on backends with
         the capability); per-item updates are bit-identical to the former
         per-node Tensor.adam_step loop. *)
      let items =
        List.map
          (fun node ->
            let value = Autodiff.value node and grad = Autodiff.grad node in
            let n = param_size node in
            let state =
              let k = key_of node in
              match Hashtbl.find_opt a.table k with
              | Some s -> s
              | None ->
                  let s = { m = Array.make n 0.0; v = Array.make n 0.0 } in
                  Hashtbl.add a.table k s;
                  s
            in
            (value, grad, state.m, state.v))
          nodes
      in
      Tensor.adam_step_many ~lr:t.lr ~beta1:a.beta1 ~beta2:a.beta2 ~eps:a.eps
        ~bc1 ~bc2 items
