type t = {
  layers : Dense.t list;
  hidden : Activation.t;
  output : Activation.t;
  arch : int list;
}

let create rng ~sizes ~hidden ~output =
  let rec pairs = function
    | a :: (b :: _ as rest) -> (a, b) :: pairs rest
    | [ _ ] | [] -> []
  in
  if List.length sizes < 2 then invalid_arg "Mlp.create: need at least 2 sizes";
  let layers =
    List.map
      (fun (inputs, outputs) -> Dense.create rng ~inputs ~outputs ())
      (pairs sizes)
  in
  { layers; hidden; output; arch = sizes }

(* All three forwards route each layer + activation through the fused dense
   path (one node / one kernel call instead of three) — bit-identical to the
   former matmul/add_rowvec/activation chains. *)
let rec forward_layers act_hidden act_out layers x =
  match layers with
  | [] -> x
  | [ last ] -> Dense.forward_fused act_out last x
  | l :: rest ->
      forward_layers act_hidden act_out rest (Dense.forward_fused act_hidden l x)

let forward t x = forward_layers t.hidden t.output t.layers x

let forward_tensor t x =
  let rec go layers x =
    match layers with
    | [] -> x
    | [ last ] -> Dense.forward_tensor_fused t.output last x
    | l :: rest -> go rest (Dense.forward_tensor_fused t.hidden l x)
  in
  go t.layers x

let forward_frozen t x =
  (* Same computation as [forward] but weights enter as constants, so the
     backward pass does not touch them. *)
  let frozen_forward act layer x =
    let w = Autodiff.const (Autodiff.value layer.Dense.w) in
    let b = Autodiff.const (Autodiff.value layer.Dense.b) in
    Autodiff.dense ?op:(Activation.unop act) x w b
  in
  let rec go layers x =
    match layers with
    | [] -> x
    | [ last ] -> frozen_forward t.output last x
    | l :: rest -> go rest (frozen_forward t.hidden l x)
  in
  go t.layers x

let params t = List.concat_map Dense.params t.layers
let sizes t = t.arch
let snapshot t = List.map Dense.snapshot t.layers
let restore t snaps = List.iter2 Dense.restore t.layers snaps

(* {1 Serialization}

   Format:
     mlp <hidden> <output> <n0> <n1> ... <nk>
     <tensor line for W1> ; <tensor line for b1> ; ...
   A tensor line is: rows cols v0 v1 ... (space separated, %h floats). *)

let tensor_to_line t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (string_of_int (Tensor.rows t));
  Buffer.add_char buf ' ';
  Buffer.add_string buf (string_of_int (Tensor.cols t));
  Array.iter
    (fun v ->
      Buffer.add_char buf ' ';
      Buffer.add_string buf (Printf.sprintf "%h" v))
    (Tensor.to_array t);
  Buffer.contents buf

let tensor_of_line line =
  match String.split_on_char ' ' (String.trim line) with
  | rows :: cols :: values ->
      let rows = int_of_string rows and cols = int_of_string cols in
      let data = Array.of_list (List.map float_of_string values) in
      Tensor.create rows cols data
  | [] | [ _ ] -> failwith "Mlp.of_lines: malformed tensor line"

let to_lines t =
  let header =
    Printf.sprintf "mlp %s %s %s"
      (Activation.to_string t.hidden)
      (Activation.to_string t.output)
      (String.concat " " (List.map string_of_int t.arch))
  in
  let weights =
    List.concat_map
      (fun l ->
        [
          tensor_to_line (Autodiff.value l.Dense.w);
          tensor_to_line (Autodiff.value l.Dense.b);
        ])
      t.layers
  in
  header :: weights

let of_lines lines =
  match lines with
  | [] -> failwith "Mlp.of_lines: empty input"
  | header :: rest -> (
      match String.split_on_char ' ' (String.trim header) with
      | "mlp" :: hidden :: output :: sizes_s when List.length sizes_s >= 2 ->
          let hidden = Activation.of_string hidden in
          let output = Activation.of_string output in
          let arch = List.map int_of_string sizes_s in
          let n_layers = List.length arch - 1 in
          let rec take_layers n lines acc =
            if n = 0 then (List.rev acc, lines)
            else
              match lines with
              | wl :: bl :: rest ->
                  let w = Autodiff.param (tensor_of_line wl) in
                  let b = Autodiff.param (tensor_of_line bl) in
                  take_layers (n - 1) rest ({ Dense.w; b } :: acc)
              | _ -> failwith "Mlp.of_lines: truncated weight section"
          in
          let layers, remaining = take_layers n_layers rest [] in
          ({ layers; hidden; output; arch }, remaining)
      | _ -> failwith "Mlp.of_lines: bad header")
