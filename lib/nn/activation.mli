(** Activation functions shared by the MLP builder and the surrogate model. *)

type t = Tanh | Relu | Sigmoid | Linear

val apply : t -> Autodiff.t -> Autodiff.t
val apply_tensor : t -> Tensor.t -> Tensor.t
(** Tape-free evaluation for inference. *)

val unop : t -> Tensor.unop option
(** The backend kernel implementing this activation ([None] for [Linear]) —
    what the fused dense forward passes to {!Autodiff.dense} /
    {!Tensor.matmul_bias_unop_into}.  [apply_tensor] is bit-identical to
    running this kernel. *)

val of_string : string -> t
(** Raises [Invalid_argument] on unknown names. *)

val to_string : t -> string
