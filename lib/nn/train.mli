(** Generic training loop with validation-based early stopping.

    The loop is deliberately abstract over the model: the caller supplies a
    thunk that rebuilds the (possibly stochastic) training-loss graph, a thunk
    that evaluates the validation loss, and snapshot/restore callbacks for
    best-epoch weight keeping.  Both the surrogate regressor and the pNN
    training of the paper instantiate this loop. *)

type config = {
  max_epochs : int;
  patience : int;  (** epochs without validation improvement before stopping *)
  min_delta : float;  (** improvement threshold (paper: plain early stopping → 0.) *)
  log_every : int;  (** 0 disables logging *)
  val_every : int;
      (** evaluate the validation loss every [val_every] epochs (≥ 1).  The
          Monte-Carlo validation loss of variation-aware training is as
          expensive as a training step, so pNN training uses 5. *)
}

val default_config : config

type history = {
  train_losses : float array;
  val_losses : float array;
  best_epoch : int;  (** epoch index of the best validation loss *)
  best_val_loss : float;
  stopped_early : bool;
}

type state = {
  mutable epoch : int;  (** next epoch to run (= epochs completed so far) *)
  mutable train_hist : float list;  (** newest first *)
  mutable val_hist : float list;  (** newest first *)
  mutable best_val : float;
  mutable best_epoch : int;
  mutable epochs_since_best : int;
  mutable stopped_early : bool;
}
(** The loop's full mutable progress, exposed so checkpointing can persist it
    and resume can re-enter the loop mid-run.  Together with the parameter
    tensors, the best-weights snapshot, the optimizer state and the RNG
    stream position, this is everything the loop reads. *)

val fresh_state : unit -> state
(** A start-of-training state ([epoch = 0], empty histories). *)

val run :
  ?state:state ->
  ?on_epoch:(state -> unit) ->
  config:config ->
  optimizers:(Optimizer.t * Autodiff.t list) list ->
  train_loss:(unit -> Autodiff.t) ->
  val_loss:(unit -> float) ->
  snapshot:(unit -> unit) ->
  restore:(unit -> unit) ->
  unit ->
  history
(** Runs until [max_epochs] or patience exhaustion, keeping the best weights
    (by validation loss) via [snapshot]; calls [restore] before returning so
    the model ends at its best validation epoch.  Each optimizer updates its
    own parameter group, enabling the paper's two learning rates.

    [state] (default {!fresh_state}) is where progress lives; pass a restored
    one to resume mid-run — the loop continues from [state.epoch] exactly as
    if it had never stopped.  [on_epoch] fires after every completed epoch
    with the up-to-date state (the checkpoint hook); it is not called on the
    epoch that trips early stopping. *)
