let accuracy_idx ~logits ~labels =
  let pred = Tensor.argmax_rows logits in
  if Array.length pred <> Array.length labels then
    invalid_arg "Metrics.accuracy_idx: row count mismatch";
  if Array.length labels = 0 then invalid_arg "Metrics.accuracy_idx: empty";
  let hits = ref 0 in
  Array.iteri (fun i p -> if p = labels.(i) then incr hits) pred;
  float_of_int !hits /. float_of_int (Array.length labels)

let accuracy ~logits ~labels =
  accuracy_idx ~logits ~labels:(Tensor.argmax_rows labels)

let mse a b =
  if Tensor.shape a <> Tensor.shape b then invalid_arg "Metrics.mse: shape mismatch";
  let d = Tensor.sub a b in
  Tensor.sum (Tensor.mul d d) /. float_of_int (Tensor.numel a)

let r2 ~pred ~target =
  if Tensor.shape pred <> Tensor.shape target then
    invalid_arg "Metrics.r2: shape mismatch";
  let mean = Tensor.mean target in
  let ss_res = ref 0.0 and ss_tot = ref 0.0 in
  let p = Tensor.to_array pred and t = Tensor.to_array target in
  Array.iteri
    (fun i y ->
      let e = y -. p.(i) in
      ss_res := !ss_res +. (e *. e);
      let d = y -. mean in
      ss_tot := !ss_tot +. (d *. d))
    t;
  1.0 -. (!ss_res /. Stdlib.max !ss_tot 1e-30)

let confusion ~logits ~labels ~n_classes =
  let pred = Tensor.argmax_rows logits in
  if Array.length pred <> Array.length labels then
    invalid_arg "Metrics.confusion: row count mismatch";
  let m = Array.make_matrix n_classes n_classes 0 in
  Array.iteri
    (fun i p ->
      let t = labels.(i) in
      if t < 0 || t >= n_classes || p < 0 || p >= n_classes then
        invalid_arg "Metrics.confusion: class index out of range";
      m.(t).(p) <- m.(t).(p) + 1)
    pred;
  m
