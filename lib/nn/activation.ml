type t = Tanh | Relu | Sigmoid | Linear

let apply t x =
  match t with
  | Tanh -> Autodiff.tanh x
  | Relu -> Autodiff.relu x
  | Sigmoid -> Autodiff.sigmoid x
  | Linear -> x

(* The backend unop implementing each activation — the bridge the fused
   dense kernels key on.  Formulas match the former [Tensor.map] closures
   exactly (tanh; if v > 0.0 then v else 0.0; 1/(1+exp(-v))), so routing
   through the unop kernels is bit-identical while avoiding the per-element
   closure boxing. *)
let unop = function
  | Tanh -> Some Tensor.Tanh
  | Relu -> Some Tensor.Relu
  | Sigmoid -> Some Tensor.Sigmoid
  | Linear -> None

let apply_tensor t x =
  match unop t with
  | None -> x
  | Some op ->
      let dst = Tensor.zeros_as x (Tensor.rows x) (Tensor.cols x) in
      Tensor.unop_into op x ~dst;
      dst

let of_string = function
  | "tanh" -> Tanh
  | "relu" -> Relu
  | "sigmoid" -> Sigmoid
  | "linear" -> Linear
  | s -> invalid_arg ("Activation.of_string: unknown activation " ^ s)

let to_string = function
  | Tanh -> "tanh"
  | Relu -> "relu"
  | Sigmoid -> "sigmoid"
  | Linear -> "linear"
