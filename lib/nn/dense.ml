type t = { w : Autodiff.t; b : Autodiff.t }

let create rng ?(init = Init.Xavier) ~inputs ~outputs () =
  let w = Autodiff.param (Init.tensor rng init ~inputs ~outputs) in
  let b = Autodiff.param (Tensor.zeros 1 outputs) in
  { w; b }

let forward t x = Autodiff.add_rowvec (Autodiff.matmul x t.w) t.b
let forward_tensor t x = Tensor.add_rowvec (Tensor.matmul x (Autodiff.value t.w)) (Autodiff.value t.b)

(* Fused forwards: layer + activation in one node / one kernel call —
   bit-identical to [Activation.apply act (forward t x)] (resp. the
   apply_tensor chain); the win is dispatch and tape overhead, which
   dominates the 13-tiny-layer surrogate evaluation. *)
let forward_fused act t x = Autodiff.dense ?op:(Activation.unop act) x t.w t.b

let forward_tensor_fused act t x =
  let w = Autodiff.value t.w and b = Autodiff.value t.b in
  let m = Tensor.rows x and n = Tensor.cols w in
  let pre = Tensor.zeros_as x m n in
  match Activation.unop act with
  | None ->
      Tensor.matmul_bias_unop_into x w b ~pre ~out:pre;
      pre
  | Some op ->
      let out = Tensor.zeros_as x m n in
      Tensor.matmul_bias_unop_into ~op x w b ~pre ~out;
      out
let params t = [ t.w; t.b ]
let inputs t = Tensor.rows (Autodiff.value t.w)
let outputs t = Tensor.cols (Autodiff.value t.w)
let snapshot t = (Tensor.copy (Autodiff.value t.w), Tensor.copy (Autodiff.value t.b))

let write_into dst src =
  let d = Autodiff.value dst in
  if Tensor.shape d <> Tensor.shape src then
    invalid_arg "Dense.restore: shape mismatch";
  for r = 0 to Tensor.rows src - 1 do
    for c = 0 to Tensor.cols src - 1 do
      Tensor.set d r c (Tensor.get src r c)
    done
  done

let restore t (w, b) =
  write_into t.w w;
  write_into t.b b
