(** Content-addressed on-disk experiment cache.

    An entry is a list of text lines stored under
    [dir/<kind>/<key>.pce], where [key] is the MD5 of a canonical
    serialization of everything the artifact depends on (config, dataset id,
    seed, variation arm, schema version, ...).  Entries are self-verifying:
    each file carries a header with a magic string, a format version, its
    kind and a checksum of the body, so truncation, bit rot and schema drift
    all degrade to a {e miss} — never a misparse.  Writes go through a
    temp-file-plus-rename, so concurrent writers (pool workers racing on the
    same key) can only ever publish complete entries.

    The store is purely an optimization layer: every caller wraps a
    deterministic computation with {!memoize}, so a hit returns a value
    bit-identical to a fresh compute and a corrupted entry is silently
    recomputed and rewritten. *)

val mkdir_p : string -> unit
(** Recursive, EEXIST-tolerant directory creation: safe against the
    create/create race (two processes may call it on the same path
    concurrently and both succeed).  The shared helper for every module that
    materializes directories other processes may be creating too — ad-hoc
    [if not (Sys.file_exists d) then Sys.mkdir d] sequences are exactly the
    TOCTOU this exists to replace. *)

(** {1 Checksummed atomic blob files}

    The file layer under the keyed store; also used directly by training
    checkpoints, which are addressed by path rather than by content key. *)
module Blob : sig
  type read_result = Valid of string list | Corrupt | Missing

  val write : tag:string -> string -> string list -> int
  (** [write ~tag path lines] atomically writes a checksummed blob (temp file
      + rename; parent directories are created).  [tag] must not contain
      spaces or newlines; it is verified on read.  Returns the body byte
      count. *)

  val read : tag:string -> string -> read_result
  (** Verifies magic, format version, [tag] and the body checksum; any
      mismatch (including a newer format version: schema drift) is
      [Corrupt]. *)
end

(** {1 The keyed store} *)

type t

val create : dir:string -> t
(** An enabled cache rooted at [dir] (created lazily on first write). *)

val disabled : unit -> t
(** A no-op cache: {!find} always misses and {!store} does nothing.  Stats
    still count the misses. *)

val enabled : t -> bool
val dir : t -> string option

val get_default : unit -> t
(** The process-wide default consulted by library entry points when no cache
    is passed explicitly.  Initialized on first use from the
    [REPRO_CACHE_DIR] environment variable (unset or empty ⇒ {!disabled});
    binaries override it from their flags via {!set_default}. *)

val set_default : t -> unit

val key : schema:string -> kind:string -> string list -> string
(** [key ~schema ~kind parts] is the content address: the MD5 hex digest of
    the canonical concatenation of [schema], [kind] and [parts].  [schema]
    is the serialization-format tag (bumped with [Serialize]), so any format
    change re-keys the whole store instead of misparsing old entries. *)

val digest_lines : string list -> string
(** MD5 hex of a canonical line list — the helper for content-hashing inputs
    (networks, tensors, candidate chunks) into {!key} parts. *)

(** {1 Stats} *)

type stats = {
  hits : int Atomic.t;
  misses : int Atomic.t;
  corrupt : int Atomic.t;  (** entries found damaged and degraded to a miss *)
  bytes_read : int Atomic.t;
  bytes_written : int Atomic.t;
}

val stats : t -> stats
val summary : t -> string
(** One-line human-readable stats, e.g.
    ["cache _cache: 12 hits, 3 misses (1 corrupt), 1.2 MiB read, 0.4 MiB written"]. *)

(** {1 Entry operations} *)

val find : t -> kind:string -> key:string -> string list option
(** [Some lines] on a verified hit; [None] on a miss.  A corrupt entry is
    deleted, counted, and reported as a miss. *)

val store : t -> kind:string -> key:string -> string list -> unit
(** Atomic publish; no-op when disabled. *)

val memoize :
  t ->
  kind:string ->
  key:string ->
  encode:('a -> string list) ->
  decode:(string list -> 'a) ->
  (unit -> 'a) ->
  'a
(** [memoize t ~kind ~key ~encode ~decode f] returns the cached value when a
    verified entry decodes, else runs [f], stores [encode (f ())] and returns
    it.  A decode failure counts as corruption and falls back to recompute +
    rewrite.  When [t] is disabled this is exactly [f ()]. *)

val member_path : t -> kind:string -> key:string -> string option
(** The on-disk path an entry for this key would use — the hook for
    path-addressed artifacts living inside the cache tree (training
    checkpoints).  [None] when disabled. *)

(** {1 Maintenance (cache_tool)} *)

type entry = {
  path : string;
  kind : string;
  key : string;
  bytes : int;
  mtime : float;
  valid : bool;
}

val entries : ?check:bool -> dir:string -> unit -> entry list
(** Every [*.pce] entry under [dir], sorted by kind then key.  With
    [check:true] (default false) each entry's checksum is verified into
    [valid]. *)

val default_tmp_stale_age : float
(** Seconds a writer temp file must sit untouched before {!gc} may reclaim
    it (600 s).  Far longer than any single atomic publish, far shorter than
    a human-scale gc cadence. *)

val stale_tmp_files :
  ?stale_age:float -> now:float -> dir:string -> unit -> string list
(** Writer temp files ([<key>.pce.tmp.<pid>.<domain>.<counter>], matched by
    an exact filename parse — an entry whose {e key} merely contains the
    marker is never misclassified) whose mtime is more than [stale_age]
    (default {!default_tmp_stale_age}) before [now].  Younger temp files
    belong to potentially live writers and are left alone so their
    publishing rename cannot be broken. *)

val gc :
  ?max_age_days:float ->
  ?tmp_stale_age:float ->
  ?all:bool ->
  dir:string -> unit -> int * int
(** [gc ~dir ()] deletes invalid entries and writer temp files older than
    [tmp_stale_age] (see {!stale_tmp_files}; a concurrent writer's in-flight
    temp is younger than that and survives, so gc can run while writers are
    publishing); with [max_age_days] also entries older than that; with
    [all:true] every entry and every temp file regardless of age.  Returns
    [(removed, kept)]. *)

(** {1 Exclusive publish (claim files)} *)

val publish_exclusive : string -> string -> bool
(** [publish_exclusive path content] atomically creates [path] with
    [content] and returns [true] iff no file existed there — the same
    temp-file write discipline as {!Blob.write}, published with a hard link
    (which fails on an existing destination) instead of a rename (which
    silently replaces).  The test-and-set primitive for directory-based
    claim files: of any number of concurrent callers exactly one wins.
    Returns [false] to the losers; the temp file is always cleaned up. *)

val replace_file : string -> string -> unit
(** Atomic unconditional overwrite (temp + rename) — the companion of
    {!publish_exclusive} for refreshing a file the caller already owns,
    e.g. renewing a claim's lease. *)
