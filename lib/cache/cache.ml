(* EEXIST-tolerant recursive mkdir.  The create is attempted *uncondition-
   ally* after the parent exists and a racing creator is detected after the
   fact, so two processes calling this concurrently (the TOCTOU that
   [if not (Sys.file_exists d) then Sys.mkdir d] gets wrong) both succeed. *)
let rec mkdir_p dir =
  if dir <> "" && dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755
    with Sys_error _ when Sys.file_exists dir ->
      (* lost a creation race (or the path pre-existed): fine either way *)
      ()
  end

(* Unique-enough temp names: same-process writers are disambiguated by the
   counter and domain id, cross-process writers by the pid.  The final rename
   is what guarantees atomicity; the suffix only avoids temp-file collisions. *)
let tmp_counter = Atomic.make 0

let temp_path path =
  Printf.sprintf "%s.tmp.%d.%d.%d" path (Unix.getpid ())
    (Domain.self () :> int)
    (Atomic.fetch_and_add tmp_counter 1)

module Blob = struct
  let magic = "pnncache"
  let version = 1

  type read_result = Valid of string list | Corrupt | Missing

  let header ~tag ~digest ~nlines =
    String.concat " "
      [ magic; string_of_int version; tag; digest; string_of_int nlines ]

  let write ~tag path lines =
    if String.exists (fun c -> c = ' ' || c = '\n') tag then
      invalid_arg "Cache.Blob.write: tag must not contain spaces";
    let body = String.concat "\n" lines in
    let digest = Digest.to_hex (Digest.string body) in
    mkdir_p (Filename.dirname path);
    let tmp = temp_path path in
    let oc = open_out_bin tmp in
    (try
       output_string oc (header ~tag ~digest ~nlines:(List.length lines));
       output_char oc '\n';
       if lines <> [] then begin
         output_string oc body;
         output_char oc '\n'
       end;
       close_out oc
     with e ->
       close_out_noerr oc;
       (try Sys.remove tmp with Sys_error _ -> ());
       raise e);
    Sys.rename tmp path;
    String.length body

  let read_lines path =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let rec go acc =
          match input_line ic with
          | line -> go (line :: acc)
          | exception End_of_file -> List.rev acc
        in
        go [])

  let read ~tag path =
    if not (Sys.file_exists path) then Missing
    else
      match read_lines path with
      | exception Sys_error _ -> Missing
      | [] -> Corrupt
      | hd :: body -> (
          match String.split_on_char ' ' hd with
          | [ m; v; t; digest; n ]
            when m = magic && v = string_of_int version && t = tag -> (
              match int_of_string_opt n with
              | Some n
                when n = List.length body
                     && Digest.to_hex (Digest.string (String.concat "\n" body))
                        = digest ->
                  Valid body
              | _ -> Corrupt)
          | _ -> Corrupt)
end

type stats = {
  hits : int Atomic.t;
  misses : int Atomic.t;
  corrupt : int Atomic.t;
  bytes_read : int Atomic.t;
  bytes_written : int Atomic.t;
}

let fresh_stats () =
  {
    hits = Atomic.make 0;
    misses = Atomic.make 0;
    corrupt = Atomic.make 0;
    bytes_read = Atomic.make 0;
    bytes_written = Atomic.make 0;
  }

type t = { root : string option; stats : stats }

let create ~dir = { root = Some dir; stats = fresh_stats () }
let disabled () = { root = None; stats = fresh_stats () }
let enabled t = t.root <> None
let dir t = t.root
let stats t = t.stats

let default_cache : t option Atomic.t = Atomic.make None

let rec get_default () =
  match Atomic.get default_cache with
  | Some c -> c
  | None ->
      let c =
        match Sys.getenv_opt "REPRO_CACHE_DIR" with
        | Some d when d <> "" -> create ~dir:d
        | Some _ | None -> disabled ()
      in
      (* a racing set_default wins: keep whatever landed first *)
      if Atomic.compare_and_set default_cache None (Some c) then c
      else get_default ()

let set_default c = Atomic.set default_cache (Some c)

let check_kind kind =
  if
    kind = ""
    || String.exists
         (fun c -> c = ' ' || c = '\n' || c = '/' || c = '.')
         kind
  then invalid_arg "Cache: kind must be a plain word"

let key ~schema ~kind parts =
  check_kind kind;
  Digest.to_hex (Digest.string (String.concat "\x00" (schema :: kind :: parts)))

let digest_lines lines = Digest.to_hex (Digest.string (String.concat "\n" lines))

let entry_ext = ".pce"

let member_path t ~kind ~key =
  check_kind kind;
  match t.root with
  | None -> None
  | Some root -> Some (Filename.concat (Filename.concat root kind) (key ^ entry_ext))

let body_bytes lines =
  List.fold_left (fun acc l -> acc + String.length l + 1) 0 lines

let find t ~kind ~key =
  match member_path t ~kind ~key with
  | None ->
      Atomic.incr t.stats.misses;
      None
  | Some path -> (
      match Blob.read ~tag:kind path with
      | Blob.Valid lines ->
          Atomic.incr t.stats.hits;
          ignore (Atomic.fetch_and_add t.stats.bytes_read (body_bytes lines));
          Some lines
      | Blob.Missing ->
          Atomic.incr t.stats.misses;
          None
      | Blob.Corrupt ->
          Atomic.incr t.stats.corrupt;
          Atomic.incr t.stats.misses;
          (try Sys.remove path with Sys_error _ -> ());
          None)

let store t ~kind ~key lines =
  match member_path t ~kind ~key with
  | None -> ()
  | Some path ->
      let bytes = Blob.write ~tag:kind path lines in
      ignore (Atomic.fetch_and_add t.stats.bytes_written bytes)

let memoize t ~kind ~key ~encode ~decode f =
  if not (enabled t) then f ()
  else
    let recompute () =
      let v = f () in
      store t ~kind ~key (encode v);
      v
    in
    match find t ~kind ~key with
    | None -> recompute ()
    | Some lines -> (
        match decode lines with
        | v -> v
        | exception _ ->
            (* decodable header but unusable payload: same treatment as a
               checksum failure — recompute and replace *)
            Atomic.incr t.stats.corrupt;
            (match member_path t ~kind ~key with
            | Some path -> ( try Sys.remove path with Sys_error _ -> ())
            | None -> ());
            recompute ())

let mib bytes = float_of_int bytes /. (1024.0 *. 1024.0)

let summary t =
  let s = t.stats in
  let where = match t.root with Some d -> d | None -> "(disabled)" in
  Printf.sprintf
    "cache %s: %d hits, %d misses (%d corrupt), %.2f MiB read, %.2f MiB written"
    where (Atomic.get s.hits) (Atomic.get s.misses) (Atomic.get s.corrupt)
    (mib (Atomic.get s.bytes_read))
    (mib (Atomic.get s.bytes_written))

(* {1 Maintenance} *)

type entry = {
  path : string;
  kind : string;
  key : string;
  bytes : int;
  mtime : float;
  valid : bool;
}

let entries ?(check = false) ~dir () =
  if not (Sys.file_exists dir && Sys.is_directory dir) then []
  else
    let kinds =
      Array.to_list (Sys.readdir dir)
      |> List.filter (fun k -> Sys.is_directory (Filename.concat dir k))
      |> List.sort String.compare
    in
    List.concat_map
      (fun kind ->
        let kdir = Filename.concat dir kind in
        Array.to_list (Sys.readdir kdir)
        |> List.filter (fun f -> Filename.check_suffix f entry_ext)
        |> List.sort String.compare
        |> List.filter_map (fun f ->
               let path = Filename.concat kdir f in
               match Unix.stat path with
               | exception Unix.Unix_error _ -> None
               | st ->
                   let valid =
                     (not check)
                     ||
                     match Blob.read ~tag:kind path with
                     | Blob.Valid _ -> true
                     | Blob.Corrupt | Blob.Missing -> false
                   in
                   Some
                     {
                       path;
                       kind;
                       key = Filename.chop_suffix f entry_ext;
                       bytes = st.Unix.st_size;
                       mtime = st.Unix.st_mtime;
                       valid;
                     }))
      kinds

(* Exact parse of the names [temp_path] produces for entry files:
   [<key>.pce.tmp.<pid>.<domain>.<counter>] with all three trailing fields
   numeric.  A substring scan for ".pce.tmp." would also match *entry* files
   whose key happens to contain the marker (keys are arbitrary strings at
   this layer), deleting live data; the exact parse cannot. *)
let is_numeric s = s <> "" && String.for_all (fun c -> c >= '0' && c <= '9') s

let tmp_file_key name =
  (* entry_ext is ".pce"; the component split sees it as a bare "pce" *)
  let ext = String.sub entry_ext 1 (String.length entry_ext - 1) in
  match List.rev (String.split_on_char '.' name) with
  | ctr :: dom :: pid :: "tmp" :: e :: (_ :: _ as rev_key)
    when e = ext && is_numeric ctr && is_numeric dom && is_numeric pid ->
      Some (String.concat "." (List.rev rev_key))
  | _ -> None

let default_tmp_stale_age = 600.0

let stale_tmp_files ?(stale_age = default_tmp_stale_age) ~now ~dir () =
  if not (Sys.file_exists dir && Sys.is_directory dir) then []
  else
    Array.to_list (Sys.readdir dir)
    |> List.filter (fun k -> Sys.is_directory (Filename.concat dir k))
    |> List.sort String.compare
    |> List.concat_map (fun kind ->
           let kdir = Filename.concat dir kind in
           Array.to_list (Sys.readdir kdir)
           |> List.sort String.compare
           |> List.filter_map (fun f ->
                  (* leftovers from crashed writers — but a *young* temp file
                     is very likely a live writer's in-flight publish;
                     deleting it would make that writer's rename fail.  Only
                     files past the stale-age threshold are reclaimed. *)
                  if tmp_file_key f = None then None
                  else
                    let path = Filename.concat kdir f in
                    match Unix.stat path with
                    | exception Unix.Unix_error _ -> None
                    | st ->
                        if now -. st.Unix.st_mtime > stale_age then Some path
                        else None))

let gc ?max_age_days ?tmp_stale_age ?(all = false) ~dir () =
  (* pnnlint:allow R2 wall clock feeds only the GC age policy; cache keys
     and cached results never depend on it *)
  let now = Unix.time () in
  let too_old e =
    match max_age_days with
    | None -> false
    | Some days -> now -. e.mtime > days *. 86_400.0
  in
  let removed = ref 0 and kept = ref 0 in
  List.iter
    (fun e ->
      if all || not e.valid || too_old e then begin
        (try Sys.remove e.path with Sys_error _ -> ());
        incr removed
      end
      else incr kept)
    (entries ~check:true ~dir ());
  (* [gc ~all] is an explicit "clear the store": reclaim every temp file
     regardless of age (there can be no writer whose output we still want) *)
  let stale_age =
    if all then Float.neg_infinity
    else Option.value tmp_stale_age ~default:default_tmp_stale_age
  in
  List.iter
    (fun tmp ->
      (try Sys.remove tmp with Sys_error _ -> ());
      incr removed)
    (stale_tmp_files ~stale_age ~now ~dir ());
  (!removed, !kept)

(* {1 Exclusive publish (claim files)}

   The write-side discipline is the same temp-file one {!Blob.write} uses;
   the publish step is a hard [link] instead of a [rename], which fails with
   [EEXIST] when the destination already exists — the atomic test-and-set a
   directory-based work queue needs for claim files.  ([rename] silently
   replaces, so it cannot arbitrate two claimants.) *)

let publish_exclusive path content =
  mkdir_p (Filename.dirname path);
  let tmp = temp_path path in
  let oc = open_out_bin tmp in
  (try
     output_string oc content;
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  let created =
    match Unix.link tmp path with
    | () -> true
    | exception Unix.Unix_error (Unix.EEXIST, _, _) -> false
  in
  (try Sys.remove tmp with Sys_error _ -> ());
  created

let replace_file path content =
  mkdir_p (Filename.dirname path);
  let tmp = temp_path path in
  let oc = open_out_bin tmp in
  (try
     output_string oc content;
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path
