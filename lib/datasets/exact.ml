(* A Synth.spec documenting exact datasets: difficulty knobs are meaningless
   and set to zero; the seed only matters for downstream splits. *)
let exact_spec name features classes samples =
  {
    Synth.name;
    features;
    classes;
    samples;
    modes_per_class = 1;
    class_sep = 0.0;
    spread = 0.0;
    label_noise = 0.0;
    priors = None;
    seed = 0;
  }

(* {1 Balance Scale}

   UCI: attributes left-weight, left-distance, right-weight, right-distance,
   each in 1..5.  Class: L if LW*LD > RW*RD, R if <, B if =.
   Class order (L, B, R) matches the UCI class listing. *)

let balance_scale () =
  let rows = ref [] and labels = ref [] in
  for lw = 1 to 5 do
    for ld = 1 to 5 do
      for rw = 1 to 5 do
        for rd = 1 to 5 do
          let left = lw * ld and right = rw * rd in
          let cls = if left > right then 0 else if left = right then 1 else 2 in
          let scale v = float_of_int (v - 1) /. 4.0 in
          rows := [| scale lw; scale ld; scale rw; scale rd |] :: !rows;
          labels := cls :: !labels
        done
      done
    done
  done;
  {
    Synth.spec = exact_spec "balance-scale" 4 3 625;
    x = Tensor.of_arrays (Array.of_list (List.rev !rows));
    y = Array.of_list (List.rev !labels);
  }

(* {1 Tic-Tac-Toe Endgame}

   Enumerate every legal game (X first, stop at a win or a full board) and
   collect the distinct final boards.  The UCI dataset is exactly this set:
   958 boards, labelled positive iff X has three in a row. *)

let lines =
  [|
    (0, 1, 2); (3, 4, 5); (6, 7, 8); (* rows *)
    (0, 3, 6); (1, 4, 7); (2, 5, 8); (* columns *)
    (0, 4, 8); (2, 4, 6); (* diagonals *)
  |]

let winner board player =
  Array.exists (fun (a, b, c) -> board.(a) = player && board.(b) = player && board.(c) = player) lines

let tic_tac_toe () =
  (* cells: 0 = blank, 1 = x, 2 = o *)
  (* [seen] is membership-only (never iterated): the boards live in
     [collected], whose insertion order is the deterministic DFS order of
     [play]. *)
  let seen = Hashtbl.create 4096 in
  let collected = ref [] in
  let board = Array.make 9 0 in
  let key () = Array.fold_left (fun acc c -> (acc * 3) + c) 0 board in
  let record () =
    let k = key () in
    if not (Hashtbl.mem seen k) then begin
      Hashtbl.add seen k ();
      collected := (k, Array.copy board, winner board 1) :: !collected
    end
  in
  let rec play player moves =
    if winner board 1 || winner board 2 then record ()
    else if moves = 9 then record ()
    else
      for cell = 0 to 8 do
        if board.(cell) = 0 then begin
          board.(cell) <- player;
          play (3 - player) (moves + 1);
          board.(cell) <- 0
        end
      done
  in
  play 1 0;
  (* sort on the unique base-3 board key: the row order depends on nothing
     but the key, not on collection order *)
  let entries =
    List.sort (fun (ka, _, _) (kb, _, _) -> Int.compare ka kb) !collected
    |> List.map (fun (_, b, xwins) -> (b, xwins))
  in
  let encode cell =
    match cell with 1 -> 1.0 | 2 -> 0.0 | 0 -> 0.5 | _ -> assert false
  in
  let x = Array.of_list (List.map (fun (b, _) -> Array.map encode b) entries) in
  (* class 1 = positive ("X wins"), matching the majority class used by the
     difficulty calibration *)
  let y = Array.of_list (List.map (fun (_, xwins) -> if xwins then 1 else 0) entries) in
  {
    Synth.spec = exact_spec "tic-tac-toe" 9 2 (Array.length y);
    x = Tensor.of_arrays x;
    y;
  }
