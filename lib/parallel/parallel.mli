(** Deterministic multicore execution for Monte-Carlo and experiment fan-out.

    A fixed-size pool of worker domains (OCaml 5 [Domain]s) with map and
    ordered-reduction combinators.  The design contract is {b determinism}:
    for pure per-element work, every entry point returns bit-identical
    results for any worker count, including [jobs = 1] (which never spawns a
    domain and runs plain sequential loops).

    How the contract is kept:
    - element [i]'s result is always stored at slot [i]; scheduling order is
      irrelevant to the output;
    - reductions ({!Pool.map_reduce_ordered}) combine fixed-size chunks whose
      boundaries depend only on the chunk size — never on the worker count —
      and fold the chunk partials in ascending chunk order.

    Callers are responsible for the "pure per-element work" part: pre-draw
    RNG streams before fanning out and do not mutate shared state inside the
    mapped function.

    The worker count of the shared pool is controlled by the [REPRO_JOBS]
    environment variable (default: [Domain.recommended_domain_count ()];
    [REPRO_JOBS=1] forces today's sequential path). *)

module Pool : sig
  type t

  val create : ?jobs:int -> unit -> t
  (** [create ~jobs ()] spawns [jobs - 1] worker domains (the caller
      participates in every parallel region, so [jobs] is the total
      parallelism).  [jobs] defaults to {!default_jobs}; values [< 1] are
      clamped to [1]. *)

  val jobs : t -> int

  val parallel_for : t -> n:int -> (int -> unit) -> unit
  (** [parallel_for pool ~n body] runs [body i] for [i = 0 .. n - 1] across
      the pool; the caller works too and the call returns only after every
      index completed.  Work is claimed index-by-index (dynamic scheduling),
      so [body] must not depend on execution order.  If any [body] raises,
      the first exception observed is re-raised in the caller after all
      claimed work finished.  Safe to nest: a worker may open an inner
      parallel region. *)

  val map_array : t -> ('a -> 'b) -> 'a array -> 'b array
  (** Parallel [Array.map]; element order preserved, bit-identical to the
      sequential map for pure [f] regardless of worker count. *)

  val mapi_array : t -> (int -> 'a -> 'b) -> 'a array -> 'b array

  val map_list : t -> ('a -> 'b) -> 'a list -> 'b list
  (** Parallel [List.map] (via an intermediate array). *)

  val map_reduce_ordered :
    t -> ?chunk:int -> map:('a -> 'b) -> reduce:('b -> 'b -> 'b) ->
    'a array -> 'b option
  (** [map_reduce_ordered pool ~chunk ~map ~reduce a] maps every element and
      reduces left-to-right inside fixed [chunk]-sized blocks
      ([\[0, chunk)], [\[chunk, 2 chunk)], ...), then folds the block partials
      in ascending block order.  Because block boundaries are a function of
      [chunk] only, the float-summation order — and therefore the result —
      is bit-identical for any worker count.  [None] on an empty array.
      Default [chunk] is [16]. *)

  val shutdown : t -> unit
  (** Joins all worker domains.  Idempotent; after shutdown the pool remains
      usable but every call degrades to the sequential path. *)
end

val default_jobs : unit -> int
(** [REPRO_JOBS] if set to a positive integer, else
    [Domain.recommended_domain_count ()]. *)

val get_pool : unit -> Pool.t
(** The shared process-wide pool, created on first use with
    {!default_jobs} workers and shut down automatically at exit.  All
    library entry points taking [?pool] default to this. *)

val require_sequential : unit -> bool
(** Pin the shared pool to the sequential path: if it does not exist yet it
    is created with [jobs = 1] (spawning no domains), otherwise it is shut
    down (degrading it to sequential but leaving it usable).

    This is the fork-safety latch for the multi-process orchestrator: OCaml 5
    permanently refuses [Unix.fork] in any process that has {e ever} spawned
    a domain, so a coordinator that intends to fork calls this before any
    pool work.  Returns [true] iff the pool layer has never spawned a domain
    — i.e. the process is still fork-safe as far as this module knows.  By
    the pool's determinism contract, results are unaffected. *)
