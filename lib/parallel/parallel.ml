let default_jobs () =
  match Sys.getenv_opt "REPRO_JOBS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some j when j >= 1 -> j
      | Some _ | None -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

module Pool = struct
  type task = Task of (unit -> unit) | Quit

  type t = {
    jobs : int;
    queue : task Queue.t;
    mutex : Mutex.t;
    nonempty : Condition.t;
    mutable workers : unit Domain.t list;
    mutable shut : bool;
  }

  let rec worker_loop pool =
    Mutex.lock pool.mutex;
    while Queue.is_empty pool.queue do
      Condition.wait pool.nonempty pool.mutex
    done;
    let task = Queue.pop pool.queue in
    Mutex.unlock pool.mutex;
    match task with
    | Quit -> ()
    | Task f ->
        (* Task closures catch their own exceptions (see [run_items]); the
           guard only keeps a buggy task from killing the worker. *)
        (try f () with _ -> ());
        worker_loop pool

  (* OCaml 5's [Unix.fork] permanently refuses once any domain was ever
     spawned in the process, so the fork-based orchestrator needs to know
     whether the pool layer has ever spawned one (see [require_sequential]). *)
  let ever_spawned = Atomic.make false

  let create ?jobs () =
    let jobs = match jobs with Some j -> Stdlib.max 1 j | None -> default_jobs () in
    let pool =
      {
        jobs;
        queue = Queue.create ();
        mutex = Mutex.create ();
        nonempty = Condition.create ();
        workers = [];
        shut = false;
      }
    in
    if jobs > 1 then begin
      Atomic.set ever_spawned true;
      pool.workers <-
        List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop pool))
    end;
    pool

  let jobs t = t.jobs

  let submit pool f =
    Mutex.lock pool.mutex;
    Queue.push (Task f) pool.queue;
    Condition.signal pool.nonempty;
    Mutex.unlock pool.mutex

  let shutdown pool =
    if not pool.shut then begin
      pool.shut <- true;
      Mutex.lock pool.mutex;
      List.iter (fun _ -> Queue.push Quit pool.queue) pool.workers;
      Condition.broadcast pool.nonempty;
      Mutex.unlock pool.mutex;
      List.iter Domain.join pool.workers;
      pool.workers <- []
    end

  (* Dynamic index claiming + a blocking completion barrier.  [finished]
     counts executed bodies under [fin_mutex]; each participant reports its
     tally when the index space is exhausted, so the caller wakes exactly
     when the last in-flight body is done.  Stale helper tasks (picked up
     after completion) see an exhausted index and leave without touching the
     barrier. *)
  let run_items pool ~n ~body =
    let next = Atomic.make 0 in
    let fail = Atomic.make None in
    let finished = ref 0 in
    let fin_mutex = Mutex.create () in
    let fin_cond = Condition.create () in
    let work () =
      let claimed = ref 0 in
      let continue = ref true in
      while !continue do
        let i = Atomic.fetch_and_add next 1 in
        if i >= n then continue := false
        else begin
          (try body i
           with e ->
             let bt = Printexc.get_raw_backtrace () in
             ignore (Atomic.compare_and_set fail None (Some (e, bt))));
          incr claimed
        end
      done;
      if !claimed > 0 then begin
        Mutex.lock fin_mutex;
        finished := !finished + !claimed;
        if !finished >= n then Condition.broadcast fin_cond;
        Mutex.unlock fin_mutex
      end
    in
    let helpers = Stdlib.min (pool.jobs - 1) (n - 1) in
    for _ = 1 to helpers do
      submit pool work
    done;
    work ();
    Mutex.lock fin_mutex;
    while !finished < n do
      Condition.wait fin_cond fin_mutex
    done;
    Mutex.unlock fin_mutex;
    match Atomic.get fail with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ()

  let parallel_for pool ~n body =
    if n <= 0 then ()
    else if pool.jobs = 1 || n = 1 || pool.shut then
      for i = 0 to n - 1 do
        body i
      done
    else run_items pool ~n ~body

  let mapi_array pool f a =
    let n = Array.length a in
    if n = 0 then [||]
    else begin
      let results = Array.make n None in
      parallel_for pool ~n (fun i -> results.(i) <- Some (f i a.(i)));
      Array.map (function Some v -> v | None -> assert false) results
    end

  let map_array pool f a = mapi_array pool (fun _ x -> f x) a
  let map_list pool f l = Array.to_list (map_array pool f (Array.of_list l))

  let default_chunk = 16

  let map_reduce_ordered pool ?(chunk = default_chunk) ~map ~reduce a =
    if chunk < 1 then invalid_arg "Parallel.map_reduce_ordered: chunk < 1";
    let n = Array.length a in
    if n = 0 then None
    else begin
      let n_chunks = (n + chunk - 1) / chunk in
      let partials = Array.make n_chunks None in
      parallel_for pool ~n:n_chunks (fun ci ->
          let lo = ci * chunk in
          let hi = Stdlib.min n (lo + chunk) - 1 in
          let acc = ref (map a.(lo)) in
          for i = lo + 1 to hi do
            acc := reduce !acc (map a.(i))
          done;
          partials.(ci) <- Some !acc);
      let total = ref (Option.get partials.(0)) in
      for ci = 1 to n_chunks - 1 do
        total := reduce !total (Option.get partials.(ci))
      done;
      Some !total
    end
end

(* pnnlint:allow R7 every read and write of [shared] happens under
   [shared_mutex] (get_pool/shutdown_shared below) *)
let shared = ref None
let shared_mutex = Mutex.create ()

let get_pool () =
  Mutex.lock shared_mutex;
  let pool =
    match !shared with
    | Some p -> p
    | None ->
        let p = Pool.create () in
        at_exit (fun () -> Pool.shutdown p);
        shared := Some p;
        p
  in
  Mutex.unlock shared_mutex;
  pool

let require_sequential () =
  Mutex.lock shared_mutex;
  (match !shared with
  | Some p -> Pool.shutdown p
  | None ->
      let p = Pool.create ~jobs:1 () in
      shared := Some p);
  Mutex.unlock shared_mutex;
  not (Atomic.get Pool.ever_spawned)
