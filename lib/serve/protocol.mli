(** Length-prefixed binary wire protocol for the inference service.

    Framing is a 4-byte big-endian payload length followed by the payload;
    floats travel as big-endian IEEE-754 double bits, so feature vectors and
    Monte-Carlo quantiles cross the wire bit-exactly.  A pure codec over
    [bytes] — no sockets, no clocks, no global state. *)

val version : int
val max_frame : int
(** Hard cap on a payload's declared length; larger frames are protocol
    errors (the stream cannot resync) and the connection must be dropped. *)

val max_features : int
val max_mc_draws : int

type request =
  | Predict of { id : int32; features : float array }
      (** Classify one feature vector under nominal (all-ones) variation. *)
  | Predict_mc of { id : int32; features : float array; draws : int; seed : int32 }
      (** Classify with Monte-Carlo uncertainty: [draws] variation draws
          seeded by [seed].  Identical requests get bit-identical answers
          for any server pool size. *)
  | Stats of { id : int32 }  (** Snapshot the server's counters. *)
  | Shutdown of { id : int32 }  (** Graceful stop: drain, ack, exit. *)

type server_stats = {
  served : int64;
  mc_served : int64;
  batches : int64;
  errors : int64;
  occupancy : int64 array;
      (** [occupancy.(i)] counts batches that carried [i + 1] requests. *)
}

type response =
  | Class of { id : int32; cls : int }
  | Mc_class of { id : int32; cls : int; mean_p : float; q05 : float; q95 : float }
      (** [cls] = argmax of the draw-mean softmax probabilities; [mean_p]
          and the quantiles describe that class's probability across
          draws. *)
  | Stats_reply of { id : int32; stats : server_stats }
  | Shutdown_ack of { id : int32 }
  | Error of { id : int32; message : string }
      (** [id] is 0 when the request was too mangled to carry one. *)

val request_id : request -> int32
val response_id : response -> int32

val encode_request : request -> bytes
(** Full frame: length prefix + payload. *)

val decode_request : bytes -> (request, string) result
(** Decode one payload (no length prefix).  Never raises: truncated or
    malformed payloads return [Error]. *)

val encode_response : response -> bytes
val decode_response : bytes -> (response, string) result

(** {1 Incremental frame reader}

    Accumulates raw stream bytes and yields complete payloads, for both the
    server's per-connection buffers and blocking clients. *)

type reader

val reader : unit -> reader

val feed : reader -> bytes -> pos:int -> len:int -> unit
(** Append [len] bytes of [src] starting at [pos]. *)

val next_frame : reader -> (bytes option, string) result
(** [Ok None] = need more bytes; [Ok (Some payload)] = one complete frame,
    consumed; [Error _] = unrecoverable framing error (oversized frame). *)

val buffered : reader -> int
(** Bytes currently buffered (diagnostics). *)
