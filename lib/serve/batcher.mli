(** Request coalescing for the inference server: a batch releases when it
    fills ([max_batch]) or when its oldest item has waited [linger] seconds.

    The module never reads a clock — callers pass [now] in.  Time may
    schedule work; it must never produce results (pnnlint R2), and a clock
    taken as data makes the policy testable with synthetic timestamps. *)

type 'a t

val create : max_batch:int -> linger:float -> 'a t
(** Raises [Invalid_argument] on [max_batch < 1] or a negative/non-finite
    [linger] (seconds). *)

val max_batch : 'a t -> int
val linger : 'a t -> float
val pending : 'a t -> int

val push : 'a t -> now:float -> 'a -> unit

val next_deadline : 'a t -> float option
(** Absolute time the front item's linger expires; [None] when empty.  The
    server's [select] timeout. *)

val pop_ready : 'a t -> now:float -> 'a list
(** At most one batch, in admission order: [max_batch] items if full,
    everything pending if the front item's deadline has passed, [[]]
    otherwise.  Loop while full batches keep coming. *)

val drain : 'a t -> 'a list list
(** Unconditional drain (shutdown): all pending items in admission order,
    chunked at [max_batch]. *)
