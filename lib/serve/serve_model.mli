(** The serve-time view of a trained network — the train-time / serve-time
    API split.

    A [Serve_model.t] treats its {!Pnn.Network.t} as strictly read-only: no
    optimizer, no loss graphs, no weight mutation goes through this module.
    Answers depend only on (model file, request payload): batch composition
    cannot change an answer (row-independent forward pass), Monte-Carlo
    draws are pre-drawn sequentially from a request-seeded stream and
    reduced in draw order, so results are bit-identical for any pool size
    and any batching schedule. *)

type t

val load : ?expect_digest:string -> Surrogate.Model.t -> string -> t
(** Load a saved network ({!Serialize} v2).  Raises [Failure] with a clear
    message on a missing/truncated/corrupt file, or when the loaded model's
    digest differs from [expect_digest] — a server refuses to start rather
    than serving a model it cannot vouch for. *)

val of_network : Pnn.Network.t -> t
(** Wrap an in-memory network (tests, in-process benches). *)

val network : t -> Pnn.Network.t
val inputs : t -> int
val outputs : t -> int

val digest : t -> string
(** {!Serialize.digest} of the wrapped network. *)

val padded_rows : int -> int
(** The row count a [k]-request batch is padded to (next power of two) —
    exposed so tests can pin the predictor-shape working set. *)

val predict_batch : t -> float array array -> int array
(** Classify a batch of feature vectors under nominal variation.  Each
    answer is bit-identical to {!Pnn.Network.predict} on that row alone.
    Raises [Invalid_argument] on an empty batch or a feature-width
    mismatch. *)

type mc_summary = { cls : int; mean_p : float; q05 : float; q95 : float }
(** [cls] = argmax of the draw-mean softmax probabilities; [mean_p]/[q05]/
    [q95] describe that class's probability across draws. *)

val predict_mc :
  t ->
  pool:Parallel.Pool.t ->
  model:Pnn.Variation.model ->
  draws:int ->
  seed:int ->
  float array ->
  mc_summary
(** Monte-Carlo uncertainty for one feature vector: [draws] realizations of
    [model] from [Rng.create seed], fanned over the pool, reduced in draw
    order — bit-identical for any pool size. *)
