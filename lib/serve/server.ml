(* The long-running inference server: a single-domain [Unix.select] event
   loop over a listening socket, per-connection frame readers/write buffers,
   and the {!Batcher} coalescing window.  Predict requests are batched into
   single forward passes on {!Serve_model}'s cached predictors; Monte-Carlo
   requests fan their draws over the shared {!Parallel} pool.

   Division of labour with the rest of the library: {!Protocol},
   {!Batcher} and {!Serve_model} produce every result and are wall-clock
   free; this module only decides *when* work runs (linger deadlines,
   select timeouts) and counts what happened.  The clock never feeds a
   result, which is exactly the shape pnnlint R2 enforces. *)

module P = Protocol

type config = {
  max_batch : int;
  linger : float; (* seconds *)
  mc_model : Pnn.Variation.model;
}

let default_config =
  { max_batch = 64; linger = 0.001; mc_model = Pnn.Variation.Uniform 0.1 }

type conn = {
  fd : Unix.file_descr;
  rd : P.reader;
  out : Buffer.t; (* queued response bytes; [out_pos] already sent *)
  (* pnnlint:allow R7 connection state is touched only by the select-loop
     domain that accepted the socket *)
  mutable out_pos : int;
  mutable closing : bool; (* close once the out buffer drains *)
}

type pending = { p_conn : conn; p_id : int32; p_features : float array }

type t = {
  model : Serve_model.t;
  cfg : config;
  listen_fd : Unix.file_descr;
  sock_path : string option; (* unlink on close for unix-domain sockets *)
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  stop_flag : bool Atomic.t;
  batcher : pending Batcher.t;
  (* pnnlint:allow R7 conns/stopping are touched only by the select-loop
     domain that owns this server; cross-domain control flows through
     stop_flag (already Atomic) and the self-pipe *)
  mutable conns : conn list;
  mutable stopping : bool;
  (* Observability counters: incremented on the loop domain, read by
     [stats] from any domain — hence Atomic, not plain mutable. *)
  served : int Atomic.t;
  mc_served : int Atomic.t;
  batches : int Atomic.t;
  errors : int Atomic.t;
  occupancy : int Atomic.t array;
  write_scratch : Bytes.t; (* per-server: the loop domain owns it *)
  read_scratch : Bytes.t;
}

(* pnnlint:allow R2 scheduling/observability only: the clock decides when a
   batch releases and feeds the select timeout — it is never an input to
   any response payload (Protocol/Batcher/Serve_model are clock-free) *)
let now () = Unix.gettimeofday ()

let validate_config cfg =
  if cfg.max_batch < 1 || cfg.max_batch > 4096 then
    invalid_arg "Server.create: max_batch out of range";
  if cfg.linger < 0.0 || not (Float.is_finite cfg.linger) then
    invalid_arg "Server.create: bad linger";
  Pnn.Variation.validate cfg.mc_model

let create ?(config = default_config) model addr =
  validate_config config;
  let domain =
    match addr with Unix.ADDR_UNIX _ -> Unix.PF_UNIX | Unix.ADDR_INET _ -> Unix.PF_INET
  in
  let sock_path =
    match addr with
    | Unix.ADDR_UNIX path ->
        if Sys.file_exists path then Unix.unlink path;
        Some path
    | Unix.ADDR_INET _ -> None
  in
  let listen_fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  (match addr with
  | Unix.ADDR_INET _ -> Unix.setsockopt listen_fd Unix.SO_REUSEADDR true
  | Unix.ADDR_UNIX _ -> ());
  (try
     Unix.bind listen_fd addr;
     Unix.listen listen_fd 64
   with e ->
     Unix.close listen_fd;
     raise e);
  Unix.set_nonblock listen_fd;
  let wake_r, wake_w = Unix.pipe () in
  Unix.set_nonblock wake_r;
  {
    model;
    cfg = config;
    listen_fd;
    sock_path;
    wake_r;
    wake_w;
    stop_flag = Atomic.make false;
    batcher = Batcher.create ~max_batch:config.max_batch ~linger:config.linger;
    conns = [];
    stopping = false;
    served = Atomic.make 0;
    mc_served = Atomic.make 0;
    batches = Atomic.make 0;
    errors = Atomic.make 0;
    occupancy = Array.init config.max_batch (fun _ -> Atomic.make 0);
    write_scratch = Bytes.create 65536;
    read_scratch = Bytes.create 65536;
  }

(* Safe from any domain: flip the flag, poke the self-pipe so a sleeping
   select wakes up. *)
let stop t =
  Atomic.set t.stop_flag true;
  try ignore (Unix.write t.wake_w (Bytes.make 1 '!') 0 1) with Unix.Unix_error _ -> ()

(* Safe from any domain: every counter is an Atomic. *)
let stats t =
  {
    P.served = Int64.of_int (Atomic.get t.served);
    mc_served = Int64.of_int (Atomic.get t.mc_served);
    batches = Int64.of_int (Atomic.get t.batches);
    errors = Int64.of_int (Atomic.get t.errors);
    occupancy = Array.map (fun c -> Int64.of_int (Atomic.get c)) t.occupancy;
  }

(* {1 Connection plumbing} *)

let enqueue conn frame = Buffer.add_bytes conn.out frame
let has_output conn = conn.out_pos < Buffer.length conn.out

let close_conn t conn =
  (try Unix.close conn.fd with Unix.Unix_error _ -> ());
  t.conns <- List.filter (fun c -> c != conn) t.conns

let respond t conn resp =
  (match resp with P.Error _ -> Atomic.incr t.errors | _ -> ());
  enqueue conn (P.encode_response resp)

(* {1 Request dispatch} *)

let handle_request t conn ~admitted req =
  match req with
  | P.Predict { id; features } ->
      if Array.length features <> Serve_model.inputs t.model then
        respond t conn
          (P.Error
             {
               id;
               message =
                 Printf.sprintf "expected %d features, got %d"
                   (Serve_model.inputs t.model) (Array.length features);
             })
      else
        Batcher.push t.batcher ~now:admitted
          { p_conn = conn; p_id = id; p_features = features }
  | P.Predict_mc { id; features; draws; seed } ->
      if Array.length features <> Serve_model.inputs t.model then
        respond t conn
          (P.Error
             {
               id;
               message =
                 Printf.sprintf "expected %d features, got %d"
                   (Serve_model.inputs t.model) (Array.length features);
             })
      else begin
        let { Serve_model.cls; mean_p; q05; q95 } =
          Serve_model.predict_mc t.model
            ~pool:(Parallel.get_pool ())
            ~model:t.cfg.mc_model ~draws ~seed:(Int32.to_int seed land 0x3fffffff)
            features
        in
        Atomic.incr t.mc_served;
        respond t conn (P.Mc_class { id; cls; mean_p; q05; q95 })
      end
  | P.Stats { id } -> respond t conn (P.Stats_reply { id; stats = stats t })
  | P.Shutdown { id } ->
      t.stopping <- true;
      respond t conn (P.Shutdown_ack { id })

let run_batch t batch =
  match batch with
  | [] -> ()
  | _ ->
      let items = Array.of_list batch in
      let rows = Array.map (fun p -> p.p_features) items in
      let classes = Serve_model.predict_batch t.model rows in
      Array.iteri
        (fun i p -> respond t p.p_conn (P.Class { id = p.p_id; cls = classes.(i) }))
        items;
      let k = Array.length items in
      ignore (Atomic.fetch_and_add t.served k);
      Atomic.incr t.batches;
      Atomic.incr t.occupancy.(k - 1)

let flush_batches t ~force =
  if force then List.iter (run_batch t) (Batcher.drain t.batcher)
  else
    let rec go () =
      match Batcher.pop_ready t.batcher ~now:(now ()) with
      | [] -> ()
      | batch ->
          run_batch t batch;
          go ()
    in
    go ()

let handle_readable t conn =
  let chunk = t.read_scratch in
  (* Drain the socket before parsing: pipelined clients pack many frames
     per segment, and one pass over them costs one syscall. *)
  let rec slurp () =
    match Unix.read conn.fd chunk 0 (Bytes.length chunk) with
    | 0 -> conn.closing <- true (* EOF: flush what we owe, then close *)
    | n ->
        P.feed conn.rd chunk ~pos:0 ~len:n;
        if n = Bytes.length chunk then slurp ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
        ()
    | exception Unix.Unix_error _ -> conn.closing <- true
  in
  slurp ();
  (* One admission stamp for the whole slurp: every frame in it arrived in
     the same readiness round, and one clock read per round is far cheaper
     than one per request. *)
  let admitted = now () in
  let rec drain () =
    match P.next_frame conn.rd with
    | Ok None -> ()
    | Ok (Some payload) ->
        (match P.decode_request payload with
        | Ok req -> handle_request t conn ~admitted req
        | Error msg ->
            (* Malformed payload inside an intact frame: answer and keep
               the connection — framing is still in sync. *)
            respond t conn (P.Error { id = 0l; message = msg }));
        drain ()
    | Error msg ->
        (* Framing is unrecoverable: report and hang up. *)
        respond t conn (P.Error { id = 0l; message = msg });
        conn.closing <- true
  in
  drain ()

(* [t.write_scratch]: one extra memcpy per write syscall (bounded at
   64 KiB) in exchange for O(1)-amortized appends in [enqueue] — a
   realloc-per-frame scheme is quadratic in frames queued per round. *)
let handle_writable t conn =
  let len = Buffer.length conn.out - conn.out_pos in
  if len > 0 then begin
    let k = min len (Bytes.length t.write_scratch) in
    Buffer.blit conn.out conn.out_pos t.write_scratch 0 k;
    match Unix.write conn.fd t.write_scratch 0 k with
    | n ->
        conn.out_pos <- conn.out_pos + n;
        if conn.out_pos = Buffer.length conn.out then begin
          Buffer.clear conn.out;
          conn.out_pos <- 0
        end
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
        ()
    | exception Unix.Unix_error _ -> close_conn t conn
  end

let accept_loop t =
  let rec go () =
    match Unix.accept t.listen_fd with
    | fd, _ ->
        Unix.set_nonblock fd;
        t.conns <-
          { fd; rd = P.reader (); out = Buffer.create 4096; out_pos = 0; closing = false }
          :: t.conns;
        go ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
        ()
  in
  go ()

let close t =
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (try Unix.close t.wake_r with Unix.Unix_error _ -> ());
  (try Unix.close t.wake_w with Unix.Unix_error _ -> ());
  (match t.sock_path with
  | Some path -> ( try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
  | None -> ());
  List.iter (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) t.conns;
  t.conns <- []

let run t =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let rec loop () =
    if Atomic.get t.stop_flag then t.stopping <- true;
    if t.stopping then flush_batches t ~force:true;
    let finished =
      t.stopping
      && Batcher.pending t.batcher = 0
      && not (List.exists has_output t.conns)
    in
    if not finished then begin
      let timeout =
        if t.stopping then 0.05
        else
          match Batcher.next_deadline t.batcher with
          | Some deadline -> Float.max 0.0 (Float.min 1.0 (deadline -. now ()))
          | None -> 1.0
      in
      let read_fds =
        t.wake_r
        :: (if t.stopping then [] else [ t.listen_fd ])
        @ List.filter_map
            (fun c -> if c.closing then None else Some c.fd)
            t.conns
      in
      let write_fds = List.filter_map (fun c -> if has_output c then Some c.fd else None) t.conns in
      (match Unix.select read_fds write_fds [] timeout with
      | readable, writable, _ ->
          if List.memq t.wake_r readable then begin
            let buf = Bytes.create 64 in
            try ignore (Unix.read t.wake_r buf 0 64) with Unix.Unix_error _ -> ()
          end;
          if List.memq t.listen_fd readable then accept_loop t;
          List.iter
            (fun conn -> if List.memq conn.fd readable then handle_readable t conn)
            t.conns;
          flush_batches t ~force:t.stopping;
          List.iter
            (fun conn ->
              if List.memq conn.fd writable || has_output conn then
                handle_writable t conn)
            t.conns;
          (* Closing connections go away once they owe nothing. *)
          List.iter
            (fun conn ->
              if conn.closing && not (has_output conn) then close_conn t conn)
            (List.filter (fun c -> c.closing) t.conns)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      loop ()
    end
  in
  Fun.protect ~finally:(fun () -> close t) loop
