(* A small blocking client for the wire protocol — what the load generator,
   the smoke target and the protocol tests speak through.  One outstanding
   pipeline per connection: callers may send many requests before reading
   any response (the server answers batched predicts at batch boundaries,
   matched by request id). *)

module P = Protocol

type t = { fd : Unix.file_descr; rd : P.reader }

let connect addr =
  let domain =
    match addr with Unix.ADDR_UNIX _ -> Unix.PF_UNIX | Unix.ADDR_INET _ -> Unix.PF_INET
  in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  (try Unix.connect fd addr
   with e ->
     Unix.close fd;
     raise e);
  { fd; rd = P.reader () }

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let send t req =
  let frame = P.encode_request req in
  let len = Bytes.length frame in
  let sent = ref 0 in
  while !sent < len do
    sent := !sent + Unix.write t.fd frame !sent (len - !sent)
  done

(* Raw bytes straight onto the wire — the malformed-frame tests need to
   send things [encode_request] refuses to produce. *)
let send_raw t bytes =
  let len = Bytes.length bytes in
  let sent = ref 0 in
  while !sent < len do
    sent := !sent + Unix.write t.fd bytes !sent (len - !sent)
  done

let recv t =
  let chunk = Bytes.create 4096 in
  let rec go () =
    match P.next_frame t.rd with
    | Error msg -> failwith ("Client.recv: " ^ msg)
    | Ok (Some payload) -> (
        match P.decode_response payload with
        | Ok resp -> resp
        | Error msg -> failwith ("Client.recv: bad response: " ^ msg))
    | Ok None -> (
        match Unix.read t.fd chunk 0 (Bytes.length chunk) with
        | 0 -> failwith "Client.recv: connection closed by server"
        | n ->
            P.feed t.rd chunk ~pos:0 ~len:n;
            go ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ())
  in
  go ()

(* {1 One-shot conveniences} *)

let rpc t req =
  send t req;
  recv t

let predict t ~id features =
  match rpc t (P.Predict { id; features }) with
  | P.Class { id = rid; cls } when rid = id -> cls
  | P.Error { message; _ } -> failwith ("Client.predict: server error: " ^ message)
  | _ -> failwith "Client.predict: unexpected response"

let predict_mc t ~id ~draws ~seed features =
  match rpc t (P.Predict_mc { id; features; draws; seed }) with
  | P.Mc_class { id = rid; cls; mean_p; q05; q95 } when rid = id ->
      (cls, mean_p, q05, q95)
  | P.Error { message; _ } -> failwith ("Client.predict_mc: server error: " ^ message)
  | _ -> failwith "Client.predict_mc: unexpected response"

let stats t =
  match rpc t (P.Stats { id = 0l }) with
  | P.Stats_reply { stats; _ } -> stats
  | _ -> failwith "Client.stats: unexpected response"

let shutdown t =
  match rpc t (P.Shutdown { id = 0l }) with
  | P.Shutdown_ack _ -> ()
  | _ -> failwith "Client.shutdown: unexpected response"
