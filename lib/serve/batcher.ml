(* Request coalescing: admit items as they arrive, release a batch when it
   fills ([max_batch]) or when the oldest admitted item has waited [linger]
   seconds.

   The module never reads a clock — every operation takes [now] from the
   caller.  That keeps the batching core wall-clock-free (pnnlint R2: time
   may schedule work, it must never produce results) and makes the policy
   directly testable with synthetic timestamps. *)

type 'a t = {
  max_batch : int;
  linger : float; (* seconds *)
  q : ('a * float) Queue.t; (* item, admission timestamp *)
}

let create ~max_batch ~linger =
  if max_batch < 1 then invalid_arg "Batcher.create: max_batch < 1";
  if linger < 0.0 || not (Float.is_finite linger) then
    invalid_arg "Batcher.create: bad linger";
  { max_batch; linger; q = Queue.create () }

let max_batch t = t.max_batch
let linger t = t.linger
let pending t = Queue.length t.q

let push t ~now item = Queue.add (item, now) t.q

let next_deadline t =
  match Queue.peek_opt t.q with
  | None -> None
  | Some (_, admitted) -> Some (admitted +. t.linger)

let take_n t n =
  let rec go k acc =
    if k = 0 then List.rev acc
    else
      match Queue.take_opt t.q with
      | None -> List.rev acc
      | Some (item, _) -> go (k - 1) (item :: acc)
  in
  go n []

(* A full batch releases regardless of age; otherwise everything pending
   releases once the front item's linger expires.  One call returns at most
   one batch — callers loop while the queue stays full. *)
let pop_ready t ~now =
  if Queue.length t.q >= t.max_batch then take_n t t.max_batch
  else
    match next_deadline t with
    | Some deadline when now >= deadline -> take_n t t.max_batch
    | Some _ | None -> []

(* Drain unconditionally (shutdown): every pending item, in admission order,
   chunked at the batch cap. *)
let drain t =
  let rec go acc =
    match take_n t t.max_batch with [] -> List.rev acc | b -> go (b :: acc)
  in
  go []
