(** Blocking client for the inference-service wire protocol (load
    generator, smoke target, tests).  Requests may be pipelined: send many,
    then match responses by request id. *)

type t

val connect : Unix.sockaddr -> t
val close : t -> unit

val send : t -> Protocol.request -> unit
val send_raw : t -> bytes -> unit
(** Raw bytes onto the wire — for malformed-frame tests. *)

val recv : t -> Protocol.response
(** Block until one complete response frame arrives.  Raises [Failure] on
    EOF or an undecodable response. *)

val rpc : t -> Protocol.request -> Protocol.response
(** [send] then [recv] — only safe when nothing else is in flight. *)

val predict : t -> id:int32 -> float array -> int
val predict_mc :
  t -> id:int32 -> draws:int -> seed:int32 -> float array -> int * float * float * float
(** [(cls, mean_p, q05, q95)]. *)

val stats : t -> Protocol.server_stats
val shutdown : t -> unit
