(* Length-prefixed binary wire protocol for the inference service.

   Framing: a 4-byte big-endian unsigned payload length, then the payload.
   Floats travel as the big-endian bits of their IEEE-754 double
   representation ([Int64.bits_of_float]), so feature vectors and
   Monte-Carlo quantiles cross the wire bit-exactly — the determinism
   contract extends to the protocol.

   This module is a pure codec over [bytes]: no sockets, no clocks, no
   global state.  The server, the load generator and the tests all speak
   through it. *)

let version = 1

(* A frame larger than this is a protocol error, not a bigger buffer: the
   largest legitimate payload (a max-feature MC request) is ~32 KiB. *)
let max_frame = 1 lsl 20
let max_features = 4096
let max_mc_draws = 1024

type request =
  | Predict of { id : int32; features : float array }
  | Predict_mc of { id : int32; features : float array; draws : int; seed : int32 }
  | Stats of { id : int32 }
  | Shutdown of { id : int32 }

type server_stats = {
  served : int64;  (** single-class answers sent *)
  mc_served : int64;  (** Monte-Carlo answers sent *)
  batches : int64;  (** forward passes run by the batcher *)
  errors : int64;  (** error responses sent *)
  occupancy : int64 array;
      (** [occupancy.(i)] counts batches that carried [i + 1] requests;
          length = the server's max batch size *)
}

type response =
  | Class of { id : int32; cls : int }
  | Mc_class of { id : int32; cls : int; mean_p : float; q05 : float; q95 : float }
  | Stats_reply of { id : int32; stats : server_stats }
  | Shutdown_ack of { id : int32 }
  | Error of { id : int32; message : string }

let request_id = function
  | Predict { id; _ } | Predict_mc { id; _ } | Stats { id } | Shutdown { id } -> id

let response_id = function
  | Class { id; _ }
  | Mc_class { id; _ }
  | Stats_reply { id; _ }
  | Shutdown_ack { id }
  | Error { id; _ } ->
      id

(* {1 Little building blocks} *)

let add_u8 b v = Buffer.add_uint8 b (v land 0xff)
let add_u16 b v = Buffer.add_uint16_be b (v land 0xffff)
let add_u32 b (v : int32) = Buffer.add_int32_be b v
let add_u64 b (v : int64) = Buffer.add_int64_be b v
let add_f64 b v = Buffer.add_int64_be b (Int64.bits_of_float v)

(* Decoding reads from a payload [bytes] with explicit bounds: every getter
   checks before it reads, so truncated payloads surface as [Error _]
   results, never as escaping exceptions. *)
(* pnnlint:allow R7 a cursor decodes one payload on one domain; it lives for
   the duration of a single [decode_*] call *)
type cursor = { data : bytes; mutable pos : int; limit : int }

exception Decode of string

let need cur n what =
  if cur.pos + n > cur.limit then
    raise (Decode (Printf.sprintf "truncated payload reading %s" what))

let get_u8 cur what =
  need cur 1 what;
  let v = Char.code (Bytes.get cur.data cur.pos) in
  cur.pos <- cur.pos + 1;
  v

let get_u16 cur what =
  need cur 2 what;
  let v = Bytes.get_uint16_be cur.data cur.pos in
  cur.pos <- cur.pos + 2;
  v

let get_u32 cur what =
  need cur 4 what;
  let v = Bytes.get_int32_be cur.data cur.pos in
  cur.pos <- cur.pos + 4;
  v

let get_u64 cur what =
  need cur 8 what;
  let v = Bytes.get_int64_be cur.data cur.pos in
  cur.pos <- cur.pos + 8;
  v

let get_f64 cur what = Int64.float_of_bits (get_u64 cur what)

let get_floats cur n what = Array.init n (fun _ -> get_f64 cur what)

let finish cur v =
  if cur.pos <> cur.limit then
    raise (Decode (Printf.sprintf "%d trailing bytes" (cur.limit - cur.pos)));
  v

(* {1 Framing} *)

let frame payload =
  let n = Bytes.length payload in
  if n > max_frame then invalid_arg "Protocol.frame: payload exceeds max_frame";
  let out = Bytes.create (4 + n) in
  Bytes.set_int32_be out 0 (Int32.of_int n);
  Bytes.blit payload 0 out 4 n;
  out

let of_buffer b = frame (Buffer.to_bytes b)

(* {1 Requests} *)

let kind_predict = 1
let kind_predict_mc = 2
let kind_stats = 3
let kind_shutdown = 4

let encode_request req =
  let b = Buffer.create 64 in
  add_u8 b version;
  (match req with
  | Predict { id; features } ->
      add_u8 b kind_predict;
      add_u32 b id;
      add_u16 b (Array.length features);
      Array.iter (add_f64 b) features
  | Predict_mc { id; features; draws; seed } ->
      add_u8 b kind_predict_mc;
      add_u32 b id;
      add_u16 b (Array.length features);
      add_u16 b draws;
      add_u32 b seed;
      Array.iter (add_f64 b) features
  | Stats { id } ->
      add_u8 b kind_stats;
      add_u32 b id
  | Shutdown { id } ->
      add_u8 b kind_shutdown;
      add_u32 b id);
  of_buffer b

let decode_request payload =
  let cur = { data = payload; pos = 0; limit = Bytes.length payload } in
  match
    let v = get_u8 cur "version" in
    if v <> version then
      raise (Decode (Printf.sprintf "unsupported protocol version %d" v));
    let kind = get_u8 cur "kind" in
    let id = get_u32 cur "request id" in
    if kind = kind_predict then begin
      let n = get_u16 cur "feature count" in
      if n > max_features then raise (Decode "feature count exceeds limit");
      finish cur (Predict { id; features = get_floats cur n "feature" })
    end
    else if kind = kind_predict_mc then begin
      let n = get_u16 cur "feature count" in
      if n > max_features then raise (Decode "feature count exceeds limit");
      let draws = get_u16 cur "draw count" in
      if draws < 1 || draws > max_mc_draws then
        raise (Decode "draw count out of range");
      let seed = get_u32 cur "mc seed" in
      finish cur (Predict_mc { id; features = get_floats cur n "feature"; draws; seed })
    end
    else if kind = kind_stats then finish cur (Stats { id })
    else if kind = kind_shutdown then finish cur (Shutdown { id })
    else raise (Decode (Printf.sprintf "unknown request kind %d" kind))
  with
  | req -> Ok req
  | exception Decode msg -> Error msg

(* {1 Responses} *)

let status_ok = 0
let status_error = 1

let encode_response resp =
  let b = Buffer.create 64 in
  add_u8 b version;
  (match resp with
  | Class { id; cls } ->
      add_u8 b status_ok;
      add_u8 b kind_predict;
      add_u32 b id;
      add_u16 b cls
  | Mc_class { id; cls; mean_p; q05; q95 } ->
      add_u8 b status_ok;
      add_u8 b kind_predict_mc;
      add_u32 b id;
      add_u16 b cls;
      add_f64 b mean_p;
      add_f64 b q05;
      add_f64 b q95
  | Stats_reply { id; stats } ->
      add_u8 b status_ok;
      add_u8 b kind_stats;
      add_u32 b id;
      add_u64 b stats.served;
      add_u64 b stats.mc_served;
      add_u64 b stats.batches;
      add_u64 b stats.errors;
      add_u16 b (Array.length stats.occupancy);
      Array.iter (add_u64 b) stats.occupancy
  | Shutdown_ack { id } ->
      add_u8 b status_ok;
      add_u8 b kind_shutdown;
      add_u32 b id
  | Error { id; message } ->
      add_u8 b status_error;
      add_u8 b 0;
      add_u32 b id;
      let message =
        if String.length message > 0xffff then String.sub message 0 0xffff
        else message
      in
      add_u16 b (String.length message);
      Buffer.add_string b message);
  of_buffer b

let decode_response payload =
  let cur = { data = payload; pos = 0; limit = Bytes.length payload } in
  match
    let v = get_u8 cur "version" in
    if v <> version then
      raise (Decode (Printf.sprintf "unsupported protocol version %d" v));
    let status = get_u8 cur "status" in
    let kind = get_u8 cur "kind" in
    let id = get_u32 cur "request id" in
    if status = status_error then begin
      let n = get_u16 cur "error length" in
      need cur n "error message";
      let message = Bytes.sub_string cur.data cur.pos n in
      cur.pos <- cur.pos + n;
      finish cur (Error { id; message })
    end
    else if kind = kind_predict then finish cur (Class { id; cls = get_u16 cur "class" })
    else if kind = kind_predict_mc then begin
      let cls = get_u16 cur "class" in
      let mean_p = get_f64 cur "mean_p" in
      let q05 = get_f64 cur "q05" in
      let q95 = get_f64 cur "q95" in
      finish cur (Mc_class { id; cls; mean_p; q05; q95 })
    end
    else if kind = kind_stats then begin
      let served = get_u64 cur "served" in
      let mc_served = get_u64 cur "mc_served" in
      let batches = get_u64 cur "batches" in
      let errors = get_u64 cur "errors" in
      let n = get_u16 cur "occupancy length" in
      let occupancy = Array.init n (fun _ -> get_u64 cur "occupancy") in
      finish cur (Stats_reply { id; stats = { served; mc_served; batches; errors; occupancy } })
    end
    else if kind = kind_shutdown then finish cur (Shutdown_ack { id })
    else raise (Decode (Printf.sprintf "unknown response kind %d" kind))
  with
  | resp -> Ok resp
  | exception Decode msg -> Error msg

(* {1 Incremental frame reader} *)

(* Accumulates raw stream bytes and yields complete payloads.  A declared
   length beyond [max_frame] is unrecoverable (the stream can never resync),
   so it surfaces as [Error] and the connection should be dropped. *)
(* pnnlint:allow R7 each reader belongs to one connection, fed only by the
   domain that owns that connection's event loop *)
type reader = { mutable buf : Bytes.t; mutable start : int; mutable len : int }

let reader () = { buf = Bytes.create 4096; start = 0; len = 0 }

let feed r src ~pos ~len =
  if len < 0 || pos < 0 || pos + len > Bytes.length src then
    invalid_arg "Protocol.feed";
  let cap = Bytes.length r.buf in
  if r.start + r.len + len > cap then begin
    (* compact, growing if the live bytes + new bytes still don't fit *)
    let need = r.len + len in
    let cap' = if need > cap then max need (2 * cap) else cap in
    let buf' = if cap' > cap then Bytes.create cap' else r.buf in
    Bytes.blit r.buf r.start buf' 0 r.len;
    r.buf <- buf';
    r.start <- 0
  end;
  Bytes.blit src pos r.buf (r.start + r.len) len;
  r.len <- r.len + len

let next_frame r =
  if r.len < 4 then Ok None
  else
    let declared = Int32.to_int (Bytes.get_int32_be r.buf r.start) in
    if declared < 0 || declared > max_frame then
      Error (Printf.sprintf "oversized frame (%d bytes declared)" declared)
    else if r.len < 4 + declared then Ok None
    else begin
      let payload = Bytes.sub r.buf (r.start + 4) declared in
      r.start <- r.start + 4 + declared;
      r.len <- r.len - 4 - declared;
      if r.len = 0 then r.start <- 0;
      Ok (Some payload)
    end

let buffered r = r.len
