(* The serve-time view of a trained network.

   This is the train-time / serve-time API split: a [Serve_model.t] wraps a
   [Network.t] it treats as strictly read-only — no optimizer, no loss
   graphs, no weight mutation ever goes through this module.  Everything a
   server needs is here: digest-verified loading, batched nominal
   classification on cached fixed-shape predictors, and per-request
   Monte-Carlo uncertainty with the deterministic ordered reduction.

   Determinism contract: answers depend only on (model file, request
   payload).  Batch composition cannot change an answer (the forward pass is
   row-independent — see {!Network.predictor_logits}), the MC reduction is
   ordered by draw index, and draws are pre-drawn sequentially from a
   request-seeded [Rng.t] before any fan-out, so results are bit-identical
   for any pool size and any batching schedule. *)

module Network = Pnn.Network
module Layer = Pnn.Layer
module Serialize = Pnn.Serialize
module Variation = Pnn.Variation

type t = {
  network : Network.t;
  inputs : int;
  outputs : int;
  digest : string;
  ctx : Variation.ctx;
}

let of_network network =
  let layers = Network.layers network in
  let first = List.hd layers in
  let last = List.nth layers (List.length layers - 1) in
  {
    network;
    inputs = Layer.inputs first;
    outputs = Layer.outputs last;
    digest = Serialize.digest network;
    ctx = Variation.ctx_of_network network;
  }

let load ?expect_digest surrogate path =
  if not (Sys.file_exists path) then
    failwith (Printf.sprintf "Serve_model: model file %s does not exist" path);
  let network = Serialize.load_file surrogate path in
  let m = of_network network in
  (match expect_digest with
  | Some d when d <> m.digest ->
      failwith
        (Printf.sprintf
           "Serve_model: digest mismatch for %s (expected %s, loaded %s)" path d
           m.digest)
  | Some _ | None -> ());
  m

let network m = m.network
let inputs m = m.inputs
let outputs m = m.outputs
let digest m = m.digest

(* Batches are padded up to the next power of two before hitting a
   predictor, so the compiled-graph working set stays at the handful of
   shapes {1, 2, 4, ...} instead of one graph per occupancy.  Padding rows
   are zeros; row independence means they cannot perturb the real rows, and
   their answers are discarded. *)
let rec next_pow2 n k = if k >= n then k else next_pow2 n (2 * k)

let padded_rows n = next_pow2 n 1

let batch_tensor m rows =
  let k = Array.length rows in
  if k = 0 then invalid_arg "Serve_model.predict_batch: empty batch";
  let padded = padded_rows k in
  let data = Array.make (padded * m.inputs) 0.0 in
  Array.iteri
    (fun i row ->
      if Array.length row <> m.inputs then
        invalid_arg "Serve_model.predict_batch: feature width mismatch";
      Array.blit row 0 data (i * m.inputs) m.inputs)
    rows;
  Tensor.create padded m.inputs data

let predict_batch m rows =
  let x = batch_tensor m rows in
  let p = Network.predictor_cached m.network ~rows:(Tensor.rows x) ~cols:m.inputs in
  let all = Network.predictor_predict p x in
  Array.sub all 0 (Array.length rows)

(* {1 Monte-Carlo uncertainty} *)

type mc_summary = { cls : int; mean_p : float; q05 : float; q95 : float }

let argmax a =
  let best = ref 0 in
  for j = 1 to Array.length a - 1 do
    if a.(j) > a.(!best) then best := j
  done;
  !best

let predict_mc m ~pool ~model ~draws ~seed features =
  if Array.length features <> m.inputs then
    invalid_arg "Serve_model.predict_mc: feature width mismatch";
  if draws < 1 then invalid_arg "Serve_model.predict_mc: draws < 1";
  (* Pre-draw sequentially from the request-seeded stream, then fan the pure
     forward passes out — the Evaluation.mc_accuracy pattern. *)
  let rng = Rng.create seed in
  let noises = Array.of_list (Variation.draw_many rng model m.ctx ~n:draws) in
  let x = Tensor.create 1 m.inputs features in
  let per_draw =
    Parallel.Pool.map_array pool
      (fun noise ->
        let p = Network.predictor_cached m.network ~rows:1 ~cols:m.inputs in
        let logits = Network.predictor_logits p ~noise x in
        let probs = Tensor.zeros 1 m.outputs in
        Tensor.softmax_rows_into logits ~dst:probs;
        Array.init m.outputs (fun j -> Tensor.get probs 0 j))
      noises
  in
  (* Ordered mean over the draw index: bit-identical at any pool size. *)
  let mean = Array.make m.outputs 0.0 in
  Array.iter
    (fun row ->
      for j = 0 to m.outputs - 1 do
        mean.(j) <- mean.(j) +. row.(j)
      done)
    per_draw;
  let inv_n = 1.0 /. float_of_int draws in
  for j = 0 to m.outputs - 1 do
    mean.(j) <- mean.(j) *. inv_n
  done;
  let cls = argmax mean in
  let p_cls = Array.map (fun row -> row.(cls)) per_draw in
  {
    cls;
    mean_p = mean.(cls);
    q05 = Stats.quantile p_cls 0.05;
    q95 = Stats.quantile p_cls 0.95;
  }
