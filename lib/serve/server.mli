(** The long-running inference server: a single-domain [Unix.select] event
    loop speaking {!Protocol} over a unix-domain or TCP socket, coalescing
    predict requests through {!Batcher} into batched forward passes on
    {!Serve_model}'s cached predictors, and fanning Monte-Carlo draws over
    the shared {!Parallel} pool.

    The clock only schedules (linger deadlines, select timeouts) and counts
    (latency-free occupancy/served counters); every response payload is
    produced by the wall-clock-free {!Protocol}/{!Batcher}/{!Serve_model}
    layer, so identical request streams get bit-identical responses
    regardless of timing, batching schedule, or pool size. *)

type config = {
  max_batch : int;  (** batch releases when this many requests coalesce *)
  linger : float;  (** seconds the oldest request may wait for company *)
  mc_model : Pnn.Variation.model;  (** variation family for [Predict_mc] draws *)
}

val default_config : config
(** 64-request batches, 1 ms linger, [Uniform 0.1] variation. *)

type t

val create : ?config:config -> Serve_model.t -> Unix.sockaddr -> t
(** Bind and listen (unix-domain paths are unlinked first and on close).
    After [create] returns, clients may connect — the backlog holds them
    until {!run} starts accepting.  Raises [Invalid_argument] on a bad
    config and [Unix.Unix_error] on bind failures. *)

val run : t -> unit
(** The event loop.  Blocks until a [Shutdown] request arrives or {!stop}
    is called, drains pending batches, flushes every connection, closes the
    socket, and returns.  The Monte-Carlo seed from the wire is masked to a
    non-negative int before reaching [Rng.create]. *)

val stop : t -> unit
(** Request a graceful stop; safe to call from any domain (atomic flag +
    self-pipe wakeup). *)

val stats : t -> Protocol.server_stats
(** Counter snapshot.  Only meaningful on the loop's own domain (a protocol
    [Stats] request) or after {!run} has returned. *)
