(** Nonlinear DC operating-point analysis by modified nodal analysis (MNA)
    with damped Newton–Raphson.

    Unknowns are the non-ground node voltages plus one branch current per
    voltage source.  Nonlinear transistors are linearized at each iterate with
    their companion model (gm, gds stamps + equivalent current source).  A
    voltage step limiter (damping) keeps the iteration stable through the
    transistor's exponential-ish region. *)

type options = {
  max_iterations : int;
  tolerance : float;  (** convergence: max |ΔV| between iterates *)
  damping : float;  (** max voltage change per node per iteration (V) *)
  gmin : float;  (** shunt conductance to ground on every node (helps conditioning) *)
}

val default_options : options

type solution = { voltages : float array; iterations : int }
(** [voltages.(n)] is the solved voltage of node [n] ([voltages.(0) = 0]). *)

exception No_convergence of { iterations : int; residual : float }

type workspace
(** Reusable Newton scratch: the stamped MNA system plus the LU buffers it is
    copied into each iteration.  One workspace serves any number of
    sequential solves of the same system dimension; it is {e not} safe to
    share across domains. *)

val make_workspace : dim:int -> workspace

val workspace_for : Netlist.t -> workspace
(** A workspace sized for this netlist's MNA system
    ((node count − 1) + voltage-source count). *)

val solve :
  ?options:options ->
  ?initial:float array ->
  ?workspace:workspace ->
  Egt.params -> Netlist.t -> solution
(** [solve model netlist] computes the DC operating point.  [initial] is a
    warm-start guess of node voltages (length [node_count]); the default
    starts every node at 0.5 V.  [workspace] (default: freshly allocated)
    hoists the per-solve matrix allocations out of repeated solves — results
    are bit-identical with or without it.  Raises {!No_convergence} after
    [max_iterations], and [Invalid_argument] if the netlist fails
    {!Netlist.validate} or the workspace dimension does not match. *)
