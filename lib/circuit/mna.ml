type options = {
  max_iterations : int;
  tolerance : float;
  damping : float;
  gmin : float;
}

let default_options =
  { max_iterations = 200; tolerance = 1e-9; damping = 0.3; gmin = 1e-12 }

type solution = { voltages : float array; iterations : int }

exception No_convergence of { iterations : int; residual : float }

type workspace = {
  ws_dim : int;
  ws_a : float array array;
  ws_rhs : float array;
  ws_lu : float array array;
  ws_x : float array;
}

let make_workspace ~dim =
  {
    ws_dim = dim;
    ws_a = Array.make_matrix dim dim 0.0;
    ws_rhs = Array.make dim 0.0;
    ws_lu = Array.make_matrix dim dim 0.0;
    ws_x = Array.make dim 0.0;
  }

let system_dim netlist =
  let n_v = Netlist.node_count netlist - 1 in
  let n_src =
    List.length
      (List.filter
         (fun e -> match e with Netlist.Vsource _ -> true | _ -> false)
         (Netlist.elements netlist))
  in
  n_v + n_src

let workspace_for netlist = make_workspace ~dim:(system_dim netlist)

(* Index mapping: node n (1..N-1) -> n-1 ; source s -> (N-1) + s. *)

let solve ?(options = default_options) ?initial ?workspace model netlist =
  (match Netlist.validate netlist with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Mna.solve: invalid netlist: " ^ msg));
  let n_nodes = Netlist.node_count netlist in
  let n_v = n_nodes - 1 in
  let elems = Netlist.elements netlist in
  let sources =
    List.filteri (fun _ e -> match e with Netlist.Vsource _ -> true | _ -> false) elems
  in
  let n_src = List.length sources in
  let dim = n_v + n_src in
  let volts = Array.make n_nodes 0.5 in
  volts.(0) <- 0.0;
  (match initial with
  | Some init ->
      if Array.length init <> n_nodes then invalid_arg "Mna.solve: bad initial length";
      Array.blit init 0 volts 0 n_nodes;
      volts.(0) <- 0.0
  | None -> ());
  let idx n = n - 1 in
  (* The Newton loop reuses one set of buffers: the stamped system (a, rhs)
     and the LU scratch (lu, x) it is copied into each iteration, because
     [Linalg.solve_in_place] destroys its inputs.  A caller-provided
     [workspace] hoists all four allocations out of repeated solves
     (DC sweeps stamp thousands of same-dimension systems). *)
  let ws =
    match workspace with
    | None -> make_workspace ~dim
    | Some ws ->
        if ws.ws_dim <> dim then invalid_arg "Mna.solve: workspace dim mismatch";
        ws
  in
  let a = ws.ws_a and rhs = ws.ws_rhs in
  let stamp_g n1 n2 g =
    if n1 > 0 then a.(idx n1).(idx n1) <- a.(idx n1).(idx n1) +. g;
    if n2 > 0 then a.(idx n2).(idx n2) <- a.(idx n2).(idx n2) +. g;
    if n1 > 0 && n2 > 0 then begin
      a.(idx n1).(idx n2) <- a.(idx n1).(idx n2) -. g;
      a.(idx n2).(idx n1) <- a.(idx n2).(idx n1) -. g
    end
  in
  (* current i flowing INTO node n from an equivalent source *)
  let stamp_i n i = if n > 0 then rhs.(idx n) <- rhs.(idx n) +. i in
  let rec iterate iter =
    if iter >= options.max_iterations then
      raise (No_convergence { iterations = iter; residual = infinity });
    (* reset system *)
    for r = 0 to dim - 1 do
      rhs.(r) <- 0.0;
      for c = 0 to dim - 1 do
        a.(r).(c) <- 0.0
      done
    done;
    for n = 1 to n_nodes - 1 do
      a.(idx n).(idx n) <- a.(idx n).(idx n) +. options.gmin
    done;
    let src_i = ref 0 in
    List.iter
      (fun e ->
        match e with
        | Netlist.Resistor { a = n1; b = n2; ohms } -> stamp_g n1 n2 (1.0 /. ohms)
        | Netlist.Vsource { plus; minus; volts = v; _ } ->
            let k = n_v + !src_i in
            incr src_i;
            if plus > 0 then begin
              a.(idx plus).(k) <- a.(idx plus).(k) +. 1.0;
              a.(k).(idx plus) <- a.(k).(idx plus) +. 1.0
            end;
            if minus > 0 then begin
              a.(idx minus).(k) <- a.(idx minus).(k) -. 1.0;
              a.(k).(idx minus) <- a.(k).(idx minus) -. 1.0
            end;
            rhs.(k) <- v
        | Netlist.Capacitor _ -> () (* open circuit in DC *)
        | Netlist.Isource { into; out_of; amps } ->
            stamp_i into amps;
            stamp_i out_of (-.amps)
        | Netlist.Transistor { gate; drain; source; w_um; l_um } ->
            let vg = volts.(gate) and vd = volts.(drain) and vs = volts.(source) in
            let { Egt.id; gm; gds } =
              Egt.evaluate model ~w_um ~l_um ~vgs:(vg -. vs) ~vds:(vd -. vs)
            in
            (* Companion model: i_DS ≈ id0 + gm·Δvgs + gds·Δvds.
               Current leaves the drain node and enters the source node. *)
            let ieq = id -. (gm *. (vg -. vs)) -. (gds *. (vd -. vs)) in
            (* gds between drain and source *)
            stamp_g drain source gds;
            (* gm as VCCS: current gm·(vg - vs) from drain to source *)
            if drain > 0 then begin
              if gate > 0 then a.(idx drain).(idx gate) <- a.(idx drain).(idx gate) +. gm;
              if source > 0 then
                a.(idx drain).(idx source) <- a.(idx drain).(idx source) -. gm
            end;
            if source > 0 then begin
              if gate > 0 then a.(idx source).(idx gate) <- a.(idx source).(idx gate) -. gm;
              if source > 0 then
                a.(idx source).(idx source) <- a.(idx source).(idx source) +. gm
            end;
            stamp_i drain (-.ieq);
            stamp_i source ieq)
      elems;
    (* Blit the stamped system into the LU scratch: [solve_in_place] swaps
       row pointers while pivoting, but every row is fully re-blitted here,
       so the permuted scratch from the previous iteration is fine to reuse. *)
    for r = 0 to dim - 1 do
      Array.blit a.(r) 0 ws.ws_lu.(r) 0 dim
    done;
    Array.blit rhs 0 ws.ws_x 0 dim;
    let x = Linalg.solve_in_place ws.ws_lu ws.ws_x in
    (* damped update on node voltages *)
    let max_delta = ref 0.0 in
    for n = 1 to n_nodes - 1 do
      let target = x.(idx n) in
      let delta = target -. volts.(n) in
      let delta =
        if delta > options.damping then options.damping
        else if delta < -.options.damping then -.options.damping
        else delta
      in
      if Float.abs delta > !max_delta then max_delta := Float.abs delta;
      volts.(n) <- volts.(n) +. delta
    done;
    if !max_delta < options.tolerance then { voltages = Array.copy volts; iterations = iter + 1 }
    else iterate (iter + 1)
  in
  iterate 0
