type node = int

type element =
  | Resistor of { a : node; b : node; ohms : float }
  | Vsource of { name : string; plus : node; minus : node; volts : float }
  | Transistor of { gate : node; drain : node; source : node; w_um : float; l_um : float }
  | Capacitor of { a : node; b : node; farads : float }
  | Isource of { into : node; out_of : node; amps : float }

(* pnnlint:allow R7 a builder is used by one domain during construction;
   compiled circuits read it immutably afterwards *)
type t = { mutable next_node : int; mutable elems : element list (* reversed *) }

let ground = 0
let create () = { next_node = 1; elems = [] }

let fresh_node t =
  let n = t.next_node in
  t.next_node <- n + 1;
  n

let add t e = t.elems <- e :: t.elems

let set_source t name volts =
  let found = ref false in
  t.elems <-
    List.map
      (function
        | Vsource v when v.name = name ->
            found := true;
            Vsource { v with volts }
        | e -> e)
      t.elems;
  if not !found then raise Not_found

let elements t = List.rev t.elems
let node_count t = t.next_node

let source_count t =
  List.length
    (List.filter
       (function
         | Vsource _ -> true
         | Resistor _ | Transistor _ | Capacitor _ | Isource _ -> false)
       t.elems)

let validate t =
  let ok_node n = n >= 0 && n < t.next_node in
  let seen_names = Hashtbl.create 8 in
  let rec check = function
    | [] -> Ok ()
    | Resistor { a; b; ohms } :: rest ->
        if not (ok_node a && ok_node b) then Error "resistor references unknown node"
        else if ohms <= 0.0 then Error "non-positive resistance"
        else check rest
    | Vsource { name; plus; minus; _ } :: rest ->
        if not (ok_node plus && ok_node minus) then Error "source references unknown node"
        else if Hashtbl.mem seen_names name then Error ("duplicate source name " ^ name)
        else begin
          Hashtbl.add seen_names name ();
          check rest
        end
    | Transistor { gate; drain; source; w_um; l_um } :: rest ->
        if not (ok_node gate && ok_node drain && ok_node source) then
          Error "transistor references unknown node"
        else if w_um <= 0.0 || l_um <= 0.0 then Error "non-positive transistor geometry"
        else check rest
    | Capacitor { a; b; farads } :: rest ->
        if not (ok_node a && ok_node b) then Error "capacitor references unknown node"
        else if farads <= 0.0 then Error "non-positive capacitance"
        else check rest
    | Isource { into; out_of; _ } :: rest ->
        if not (ok_node into && ok_node out_of) then Error "current source references unknown node"
        else check rest
  in
  check (elements t)
