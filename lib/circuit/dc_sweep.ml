type point = { vin : float; vout : float }

let linspace lo hi n =
  if n < 2 then invalid_arg "Dc_sweep.linspace: need n >= 2";
  Array.init n (fun i ->
      lo +. ((hi -. lo) *. float_of_int i /. float_of_int (n - 1)))

let run ?(options = Mna.default_options) ?workspace ~model ~netlist ~source
    ~output ~sweep () =
  let guess = ref None in
  (* one Newton scratch for the whole sweep: every point stamps the same
     system dimension, so the per-point matrix allocations hoist out *)
  let workspace =
    match workspace with Some ws -> ws | None -> Mna.workspace_for netlist
  in
  Array.map
    (fun vin ->
      Netlist.set_source netlist source vin;
      let sol = Mna.solve ~options ?initial:!guess ~workspace model netlist in
      guess := Some sol.Mna.voltages;
      { vin; vout = sol.Mna.voltages.(output) })
    sweep
