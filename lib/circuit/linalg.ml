let solve_in_place a b =
  let n = Array.length b in
  if Array.length a <> n then invalid_arg "Linalg.solve: non-square system";
  (* LU with partial pivoting, forward/back substitution fused. *)
  for k = 0 to n - 1 do
    (* pivot selection *)
    let piv = ref k in
    for i = k + 1 to n - 1 do
      if Float.abs a.(i).(k) > Float.abs a.(!piv).(k) then piv := i
    done;
    if Float.abs a.(!piv).(k) < 1e-300 then failwith "Linalg.solve: singular";
    if !piv <> k then begin
      let tmp = a.(k) in
      a.(k) <- a.(!piv);
      a.(!piv) <- tmp;
      let tb = b.(k) in
      b.(k) <- b.(!piv);
      b.(!piv) <- tb
    end;
    let akk = a.(k).(k) in
    for i = k + 1 to n - 1 do
      let factor = a.(i).(k) /. akk in
      (* pnnlint:allow R5 exact-zero skip is IEEE on purpose: -0.0 must skip
         the elimination step too, and Float.equal would not *)
      if factor <> 0.0 then begin
        a.(i).(k) <- 0.0;
        for j = k + 1 to n - 1 do
          a.(i).(j) <- a.(i).(j) -. (factor *. a.(k).(j))
        done;
        b.(i) <- b.(i) -. (factor *. b.(k))
      end
    done
  done;
  for i = n - 1 downto 0 do
    let acc = ref b.(i) in
    for j = i + 1 to n - 1 do
      acc := !acc -. (a.(i).(j) *. b.(j))
    done;
    b.(i) <- !acc /. a.(i).(i)
  done;
  b

let solve a b =
  let a' = Array.map Array.copy a in
  let b' = Array.copy b in
  solve_in_place a' b'

let matvec a x =
  Array.map
    (fun row ->
      let acc = ref 0.0 in
      Array.iteri (fun j v -> acc := !acc +. (v *. x.(j))) row;
      !acc)
    a

let residual_norm a x b =
  let ax = matvec a x in
  let worst = ref 0.0 in
  Array.iteri
    (fun i v ->
      let e = Float.abs (v -. b.(i)) in
      if e > !worst then worst := e)
    ax;
  !worst
