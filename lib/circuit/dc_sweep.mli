(** DC transfer-curve extraction.

    Sweeps a named voltage source and records an output node voltage, warm-
    starting each solve from the previous operating point (continuation), the
    same strategy SPICE's [.dc] uses to keep Newton on the right branch. *)

type point = { vin : float; vout : float }

val linspace : float -> float -> int -> float array
(** [linspace lo hi n] with [n >= 2] inclusive endpoints. *)

val run :
  ?options:Mna.options ->
  ?workspace:Mna.workspace ->
  model:Egt.params ->
  netlist:Netlist.t ->
  source:string ->
  output:Netlist.node ->
  sweep:float array ->
  unit ->
  point array
(** Raises whatever {!Mna.solve} raises if any point fails to converge.
    [workspace] (default: one fresh {!Mna.workspace_for} shared by all sweep
    points) reuses the Newton scratch across points; pass your own to reuse
    it across sweeps of the same circuit. *)
