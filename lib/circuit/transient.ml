type waveform = float -> float

(* The step fires strictly after t0, so the t = 0 operating point is the
   pre-step state. *)
let step ?(t0 = 0.0) ?(from_v = 0.0) ?(to_v = 1.0) () t =
  if t <= t0 then from_v else to_v

type result = { times : float array; voltages : float array array }

(* Build a per-step netlist in which each capacitor is replaced by its
   trapezoidal companion (geq = 2C/dt between the nodes, plus a current
   source carrying the history term).  The caps list pairs each capacitor
   with its state (previous voltage and current). *)
type cap_state = {
  a : Netlist.node;
  b : Netlist.node;
  farads : float;
  (* pnnlint:allow R7 per-simulation integrator state owned by the single
     domain stepping the transient loop; never escapes [run] *)
  mutable v_prev : float;
  mutable i_prev : float;
}

let run ?(options = Mna.default_options) ~model ~netlist ~source ~waveform ~duration
    ~dt () =
  if duration <= 0.0 || dt <= 0.0 then invalid_arg "Transient.run: non-positive time";
  let n_steps = int_of_float (Float.round (duration /. dt)) in
  if n_steps < 1 then invalid_arg "Transient.run: duration < dt";
  (* initial DC operating point (capacitors open) *)
  Netlist.set_source netlist source (waveform 0.0);
  let dc = Mna.solve ~options model netlist in
  let caps =
    List.filter_map
      (function
        | Netlist.Capacitor { a; b; farads } ->
            Some
              {
                a;
                b;
                farads;
                v_prev = dc.Mna.voltages.(a) -. dc.Mna.voltages.(b);
                i_prev = 0.0;
              }
        | Netlist.Resistor _ | Netlist.Vsource _ | Netlist.Transistor _
        | Netlist.Isource _ ->
            None)
      (Netlist.elements netlist)
  in
  let static_elements =
    List.filter
      (function Netlist.Capacitor _ -> false | _ -> true)
      (Netlist.elements netlist)
  in
  let times = Array.make (n_steps + 1) 0.0 in
  let trace = Array.make (n_steps + 1) [||] in
  trace.(0) <- Array.copy dc.Mna.voltages;
  let guess = ref dc.Mna.voltages in
  for k = 1 to n_steps do
    let t = float_of_int k *. dt in
    times.(k) <- t;
    (* assemble this step's netlist *)
    let nl = Netlist.create () in
    for _ = 1 to Netlist.node_count netlist - 1 do
      ignore (Netlist.fresh_node nl)
    done;
    List.iter
      (fun e ->
        match e with
        | Netlist.Vsource { name; plus; minus; _ } when name = source ->
            Netlist.add nl (Netlist.Vsource { name; plus; minus; volts = waveform t })
        | e -> Netlist.add nl e)
      static_elements;
    List.iter
      (fun c ->
        let geq = 2.0 *. c.farads /. dt in
        let ieq = (geq *. c.v_prev) +. c.i_prev in
        Netlist.add nl (Netlist.Resistor { a = c.a; b = c.b; ohms = 1.0 /. geq });
        (* ieq flows from b into a (source direction matching i = geq v - ieq) *)
        Netlist.add nl (Netlist.Isource { into = c.a; out_of = c.b; amps = ieq }))
      caps;
    let sol = Mna.solve ~options ~initial:!guess model nl in
    guess := sol.Mna.voltages;
    trace.(k) <- Array.copy sol.Mna.voltages;
    (* update capacitor states *)
    List.iter
      (fun c ->
        let v_now = sol.Mna.voltages.(c.a) -. sol.Mna.voltages.(c.b) in
        let geq = 2.0 *. c.farads /. dt in
        let i_now = (geq *. (v_now -. c.v_prev)) -. c.i_prev in
        c.v_prev <- v_now;
        c.i_prev <- i_now)
      caps
  done;
  { times; voltages = trace }

let settle_time result ~node ?(tolerance = 0.02) () =
  let n = Array.length result.times in
  if n = 0 then None
  else begin
    let final = result.voltages.(n - 1).(node) in
    let band = Stdlib.max (Float.abs final *. tolerance) 1e-6 in
    (* last time the trace was OUTSIDE the band; settle = the next sample *)
    let last_outside = ref (-1) in
    for k = 0 to n - 1 do
      if Float.abs (result.voltages.(k).(node) -. final) > band then last_outside := k
    done;
    if !last_outside = n - 1 then None
    else Some result.times.(!last_outside + 1)
  end
