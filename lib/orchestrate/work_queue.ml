(* Directory-based work queue shared by cooperating processes.

   Layout under the queue root:

     units/<key>.unit    one file per work unit (content: description line)
     claims/<key>.claim  exclusive lease: "owner\nexpires" (hex float)
     done/<key>.done     completion marker

   Every mutation uses the cache layer's publish discipline: exclusive
   creation is temp-file + [Unix.link] ({!Cache.publish_exclusive}), renewal
   is temp-file + rename ({!Cache.replace_file}), and stealing renames the
   claim to a per-stealer graveyard name so that of any number of concurrent
   stealers exactly one observes success.

   The module never reads a clock: every operation that compares against
   time takes [~now] from the caller, which keeps the queue logic
   deterministic and directly testable with a fake clock. *)

type t = { root : string }

let unit_ext = ".unit"
let claim_ext = ".claim"
let done_ext = ".done"
let units_dir t = Filename.concat t.root "units"
let claims_dir t = Filename.concat t.root "claims"
let done_dir t = Filename.concat t.root "done"
let unit_path t key = Filename.concat (units_dir t) (key ^ unit_ext)
let claim_path t key = Filename.concat (claims_dir t) (key ^ claim_ext)
let done_path t key = Filename.concat (done_dir t) (key ^ done_ext)

let load ~root =
  let t = { root } in
  Cache.mkdir_p (units_dir t);
  Cache.mkdir_p (claims_dir t);
  Cache.mkdir_p (done_dir t);
  t

let init ~root ~units =
  let t = load ~root in
  List.iter
    (fun (key, desc) ->
      (* idempotent: re-initializing an existing queue (crash recovery,
         adding workers to a live run) must not clobber anything *)
      ignore (Cache.publish_exclusive (unit_path t key) (desc ^ "\n")))
    units;
  t

let keys_with_ext dir ext =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | names ->
      let keys =
        Array.to_list names
        |> List.filter_map (fun n ->
               if Filename.check_suffix n ext then
                 Some (Filename.chop_suffix n ext)
               else None)
      in
      List.sort String.compare keys

let unit_keys t = keys_with_ext (units_dir t) unit_ext
let is_done t key = Sys.file_exists (done_path t key)
let pending t = List.filter (fun k -> not (is_done t k)) (unit_keys t)

type claim = { owner : string; expires : float }

let read_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | s -> Some s
  | exception Sys_error _ -> None

let read_claim t key =
  match read_file (claim_path t key) with
  | None -> None
  | Some content -> (
      match String.split_on_char '\n' content with
      | owner :: expires :: _ -> (
          match float_of_string_opt expires with
          | Some e -> Some { owner; expires = e }
          | None -> None)
      | _ -> None)

let claim_content ~owner ~expires =
  if String.contains owner '\n' then
    invalid_arg "Work_queue.claim: owner must be a single line";
  Printf.sprintf "%s\n%h\n" owner expires

let claim t ~owner ~now ~lease key =
  Sys.file_exists (unit_path t key)
  && (not (is_done t key))
  && Cache.publish_exclusive (claim_path t key)
      (claim_content ~owner ~expires:(now +. lease))

let renew t ~owner ~now ~lease key =
  match read_claim t key with
  | Some c when c.owner = owner ->
      Cache.replace_file (claim_path t key)
        (claim_content ~owner ~expires:(now +. lease));
      true
  | _ -> false

(* A unit's claim is [`Free] (no file), [`Live] (lease not yet expired) or
   [`Stealable] (expired lease, or an unparseable claim file — a torn or
   damaged claim belongs to nobody and must not wedge its unit forever). *)
let claim_state t ~now key =
  if not (Sys.file_exists (claim_path t key)) then `Free
  else
    match read_claim t key with
    | None -> `Stealable
    | Some c when c.expires <= now -> `Stealable
    | Some _ -> `Live

(* Per-process graveyard counter: gives each steal attempt a unique rename
   target, so the rename itself is the arbiter. *)
let steal_counter = Atomic.make 0

let steal_expired t ~now key =
  match claim_state t ~now key with
  | `Free | `Live -> false
  | `Stealable -> (
      let grave =
        Printf.sprintf "%s.stolen.%d.%d" (claim_path t key) (Unix.getpid ())
          (Atomic.fetch_and_add steal_counter 1)
      in
      (* Exactly one concurrent stealer wins the rename; losers get ENOENT.
         A renewal racing with the steal can lose its claim file — the
         renewing owner then keeps computing unclaimed, which is harmless:
         unit results are content-addressed, so duplicate execution publishes
         the same entry. *)
      match Sys.rename (claim_path t key) grave with
      | () ->
          (try Sys.remove grave with Sys_error _ -> ());
          true
      | exception Sys_error _ -> false)

let release t ~owner key =
  match read_claim t key with
  | Some c when c.owner = owner -> (
      try Sys.remove (claim_path t key) with Sys_error _ -> ())
  | _ -> ()

let mark_done t key =
  ignore (Cache.publish_exclusive (done_path t key) "done\n")

(* First claimable unit in deterministic (sorted-key) order.  [acquire]
   combines the expiry check and the claim so callers cannot forget the
   steal step; the TOCTOU between [steal_expired] and [claim] is benign —
   losing either race just means another worker has the unit. *)
let acquire t ~owner ~now ~lease =
  let rec scan = function
    | [] -> None
    | key :: rest ->
        let claimable =
          match claim_state t ~now key with
          | `Free -> true
          | `Stealable -> steal_expired t ~now key
          | `Live -> false
        in
        if claimable && claim t ~owner ~now ~lease key then Some key
        else scan rest
  in
  scan (pending t)
