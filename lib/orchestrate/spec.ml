type t =
  | T2_cell of {
      dataset : string;
      dataset_seed : int;
      seed : int;
      arm : Experiments.Setup.arm;
      eps : float;
    }
  | Fault_cell of { dataset : string; arm_idx : int; seed : int; epsilon : float }

let describe = function
  | T2_cell { dataset; seed; arm; eps; _ } ->
      Printf.sprintf "t2cell %s seed=%d %s eps=%g" dataset seed
        (Experiments.Setup.arm_name arm) eps
  | Fault_cell { dataset; arm_idx; seed; epsilon } ->
      Printf.sprintf "faultcell %s arm=%d seed=%d eps=%g" dataset arm_idx seed
        epsilon

let fault_model ~arm_idx ~epsilon =
  match List.nth_opt (Experiments.Faults.train_arms epsilon) arm_idx with
  | Some (_, model) -> model
  | None -> invalid_arg "Orchestrate.Spec.fault_model: arm index out of range"

(* The queue id of a unit IS its cache content address: the exact key the
   single-process table runners pass to [Cache.memoize].  Distributing work
   by this key makes duplicate execution harmless (same-key publishes are
   already handled by the cache's atomic writes) and makes "done" equivalent
   to "the table assembly will hit". *)
let key ~digest ~(scale : Experiments.Setup.scale) = function
  | T2_cell { dataset; dataset_seed; seed; arm; eps } ->
      Experiments.Table2.cell_key ~surrogate_digest:digest
        ~config:(Experiments.Table2.config_for scale arm eps)
        ~dataset ~dataset_seed ~seed ~init:scale.Experiments.Setup.init
  | Fault_cell { dataset; arm_idx; seed; epsilon } ->
      Experiments.Faults.cell_key ~surrogate_digest:digest ~scale ~dataset
        ~arm_idx
        ~model:(fault_model ~arm_idx ~epsilon)
        ~seed
