(** One schedulable unit of experiment work: a single training cell.

    Training dominates experiment cost, so the orchestrator distributes
    training cells and leaves the (cheap, cache-memoized) Monte-Carlo
    evaluations and table assembly to the coordinator process. *)

type t =
  | T2_cell of {
      dataset : string;
      dataset_seed : int;
      seed : int;
      arm : Experiments.Setup.arm;
      eps : float;  (** training ε; [0.0] for nominal arms *)
    }
  | Fault_cell of {
      dataset : string;
      arm_idx : int;  (** index into {!Experiments.Faults.train_arms} *)
      seed : int;
      epsilon : float;  (** the fault table's severity anchor *)
    }

val describe : t -> string
(** Human-readable one-liner (stored in queue unit files for debugging). *)

val fault_model : arm_idx:int -> epsilon:float -> Pnn.Variation.model option
(** The training fault model of arm [arm_idx] at severity [epsilon].  Raises
    [Invalid_argument] when out of range. *)

val key : digest:string -> scale:Experiments.Setup.scale -> t -> string
(** The unit's queue id — exactly the cache key the single-process table
    runners use for the same cell ({!Experiments.Table2.cell_key} /
    {!Experiments.Faults.cell_key}), so completing a unit anywhere makes the
    coordinator's assembly pass hit the cache. *)
