(** The claim–execute–publish loop one worker process runs.

    A worker repeatedly {!Work_queue.acquire}s the first claimable unit
    (stealing expired leases), computes it via {!Plan.execute} while a
    ticker domain renews the lease, publishes the done marker and releases
    the claim.  It exits when no pending units remain.

    Crash discipline: on any exception the claim is {e not} released — the
    unit recovers through lease expiry and stealing, exactly as after a real
    [kill -9] — and the exception propagates so the process exits
    nonzero. *)

type chaos = {
  interrupt_after : int option;
      (** inject {!Pnn.Training.Interrupted} into every executed unit after
          this many epochs — the deterministic stand-in for [kill -9] used
          by the crash-recovery tests *)
}

val no_chaos : chaos

val run :
  ?pool:Parallel.Pool.t ->
  ?chaos:chaos ->
  ?ticker:bool ->
  Work_queue.t ->
  Plan.ctx ->
  units:(string * Spec.t) list ->
  owner:string ->
  lease:float ->
  unit ->
  int
(** Returns the number of units this worker completed.  [owner] must be
    unique among live workers; [lease] is the claim lease in seconds —
    longer than the renewal cadence ([lease / 3]) by construction, and it
    bounds how long a dead worker's unit stays unstealable.

    [ticker] (default true) renews the lease from a spawned domain while a
    unit computes.  The coordinator disables it for the in-process
    single-worker mode: with no contending workers renewal is pointless, and
    staying domain-free keeps the process able to [Unix.fork] later (OCaml 5
    permanently refuses fork once any domain was ever spawned). *)
