(** Forked-worker pool over the directory queue, plus table assembly.

    {!run} expands the plan, initializes (or resumes) the queue and drives
    [workers] processes to completion.  [workers <= 1] runs the worker loop
    in-process and domain-free; [workers > 1] forks, which requires that the
    process has never spawned a domain (OCaml 5's permanent fork guard) —
    {!Parallel.require_sequential} is used as the latch and a
    {!Workers_failed} is raised if it is already open.  Workers that exit
    abnormally — crash, [kill -9], injected chaos — are respawned (bounded
    by [max_respawns], default [2 × workers + 2]); their half-done unit is
    recovered through lease expiry, stealing, and checkpoint resume, losing
    at most one checkpoint interval of training progress.

    Because units are keyed by cache content address, the assembled tables
    ({!table2} / {!fault_table}) are byte-identical to a single-process run
    at {e any} worker count, including after crashes. *)

type report = { units : int; workers : int; respawns : int; completed : int }
(** [completed] counts in-process completions when [workers <= 1]; for
    forked runs it equals [units] on success (children cannot report counts
    back through exit statuses). *)

exception Workers_failed of string
(** Raised when units remain unfinished after the respawn budget is spent. *)

val run :
  ?workers:int ->
  ?lease:float ->
  ?max_respawns:int ->
  ?chaos:(int -> Worker.chaos option) ->
  queue_root:string ->
  Plan.ctx ->
  report
(** [chaos index] configures fault injection per initial worker index
    (respawned workers always run clean).  [lease] defaults to 30 s —
    crash-recovery latency is bounded by it, so tests use much shorter
    leases.  Re-running with the same [queue_root] resumes: done units are
    skipped, stale claims are stolen. *)

val table2 : ?pool:Parallel.Pool.t -> Plan.ctx -> Experiments.Table2.t
(** Assemble Table II from the warm cache (pure reader after {!run}). *)

val fault_table : ?pool:Parallel.Pool.t -> Plan.ctx -> Experiments.Faults.t option
(** Assemble the fault tables when the plan has a fault block. *)
