type ctx = {
  scale : Experiments.Setup.scale;
  surrogate : Surrogate.Model.t;
  digest : string;
  datasets : Datasets.Synth.t list;
  faults : (string * float) option;
  cache : Cache.t;
  checkpoints : bool;
  checkpoint_every : int;
}

let create ?(datasets = []) ?faults ?(checkpoints = true)
    ?(checkpoint_every = 50) ~cache scale surrogate =
  {
    scale;
    surrogate;
    digest = Experiments.Table2.surrogate_digest surrogate;
    datasets;
    faults;
    cache;
    checkpoints;
    checkpoint_every;
  }

(* Training ε values per arm, as Table II trains them: variation-aware arms
   train once per test ε, nominal arms train once at ε = 0. *)
let train_epsilons (scale : Experiments.Setup.scale)
    (arm : Experiments.Setup.arm) =
  if arm.Experiments.Setup.variation_aware then
    scale.Experiments.Setup.test_epsilons
  else [ 0.0 ]

let specs ctx =
  let t2 =
    List.concat_map
      (fun (data : Datasets.Synth.t) ->
        let spec = data.Datasets.Synth.spec in
        List.concat_map
          (fun arm ->
            List.concat_map
              (fun eps ->
                List.map
                  (fun seed ->
                    Spec.T2_cell
                      {
                        dataset = spec.Datasets.Synth.name;
                        dataset_seed = spec.Datasets.Synth.seed;
                        seed;
                        arm;
                        eps;
                      })
                  ctx.scale.Experiments.Setup.seeds)
              (train_epsilons ctx.scale arm))
          Experiments.Setup.arms)
      ctx.datasets
  in
  let fault =
    match ctx.faults with
    | None -> []
    | Some (dataset, epsilon) ->
        List.concat_map
          (fun (arm_idx, _) ->
            List.map
              (fun seed -> Spec.Fault_cell { dataset; arm_idx; seed; epsilon })
              ctx.scale.Experiments.Setup.seeds)
          (List.mapi
             (fun i a -> (i, a))
             (Experiments.Faults.train_arms epsilon))
  in
  t2 @ fault

let units ctx =
  List.map
    (fun spec ->
      (Spec.key ~digest:ctx.digest ~scale:ctx.scale spec, spec))
    (specs ctx)

let dataset_for ctx name =
  match
    List.find_opt
      (fun (d : Datasets.Synth.t) ->
        d.Datasets.Synth.spec.Datasets.Synth.name = name)
      ctx.datasets
  with
  | Some d -> d
  | None -> Datasets.Bench13.load name

let execute ?pool ?interrupt_after ctx spec =
  match spec with
  | Spec.T2_cell { dataset; dataset_seed; seed; arm; eps } ->
      let data = dataset_for ctx dataset in
      let n_classes = data.Datasets.Synth.spec.Datasets.Synth.classes in
      let split = Experiments.Table2.split_for data ~seed in
      ignore
        (Experiments.Table2.train_cell ?pool ~cache:ctx.cache
           ~checkpoints:ctx.checkpoints ~checkpoint_every:ctx.checkpoint_every
           ?interrupt_after ~digest:ctx.digest ~scale:ctx.scale
           ~surrogate:ctx.surrogate ~dataset ~dataset_seed ~n_classes ~seed
           ~split ~arm ~eps ())
  | Spec.Fault_cell { dataset; arm_idx; seed; epsilon } ->
      let data = dataset_for ctx dataset in
      let spec' = data.Datasets.Synth.spec in
      let split = Experiments.Faults.split_for data ~seed in
      ignore
        (Experiments.Faults.train_cell ?pool ~cache:ctx.cache
           ~checkpoints:ctx.checkpoints ~checkpoint_every:ctx.checkpoint_every
           ?interrupt_after ~digest:ctx.digest ~scale:ctx.scale
           ~surrogate:ctx.surrogate ~dataset
           ~features:spec'.Datasets.Synth.features
           ~n_classes:spec'.Datasets.Synth.classes ~arm_idx
           ~model:(Spec.fault_model ~arm_idx ~epsilon)
           ~seed ~split ())
