(** Directory-based work queue for multi-process experiment sharding.

    State is three sibling directories under a queue root — [units/]
    (one file per work unit), [claims/] (exclusive leases) and [done/]
    (completion markers) — mutated exclusively through the cache layer's
    atomic-publish discipline ({!Cache.publish_exclusive} /
    {!Cache.replace_file}), so any number of worker processes can claim,
    renew, steal and complete units with no other coordination than the
    filesystem.

    Claims are {e leases}: a claim expires [lease] seconds after its last
    renewal, and an expired claim may be stolen by any worker
    ({!steal_expired}, or {!acquire} which folds the steal in).  A stolen
    unit may still be computed by its original (slow, not dead) owner; that
    is safe by construction because unit ids are cache content addresses —
    duplicate execution republishes the identical entry.

    The module never reads a clock: every time-dependent operation takes
    [~now], so the protocol is deterministic under test. *)

type t

val init : root:string -> units:(string * string) list -> t
(** [init ~root ~units] creates the queue directories and publishes one unit
    file per [(key, description)].  Idempotent: existing unit files (and any
    claims / done markers) are left untouched, so re-running an interrupted
    orchestration resumes it. *)

val load : root:string -> t
(** Attach to a queue without adding units (creates empty directories if
    missing). *)

val unit_keys : t -> string list
(** All unit keys, sorted (deterministic scan order). *)

val pending : t -> string list
(** Sorted unit keys without a done marker (claimed-but-unfinished units are
    still pending). *)

val is_done : t -> string -> bool

type claim = { owner : string; expires : float }

val read_claim : t -> string -> claim option
(** [None] if unclaimed or the claim file is unreadable/corrupt (a corrupt
    claim reads as unclaimed, so a torn write degrades to a re-claim). *)

val claim : t -> owner:string -> now:float -> lease:float -> string -> bool
(** Atomically take the unit's claim file; [true] iff this caller created
    it.  [false] when already claimed, already done, or not a known unit. *)

val renew : t -> owner:string -> now:float -> lease:float -> string -> bool
(** Extend own lease to [now +. lease]; [false] (no write) when the claim is
    gone or owned by someone else — the signal that the unit was stolen. *)

val steal_expired : t -> now:float -> string -> bool
(** Remove the unit's claim iff it is stealable: expired ([expires <= now])
    or unparseable (a torn claim belongs to nobody and must not wedge its
    unit).  Of any number of concurrent stealers exactly one returns [true]
    (arbitrated by an atomic rename); the winner still has to {!claim}
    normally. *)

val release : t -> owner:string -> string -> unit
(** Drop own claim (no-op if stolen meanwhile). *)

val mark_done : t -> string -> unit
(** Publish the completion marker.  Idempotent. *)

val acquire : t -> owner:string -> now:float -> lease:float -> string option
(** First claimable pending unit in sorted order: unclaimed, or expired (in
    which case it is stolen first).  [None] when nothing is claimable right
    now — the caller should wait for leases to expire or workers to finish. *)
