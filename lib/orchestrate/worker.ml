(* One worker's claim-execute-publish loop.

   The worker is the only orchestration layer that reads a wall clock, and
   only to operate the lease protocol (claim expiry stamps, renewal cadence,
   waiting for other workers' leases).  Results never see the clock: a
   unit's computation is a pure function of the plan ctx, and its identity
   is its content address. *)

type chaos = { interrupt_after : int option }

let no_chaos = { interrupt_after = None }

(* pnnlint:allow R2 wall clock feeds only the lease protocol (claim expiry
   stamps and renewal timing); unit results are clock-free by construction *)
let now () = Unix.gettimeofday ()

(* Renew the claim from a ticker domain while [f] computes the unit.  The
   worker process is single-domain when this runs (the coordinator shuts
   the shared pool down before forking), so spawning one domain is safe.
   If the claim was stolen meanwhile, [renew] keeps returning false; the
   computation still completes and publishes — content addressing makes the
   duplicate harmless. *)
let with_lease_renewal q ~owner ~lease ~key f =
  let stop = Atomic.make false in
  let ticker =
    Domain.spawn (fun () ->
        (* sleep in short slices so the join at unit completion is prompt
           even under long leases; renew at a third of the lease *)
        let slice = Float.max 0.005 (Float.min 0.05 (lease /. 10.0)) in
        let last = ref (now ()) in
        while not (Atomic.get stop) do
          Unix.sleepf slice;
          let t = now () in
          if (not (Atomic.get stop)) && t -. !last >= lease /. 3.0 then begin
            last := t;
            ignore (Work_queue.renew q ~owner ~now:t ~lease key)
          end
        done)
  in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set stop true;
      Domain.join ticker)
    f

let run ?pool ?(chaos = no_chaos) ?(ticker = true) q ctx ~units ~owner ~lease
    () =
  let completed = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    match Work_queue.acquire q ~owner ~now:(now ()) ~lease with
    | Some key ->
        let spec =
          match List.assoc_opt key units with
          | Some s -> s
          | None -> failwith ("Orchestrate.Worker: unknown unit " ^ key)
        in
        let execute () =
          Plan.execute ?pool ?interrupt_after:chaos.interrupt_after ctx spec
        in
        (* On any exception the claim is deliberately left in place: a
           crashing worker cannot release, so the simulated and the real
           crash take the same recovery path (lease expiry, then steal). *)
        if ticker then with_lease_renewal q ~owner ~lease ~key execute
        else execute ();
        Work_queue.mark_done q key;
        Work_queue.release q ~owner key;
        incr completed
    | None ->
        if Work_queue.pending q = [] then continue_ := false
        else
          (* everything claimable is claimed by live workers: wait for a
             completion or a lease expiry.  Capped well below the lease —
             a sibling's completion can land at any moment, and sleeping
             O(lease) here would stretch runs whose last units are already
             being computed by someone else. *)
          Unix.sleepf (Float.max 0.02 (Float.min 0.25 (lease /. 5.0)))
  done;
  !completed
