(** Scenario-matrix expansion and unit execution.

    A {!ctx} freezes everything a training cell depends on — the scale, the
    surrogate (and its digest), the dataset list, the optional fault-table
    block and the cache — so {!units} is a pure function from ctx to the
    content-addressed work list, and any process holding an equal ctx
    expands an identical list.  That is the whole sharding contract: workers
    never exchange results, they meet in the cache. *)

type ctx = {
  scale : Experiments.Setup.scale;
  surrogate : Surrogate.Model.t;
  digest : string;
  datasets : Datasets.Synth.t list;
  faults : (string * float) option;  (** fault-table (dataset, ε) block *)
  cache : Cache.t;
  checkpoints : bool;
  checkpoint_every : int;
}

val create :
  ?datasets:Datasets.Synth.t list ->
  ?faults:string * float ->
  ?checkpoints:bool ->
  ?checkpoint_every:int ->
  cache:Cache.t ->
  Experiments.Setup.scale ->
  Surrogate.Model.t ->
  ctx
(** Defaults: no datasets, no fault block, [checkpoints = true] (workers can
    be killed, so mid-training state should survive), [checkpoint_every =
    50]. *)

val specs : ctx -> Spec.t list
(** The expanded scenario matrix, in deterministic order: Table II cells
    (datasets × arms × training ε × seeds, mirroring
    {!Experiments.Table2.run}'s traversal) followed by fault-table cells
    (arms × seeds). *)

val units : ctx -> (string * Spec.t) list
(** [specs] paired with their queue keys ({!Spec.key}). *)

val execute :
  ?pool:Parallel.Pool.t -> ?interrupt_after:int -> ctx -> Spec.t -> unit
(** Compute one unit: reproduce its split, train, publish the result into
    [ctx.cache] under the unit's key.  [interrupt_after] is the
    crash-injection hook ({!Experiments.Table2.train_cell}). *)
