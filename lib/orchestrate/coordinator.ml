(* Forked-worker coordination.

   OCaml 5 forbids forking a process with live domains (the child would
   inherit dangling domain state), so the coordinator shuts the shared pool
   down — it degrades to a usable sequential pool — before any [Unix.fork].
   Each child is therefore single-domain at birth and free to spawn its own
   lease-renewal ticker.  Children leave via [Unix._exit] so the parent's
   [at_exit] handlers and buffered channels are not replayed. *)

type report = { units : int; workers : int; respawns : int; completed : int }

exception Workers_failed of string

let default_max_respawns workers = (2 * workers) + 2

let spawn_child ?chaos q ctx ~units ~lease ~index =
  flush stdout;
  flush stderr;
  match Unix.fork () with
  (* the pool latch only sees domains the pool layer spawned; the runtime's
     own guard is the authority, so translate its refusal too *)
  | exception Failure msg -> raise (Workers_failed ("cannot fork: " ^ msg))
  | 0 ->
      let code =
        try
          let owner = Printf.sprintf "w%d.%d" index (Unix.getpid ()) in
          ignore (Worker.run ?chaos q ctx ~units ~owner ~lease ());
          0
        with
        | Pnn.Training.Interrupted -> 10
        | _ -> 1
      in
      Unix._exit code
  | pid -> pid

let run ?(workers = 1) ?(lease = 30.0) ?(max_respawns = -1)
    ?(chaos = fun _ -> None) ~queue_root ctx =
  let units = Plan.units ctx in
  let q =
    Work_queue.init ~root:queue_root
      ~units:(List.map (fun (k, s) -> (k, Spec.describe s)) units)
  in
  let n_units = List.length units in
  let respawns = ref 0 in
  if workers <= 1 then begin
    (* In-process: no fork, no lease ticker (no contention, and spawning a
       domain would permanently disable Unix.fork for this process).
       Identical output by the pool contract (bit-identical at any worker
       count) plus content addressing (cache hits are bit-identical to
       computes). *)
    let completed =
      match chaos 0 with
      | Some c ->
          Worker.run ~chaos:c ~ticker:false q ctx ~units ~owner:"w0" ~lease ()
      | None -> Worker.run ~ticker:false q ctx ~units ~owner:"w0" ~lease ()
    in
    { units = n_units; workers = 1; respawns = 0; completed }
  end
  else begin
    let max_respawns =
      if max_respawns >= 0 then max_respawns else default_max_respawns workers
    in
    (* Fork safety: OCaml 5 refuses Unix.fork in any process that ever
       spawned a domain, so the shared pool must never have left the
       sequential path.  [require_sequential] pins it (creating it with
       jobs = 1 if absent) and reports whether the latch is still closed. *)
    if not (Parallel.require_sequential ()) then
      raise
        (Workers_failed
           "cannot fork workers: this process already spawned domains (run \
            the orchestrator before any pool work, or with REPRO_JOBS=1, or \
            use workers=1)");
    let live = Hashtbl.create workers in
    for index = 0 to workers - 1 do
      let pid = spawn_child ?chaos:(chaos index) q ctx ~units ~lease ~index in
      Hashtbl.replace live pid index
    done;
    let failures = ref [] in
    while Hashtbl.length live > 0 do
      let pid, status = Unix.wait () in
      match Hashtbl.find_opt live pid with
      | None -> ()
      | Some index -> (
          Hashtbl.remove live pid;
          match status with
          | Unix.WEXITED 0 -> ()
          | _ ->
              (* abnormal exit (crash, kill, chaos): respawn a clean worker
                 while work remains and the budget allows.  The dead
                 worker's claim stays until its lease expires; the respawn
                 (or a surviving sibling) steals it and resumes from the
                 last checkpoint. *)
              if Work_queue.pending q <> [] && !respawns < max_respawns then begin
                incr respawns;
                let pid' = spawn_child q ctx ~units ~lease ~index in
                Hashtbl.replace live pid' index
              end
              else if Work_queue.pending q <> [] then
                failures :=
                  Printf.sprintf "worker %d (pid %d) died with work pending"
                    index pid
                  :: !failures)
    done;
    (match Work_queue.pending q with
    | [] -> ()
    | left ->
        raise
          (Workers_failed
             (Printf.sprintf "%d units left unfinished (%s)" (List.length left)
                (String.concat "; " !failures))));
    {
      units = n_units;
      workers;
      respawns = !respawns;
      completed = n_units - List.length (Work_queue.pending q);
    }
  end

(* {2 Assembly}

   With every training unit published, the single-process table runners
   become pure cache readers: identical keys, identical decoded results,
   identical reductions — so the rendered tables are byte-identical to a
   run that never forked at all. *)

let table2 ?pool ctx =
  Experiments.Table2.run ?pool ~cache:ctx.Plan.cache
    ~checkpoints:ctx.Plan.checkpoints ~datasets:ctx.Plan.datasets
    ctx.Plan.scale ctx.Plan.surrogate

let fault_table ?pool ctx =
  match ctx.Plan.faults with
  | None -> None
  | Some (dataset, epsilon) ->
      Some
        (Experiments.Faults.run ?pool ~cache:ctx.Plan.cache
           ~checkpoints:ctx.Plan.checkpoints ~dataset ~epsilon ctx.Plan.scale
           ctx.Plan.surrogate)
