(* Benchmark and reproduction harness.

   Part 1 — Bechamel micro-benchmarks: one Test.make per computational pillar
   under the paper's tables and figures (crossbar forward, surrogate
   inference, Newton DC solve, DC sweep, Sobol sampling, LM fitting, a
   variation-aware training epoch).

   Part 2 — table/figure harnesses: regenerates Table I, Fig. 2, Fig. 4,
   Table II and Table III (reduced scale by default).

   Part 3 — sequential-vs-parallel variants of the Monte-Carlo pillars
   (mc eval, variation-aware epoch, surrogate generation) on a 1-job pool
   and on the REPRO_JOBS-sized pool, plus a machine-readable BENCH_1.json
   baseline (name -> ns/run, jobs used) for later PRs to compare against.

   Environment knobs:
     REPRO_SCALE=quick|committed|paper   (default quick)
     REPRO_DATASETS=iris,seeds,...       (default: all 13)
     REPRO_SKIP_TABLES=1                 (micro-benches only)
     REPRO_JOBS=N                        (parallel pool size; 1 = sequential)
     REPRO_BENCH_JSON=path               (default BENCH_1.json)
*)

open Bechamel
open Toolkit

(* {1 Shared fixtures} *)

let scale_name =
  match Sys.getenv_opt "REPRO_SCALE" with Some s -> s | None -> "quick"

let scale = Experiments.Setup.of_name scale_name
let surrogate = lazy (Experiments.Setup.surrogate_of_scale scale)

let iris = lazy (Datasets.Bench13.load "iris")

let iris_fixture =
  lazy
    (let data = Lazy.force iris in
     let rng = Rng.create 1 in
     let split = Datasets.Synth.split rng data in
     let tdata = Pnn.Training.of_split ~n_classes:3 split in
     let config = { scale.Experiments.Setup.config with Pnn.Config.epsilon = 0.05 } in
     let net =
       Pnn.Network.create (Rng.create 2) config (Lazy.force surrogate) ~inputs:4
         ~outputs:3
     in
     (config, net, tdata))

let mid_omega = [| 255.0; 127.0; 255e3; 127e3; 255e3; 500.0; 40.0 |]

(* {1 Micro-benchmarks} *)

let bench_crossbar_forward =
  (* Table II pillar: one full pNN forward pass on the iris training batch *)
  Test.make ~name:"pnn_forward_iris_batch"
    (Staged.stage (fun () ->
         let config, net, tdata = Lazy.force iris_fixture in
         ignore config;
         let shapes = Pnn.Network.theta_shapes net in
         let noise = Pnn.Noise.none ~theta_shapes:shapes in
         ignore (Pnn.Network.logits net ~noise tdata.Pnn.Training.x_train)))

let bench_va_epoch =
  (* Table II pillar: one variation-aware training epoch (loss + backward) *)
  Test.make ~name:"pnn_va_epoch_iris"
    (Staged.stage (fun () ->
         let config, net, tdata = Lazy.force iris_fixture in
         let shapes = Pnn.Network.theta_shapes net in
         let noises =
           Pnn.Noise.draw_many (Rng.create 3) ~epsilon:0.05 ~theta_shapes:shapes
             ~n:config.Pnn.Config.n_mc_train
         in
         let loss =
           Pnn.Network.mc_loss net ~noises ~x:tdata.Pnn.Training.x_train
             ~labels:tdata.Pnn.Training.y_train
         in
         Autodiff.backward loss))

let bench_surrogate_inference =
  (* Fig. 4/5 pillar: surrogate eta prediction for one omega *)
  Test.make ~name:"surrogate_eval"
    (Staged.stage (fun () -> ignore (Surrogate.Model.eval (Lazy.force surrogate) mid_omega)))

let bench_newton_solve =
  (* Fig. 2 pillar: one nonlinear DC operating point *)
  let netlist, _out = Circuit.Ptanh_circuit.build (Circuit.Ptanh_circuit.omega_of_array mid_omega) in
  Test.make ~name:"mna_newton_solve"
    (Staged.stage (fun () ->
         Circuit.Netlist.set_source netlist "vin" 0.5;
         ignore (Circuit.Mna.solve Circuit.Egt.default netlist)))

let bench_dc_sweep =
  (* Fig. 2 pillar: a full 41-point transfer curve *)
  Test.make ~name:"dc_sweep_41pts"
    (Staged.stage (fun () ->
         ignore
           (Circuit.Ptanh_circuit.transfer
              (Circuit.Ptanh_circuit.omega_of_array mid_omega))))

let bench_sobol =
  (* Fig. 3 pillar: design-space sampling *)
  let sobol = Qmc.Sobol.create 7 in
  Test.make ~name:"sobol_next_dim7" (Staged.stage (fun () -> ignore (Qmc.Sobol.next sobol)))

let bench_lm_fit =
  (* Fig. 4 pillar: one LM ptanh fit of a simulated curve *)
  let vin, vout =
    Circuit.Ptanh_circuit.transfer (Circuit.Ptanh_circuit.omega_of_array mid_omega)
  in
  Test.make ~name:"lm_ptanh_fit" (Staged.stage (fun () -> ignore (Fit.Ptanh.fit ~vin ~vout)))

let bench_mc_eval =
  (* Table II pillar: one Monte-Carlo test evaluation draw *)
  Test.make ~name:"mc_eval_draw_iris"
    (Staged.stage (fun () ->
         let _, net, tdata = Lazy.force iris_fixture in
         let shapes = Pnn.Network.theta_shapes net in
         let noise = Pnn.Noise.draw (Rng.create 7) ~epsilon:0.1 ~theta_shapes:shapes in
         ignore (Pnn.Network.predict net ~noise tdata.Pnn.Training.x_val)))

let bench_matmul =
  (* substrate pillar *)
  let rng = Rng.create 5 in
  let a = Tensor.uniform rng 128 64 ~lo:(-1.0) ~hi:1.0 in
  let b = Tensor.uniform rng 64 32 ~lo:(-1.0) ~hi:1.0 in
  Test.make ~name:"tensor_matmul_128x64x32"
    (Staged.stage (fun () -> ignore (Tensor.matmul a b)))

let analyze_group tests =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instance = Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:2000 ~stabilize:true ~quota:(Time.second 0.5)
      ~kde:(Some 1000) ()
  in
  let raw = Benchmark.all cfg [ instance ] tests in
  let results = Analyze.all ols instance raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ ns ] -> rows := (name, ns) :: !rows
      | Some _ | None -> ())
    results;
  List.sort compare !rows

let print_rows header rows =
  Printf.printf "== %s (monotonic clock) ==\n" header;
  List.iter
    (fun (name, ns) ->
      let pretty =
        if ns > 1e9 then Printf.sprintf "%8.2f s " (ns /. 1e9)
        else if ns > 1e6 then Printf.sprintf "%8.2f ms" (ns /. 1e6)
        else if ns > 1e3 then Printf.sprintf "%8.2f us" (ns /. 1e3)
        else Printf.sprintf "%8.0f ns" ns
      in
      Printf.printf "  %-45s %s/run\n" name pretty)
    rows;
  print_newline ()

let micro_benchmarks () =
  let rows =
    analyze_group
      (Test.make_grouped ~name:"printed-neuromorphic"
         [
           bench_matmul;
           bench_sobol;
           bench_newton_solve;
           bench_dc_sweep;
           bench_lm_fit;
           bench_surrogate_inference;
           bench_crossbar_forward;
           bench_mc_eval;
           bench_va_epoch;
         ])
  in
  print_rows "micro-benchmarks" rows;
  rows

(* {1 Sequential-vs-parallel variants (the REPRO_JOBS execution layer)} *)

module P = Parallel.Pool

let par_jobs = Parallel.default_jobs ()
let pool_seq = lazy (P.create ~jobs:1 ())
let pool_par = lazy (P.create ~jobs:par_jobs ())

let iris_split = lazy (Datasets.Synth.split (Rng.create 1) (Lazy.force iris))

let bench_mc_eval_pool ~name pool =
  (* Table II pillar: a full 30-draw Monte-Carlo test evaluation, the noise
     fan-out wired through Evaluation.mc_accuracy *)
  Test.make ~name
    (Staged.stage (fun () ->
         let _, net, _ = Lazy.force iris_fixture in
         let split = Lazy.force iris_split in
         ignore
           (Pnn.Evaluation.mc_accuracy ~pool:(Lazy.force pool) (Rng.create 7)
              net ~epsilon:0.1 ~n:30 ~x:split.Datasets.Synth.x_test
              ~y:split.Datasets.Synth.y_test)))

let bench_va_epoch_pool ~name pool =
  (* Table II pillar: one variation-aware epoch through the data-parallel
     Network.mc_loss_pooled path (per-draw replicas, ordered gradient sum) *)
  Test.make ~name
    (Staged.stage (fun () ->
         let config, net, tdata = Lazy.force iris_fixture in
         let shapes = Pnn.Network.theta_shapes net in
         let noises =
           Pnn.Noise.draw_many (Rng.create 3) ~epsilon:0.05 ~theta_shapes:shapes
             ~n:config.Pnn.Config.n_mc_train
         in
         let loss =
           Pnn.Network.mc_loss_pooled (Lazy.force pool) net ~noises
             ~x:tdata.Pnn.Training.x_train ~labels:tdata.Pnn.Training.y_train
         in
         Autodiff.backward loss))

let bench_surrogate_gen_pool ~name pool =
  (* Fig. 3 pillar: a 48-candidate slice of surrogate dataset generation
     (MNA DC sweep + LM fit per candidate) *)
  Test.make ~name
    (Staged.stage (fun () ->
         ignore
           (Surrogate.Pipeline.generate_dataset ~pool:(Lazy.force pool) ~n:48 ())))

let parallel_benchmarks () =
  let rows =
    analyze_group
      (Test.make_grouped ~name:"parallel"
         [
           bench_mc_eval_pool ~name:"mc_eval_draw_iris_seq" pool_seq;
           bench_mc_eval_pool ~name:"mc_eval_draw_iris_par" pool_par;
           bench_va_epoch_pool ~name:"pnn_va_epoch_iris_seq" pool_seq;
           bench_va_epoch_pool ~name:"pnn_va_epoch_iris_par" pool_par;
           bench_surrogate_gen_pool ~name:"surrogate_gen48_seq" pool_seq;
           bench_surrogate_gen_pool ~name:"surrogate_gen48_par" pool_par;
         ])
  in
  print_rows (Printf.sprintf "seq-vs-par benchmarks (par jobs=%d)" par_jobs) rows;
  rows

(* {1 BENCH_1.json perf baseline} *)

let write_bench_json rows =
  let path =
    match Sys.getenv_opt "REPRO_BENCH_JSON" with
    | Some p -> p
    | None -> "BENCH_1.json"
  in
  let oc = open_out path in
  Printf.fprintf oc "{\n  \"bench\": \"BENCH_1\",\n  \"scale\": %S,\n" scale_name;
  Printf.fprintf oc "  \"jobs\": %d,\n  \"results\": [\n" par_jobs;
  let n = List.length rows in
  List.iteri
    (fun i (name, ns) ->
      Printf.fprintf oc "    { \"name\": %S, \"ns_per_run\": %.1f }%s\n" name ns
        (if i = n - 1 then "" else ","))
    rows;
  output_string oc "  ]\n}\n";
  close_out oc;
  Printf.printf "wrote %s (%d entries, jobs=%d)\n%!" path n par_jobs

(* {1 Table/figure harnesses} *)

let section title = Printf.printf "\n===== %s =====\n%!" title

let run_tables () =
  section "Table I (design space)";
  print_string (Experiments.Figures.render_table1 ());
  section "Fig. 2 (characteristic curves)";
  print_string (Experiments.Figures.render_fig2 (Experiments.Figures.fig2_curves ()));
  section "Fig. 4 left (fit example)";
  print_string (Experiments.Figures.render_fig4_left (Experiments.Figures.fig4_left ()));
  section "Fig. 4 right (surrogate parity)";
  print_string
    (Experiments.Figures.render_fig4_right (Experiments.Figures.fig4_right ~seed:7 ()));
  section
    (Printf.sprintf "Table II (scale=%s; see EXPERIMENTS.md for the committed run)"
       scale_name);
  let datasets =
    match Sys.getenv_opt "REPRO_DATASETS" with
    | None -> Datasets.Bench13.load_all ()
    | Some names -> List.map Datasets.Bench13.load (String.split_on_char ',' names)
  in
  let progress msg = Printf.eprintf "  [running] %s\n%!" msg in
  let table2 = Experiments.Table2.run ~progress ~datasets scale (Lazy.force surrogate) in
  print_string (Experiments.Table2.render table2);
  section "Table III (ablation summary)";
  print_string (Experiments.Table3.render (Experiments.Table3.of_table2 scale table2))

let () =
  let micro = micro_benchmarks () in
  let par = parallel_benchmarks () in
  write_bench_json (micro @ par);
  (match Sys.getenv_opt "REPRO_SKIP_TABLES" with
  | Some "1" -> ()
  | Some _ | None -> run_tables ());
  if Lazy.is_val pool_seq then P.shutdown (Lazy.force pool_seq);
  if Lazy.is_val pool_par then P.shutdown (Lazy.force pool_par)
