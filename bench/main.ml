(* Benchmark and reproduction harness.

   Part 1 — Bechamel micro-benchmarks: one Test.make per computational pillar
   under the paper's tables and figures (crossbar forward, surrogate
   inference, Newton DC solve, DC sweep, Sobol sampling, LM fitting, a
   variation-aware training epoch).

   Part 2 — table/figure harnesses: regenerates Table I, Fig. 2, Fig. 4,
   Table II and Table III (reduced scale by default).

   Part 3 — sequential-vs-parallel variants of the Monte-Carlo pillars
   (mc eval, variation-aware epoch, surrogate generation) on a 1-job pool
   and on the REPRO_JOBS-sized pool, plus a machine-readable BENCH_1.json
   baseline (name -> ns/run, jobs used) for later PRs to compare against.

   Part 4 — allocation before/after pairs (BENCH_2.json): wall time plus
   Gc minor/major words per run for the allocating reference vs the
   in-place/cached implementations of the tensor kernels, surrogate batch
   inference, Monte-Carlo evaluation and the variation-aware epoch.

   Part 5 — cold-vs-warm content-addressed cache pair (BENCH_3.json): the
   same Table II slice run twice against one fresh cache directory; the
   second run must be served from the store (≥ 10× faster).

   Environment knobs:
     REPRO_SCALE=quick|committed|paper   (default quick)
     REPRO_DATASETS=iris,seeds,...       (default: all 13)
     REPRO_SKIP_TABLES=1                 (micro-benches only)
     REPRO_JOBS=N                        (parallel pool size; 1 = sequential)
     REPRO_BENCH_JSON=path               (default BENCH_1.json)
     REPRO_BENCH2_JSON=path              (default BENCH_2.json)
     REPRO_BENCH3_JSON=path              (default BENCH_3.json)
     REPRO_BENCH3_DATASETS=iris,seeds    (the Table II slice it re-runs)
     REPRO_SKIP_BENCH3=1                 (skip the cold/warm pair)
     REPRO_SANITIZER_DATASETS=iris       (the slice the sanitizer re-runs)
     REPRO_SKIP_SANITIZER=1              (skip the checked-mode cross-check)
     REPRO_BENCH4_JSON=path              (default BENCH_4.json)
     REPRO_SKIP_BACKENDS=1               (skip the backend-vs-backend pairs)
     REPRO_BENCH7_JSON=path              (default BENCH_7.json)
*)

open Bechamel
open Toolkit

(* {1 Shared fixtures} *)

let scale_name =
  match Sys.getenv_opt "REPRO_SCALE" with Some s -> s | None -> "quick"

let scale = Experiments.Setup.of_name scale_name
let surrogate = lazy (Experiments.Setup.surrogate_of_scale scale)

let iris = lazy (Datasets.Bench13.load "iris")

let iris_fixture =
  lazy
    (let data = Lazy.force iris in
     let rng = Rng.create 1 in
     let split = Datasets.Synth.split rng data in
     let tdata = Pnn.Training.of_split ~n_classes:3 split in
     let config = { scale.Experiments.Setup.config with Pnn.Config.epsilon = 0.05 } in
     let net =
       Pnn.Network.create (Rng.create 2) config (Lazy.force surrogate) ~inputs:4
         ~outputs:3
     in
     (config, net, tdata))

let mid_omega = [| 255.0; 127.0; 255e3; 127e3; 255e3; 500.0; 40.0 |]

(* {1 Micro-benchmarks} *)

let bench_crossbar_forward =
  (* Table II pillar: one full pNN forward pass on the iris training batch *)
  Test.make ~name:"pnn_forward_iris_batch"
    (Staged.stage (fun () ->
         let config, net, tdata = Lazy.force iris_fixture in
         ignore config;
         let shapes = Pnn.Network.theta_shapes net in
         let noise = Pnn.Noise.none ~theta_shapes:shapes in
         ignore (Pnn.Network.logits net ~noise tdata.Pnn.Training.x_train)))

let bench_va_epoch =
  (* Table II pillar: one variation-aware training epoch (loss + backward) *)
  Test.make ~name:"pnn_va_epoch_iris"
    (Staged.stage (fun () ->
         let config, net, tdata = Lazy.force iris_fixture in
         let shapes = Pnn.Network.theta_shapes net in
         let noises =
           Pnn.Noise.draw_many (Rng.create 3) ~epsilon:0.05 ~theta_shapes:shapes
             ~n:config.Pnn.Config.n_mc_train
         in
         let loss =
           Pnn.Network.mc_loss net ~noises ~x:tdata.Pnn.Training.x_train
             ~labels:tdata.Pnn.Training.y_train
         in
         Autodiff.backward loss))

let bench_surrogate_inference =
  (* Fig. 4/5 pillar: surrogate eta prediction for one omega *)
  Test.make ~name:"surrogate_eval"
    (Staged.stage (fun () -> ignore (Surrogate.Model.eval (Lazy.force surrogate) mid_omega)))

let bench_newton_solve =
  (* Fig. 2 pillar: one nonlinear DC operating point *)
  let netlist, _out = Circuit.Ptanh_circuit.build (Circuit.Ptanh_circuit.omega_of_array mid_omega) in
  Test.make ~name:"mna_newton_solve"
    (Staged.stage (fun () ->
         Circuit.Netlist.set_source netlist "vin" 0.5;
         ignore (Circuit.Mna.solve Circuit.Egt.default netlist)))

let bench_dc_sweep =
  (* Fig. 2 pillar: a full 41-point transfer curve *)
  Test.make ~name:"dc_sweep_41pts"
    (Staged.stage (fun () ->
         ignore
           (Circuit.Ptanh_circuit.transfer
              (Circuit.Ptanh_circuit.omega_of_array mid_omega))))

let bench_sobol =
  (* Fig. 3 pillar: design-space sampling *)
  let sobol = Qmc.Sobol.create 7 in
  Test.make ~name:"sobol_next_dim7" (Staged.stage (fun () -> ignore (Qmc.Sobol.next sobol)))

let bench_lm_fit =
  (* Fig. 4 pillar: one LM ptanh fit of a simulated curve *)
  let vin, vout =
    Circuit.Ptanh_circuit.transfer (Circuit.Ptanh_circuit.omega_of_array mid_omega)
  in
  Test.make ~name:"lm_ptanh_fit" (Staged.stage (fun () -> ignore (Fit.Ptanh.fit ~vin ~vout)))

let bench_mc_eval =
  (* Table II pillar: one Monte-Carlo test evaluation draw *)
  Test.make ~name:"mc_eval_draw_iris"
    (Staged.stage (fun () ->
         let _, net, tdata = Lazy.force iris_fixture in
         let shapes = Pnn.Network.theta_shapes net in
         let noise = Pnn.Noise.draw (Rng.create 7) ~epsilon:0.1 ~theta_shapes:shapes in
         ignore (Pnn.Network.predict net ~noise tdata.Pnn.Training.x_val)))

let bench_matmul =
  (* substrate pillar *)
  let rng = Rng.create 5 in
  let a = Tensor.uniform rng 128 64 ~lo:(-1.0) ~hi:1.0 in
  let b = Tensor.uniform rng 64 32 ~lo:(-1.0) ~hi:1.0 in
  Test.make ~name:"tensor_matmul_128x64x32"
    (Staged.stage (fun () -> ignore (Tensor.matmul a b)))

let analyze_group tests =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instance = Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:2000 ~stabilize:true ~quota:(Time.second 0.5)
      ~kde:(Some 1000) ()
  in
  let raw = Benchmark.all cfg [ instance ] tests in
  let results = Analyze.all ols instance raw in
  let rows = ref [] in
  (* pnnlint:allow R3 hash order cannot escape: the rows are re-sorted on
     their unique test-name key immediately below *)
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ ns ] -> rows := (name, ns) :: !rows
      | Some _ | None -> ())
    results;
  List.sort (fun (a, _) (b, _) -> String.compare a b) !rows

let print_rows header rows =
  Printf.printf "== %s (monotonic clock) ==\n" header;
  List.iter
    (fun (name, ns) ->
      let pretty =
        if ns > 1e9 then Printf.sprintf "%8.2f s " (ns /. 1e9)
        else if ns > 1e6 then Printf.sprintf "%8.2f ms" (ns /. 1e6)
        else if ns > 1e3 then Printf.sprintf "%8.2f us" (ns /. 1e3)
        else Printf.sprintf "%8.0f ns" ns
      in
      Printf.printf "  %-45s %s/run\n" name pretty)
    rows;
  print_newline ()

let micro_benchmarks () =
  let rows =
    analyze_group
      (Test.make_grouped ~name:"printed-neuromorphic"
         [
           bench_matmul;
           bench_sobol;
           bench_newton_solve;
           bench_dc_sweep;
           bench_lm_fit;
           bench_surrogate_inference;
           bench_crossbar_forward;
           bench_mc_eval;
           bench_va_epoch;
         ])
  in
  print_rows "micro-benchmarks" rows;
  rows

(* {1 Sequential-vs-parallel variants (the REPRO_JOBS execution layer)} *)

module P = Parallel.Pool

let par_jobs = Parallel.default_jobs ()
let pool_seq = lazy (P.create ~jobs:1 ())
let pool_par = lazy (P.create ~jobs:par_jobs ())

let iris_split = lazy (Datasets.Synth.split (Rng.create 1) (Lazy.force iris))

let bench_mc_eval_pool ~name pool =
  (* Table II pillar: a full 30-draw Monte-Carlo test evaluation, the noise
     fan-out wired through Evaluation.mc_accuracy *)
  Test.make ~name
    (Staged.stage (fun () ->
         let _, net, _ = Lazy.force iris_fixture in
         let split = Lazy.force iris_split in
         ignore
           (Pnn.Evaluation.mc_accuracy ~pool:(Lazy.force pool) (Rng.create 7)
              net ~epsilon:0.1 ~n:30 ~x:split.Datasets.Synth.x_test
              ~y:split.Datasets.Synth.y_test)))

let bench_va_epoch_pool ~name pool =
  (* Table II pillar: one variation-aware epoch through the data-parallel
     Network.mc_loss_pooled path (per-draw replicas, ordered gradient sum) *)
  Test.make ~name
    (Staged.stage (fun () ->
         let config, net, tdata = Lazy.force iris_fixture in
         let shapes = Pnn.Network.theta_shapes net in
         let noises =
           Pnn.Noise.draw_many (Rng.create 3) ~epsilon:0.05 ~theta_shapes:shapes
             ~n:config.Pnn.Config.n_mc_train
         in
         let loss =
           Pnn.Network.mc_loss_pooled (Lazy.force pool) net ~noises
             ~x:tdata.Pnn.Training.x_train ~labels:tdata.Pnn.Training.y_train
         in
         Autodiff.backward loss))

let bench_surrogate_gen_pool ~name pool =
  (* Fig. 3 pillar: a 48-candidate slice of surrogate dataset generation
     (MNA DC sweep + LM fit per candidate) *)
  Test.make ~name
    (Staged.stage (fun () ->
         ignore
           (Surrogate.Pipeline.generate_dataset ~pool:(Lazy.force pool) ~n:48 ())))

let parallel_benchmarks () =
  let rows =
    analyze_group
      (Test.make_grouped ~name:"parallel"
         [
           bench_mc_eval_pool ~name:"mc_eval_draw_iris_seq" pool_seq;
           bench_mc_eval_pool ~name:"mc_eval_draw_iris_par" pool_par;
           bench_va_epoch_pool ~name:"pnn_va_epoch_iris_seq" pool_seq;
           bench_va_epoch_pool ~name:"pnn_va_epoch_iris_par" pool_par;
           bench_surrogate_gen_pool ~name:"surrogate_gen48_seq" pool_seq;
           bench_surrogate_gen_pool ~name:"surrogate_gen48_par" pool_par;
         ])
  in
  print_rows (Printf.sprintf "seq-vs-par benchmarks (par jobs=%d)" par_jobs) rows;
  rows

(* {1 Allocation benchmarks (BENCH_2)}

   Before/after pairs for the allocation-free training hot path: each pair
   runs the allocating reference implementation and the in-place/cached one
   over identical inputs, measuring wall time (bechamel) plus GC allocation
   per run (Gc.quick_stat deltas; minor_words is the interesting figure — the
   in-place paths should allocate almost nothing in steady state).

   Gc counters are domain-local in OCaml 5, so every body here runs on the
   calling domain: pooled paths use the 1-job pool, which executes inline. *)

let measure_alloc ?(runs = 20) f =
  (* two warm-up calls: force lazy fixtures and build the cached replica /
     scratch buffers, so the measurement sees the steady state *)
  f ();
  f ();
  Gc.full_major ();
  let s0 = Gc.quick_stat () in
  for _ = 1 to runs do
    f ()
  done;
  (* quick_stat only reflects young-area allocation after a minor collection
     (observed on OCaml 5.1); force one so low-allocation bodies are not
     under-reported as zero *)
  Gc.minor ();
  let s1 = Gc.quick_stat () in
  ( (s1.Gc.minor_words -. s0.Gc.minor_words) /. float_of_int runs,
    (s1.Gc.major_words -. s0.Gc.major_words) /. float_of_int runs )

let tensor_pair_fixture =
  lazy
    (let rng = Rng.create 5 in
     let a = Tensor.uniform rng 128 64 ~lo:(-1.0) ~hi:1.0 in
     let b = Tensor.uniform rng 128 64 ~lo:(-1.0) ~hi:1.0 in
     let m = Tensor.uniform rng 64 32 ~lo:(-1.0) ~hi:1.0 in
     let dst_add = Tensor.zeros 128 64 in
     let dst_mm = Tensor.zeros 128 32 in
     (a, b, m, dst_add, dst_mm))

let tensor_add_alloc () =
  let a, b, _, _, _ = Lazy.force tensor_pair_fixture in
  ignore (Tensor.add a b)

let tensor_add_into () =
  let a, b, _, dst, _ = Lazy.force tensor_pair_fixture in
  Tensor.add_into a b ~dst

let tensor_matmul_alloc () =
  let a, _, m, _, _ = Lazy.force tensor_pair_fixture in
  ignore (Tensor.matmul a m)

let tensor_matmul_into () =
  let a, _, m, _, dst = Lazy.force tensor_pair_fixture in
  Tensor.matmul_into a m ~dst

let va_noises () =
  let config, net, _ = Lazy.force iris_fixture in
  let shapes = Pnn.Network.theta_shapes net in
  Pnn.Noise.draw_many (Rng.create 3) ~epsilon:0.05 ~theta_shapes:shapes
    ~n:config.Pnn.Config.n_mc_train

let va_epoch_with mc_loss () =
  let _, net, tdata = Lazy.force iris_fixture in
  let loss =
    mc_loss (Lazy.force pool_seq) net ~noises:(va_noises ())
      ~x:tdata.Pnn.Training.x_train ~labels:tdata.Pnn.Training.y_train
  in
  Autodiff.backward loss

let va_epoch_alloc = va_epoch_with Pnn.Network.mc_loss_pooled_alloc
let va_epoch_cached = va_epoch_with Pnn.Network.mc_loss_pooled

let mc_eval_with predict () =
  let _, net, _ = Lazy.force iris_fixture in
  let split = Lazy.force iris_split in
  let shapes = Pnn.Network.theta_shapes net in
  let rng = Rng.create 7 in
  for _ = 1 to 30 do
    let noise = Pnn.Noise.draw rng ~epsilon:0.1 ~theta_shapes:shapes in
    ignore (predict net ~noise split.Datasets.Synth.x_test)
  done

let mc_eval_alloc = mc_eval_with Pnn.Network.predict
let mc_eval_cached = mc_eval_with Pnn.Network.predict_cached

(* Surrogate batch inference: 64 circuit parameter vectors through the
   13-layer surrogate MLP graph — fresh graph per call vs one compiled tape
   refreshed in place. *)
let omegas64 =
  lazy
    (let lo = Surrogate.Design_space.omega_lo
     and hi = Surrogate.Design_space.omega_hi in
     let rng = Rng.create 11 in
     Tensor.init 64 7 (fun _ c -> Rng.uniform rng ~lo:lo.(c) ~hi:hi.(c)))

let surrogate_batch_alloc () =
  let m = Lazy.force surrogate in
  ignore (Autodiff.value (Surrogate.Model.eval_ad m (Autodiff.const (Lazy.force omegas64))))

let surrogate_tape_fixture =
  lazy
    (let m = Lazy.force surrogate in
     let leaf = Autodiff.const (Tensor.copy (Lazy.force omegas64)) in
     let out = Surrogate.Model.eval_ad m leaf in
     (leaf, out, Autodiff.compile out))

let surrogate_batch_tape () =
  let leaf, out, tape = Lazy.force surrogate_tape_fixture in
  Autodiff.set_value leaf (Lazy.force omegas64);
  Autodiff.refresh tape;
  ignore (Autodiff.value out)

let alloc_pairs =
  [
    ("tensor_add_128x64_alloc", tensor_add_alloc);
    ("tensor_add_128x64_into", tensor_add_into);
    ("tensor_matmul_128x64x32_alloc", tensor_matmul_alloc);
    ("tensor_matmul_128x64x32_into", tensor_matmul_into);
    ("surrogate_batch64_alloc", surrogate_batch_alloc);
    ("surrogate_batch64_tape", surrogate_batch_tape);
    ("mc_eval30_alloc", mc_eval_alloc);
    ("mc_eval30_cached", mc_eval_cached);
    ("va_epoch_alloc", va_epoch_alloc);
    ("va_epoch_cached", va_epoch_cached);
  ]

let strip_group name =
  match String.index_opt name '/' with
  | Some i -> String.sub name (i + 1) (String.length name - i - 1)
  | None -> name

let alloc_benchmarks () =
  let times =
    analyze_group
      (Test.make_grouped ~name:"alloc"
         (List.map
            (fun (name, f) -> Test.make ~name (Staged.stage f))
            alloc_pairs))
  in
  let times = List.map (fun (name, ns) -> (strip_group name, ns)) times in
  let rows =
    List.map
      (fun (name, f) ->
        let minor, major = measure_alloc f in
        let ns = List.assoc_opt name times in
        (name, ns, minor, major))
      alloc_pairs
  in
  Printf.printf "== allocation benchmarks (per run) ==\n";
  List.iter
    (fun (name, ns, minor, major) ->
      Printf.printf "  %-32s %10.0f minor words  %10.0f major words  %s\n" name
        minor major
        (match ns with Some ns -> Printf.sprintf "%10.0f ns" ns | None -> ""))
    rows;
  print_newline ();
  rows

(* {1 BENCH_1.json perf baseline} *)

let write_bench_json rows =
  let path =
    match Sys.getenv_opt "REPRO_BENCH_JSON" with
    | Some p -> p
    | None -> "BENCH_1.json"
  in
  let oc = open_out path in
  Printf.fprintf oc "{\n  \"bench\": \"BENCH_1\",\n  \"scale\": %S,\n" scale_name;
  Printf.fprintf oc "  \"jobs\": %d,\n  \"results\": [\n" par_jobs;
  let n = List.length rows in
  List.iteri
    (fun i (name, ns) ->
      Printf.fprintf oc "    { \"name\": %S, \"ns_per_run\": %.1f }%s\n" name ns
        (if i = n - 1 then "" else ","))
    rows;
  output_string oc "  ]\n}\n";
  close_out oc;
  Printf.printf "wrote %s (%d entries, jobs=%d)\n%!" path n par_jobs

(* {1 BENCH_2.json allocation baseline} *)

let write_bench2_json rows =
  let path =
    match Sys.getenv_opt "REPRO_BENCH2_JSON" with
    | Some p -> p
    | None -> "BENCH_2.json"
  in
  let oc = open_out path in
  Printf.fprintf oc "{\n  \"bench\": \"BENCH_2\",\n  \"scale\": %S,\n" scale_name;
  output_string oc "  \"results\": [\n";
  let n = List.length rows in
  List.iteri
    (fun i (name, ns, minor, major) ->
      Printf.fprintf oc
        "    { \"name\": %S, \"ns_per_run\": %.1f, \"minor_words_per_run\": \
         %.1f, \"major_words_per_run\": %.1f }%s\n"
        name
        (match ns with Some ns -> ns | None -> 0.0)
        minor major
        (if i = n - 1 then "" else ","))
    rows;
  output_string oc "  ]\n}\n";
  close_out oc;
  Printf.printf "wrote %s (%d entries)\n%!" path n

(* {1 BENCH_3.json cold-vs-warm cache pair}

   One Table II slice computed twice against the same fresh cache directory.
   The cold pass trains and evaluates everything, populating the store; the
   warm pass must reproduce the identical table from cache hits alone.  The
   frozen surrogate is forced before timing so both passes measure only the
   experiment work the cache is supposed to absorb. *)

let cache_benchmarks () =
  let dataset_names =
    match Sys.getenv_opt "REPRO_BENCH3_DATASETS" with
    | Some s -> s
    | None -> "iris,seeds"
  in
  let datasets =
    List.map Datasets.Bench13.load (String.split_on_char ',' dataset_names)
  in
  let surrogate = Lazy.force surrogate in
  let dir = Filename.temp_file "pnnbench3" ".cache" in
  Sys.remove dir;
  let pass () =
    let cache = Cache.create ~dir in
    let t0 = Unix.gettimeofday () in
    let table = Experiments.Table2.run ~cache ~datasets scale surrogate in
    let dt = Unix.gettimeofday () -. t0 in
    (dt, table, cache)
  in
  let cold_s, cold_table, cold_cache = pass () in
  let warm_s, warm_table, warm_cache = pass () in
  if Experiments.Table2.render warm_table <> Experiments.Table2.render cold_table
  then failwith "BENCH_3: warm table differs from cold table";
  ignore (Cache.gc ~all:true ~dir ());
  Printf.printf "== cold-vs-warm cache (table2, %s, scale=%s) ==\n"
    dataset_names scale_name;
  Printf.printf "  cold  %8.2f s   (%s)\n" cold_s (Cache.summary cold_cache);
  Printf.printf "  warm  %8.2f s   (%s)\n" warm_s (Cache.summary warm_cache);
  Printf.printf "  speedup %.0fx\n\n" (cold_s /. Float.max warm_s 1e-3);
  (dataset_names, cold_s, warm_s)

let write_bench3_json (dataset_names, cold_s, warm_s) =
  let path =
    match Sys.getenv_opt "REPRO_BENCH3_JSON" with
    | Some p -> p
    | None -> "BENCH_3.json"
  in
  let oc = open_out path in
  Printf.fprintf oc "{\n  \"bench\": \"BENCH_3\",\n  \"scale\": %S,\n" scale_name;
  Printf.fprintf oc "  \"jobs\": %d,\n  \"datasets\": %S,\n" par_jobs dataset_names;
  (* a sub-millisecond warm pass would print an unbounded ratio *)
  let speedup = cold_s /. Float.max warm_s 1e-3 in
  Printf.fprintf oc "  \"cold_s\": %.3f,\n  \"warm_s\": %.4f,\n" cold_s warm_s;
  Printf.fprintf oc "  \"speedup\": %.1f\n}\n" speedup;
  close_out oc;
  Printf.printf "wrote %s (speedup %.1fx)\n%!" path speedup

(* {1 Sanitizer cross-check}

   The PNN_CHECKED dual-loop tensor kernels promise the checked bodies run
   the same float operations in the same order as the unsafe ones.  Prove it
   on a real workload: one quick Table II slice computed unchecked and again
   in checked mode must render byte-equal, and the timing pair is the
   sanitizer's true end-to-end overhead. *)

let sanitizer_benchmarks () =
  let dataset_names =
    match Sys.getenv_opt "REPRO_SANITIZER_DATASETS" with
    | Some s -> s
    | None -> "iris"
  in
  let datasets =
    List.map Datasets.Bench13.load (String.split_on_char ',' dataset_names)
  in
  let surrogate = Lazy.force surrogate in
  let pass checked =
    Tensor.set_checked checked;
    let t0 = Unix.gettimeofday () in
    let table = Experiments.Table2.run ~datasets scale surrogate in
    let dt = Unix.gettimeofday () -. t0 in
    (dt, Experiments.Table2.render table)
  in
  let was = Tensor.checked () in
  let unchecked_s, unchecked_text = pass false in
  let checked_s, checked_text = pass true in
  Tensor.set_checked was;
  if checked_text <> unchecked_text then
    failwith "sanitizer: checked-mode table2 differs from unchecked";
  Printf.printf "== sanitizer cross-check (table2, %s, scale=%s) ==\n"
    dataset_names scale_name;
  Printf.printf "  unchecked %8.2f s\n" unchecked_s;
  Printf.printf "  checked   %8.2f s   (output byte-equal)\n" checked_s;
  Printf.printf "  overhead %.2fx\n\n%!"
    (checked_s /. Float.max unchecked_s 1e-3)

(* {1 Backend benchmarks (BENCH_4)}

   Part 6 — reference-vs-bigarray pairs over identical workloads: the raw
   matmul and elementwise kernels, the tape-refreshed surrogate batch, the
   variation-aware epoch at the paper's iris size and at a wide pNN size
   (64 inputs -> 48 hidden -> 16 outputs, batch 256) where the matmuls
   dominate dispatch overhead, and one quick single-dataset Table II slice
   end-to-end.

   Every fixture — dataset tensors, network, noises, even the surrogate — is
   built *after* selecting the backend, so each measured computation stays on
   one backend's storage rather than exercising the mixed-operand fallback. *)

let time_us ~runs f =
  (* two warm-up calls, like measure_alloc: build caches and scratch *)
  f ();
  f ();
  let t0 = Unix.gettimeofday () in
  for _ = 1 to runs do
    f ()
  done;
  (Unix.gettimeofday () -. t0) /. float_of_int runs *. 1e6

let backend_rows be =
  let prev = Tensor.backend () in
  Tensor.set_backend be;
  Fun.protect ~finally:(fun () -> Tensor.set_backend prev) @@ fun () ->
  (* raw kernels *)
  let rng = Rng.create 5 in
  let a = Tensor.uniform rng 128 64 ~lo:(-1.0) ~hi:1.0 in
  let b = Tensor.uniform rng 128 64 ~lo:(-1.0) ~hi:1.0 in
  let m = Tensor.uniform rng 64 32 ~lo:(-1.0) ~hi:1.0 in
  let dst_add = Tensor.zeros 128 64 in
  let dst_mm = Tensor.zeros 128 32 in
  let t_mm = time_us ~runs:500 (fun () -> Tensor.matmul_into a m ~dst:dst_mm) in
  let t_add = time_us ~runs:2000 (fun () -> Tensor.add_into a b ~dst:dst_add) in
  (* surrogate batch inference on a tape owned by this backend *)
  let sur = Experiments.Setup.surrogate_of_scale scale in
  let lo = Surrogate.Design_space.omega_lo
  and hi = Surrogate.Design_space.omega_hi in
  let orng = Rng.create 11 in
  let omegas = Tensor.init 64 7 (fun _ c -> Rng.uniform orng ~lo:lo.(c) ~hi:hi.(c)) in
  let leaf = Autodiff.const (Tensor.copy omegas) in
  let out = Surrogate.Model.eval_ad sur leaf in
  let tape = Autodiff.compile out in
  let t_sur =
    time_us ~runs:100 (fun () ->
        Autodiff.set_value leaf omegas;
        Autodiff.refresh tape;
        ignore (Autodiff.value out))
  in
  (* variation-aware epoch, iris size (4 -> hidden -> 3, batch 90) *)
  let data = Datasets.Bench13.load "iris" in
  let split = Datasets.Synth.split (Rng.create 1) data in
  let tdata = Pnn.Training.of_split ~n_classes:3 split in
  let config =
    { scale.Experiments.Setup.config with Pnn.Config.epsilon = 0.05 }
  in
  let net = Pnn.Network.create (Rng.create 2) config sur ~inputs:4 ~outputs:3 in
  let shapes = Pnn.Network.theta_shapes net in
  let noises =
    Pnn.Noise.draw_many (Rng.create 3) ~epsilon:0.05 ~theta_shapes:shapes
      ~n:config.Pnn.Config.n_mc_train
  in
  let pool = Lazy.force pool_seq in
  let t_iris =
    time_us ~runs:50 (fun () ->
        let loss =
          Pnn.Network.mc_loss_pooled pool net ~noises
            ~x:tdata.Pnn.Training.x_train ~labels:tdata.Pnn.Training.y_train
        in
        Autodiff.backward loss)
  in
  (* variation-aware epoch, wide pNN (64 -> 48 -> 16, batch 256) *)
  let inputs = 64 and outputs = 16 and batch = 256 in
  let wconfig = { config with Pnn.Config.hidden = 48 } in
  let wrng = Rng.create 13 in
  let x = Tensor.uniform wrng batch inputs ~lo:0.0 ~hi:1.0 in
  let labels =
    Tensor.init batch outputs (fun r c -> if r mod outputs = c then 1.0 else 0.0)
  in
  let wnet = Pnn.Network.create (Rng.create 2) wconfig sur ~inputs ~outputs in
  let wshapes = Pnn.Network.theta_shapes wnet in
  let wnoises =
    Pnn.Noise.draw_many (Rng.create 3) ~epsilon:0.05 ~theta_shapes:wshapes
      ~n:wconfig.Pnn.Config.n_mc_train
  in
  let t_wide =
    time_us ~runs:20 (fun () ->
        let loss =
          Pnn.Network.mc_loss_pooled pool wnet ~noises:wnoises ~x ~labels
        in
        Autodiff.backward loss)
  in
  (* one quick Table II slice end-to-end (train + MC evaluate, iris only) *)
  let t0 = Unix.gettimeofday () in
  ignore (Experiments.Table2.run ~datasets:[ data ] scale sur);
  let t_t2 = (Unix.gettimeofday () -. t0) *. 1e6 in
  [
    ("tensor_matmul_128x64x32", t_mm);
    ("tensor_add_128x64", t_add);
    ("surrogate_batch64", t_sur);
    ("va_epoch_iris", t_iris);
    ("va_epoch_wide", t_wide);
    ("table2_quick_iris", t_t2);
  ]

let backend_benchmarks alloc_rows =
  let startup = Tensor.backend () in
  let ref_rows = backend_rows Tensor.Reference in
  let ba_rows = backend_rows Tensor.Bigarray64 in
  let rows =
    List.map2
      (fun (name, ref_us) (_, ba_us) ->
        (name, ref_us, ba_us, ref_us /. Float.max ba_us 1e-3))
      ref_rows ba_rows
  in
  let pair_rows = (ref_rows, ba_rows) in
  Printf.printf "== backend benchmarks (reference vs bigarray, scale=%s) ==\n"
    scale_name;
  List.iter
    (fun (name, ref_us, ba_us, speedup) ->
      Printf.printf "  %-28s %10.2f us  %10.2f us  %5.2fx\n" name ref_us ba_us
        speedup)
    rows;
  print_newline ();
  (* The reference rows remeasure workloads BENCH_2 just timed in this very
     process (only meaningful when BENCH_2 itself ran on the reference
     backend): a large disagreement means the harness, not the kernel,
     changed. *)
  (match startup with
  | Tensor.Reference -> (
      let bench2_matmul =
        List.find_map
          (fun (name, ns, _, _) ->
            if String.equal name "tensor_matmul_128x64x32_into" then ns
            else None)
          alloc_rows
      in
      match (bench2_matmul, List.assoc_opt "tensor_matmul_128x64x32" ref_rows) with
      | Some b2_ns, Some ref_us ->
          let ratio = ref_us *. 1e3 /. b2_ns in
          if ratio > 3.0 || ratio < 1.0 /. 3.0 then
            failwith
              (Printf.sprintf
                 "BENCH_4: reference matmul (%.0f us) disagrees with BENCH_2 \
                  (%.0f us) beyond noise"
                 ref_us (b2_ns /. 1e3))
      | _ -> ())
  | Tensor.Bigarray64 | Tensor.C64 -> ());
  (rows, pair_rows)

let write_bench4_json rows =
  let path =
    match Sys.getenv_opt "REPRO_BENCH4_JSON" with
    | Some p -> p
    | None -> "BENCH_4.json"
  in
  let oc = open_out path in
  Printf.fprintf oc "{\n  \"bench\": \"BENCH_4\",\n  \"scale\": %S,\n" scale_name;
  output_string oc "  \"results\": [\n";
  let n = List.length rows in
  List.iteri
    (fun i (name, ref_us, ba_us, speedup) ->
      Printf.fprintf oc
        "    { \"name\": %S, \"ref_ns\": %.1f, \"ba_ns\": %.1f, \"speedup\": \
         %.2f }%s\n"
        name (ref_us *. 1e3) (ba_us *. 1e3) speedup
        (if i = n - 1 then "" else ","))
    rows;
  output_string oc "  ]\n}\n";
  close_out oc;
  Printf.printf "wrote %s (%d entries)\n%!" path n

(* {1 Three-way backend benchmarks (BENCH_7)}

   Part 7 — the C-stub backend against both OCaml backends over the same
   workloads as BENCH_4, plus two checks the C backend introduces:

   - the quick Table II slice rendered with the fused dense kernels must be
     byte-identical to the decomposed rendering on the same backend (checked
     mode gates every fused capability off and swaps each kernel for its
     bounds-checked bigarray twin — bit-identity across that swap is the
     whole point of the backend contract);
   - a batched-serving row (wide pNN, batch 64) measuring the per-batch
     latency distribution on bigarray vs C, since the fused layer kernel
     targets exactly the serve/train hot path. *)

let with_backend_for_bench be f =
  let prev = Tensor.backend () in
  Tensor.set_backend be;
  Fun.protect ~finally:(fun () -> Tensor.set_backend prev) f

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else sorted.(min (n - 1) (int_of_float (ceil (p *. float_of_int n)) - 1))

let bench7_serving_row be =
  with_backend_for_bench be @@ fun () ->
  let sur = Experiments.Setup.surrogate_of_scale scale in
  let inputs = 64 and outputs = 16 and batch = 64 in
  let config =
    { scale.Experiments.Setup.config with Pnn.Config.hidden = 48 }
  in
  let net = Pnn.Network.create (Rng.create 11) config sur ~inputs ~outputs in
  let model = Serving.Serve_model.of_network net in
  let rng = Rng.create 17 in
  let rows =
    Array.init batch (fun _ ->
        Array.init inputs (fun _ -> Rng.uniform rng ~lo:0.0 ~hi:1.0))
  in
  (* warm up twice (scratch, tape caches), then record per-batch latency *)
  ignore (Serving.Serve_model.predict_batch model rows);
  ignore (Serving.Serve_model.predict_batch model rows);
  let runs = 200 in
  let lat = Array.make runs 0.0 in
  for i = 0 to runs - 1 do
    let t0 = Unix.gettimeofday () in
    ignore (Serving.Serve_model.predict_batch model rows);
    lat.(i) <- (Unix.gettimeofday () -. t0) *. 1e6
  done;
  Array.sort Float.compare lat;
  (percentile lat 0.50, percentile lat 0.99)

let bench7_fused_byte_equality () =
  (* quick Table II (iris) on the C backend, fused vs decomposed *)
  with_backend_for_bench Tensor.C64 @@ fun () ->
  let sur = Experiments.Setup.surrogate_of_scale scale in
  let data = Datasets.Bench13.load "iris" in
  let render () =
    Experiments.Table2.render
      (Experiments.Table2.run ~datasets:[ data ] scale sur)
  in
  let fused = render () in
  let decomposed =
    let prev = Tensor.checked () in
    Tensor.set_checked true;
    Fun.protect ~finally:(fun () -> Tensor.set_checked prev) render
  in
  if not (String.equal fused decomposed) then
    failwith "BENCH_7: fused Table II differs from decomposed on backend c";
  Printf.printf
    "BENCH_7: quick Table II (iris) byte-equal fused vs decomposed on c\n%!"

let bench7_benchmarks (ref_rows, ba_rows) =
  let c_rows = backend_rows Tensor.C64 in
  let rows =
    List.map2
      (fun (name, ref_us) ((_, ba_us), (_, c_us)) ->
        (name, ref_us, ba_us, c_us))
      ref_rows
      (List.combine ba_rows c_rows)
  in
  Printf.printf
    "== backend benchmarks (reference vs bigarray vs c, scale=%s) ==\n"
    scale_name;
  List.iter
    (fun (name, ref_us, ba_us, c_us) ->
      Printf.printf
        "  %-28s %10.2f us  %10.2f us  %10.2f us  (c %5.2fx ref, %5.2fx ba)\n"
        name ref_us ba_us c_us
        (ref_us /. Float.max c_us 1e-3)
        (ba_us /. Float.max c_us 1e-3))
    rows;
  print_newline ();
  bench7_fused_byte_equality ();
  let ba_p50, ba_p99 = bench7_serving_row Tensor.Bigarray64 in
  let c_p50, c_p99 = bench7_serving_row Tensor.C64 in
  Printf.printf
    "  serve_wide_batch64  bigarray p50 %.1f us p99 %.1f us | c p50 %.1f us \
     p99 %.1f us (p99 %.2fx)\n%!"
    ba_p50 ba_p99 c_p50 c_p99
    (ba_p99 /. Float.max c_p99 1e-3);
  (rows, (ba_p50, ba_p99), (c_p50, c_p99))

let write_bench7_json (rows, (ba_p50, ba_p99), (c_p50, c_p99)) =
  let path =
    match Sys.getenv_opt "REPRO_BENCH7_JSON" with
    | Some p -> p
    | None -> "BENCH_7.json"
  in
  let oc = open_out path in
  Printf.fprintf oc "{\n  \"bench\": \"BENCH_7\",\n  \"scale\": %S,\n" scale_name;
  output_string oc "  \"results\": [\n";
  let n = List.length rows in
  List.iteri
    (fun i (name, ref_us, ba_us, c_us) ->
      Printf.fprintf oc
        "    { \"name\": %S, \"ref_ns\": %.1f, \"ba_ns\": %.1f, \"c_ns\": \
         %.1f, \"c_vs_ref\": %.2f, \"c_vs_ba\": %.2f }%s\n"
        name (ref_us *. 1e3) (ba_us *. 1e3) (c_us *. 1e3)
        (ref_us /. Float.max c_us 1e-3)
        (ba_us /. Float.max c_us 1e-3)
        (if i = n - 1 then "" else ","))
    rows;
  output_string oc "  ],\n";
  output_string oc "  \"fused_table2_quick_iris_byte_equal\": true,\n";
  Printf.fprintf oc
    "  \"serving\": [\n\
    \    { \"name\": \"serve_wide_batch64\", \"backend\": \"bigarray\", \
     \"p50_us\": %.1f, \"p99_us\": %.1f },\n\
    \    { \"name\": \"serve_wide_batch64\", \"backend\": \"c\", \"p50_us\": \
     %.1f, \"p99_us\": %.1f }\n\
    \  ],\n"
    ba_p50 ba_p99 c_p50 c_p99;
  Printf.fprintf oc "  \"serving_p99_speedup_c_vs_bigarray\": %.2f\n}\n"
    (ba_p99 /. Float.max c_p99 1e-3);
  close_out oc;
  Printf.printf "wrote %s (%d entries)\n%!" path n

(* {1 Table/figure harnesses} *)

let section title = Printf.printf "\n===== %s =====\n%!" title

let run_tables () =
  section "Table I (design space)";
  print_string (Experiments.Figures.render_table1 ());
  section "Fig. 2 (characteristic curves)";
  print_string (Experiments.Figures.render_fig2 (Experiments.Figures.fig2_curves ()));
  section "Fig. 4 left (fit example)";
  print_string (Experiments.Figures.render_fig4_left (Experiments.Figures.fig4_left ()));
  section "Fig. 4 right (surrogate parity)";
  print_string
    (Experiments.Figures.render_fig4_right (Experiments.Figures.fig4_right ~seed:7 ()));
  section
    (Printf.sprintf "Table II (scale=%s; see EXPERIMENTS.md for the committed run)"
       scale_name);
  let datasets =
    match Sys.getenv_opt "REPRO_DATASETS" with
    | None -> Datasets.Bench13.load_all ()
    | Some names -> List.map Datasets.Bench13.load (String.split_on_char ',' names)
  in
  let progress msg = Printf.eprintf "  [running] %s\n%!" msg in
  let table2 = Experiments.Table2.run ~progress ~datasets scale (Lazy.force surrogate) in
  print_string (Experiments.Table2.render table2);
  section "Table III (ablation summary)";
  print_string (Experiments.Table3.render (Experiments.Table3.of_table2 scale table2))

let () =
  let micro = micro_benchmarks () in
  let par = parallel_benchmarks () in
  write_bench_json (micro @ par);
  let alloc = alloc_benchmarks () in
  write_bench2_json alloc;
  (match Sys.getenv_opt "REPRO_SKIP_BACKENDS" with
  | Some "1" -> ()
  | Some _ | None ->
      let rows4, pair_rows = backend_benchmarks alloc in
      write_bench4_json rows4;
      write_bench7_json (bench7_benchmarks pair_rows));
  (match Sys.getenv_opt "REPRO_SKIP_BENCH3" with
  | Some "1" -> ()
  | Some _ | None -> write_bench3_json (cache_benchmarks ()));
  (match Sys.getenv_opt "REPRO_SKIP_SANITIZER" with
  | Some "1" -> ()
  | Some _ | None -> sanitizer_benchmarks ());
  (match Sys.getenv_opt "REPRO_SKIP_TABLES" with
  | Some "1" -> ()
  | Some _ | None -> run_tables ());
  if Lazy.is_val pool_seq then P.shutdown (Lazy.force pool_seq);
  if Lazy.is_val pool_par then P.shutdown (Lazy.force pool_par)
