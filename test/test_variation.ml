(* Tests for the composable variation-model subsystem: per-family semantics,
   bit-identity with the legacy Noise/Aging draws, the Rng split-vs-copy
   convention, and pool-size-independent Monte-Carlo evaluation. *)

module T = Tensor
module V = Pnn.Variation
module C = Pnn.Config

let surrogate =
  lazy
    (let dataset = Surrogate.Pipeline.generate_dataset ~n:250 () in
     let model, _ =
       Surrogate.Pipeline.train_surrogate ~arch:[ 10; 8; 6; 4 ] ~max_epochs:300
         (Rng.create 42) dataset
     in
     model)

let config = C.default

let make_net ?(seed = 1) ?(config = config) ~inputs ~outputs () =
  Pnn.Network.create (Rng.create seed) config (Lazy.force surrogate) ~inputs ~outputs

let shapes = [ (7, 3); (5, 3) ]
let ctx = V.ctx_of_shapes shapes

let noise_tensors (n : Pnn.Noise.t) =
  List.concat_map
    (fun ln -> [ ln.Pnn.Noise.theta; ln.Pnn.Noise.act_omega; ln.Pnn.Noise.neg_omega ])
    n

let noise_bits n =
  List.concat_map
    (fun t -> Array.to_list (Array.map Int64.bits_of_float (T.to_array t)))
    (noise_tensors n)

let check_noise_equal msg a b =
  Alcotest.(check (list int64)) msg (noise_bits a) (noise_bits b)

let iter_values f n = List.iter (fun t -> Array.iter f (T.to_array t)) (noise_tensors n)

(* {1 Uniform: bit-identity with Noise.draw} *)

let test_uniform_stream_identity () =
  let rng_a = Rng.create 11 and rng_b = Rng.create 11 in
  let legacy = Pnn.Noise.draw rng_a ~epsilon:0.1 ~theta_shapes:shapes in
  let model = V.draw rng_b (V.Uniform 0.1) ctx in
  check_noise_equal "same multipliers" legacy model;
  (* identical stream consumption: the generators stay in lock-step *)
  Alcotest.(check int64) "same rng state after draw" (Rng.uint64 rng_a) (Rng.uint64 rng_b)

let test_uniform_zero_is_ones () =
  iter_values
    (fun v -> Alcotest.(check (float 0.0)) "exact one" 1.0 v)
    (V.draw (Rng.create 1) (V.Uniform 0.0) ctx)

(* {1 Gaussian} *)

let test_gaussian_bounds_and_mean () =
  let sigma = 0.1 in
  let n = V.draw (Rng.create 5) (V.Gaussian sigma) (V.ctx_of_shapes [ (40, 25) ]) in
  let lo = exp ((-3.0 *. sigma) -. (0.5 *. sigma *. sigma)) in
  let hi = exp ((3.0 *. sigma) -. (0.5 *. sigma *. sigma)) in
  let sum = ref 0.0 and count = ref 0 in
  iter_values
    (fun v ->
      if v < lo -. 1e-12 || v > hi +. 1e-12 then
        Alcotest.failf "multiplier %f outside clamp band [%f, %f]" v lo hi;
      sum := !sum +. v;
      incr count)
    n;
  let mean = !sum /. float_of_int !count in
  Alcotest.(check bool)
    (Printf.sprintf "mean %.4f close to 1" mean)
    true
    (Float.abs (mean -. 1.0) < 0.02)

let test_gaussian_zero_sigma_is_ones () =
  iter_values
    (fun v -> Alcotest.(check (float 0.0)) "exact one" 1.0 v)
    (V.draw (Rng.create 2) (V.Gaussian 0.0) ctx)

(* {1 Correlated} *)

let test_correlated_local_zero_constant_per_tensor () =
  let n =
    V.draw (Rng.create 7) (V.Correlated { global = 0.2; local = 0.0 }) ctx
  in
  let firsts =
    List.map
      (fun t ->
        let a = T.to_array t in
        Array.iter
          (fun v ->
            Alcotest.(check (float 0.0)) "constant within tensor" a.(0) v)
          a;
        a.(0))
      (noise_tensors n)
  in
  (* shared factors are drawn independently per tensor *)
  let distinct = List.sort_uniq Float.compare firsts in
  Alcotest.(check bool) "factors differ across tensors" true (List.length distinct > 1)

let test_correlated_zero_is_ones () =
  iter_values
    (fun v -> Alcotest.(check (float 0.0)) "exact one" 1.0 v)
    (V.draw (Rng.create 3) (V.Correlated { global = 0.0; local = 0.0 }) ctx)

(* {1 Defects} *)

let test_defects_need_network_ctx () =
  Alcotest.check_raises "shape-only ctx"
    (Invalid_argument "Variation.draw: Defects requires a network-backed ctx")
    (fun () ->
      ignore (V.draw (Rng.create 1) (V.Defects { p_open = 0.1; p_short = 0.0 }) ctx))

let test_defects_zero_rate_is_ones () =
  let net = make_net ~inputs:4 ~outputs:3 () in
  iter_values
    (fun v -> Alcotest.(check (float 0.0)) "exact one" 1.0 v)
    (V.draw (Rng.create 1)
       (V.Defects { p_open = 0.0; p_short = 0.0 })
       (V.ctx_of_network net))

let check_all_stuck ~p_open ~p_short ~rail () =
  let net = make_net ~inputs:4 ~outputs:3 () in
  let noise = V.draw (Rng.create 9) (V.Defects { p_open; p_short }) (V.ctx_of_network net) in
  let r_rail = if Float.equal p_open 1.0 then Surrogate.Design_space.omega_hi
               else Surrogate.Design_space.omega_lo in
  List.iter2
    (fun layer ln ->
      let printed = Pnn.Layer.printed_theta config layer in
      let mult = ln.Pnn.Noise.theta in
      for r = 0 to T.rows printed - 1 do
        for c = 0 to T.cols printed - 1 do
          let g = T.get printed r c and m = T.get mult r c in
          (* pnnlint:allow R5 mirrors Variation.draw's IEEE exact-zero
             unprinted test, -0.0 included *)
          if g = 0.0 then
            Alcotest.(check (float 0.0)) "unprinted cannot fail" 1.0 m
          else begin
            Alcotest.(check (float 1e-12)) "magnitude forced to rail" rail
              (Float.abs (g *. m));
            Alcotest.(check bool) "sign kept" true (g *. m *. g > 0.0)
          end
        done
      done;
      List.iter2
        (fun circuit omega_mult ->
          let values = Pnn.Nonlinear.omega_values circuit in
          Array.iteri
            (fun j m ->
              if j >= 5 then
                Alcotest.(check (float 0.0)) "geometry untouched" 1.0 m
              else if
                Float.abs ((values.(j) *. m) -. r_rail.(j)) /. r_rail.(j) > 1e-9
              then
                Alcotest.failf "resistance not on rail: %f * %f vs %f" values.(j)
                  m r_rail.(j))
            (T.to_array omega_mult))
        [ layer.Pnn.Layer.act; layer.Pnn.Layer.neg ]
        [ ln.Pnn.Noise.act_omega; ln.Pnn.Noise.neg_omega ])
    (Pnn.Network.layers net) noise

let test_defects_all_open () =
  check_all_stuck ~p_open:1.0 ~p_short:0.0 ~rail:config.C.g_min ()

let test_defects_all_short () =
  check_all_stuck ~p_open:0.0 ~p_short:1.0 ~rail:config.C.g_max ()

(* {1 Compose} *)

let test_compose_is_sequential_product () =
  let m1 = V.Uniform 0.1 and m2 = V.Gaussian 0.05 in
  let composed = V.draw (Rng.create 21) (V.Compose [ m1; m2 ]) ctx in
  let rng = Rng.create 21 in
  let a = V.draw rng m1 ctx in
  let b = V.draw rng m2 ctx in
  let manual =
    List.map2
      (fun (x : Pnn.Noise.layer_noise) (y : Pnn.Noise.layer_noise) ->
        {
          Pnn.Noise.theta = T.mul x.Pnn.Noise.theta y.Pnn.Noise.theta;
          act_omega = T.mul x.Pnn.Noise.act_omega y.Pnn.Noise.act_omega;
          neg_omega = T.mul x.Pnn.Noise.neg_omega y.Pnn.Noise.neg_omega;
        })
      a b
  in
  check_noise_equal "compose = product of in-order draws" manual composed

let test_compose_empty_is_ones () =
  iter_values
    (fun v -> Alcotest.(check (float 0.0)) "exact one" 1.0 v)
    (V.draw (Rng.create 1) (V.Compose []) ctx)

(* {1 Aging re-expression} *)

let test_aging_fixed_t_matches_legacy_draw () =
  let model = Pnn.Aging.default_model in
  let legacy =
    Pnn.Aging.draw (Rng.create 3) model ~t_frac:0.5 ~theta_shapes:shapes
  in
  let variation =
    V.draw (Rng.create 3)
      (V.Aging
         {
           kappa_max = model.Pnn.Aging.kappa_max;
           beta = model.Pnn.Aging.beta;
           t_frac = Some 0.5;
         })
      ctx
  in
  check_noise_equal "same draw" legacy variation

let test_aging_lifetime_matches_legacy_draws () =
  let model = Pnn.Aging.default_model in
  let legacy = Pnn.Aging.draw_lifetime (Rng.create 4) model ~theta_shapes:shapes ~n:3 in
  let variation =
    V.draw_many (Rng.create 4) (Pnn.Aging.to_variation model) ctx ~n:3
  in
  List.iter2 (check_noise_equal "same lifetime draws") legacy variation

let test_aging_t_zero_is_ones () =
  iter_values
    (fun v -> Alcotest.(check (float 0.0)) "exact one" 1.0 v)
    (V.draw (Rng.create 5)
       (V.Aging { kappa_max = 0.2; beta = 0.5; t_frac = Some 0.0 })
       ctx)

(* {1 Validation} *)

let test_validate_rejects () =
  let invalid =
    [
      ("uniform high", V.Uniform 1.0);
      ("uniform negative", V.Uniform (-0.1));
      ("gaussian negative", V.Gaussian (-1.0));
      ("gaussian nan", V.Gaussian Float.nan);
      ("correlated high", V.Correlated { global = 1.0; local = 0.0 });
      ("defects sum", V.Defects { p_open = 0.7; p_short = 0.5 });
      ("defects negative", V.Defects { p_open = -0.1; p_short = 0.0 });
      ("aging kappa", V.Aging { kappa_max = 1.0; beta = 0.5; t_frac = None });
      ("aging beta", V.Aging { kappa_max = 0.2; beta = 0.0; t_frac = None });
      ("aging t", V.Aging { kappa_max = 0.2; beta = 0.5; t_frac = Some 1.5 });
      ("nested in compose", V.Compose [ V.Uniform 0.1; V.Uniform 2.0 ]);
    ]
  in
  List.iter
    (fun (label, model) ->
      match V.validate model with
      | exception Invalid_argument _ -> ()
      | () -> Alcotest.failf "%s: expected Invalid_argument" label)
    invalid

let test_names () =
  Alcotest.(check string) "uniform" "uniform(0.1)" (V.name (V.Uniform 0.1));
  Alcotest.(check string) "compose" "compose(uniform(0.05)+defects(0.02,0))"
    (V.name (V.Compose [ V.Uniform 0.05; V.Defects { p_open = 0.02; p_short = 0.0 } ]))

(* {1 Rng convention: split, never copy}

   Regression for the aging-aware training bug where the training stream was
   seeded with [Rng.copy rng]: the copy aliases the caller's stream, so every
   later draw from [rng] replayed the training-noise values. *)

let test_copy_aliases_split_does_not () =
  (* [copy] aliases — this is exactly why it was a bug *)
  let rng = Rng.create 7 in
  (* pnnlint:allow R1 this test demonstrates the aliasing hazard that the
     split-only convention (and the R1 lint rule) exists to prevent *)
  let aliased = Rng.copy rng and replay = Rng.copy rng in
  Alcotest.(check int64) "copy replays the parent stream" (Rng.uint64 aliased)
    (Rng.uint64 replay);
  (* [split] derives an independent stream *)
  let rng = Rng.create 7 in
  let derived = Rng.split rng in
  Alcotest.(check bool) "split stream differs from caller continuation" false
    (Rng.uint64 derived = Rng.uint64 rng)

let tiny_data () =
  let data =
    Datasets.Synth.generate
      {
        Datasets.Synth.name = "blob";
        features = 3;
        classes = 2;
        samples = 80;
        modes_per_class = 1;
        class_sep = 0.3;
        spread = 0.06;
        label_noise = 0.0;
        priors = None;
        seed = 31;
      }
  in
  let split = Datasets.Synth.split (Rng.create 8) data in
  (split, Pnn.Training.of_split ~n_classes:2 split)

let tiny_config =
  { config with C.max_epochs = 5; patience = 5; n_mc_train = 2; n_mc_val = 2 }

let test_fit_aging_aware_consumes_two_splits () =
  let _, tdata = tiny_data () in
  let net =
    Pnn.Network.create (Rng.create 4) tiny_config (Lazy.force surrogate) ~inputs:3
      ~outputs:2
  in
  let rng = Rng.create 99 in
  let _ = Pnn.Aging.fit_aging_aware rng Pnn.Aging.default_model net tdata in
  (* the caller's generator must have advanced by exactly two splits — its
     continuation is independent of the training/validation noise streams *)
  let reference = Rng.create 99 in
  ignore (Rng.split reference);
  ignore (Rng.split reference);
  Alcotest.(check int64) "rng advanced by exactly two splits" (Rng.uint64 reference)
    (Rng.uint64 rng)

let test_fit_under_train_stream_not_aliased () =
  let rng = Rng.create 99 in
  let train_rng = Rng.split rng in
  let val_rng = Rng.split rng in
  let caller_next = Rng.uint64 rng in
  Alcotest.(check bool) "train stream independent of caller" false
    (Rng.uint64 train_rng = caller_next);
  Alcotest.(check bool) "val stream independent of caller" false
    (Rng.uint64 val_rng = caller_next)

(* {1 mc_result_under} *)

let eval_fixture () =
  let net = make_net ~inputs:3 ~outputs:2 () in
  let x = T.uniform (Rng.create 2) 12 3 ~lo:0.0 ~hi:1.0 in
  let y = Array.init 12 (fun i -> i mod 2) in
  (net, x, y)

let test_mc_result_under_stats () =
  let net, x, y = eval_fixture () in
  let r =
    Pnn.Evaluation.mc_result_under (Rng.create 5) net ~model:(V.Uniform 0.05) ~n:12 ~x ~y
  in
  Alcotest.(check int) "12 draws" 12 (Array.length r.Pnn.Evaluation.accuracies);
  let open Pnn.Evaluation in
  Alcotest.(check bool) "quantiles ordered" true
    (r.min <= r.q05 && r.q05 <= r.median && r.median <= r.q95);
  Alcotest.(check bool) "mean within range" true (r.mean >= r.min && r.mean <= 1.0);
  Alcotest.(check bool) "std >= 0" true (r.std >= 0.0)

let test_mc_result_under_invalid () =
  let net, x, y = eval_fixture () in
  Alcotest.check_raises "n" (Invalid_argument "Evaluation.mc_result_under: n < 1")
    (fun () ->
      ignore (Pnn.Evaluation.mc_result_under (Rng.create 1) net ~model:(V.Uniform 0.1) ~n:0 ~x ~y));
  Alcotest.check_raises "model" (Invalid_argument "Variation: Uniform epsilon outside [0,1)")
    (fun () ->
      ignore (Pnn.Evaluation.mc_result_under (Rng.create 1) net ~model:(V.Uniform 1.5) ~n:4 ~x ~y))

(* {1 Determinism: 1 worker vs 4 workers, bit-identical, all families} *)

let family_models =
  [
    ("uniform", V.Uniform 0.08);
    ("gaussian", V.Gaussian 0.05);
    ("correlated", V.Correlated { global = 0.05; local = 0.05 });
    ("defects", V.Defects { p_open = 0.05; p_short = 0.02 });
  ]

let test_pool_size_bit_identity () =
  let net, x, y = eval_fixture () in
  let pool1 = Parallel.Pool.create ~jobs:1 () in
  let pool4 = Parallel.Pool.create ~jobs:4 () in
  Fun.protect
    ~finally:(fun () ->
      Parallel.Pool.shutdown pool1;
      Parallel.Pool.shutdown pool4)
    (fun () ->
      List.iter
        (fun (label, model) ->
          let run pool =
            Pnn.Evaluation.mc_result_under ~pool (Rng.create 77) net ~model ~n:8 ~x ~y
          in
          let r1 = run pool1 and r4 = run pool4 in
          Alcotest.(check (array int64))
            (label ^ " bit-identical across pool sizes")
            (Array.map Int64.bits_of_float r1.Pnn.Evaluation.accuracies)
            (Array.map Int64.bits_of_float r4.Pnn.Evaluation.accuracies))
        family_models)

(* {1 Variation-aware training under every family} *)

let test_fit_under_all_families () =
  let _, tdata = tiny_data () in
  List.iter
    (fun (label, model) ->
      let net =
        Pnn.Network.create (Rng.create 4) tiny_config (Lazy.force surrogate) ~inputs:3
          ~outputs:2
      in
      let result = Pnn.Training.fit_under (Rng.create 6) ~model net tdata in
      Alcotest.(check bool) (label ^ " finite val loss") true
        (Float.is_finite result.Pnn.Training.val_loss))
    family_models

(* {1 Faults experiment (micro scale)} *)

let test_faults_experiment_smoke () =
  let scale =
    {
      Experiments.Setup.seeds = [ 1 ];
      test_epsilons = [ 0.1 ];
      n_mc_test = 4;
      config = tiny_config;
      init = `Centered;
      surrogate_samples = 0;
      surrogate_epochs = 0;
    }
  in
  let t = Experiments.Faults.run ~epsilon:0.1 scale (Lazy.force surrogate) in
  Alcotest.(check int) "5 train arms" 5 (List.length t.Experiments.Faults.train_arms);
  Alcotest.(check int) "grid = 5 arms x 4 families" 20
    (List.length t.Experiments.Faults.grid);
  let header, rows = Experiments.Faults.to_csv_rows t in
  Alcotest.(check int) "csv columns" 10 (List.length header);
  Alcotest.(check int) "csv rows: grid + two sweeps" (20 + 25 + 25) (List.length rows);
  let rendered = Experiments.Faults.render t in
  Alcotest.(check bool) "render mentions defects" true
    (let needle = "defects" in
     let nl = String.length needle and hl = String.length rendered in
     let rec go i = i + nl <= hl && (String.sub rendered i nl = needle || go (i + 1)) in
     go 0)

let () =
  Alcotest.run "variation"
    [
      ( "uniform",
        [
          Alcotest.test_case "stream identity with Noise.draw" `Quick
            test_uniform_stream_identity;
          Alcotest.test_case "eps=0 exact ones" `Quick test_uniform_zero_is_ones;
        ] );
      ( "gaussian",
        [
          Alcotest.test_case "bounds and mean" `Quick test_gaussian_bounds_and_mean;
          Alcotest.test_case "sigma=0 exact ones" `Quick test_gaussian_zero_sigma_is_ones;
        ] );
      ( "correlated",
        [
          Alcotest.test_case "local=0 constant per tensor" `Quick
            test_correlated_local_zero_constant_per_tensor;
          Alcotest.test_case "zero magnitudes exact ones" `Quick test_correlated_zero_is_ones;
        ] );
      ( "defects",
        [
          Alcotest.test_case "requires network ctx" `Quick test_defects_need_network_ctx;
          Alcotest.test_case "zero rate is ones" `Quick test_defects_zero_rate_is_ones;
          Alcotest.test_case "all open -> g_min rail" `Quick test_defects_all_open;
          Alcotest.test_case "all short -> g_max rail" `Quick test_defects_all_short;
        ] );
      ( "compose",
        [
          Alcotest.test_case "sequential product" `Quick test_compose_is_sequential_product;
          Alcotest.test_case "empty is ones" `Quick test_compose_empty_is_ones;
        ] );
      ( "aging",
        [
          Alcotest.test_case "fixed t matches legacy" `Quick
            test_aging_fixed_t_matches_legacy_draw;
          Alcotest.test_case "lifetime matches legacy" `Quick
            test_aging_lifetime_matches_legacy_draws;
          Alcotest.test_case "t=0 exact ones" `Quick test_aging_t_zero_is_ones;
        ] );
      ( "validation",
        [
          Alcotest.test_case "rejects bad parameters" `Quick test_validate_rejects;
          Alcotest.test_case "names" `Quick test_names;
        ] );
      ( "rng-convention",
        [
          Alcotest.test_case "copy aliases, split does not" `Quick
            test_copy_aliases_split_does_not;
          Alcotest.test_case "fit_aging_aware consumes two splits" `Quick
            test_fit_aging_aware_consumes_two_splits;
          Alcotest.test_case "derived streams not aliased" `Quick
            test_fit_under_train_stream_not_aliased;
        ] );
      ( "evaluation",
        [
          Alcotest.test_case "mc_result_under stats" `Quick test_mc_result_under_stats;
          Alcotest.test_case "mc_result_under invalid" `Quick test_mc_result_under_invalid;
          Alcotest.test_case "pool-size bit-identity (all families)" `Quick
            test_pool_size_bit_identity;
        ] );
      ( "training",
        [
          Alcotest.test_case "fit_under all families" `Quick test_fit_under_all_families;
        ] );
      ( "experiment",
        [
          Alcotest.test_case "faults smoke" `Quick test_faults_experiment_smoke;
        ] );
    ]
