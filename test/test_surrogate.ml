(* Tests for the surrogate pipeline and model. *)

module P = Surrogate.Pipeline
module M = Surrogate.Model
module Ds = Surrogate.Design_space

(* One small dataset/model pair shared across tests (pipeline is deterministic). *)
let dataset = lazy (P.generate_dataset ~n:250 ())

let trained =
  lazy
    (let rng = Rng.create 42 in
     P.train_surrogate ~arch:[ 10; 8; 6; 4 ] ~max_epochs:400 rng (Lazy.force dataset))

let test_dataset_generation () =
  let d = Lazy.force dataset in
  let kept = Array.length d.P.omegas in
  Alcotest.(check bool) "keeps most samples" true (kept > 200);
  Alcotest.(check int) "etas align" kept (Array.length d.P.etas);
  Alcotest.(check int) "rmses align" kept (Array.length d.P.fit_rmses);
  Array.iter
    (fun omega ->
      if not (Ds.contains omega) then Alcotest.fail "dataset contains infeasible omega")
    d.P.omegas;
  Array.iter
    (fun rmse -> if rmse > 0.02 then Alcotest.failf "fit rmse above filter: %f" rmse)
    d.P.fit_rmses

let test_split_fractions () =
  let d = Lazy.force dataset in
  let s = P.split_dataset (Rng.create 1) d in
  let n = Array.length d.P.omegas in
  Alcotest.(check int) "covers all" n
    (Array.length s.P.train + Array.length s.P.validation + Array.length s.P.test);
  Alcotest.(check int) "70% train" (n * 70 / 100) (Array.length s.P.train);
  (* disjointness *)
  let seen = Hashtbl.create n in
  Array.iter
    (fun idx ->
      if Hashtbl.mem seen idx then Alcotest.fail "split overlap";
      Hashtbl.add seen idx ())
    (Array.concat [ s.P.train; s.P.validation; s.P.test ])

let test_training_learns () =
  let _, report = Lazy.force trained in
  (* normalized eta variance is ~O(0.05-0.1); a trained surrogate should do
     clearly better than predicting the mean *)
  Alcotest.(check bool)
    (Printf.sprintf "val R2 positive (%.3f)" report.P.val_r2)
    true (report.P.val_r2 > 0.3);
  Alcotest.(check bool) "test close to val" true
    (Float.abs (report.P.test_mse -. report.P.val_mse) < 0.05)

let test_model_eval_eta_shape () =
  let model, _ = Lazy.force trained in
  let omega = (Lazy.force dataset).P.omegas.(0) in
  let eta = M.eval model omega in
  Alcotest.(check bool) "eta finite" true
    (Float.is_finite eta.Fit.Ptanh.eta1 && Float.is_finite eta.Fit.Ptanh.eta4)

let test_eval_batch_matches_single () =
  let model, _ = Lazy.force trained in
  let d = Lazy.force dataset in
  let omegas = Array.sub d.P.omegas 0 5 in
  let batch = M.eval_batch model omegas in
  Array.iteri
    (fun i omega ->
      let single = M.eval model omega in
      let b = batch.(i) in
      Alcotest.(check (float 1e-9)) "eta1" single.Fit.Ptanh.eta1 b.Fit.Ptanh.eta1;
      Alcotest.(check (float 1e-9)) "eta4" single.Fit.Ptanh.eta4 b.Fit.Ptanh.eta4)
    omegas

let test_extend_ad_matches_extend () =
  let omega = [| 100.0; 50.0; 200e3; 100e3; 300e3; 400.0; 20.0 |] in
  let expected = Ds.extend omega in
  let node = M.extend_ad (Autodiff.const (Tensor.of_array omega)) in
  let got = Tensor.to_array (Autodiff.value node) in
  Alcotest.(check (array (float 1e-9))) "extension" expected got

let test_eval_ad_matches_eval () =
  let model, _ = Lazy.force trained in
  let omega = (Lazy.force dataset).P.omegas.(3) in
  let expected = Fit.Ptanh.eta_to_array (M.eval model omega) in
  let node = M.eval_ad model (Autodiff.const (Tensor.of_array omega)) in
  let got = Tensor.to_array (Autodiff.value node) in
  Alcotest.(check (array (float 1e-6))) "ad path" expected got

let test_eval_ad_differentiable () =
  let model, _ = Lazy.force trained in
  let p = Autodiff.param (Tensor.of_array (Lazy.force dataset).P.omegas.(7)) in
  Autodiff.backward (Autodiff.sum (M.eval_ad model p));
  let g = Autodiff.grad p in
  Alcotest.(check bool) "gradient flows to omega" true
    (Tensor.sum (Tensor.map Float.abs g) > 0.0)

let test_serialization_roundtrip () =
  let model, _ = Lazy.force trained in
  let model', rest = M.of_lines (M.to_lines model) in
  Alcotest.(check int) "consumed" 0 (List.length rest);
  let omega = (Lazy.force dataset).P.omegas.(11) in
  let a = M.eval model omega and b = M.eval model' omega in
  Alcotest.(check (float 0.0)) "same eta1" a.Fit.Ptanh.eta1 b.Fit.Ptanh.eta1;
  Alcotest.(check (float 0.0)) "same eta4" a.Fit.Ptanh.eta4 b.Fit.Ptanh.eta4

let test_save_load_file () =
  let model, _ = Lazy.force trained in
  let path = Filename.temp_file "surrogate" ".txt" in
  M.save_file model path;
  let model' = M.load_file path in
  Sys.remove path;
  let omega = (Lazy.force dataset).P.omegas.(2) in
  Alcotest.(check (float 0.0)) "file roundtrip" (M.eval model omega).Fit.Ptanh.eta2
    (M.eval model' omega).Fit.Ptanh.eta2

let test_parity_rows_tagged () =
  let model, _ = Lazy.force trained in
  let d = Lazy.force dataset in
  let split = P.split_dataset (Rng.create 2) d in
  let rows = P.parity_rows model d split in
  let tags = List.sort_uniq String.compare (List.map (fun (t, _, _) -> t) rows) in
  Alcotest.(check (list string)) "three splits" [ "test"; "train"; "val" ] tags;
  Alcotest.(check int) "4 eta components per sample" (Array.length d.P.omegas * 4)
    (List.length rows)

let test_lhs_sampler_variant () =
  let d = P.generate_dataset ~n:100 ~sampler:(`Lhs (Rng.create 9)) () in
  Alcotest.(check bool) "keeps samples" true (Array.length d.P.omegas > 60)

let test_bad_arch_rejected () =
  match
    P.train_surrogate ~arch:[ 7; 4 ] (Rng.create 1) (Lazy.force dataset)
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected arch validation error"

let () =
  Alcotest.run "surrogate"
    [
      ( "pipeline",
        [
          Alcotest.test_case "dataset generation" `Quick test_dataset_generation;
          Alcotest.test_case "split fractions" `Quick test_split_fractions;
          Alcotest.test_case "training learns" `Quick test_training_learns;
          Alcotest.test_case "parity rows" `Quick test_parity_rows_tagged;
          Alcotest.test_case "lhs sampler" `Quick test_lhs_sampler_variant;
          Alcotest.test_case "bad arch" `Quick test_bad_arch_rejected;
        ] );
      ( "model",
        [
          Alcotest.test_case "eval" `Quick test_model_eval_eta_shape;
          Alcotest.test_case "batch = single" `Quick test_eval_batch_matches_single;
          Alcotest.test_case "extend ad" `Quick test_extend_ad_matches_extend;
          Alcotest.test_case "eval ad value" `Quick test_eval_ad_matches_eval;
          Alcotest.test_case "eval ad gradient" `Quick test_eval_ad_differentiable;
          Alcotest.test_case "lines roundtrip" `Quick test_serialization_roundtrip;
          Alcotest.test_case "file roundtrip" `Quick test_save_load_file;
        ] );
    ]
