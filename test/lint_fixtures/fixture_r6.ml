(* R6 fixture: backend-internal storage access outside lib/tensor. *)
let bad () = Kernels_ba.create 4

(* pnnlint:allow R6 fixture: tooling that genuinely needs the raw buffer *)
let ok () = Tensor_backend.tag backend

let bad_c () = Kernels_c.scale 2.0 buf
