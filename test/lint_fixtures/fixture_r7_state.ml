(* R7 fixture: module-level mutable state reachable from a domain spawner
   (fixture_r7 references this unit). *)
let table = Hashtbl.create 16
let hits = ref 0

(* pnnlint:allow R7 fixture: filled before any domain is spawned *)
let preloaded = ref []

type shared = { mutable count : int; label : string }

(* pnnlint:allow R7 fixture: each cursor is owned by a single domain *)
type cursor = { mutable pos : int }

type mediated = { lock : Mutex.t; mutable inside : int }

let bump () = incr hits
